// Benchmarks regenerating every table and figure of the paper, plus
// component micro-benchmarks and the ablation benches DESIGN.md lists.
//
// Each experiment bench builds its environment once (the expensive part) and
// then measures the experiment itself; the reported metrics are printed via
// b.ReportMetric so `go test -bench` output doubles as the reproduction
// record (see EXPERIMENTS.md for paper-vs-measured).
package verifai

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/binfmt"
	"repro/internal/core"
	"repro/internal/datalake"
	"repro/internal/doc"
	"repro/internal/embed"
	"repro/internal/experiments"
	"repro/internal/invindex"
	"repro/internal/obs"
	"repro/internal/server"
	"repro/internal/table"
	"repro/internal/textutil"
	"repro/internal/vecindex"
	"repro/internal/verify"
	"repro/internal/wal"
	"repro/internal/workload"
)

// benchEnv lazily builds a single experiment environment shared by all
// experiment benchmarks (the corpus and indexes are read-only).
var (
	benchOnce sync.Once
	benchVal  *experiments.Env
	benchErr  error
)

func benchEnvironment(b *testing.B) *experiments.Env {
	b.Helper()
	benchOnce.Do(func() {
		cfg := experiments.DefaultConfig()
		// Bench scale: large enough for the paper's shapes, small enough to
		// iterate. cmd/experiments -scale paper runs the full dimensions.
		cfg.Corpus.NumTables = 1500
		cfg.Corpus.NumTexts = 800
		cfg.NumClaimTasks = 150
		benchVal, benchErr = experiments.Build(cfg)
	})
	if benchErr != nil {
		b.Fatal(benchErr)
	}
	return benchVal
}

// --- Experiment benches: one per table/figure of the paper ---

// BenchmarkBaselineNoEvidence regenerates the Section 4 prose baseline:
// generator accuracy without evidence (paper: 0.52 tuples / 0.54 claims).
func BenchmarkBaselineNoEvidence(b *testing.B) {
	env := benchEnvironment(b)
	var r experiments.BaselineResult
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r = env.Baseline()
	}
	b.ReportMetric(r.TupleAccuracy, "tuple-acc")
	b.ReportMetric(r.ClaimAccuracy, "claim-acc")
}

// BenchmarkTable1TupleTuple regenerates Table 1 row 1: (tuple, tuple)
// retrieval recall at top-3 (paper: 0.99).
func BenchmarkTable1TupleTuple(b *testing.B) {
	env := benchEnvironment(b)
	var recall float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := env.Table1()
		if err != nil {
			b.Fatal(err)
		}
		recall = r.TupleTupleRecall
	}
	b.ReportMetric(recall, "recall")
}

// BenchmarkTable1TupleText regenerates Table 1 row 2: (tuple, text)
// retrieval recall at top-3 (paper: 0.58).
func BenchmarkTable1TupleText(b *testing.B) {
	env := benchEnvironment(b)
	var recall float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := env.Table1()
		if err != nil {
			b.Fatal(err)
		}
		recall = r.TupleTextRecall
	}
	b.ReportMetric(recall, "recall")
}

// BenchmarkTable1ClaimTable regenerates Table 1 row 3: (claim, table)
// retrieval recall at top-5 (paper: 0.88).
func BenchmarkTable1ClaimTable(b *testing.B) {
	env := benchEnvironment(b)
	var recall float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := env.Table1()
		if err != nil {
			b.Fatal(err)
		}
		recall = r.ClaimTableRecall
	}
	b.ReportMetric(recall, "recall")
}

// BenchmarkTable2TupleVerifier regenerates Table 2 row 1: ChatGPT accuracy
// on (tuple, tuple+text) pairs (paper: 0.88).
func BenchmarkTable2TupleVerifier(b *testing.B) {
	env := benchEnvironment(b)
	var acc float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := env.Table2()
		if err != nil {
			b.Fatal(err)
		}
		acc = r.TupleChatGPT
	}
	b.ReportMetric(acc, "chatgpt-acc")
}

// BenchmarkTable2RelevantTable regenerates Table 2 row 2: accuracy on
// (text, relevant table) pairs (paper: ChatGPT 0.75, PASTA 0.89).
func BenchmarkTable2RelevantTable(b *testing.B) {
	env := benchEnvironment(b)
	var r experiments.Table2Result
	var err error
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err = env.Table2()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(r.RelevantTableChatGPT, "chatgpt-acc")
	b.ReportMetric(r.RelevantTablePasta, "pasta-acc")
}

// BenchmarkTable2RetrievedTable regenerates Table 2 row 3: accuracy on
// (text, retrieved table) pairs (paper: ChatGPT 0.91, PASTA 0.72).
func BenchmarkTable2RetrievedTable(b *testing.B) {
	env := benchEnvironment(b)
	var r experiments.Table2Result
	var err error
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err = env.Table2()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(r.RetrievedTableChatGPT, "chatgpt-acc")
	b.ReportMetric(r.RetrievedTablePasta, "pasta-acc")
}

// BenchmarkFigure1Cases regenerates the Figure 1 case studies (tuple
// completion + text generation, verified/refuted with lake evidence).
func BenchmarkFigure1Cases(b *testing.B) {
	env := benchEnvironment(b)
	matches := 0.0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := env.Figure1()
		if err != nil {
			b.Fatal(err)
		}
		matches = 0
		for _, c := range []experiments.CaseOutcome{r.TupleCorrect, r.TupleWrong, r.TextClaim} {
			if c.Match() {
				matches++
			}
		}
	}
	b.ReportMetric(matches, "cases-matched-of-3")
}

// BenchmarkFigure4CaseStudy regenerates Figure 4: the golf prize-total claim
// refuted by E1 via aggregation, E2 recognized as not related.
func BenchmarkFigure4CaseStudy(b *testing.B) {
	env := benchEnvironment(b)
	ok := 0.0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := env.Figure4()
		if err != nil {
			b.Fatal(err)
		}
		ok = 0
		if r.Final.Match() && r.E1Retrieved && r.E1Verdict == verify.Refuted {
			ok = 1
		}
	}
	b.ReportMetric(ok, "reproduced")
}

// --- Ablation benches (design choices DESIGN.md calls out) ---

// BenchmarkAblationCombiner measures BM25-only vs vector-only vs combined
// retrieval recall (Section 3.1's two-index design).
func BenchmarkAblationCombiner(b *testing.B) {
	env := benchEnvironment(b)
	var r experiments.AblationsResult
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r = experiments.AblationsResult{
			CombinerClaimTable: map[string]float64{},
			CombinerTupleTuple: map[string]float64{},
		}
		if err := env.AblateCombiner(&r); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(r.CombinerClaimTable["bm25"], "bm25-recall")
	b.ReportMetric(r.CombinerClaimTable["vector"], "vector-recall")
	b.ReportMetric(r.CombinerClaimTable["combined"], "combined-recall")
}

// BenchmarkAblationReranker measures recall@k' with and without the
// task-aware reranker (Section 3.2).
func BenchmarkAblationReranker(b *testing.B) {
	env := benchEnvironment(b)
	var r experiments.AblationsResult
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r = experiments.AblationsResult{RerankerAt: map[int]experiments.RerankerPoint{}}
		if err := env.AblateReranker(&r); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(r.RerankerAt[1].With, "recall@1-with")
	b.ReportMetric(r.RerankerAt[1].Without, "recall@1-without")
}

// BenchmarkAblationTopK sweeps the task-agnostic retrieval depth.
func BenchmarkAblationTopK(b *testing.B) {
	env := benchEnvironment(b)
	var r experiments.AblationsResult
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r = experiments.AblationsResult{TopK: map[int]float64{}}
		if err := env.AblateTopK(&r); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(r.TopK[1], "recall@1")
	b.ReportMetric(r.TopK[100], "recall@100")
}

// BenchmarkAblationTrust measures final-verdict accuracy with uniform vs
// trust-weighted resolution under a corrupted source (challenge C3).
func BenchmarkAblationTrust(b *testing.B) {
	env := benchEnvironment(b)
	var r experiments.AblationsResult
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r = experiments.AblationsResult{}
		if err := env.AblateTrust(&r); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(r.TrustUniform, "uniform-acc")
	b.ReportMetric(r.TrustPriors, "priors-acc")
	b.ReportMetric(r.TrustEstimated, "learned-acc")
}

// --- Component micro-benchmarks ---

// BenchmarkIndexScale measures BM25 index build throughput vs lake size.
func BenchmarkIndexScale(b *testing.B) {
	for _, n := range []int{500, 2000} {
		b.Run(fmt.Sprintf("tables=%d", n), func(b *testing.B) {
			cfg := workload.DefaultConfig()
			cfg.NumTables = n
			cfg.NumTexts = n / 2
			corpus, err := workload.GenerateLake(cfg)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ix, err := core.BuildIndexer(corpus.Lake, core.DefaultIndexerConfig(1))
				if err != nil {
					b.Fatal(err)
				}
				ix.Close()
			}
		})
	}
}

// BenchmarkBM25Search measures single-query latency on the content index.
func BenchmarkBM25Search(b *testing.B) {
	ix := invindex.New()
	cfg := workload.DefaultConfig()
	cfg.NumTables = 1000
	corpus, err := workload.GenerateLake(cfg)
	if err != nil {
		b.Fatal(err)
	}
	for _, t := range corpus.Tables {
		if err := ix.Add(t.ID, t.SerializeForIndex()); err != nil {
			b.Fatal(err)
		}
	}
	query := corpus.Tables[42].SerializeForIndex()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if hits := ix.Search(query, 10); len(hits) == 0 {
			b.Fatal("no hits")
		}
	}
}

// BenchmarkBM25SearchTerms measures the pre-tokenized hot loop in
// isolation: allocs/op is the headline number (the steady path allocates
// only the returned hit slice; scratch comes from a pool).
func BenchmarkBM25SearchTerms(b *testing.B) {
	ix := invindex.New()
	cfg := workload.DefaultConfig()
	cfg.NumTables = 1000
	corpus, err := workload.GenerateLake(cfg)
	if err != nil {
		b.Fatal(err)
	}
	for _, t := range corpus.Tables {
		if err := ix.Add(t.ID, t.SerializeForIndex()); err != nil {
			b.Fatal(err)
		}
	}
	terms := textutil.TokenizeFiltered(corpus.Tables[42].SerializeForIndex())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if hits := ix.SearchTerms(terms, 10); len(hits) == 0 {
			b.Fatal("no hits")
		}
	}
}

// BenchmarkVectorSearch compares Flat, IVF, and LSH single-query latency.
func BenchmarkVectorSearch(b *testing.B) {
	const dim, n = 128, 5000
	emb := embed.NewEmbedder(dim, 1)
	vecs := make([]embed.Vector, n)
	for i := range vecs {
		vecs[i] = emb.EmbedText(fmt.Sprintf("document %d about topic %d with words %d", i, i%37, i%113))
	}
	query := vecs[123]

	indexes := map[string]interface {
		Search(q embed.Vector, k int) []vecindex.Hit
		Add(id string, v embed.Vector) error
	}{
		"flat":   vecindex.NewFlat(dim, vecindex.Cosine),
		"sqflat": vecindex.NewSQFlat(dim, vecindex.Cosine, 4),
		"ivf":    vecindex.NewIVF(dim, vecindex.Cosine, 64, 8, 1),
		"lsh":    vecindex.NewLSH(dim, 16, 8, 1),
	}
	for name, ix := range indexes {
		for i, v := range vecs {
			if err := ix.Add(fmt.Sprintf("v%d", i), v); err != nil {
				b.Fatal(err)
			}
		}
		if ivf, ok := ix.(*vecindex.IVF); ok {
			ivf.Train()
		}
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				ix.Search(query, 10)
			}
		})
	}
}

// reportLatencyPercentiles reports p50/p99 over per-op durations.
func reportLatencyPercentiles(b *testing.B, durs []time.Duration) {
	if len(durs) == 0 {
		return
	}
	sort.Slice(durs, func(i, j int) bool { return durs[i] < durs[j] })
	pick := func(q float64) float64 {
		i := int(q * float64(len(durs)-1))
		return float64(durs[i].Nanoseconds())
	}
	b.ReportMetric(pick(0.50), "p50-ns")
	b.ReportMetric(pick(0.99), "p99-ns")
}

// retrievalBenchLake builds the multi-kind retrieval corpus shared by the
// sharding and mixed ingest+query benchmarks.
func retrievalBenchLake(b *testing.B, tables, texts int) *workload.Corpus {
	b.Helper()
	cfg := workload.DefaultConfig()
	cfg.NumTables = tables
	cfg.NumTexts = texts
	corpus, err := workload.GenerateLake(cfg)
	if err != nil {
		b.Fatal(err)
	}
	return corpus
}

// BenchmarkRetrievalSharding measures multi-kind retrieval latency (p50 and
// p99 per query) on the seed layout (1 shard) vs the sharded parallel
// fan-out, the tentpole speedup of the live-lake refactor.
func BenchmarkRetrievalSharding(b *testing.B) {
	corpus := retrievalBenchLake(b, 800, 400)
	queries := make([]string, 64)
	for i := range queries {
		queries[i] = corpus.Tables[(i*37)%len(corpus.Tables)].SerializeForIndex()
	}
	layouts := []struct {
		name    string
		shards  int
		workers int
	}{
		{"seed-sequential", 1, 1}, // the pre-refactor layout: one shard, no fan-out
		{"shards=1-parallel", 1, 0},
		{"shards=4-parallel", 4, 0},
	}
	for _, layout := range layouts {
		if layout.workers != 1 && runtime.GOMAXPROCS(0) == 1 {
			b.Run(layout.name, func(b *testing.B) {
				b.Skipf("GOMAXPROCS=1: parallel fan-out would measure scheduler overhead, not sharding speedup")
			})
			continue
		}
		icfg := core.DefaultIndexerConfig(1)
		icfg.Shards = layout.shards
		icfg.RetrieveWorkers = layout.workers
		icfg.QueryCacheSize = 0 // measure search, not embedding-cache hits
		ix, err := core.BuildIndexer(corpus.Lake, icfg)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(layout.name, func(b *testing.B) {
			durs := make([]time.Duration, 0, b.N)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				start := time.Now()
				_, combined := ix.Retrieve(queries[i%len(queries)], 100)
				durs = append(durs, time.Since(start))
				if len(combined) == 0 {
					b.Fatal("no results")
				}
			}
			b.StopTimer()
			reportLatencyPercentiles(b, durs)
		})
		ix.Close() // detach from the shared lake before the next layout
	}
}

// benchIngestSeq keeps live-ingested table IDs unique across benchmark
// re-runs (the lake persists while the harness retries larger b.N).
var benchIngestSeq atomic.Int64

// BenchmarkMixedIngestQuery measures retrieval latency while tables stream
// into the live lake — the online-ingestion-under-query-load scenario the
// frozen seed could not express.
func BenchmarkMixedIngestQuery(b *testing.B) {
	corpus := retrievalBenchLake(b, 400, 200)
	icfg := core.DefaultIndexerConfig(1)
	icfg.Shards = 4
	ix, err := core.BuildIndexer(corpus.Lake, icfg)
	if err != nil {
		b.Fatal(err)
	}
	queries := make([]string, 64)
	for i := range queries {
		queries[i] = corpus.Tables[(i*17)%len(corpus.Tables)].SerializeForIndex()
	}

	stop := make(chan struct{})
	var ingested int64
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			seq := benchIngestSeq.Add(1)
			t := table.New(fmt.Sprintf("bench-live-%d", seq), fmt.Sprintf("live benchmark table %d", seq), []string{"k", "v"})
			t.MustAppendRow(fmt.Sprintf("key%d", seq), fmt.Sprintf("value%d", seq))
			if err := corpus.Lake.AddTable(t); err != nil {
				b.Error(err)
				return
			}
			atomic.AddInt64(&ingested, 1)
		}
	}()

	durs := make([]time.Duration, 0, b.N)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		start := time.Now()
		ix.Retrieve(queries[i%len(queries)], 100)
		durs = append(durs, time.Since(start))
	}
	b.StopTimer()
	close(stop)
	wg.Wait()
	reportLatencyPercentiles(b, durs)
	b.ReportMetric(float64(atomic.LoadInt64(&ingested))/float64(b.N), "ingests/op")
}

// benchDoc synthesizes a distinct ~40-token document so embedding cost —
// the expensive stage the pipelined write path moves outside the lake's
// write lock — dominates realistic ingest work.
func benchDoc(seq int64) *doc.Document {
	return &doc.Document{
		ID:    fmt.Sprintf("ingest-bench-%d", seq),
		Title: fmt.Sprintf("ingest benchmark document %d", seq),
		Text: fmt.Sprintf("Document %d covers topic %d in the ingestion throughput "+
			"suite, describing player %d who recorded a money of %d at the %d open "+
			"championship while the committee reviewed attendance revenue weather "+
			"conditions course layout and historical records from season %d.",
			seq, seq%37, seq%113, 500+seq%250, 1900+seq%120, seq%53),
	}
}

// benchDocSeq keeps ingested document IDs unique across benchmark re-runs.
var benchDocSeq atomic.Int64

// BenchmarkIngestThroughput measures live document-ingest throughput
// (docs/sec) at 1, 4, and 16 concurrent writers, comparing the pipelined
// write path against the seed's serialized behavior (writers share one
// mutex spanning the whole ingest, emulating the old write lock that
// covered tokenize+embed+index). On multi-core hardware pipelined
// throughput scales with writers while serialized stays flat; on one core
// the two converge — the pipeline must not cost throughput.
func BenchmarkIngestThroughput(b *testing.B) {
	for _, mode := range []string{"serialized", "pipelined"} {
		for _, writers := range []int{1, 4, 16} {
			b.Run(fmt.Sprintf("%s/writers=%d", mode, writers), func(b *testing.B) {
				lake := datalake.New()
				icfg := core.DefaultIndexerConfig(1)
				icfg.Shards = 4
				icfg.QueryCacheSize = 0
				ix, err := core.BuildIndexer(lake, icfg)
				if err != nil {
					b.Fatal(err)
				}
				defer ix.Close()
				defer lake.Close()

				var serialMu sync.Mutex
				var remaining atomic.Int64
				remaining.Store(int64(b.N))
				var wg sync.WaitGroup
				b.ResetTimer()
				start := time.Now()
				for w := 0; w < writers; w++ {
					wg.Add(1)
					go func() {
						defer wg.Done()
						for remaining.Add(-1) >= 0 {
							d := benchDoc(benchDocSeq.Add(1))
							if mode == "serialized" {
								serialMu.Lock()
							}
							err := lake.AddDocument(d)
							if mode == "serialized" {
								serialMu.Unlock()
							}
							if err != nil {
								b.Error(err)
								return
							}
						}
					}()
				}
				wg.Wait()
				if _, err := lake.Flush(); err != nil {
					b.Fatal(err)
				}
				elapsed := time.Since(start)
				b.StopTimer()
				if elapsed > 0 {
					b.ReportMetric(float64(b.N)/elapsed.Seconds(), "docs/sec")
				}
			})
		}
	}
}

// BenchmarkObsOverhead measures what the observability layer costs on the
// ingest hot path: the same pipelined document ingest, bare vs with every
// lake and indexer metric armed (prepare/commit/apply histograms, queue
// gauge, per-family shard-search timers). The two docs/sec figures feed
// benchgate's -obs-floor ratio check — instrumented throughput must stay
// within a few percent of bare on the same machine in the same run.
func BenchmarkObsOverhead(b *testing.B) {
	for _, mode := range []string{"bare", "instrumented"} {
		b.Run(mode, func(b *testing.B) {
			lake := datalake.New()
			icfg := core.DefaultIndexerConfig(1)
			icfg.Shards = 4
			icfg.QueryCacheSize = 0
			ix, err := core.BuildIndexer(lake, icfg)
			if err != nil {
				b.Fatal(err)
			}
			defer ix.Close()
			defer lake.Close()
			if mode == "instrumented" {
				reg := obs.NewRegistry()
				lake.SetMetrics(reg)
				ix.SetMetrics(reg)
			}

			b.ResetTimer()
			start := time.Now()
			for i := 0; i < b.N; i++ {
				if err := lake.AddDocument(benchDoc(benchDocSeq.Add(1))); err != nil {
					b.Fatal(err)
				}
			}
			if _, err := lake.Flush(); err != nil {
				b.Fatal(err)
			}
			elapsed := time.Since(start)
			b.StopTimer()
			if elapsed > 0 {
				b.ReportMetric(float64(b.N)/elapsed.Seconds(), "docs/sec")
			}
		})
	}
}

// BenchmarkBatchIngest measures AddBatch throughput (docs/sec) at batch
// sizes amortizing the commit stage: one write-lock acquisition commits the
// whole batch while embedding fans out across the prepare worker pool.
func BenchmarkBatchIngest(b *testing.B) {
	for _, size := range []int{16, 128} {
		b.Run(fmt.Sprintf("batch=%d", size), func(b *testing.B) {
			lake := datalake.New()
			icfg := core.DefaultIndexerConfig(1)
			icfg.Shards = 4
			icfg.QueryCacheSize = 0
			ix, err := core.BuildIndexer(lake, icfg)
			if err != nil {
				b.Fatal(err)
			}
			defer ix.Close()
			defer lake.Close()

			b.ResetTimer()
			start := time.Now()
			docs := 0
			for i := 0; i < b.N; i++ {
				items := make([]datalake.BatchItem, size)
				for j := range items {
					items[j] = datalake.BatchItem{Doc: benchDoc(benchDocSeq.Add(1))}
				}
				results, err := lake.AddBatch(items)
				if err != nil {
					b.Fatal(err)
				}
				for _, res := range results {
					if res.Err != nil {
						b.Fatal(res.Err)
					}
				}
				docs += size
			}
			elapsed := time.Since(start)
			b.StopTimer()
			if elapsed > 0 {
				b.ReportMetric(float64(docs)/elapsed.Seconds(), "docs/sec")
			}
		})
	}
}

// BenchmarkDurableIngest measures the write-ahead log's overhead: live
// document-ingest throughput (docs/sec) through an in-memory system versus
// a durable one at each sync policy. fsync=none and fsync=interval pay one
// buffered write per commit and should stay within 2x of in-memory;
// fsync=always pays a disk flush per commit and is the floor worth knowing
// before choosing it.
func BenchmarkDurableIngest(b *testing.B) {
	for _, mode := range []string{"inmemory", "fsync=none", "fsync=interval", "fsync=always"} {
		b.Run(mode, func(b *testing.B) {
			var sys *System
			var err error
			if mode == "inmemory" {
				lake := datalake.New()
				icfg := core.DefaultIndexerConfig(1)
				icfg.QueryCacheSize = 0
				opts := DefaultOptions(1)
				opts.Indexer = icfg
				sys, err = NewSystem(lake, opts)
			} else {
				opts := DefaultOpenOptions(1)
				opts.Indexer.QueryCacheSize = 0
				opts.Sync = strings.TrimPrefix(mode, "fsync=")
				sys, err = Open(b.TempDir(), opts)
			}
			if err != nil {
				b.Fatal(err)
			}
			defer sys.Close()

			b.ResetTimer()
			start := time.Now()
			for i := 0; i < b.N; i++ {
				d := benchDoc(benchDocSeq.Add(1))
				if err := sys.AddDocument(&Document{ID: d.ID, Title: d.Title, Text: d.Text}); err != nil {
					b.Fatal(err)
				}
			}
			if _, err := sys.Flush(); err != nil {
				b.Fatal(err)
			}
			elapsed := time.Since(start)
			b.StopTimer()
			if elapsed > 0 {
				b.ReportMetric(float64(b.N)/elapsed.Seconds(), "docs/sec")
			}
			// Log growth per committed record (the delta behind
			// verifai_wal_appended_bytes_total): how much disk each document
			// costs under the configured payload encoding.
			if ds, ok := sys.Durability(); ok && ds.WALRecords > 0 {
				b.ReportMetric(float64(ds.WALBytes)/float64(ds.WALRecords), "wal-bytes/rec")
			}
		})
	}
}

// walEncodeRecords is the mutation stream BenchmarkWALEncode frames: the
// full contents of a small generated corpus — source registrations,
// tables, entity pages, and KG triples in the proportions GenerateLake
// actually commits them — stamped the way the ingest path stamps live
// appends. Both codecs encode the identical records.
func walEncodeRecords(b *testing.B) []wal.Record {
	cfg := workload.DefaultConfig()
	cfg.NumTables = 60
	cfg.NumTexts = 30
	c, err := workload.GenerateLake(cfg)
	if err != nil {
		b.Fatal(err)
	}
	var recs []wal.Record
	add := func(rec wal.Record) {
		rec.Version, rec.TS = uint64(len(recs)+1), time.Now().UnixNano()
		recs = append(recs, rec)
	}
	for _, s := range c.Lake.Sources() {
		src := s
		add(wal.Record{Kind: wal.KindSource, Source: &src})
	}
	for _, tbl := range c.Tables {
		add(wal.Record{Kind: wal.KindTable, Table: tbl})
	}
	for _, id := range c.Lake.DocIDs() {
		d, _ := c.Lake.Document(id)
		add(wal.Record{Kind: wal.KindDocument, Doc: d})
	}
	for _, tr := range c.Lake.Triples() {
		trc := tr
		add(wal.Record{Kind: wal.KindTriple, Triple: &trc})
	}
	return recs
}

// BenchmarkWALEncode measures the record codec in isolation: whole-frame
// bytes per record and encode cost for each payload format over the same
// mutation mix. The bytes/rec pair is the tentpole's size claim — CI's
// benchgate asserts binary <= 0.7x JSON within the run (machine
// independent, since both sides come from the same process).
func BenchmarkWALEncode(b *testing.B) {
	recs := walEncodeRecords(b)
	for _, f := range []wal.Format{wal.FormatBinary, wal.FormatJSON} {
		b.Run(f.String(), func(b *testing.B) {
			var buf bytes.Buffer
			var frameBytes, frames int64
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				buf.Reset()
				if err := wal.EncodeFrameFormat(&buf, recs[i%len(recs)], f); err != nil {
					b.Fatal(err)
				}
				frameBytes += int64(buf.Len())
				frames++
			}
			b.StopTimer()
			b.ReportMetric(float64(frameBytes)/float64(frames), "bytes/rec")
		})
	}
}

// BenchmarkCheckpointStall measures what an ingest writer feels while a
// checkpoint is in flight. A durable system is seeded with a few thousand
// documents (so the checkpoint's write phase — catalog + index snapshot
// serialization and tree fsync — is long), a background goroutine runs
// checkpoints back to back, and per-ingest latency is sampled only while
// a checkpoint is actually running.
//
// The gated expectation of the two-phase protocol: ingest p99 during a
// checkpoint is bounded by the fork phase (the only quiesced window,
// reported as fork-ns) and does not grow with snapshot size — compare
// p99-ns against write-ns, the snapshot serialization time a single-phase
// checkpoint would have stalled writers for. The deterministic version of
// this gate is TestCheckpointDoesNotBlockIngest in internal/durable.
func BenchmarkCheckpointStall(b *testing.B) {
	opts := DefaultOpenOptions(1)
	opts.Indexer.QueryCacheSize = 0
	opts.Sync = "none" // isolate checkpoint-induced stall from per-commit fsync cost
	sys, err := Open(b.TempDir(), opts)
	if err != nil {
		b.Fatal(err)
	}
	defer sys.Close()

	// Seed enough state that one checkpoint write phase outlasts the whole
	// sampled ingest window.
	const seedDocs, seedBatch = 3000, 500
	for off := 0; off < seedDocs; off += seedBatch {
		items := make([]BatchItem, seedBatch)
		for j := range items {
			d := benchDoc(benchDocSeq.Add(1))
			items[j] = BatchItem{Doc: &Document{ID: d.ID, Title: d.Title, Text: d.Text}}
		}
		results, err := sys.AddBatch(items)
		if err != nil {
			b.Fatal(err)
		}
		for _, res := range results {
			if res.Err != nil {
				b.Fatal(res.Err)
			}
		}
	}

	stop := make(chan struct{})
	ckptDone := make(chan struct{})
	var inFlight atomic.Bool
	var checkpoints int64
	go func() {
		defer close(ckptDone)
		for {
			select {
			case <-stop:
				return
			default:
			}
			inFlight.Store(true)
			_, err := sys.Checkpoint()
			inFlight.Store(false)
			if err != nil {
				b.Error(err)
				return
			}
			checkpoints++
		}
	}()
	// Sample only while a checkpoint is genuinely in flight; bail (the
	// error is already recorded) if the checkpointer dies, rather than
	// spinning until the CI job timeout.
	waitInFlight := func() bool {
		for !inFlight.Load() {
			select {
			case <-ckptDone:
				return false
			default:
				time.Sleep(50 * time.Microsecond)
			}
		}
		return true
	}
	if !waitInFlight() {
		b.Fatal("checkpointer exited before the first checkpoint")
	}

	durs := make([]time.Duration, 0, b.N)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Between checkpoints: wait off the clock, so ns/op measures the
		// ingest itself rather than idle spinning.
		b.StopTimer()
		if !waitInFlight() {
			break
		}
		d := benchDoc(benchDocSeq.Add(1))
		b.StartTimer()
		start := time.Now()
		if err := sys.AddDocument(&Document{ID: d.ID, Title: d.Title, Text: d.Text}); err != nil {
			b.Fatal(err)
		}
		durs = append(durs, time.Since(start))
	}
	b.StopTimer()
	close(stop)
	<-ckptDone
	reportLatencyPercentiles(b, durs)
	ds, _ := sys.Durability()
	b.ReportMetric(float64(ds.LastForkNanos), "fork-ns")
	b.ReportMetric(float64(ds.LastWriteNanos), "write-ns")
	b.ReportMetric(float64(checkpoints), "checkpoints")
}

// caseSystem builds an in-memory system over the paper's case lake for the
// serving-path benchmarks. cache=false disables the verify-result cache.
func caseSystem(b *testing.B, cache bool) *System {
	b.Helper()
	lake := NewLake()
	lake.AddSource(Source{ID: workload.CaseSource, Name: "cases", TrustPrior: 0.9})
	for _, t := range []*Table{
		workload.OhioDistrictsTable(), workload.FilmographyTable(),
		workload.USOpen1954Table(), workload.USOpen1959Table(),
	} {
		if err := lake.AddTable(t); err != nil {
			b.Fatal(err)
		}
	}
	if err := lake.AddDocument(workload.MeaganGoodDoc()); err != nil {
		b.Fatal(err)
	}
	opts := ExactOptions(1)
	if !cache {
		opts.Pipeline.ResultCache = 0
	}
	sys, err := NewSystem(lake, opts)
	if err != nil {
		b.Fatal(err)
	}
	return sys
}

// BenchmarkVerifyCachedVsCold measures the versioned result cache's win on
// repeated claims: "cold" recomputes the full retrieve→rerank→verify
// pipeline every time, "cached" serves the identical request from the
// sharded LRU (invalidated exactly on writes touching its evidence kinds).
// The expected gap is ≥10x — a hit is a fingerprint hash and one LRU
// lookup versus the whole pipeline.
func BenchmarkVerifyCachedVsCold(b *testing.B) {
	for _, mode := range []string{"cold", "cached"} {
		b.Run(mode, func(b *testing.B) {
			sys := caseSystem(b, mode == "cached")
			defer sys.Close()
			c := workload.GolfClaim()
			if _, err := sys.VerifyClaim("bench-cache", c); err != nil { // warm
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := sys.VerifyClaim("bench-cache", c); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			if mode == "cached" {
				st := sys.Stats()
				if st.ResultCacheHits == 0 {
					b.Fatal("cached mode never hit the result cache")
				}
				b.ReportMetric(float64(st.ResultCacheHits)/float64(st.ResultCacheHits+st.ResultCacheMisses), "hit-rate")
			}
		})
	}
}

// BenchmarkPinnedVsHeadVerify measures the cost of time-travel reads
// relative to head reads. "head" and "pinned" both run the full pipeline
// with the result cache off — pinned replays against the registry's frozen
// shards and pin-time trust, so any gap is pure snapshot overhead and
// should be ~1x. "pinned-cached" repeats one pinned request with the cache
// on: the pin is baked into the cache key, so hits are as cheap as head
// hits. Writes churn the head between setup and measurement so the pinned
// path demonstrably reads the old version.
func BenchmarkPinnedVsHeadVerify(b *testing.B) {
	run := func(b *testing.B, cached, pinned bool) {
		sys := caseSystem(b, cached)
		defer sys.Close()
		ctx := context.Background()
		c := workload.GolfClaim()
		var asOf uint64
		if pinned {
			v, err := sys.PinSnapshot()
			if err != nil {
				b.Fatal(err)
			}
			asOf = v
			// Move the head past the pin so pinned reads cannot be
			// silently serving live state.
			for i := 0; i < 8; i++ {
				if err := sys.AddDocument(&doc.Document{
					ID: fmt.Sprintf("bench-churn-%d", i), Title: "churn", Text: "churn text",
				}); err != nil {
					b.Fatal(err)
				}
			}
		}
		verifyOnce := func(id string) Report {
			var (
				rep Report
				err error
			)
			if pinned {
				rep, err = sys.VerifyClaimAsOfCtx(ctx, id, c, asOf)
			} else {
				rep, err = sys.VerifyClaim(id, c)
			}
			if err != nil {
				b.Fatal(err)
			}
			return rep
		}
		if rep := verifyOnce("bench-pin-warm"); pinned && rep.AsOfVersion != asOf {
			b.Fatalf("as_of_version = %d, want %d", rep.AsOfVersion, asOf)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			id := fmt.Sprintf("bench-pin-%d", i)
			if cached {
				id = "bench-pin-warm" // same request: exercise the pin-keyed hit path
			}
			verifyOnce(id)
		}
		b.StopTimer()
		if cached {
			if st := sys.Stats(); st.ResultCacheHits == 0 {
				b.Fatal("pinned-cached mode never hit the result cache")
			}
		}
	}
	b.Run("head", func(b *testing.B) { run(b, false, false) })
	b.Run("pinned", func(b *testing.B) { run(b, false, true) })
	b.Run("pinned-cached", func(b *testing.B) { run(b, true, true) })
}

// BenchmarkServeConcurrentVerify measures the admission-controlled HTTP
// serving path under concurrent verify load: 8 clients hammer
// POST /v1/verify/claim over a small rotation of claims (the heavy-traffic
// shape where the result cache carries most requests), reporting requests
// per second and per-request p50/p99.
func BenchmarkServeConcurrentVerify(b *testing.B) {
	const clients = 8
	sys := caseSystem(b, true)
	defer sys.Close()
	// Admit every bench client: the default limiter (4×GOMAXPROCS) is
	// sized for real cores, and this measures throughput, not rejection.
	ts := httptest.NewServer(server.New(sys.Pipeline(), server.WithVerifyConcurrency(2*clients)))
	defer ts.Close()

	golf := workload.GolfClaim().Text
	bodies := make([][]byte, 4)
	for i := range bodies {
		data, err := json.Marshal(map[string]any{"id": fmt.Sprintf("serve-%d", i), "text": golf})
		if err != nil {
			b.Fatal(err)
		}
		bodies[i] = data
	}

	var (
		remaining atomic.Int64
		durMu     sync.Mutex
		durs      []time.Duration
		wg        sync.WaitGroup
	)
	remaining.Store(int64(b.N))
	b.ResetTimer()
	start := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var local []time.Duration
			for i := remaining.Add(-1); i >= 0; i = remaining.Add(-1) {
				t0 := time.Now()
				resp, err := http.Post(ts.URL+"/v1/verify/claim", "application/json",
					bytes.NewReader(bodies[int(i)%len(bodies)]))
				if err != nil {
					b.Error(err)
					return
				}
				_, _ = io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					b.Errorf("status %d", resp.StatusCode)
					return
				}
				local = append(local, time.Since(t0))
			}
			durMu.Lock()
			durs = append(durs, local...)
			durMu.Unlock()
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	b.StopTimer()
	if elapsed > 0 {
		b.ReportMetric(float64(b.N)/elapsed.Seconds(), "reqs/sec")
	}
	reportLatencyPercentiles(b, durs)
}

// BenchmarkEmbedText measures embedding throughput.
func BenchmarkEmbedText(b *testing.B) {
	emb := embed.NewEmbedder(128, 1)
	text := "In the 1954 u.s. open (golf), Tommy Bolt recorded a money of 570 while competing against the field."
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		emb.EmbedText(text)
	}
}

// BenchmarkEndToEndVerify measures one full pipeline verification (retrieve
// → combine → rerank → verify → resolve) on the bench lake.
func BenchmarkEndToEndVerify(b *testing.B) {
	env := benchEnvironment(b)
	task := env.TupleTasks[0]
	_, tuple := env.Impute(task)
	g := env.TupleObject(task, tuple)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := env.Pipeline.Verify(g, datalake.KindTuple, datalake.KindText); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationVectorIndex compares the semantic index families
// (Flat exact, IVF, LSH) on vector-only claim→table retrieval quality.
func BenchmarkAblationVectorIndex(b *testing.B) {
	env := benchEnvironment(b)
	var points map[string]experiments.VectorIndexPoint
	var err error
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		points, err = env.AblateVectorIndex()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(points["flat"].Recall, "flat-recall")
	b.ReportMetric(points["ivf"].Recall, "ivf-recall")
	b.ReportMetric(points["lsh"].Recall, "lsh-recall")
}

// BenchmarkAblationQuantization reports quantized-vs-exact recall@10 and
// mean per-query latency for the int8 scalar-quantized flat index at the
// serving default rerank multiple (4). The acceptance bar is
// recall@10 >= 0.95.
func BenchmarkAblationQuantization(b *testing.B) {
	env := benchEnvironment(b)
	var pt experiments.QuantizationPoint
	var err error
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pt, err = env.AblateQuantization(10, 4)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(pt.RecallAtK, "recall@10")
	b.ReportMetric(pt.QueryMicros, "quant-us/query")
	b.ReportMetric(pt.ExactQueryMicros, "exact-us/query")
}

// BenchmarkRecoveryOpen measures snapshot-restart latency — the time from
// "snapshot directory on disk" to "indexer serving" — across the three
// on-disk strategies at three lake sizes:
//
//   - legacy-gob: the pre-binfmt encoding/gob snapshot, fully decoded and
//     re-allocated on open (the old recovery path).
//   - binary-read: the binfmt columnar snapshot with mmap disabled
//     (REPRO_BINFMT_NOMMAP=1), i.e. one sequential read + checksum.
//   - binary-mmap: the binfmt snapshot mapped read-only; column decode is
//     pointer casting, so open cost is validation, not deserialization.
//
// The ratio legacy-gob / binary-mmap at the largest size is the headline
// startup speedup recorded in bench_baseline.txt.
func BenchmarkRecoveryOpen(b *testing.B) {
	for _, tables := range []int{250, 1000, 4000} {
		corpus := retrievalBenchLake(b, tables, tables/2)
		icfg := core.DefaultIndexerConfig(1)
		ix, err := core.BuildIndexer(corpus.Lake, icfg)
		if err != nil {
			b.Fatal(err)
		}
		binDir, gobDir := b.TempDir(), b.TempDir()
		err = corpus.Lake.Quiesce(func(v uint64) error {
			fz := ix.Freeze()
			if err := fz.Save(binDir, v); err != nil {
				return err
			}
			return fz.SaveLegacy(gobDir, v)
		})
		if err != nil {
			b.Fatal(err)
		}
		ix.Close()
		variants := []struct {
			name   string
			dir    string
			noMmap bool
		}{
			{"legacy-gob", gobDir, false},
			{"binary-read", binDir, true},
			{"binary-mmap", binDir, false},
		}
		for _, v := range variants {
			b.Run(fmt.Sprintf("tables=%d/%s", tables, v.name), func(b *testing.B) {
				if v.noMmap {
					b.Setenv(binfmt.NoMmapEnv, "1")
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					loaded, err := core.BuildIndexerFromSnapshot(corpus.Lake, icfg, v.dir)
					if err != nil {
						b.Fatal(err)
					}
					loaded.Close()
				}
			})
		}
	}
}
