// Package claims models textual claims about tabular data: a structured
// representation (entities, attribute, optional aggregation, stated value),
// a natural-language renderer, a parser that recovers structure from text,
// and an evaluator that checks a claim against a table by actually executing
// the implied lookup or aggregation.
//
// This package is the shared reasoning substrate of the verifiers: the
// PASTA-style local model executes claims against tables (the paper's
// "table-operations aware fact verification"), and the simulated ChatGPT
// verifier uses the same machinery with a different error profile. It also
// reproduces the Figure 4 case, where a sum over three players' prize money
// refutes the claim.
package claims

import (
	"fmt"
	"strings"
)

// AggOp is the aggregation a claim applies over the matched rows.
type AggOp int

const (
	// OpLookup states the attribute value of a single entity.
	OpLookup AggOp = iota
	// OpSum states the total of the attribute over the listed entities.
	OpSum
	// OpAvg states the average of the attribute over the listed entities.
	OpAvg
	// OpMin states the minimum of the attribute over the listed entities.
	OpMin
	// OpMax states the maximum of the attribute over the listed entities.
	OpMax
	// OpCount states how many rows have the attribute equal to the value.
	OpCount
)

// String implements fmt.Stringer.
func (op AggOp) String() string {
	switch op {
	case OpLookup:
		return "lookup"
	case OpSum:
		return "sum"
	case OpAvg:
		return "avg"
	case OpMin:
		return "min"
	case OpMax:
		return "max"
	case OpCount:
		return "count"
	default:
		return fmt.Sprintf("AggOp(%d)", int(op))
	}
}

// Claim is a structured textual claim about a table.
type Claim struct {
	// Text is the natural-language form. Populated by Render or by the
	// workload generator; Parse fills the structured fields from it.
	Text string
	// Context is the table caption the claim refers to ("1954 u.s. open
	// (golf)"). Claims in the TabFact-style workload always carry context.
	Context string
	// Entities are the subject entities (key values) the claim ranges over.
	// Empty for OpCount claims, singleton for OpLookup.
	Entities []string
	// Attribute is the column the claim addresses.
	Attribute string
	// Op is the aggregation.
	Op AggOp
	// Value is the stated value (number rendered as string, or categorical).
	Value string
}

// IsAggregate reports whether the claim involves a multi-row operation.
func (c Claim) IsAggregate() bool { return c.Op != OpLookup }

// Render produces the canonical natural-language form of the claim and
// stores it in Text. The templates are the ones the synthetic TabFact-style
// workload uses, so Parse∘Render is the identity on structured fields.
func (c *Claim) Render() string {
	ents := joinEntities(c.Entities)
	var s string
	switch c.Op {
	case OpLookup:
		s = fmt.Sprintf("In %s, the %s for %s was %s.", c.Context, c.Attribute, ents, c.Value)
	case OpSum:
		s = fmt.Sprintf("In %s, the %s for %s was %s in total.", c.Context, c.Attribute, ents, c.Value)
	case OpAvg:
		s = fmt.Sprintf("In %s, the %s for %s was %s on average.", c.Context, c.Attribute, ents, c.Value)
	case OpMin:
		s = fmt.Sprintf("In %s, the lowest %s among %s was %s.", c.Context, c.Attribute, ents, c.Value)
	case OpMax:
		s = fmt.Sprintf("In %s, the highest %s among %s was %s.", c.Context, c.Attribute, ents, c.Value)
	case OpCount:
		s = fmt.Sprintf("In %s, %s rows had a %s of %s.", c.Context, c.Value, c.Attribute, valueOrBlank(c.Entities))
	}
	c.Text = s
	return s
}

// joinEntities renders an entity list as "a", "a and b", or "a, b, and c".
func joinEntities(es []string) string {
	switch len(es) {
	case 0:
		return ""
	case 1:
		return es[0]
	case 2:
		return es[0] + " and " + es[1]
	default:
		return strings.Join(es[:len(es)-1], ", ") + ", and " + es[len(es)-1]
	}
}

// valueOrBlank renders the count-claim target value, stored as the sole
// entity slot for OpCount.
func valueOrBlank(es []string) string {
	if len(es) == 0 {
		return ""
	}
	return es[0]
}
