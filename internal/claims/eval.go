package claims

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/table"
	"repro/internal/textutil"
)

// Outcome is the ternary result of checking a claim against evidence,
// matching the paper's verify(g, x) → verified | refuted | not related.
type Outcome int

const (
	// Unrelated means the evidence can neither support nor refute the claim.
	Unrelated Outcome = iota
	// Supports means the evidence verifies the claim.
	Supports
	// Refutes means the evidence contradicts the claim.
	Refutes
)

// String implements fmt.Stringer.
func (o Outcome) String() string {
	switch o {
	case Supports:
		return "supports"
	case Refutes:
		return "refutes"
	case Unrelated:
		return "unrelated"
	default:
		return fmt.Sprintf("Outcome(%d)", int(o))
	}
}

// attributeSynonyms maps common claim phrasings onto column names, the small
// lexical bridge a learned verifier would capture. Figure 4's claim says
// "cash prize" while the golf table's column is "money".
var attributeSynonyms = map[string]string{
	"cash prize":  "money",
	"prize money": "money",
	"prize":       "money",
	"winnings":    "money",
	"earnings":    "money",
	"wage":        "salary",
	"pay":         "salary",
}

// Eval checks a structured claim against a table by executing the implied
// lookup or aggregation. The returned explanation mirrors the paper's
// Figure 4 output style ("Verification result: Refuted. Explanation: ...").
//
// Relatedness rules (in order):
//  1. The claim's context must match the table caption (folded equality or
//     token Jaccard >= 0.7, tolerating paraphrased contexts that drop a
//     year); otherwise the table is Unrelated — this is how
//     the 1959 U.S. Open table is rejected for a 1954 claim even though the
//     same players appear in it.
//  2. The claimed attribute must resolve to a column (directly or through a
//     synonym); otherwise Unrelated.
//  3. Every claimed entity must appear in the table; otherwise Unrelated.
func Eval(c Claim, t *table.Table) (Outcome, string) {
	if !captionMatches(c.Context, t.Caption) {
		return Unrelated, fmt.Sprintf("The table is about %q, not %q.", t.Caption, c.Context)
	}
	col := resolveAttribute(c.Attribute, t)
	if col < 0 {
		return Unrelated, fmt.Sprintf("The table has no column matching %q.", c.Attribute)
	}

	if c.Op == OpCount {
		return evalCount(c, t, col)
	}

	rows := make([]int, 0, len(c.Entities))
	for _, e := range c.Entities {
		row := findEntityRow(t, e)
		if row < 0 {
			return Unrelated, fmt.Sprintf("Entity %q does not appear in the table.", e)
		}
		rows = append(rows, row)
	}
	if len(rows) == 0 {
		return Unrelated, "The claim names no entities to check."
	}

	switch c.Op {
	case OpLookup:
		return evalLookup(c, t, col, rows[0])
	case OpSum, OpAvg, OpMin, OpMax:
		return evalAggregate(c, t, col, rows)
	default:
		return Unrelated, fmt.Sprintf("Unsupported claim operation %v.", c.Op)
	}
}

// captionMatches reports whether the claim context names this table.
func captionMatches(context, caption string) bool {
	if textutil.Fold(context) == textutil.Fold(caption) {
		return true
	}
	a := textutil.Tokenize(context)
	b := textutil.Tokenize(caption)
	return textutil.Jaccard(a, b) >= 0.7
}

// resolveAttribute maps the claim's attribute phrase onto a column index,
// trying exact fold match, the synonym table, and token containment.
func resolveAttribute(attr string, t *table.Table) int {
	if col := t.ColumnIndex(attr); col >= 0 {
		return col
	}
	if syn, ok := attributeSynonyms[textutil.Fold(attr)]; ok {
		if col := t.ColumnIndex(syn); col >= 0 {
			return col
		}
	}
	// Token containment: "total score" matches column "score".
	at := textutil.Tokenize(attr)
	best, bestScore := -1, 0.0
	for i, c := range t.Columns {
		ct := textutil.Tokenize(c)
		s := textutil.Jaccard(at, ct)
		if s > bestScore {
			best, bestScore = i, s
		}
	}
	if bestScore >= 0.5 {
		return best
	}
	return -1
}

// findEntityRow locates the row whose non-numeric cell folds equal to the
// entity, scanning key-like columns first.
func findEntityRow(t *table.Table, entity string) int {
	want := textutil.Fold(entity)
	for col := 0; col < t.NumCols(); col++ {
		if t.IsNumericColumn(col) {
			continue
		}
		for row := range t.Rows {
			if textutil.Fold(t.Rows[row][col]) == want {
				return row
			}
		}
	}
	return -1
}

func evalLookup(c Claim, t *table.Table, col, row int) (Outcome, string) {
	actual := t.Rows[row][col]
	if valuesMatch(c.Value, actual) {
		return Supports, fmt.Sprintf("The %s for %s is %s, matching the claim.", t.Columns[col], c.Entities[0], actual)
	}
	return Refutes, fmt.Sprintf("The %s for %s is %s, not %s.", t.Columns[col], c.Entities[0], actual, c.Value)
}

func evalAggregate(c Claim, t *table.Table, col int, rows []int) (Outcome, string) {
	vals := make([]float64, 0, len(rows))
	cells := make([]string, 0, len(rows))
	for _, row := range rows {
		cell := t.Rows[row][col]
		v, ok := textutil.ParseNumber(cell)
		if !ok {
			return Unrelated, fmt.Sprintf("The %s cell %q is not numeric, so the claimed %v cannot be checked.", t.Columns[col], cell, c.Op)
		}
		vals = append(vals, v)
		cells = append(cells, cell)
	}
	var actual float64
	switch c.Op {
	case OpSum:
		for _, v := range vals {
			actual += v
		}
	case OpAvg:
		for _, v := range vals {
			actual += v
		}
		actual /= float64(len(vals))
	case OpMin:
		actual = vals[0]
		for _, v := range vals[1:] {
			if v < actual {
				actual = v
			}
		}
	case OpMax:
		actual = vals[0]
		for _, v := range vals[1:] {
			if v > actual {
				actual = v
			}
		}
	}
	claimed, ok := textutil.ParseNumber(c.Value)
	if !ok {
		return Unrelated, fmt.Sprintf("The claimed value %q is not numeric.", c.Value)
	}
	if textutil.NearlyEqual(actual, claimed) {
		return Supports, fmt.Sprintf("The %v of %s over %s is %s, matching the claim.",
			c.Op, t.Columns[col], joinEntities(c.Entities), formatNumber(actual))
	}
	// Figure 4 style explanation: per-entity values plus the true total.
	return Refutes, fmt.Sprintf("The %s for %s was %s respectively, so the %v is %s, not %s.",
		t.Columns[col], joinEntities(c.Entities), strings.Join(cells, ", "), c.Op, formatNumber(actual), c.Value)
}

func evalCount(c Claim, t *table.Table, col int) (Outcome, string) {
	if len(c.Entities) == 0 {
		return Unrelated, "The count claim names no target value."
	}
	target := c.Entities[0]
	n := 0
	for _, row := range t.Rows {
		if valuesMatch(target, row[col]) {
			n++
		}
	}
	claimed, ok := textutil.ParseNumber(c.Value)
	if !ok {
		return Unrelated, fmt.Sprintf("The claimed count %q is not numeric.", c.Value)
	}
	if textutil.NearlyEqual(float64(n), claimed) {
		return Supports, fmt.Sprintf("%d rows have %s = %s, matching the claim.", n, t.Columns[col], target)
	}
	return Refutes, fmt.Sprintf("%d rows have %s = %s, not %s.", n, t.Columns[col], target, c.Value)
}

// valuesMatch compares a claimed value to a table cell: numeric comparison
// when both parse as numbers, folded string equality otherwise.
func valuesMatch(claimed, actual string) bool {
	cv, cok := textutil.ParseNumber(claimed)
	av, aok := textutil.ParseNumber(actual)
	if cok && aok {
		return textutil.NearlyEqual(cv, av)
	}
	return textutil.Fold(claimed) == textutil.Fold(actual)
}

// formatNumber renders a float without a spurious fraction.
func formatNumber(v float64) string {
	if v == float64(int64(v)) {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', 6, 64)
}
