package claims

import (
	"strings"
	"testing"

	"repro/internal/table"
)

// usOpen1954 transcribes the paper's Figure 4 evidence table E1.
func usOpen1954() *table.Table {
	t := table.New("e1", "1954 u.s. open (golf)",
		[]string{"place", "player", "country", "score", "to par", "money"})
	t.MustAppendRow("t1", "ed furgol", "united states", "71 + 70 + 71 + 72 = 284", "+ 4", "6000")
	t.MustAppendRow("t5", "bobby locke", "south africa", "74 + 70 + 74 + 70 = 288", "+ 8", "960")
	t.MustAppendRow("t6", "tommy bolt", "united states", "72 + 72 + 73 + 72 = 289", "+ 9", "570")
	t.MustAppendRow("t6", "fred haas", "united states", "73 + 73 + 71 + 72 = 289", "+ 9", "570")
	t.MustAppendRow("t6", "ben hogan", "united states", "71 + 70 + 76 + 72 = 289", "+ 9", "570")
	return t
}

func usOpen1959() *table.Table {
	t := table.New("e2", "1959 u.s. open (golf)",
		[]string{"player", "country", "year (s) won", "total", "to par", "finish"})
	t.MustAppendRow("ben hogan", "united states", "1948, 1950, 1951, 1953", "287", "+ 7", "t8")
	t.MustAppendRow("tommy bolt", "united states", "1958", "301", "+ 21", "t38")
	return t
}

// TestFigure4SumClaim is the paper's headline reasoning case: the prize
// total claim is refuted by E1 via aggregation and unrelated to E2.
func TestFigure4SumClaim(t *testing.T) {
	c := Claim{
		Context:   "1954 u.s. open (golf)",
		Entities:  []string{"tommy bolt", "fred haas", "ben hogan"},
		Attribute: "cash prize", // synonym of the "money" column
		Op:        OpSum,
		Value:     "960",
	}
	out, expl := Eval(c, usOpen1954())
	if out != Refutes {
		t.Fatalf("E1 outcome = %v (%s), want Refutes", out, expl)
	}
	if !strings.Contains(expl, "1710") {
		t.Errorf("explanation missing true total 1710: %q", expl)
	}
	out, expl = Eval(c, usOpen1959())
	if out != Unrelated {
		t.Errorf("E2 outcome = %v (%s), want Unrelated", out, expl)
	}
}

func TestEvalLookupSupports(t *testing.T) {
	c := Claim{
		Context:   "1954 u.s. open (golf)",
		Entities:  []string{"bobby locke"},
		Attribute: "money",
		Op:        OpLookup,
		Value:     "960",
	}
	out, _ := Eval(c, usOpen1954())
	if out != Supports {
		t.Errorf("lookup supports = %v", out)
	}
	// String-valued lookup.
	c2 := Claim{
		Context:   "1954 u.s. open (golf)",
		Entities:  []string{"bobby locke"},
		Attribute: "country",
		Op:        OpLookup,
		Value:     "South_Africa", // folded comparison
	}
	if out, _ := Eval(c2, usOpen1954()); out != Supports {
		t.Errorf("folded string lookup = %v", out)
	}
}

func TestEvalLookupRefutes(t *testing.T) {
	c := Claim{
		Context:   "1954 u.s. open (golf)",
		Entities:  []string{"bobby locke"},
		Attribute: "money",
		Op:        OpLookup,
		Value:     "1000",
	}
	if out, _ := Eval(c, usOpen1954()); out != Refutes {
		t.Errorf("lookup refutes = %v", out)
	}
}

func TestEvalAvgMinMax(t *testing.T) {
	base := Claim{
		Context:   "1954 u.s. open (golf)",
		Entities:  []string{"ed furgol", "bobby locke"},
		Attribute: "money",
	}
	avg := base
	avg.Op, avg.Value = OpAvg, "3480"
	if out, expl := Eval(avg, usOpen1954()); out != Supports {
		t.Errorf("avg = %v (%s)", out, expl)
	}
	min := base
	min.Op, min.Value = OpMin, "960"
	if out, _ := Eval(min, usOpen1954()); out != Supports {
		t.Errorf("min = %v", out)
	}
	max := base
	max.Op, max.Value = OpMax, "960"
	if out, _ := Eval(max, usOpen1954()); out != Refutes {
		t.Errorf("max should refute = %v", out)
	}
}

func TestEvalCount(t *testing.T) {
	c := Claim{
		Context:   "1954 u.s. open (golf)",
		Entities:  []string{"570"},
		Attribute: "money",
		Op:        OpCount,
		Value:     "3",
	}
	if out, _ := Eval(c, usOpen1954()); out != Supports {
		t.Errorf("count supports = %v", out)
	}
	c.Value = "5"
	if out, _ := Eval(c, usOpen1954()); out != Refutes {
		t.Errorf("count refutes = %v", out)
	}
	c.Value = "not a number"
	if out, _ := Eval(c, usOpen1954()); out != Unrelated {
		t.Errorf("count bad value = %v", out)
	}
	c.Entities = nil
	c.Value = "3"
	if out, _ := Eval(c, usOpen1954()); out != Unrelated {
		t.Errorf("count no target = %v", out)
	}
}

func TestEvalUnrelatedCases(t *testing.T) {
	tbl := usOpen1954()
	// Wrong caption entirely.
	c := Claim{Context: "completely different table", Entities: []string{"tommy bolt"},
		Attribute: "money", Op: OpLookup, Value: "570"}
	if out, _ := Eval(c, tbl); out != Unrelated {
		t.Errorf("wrong caption = %v", out)
	}
	// Unknown attribute.
	c = Claim{Context: "1954 u.s. open (golf)", Entities: []string{"tommy bolt"},
		Attribute: "shoe size", Op: OpLookup, Value: "9"}
	if out, _ := Eval(c, tbl); out != Unrelated {
		t.Errorf("unknown attribute = %v", out)
	}
	// Unknown entity.
	c = Claim{Context: "1954 u.s. open (golf)", Entities: []string{"arnold palmer"},
		Attribute: "money", Op: OpLookup, Value: "570"}
	if out, _ := Eval(c, tbl); out != Unrelated {
		t.Errorf("unknown entity = %v", out)
	}
	// Aggregate over a non-numeric column.
	c = Claim{Context: "1954 u.s. open (golf)", Entities: []string{"tommy bolt", "ben hogan"},
		Attribute: "country", Op: OpSum, Value: "2"}
	if out, _ := Eval(c, tbl); out != Unrelated {
		t.Errorf("non-numeric aggregate = %v", out)
	}
	// Non-numeric claimed value on a numeric aggregate.
	c = Claim{Context: "1954 u.s. open (golf)", Entities: []string{"tommy bolt", "ben hogan"},
		Attribute: "money", Op: OpSum, Value: "lots"}
	if out, _ := Eval(c, tbl); out != Unrelated {
		t.Errorf("non-numeric value = %v", out)
	}
}

func TestCaptionMatching(t *testing.T) {
	tests := []struct {
		context, caption string
		want             bool
	}{
		{"1954 u.s. open (golf)", "1954 u.s. open (golf)", true},
		{"1954 U.S. Open (Golf)", "1954 u.s. open (golf)", true},
		{"1954 u.s. open (golf)", "1959 u.s. open (golf)", false},
		{"ohio congressional districts", "ohio congressional districts 1994", true}, // year-dropped paraphrase
		{"ohio congressional districts 1994", "texas congressional districts 1994", false},
		{"x", "completely different", false},
	}
	for _, tc := range tests {
		if got := captionMatches(tc.context, tc.caption); got != tc.want {
			t.Errorf("captionMatches(%q, %q) = %v, want %v", tc.context, tc.caption, got, tc.want)
		}
	}
}

func TestResolveAttributeSynonymsAndFuzzy(t *testing.T) {
	tbl := usOpen1954()
	if col := resolveAttribute("cash prize", tbl); col != 5 {
		t.Errorf("synonym resolution = %d, want 5", col)
	}
	if col := resolveAttribute("money", tbl); col != 5 {
		t.Errorf("exact resolution = %d", col)
	}
	if col := resolveAttribute("total score", tbl); col != 3 {
		t.Errorf("fuzzy resolution = %d, want 3 (score)", col)
	}
	if col := resolveAttribute("unrelated attribute name", tbl); col != -1 {
		t.Errorf("bogus attribute resolved to %d", col)
	}
}

func TestValuesMatch(t *testing.T) {
	tests := []struct {
		a, b string
		want bool
	}{
		{"570", "570", true},
		{"570", "570.0", true},
		{"$570", "570", true},
		{"570", "571", false},
		{"South_Africa", "south africa", true},
		{"abc", "xyz", false},
	}
	for _, tc := range tests {
		if got := valuesMatch(tc.a, tc.b); got != tc.want {
			t.Errorf("valuesMatch(%q, %q) = %v", tc.a, tc.b, got)
		}
	}
}

func TestFormatNumber(t *testing.T) {
	if formatNumber(1710) != "1710" {
		t.Error("integer formatting")
	}
	if formatNumber(3.5) != "3.5" {
		t.Error("fraction formatting")
	}
}
