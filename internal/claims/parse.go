package claims

import (
	"fmt"
	"regexp"
	"strings"
)

// The parse patterns mirror the Render templates. Submatch layout:
// context, attribute, entities, value — order varies per template.
var (
	reSum    = regexp.MustCompile(`^In (.+), the (.+?) for (.+) was (.+?) in total\.$`)
	reAvg    = regexp.MustCompile(`^In (.+), the (.+?) for (.+) was (.+?) on average\.$`)
	reMin    = regexp.MustCompile(`^In (.+), the lowest (.+?) among (.+) was (.+?)\.$`)
	reMax    = regexp.MustCompile(`^In (.+), the highest (.+?) among (.+) was (.+?)\.$`)
	reCount  = regexp.MustCompile(`^In (.+), (.+?) rows had a (.+?) of (.+?)\.$`)
	reLookup = regexp.MustCompile(`^In (.+), the (.+?) for (.+) was (.+?)\.$`)
)

// Parse recovers the structured claim from its natural-language text. It
// returns an error when the text matches none of the claim templates; the
// caller then falls back to bag-of-words verification (as a generic LLM
// would for free-form text).
func Parse(text string) (Claim, error) {
	t := strings.TrimSpace(text)
	// Order matters: the lookup pattern is a suffix-relaxed superset of the
	// aggregate patterns, so aggregates must be tried first.
	if m := reSum.FindStringSubmatch(t); m != nil {
		return Claim{Text: t, Context: m[1], Attribute: m[2], Entities: splitEntities(m[3]), Op: OpSum, Value: m[4]}, nil
	}
	if m := reAvg.FindStringSubmatch(t); m != nil {
		return Claim{Text: t, Context: m[1], Attribute: m[2], Entities: splitEntities(m[3]), Op: OpAvg, Value: m[4]}, nil
	}
	if m := reMin.FindStringSubmatch(t); m != nil {
		return Claim{Text: t, Context: m[1], Attribute: m[2], Entities: splitEntities(m[3]), Op: OpMin, Value: m[4]}, nil
	}
	if m := reMax.FindStringSubmatch(t); m != nil {
		return Claim{Text: t, Context: m[1], Attribute: m[2], Entities: splitEntities(m[3]), Op: OpMax, Value: m[4]}, nil
	}
	if m := reCount.FindStringSubmatch(t); m != nil {
		return Claim{Text: t, Context: m[1], Attribute: m[3], Entities: []string{m[4]}, Op: OpCount, Value: m[2]}, nil
	}
	if m := reLookup.FindStringSubmatch(t); m != nil {
		return Claim{Text: t, Context: m[1], Attribute: m[2], Entities: splitEntities(m[3]), Op: OpLookup, Value: m[4]}, nil
	}
	return Claim{}, fmt.Errorf("claims: text matches no claim template: %q", text)
}

// splitEntities inverts joinEntities: "a, b, and c" / "a and b" / "a".
func splitEntities(s string) []string {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil
	}
	var parts []string
	if strings.Contains(s, ",") {
		for _, p := range strings.Split(s, ",") {
			p = strings.TrimSpace(p)
			p = strings.TrimPrefix(p, "and ")
			if p != "" {
				parts = append(parts, strings.TrimSpace(p))
			}
		}
		return parts
	}
	if i := strings.Index(s, " and "); i >= 0 {
		return []string{strings.TrimSpace(s[:i]), strings.TrimSpace(s[i+5:])}
	}
	return []string{s}
}
