package claims

import (
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/detrand"
)

func TestRenderLookup(t *testing.T) {
	c := Claim{
		Context:   "1954 u.s. open (golf)",
		Entities:  []string{"tommy bolt"},
		Attribute: "money",
		Op:        OpLookup,
		Value:     "570",
	}
	got := c.Render()
	want := "In 1954 u.s. open (golf), the money for tommy bolt was 570."
	if got != want {
		t.Errorf("Render = %q, want %q", got, want)
	}
	if c.Text != want {
		t.Error("Render did not store Text")
	}
}

func TestRenderSumThreeEntities(t *testing.T) {
	c := Claim{
		Context:   "1954 u.s. open (golf)",
		Entities:  []string{"tommy bolt", "fred haas", "ben hogan"},
		Attribute: "cash prize",
		Op:        OpSum,
		Value:     "960",
	}
	got := c.Render()
	want := "In 1954 u.s. open (golf), the cash prize for tommy bolt, fred haas, and ben hogan was 960 in total."
	if got != want {
		t.Errorf("Render = %q, want %q", got, want)
	}
}

func TestParseRoundtripAllOps(t *testing.T) {
	cases := []Claim{
		{Context: "ctx one", Entities: []string{"alice smith"}, Attribute: "score", Op: OpLookup, Value: "42"},
		{Context: "ctx two", Entities: []string{"a b", "c d"}, Attribute: "money", Op: OpSum, Value: "100"},
		{Context: "ctx three", Entities: []string{"a b", "c d", "e f"}, Attribute: "gold", Op: OpAvg, Value: "3.5"},
		{Context: "ctx four", Entities: []string{"a b", "c d"}, Attribute: "total", Op: OpMin, Value: "7"},
		{Context: "ctx five", Entities: []string{"a b", "c d"}, Attribute: "rank", Op: OpMax, Value: "9"},
		{Context: "ctx six", Entities: []string{"republican"}, Attribute: "party", Op: OpCount, Value: "3"},
	}
	for _, c := range cases {
		text := c.Render()
		got, err := Parse(text)
		if err != nil {
			t.Errorf("Parse(%q): %v", text, err)
			continue
		}
		if got.Op != c.Op || got.Context != c.Context || got.Attribute != c.Attribute || got.Value != c.Value {
			t.Errorf("Parse(%q) = %+v, want %+v", text, got, c)
		}
		if !reflect.DeepEqual(got.Entities, c.Entities) {
			t.Errorf("Parse(%q) entities = %v, want %v", text, got.Entities, c.Entities)
		}
	}
}

func TestParseRoundtripProperty(t *testing.T) {
	// Random structured claims built from a safe alphabet roundtrip exactly.
	words := []string{"alpha", "beta", "gamma", "delta", "omega", "sigma"}
	ops := []AggOp{OpLookup, OpSum, OpAvg, OpMin, OpMax}
	f := func(seed uint64) bool {
		r := detrand.New(seed, "claim")
		nEnts := r.IntRange(1, 3)
		ents := make([]string, nEnts)
		for i := range ents {
			ents[i] = words[r.Intn(len(words))] + " " + words[r.Intn(len(words))]
		}
		c := Claim{
			Context:   words[r.Intn(len(words))] + " " + words[r.Intn(len(words))],
			Entities:  ents,
			Attribute: words[r.Intn(len(words))],
			Op:        ops[r.Intn(len(ops))],
			Value:     words[r.Intn(len(words))],
		}
		text := c.Render()
		got, err := Parse(text)
		if err != nil {
			return false
		}
		return got.Op == c.Op && got.Context == c.Context &&
			got.Attribute == c.Attribute && got.Value == c.Value &&
			reflect.DeepEqual(got.Entities, c.Entities)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestParseRejectsFreeform(t *testing.T) {
	for _, text := range []string{
		"",
		"The weather is nice today.",
		"In incomplete",
	} {
		if _, err := Parse(text); err == nil {
			t.Errorf("Parse(%q) succeeded", text)
		}
	}
}

func TestSplitEntities(t *testing.T) {
	tests := []struct {
		in   string
		want []string
	}{
		{"alice smith", []string{"alice smith"}},
		{"a b and c d", []string{"a b", "c d"}},
		{"a b, c d, and e f", []string{"a b", "c d", "e f"}},
		{"", nil},
	}
	for _, tc := range tests {
		if got := splitEntities(tc.in); !reflect.DeepEqual(got, tc.want) {
			t.Errorf("splitEntities(%q) = %v, want %v", tc.in, got, tc.want)
		}
	}
}

func TestIsAggregate(t *testing.T) {
	if (Claim{Op: OpLookup}).IsAggregate() {
		t.Error("lookup reported aggregate")
	}
	if !(Claim{Op: OpSum}).IsAggregate() {
		t.Error("sum not aggregate")
	}
}

func TestOpAndOutcomeStrings(t *testing.T) {
	if OpSum.String() != "sum" || OpLookup.String() != "lookup" || OpCount.String() != "count" {
		t.Error("AggOp.String wrong")
	}
	if Supports.String() != "supports" || Refutes.String() != "refutes" || Unrelated.String() != "unrelated" {
		t.Error("Outcome.String wrong")
	}
	if !strings.Contains(AggOp(99).String(), "99") || !strings.Contains(Outcome(99).String(), "99") {
		t.Error("unknown enum Strings wrong")
	}
}
