package rerank

import (
	"repro/internal/datalake"
	"repro/internal/table"
	"repro/internal/textutil"
)

// OpenTFV scores (text, table) pairs for open-domain table-based fact
// verification (Gu et al., SIGMOD 2022), the paper's (text, table)
// reranker. The score combines three signals the claim-table relationship
// depends on:
//
//   - caption match: does the claim's context name this table;
//   - entity coverage: how many claimed entities appear in the table;
//   - attribute/value overlap: does the table carry the claimed column and
//     value vocabulary.
//
// When the claim is structured (parsed), the signals are computed from its
// fields; otherwise they fall back to bag-of-words containment.
type OpenTFV struct {
	captionWeight float64
	entityWeight  float64
	valueWeight   float64
}

// NewOpenTFV returns the scorer with the default signal weights
// (0.5 / 0.35 / 0.15 — caption identity dominates, as the Figure 4 E2 case
// shows that same-entity different-caption tables must rank below the true
// table).
func NewOpenTFV() *OpenTFV {
	return &OpenTFV{captionWeight: 0.5, entityWeight: 0.35, valueWeight: 0.15}
}

// Name implements Scorer.
func (o *OpenTFV) Name() string { return "opentfv-semantic" }

// Score implements Scorer, normalized to [0,1].
func (o *OpenTFV) Score(q Query, inst datalake.Instance) float64 {
	var t *table.Table
	switch inst.Kind {
	case datalake.KindTable:
		t = inst.Table
	case datalake.KindTuple:
		t = table.New(inst.Tuple.TableID, inst.Tuple.Caption, inst.Tuple.Columns)
		t.Rows = [][]string{inst.Tuple.Values}
	default:
		return 0
	}
	if q.Claim == nil {
		// Unstructured fallback: token containment of the query in the
		// serialized table.
		return textutil.ContainmentSimilarity(
			textutil.TokenizeFiltered(q.Text),
			textutil.TokenizeFiltered(t.SerializeForIndex()),
		)
	}
	c := q.Claim

	capSim := textutil.Jaccard(textutil.Tokenize(c.Context), textutil.Tokenize(t.Caption))

	entityCov := 0.0
	if len(c.Entities) > 0 {
		hit := 0
		for _, e := range c.Entities {
			if tableContains(t, e) {
				hit++
			}
		}
		entityCov = float64(hit) / float64(len(c.Entities))
	}

	valueSig := 0.0
	attrTokens := textutil.Tokenize(c.Attribute)
	colTokens := textutil.Tokenize(joinColumns(t))
	if textutil.ContainmentSimilarity(attrTokens, colTokens) >= 0.5 {
		valueSig += 0.5
	}
	if tableContains(t, c.Value) {
		valueSig += 0.5
	}

	return o.captionWeight*capSim + o.entityWeight*entityCov + o.valueWeight*valueSig
}

// tableContains reports whether any cell folds equal to v, or for numeric v
// whether any cell carries the same number.
func tableContains(t *table.Table, v string) bool {
	want := textutil.Fold(v)
	num, isNum := textutil.ParseNumber(v)
	for _, row := range t.Rows {
		for _, cell := range row {
			if textutil.Fold(cell) == want {
				return true
			}
			if isNum {
				if cv, ok := textutil.ParseNumber(cell); ok && textutil.NearlyEqual(cv, num) {
					return true
				}
			}
		}
	}
	return false
}

func joinColumns(t *table.Table) string {
	s := ""
	for i, c := range t.Columns {
		if i > 0 {
			s += " "
		}
		s += c
	}
	return s
}
