// Package rerank implements VerifAI's Reranker module: task-aware,
// fine-grained rescoring of the task-agnostic top-k retrieved by the
// Indexer, so that downstream verification only needs a small top-k′
// (Section 3.2 of the paper, k′ = 5).
//
// Three rerankers are provided, matching the paper's inventory:
//
//   - ColBERT-style late interaction for (text, text) pairs (colbert.go);
//   - OpenTFV-style semantic matching for (text, table) pairs (opentfv.go);
//   - RetClean-style cell alignment for (tuple, tuple) and a title/context
//     scorer for (tuple, text) pairs (tuplerank.go), the "different types of
//     fine-grained Rerankers" the paper's remark says are in progress.
//
// A Registry routes each (query kind, instance kind) pair to its scorer.
package rerank

import (
	"sort"

	"repro/internal/claims"
	"repro/internal/datalake"
	"repro/internal/table"
)

// Query is the generated data object from the reranker's point of view:
// the serialized text plus whatever structure is available.
type Query struct {
	// Text is the full serialized form (always set).
	Text string
	// Tuple is set for tuple-completion queries.
	Tuple *table.Tuple
	// Claim is set for textual-claim queries.
	Claim *claims.Claim
}

// Scored pairs an instance ID with a reranker score (higher is better).
type Scored struct {
	ID    string
	Score float64
}

// Scorer computes a task-aware relevance score for (query, instance).
type Scorer interface {
	// Name identifies the scorer for provenance.
	Name() string
	// Score returns the relevance of inst to q; higher is better.
	Score(q Query, inst datalake.Instance) float64
}

// Registry routes (query, instance-kind) pairs to scorers.
type Registry struct {
	tupleTuple Scorer
	tupleText  Scorer
	claimTable Scorer
	claimText  Scorer
	fallback   Scorer
}

// NewRegistry returns a registry with the full scorer inventory.
// emb must be the embedder the semantic index uses, so late-interaction
// scores live in the same space.
func NewRegistry(colbert *ColBERT) *Registry {
	return &Registry{
		tupleTuple: NewTupleTupleScorer(),
		tupleText:  NewTupleTextScorer(),
		claimTable: NewOpenTFV(),
		claimText:  colbert,
		fallback:   colbert,
	}
}

// Route returns the scorer for this query/instance-kind pair.
func (r *Registry) Route(q Query, kind datalake.Kind) Scorer {
	switch {
	case q.Tuple != nil && kind == datalake.KindTuple:
		return r.tupleTuple
	case q.Tuple != nil && kind == datalake.KindText:
		return r.tupleText
	case q.Claim != nil && (kind == datalake.KindTable || kind == datalake.KindTuple):
		return r.claimTable
	case q.Claim != nil && kind == datalake.KindText:
		return r.claimText
	default:
		return r.fallback
	}
}

// Rerank rescsores the candidate instances with the routed scorer and
// returns the top-k′, best first, ties broken by ascending ID. Instances
// whose scorer routing differs (mixed modalities) are each scored by their
// own scorer; scores are comparable enough for final ordering because every
// scorer is normalized to [0,1].
func (r *Registry) Rerank(q Query, candidates []datalake.Instance, kPrime int) []Scored {
	if kPrime <= 0 || len(candidates) == 0 {
		return nil
	}
	out := make([]Scored, 0, len(candidates))
	for _, inst := range candidates {
		s := r.Route(q, inst.Kind).Score(q, inst)
		out = append(out, Scored{ID: inst.ID, Score: s})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].ID < out[j].ID
	})
	if len(out) > kPrime {
		out = out[:kPrime]
	}
	return out
}
