package rerank

import (
	"strings"

	"repro/internal/datalake"
	"repro/internal/textutil"
)

// TupleTupleScorer scores (tuple, tuple) pairs in the style of RetClean
// (Ahmad et al., 2023): schema-aligned cell agreement. The score is the
// weighted mix of caption similarity and the fraction of shared columns
// whose cells fold-equal, which puts a tuple's original counterpart ahead of
// same-schema strangers.
type TupleTupleScorer struct {
	captionWeight float64
	cellWeight    float64
}

// NewTupleTupleScorer returns the default scorer (0.3 caption / 0.7 cells).
func NewTupleTupleScorer() *TupleTupleScorer {
	return &TupleTupleScorer{captionWeight: 0.3, cellWeight: 0.7}
}

// Name implements Scorer.
func (s *TupleTupleScorer) Name() string { return "retclean-cell-alignment" }

// Score implements Scorer, normalized to [0,1].
func (s *TupleTupleScorer) Score(q Query, inst datalake.Instance) float64 {
	if q.Tuple == nil || inst.Kind != datalake.KindTuple {
		return 0
	}
	ev := inst.Tuple
	capSim := textutil.Jaccard(textutil.Tokenize(q.Tuple.Caption), textutil.Tokenize(ev.Caption))

	shared, agree := 0, 0
	for i, c := range q.Tuple.Columns {
		evVal, ok := ev.Value(c)
		if !ok {
			continue
		}
		shared++
		qv := q.Tuple.Values[i]
		// Missing cells (the masked attribute) count as neutral agreement:
		// the query tuple legitimately lacks that value.
		if qv == "" || qv == "NaN" || textutil.Fold(evVal) == textutil.Fold(qv) {
			agree++
		}
	}
	cellSim := 0.0
	if shared > 0 {
		cellSim = float64(agree) / float64(shared)
	}
	return s.captionWeight*capSim + s.cellWeight*cellSim
}

// TupleTextScorer scores (tuple, text) pairs: is this document the page of
// an entity in the tuple, and does it discuss the tuple's table context?
// This is the (tuple, text) instance of the fine-grained rerankers the
// paper's Section 3.2 remark announces.
type TupleTextScorer struct {
	titleWeight   float64
	contextWeight float64
	tokenWeight   float64
}

// NewTupleTextScorer returns the default scorer (0.5 / 0.3 / 0.2).
func NewTupleTextScorer() *TupleTextScorer {
	return &TupleTextScorer{titleWeight: 0.5, contextWeight: 0.3, tokenWeight: 0.2}
}

// Name implements Scorer.
func (s *TupleTextScorer) Name() string { return "tuple-text-context" }

// Score implements Scorer, normalized to [0,1].
func (s *TupleTextScorer) Score(q Query, inst datalake.Instance) float64 {
	if q.Tuple == nil || inst.Kind != datalake.KindText {
		return 0
	}
	d := inst.Doc
	title := textutil.Fold(d.Title)

	titleSig := 0.0
	for _, v := range q.Tuple.Values {
		if f := textutil.Fold(v); f != "" && f == title {
			titleSig = 1
			break
		}
	}

	ctxSig := 0.0
	if strings.Contains(textutil.Fold(d.Text), textutil.Fold(q.Tuple.Caption)) {
		ctxSig = 1
	}

	tokenSig := textutil.ContainmentSimilarity(
		textutil.TokenizeFiltered(q.Text),
		textutil.TokenizeFiltered(d.SerializeForIndex()),
	)

	return s.titleWeight*titleSig + s.contextWeight*ctxSig + s.tokenWeight*tokenSig
}
