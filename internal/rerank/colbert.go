package rerank

import (
	"repro/internal/datalake"
	"repro/internal/embed"
)

// ColBERT scores (text, text) pairs with late interaction over token
// embeddings (Khattab & Zaharia, SIGIR 2020): every query token is matched
// against its most similar document token (MaxSim) and the per-token maxima
// are averaged. This is the paper's (text, text) reranker.
//
// Document token embeddings are capped at maxDocTokens to bound cost, as in
// the original system's document truncation.
type ColBERT struct {
	emb          *embed.Embedder
	maxDocTokens int
}

// NewColBERT returns a late-interaction scorer over emb's token space.
func NewColBERT(emb *embed.Embedder, maxDocTokens int) *ColBERT {
	if maxDocTokens <= 0 {
		maxDocTokens = 256
	}
	return &ColBERT{emb: emb, maxDocTokens: maxDocTokens}
}

// Name implements Scorer.
func (c *ColBERT) Name() string { return "colbert-late-interaction" }

// Score implements Scorer: mean MaxSim over query tokens, normalized to
// [0,1] (token vectors are unit-norm, so cosine ∈ [-1,1]).
func (c *ColBERT) Score(q Query, inst datalake.Instance) float64 {
	qTokens := c.emb.EmbedTokens(q.Text)
	if len(qTokens) == 0 {
		return 0
	}
	dTokens := c.emb.EmbedTokens(inst.Serialize())
	if len(dTokens) > c.maxDocTokens {
		dTokens = dTokens[:c.maxDocTokens]
	}
	if len(dTokens) == 0 {
		return 0
	}
	var sum float64
	for _, qt := range qTokens {
		best := -1.0
		for _, dt := range dTokens {
			if s := embed.Dot(qt, dt); s > best {
				best = s
			}
		}
		sum += best
	}
	mean := sum / float64(len(qTokens))
	return (mean + 1) / 2
}
