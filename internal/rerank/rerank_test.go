package rerank

import (
	"testing"

	"repro/internal/claims"
	"repro/internal/datalake"
	"repro/internal/doc"
	"repro/internal/embed"
	"repro/internal/table"
)

func newColBERT() *ColBERT {
	return NewColBERT(embed.NewEmbedder(64, 1), 128)
}

func docInstance(id, title, text string) datalake.Instance {
	return datalake.Instance{
		ID:   "text:" + id,
		Kind: datalake.KindText,
		Doc:  &doc.Document{ID: id, Title: title, Text: text},
	}
}

func tableInstance(t *table.Table) datalake.Instance {
	return datalake.Instance{ID: "table:" + t.ID, Kind: datalake.KindTable, Table: t}
}

func tupleInstance(t *table.Table, row int) datalake.Instance {
	tp, _ := t.TupleAt(row)
	return datalake.Instance{ID: datalake.TupleInstanceID(t.ID, row), Kind: datalake.KindTuple, Tuple: &tp}
}

func usOpen1954() *table.Table {
	t := table.New("e1", "1954 u.s. open (golf)", []string{"place", "player", "money"})
	t.MustAppendRow("t6", "tommy bolt", "570")
	t.MustAppendRow("t6", "fred haas", "570")
	t.MustAppendRow("t6", "ben hogan", "570")
	return t
}

func usOpen1959() *table.Table {
	t := table.New("e2", "1959 u.s. open (golf)", []string{"player", "total"})
	t.MustAppendRow("ben hogan", "287")
	t.MustAppendRow("tommy bolt", "301")
	return t
}

func TestColBERTRanksExactMatchHighest(t *testing.T) {
	c := newColBERT()
	q := Query{Text: "springfield golf tournament prize money"}
	same := c.Score(q, docInstance("a", "", "springfield golf tournament prize money"))
	related := c.Score(q, docInstance("b", "", "the golf tournament in springfield awarded prize money to the winner"))
	unrelated := c.Score(q, docInstance("c", "", "monthly precipitation in riverton was high"))
	if !(same >= related && related > unrelated) {
		t.Errorf("ColBERT ordering: same=%v related=%v unrelated=%v", same, related, unrelated)
	}
	if same < 0 || same > 1 {
		t.Errorf("ColBERT score out of [0,1]: %v", same)
	}
}

func TestColBERTEmptyInputs(t *testing.T) {
	c := newColBERT()
	if got := c.Score(Query{Text: ""}, docInstance("a", "", "content")); got != 0 {
		t.Errorf("empty query score = %v", got)
	}
	if got := c.Score(Query{Text: "query"}, docInstance("a", "", "")); got != 0 {
		t.Errorf("empty doc score = %v", got)
	}
}

func TestOpenTFVFigure4Ordering(t *testing.T) {
	// The 1954 table must outrank the 1959 table for the Figure 4 claim,
	// even though both contain the claimed players.
	o := NewOpenTFV()
	cl := claims.Claim{
		Context:   "1954 u.s. open (golf)",
		Entities:  []string{"tommy bolt", "fred haas", "ben hogan"},
		Attribute: "cash prize",
		Op:        claims.OpSum,
		Value:     "960",
	}
	cl.Render()
	q := Query{Text: cl.Text, Claim: &cl}
	s1954 := o.Score(q, tableInstance(usOpen1954()))
	s1959 := o.Score(q, tableInstance(usOpen1959()))
	if s1954 <= s1959 {
		t.Errorf("OpenTFV: 1954=%v <= 1959=%v", s1954, s1959)
	}
}

func TestOpenTFVUnstructuredFallback(t *testing.T) {
	o := NewOpenTFV()
	q := Query{Text: "tommy bolt money 570"}
	s := o.Score(q, tableInstance(usOpen1954()))
	if s <= 0 || s > 1 {
		t.Errorf("fallback score = %v", s)
	}
	// Non-table instances score zero.
	if got := o.Score(q, docInstance("d", "", "text")); got != 0 {
		t.Errorf("doc instance scored %v by OpenTFV", got)
	}
}

func TestTupleTupleScorerPrefersCounterpart(t *testing.T) {
	s := NewTupleTupleScorer()
	tbl := usOpen1954()
	query, _ := tbl.TupleAt(0)
	masked := query.WithValue("money", "NaN")
	q := Query{Text: masked.SerializeForIndex(), Tuple: &masked}

	counterpart := s.Score(q, tupleInstance(tbl, 0))
	sibling := s.Score(q, tupleInstance(tbl, 2))
	other := s.Score(q, tupleInstance(usOpen1959(), 0))
	if !(counterpart > sibling && counterpart > other) {
		t.Errorf("counterpart=%v sibling=%v other=%v", counterpart, sibling, other)
	}
	// Wrong instance kinds and missing tuples score zero.
	if got := s.Score(q, tableInstance(tbl)); got != 0 {
		t.Errorf("table instance = %v", got)
	}
	if got := s.Score(Query{Text: "x"}, tupleInstance(tbl, 0)); got != 0 {
		t.Errorf("tupleless query = %v", got)
	}
}

func TestTupleTextScorerPrefersEntityPageWithContext(t *testing.T) {
	s := NewTupleTextScorer()
	tbl := usOpen1954()
	tp, _ := tbl.TupleAt(0)
	q := Query{Text: tp.SerializeForIndex(), Tuple: &tp}

	withCtx := docInstance("a", "Tommy Bolt",
		"Tommy Bolt is a golfer. In the 1954 u.s. open (golf), Tommy Bolt recorded a money of 570.")
	noCtx := docInstance("b", "Tommy Bolt", "Tommy Bolt is a golfer born long ago.")
	wrongEntity := docInstance("c", "Gene Littler", "Gene Littler is a golfer.")

	a, b, c := s.Score(q, withCtx), s.Score(q, noCtx), s.Score(q, wrongEntity)
	if !(a > b && b > c) {
		t.Errorf("tuple-text ordering: ctx=%v noctx=%v wrong=%v", a, b, c)
	}
}

func TestRegistryRouting(t *testing.T) {
	r := NewRegistry(newColBERT())
	tbl := usOpen1954()
	tp, _ := tbl.TupleAt(0)
	cl := claims.Claim{Context: "c", Entities: []string{"e"}, Attribute: "a", Op: claims.OpLookup, Value: "v"}

	tupleQ := Query{Text: "t", Tuple: &tp}
	claimQ := Query{Text: "c", Claim: &cl}
	plainQ := Query{Text: "p"}

	if got := r.Route(tupleQ, datalake.KindTuple).Name(); got != "retclean-cell-alignment" {
		t.Errorf("tuple/tuple -> %s", got)
	}
	if got := r.Route(tupleQ, datalake.KindText).Name(); got != "tuple-text-context" {
		t.Errorf("tuple/text -> %s", got)
	}
	if got := r.Route(claimQ, datalake.KindTable).Name(); got != "opentfv-semantic" {
		t.Errorf("claim/table -> %s", got)
	}
	if got := r.Route(claimQ, datalake.KindTuple).Name(); got != "opentfv-semantic" {
		t.Errorf("claim/tuple -> %s", got)
	}
	if got := r.Route(claimQ, datalake.KindText).Name(); got != "colbert-late-interaction" {
		t.Errorf("claim/text -> %s", got)
	}
	if got := r.Route(plainQ, datalake.KindEntity).Name(); got != "colbert-late-interaction" {
		t.Errorf("fallback -> %s", got)
	}
}

func TestRerankTopKPrime(t *testing.T) {
	r := NewRegistry(newColBERT())
	tbl1954, tbl1959 := usOpen1954(), usOpen1959()
	cl := claims.Claim{
		Context:   "1954 u.s. open (golf)",
		Entities:  []string{"tommy bolt"},
		Attribute: "money",
		Op:        claims.OpLookup,
		Value:     "570",
	}
	cl.Render()
	q := Query{Text: cl.Text, Claim: &cl}
	candidates := []datalake.Instance{tableInstance(tbl1959), tableInstance(tbl1954)}

	top := r.Rerank(q, candidates, 1)
	if len(top) != 1 || top[0].ID != "table:e1" {
		t.Errorf("Rerank top-1 = %v", top)
	}
	all := r.Rerank(q, candidates, 10)
	if len(all) != 2 {
		t.Errorf("Rerank returned %d", len(all))
	}
	if all[0].Score < all[1].Score {
		t.Error("Rerank not sorted")
	}
	if got := r.Rerank(q, candidates, 0); got != nil {
		t.Error("kPrime=0 returned results")
	}
	if got := r.Rerank(q, nil, 3); got != nil {
		t.Error("no candidates returned results")
	}
}
