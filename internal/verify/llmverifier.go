package verify

import (
	"fmt"

	"repro/internal/claims"
	"repro/internal/datalake"
	"repro/internal/detrand"
	"repro/internal/table"
)

// LLMConfig is the calibrated error profile of the simulated one-size-fits-
// all verifier. The defaults reproduce ChatGPT's measured behaviour in
// Table 2 of the paper:
//
//   - (tuple, tuple+text) accuracy 0.88 — small per-pair misreading rates;
//   - (text, relevant table) accuracy 0.75 — multi-row arithmetic (sum/avg/
//     min/max) is error-prone for a generic LLM, lookups less so;
//   - (text, retrieved table) accuracy 0.91 — strong generalization: the
//     model almost always recognizes irrelevant evidence, and "not related"
//     dominates the retrieved mix.
//
// All errors are injected deterministically by hashing (seed, pair id).
type LLMConfig struct {
	// Seed drives the deterministic error injection.
	Seed uint64
	// TupleEvidenceErr is the misreading rate on related (tuple, tuple)
	// pairs.
	TupleEvidenceErr float64
	// TextEvidenceErr is the misreading rate on related (tuple, text) and
	// (claim, text) pairs — prose is slightly harder to read exactly.
	TextEvidenceErr float64
	// LookupClaimErr is the error rate on related (claim, table) pairs
	// whose claim is a single-cell lookup.
	LookupClaimErr float64
	// AggClaimErr is the error rate on related (claim, table) pairs whose
	// claim needs multi-row arithmetic — the generic model's weak spot.
	AggClaimErr float64
	// CountClaimErr is the error rate on related count claims.
	CountClaimErr float64
	// RelevanceErr is the probability of mistaking unrelated evidence for
	// related (or vice versa) — the generic model's strength, kept low.
	RelevanceErr float64
	// TupleRelevanceErr is the relevance-detection error for tuple-object
	// pairs; reading serialized tuples against arbitrary evidence is
	// slightly harder than reading prose claims.
	TupleRelevanceErr float64
}

// DefaultLLMConfig returns the calibrated profile described above.
func DefaultLLMConfig(seed uint64) LLMConfig {
	return LLMConfig{
		Seed:              seed,
		TupleEvidenceErr:  0.12,
		TextEvidenceErr:   0.16,
		LookupClaimErr:    0.14,
		AggClaimErr:       0.42,
		CountClaimErr:     0.28,
		RelevanceErr:      0.03,
		TupleRelevanceErr: 0.11,
	}
}

// LLMVerifier simulates the default ChatGPT verifier: it reasons exactly
// over the (g, x) pair with the shared reasoning machinery, then corrupts
// the verdict according to the calibrated error profile. It supports every
// pair type (the "one-size-fits-all model" of Section 3.3).
type LLMVerifier struct {
	cfg LLMConfig
}

// NewLLMVerifier returns a simulated LLM verifier with the given profile.
func NewLLMVerifier(cfg LLMConfig) *LLMVerifier {
	return &LLMVerifier{cfg: cfg}
}

// Name implements Verifier.
func (v *LLMVerifier) Name() string { return "chatgpt-sim" }

// Supports implements Verifier: the LLM handles every pair type.
func (v *LLMVerifier) Supports(Generated, datalake.Kind) bool { return true }

// Verify implements Verifier.
func (v *LLMVerifier) Verify(g Generated, ev datalake.Instance) (Result, error) {
	verdict, expl, err := v.reason(g, ev)
	if err != nil {
		return Result{}, err
	}
	verdict, expl = v.corrupt(g, ev, verdict, expl)
	return Result{Verdict: verdict, Explanation: expl, Verifier: v.Name(), EvidenceID: ev.ID}, nil
}

// reason runs the exact reasoning for the pair type.
func (v *LLMVerifier) reason(g Generated, ev datalake.Instance) (Verdict, string, error) {
	switch {
	case g.Kind == KindTuple && ev.Kind == datalake.KindTuple:
		verdict, expl := reasonTupleTuple(g, *ev.Tuple)
		return verdict, expl, nil
	case g.Kind == KindTuple && ev.Kind == datalake.KindText:
		verdict, expl := reasonTupleText(g, ev.Doc)
		return verdict, expl, nil
	case g.Kind == KindTuple && ev.Kind == datalake.KindTable:
		// Treat each table row as a candidate tuple; adopt the first
		// related row's verdict.
		for i := range ev.Table.Rows {
			tp, _ := ev.Table.TupleAt(i)
			verdict, expl := reasonTupleTuple(g, tp)
			if verdict != NotRelated {
				return verdict, expl, nil
			}
		}
		return NotRelated, "No row of the evidence table matches the tuple.", nil
	case g.Kind == KindTuple && ev.Kind == datalake.KindEntity:
		verdict, expl := reasonTupleEntity(g, ev)
		return verdict, expl, nil
	case g.Kind == KindClaim && ev.Kind == datalake.KindTable:
		verdict, expl := reasonClaimTable(g, ev.Table)
		return verdict, expl, nil
	case g.Kind == KindClaim && ev.Kind == datalake.KindText:
		verdict, expl := reasonClaimText(g, ev.Doc)
		return verdict, expl, nil
	case g.Kind == KindClaim && ev.Kind == datalake.KindTuple:
		// A single evidence tuple can settle lookup claims: view the tuple
		// as a one-row table.
		t := oneRowTable(ev)
		verdict, expl := reasonClaimTable(g, t)
		return verdict, expl, nil
	case g.Kind == KindClaim && ev.Kind == datalake.KindEntity:
		verdict, expl := reasonClaimEntity(g, ev)
		return verdict, expl, nil
	default:
		return NotRelated, "", fmt.Errorf("verify: unsupported pair (%v, %v)", g.Kind, ev.Kind)
	}
}

// corrupt applies the calibrated error profile to an exact verdict,
// deterministically keyed by (seed, g.ID, evidence ID).
func (v *LLMVerifier) corrupt(g Generated, ev datalake.Instance, verdict Verdict, expl string) (Verdict, string) {
	key := g.ID + "|" + ev.ID
	if verdict == NotRelated {
		// Relevance detection: rarely hallucinate a relationship.
		relErr := v.cfg.RelevanceErr
		if g.Kind == KindTuple {
			relErr = v.cfg.TupleRelevanceErr
		}
		if detrand.Bernoulli(relErr, v.cfg.Seed, "rel", key) {
			if detrand.Bernoulli(0.5, v.cfg.Seed, "rel-dir", key) {
				return Verified, "The evidence appears to support the generated data."
			}
			return Refuted, "The evidence appears to contradict the generated data."
		}
		return verdict, expl
	}
	errRate := v.errRateFor(g, ev)
	if detrand.Bernoulli(errRate, v.cfg.Seed, "read", key) {
		// Misreading flips the verdict.
		if verdict == Verified {
			return Refuted, "The evidence appears to contradict the generated data."
		}
		return Verified, "The evidence appears to support the generated data."
	}
	return verdict, expl
}

// errRateFor selects the per-pair-type misreading rate.
func (v *LLMVerifier) errRateFor(g Generated, ev datalake.Instance) float64 {
	switch {
	case g.Kind == KindTuple && (ev.Kind == datalake.KindTuple || ev.Kind == datalake.KindTable || ev.Kind == datalake.KindEntity):
		return v.cfg.TupleEvidenceErr
	case ev.Kind == datalake.KindText:
		return v.cfg.TextEvidenceErr
	case g.Kind == KindClaim:
		switch g.Claim.Op {
		case claims.OpLookup:
			return v.cfg.LookupClaimErr
		case claims.OpCount:
			return v.cfg.CountClaimErr
		default:
			return v.cfg.AggClaimErr
		}
	default:
		return v.cfg.TextEvidenceErr
	}
}

// oneRowTable views an evidence tuple as a one-row table so the claim
// machinery can execute against it.
func oneRowTable(ev datalake.Instance) *table.Table {
	t := table.New(ev.Tuple.TableID, ev.Tuple.Caption, ev.Tuple.Columns)
	t.SourceID = ev.Tuple.SourceID
	t.Rows = [][]string{append([]string(nil), ev.Tuple.Values...)}
	return t
}
