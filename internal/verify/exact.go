package verify

import "repro/internal/datalake"

// ExactVerifier applies the shared reasoning machinery with no error
// injection. It serves two roles: the ground-truth oracle the experiment
// harness scores the simulated verifiers against, and a noise-free verifier
// for the case-study demonstrations (Figures 1 and 4), which illustrate the
// mechanism rather than aggregate accuracy.
type ExactVerifier struct {
	inner *LLMVerifier
}

// NewExactVerifier returns the noise-free reasoner.
func NewExactVerifier() *ExactVerifier {
	return &ExactVerifier{inner: NewLLMVerifier(LLMConfig{})}
}

// Name implements Verifier.
func (v *ExactVerifier) Name() string { return "exact-oracle" }

// Supports implements Verifier: every pair type.
func (v *ExactVerifier) Supports(Generated, datalake.Kind) bool { return true }

// Verify implements Verifier with exact reasoning (zero error rates mean
// the LLM profile's corruption step never fires).
func (v *ExactVerifier) Verify(g Generated, ev datalake.Instance) (Result, error) {
	verdict, expl, err := v.inner.reason(g, ev)
	if err != nil {
		return Result{}, err
	}
	return Result{Verdict: verdict, Explanation: expl, Verifier: v.Name(), EvidenceID: ev.ID}, nil
}
