package verify

import (
	"fmt"

	"repro/internal/datalake"
)

// Agent decides which Verifier to use for a given (g, x) pair, as in
// Figure 3 of the paper. Local (specific) verifiers are preferred when
// registered and applicable — the paper motivates them with data privacy
// and better accuracy — and the one-size-fits-all LLM verifier is the
// fallback.
type Agent struct {
	locals   []Verifier
	fallback Verifier
	// preferLocal selects local models when available; when false the agent
	// always uses the fallback (the "ChatGPT by default for simplicity"
	// mode).
	preferLocal bool
}

// AgentOption configures an Agent.
type AgentOption func(*Agent)

// WithLocalVerifier registers a local (task-specific) verifier. Locals are
// consulted in registration order.
func WithLocalVerifier(v Verifier) AgentOption {
	return func(a *Agent) { a.locals = append(a.locals, v) }
}

// WithPreferLocal toggles whether local verifiers are preferred over the
// fallback LLM (default true).
func WithPreferLocal(prefer bool) AgentOption {
	return func(a *Agent) { a.preferLocal = prefer }
}

// NewAgent returns an agent with the given fallback (typically the
// LLMVerifier). Panics on a nil fallback: the agent must always be able to
// decide.
func NewAgent(fallback Verifier, opts ...AgentOption) *Agent {
	if fallback == nil {
		panic("verify: agent needs a fallback verifier")
	}
	a := &Agent{fallback: fallback, preferLocal: true}
	for _, o := range opts {
		o(a)
	}
	return a
}

// Route returns the verifier the agent would use for this pair.
func (a *Agent) Route(g Generated, evidenceKind datalake.Kind) Verifier {
	if a.preferLocal {
		for _, v := range a.locals {
			if v.Supports(g, evidenceKind) {
				return v
			}
		}
	}
	return a.fallback
}

// Verify dispatches the pair to the routed verifier.
func (a *Agent) Verify(g Generated, ev datalake.Instance) (Result, error) {
	v := a.Route(g, ev.Kind)
	res, err := v.Verify(g, ev)
	if err != nil {
		return Result{}, fmt.Errorf("verify: %s: %w", v.Name(), err)
	}
	return res, nil
}
