package verify

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/claims"
	"repro/internal/datalake"
	"repro/internal/table"
)

func TestLLMVerifierDeterministic(t *testing.T) {
	v1 := NewLLMVerifier(DefaultLLMConfig(5))
	v2 := NewLLMVerifier(DefaultLLMConfig(5))
	tbl := usOpen1954()
	g := imputedTuple("570")
	for row := 0; row < tbl.NumRows(); row++ {
		r1, err1 := v1.Verify(g, tupleInst(tbl, row))
		r2, err2 := v2.Verify(g, tupleInst(tbl, row))
		if err1 != nil || err2 != nil {
			t.Fatal(err1, err2)
		}
		if r1.Verdict != r2.Verdict {
			t.Fatal("LLM verifier not deterministic")
		}
	}
}

func TestLLMVerifierErrorRateCalibration(t *testing.T) {
	// Over many related (tuple, tuple) pairs, the disagreement with the
	// exact reasoner must match TupleEvidenceErr.
	cfg := DefaultLLMConfig(11)
	noisy := NewLLMVerifier(cfg)
	exact := NewExactVerifier()
	const n = 3000
	flips := 0
	for i := 0; i < n; i++ {
		tbl := table.New(fmt.Sprintf("t%d", i), "caption one", []string{"k", "v"})
		tbl.MustAppendRow("entity", "10")
		g := NewTupleObject(fmt.Sprintf("g%d", i), mustTuple(tbl, 0), "v")
		inst := tupleInst(tbl, 0)
		a, err := noisy.Verify(g, inst)
		if err != nil {
			t.Fatal(err)
		}
		b, _ := exact.Verify(g, inst)
		if b.Verdict != Verified {
			t.Fatalf("exact verdict = %v", b.Verdict)
		}
		if a.Verdict != b.Verdict {
			flips++
		}
	}
	rate := float64(flips) / n
	if math.Abs(rate-cfg.TupleEvidenceErr) > 0.02 {
		t.Errorf("flip rate = %v, want ~%v", rate, cfg.TupleEvidenceErr)
	}
}

func mustTuple(t *table.Table, row int) table.Tuple {
	tp, ok := t.TupleAt(row)
	if !ok {
		panic("row out of range")
	}
	return tp
}

func TestLLMVerifierSupportsEverything(t *testing.T) {
	v := NewLLMVerifier(DefaultLLMConfig(1))
	g := imputedTuple("570")
	for _, k := range []datalake.Kind{datalake.KindTable, datalake.KindTuple, datalake.KindText, datalake.KindEntity} {
		if !v.Supports(g, k) {
			t.Errorf("LLM does not support %v", k)
		}
	}
}

func TestLLMVerifierTupleVsTable(t *testing.T) {
	// A whole table as evidence: the verifier scans rows.
	exact := NewExactVerifier()
	res, err := exact.Verify(imputedTuple("570"), tableInst(usOpen1954()))
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != Verified {
		t.Errorf("tuple vs table = %v (%s)", res.Verdict, res.Explanation)
	}
	// A table with no matching row.
	other := table.New("x", "another caption entirely", []string{"a", "b"})
	other.MustAppendRow("1", "2")
	res, _ = exact.Verify(imputedTuple("570"), tableInst(other))
	if res.Verdict != NotRelated {
		t.Errorf("tuple vs foreign table = %v", res.Verdict)
	}
}

func TestPastaBinaryOutput(t *testing.T) {
	pasta := NewPastaVerifier(DefaultPastaConfig(3))
	// On MANY unrelated tables, PASTA must never answer NotRelated and
	// must answer Refuted at roughly UnrelatedRefuteProb.
	refuted := 0
	const n = 2000
	for i := 0; i < n; i++ {
		cl := claims.Claim{
			Context:   "some other relation entirely",
			Entities:  []string{"ghost entity"},
			Attribute: "money",
			Op:        claims.OpLookup,
			Value:     "1",
		}
		cl.Render()
		g := NewClaimObject(fmt.Sprintf("p%d", i), cl)
		res, err := pasta.Verify(g, tableInst(usOpen1954()))
		if err != nil {
			t.Fatal(err)
		}
		if res.Verdict == NotRelated {
			t.Fatal("PASTA produced NotRelated")
		}
		if res.Verdict == Refuted {
			refuted++
		}
	}
	rate := float64(refuted) / n
	want := DefaultPastaConfig(3).UnrelatedRefuteProb
	if math.Abs(rate-want) > 0.03 {
		t.Errorf("PASTA OOD refute rate = %v, want ~%v", rate, want)
	}
}

func TestPastaExecutesTableOps(t *testing.T) {
	pasta := NewPastaVerifier(PastaConfig{Seed: 1, ClaimErr: 0, UnrelatedRefuteProb: 0.5})
	cl := claims.Claim{
		Context:   "1954 u.s. open (golf)",
		Entities:  []string{"tommy bolt", "fred haas", "ben hogan"},
		Attribute: "money",
		Op:        claims.OpSum,
		Value:     "1710",
	}
	cl.Render()
	res, err := pasta.Verify(NewClaimObject("p-sum", cl), tableInst(usOpen1954()))
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != Verified {
		t.Errorf("PASTA sum = %v (%s)", res.Verdict, res.Explanation)
	}
}

func TestPastaRejectsWrongPairs(t *testing.T) {
	pasta := NewPastaVerifier(DefaultPastaConfig(1))
	if pasta.Supports(imputedTuple("x"), datalake.KindTable) {
		t.Error("PASTA claims to support tuple objects")
	}
	if _, err := pasta.Verify(imputedTuple("x"), tableInst(usOpen1954())); err == nil {
		t.Error("PASTA verified an unsupported pair")
	}
}

func TestTupleVerifier(t *testing.T) {
	tv := NewTupleVerifier()
	tbl := usOpen1954()
	if !tv.Supports(imputedTuple("x"), datalake.KindTuple) {
		t.Error("tuple verifier rejects its pair")
	}
	if tv.Supports(imputedTuple("x"), datalake.KindText) {
		t.Error("tuple verifier accepts text")
	}
	res, err := tv.Verify(imputedTuple("570"), tupleInst(tbl, 1))
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != Verified || res.Verifier != "roberta-tuple-sim" {
		t.Errorf("tuple verifier = %+v", res)
	}
	if _, err := tv.Verify(imputedTuple("570"), tableInst(tbl)); err == nil {
		t.Error("tuple verifier accepted table evidence")
	}
}

func TestAgentRouting(t *testing.T) {
	llm := NewLLMVerifier(DefaultLLMConfig(1))
	pasta := NewPastaVerifier(DefaultPastaConfig(1))
	tupleV := NewTupleVerifier()
	agent := NewAgent(llm, WithLocalVerifier(pasta), WithLocalVerifier(tupleV))

	cl := claims.Claim{Context: "c", Entities: []string{"e"}, Attribute: "a", Op: claims.OpLookup, Value: "v"}
	cl.Render()
	claimObj := NewClaimObject("x", cl)

	if got := agent.Route(claimObj, datalake.KindTable).Name(); got != "pasta-sim" {
		t.Errorf("claim/table routed to %s", got)
	}
	if got := agent.Route(imputedTuple("1"), datalake.KindTuple).Name(); got != "roberta-tuple-sim" {
		t.Errorf("tuple/tuple routed to %s", got)
	}
	if got := agent.Route(imputedTuple("1"), datalake.KindText).Name(); got != "chatgpt-sim" {
		t.Errorf("tuple/text routed to %s", got)
	}
	if got := agent.Route(claimObj, datalake.KindText).Name(); got != "chatgpt-sim" {
		t.Errorf("claim/text routed to %s", got)
	}

	// preferLocal=false sends everything to the fallback.
	agentLLM := NewAgent(llm, WithLocalVerifier(pasta), WithPreferLocal(false))
	if got := agentLLM.Route(claimObj, datalake.KindTable).Name(); got != "chatgpt-sim" {
		t.Errorf("preferLocal=false routed to %s", got)
	}
}

func TestAgentVerifyDispatch(t *testing.T) {
	agent := NewAgent(NewExactVerifier(), WithLocalVerifier(NewTupleVerifier()))
	res, err := agent.Verify(imputedTuple("570"), tupleInst(usOpen1954(), 1))
	if err != nil {
		t.Fatal(err)
	}
	if res.Verifier != "roberta-tuple-sim" || res.Verdict != Verified {
		t.Errorf("agent dispatch = %+v", res)
	}
}

func TestAgentNilFallbackPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewAgent(nil) did not panic")
		}
	}()
	NewAgent(nil)
}
