package verify

import (
	"fmt"

	"repro/internal/claims"
	"repro/internal/datalake"
	"repro/internal/detrand"
)

// PastaConfig is the calibrated profile of the simulated PASTA model (Gu et
// al., EMNLP 2022), the paper's local (text, table) verifier. The defaults
// reproduce its Table 2 behaviour:
//
//   - 0.89 accuracy on (text, relevant table): PASTA's table-operations-
//     aware pre-training lets it execute lookups and aggregations almost
//     exactly — better than the generic LLM on the arithmetic-heavy claims;
//   - 0.72 accuracy on (text, retrieved table): the model only outputs
//     true/false (no "not related" class) and has never seen irrelevant
//     tables in training, so on unrelated evidence it guesses, with a bias
//     toward "false" (which the paper's scoring counts as correct for
//     unrelated pairs).
type PastaConfig struct {
	// Seed drives the deterministic error injection.
	Seed uint64
	// ClaimErr is the execution error rate on related tables.
	ClaimErr float64
	// UnrelatedRefuteProb is the probability of answering "false" when the
	// table is actually unrelated — the out-of-distribution guess bias.
	UnrelatedRefuteProb float64
}

// DefaultPastaConfig returns the calibrated profile described above.
func DefaultPastaConfig(seed uint64) PastaConfig {
	return PastaConfig{Seed: seed, ClaimErr: 0.11, UnrelatedRefuteProb: 0.62}
}

// PastaVerifier simulates PASTA: a local (text, table) fact-verification
// model with binary output. It never returns NotRelated.
type PastaVerifier struct {
	cfg PastaConfig
}

// NewPastaVerifier returns a simulated PASTA verifier.
func NewPastaVerifier(cfg PastaConfig) *PastaVerifier {
	return &PastaVerifier{cfg: cfg}
}

// Name implements Verifier.
func (v *PastaVerifier) Name() string { return "pasta-sim" }

// Supports implements Verifier: PASTA only handles (claim, table) pairs.
func (v *PastaVerifier) Supports(g Generated, evidenceKind datalake.Kind) bool {
	return g.Kind == KindClaim && evidenceKind == datalake.KindTable
}

// Verify implements Verifier.
func (v *PastaVerifier) Verify(g Generated, ev datalake.Instance) (Result, error) {
	if !v.Supports(g, ev.Kind) {
		return Result{}, fmt.Errorf("verify: pasta supports only (claim, table) pairs, got (%v, %v)", g.Kind, ev.Kind)
	}
	out, expl := claims.Eval(g.Claim, ev.Table)
	key := g.ID + "|" + ev.ID
	var verdict Verdict
	switch out {
	case claims.Supports, claims.Refutes:
		verdict = fromOutcome(out)
		if detrand.Bernoulli(v.cfg.ClaimErr, v.cfg.Seed, "pasta-exec", key) {
			if verdict == Verified {
				verdict, expl = Refuted, "The model judges the claim inconsistent with the table."
			} else {
				verdict, expl = Verified, "The model judges the claim consistent with the table."
			}
		}
	default:
		// Out of distribution: the binary model must still answer.
		if detrand.Bernoulli(v.cfg.UnrelatedRefuteProb, v.cfg.Seed, "pasta-ood", key) {
			verdict, expl = Refuted, "The model judges the claim inconsistent with the table."
		} else {
			verdict, expl = Verified, "The model judges the claim consistent with the table."
		}
	}
	return Result{Verdict: verdict, Explanation: expl, Verifier: v.Name(), EvidenceID: ev.ID}, nil
}
