package verify

import (
	"fmt"
	"strings"

	"repro/internal/claims"
	"repro/internal/datalake"
	"repro/internal/doc"
	"repro/internal/table"
	"repro/internal/textutil"
)

// This file contains the exact (noise-free) reasoning shared by the
// verifiers. Each reason* function returns the verdict an ideal reasoner
// would produce for the pair, plus an explanation. The simulated verifiers
// wrap these with their calibrated error profiles.

// reasonTupleTuple checks an imputed tuple against an evidence tuple.
// The evidence is related when it describes the same row of the same
// relation: captions match and the non-verified cells agree (the imputed
// tuple differs from its original counterpart only in the verified
// attribute). Related evidence then verifies or refutes the imputed value.
func reasonTupleTuple(g Generated, ev table.Tuple) (Verdict, string) {
	if !captionsSimilar(g.Tuple.Caption, ev.Caption) {
		return NotRelated, fmt.Sprintf("The evidence tuple is from %q, not %q.", ev.Caption, g.Tuple.Caption)
	}
	// Agreement over shared, non-verified columns.
	attrFold := textutil.Fold(g.Attr)
	shared, agree := 0, 0
	for i, c := range g.Tuple.Columns {
		if textutil.Fold(c) == attrFold {
			continue
		}
		evVal, ok := ev.Value(c)
		if !ok {
			continue
		}
		shared++
		if textutil.Fold(evVal) == textutil.Fold(g.Tuple.Values[i]) {
			agree++
		}
	}
	if shared == 0 || float64(agree)/float64(shared) < 0.8 {
		return NotRelated, "The evidence tuple describes a different entity."
	}
	evVal, ok := ev.Value(g.Attr)
	if !ok {
		return NotRelated, fmt.Sprintf("The evidence tuple has no attribute %q.", g.Attr)
	}
	gv, _ := g.Tuple.Value(g.Attr)
	if cellsEqual(gv, evVal) {
		return Verified, fmt.Sprintf("The evidence tuple confirms %s = %s.", g.Attr, gv)
	}
	return Refuted, fmt.Sprintf("The evidence tuple shows %s = %s, not %s.", g.Attr, evVal, gv)
}

// reasonTupleText checks an imputed tuple against an evidence document.
// The document is related when it is the page of an entity appearing in the
// tuple (title matches a cell) and it states the verified attribute in the
// tuple's table context; in that case the stated value verifies or refutes
// the imputed one.
func reasonTupleText(g Generated, d *doc.Document) (Verdict, string) {
	entity, ok := docEntityInTuple(g.Tuple, d)
	if !ok {
		return NotRelated, "The document is not about an entity in the tuple."
	}
	text := textutil.Fold(d.Text)
	// The page must speak about the tuple's table context; otherwise the
	// attribute statement could concern another table.
	captionFold := textutil.Fold(g.Tuple.Caption)
	if !strings.Contains(text, captionFold) {
		return NotRelated, fmt.Sprintf("The page of %s does not discuss %q.", entity, g.Tuple.Caption)
	}
	gv, _ := g.Tuple.Value(g.Attr)

	// Direct statement of the verified attribute, preferring sentences that
	// name this table (a reused entity's page may discuss several tables).
	if stated, ok := extractStatedValueScoped(d.Text, g.Attr, captionFold); ok {
		if cellsEqual(gv, stated) {
			return Verified, fmt.Sprintf("The page of %s states the %s is %s, confirming the value.", entity, g.Attr, stated)
		}
		return Refuted, fmt.Sprintf("The page of %s states the %s is %s, not %s.", entity, g.Attr, stated, gv)
	}

	// When the imputed value IS an entity (e.g. an imputed incumbent) and
	// this page is that entity's own page, any statement linking the entity
	// to a different row of this table breaks the imputation: the page of
	// the claimed incumbent saying it holds a different district refutes
	// the tuple (Figure 1(a)'s "a text file validates the imputed value to
	// be incorrect").
	if textutil.Fold(entity) == textutil.Fold(gv) {
		for i, c := range g.Tuple.Columns {
			if textutil.Fold(c) == textutil.Fold(g.Attr) {
				continue
			}
			stated, ok := extractStatedValueScoped(d.Text, c, captionFold)
			if !ok {
				continue
			}
			if cellsEqual(g.Tuple.Values[i], stated) {
				return Verified, fmt.Sprintf("The page of %s links it to %s = %s, confirming the tuple.", entity, c, stated)
			}
			return Refuted, fmt.Sprintf("The page of %s links it to %s = %s, not %s.", entity, c, stated, g.Tuple.Values[i])
		}
	}
	return NotRelated, fmt.Sprintf("The page of %s does not state a %s.", entity, g.Attr)
}

// reasonClaimTable checks a textual claim against an evidence table by
// executing the implied table operation.
func reasonClaimTable(g Generated, t *table.Table) (Verdict, string) {
	out, expl := claims.Eval(g.Claim, t)
	return fromOutcome(out), expl
}

// reasonClaimText checks a textual claim against an evidence document using
// containment: the document must mention the claim's entities and attribute;
// the claim is verified when the claimed value co-occurs, refuted when the
// document states the attribute with a different value.
func reasonClaimText(g Generated, d *doc.Document) (Verdict, string) {
	text := textutil.Fold(d.Text) + " " + textutil.Fold(d.Title)
	for _, e := range g.Claim.Entities {
		if !strings.Contains(text, textutil.Fold(e)) {
			return NotRelated, fmt.Sprintf("The document does not mention %q.", e)
		}
	}
	stated, ok := extractStatedValue(d.Text, g.Claim.Attribute)
	if ok {
		if cellsEqual(g.Claim.Value, stated) {
			return Verified, fmt.Sprintf("The document states the %s is %s, matching the claim.", g.Claim.Attribute, stated)
		}
		return Refuted, fmt.Sprintf("The document states the %s is %s, not %s.", g.Claim.Attribute, stated, g.Claim.Value)
	}
	// No explicit attribute statement: fall back to co-occurrence of the
	// claimed value with the entities.
	if strings.Contains(text, textutil.Fold(g.Claim.Value)) {
		return Verified, fmt.Sprintf("The document mentions %s together with %s.", g.Claim.Value, strings.Join(g.Claim.Entities, ", "))
	}
	return NotRelated, "The document mentions the entities but not the claimed fact."
}

// reasonClaimEntity checks a claim against a knowledge-graph entity
// neighborhood (the cross-modal extension of Section 5).
func reasonClaimEntity(g Generated, in datalake.Instance) (Verdict, string) {
	if len(g.Claim.Entities) == 0 {
		return NotRelated, "The claim names no entities."
	}
	subject := g.Claim.Entities[0]
	if textutil.Fold(in.Entity) != textutil.Fold(subject) {
		return NotRelated, fmt.Sprintf("The entity %q is not the claim's subject %q.", in.Entity, subject)
	}
	attrFold := textutil.Fold(g.Claim.Attribute)
	for _, tr := range in.Graph.About(in.Entity) {
		predFold := textutil.Fold(tr.Predicate)
		if !strings.Contains(predFold, attrFold) {
			continue
		}
		// The predicate may be scoped to a table context ("money of 1954
		// ..."); require the claim context when present.
		if g.Claim.Context != "" && !strings.Contains(predFold, textutil.Fold(g.Claim.Context)) {
			continue
		}
		if cellsEqual(g.Claim.Value, tr.Object) {
			return Verified, fmt.Sprintf("The knowledge graph states %s %s %s.", tr.Subject, tr.Predicate, tr.Object)
		}
		return Refuted, fmt.Sprintf("The knowledge graph states %s %s %s, not %s.", tr.Subject, tr.Predicate, tr.Object, g.Claim.Value)
	}
	return NotRelated, fmt.Sprintf("The knowledge graph has no %q fact for %s.", g.Claim.Attribute, subject)
}

// reasonTupleEntity checks an imputed tuple against a knowledge-graph
// entity neighborhood.
func reasonTupleEntity(g Generated, in datalake.Instance) (Verdict, string) {
	// The entity must appear among the tuple's cells.
	found := false
	for _, v := range g.Tuple.Values {
		if textutil.Fold(v) == textutil.Fold(in.Entity) {
			found = true
			break
		}
	}
	if !found {
		return NotRelated, fmt.Sprintf("The entity %q does not appear in the tuple.", in.Entity)
	}
	attrFold := textutil.Fold(g.Attr)
	ctxFold := textutil.Fold(g.Tuple.Caption)
	for _, tr := range in.Graph.About(in.Entity) {
		predFold := textutil.Fold(tr.Predicate)
		if !strings.Contains(predFold, attrFold) {
			continue
		}
		if ctxFold != "" && !strings.Contains(predFold, ctxFold) {
			continue
		}
		gv, _ := g.Tuple.Value(g.Attr)
		if cellsEqual(gv, tr.Object) {
			return Verified, fmt.Sprintf("The knowledge graph states %s %s %s.", tr.Subject, tr.Predicate, tr.Object)
		}
		return Refuted, fmt.Sprintf("The knowledge graph states %s %s %s, not %s.", tr.Subject, tr.Predicate, tr.Object, gv)
	}
	return NotRelated, fmt.Sprintf("The knowledge graph has no %q fact for %s in this context.", g.Attr, in.Entity)
}

// captionsSimilar reports whether two table captions plausibly name the same
// relation.
func captionsSimilar(a, b string) bool {
	if textutil.Fold(a) == textutil.Fold(b) {
		return true
	}
	return textutil.Jaccard(textutil.Tokenize(a), textutil.Tokenize(b)) >= 0.7
}

// cellsEqual compares two cell values numerically when both parse as
// numbers, by folded string equality otherwise.
func cellsEqual(a, b string) bool {
	av, aok := textutil.ParseNumber(a)
	bv, bok := textutil.ParseNumber(b)
	if aok && bok && textutil.IsNumeric(strings.TrimSpace(a)) && textutil.IsNumeric(strings.TrimSpace(b)) {
		return textutil.NearlyEqual(av, bv)
	}
	return textutil.Fold(a) == textutil.Fold(b)
}

// docEntityInTuple reports whether d is the page of an entity appearing in
// the tuple, returning the matched entity.
func docEntityInTuple(tp table.Tuple, d *doc.Document) (string, bool) {
	title := textutil.Fold(d.Title)
	entity := textutil.Fold(d.EntityID)
	for _, v := range tp.Values {
		f := textutil.Fold(v)
		if f == "" {
			continue
		}
		if f == title || (entity != "" && f == entity) {
			return v, true
		}
	}
	return "", false
}

// extractStatedValue scans a document sentence by sentence for a statement
// of the attribute ("... recorded a <attr> of <value>." or "... the <attr>
// is <value>.") and returns the stated value (the folded remainder of the
// sentence).
func extractStatedValue(text, attr string) (string, bool) {
	return extractStatedValueScoped(text, attr, "")
}

// extractStatedValueScoped is extractStatedValue with a scope preference:
// when scopeFold is non-empty, sentences containing it are searched first,
// so a reused entity's page stating the same attribute for several tables
// yields the statement about the intended one. Falls back to any sentence.
func extractStatedValueScoped(text, attr, scopeFold string) (string, bool) {
	attrFold := textutil.Fold(attr)
	markers := []string{
		"recorded a " + attrFold + " of ",
		"the " + attrFold + " is ",
		"a " + attrFold + " of ",
	}
	sentences := textutil.SplitSentences(text)
	scan := func(requireScope bool) (string, bool) {
		for _, sentence := range sentences {
			fs := textutil.Fold(sentence)
			if requireScope && !strings.Contains(fs, scopeFold) {
				continue
			}
			for _, m := range markers {
				idx := strings.Index(fs, m)
				if idx < 0 {
					continue
				}
				val := strings.TrimSpace(fs[idx+len(m):])
				if val != "" {
					return val, true
				}
			}
		}
		return "", false
	}
	if scopeFold != "" {
		if val, ok := scan(true); ok {
			return val, ok
		}
	}
	return scan(false)
}
