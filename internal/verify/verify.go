// Package verify implements VerifAI's Verifier module: given a generated
// data object g and a retrieved data instance x, decide
// verify(g, x) → Verified | Refuted | NotRelated.
//
// Two verifier families are provided, matching Section 3.3 of the paper:
//
//   - LLMVerifier — the one-size-fits-all model (the paper uses ChatGPT).
//     It reasons over any (g, x) pair and is simulated with the calibrated
//     error profile measured in the paper: strong generalization and
//     relevance detection, weaker multi-row table arithmetic.
//   - Local models — PastaVerifier for (text, table) pairs (the paper's
//     PASTA) and TupleVerifier for (tuple, tuple) pairs (the paper's
//     fine-tuned RoBERTa). PASTA executes table operations exactly but is
//     binary-output and degrades on evidence unlike its training
//     distribution (irrelevant tables).
//
// An Agent (agent.go) picks the verifier for each pair, as in Figure 3.
package verify

import (
	"fmt"

	"repro/internal/claims"
	"repro/internal/datalake"
	"repro/internal/table"
)

// Verdict is the ternary outcome of verification, the paper's
// verify(g, x) → 0 | 1 | 2.
type Verdict int

const (
	// NotRelated means the evidence can neither support nor refute g.
	NotRelated Verdict = iota
	// Verified means the evidence supports g.
	Verified
	// Refuted means the evidence contradicts g.
	Refuted
)

// String implements fmt.Stringer.
func (v Verdict) String() string {
	switch v {
	case Verified:
		return "Verified"
	case Refuted:
		return "Refuted"
	case NotRelated:
		return "Not Related"
	default:
		return fmt.Sprintf("Verdict(%d)", int(v))
	}
}

// fromOutcome converts a claims evaluation outcome to a Verdict.
func fromOutcome(o claims.Outcome) Verdict {
	switch o {
	case claims.Supports:
		return Verified
	case claims.Refutes:
		return Refuted
	default:
		return NotRelated
	}
}

// Kind classifies generated data objects.
type Kind int

const (
	// KindTuple is an imputed/generated tuple (Figure 1(a)).
	KindTuple Kind = iota
	// KindClaim is generated text carrying a factual claim (Figure 1(b)).
	KindClaim
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindTuple:
		return "tuple"
	case KindClaim:
		return "claim"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Generated is a generated data object g together with the verification
// metadata the paper's Remark in Section 2 calls for (which attribute of a
// tuple to verify).
type Generated struct {
	// Kind selects which payload is set.
	Kind Kind
	// Tuple is the generated tuple, complete (imputed value filled in).
	Tuple table.Tuple
	// Attr is the attribute under verification for tuple objects.
	Attr string
	// Claim is the structured claim for text objects.
	Claim claims.Claim
	// ID stably identifies the object for provenance and deterministic
	// error injection.
	ID string
}

// NewTupleObject wraps an imputed tuple for verification of attr.
func NewTupleObject(id string, tp table.Tuple, attr string) Generated {
	return Generated{Kind: KindTuple, Tuple: tp, Attr: attr, ID: id}
}

// NewClaimObject wraps a textual claim for verification.
func NewClaimObject(id string, c claims.Claim) Generated {
	return Generated{Kind: KindClaim, Claim: c, ID: id}
}

// Query serializes the object for retrieval (the query handed to the
// Indexer).
func (g Generated) Query() string {
	switch g.Kind {
	case KindTuple:
		return g.Tuple.SerializeForIndex()
	case KindClaim:
		return g.Claim.Text
	default:
		return ""
	}
}

// Describe renders the object for prompts and logs.
func (g Generated) Describe() string {
	switch g.Kind {
	case KindTuple:
		return fmt.Sprintf("tuple [%s] (verify attribute %q)", g.Tuple.String(), g.Attr)
	case KindClaim:
		return fmt.Sprintf("claim %q", g.Claim.Text)
	default:
		return "unknown generated object"
	}
}

// Result is one verifier decision.
type Result struct {
	// Verdict is the ternary decision.
	Verdict Verdict
	// Explanation is the human-readable justification, in the style of the
	// paper's Figure 4 ("Verification result: Refuted. Explanation: ...").
	Explanation string
	// Verifier names the model that produced the decision.
	Verifier string
	// EvidenceID is the lake instance the decision is based on.
	EvidenceID string
}

// Verifier decides verify(g, x) for the pair types it supports.
type Verifier interface {
	// Name identifies the verifier in results and provenance.
	Name() string
	// Supports reports whether the verifier handles this pair type.
	Supports(g Generated, evidenceKind datalake.Kind) bool
	// Verify decides the verdict for (g, evidence). It returns an error
	// only for malformed inputs (unsupported pair, unresolvable evidence),
	// never for "cannot decide" — that is the NotRelated verdict.
	Verify(g Generated, evidence datalake.Instance) (Result, error)
}
