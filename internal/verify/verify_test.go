package verify

import (
	"strings"
	"testing"

	"repro/internal/claims"
	"repro/internal/datalake"
	"repro/internal/doc"
	"repro/internal/kg"
	"repro/internal/table"
)

func usOpen1954() *table.Table {
	t := table.New("e1", "1954 u.s. open (golf)",
		[]string{"place", "player", "country", "money"})
	t.SourceID = "src"
	t.MustAppendRow("t1", "ed furgol", "united states", "6000")
	t.MustAppendRow("t6", "tommy bolt", "united states", "570")
	t.MustAppendRow("t6", "fred haas", "united states", "570")
	t.MustAppendRow("t6", "ben hogan", "united states", "570")
	return t
}

func tupleInst(t *table.Table, row int) datalake.Instance {
	tp, _ := t.TupleAt(row)
	return datalake.Instance{ID: datalake.TupleInstanceID(t.ID, row), Kind: datalake.KindTuple, SourceID: t.SourceID, Tuple: &tp}
}

func tableInst(t *table.Table) datalake.Instance {
	return datalake.Instance{ID: datalake.TableInstanceID(t.ID), Kind: datalake.KindTable, SourceID: t.SourceID, Table: t}
}

func docInst(d *doc.Document) datalake.Instance {
	return datalake.Instance{ID: datalake.TextInstanceID(d.ID), Kind: datalake.KindText, SourceID: d.SourceID, Doc: d}
}

func tommyBoltDoc() *doc.Document {
	return &doc.Document{
		ID:    "d1",
		Title: "Tommy Bolt",
		Text: "Tommy Bolt is a united states golfer. " +
			"In the 1954 u.s. open (golf), Tommy Bolt recorded a money of 570. " +
			"Commentators compared him with others.",
	}
}

// imputedTuple returns tommy bolt's tuple with money imputed as v.
func imputedTuple(v string) Generated {
	tbl := usOpen1954()
	tp, _ := tbl.TupleAt(1)
	return NewTupleObject("g1", tp.WithValue("money", v), "money")
}

func TestReasonTupleTuple(t *testing.T) {
	tbl := usOpen1954()
	exact := NewExactVerifier()

	// Correct imputation vs its counterpart: Verified.
	res, err := exact.Verify(imputedTuple("570"), tupleInst(tbl, 1))
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != Verified {
		t.Errorf("counterpart verdict = %v (%s)", res.Verdict, res.Explanation)
	}

	// Wrong imputation vs counterpart: Refuted.
	res, _ = exact.Verify(imputedTuple("9999"), tupleInst(tbl, 1))
	if res.Verdict != Refuted {
		t.Errorf("wrong value verdict = %v", res.Verdict)
	}
	if !strings.Contains(res.Explanation, "570") {
		t.Errorf("refutation lacks true value: %s", res.Explanation)
	}

	// Different row of the same table: NotRelated (different entity).
	res, _ = exact.Verify(imputedTuple("570"), tupleInst(tbl, 0))
	if res.Verdict != NotRelated {
		t.Errorf("different-entity verdict = %v", res.Verdict)
	}

	// Same entity, different caption: NotRelated.
	other := table.New("e2", "1959 u.s. open (golf)", []string{"place", "player", "country", "money"})
	other.MustAppendRow("t6", "tommy bolt", "united states", "123")
	res, _ = exact.Verify(imputedTuple("570"), tupleInst(other, 0))
	if res.Verdict != NotRelated {
		t.Errorf("different-caption verdict = %v", res.Verdict)
	}
}

func TestReasonTupleText(t *testing.T) {
	exact := NewExactVerifier()
	d := tommyBoltDoc()

	res, _ := exact.Verify(imputedTuple("570"), docInst(d))
	if res.Verdict != Verified {
		t.Errorf("doc verifies = %v (%s)", res.Verdict, res.Explanation)
	}
	res, _ = exact.Verify(imputedTuple("960"), docInst(d))
	if res.Verdict != Refuted {
		t.Errorf("doc refutes = %v", res.Verdict)
	}

	// Page without the table context: NotRelated.
	noCtx := &doc.Document{ID: "d2", Title: "Tommy Bolt", Text: "Tommy Bolt is a golfer."}
	res, _ = exact.Verify(imputedTuple("570"), docInst(noCtx))
	if res.Verdict != NotRelated {
		t.Errorf("contextless page = %v", res.Verdict)
	}

	// Page about someone else: NotRelated.
	wrong := &doc.Document{ID: "d3", Title: "Gene Littler", Text: "In the 1954 u.s. open (golf), Gene Littler recorded a money of 3600."}
	res, _ = exact.Verify(imputedTuple("570"), docInst(wrong))
	if res.Verdict != NotRelated {
		t.Errorf("wrong-entity page = %v", res.Verdict)
	}

	// Page with context but no statement of the verified attribute.
	noAttr := &doc.Document{ID: "d4", Title: "Tommy Bolt", Text: "Tommy Bolt played in the 1954 u.s. open (golf)."}
	res, _ = exact.Verify(imputedTuple("570"), docInst(noAttr))
	if res.Verdict != NotRelated {
		t.Errorf("attributeless page = %v", res.Verdict)
	}
}

func TestReasonClaimTable(t *testing.T) {
	exact := NewExactVerifier()
	cl := claims.Claim{
		Context:   "1954 u.s. open (golf)",
		Entities:  []string{"tommy bolt", "fred haas", "ben hogan"},
		Attribute: "cash prize",
		Op:        claims.OpSum,
		Value:     "960",
	}
	cl.Render()
	g := NewClaimObject("c1", cl)
	res, _ := exact.Verify(g, tableInst(usOpen1954()))
	if res.Verdict != Refuted {
		t.Errorf("figure-4 claim = %v (%s)", res.Verdict, res.Explanation)
	}
}

func TestReasonClaimText(t *testing.T) {
	exact := NewExactVerifier()
	cl := claims.Claim{
		Context:   "x",
		Entities:  []string{"tommy bolt"},
		Attribute: "money",
		Op:        claims.OpLookup,
		Value:     "570",
	}
	cl.Render()
	g := NewClaimObject("c2", cl)
	res, _ := exact.Verify(g, docInst(tommyBoltDoc()))
	if res.Verdict != Verified {
		t.Errorf("claim vs doc = %v (%s)", res.Verdict, res.Explanation)
	}
	cl2 := cl
	cl2.Value = "9999"
	res, _ = exact.Verify(NewClaimObject("c3", cl2), docInst(tommyBoltDoc()))
	if res.Verdict != Refuted {
		t.Errorf("claim vs doc refute = %v", res.Verdict)
	}
	cl3 := cl
	cl3.Entities = []string{"arnold palmer"}
	res, _ = exact.Verify(NewClaimObject("c4", cl3), docInst(tommyBoltDoc()))
	if res.Verdict != NotRelated {
		t.Errorf("claim vs unrelated doc = %v", res.Verdict)
	}
}

func TestReasonClaimTuple(t *testing.T) {
	// A single evidence tuple settles a lookup claim (one-row table view).
	exact := NewExactVerifier()
	cl := claims.Claim{
		Context:   "1954 u.s. open (golf)",
		Entities:  []string{"tommy bolt"},
		Attribute: "money",
		Op:        claims.OpLookup,
		Value:     "570",
	}
	cl.Render()
	res, _ := exact.Verify(NewClaimObject("c5", cl), tupleInst(usOpen1954(), 1))
	if res.Verdict != Verified {
		t.Errorf("claim vs tuple = %v (%s)", res.Verdict, res.Explanation)
	}
}

func TestReasonEntityEvidence(t *testing.T) {
	g := kg.NewGraph()
	g.Add(kg.Triple{Subject: "tommy bolt", Predicate: "money of 1954 u.s. open (golf)", Object: "570", SourceID: "kg"})
	inst := datalake.Instance{
		ID: "entity:tommy bolt", Kind: datalake.KindEntity, SourceID: "kg",
		Entity: "tommy bolt", Graph: g,
	}
	exact := NewExactVerifier()

	// Tuple object vs entity.
	res, _ := exact.Verify(imputedTuple("570"), inst)
	if res.Verdict != Verified {
		t.Errorf("tuple vs entity = %v (%s)", res.Verdict, res.Explanation)
	}
	res, _ = exact.Verify(imputedTuple("960"), inst)
	if res.Verdict != Refuted {
		t.Errorf("tuple vs entity refute = %v", res.Verdict)
	}

	// Claim object vs entity.
	cl := claims.Claim{
		Context:   "1954 u.s. open (golf)",
		Entities:  []string{"tommy bolt"},
		Attribute: "money",
		Op:        claims.OpLookup,
		Value:     "570",
	}
	cl.Render()
	res, _ = exact.Verify(NewClaimObject("c6", cl), inst)
	if res.Verdict != Verified {
		t.Errorf("claim vs entity = %v (%s)", res.Verdict, res.Explanation)
	}

	// Entity not in the tuple: NotRelated.
	other := datalake.Instance{ID: "entity:nobody", Kind: datalake.KindEntity, Entity: "nobody", Graph: g}
	res, _ = exact.Verify(imputedTuple("570"), other)
	if res.Verdict != NotRelated {
		t.Errorf("foreign entity = %v", res.Verdict)
	}
}

func TestGeneratedQueryAndDescribe(t *testing.T) {
	g := imputedTuple("570")
	if !strings.Contains(g.Query(), "tommy bolt") {
		t.Error("tuple query missing entity")
	}
	if !strings.Contains(g.Describe(), "money") {
		t.Error("tuple describe missing attr")
	}
	cl := claims.Claim{Context: "c", Entities: []string{"e f"}, Attribute: "a", Op: claims.OpLookup, Value: "v"}
	cl.Render()
	gc := NewClaimObject("x", cl)
	if gc.Query() != cl.Text {
		t.Error("claim query != text")
	}
	if !strings.Contains(gc.Describe(), cl.Text) {
		t.Error("claim describe missing text")
	}
}

func TestVerdictString(t *testing.T) {
	if Verified.String() != "Verified" || Refuted.String() != "Refuted" || NotRelated.String() != "Not Related" {
		t.Error("Verdict.String wrong")
	}
	if Verdict(9).String() == "" || Kind(9).String() == "" {
		t.Error("unknown enums")
	}
	if KindTuple.String() != "tuple" || KindClaim.String() != "claim" {
		t.Error("Kind.String wrong")
	}
}
