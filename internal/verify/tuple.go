package verify

import (
	"fmt"

	"repro/internal/datalake"
)

// TupleVerifier simulates the paper's fine-tuned RoBERTa model for
// (tuple, tuple) verification. Section 4 notes the local model's accuracy is
// comparable to ChatGPT's on this task; the simulation performs exact
// schema-aligned cell comparison with no injected noise — the alignment
// itself (captions, shared non-verified cells) is where a real fine-tuned
// matcher earns its accuracy, and our exact matcher lands within the
// reported range.
type TupleVerifier struct{}

// NewTupleVerifier returns the local (tuple, tuple) verifier.
func NewTupleVerifier() *TupleVerifier { return &TupleVerifier{} }

// Name implements Verifier.
func (v *TupleVerifier) Name() string { return "roberta-tuple-sim" }

// Supports implements Verifier: (tuple, tuple) pairs only.
func (v *TupleVerifier) Supports(g Generated, evidenceKind datalake.Kind) bool {
	return g.Kind == KindTuple && evidenceKind == datalake.KindTuple
}

// Verify implements Verifier.
func (v *TupleVerifier) Verify(g Generated, ev datalake.Instance) (Result, error) {
	if !v.Supports(g, ev.Kind) {
		return Result{}, fmt.Errorf("verify: tuple verifier supports only (tuple, tuple) pairs, got (%v, %v)", g.Kind, ev.Kind)
	}
	verdict, expl := reasonTupleTuple(g, *ev.Tuple)
	return Result{Verdict: verdict, Explanation: expl, Verifier: v.Name(), EvidenceID: ev.ID}, nil
}
