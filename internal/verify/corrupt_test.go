package verify

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/claims"
	"repro/internal/datalake"
	"repro/internal/table"
)

// TestRelevanceErrorInjection: on unrelated evidence the LLM verifier
// hallucinate a relationship at exactly the configured rate, split between
// Verified and Refuted.
func TestRelevanceErrorInjection(t *testing.T) {
	cfg := LLMConfig{Seed: 21, RelevanceErr: 0.2}
	v := NewLLMVerifier(cfg)
	foreign := table.New("f", "an entirely different relation", []string{"a", "b"})
	foreign.MustAppendRow("x", "y")

	const n = 4000
	var hallucinated, verified int
	for i := 0; i < n; i++ {
		cl := claims.Claim{
			Context:   "some other caption",
			Entities:  []string{"ghost"},
			Attribute: "a",
			Op:        claims.OpLookup,
			Value:     "v",
		}
		cl.Render()
		g := NewClaimObject(fmt.Sprintf("r%d", i), cl)
		res, err := v.Verify(g, tableInst(foreign))
		if err != nil {
			t.Fatal(err)
		}
		if res.Verdict != NotRelated {
			hallucinated++
			if res.Verdict == Verified {
				verified++
			}
		}
	}
	rate := float64(hallucinated) / n
	if math.Abs(rate-0.2) > 0.02 {
		t.Errorf("hallucination rate = %v, want ~0.2", rate)
	}
	// Roughly half of hallucinations go each way.
	split := float64(verified) / float64(hallucinated)
	if math.Abs(split-0.5) > 0.08 {
		t.Errorf("hallucination split = %v, want ~0.5", split)
	}
}

// TestTupleRelevanceErrSeparateFromClaim: tuple objects use the tuple
// relevance knob, claim objects the generic one.
func TestTupleRelevanceErrSeparateFromClaim(t *testing.T) {
	cfg := LLMConfig{Seed: 22, RelevanceErr: 0, TupleRelevanceErr: 0.3}
	v := NewLLMVerifier(cfg)
	foreign := table.New("f", "another caption entirely", []string{"k", "m"})
	foreign.MustAppendRow("other entity", "1")

	const n = 3000
	flips := 0
	for i := 0; i < n; i++ {
		// Fresh tuple objects against unrelated evidence.
		tbl := table.New(fmt.Sprintf("q%d", i), "query caption", []string{"k", "m"})
		tbl.MustAppendRow("entity", "5")
		tp, _ := tbl.TupleAt(0)
		g := NewTupleObject(fmt.Sprintf("t%d", i), tp, "m")
		res, err := v.Verify(g, tupleInst(foreign, 0))
		if err != nil {
			t.Fatal(err)
		}
		if res.Verdict != NotRelated {
			flips++
		}
	}
	rate := float64(flips) / n
	if math.Abs(rate-0.3) > 0.025 {
		t.Errorf("tuple relevance error = %v, want ~0.3", rate)
	}

	// Claim objects against unrelated evidence never flip (RelevanceErr=0).
	for i := 0; i < 200; i++ {
		cl := claims.Claim{Context: "no such table", Entities: []string{"g"}, Attribute: "m", Op: claims.OpLookup, Value: "1"}
		cl.Render()
		g := NewClaimObject(fmt.Sprintf("c%d", i), cl)
		res, err := v.Verify(g, tableInst(foreign))
		if err != nil {
			t.Fatal(err)
		}
		if res.Verdict != NotRelated {
			t.Fatalf("claim object flipped with RelevanceErr=0")
		}
	}
}

// TestCorruptionFlipsBothDirections: misreadings flip Verified→Refuted and
// Refuted→Verified.
func TestCorruptionFlipsBothDirections(t *testing.T) {
	cfg := LLMConfig{Seed: 23, TupleEvidenceErr: 1} // always misread
	v := NewLLMVerifier(cfg)
	tbl := usOpen1954()

	res, err := v.Verify(imputedTuple("570"), tupleInst(tbl, 1)) // truth: Verified
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != Refuted {
		t.Errorf("always-misread on Verified pair = %v", res.Verdict)
	}
	res, err = v.Verify(imputedTuple("999"), tupleInst(tbl, 1)) // truth: Refuted
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != Verified {
		t.Errorf("always-misread on Refuted pair = %v", res.Verdict)
	}
}

// TestErrRateRouting: the per-pair-class error selection picks the right
// knob for each claim operation.
func TestErrRateRouting(t *testing.T) {
	cfg := LLMConfig{
		Seed: 24, LookupClaimErr: 0.1, AggClaimErr: 0.2, CountClaimErr: 0.3,
		TextEvidenceErr: 0.4, TupleEvidenceErr: 0.5,
	}
	v := NewLLMVerifier(cfg)
	mk := func(op claims.AggOp) Generated {
		return NewClaimObject("x", claims.Claim{Op: op})
	}
	inst := datalake.Instance{Kind: datalake.KindTable}
	if got := v.errRateFor(mk(claims.OpLookup), inst); got != 0.1 {
		t.Errorf("lookup err = %v", got)
	}
	if got := v.errRateFor(mk(claims.OpSum), inst); got != 0.2 {
		t.Errorf("sum err = %v", got)
	}
	if got := v.errRateFor(mk(claims.OpCount), inst); got != 0.3 {
		t.Errorf("count err = %v", got)
	}
	if got := v.errRateFor(mk(claims.OpLookup), datalake.Instance{Kind: datalake.KindText}); got != 0.4 {
		t.Errorf("text evidence err = %v", got)
	}
	tbl := usOpen1954()
	tp, _ := tbl.TupleAt(0)
	tg := NewTupleObject("y", tp, "money")
	if got := v.errRateFor(tg, datalake.Instance{Kind: datalake.KindTuple}); got != 0.5 {
		t.Errorf("tuple evidence err = %v", got)
	}
}

// TestOneRowTableView: claim machinery over a single evidence tuple sees
// the tuple's caption and values.
func TestOneRowTableView(t *testing.T) {
	tbl := usOpen1954()
	inst := tupleInst(tbl, 1)
	view := oneRowTable(inst)
	if view.Caption != tbl.Caption || view.NumRows() != 1 {
		t.Errorf("one-row view = %+v", view)
	}
	if v, _ := view.Cell(0, 1); v != "tommy bolt" {
		t.Errorf("view cell = %q", v)
	}
	// Mutating the view must not touch the lake tuple.
	view.Rows[0][1] = "mutated"
	if tbl.Rows[1][1] != "tommy bolt" {
		t.Error("one-row view shares storage")
	}
}
