package core

import (
	"fmt"

	"repro/internal/datalake"
	"repro/internal/doc"
	"repro/internal/embed"
)

// The live ingest path is pipelined in three stages (mirroring the lake's
// write path):
//
//  1. prepareHook runs on the ingesting goroutine before the lake's write
//     lock: it serializes the event's instances and computes their BM25
//     terms and embeddings — the expensive work — so concurrent writers
//     derive in parallel;
//  2. the lake commits and delivers the event (with the prepared payload)
//     in version order;
//  3. apply partitions the precomputed index operations by shard and hands
//     them to per-shard applier goroutines, which consume their ordered
//     queues and perform the cheap index insertions. The lake publishes
//     the event's version once every shard reports completion.
//
// Because the dispatcher enqueues per-shard tasks in version order, each
// shard applies events in version order; cross-shard completion may
// reorder, which is why visibility is defined by the lake's published
// version watermark, not by hook return order.

// bm25Op is one precomputed content-index insertion.
type bm25Op struct {
	kind  datalake.Kind
	id    string
	terms []string
}

// vecOp is one precomputed semantic-index insertion.
type vecOp struct {
	kind datalake.Kind
	id   string
	vec  embed.Vector
}

// preparedEvent is the payload prepareHook attaches to a lake event: every
// index operation the event implies, with tokenization and embedding done.
type preparedEvent struct {
	bm25 []bm25Op
	vec  []vecOp
}

// applyTask is one unit of work on a shard applier's queue: either a batch
// of precomputed index ops for that shard (ops != nil), or an entity
// re-index (ops == nil; the serialization must read the post-commit graph,
// so it cannot be precomputed before the lake's write lock). The entity
// name may legitimately be empty — the graph accepts any triple — so the
// discriminator is ops, not entity.
type applyTask struct {
	ops    *shardOps
	entity string
	done   func(error)
}

// shardOps groups one event's precomputed ops routed to a single shard.
type shardOps struct {
	bm25 []bm25Op
	vec  []vecOp
}

// applierQueueSize bounds each shard applier's task queue. The dispatcher
// blocks enqueueing to a full shard (backpressure), which in turn slows the
// lake's dispatcher rather than growing memory.
const applierQueueSize = 64

// startAppliers launches one applier goroutine per shard ordinal. Shard
// structures are only written by their own applier (plus the quiesced bulk
// load), so appliers never contend with each other on index locks.
func (ix *Indexer) startAppliers() {
	ix.appliers = make([]chan applyTask, ix.cfg.Shards)
	for i := range ix.appliers {
		ch := make(chan applyTask, applierQueueSize)
		ix.appliers[i] = ch
		ix.applierWG.Add(1)
		go func() {
			defer ix.applierWG.Done()
			for t := range ch {
				t.done(ix.execTask(t))
			}
		}()
	}
}

// execTask performs one shard task's index insertions.
func (ix *Indexer) execTask(t applyTask) error {
	if t.ops == nil {
		return ix.reindexEntity(t.entity)
	}
	return ix.applyOps(t.ops.bm25, t.ops.vec)
}

// applyOps inserts precomputed operations into the indexes. It is the
// single insertion implementation behind both the per-shard appliers
// (live path) and the bulk load, so the two paths cannot drift in ID or
// serialization scheme.
func (ix *Indexer) applyOps(bm25 []bm25Op, vec []vecOp) error {
	for _, op := range bm25 {
		if err := ix.bm25[op.kind][ix.shard(op.id)].AddTerms(op.id, op.terms); err != nil {
			return fmt.Errorf("core: bm25 add %s: %w", op.id, err)
		}
	}
	for _, op := range vec {
		if err := ix.vec[op.kind][ix.shard(op.id)].Add(op.id, op.vec); err != nil {
			return fmt.Errorf("core: vector add %s: %w", op.id, err)
		}
	}
	return nil
}

// prepareHook is the lake's pre-commit stage: it derives every index
// operation the event implies, outside the lake's locks. Entity events
// return no payload — their serialization depends on the post-commit graph
// neighborhood, so the applier computes it at apply time.
func (ix *Indexer) prepareHook(ev datalake.Event) (any, error) {
	if ev.Kind == datalake.KindEntity {
		return nil, nil
	}
	return ix.prepareEvent(ev), nil
}

// prepareEvent computes the precomputed payload for a table or text event.
func (ix *Indexer) prepareEvent(ev datalake.Event) *preparedEvent {
	pe := &preparedEvent{}
	switch ev.Kind {
	case datalake.KindTable:
		t := ev.Table
		if ix.wantKind(datalake.KindTable) {
			pe.addInstance(ix, datalake.KindTable, datalake.TableInstanceID(t.ID), t.SerializeForIndex())
		}
		if ix.wantKind(datalake.KindTuple) {
			ids := make([]string, 0, t.NumRows())
			texts := make([]string, 0, t.NumRows())
			for row := range t.Rows {
				tp, _ := t.TupleAt(row)
				ids = append(ids, datalake.TupleInstanceID(t.ID, row))
				texts = append(texts, tp.SerializeForIndex())
			}
			// Batch-embed the tuples: a wide table fans its rows across
			// the embedder's worker pool.
			var vecs []embed.Vector
			if len(ix.vec[datalake.KindTuple]) > 0 {
				vecs = ix.emb.EmbedTexts(texts, 0)
			}
			for i, id := range ids {
				if shards := ix.bm25[datalake.KindTuple]; len(shards) > 0 {
					pe.bm25 = append(pe.bm25, bm25Op{kind: datalake.KindTuple, id: id, terms: shards[0].Analyze(texts[i])})
				}
				if vecs != nil {
					pe.vec = append(pe.vec, vecOp{kind: datalake.KindTuple, id: id, vec: vecs[i]})
				}
			}
		}
	case datalake.KindText:
		if !ix.wantKind(datalake.KindText) {
			return pe
		}
		d := ev.Doc
		id := datalake.TextInstanceID(d.ID)
		if shards := ix.bm25[datalake.KindText]; len(shards) > 0 {
			pe.bm25 = append(pe.bm25, bm25Op{kind: datalake.KindText, id: id, terms: shards[0].Analyze(d.SerializeForIndex())})
		}
		if len(ix.vec[datalake.KindText]) > 0 {
			if ix.cfg.ChunkTokens <= 0 {
				pe.vec = append(pe.vec, vecOp{kind: datalake.KindText, id: id, vec: ix.emb.EmbedText(d.SerializeForIndex())})
			} else {
				chunks := doc.ChunkDocument(d, ix.cfg.ChunkTokens)
				texts := make([]string, len(chunks))
				for i, ch := range chunks {
					texts[i] = d.Title + " " + ch.Text
				}
				for i, vec := range ix.emb.EmbedTexts(texts, 0) {
					pe.vec = append(pe.vec, vecOp{
						kind: datalake.KindText,
						id:   fmt.Sprintf("%s@%d", id, chunks[i].Seq),
						vec:  vec,
					})
				}
			}
		}
	}
	return pe
}

// addInstance appends one instance's BM25 and vector ops to the payload.
func (pe *preparedEvent) addInstance(ix *Indexer, kind datalake.Kind, id, text string) {
	if shards := ix.bm25[kind]; len(shards) > 0 {
		pe.bm25 = append(pe.bm25, bm25Op{kind: kind, id: id, terms: shards[0].Analyze(text)})
	}
	if len(ix.vec[kind]) > 0 {
		pe.vec = append(pe.vec, vecOp{kind: kind, id: id, vec: ix.emb.EmbedText(text)})
	}
}

// apply is the lake's application stage: it routes one committed event's
// precomputed operations to the per-shard appliers and reports completion
// through done once every involved shard finishes. It runs on the lake's
// dispatcher goroutine in version order, so each shard's queue receives
// events in version order.
func (ix *Indexer) apply(ev datalake.Event, done func(error)) {
	if ev.Kind == datalake.KindEntity {
		subject := ev.Triple.Subject
		entity := subject
		if canon, ok := ix.lake.Graph().Canonical(subject); ok {
			entity = canon
		}
		s := ix.shard(datalake.EntityInstanceID(entity))
		ix.appliers[s] <- applyTask{entity: subject, done: done}
		return
	}

	pe, ok := ev.Payload.(*preparedEvent)
	if !ok {
		// No prepared payload (e.g. the subscriber registered between this
		// event's prepare and commit): derive it now, on the dispatcher.
		pe = ix.prepareEvent(ev)
	}
	perShard := make(map[int]*shardOps)
	group := func(s int) *shardOps {
		ops := perShard[s]
		if ops == nil {
			ops = &shardOps{}
			perShard[s] = ops
		}
		return ops
	}
	for _, op := range pe.bm25 {
		g := group(ix.shard(op.id))
		g.bm25 = append(g.bm25, op)
	}
	for _, op := range pe.vec {
		g := group(ix.shard(op.id))
		g.vec = append(g.vec, op)
	}
	if len(perShard) == 0 {
		done(nil)
		return
	}
	// Aggregate the per-shard completions into the single done call the
	// lake expects; the first error wins.
	c := datalake.NewCountdown(len(perShard), done)
	for s, ops := range perShard {
		ix.appliers[s] <- applyTask{ops: ops, done: c.Done}
	}
}
