package core

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"repro/internal/datalake"
	"repro/internal/invindex"
	"repro/internal/vecindex"
)

// Index snapshots let a restarted process skip re-tokenizing and
// re-embedding the whole lake: a checkpoint saves every shard of every
// (kind, family) index, and recovery loads them back — valid only for the
// exact lake version and indexer configuration they were built under, both
// pinned in meta.json. A snapshot that does not match is simply not used
// (the caller falls back to a bulk re-index), never partially applied.

// snapshotFormat versions the snapshot layout itself.
const snapshotFormat = 1

// snapshotMeta pins what a snapshot is valid for.
type snapshotMeta struct {
	Format      int    `json:"format"`
	LakeVersion uint64 `json:"lake_version"`
	// Config is the canonical JSON of the producing IndexerConfig's
	// layout-relevant fields; loading compares it byte-for-byte.
	Config json.RawMessage `json:"config"`
}

// snapshotConfig is the layout-relevant subset of IndexerConfig. Runtime
// tuning knobs (worker counts, cache sizes) are deliberately excluded: an
// operator changing them must not invalidate snapshots.
type snapshotConfig struct {
	Seed         uint64          `json:"seed"`
	EmbedDim     int             `json:"embed_dim"`
	EnableBM25   bool            `json:"enable_bm25"`
	EnableVector bool            `json:"enable_vector"`
	Vector       VectorIndexKind `json:"vector"`
	IVFLists     int             `json:"ivf_lists,omitempty"`
	IVFProbes    int             `json:"ivf_probes,omitempty"`
	LSHBits      int             `json:"lsh_bits,omitempty"`
	LSHTables    int             `json:"lsh_tables,omitempty"`
	Quantize     bool            `json:"quantize,omitempty"`
	Kinds        []datalake.Kind `json:"kinds"`
	ChunkTokens  int             `json:"chunk_tokens"`
	Shards       int             `json:"shards"`
}

// canonicalConfig serializes cfg's layout-relevant fields.
func canonicalConfig(cfg IndexerConfig) ([]byte, error) {
	sc := snapshotConfig{
		Seed: cfg.Seed, EmbedDim: cfg.EmbedDim,
		EnableBM25: cfg.EnableBM25, EnableVector: cfg.EnableVector, Vector: cfg.Vector,
		Kinds: cfg.Kinds, ChunkTokens: cfg.ChunkTokens, Shards: cfg.Shards,
	}
	// Only the selected family's parameters pin the layout. RerankMultiple
	// is deliberately excluded: it tunes the quantized scan at query time
	// without changing what is stored.
	if cfg.EnableVector {
		switch cfg.Vector {
		case VectorFlat:
			sc.Quantize = cfg.Quantize
		case VectorIVF:
			sc.IVFLists, sc.IVFProbes = cfg.IVFLists, cfg.IVFProbes
		case VectorLSH:
			sc.LSHBits, sc.LSHTables = cfg.LSHBits, cfg.LSHTables
		}
	}
	return json.Marshal(sc)
}

func shardFile(dir, family string, kind datalake.Kind, shard int) string {
	return filepath.Join(dir, fmt.Sprintf("%s-%s-%03d.idx", family, kind, shard))
}

// FrozenIndexes is an immutable capture of every index shard across every
// (kind, family) pair, pinned by Indexer.Freeze during a checkpoint's
// quiesced fork phase. Save then serializes it to disk with no lake or
// index locks held, so ingestion proceeds for the whole write phase — the
// capture stays frozen at the fork's lake version no matter how far the
// live indexes move on.
type FrozenIndexes struct {
	cfg  IndexerConfig
	bm25 map[datalake.Kind][]*invindex.Frozen
	vec  map[datalake.Kind][]vecindex.Frozen
}

// Freeze captures every shard of every index family. Call it only while
// the lake is quiesced (e.g. inside datalake.Fork), or concurrent ingest
// will tear the shard captures against each other; the capture itself is
// cheap — compacted in-memory copies, no serialization, no I/O.
func (ix *Indexer) Freeze() *FrozenIndexes {
	fz := &FrozenIndexes{
		cfg:  ix.cfg,
		bm25: make(map[datalake.Kind][]*invindex.Frozen, len(ix.bm25)),
		vec:  make(map[datalake.Kind][]vecindex.Frozen, len(ix.vec)),
	}
	for kind, shards := range ix.bm25 {
		frozen := make([]*invindex.Frozen, len(shards))
		for si, sh := range shards {
			frozen[si] = sh.Freeze()
		}
		fz.bm25[kind] = frozen
	}
	for kind, shards := range ix.vec {
		frozen := make([]vecindex.Frozen, len(shards))
		for si, sh := range shards {
			frozen[si] = sh.Freeze()
		}
		fz.vec[kind] = frozen
	}
	return fz
}

// Save writes the frozen shards plus the pinning metadata to dir (created
// if needed). lakeVersion must be the lake version the capture was frozen
// at. Safe to call with ingestion running: the capture is immutable.
func (fz *FrozenIndexes) Save(dir string, lakeVersion uint64) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("core: snapshot mkdir: %w", err)
	}
	save := func(path string, fn func(f *os.File) error) error {
		f, err := os.Create(path)
		if err != nil {
			return fmt.Errorf("core: create snapshot file: %w", err)
		}
		err = fn(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return fmt.Errorf("core: write %s: %w", filepath.Base(path), err)
		}
		return nil
	}
	for kind, shards := range fz.bm25 {
		for si, sh := range shards {
			if err := save(shardFile(dir, familyBM25, kind, si), func(f *os.File) error { return sh.Save(f) }); err != nil {
				return err
			}
		}
	}
	for kind, shards := range fz.vec {
		for si, sh := range shards {
			if err := save(shardFile(dir, familyVector, kind, si), func(f *os.File) error { return sh.Save(f) }); err != nil {
				return err
			}
		}
	}
	cc, err := canonicalConfig(fz.cfg)
	if err != nil {
		return fmt.Errorf("core: snapshot config: %w", err)
	}
	meta, err := json.MarshalIndent(snapshotMeta{Format: snapshotFormat, LakeVersion: lakeVersion, Config: cc}, "", "  ")
	if err != nil {
		return fmt.Errorf("core: snapshot meta: %w", err)
	}
	if err := os.WriteFile(filepath.Join(dir, "meta.json"), meta, 0o644); err != nil {
		return fmt.Errorf("core: write snapshot meta: %w", err)
	}
	return nil
}

// SaveLegacy writes the frozen shards in the pre-binfmt encoding/gob
// format (plus the same pinning metadata), kept for read-compatibility
// tests and the recovery benchmarks' legacy baseline. Quantized captures
// have no legacy format and are rejected by vecindex.SaveLegacy.
func (fz *FrozenIndexes) SaveLegacy(dir string, lakeVersion uint64) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("core: snapshot mkdir: %w", err)
	}
	save := func(path string, fn func(f *os.File) error) error {
		f, err := os.Create(path)
		if err != nil {
			return fmt.Errorf("core: create snapshot file: %w", err)
		}
		err = fn(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return fmt.Errorf("core: write %s: %w", filepath.Base(path), err)
		}
		return nil
	}
	for kind, shards := range fz.bm25 {
		for si, sh := range shards {
			if err := save(shardFile(dir, familyBM25, kind, si), func(f *os.File) error { return sh.SaveGob(f) }); err != nil {
				return err
			}
		}
	}
	for kind, shards := range fz.vec {
		for si, sh := range shards {
			if err := save(shardFile(dir, familyVector, kind, si), func(f *os.File) error { return vecindex.SaveLegacy(sh, f) }); err != nil {
				return err
			}
		}
	}
	cc, err := canonicalConfig(fz.cfg)
	if err != nil {
		return fmt.Errorf("core: snapshot config: %w", err)
	}
	meta, err := json.MarshalIndent(snapshotMeta{Format: snapshotFormat, LakeVersion: lakeVersion, Config: cc}, "", "  ")
	if err != nil {
		return fmt.Errorf("core: snapshot meta: %w", err)
	}
	if err := os.WriteFile(filepath.Join(dir, "meta.json"), meta, 0o644); err != nil {
		return fmt.Errorf("core: write snapshot meta: %w", err)
	}
	return nil
}

// SaveSnapshot writes every index shard plus the pinning metadata to dir
// (created if needed): Freeze + FrozenIndexes.Save in one call. Call it
// only while the lake is quiesced at lakeVersion (e.g. inside
// datalake.Quiesce); checkpoints that must not block ingestion freeze
// under the quiescence and Save afterwards instead.
func (ix *Indexer) SaveSnapshot(dir string, lakeVersion uint64) error {
	return ix.Freeze().Save(dir, lakeVersion)
}

// ErrSnapshotMismatch reports a snapshot that is missing or was built for
// a different lake version or indexer configuration — not corruption, just
// "rebuild instead".
var ErrSnapshotMismatch = fmt.Errorf("core: index snapshot missing or stale")

// BuildIndexerFromSnapshot is BuildIndexer loading the index contents from
// a SaveSnapshot directory instead of re-indexing the lake. The snapshot
// must match cfg and the lake's current version exactly (both checked with
// the lake quiesced); on any mismatch it returns ErrSnapshotMismatch
// (wrap-checked with errors.Is) and the caller falls back to BuildIndexer.
func BuildIndexerFromSnapshot(lake *datalake.Lake, cfg IndexerConfig, dir string) (*Indexer, error) {
	ix, err := newIndexer(lake, &cfg)
	if err != nil {
		return nil, err
	}
	meta, err := checkSnapshotMeta(ix.cfg, dir)
	if err != nil {
		return nil, err
	}

	ix.startAppliers()
	unsubscribe, err := lake.SubscribeSync(func() error {
		// Version check inside the quiesced init: nothing can commit
		// between the check, the load, and the subscription.
		if v := lake.Version(); v != meta.LakeVersion {
			return fmt.Errorf("%w (snapshot at lake version %d, lake at %d)", ErrSnapshotMismatch, meta.LakeVersion, v)
		}
		return ix.loadSnapshotShards(dir)
	}, datalake.Subscriber{Prepare: ix.prepareHook, Apply: ix.apply})
	if err != nil {
		ix.stopAppliers()
		return nil, err
	}
	ix.unsubscribe = unsubscribe
	return ix, nil
}

// loadSnapshotShards replaces the indexer's empty shard structures with
// the snapshot's contents. Shards are opened by path so binfmt snapshots
// can be memory-mapped and served lazily: startup pays one verification
// pass per shard, and vector/posting pages fault in as queries touch
// them. A missing shard file is an ErrSnapshotMismatch (rebuild instead);
// a shard that exists but fails to open is surfaced loudly — that is
// corruption, not staleness.
func (ix *Indexer) loadSnapshotShards(dir string) error {
	for kind, shards := range ix.bm25 {
		for si := range shards {
			loaded, err := openBM25Shard(shardFile(dir, familyBM25, kind, si))
			if err != nil {
				return err
			}
			shards[si] = loaded
		}
	}
	for kind, shards := range ix.vec {
		for si := range shards {
			loaded, err := openVectorShard(ix.cfg, shardFile(dir, familyVector, kind, si))
			if err != nil {
				return err
			}
			shards[si] = loaded
		}
	}
	return nil
}

// checkSnapshotMeta reads and validates a snapshot directory's meta.json
// against cfg (which must already be normalized — newIndexer writes the
// normalized config back). It returns the meta so callers can check the
// pinned lake version; any format or config-fingerprint drift is an
// ErrSnapshotMismatch.
func checkSnapshotMeta(cfg IndexerConfig, dir string) (snapshotMeta, error) {
	var meta snapshotMeta
	metaBytes, err := os.ReadFile(filepath.Join(dir, "meta.json"))
	if err != nil {
		return meta, fmt.Errorf("%w (no meta.json: %v)", ErrSnapshotMismatch, err)
	}
	if err := json.Unmarshal(metaBytes, &meta); err != nil {
		return meta, fmt.Errorf("%w (unreadable meta.json: %v)", ErrSnapshotMismatch, err)
	}
	cc, err := canonicalConfig(cfg)
	if err != nil {
		return meta, err
	}
	// MarshalIndent re-indented the embedded raw config; compact it back
	// before the byte comparison.
	var stored bytes.Buffer
	if err := json.Compact(&stored, meta.Config); err != nil {
		return meta, fmt.Errorf("%w (unreadable config fingerprint: %v)", ErrSnapshotMismatch, err)
	}
	if meta.Format != snapshotFormat || stored.String() != string(cc) {
		return meta, fmt.Errorf("%w (configuration changed)", ErrSnapshotMismatch)
	}
	return meta, nil
}

// statShard distinguishes "snapshot incomplete" (ErrSnapshotMismatch,
// rebuild instead) from "shard present but unreadable" (corruption,
// surfaced loudly by the open that follows).
func statShard(path string) error {
	if _, err := os.Stat(path); err != nil {
		return fmt.Errorf("%w (missing shard file %s)", ErrSnapshotMismatch, filepath.Base(path))
	}
	return nil
}

// openBM25Shard opens one persisted BM25 shard by path (mmap-able binfmt
// or legacy gob).
func openBM25Shard(path string) (*invindex.Index, error) {
	if err := statShard(path); err != nil {
		return nil, err
	}
	return invindex.OpenFile(path)
}

// openVectorShard opens one persisted vector shard by path, dispatching
// on the configured family.
func openVectorShard(cfg IndexerConfig, path string) (vectorIndex, error) {
	if err := statShard(path); err != nil {
		return nil, err
	}
	switch {
	case cfg.Vector == VectorFlat && cfg.Quantize:
		sq, err := vecindex.OpenSQFile(path)
		if err != nil {
			return nil, err
		}
		if cfg.RerankMultiple > 0 {
			sq.SetRerank(cfg.RerankMultiple)
		}
		return sq, nil
	case cfg.Vector == VectorFlat:
		return vecindex.OpenFlatFile(path)
	case cfg.Vector == VectorIVF:
		return vecindex.OpenIVFFile(path)
	case cfg.Vector == VectorLSH:
		return vecindex.OpenLSHFile(path)
	default:
		return nil, fmt.Errorf("core: unknown vector index kind %d", int(cfg.Vector))
	}
}

// loadVectorShard decodes one serialized vector shard from r, dispatching
// on the configured family — the in-memory counterpart of openVectorShard,
// used to thaw a frozen capture into a searchable shard without touching
// disk.
func loadVectorShard(cfg IndexerConfig, r io.Reader) (vectorIndex, error) {
	switch {
	case cfg.Vector == VectorFlat && cfg.Quantize:
		sq, err := vecindex.LoadSQ(r)
		if err != nil {
			return nil, err
		}
		if cfg.RerankMultiple > 0 {
			sq.SetRerank(cfg.RerankMultiple)
		}
		return sq, nil
	case cfg.Vector == VectorFlat:
		return vecindex.LoadFlat(r)
	case cfg.Vector == VectorIVF:
		return vecindex.LoadIVF(r)
	case cfg.Vector == VectorLSH:
		return vecindex.LoadLSH(r)
	default:
		return nil, fmt.Errorf("core: unknown vector index kind %d", int(cfg.Vector))
	}
}
