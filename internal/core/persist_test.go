package core

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/datalake"
	"repro/internal/doc"
	"repro/internal/kg"
	"repro/internal/table"
)

// buildPersistLake returns a lake with a few instances of every modality.
func buildPersistLake(t *testing.T) *datalake.Lake {
	t.Helper()
	lake := datalake.New()
	t.Cleanup(func() { lake.Close() })
	if err := lake.AddSource(datalake.Source{ID: "s", Name: "test"}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		tbl := table.New(fmt.Sprintf("t%d", i), fmt.Sprintf("league season %d results", i), []string{"player", "score"})
		tbl.MustAppendRow(fmt.Sprintf("alice %d", i), fmt.Sprintf("%d", 10+i))
		tbl.MustAppendRow(fmt.Sprintf("bob %d", i), fmt.Sprintf("%d", 20+i))
		tbl.SourceID = "s"
		if err := lake.AddTable(tbl); err != nil {
			t.Fatal(err)
		}
		d := &doc.Document{ID: fmt.Sprintf("d%d", i), Title: fmt.Sprintf("season %d report", i),
			Text: fmt.Sprintf("the season %d championship was decided by a narrow margin", i), SourceID: "s"}
		if err := lake.AddDocument(d); err != nil {
			t.Fatal(err)
		}
		if err := lake.AddTriple(kg.Triple{Subject: fmt.Sprintf("player%d", i), Predicate: "plays_in", Object: "league", SourceID: "s"}); err != nil {
			t.Fatal(err)
		}
	}
	return lake
}

// TestIndexerSnapshotRoundTrip saves a snapshot and rebuilds an indexer
// from it, asserting retrieval is identical across every vector family.
func TestIndexerSnapshotRoundTrip(t *testing.T) {
	for _, vk := range []VectorIndexKind{VectorFlat, VectorIVF, VectorLSH} {
		t.Run(fmt.Sprintf("vector=%d", int(vk)), func(t *testing.T) {
			lake := buildPersistLake(t)
			cfg := DefaultIndexerConfig(7)
			cfg.Vector = vk
			cfg.IVFLists = 4
			cfg.IVFProbes = 2
			cfg.Shards = 2
			ix, err := BuildIndexer(lake, cfg)
			if err != nil {
				t.Fatal(err)
			}
			defer ix.Close()

			dir := t.TempDir()
			var v uint64
			if err := lake.Quiesce(func(version uint64) error {
				v = version
				return ix.SaveSnapshot(dir, version)
			}); err != nil {
				t.Fatal(err)
			}
			if v == 0 {
				t.Fatal("quiesced version is 0")
			}

			loaded, err := BuildIndexerFromSnapshot(lake, cfg, dir)
			if err != nil {
				t.Fatal(err)
			}
			defer loaded.Close()

			for _, query := range []string{"season 2 championship", "alice score", "player1 league"} {
				_, a := ix.Retrieve(query, 10)
				_, b := loaded.Retrieve(query, 10)
				if len(a) != len(b) {
					t.Fatalf("query %q: candidate counts differ (%d vs %d)\n%v\n%v", query, len(a), len(b), a, b)
				}
				for i := range a {
					if a[i] != b[i] {
						t.Errorf("query %q candidate %d drifted: %s vs %s", query, i, a[i], b[i])
					}
				}
			}

			// The snapshot-built indexer is live: new ingests are indexed.
			d := &doc.Document{ID: "fresh", Title: "fresh doc", Text: "completely fresh zanzibar content", SourceID: "s"}
			if err := lake.AddDocument(d); err != nil {
				t.Fatal(err)
			}
			_, got := loaded.Retrieve("zanzibar", 5, datalake.KindText)
			if len(got) == 0 || got[0] != "text:fresh" {
				t.Fatalf("snapshot-built indexer did not index live ingest: %v", got)
			}
		})
	}
}

// TestSnapshotMismatch checks stale or misconfigured snapshots are
// refused with ErrSnapshotMismatch instead of silently half-loading.
func TestSnapshotMismatch(t *testing.T) {
	lake := buildPersistLake(t)
	cfg := DefaultIndexerConfig(7)
	ix, err := BuildIndexer(lake, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()
	dir := t.TempDir()
	if err := lake.Quiesce(func(v uint64) error { return ix.SaveSnapshot(dir, v) }); err != nil {
		t.Fatal(err)
	}

	// Different layout-relevant configuration.
	other := cfg
	other.Shards = 3
	if _, err := BuildIndexerFromSnapshot(lake, other, dir); !errors.Is(err, ErrSnapshotMismatch) {
		t.Fatalf("config mismatch error = %v, want ErrSnapshotMismatch", err)
	}

	// Lake moved past the snapshot.
	if err := lake.AddDocument(&doc.Document{ID: "extra", Text: "x", SourceID: "s"}); err != nil {
		t.Fatal(err)
	}
	if _, err := BuildIndexerFromSnapshot(lake, cfg, dir); !errors.Is(err, ErrSnapshotMismatch) {
		t.Fatalf("stale snapshot error = %v, want ErrSnapshotMismatch", err)
	}

	// Missing directory.
	if _, err := BuildIndexerFromSnapshot(lake, cfg, t.TempDir()); !errors.Is(err, ErrSnapshotMismatch) {
		t.Fatalf("missing snapshot error = %v, want ErrSnapshotMismatch", err)
	}

	// Runtime tuning knobs must NOT invalidate the snapshot — rebuild the
	// lake state the snapshot was taken at to prove it.
	lake2 := buildPersistLake(t)
	ix2, err := BuildIndexer(lake2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer ix2.Close()
	dir2 := t.TempDir()
	if err := lake2.Quiesce(func(v uint64) error { return ix2.SaveSnapshot(dir2, v) }); err != nil {
		t.Fatal(err)
	}
	tuned := cfg
	tuned.QueryCacheSize = 1
	tuned.RetrieveWorkers = 2
	loaded, err := BuildIndexerFromSnapshot(lake2, tuned, dir2)
	if err != nil {
		t.Fatalf("tuning-only change refused the snapshot: %v", err)
	}
	loaded.Close()
}

// TestQuantizedSnapshotRoundTrip exercises the int8-quantized flat family
// end to end: build, snapshot, recover, retrieve identically, stay live.
func TestQuantizedSnapshotRoundTrip(t *testing.T) {
	lake := buildPersistLake(t)
	cfg := DefaultIndexerConfig(7)
	cfg.Quantize = true
	cfg.RerankMultiple = 8
	cfg.Shards = 2
	ix, err := BuildIndexer(lake, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()

	dir := t.TempDir()
	if err := lake.Quiesce(func(v uint64) error { return ix.SaveSnapshot(dir, v) }); err != nil {
		t.Fatal(err)
	}
	loaded, err := BuildIndexerFromSnapshot(lake, cfg, dir)
	if err != nil {
		t.Fatal(err)
	}
	defer loaded.Close()
	for _, query := range []string{"season 2 championship", "alice score"} {
		_, a := ix.Retrieve(query, 10)
		_, b := loaded.Retrieve(query, 10)
		if len(a) != len(b) {
			t.Fatalf("query %q: candidate counts differ (%d vs %d)", query, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Errorf("query %q candidate %d drifted: %s vs %s", query, i, a[i], b[i])
			}
		}
	}
	// Still live after recovery.
	if err := lake.AddDocument(&doc.Document{ID: "fresh", Text: "completely fresh zanzibar content", SourceID: "s"}); err != nil {
		t.Fatal(err)
	}
	_, got := loaded.Retrieve("zanzibar", 5, datalake.KindText)
	if len(got) == 0 || got[0] != "text:fresh" {
		t.Fatalf("quantized snapshot indexer did not index live ingest: %v", got)
	}

	// Toggling quantization changes the stored layout: the fingerprint must
	// refuse the snapshot rather than misread it.
	plain := cfg
	plain.Quantize = false
	if _, err := BuildIndexerFromSnapshot(lake, plain, dir); !errors.Is(err, ErrSnapshotMismatch) {
		t.Fatalf("quantize toggle error = %v, want ErrSnapshotMismatch", err)
	}
}

func TestQuantizeRequiresFlat(t *testing.T) {
	lake := buildPersistLake(t)
	cfg := DefaultIndexerConfig(7)
	cfg.Quantize = true
	cfg.Vector = VectorIVF
	if _, err := BuildIndexer(lake, cfg); err == nil {
		t.Fatal("Quantize with VectorIVF accepted")
	}
}

// TestLegacySnapshotRecovery proves a gob-format snapshot directory (the
// pre-binfmt layout) still recovers through the same entry point.
func TestLegacySnapshotRecovery(t *testing.T) {
	lake := buildPersistLake(t)
	cfg := DefaultIndexerConfig(7)
	cfg.Shards = 2
	ix, err := BuildIndexer(lake, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()

	dir := t.TempDir()
	if err := lake.Quiesce(func(v uint64) error { return ix.Freeze().SaveLegacy(dir, v) }); err != nil {
		t.Fatal(err)
	}
	loaded, err := BuildIndexerFromSnapshot(lake, cfg, dir)
	if err != nil {
		t.Fatalf("legacy snapshot refused: %v", err)
	}
	defer loaded.Close()
	for _, query := range []string{"season 2 championship", "player1 league"} {
		_, a := ix.Retrieve(query, 10)
		_, b := loaded.Retrieve(query, 10)
		if len(a) != len(b) {
			t.Fatalf("query %q: candidate counts differ (%d vs %d)", query, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Errorf("query %q candidate %d drifted: %s vs %s", query, i, a[i], b[i])
			}
		}
	}
}

// TestCorruptShardFailsLoudly distinguishes corruption from staleness: a
// present-but-mangled shard must surface an error that is NOT
// ErrSnapshotMismatch, so operators never silently rebuild over bad disks.
func TestCorruptShardFailsLoudly(t *testing.T) {
	lake := buildPersistLake(t)
	cfg := DefaultIndexerConfig(7)
	ix, err := BuildIndexer(lake, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()
	dir := t.TempDir()
	if err := lake.Quiesce(func(v uint64) error { return ix.SaveSnapshot(dir, v) }); err != nil {
		t.Fatal(err)
	}
	matches, err := filepath.Glob(filepath.Join(dir, "bm25-*.idx"))
	if err != nil || len(matches) == 0 {
		t.Fatalf("no bm25 shard files: %v", err)
	}
	data, err := os.ReadFile(matches[0])
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xff
	if err := os.WriteFile(matches[0], data, 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = BuildIndexerFromSnapshot(lake, cfg, dir)
	if err == nil {
		t.Fatal("corrupt shard loaded without error")
	}
	if errors.Is(err, ErrSnapshotMismatch) {
		t.Fatalf("corruption reported as staleness: %v", err)
	}
}
