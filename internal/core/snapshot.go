package core

import (
	"bytes"
	"context"
	"fmt"
	"path/filepath"
	"strconv"
	"sync"

	"repro/internal/datalake"
	"repro/internal/invindex"
	"repro/internal/kg"
	"repro/internal/provenance"
	"repro/internal/verify"
)

// Time-travel reads. A checkpoint's fork already pins everything a
// reproducible verdict needs — an immutable catalog View plus a frozen
// capture of every index shard at one version. This file generalizes that
// pair into a retained, queryable snapshot: the pipeline registers the
// (View, FrozenIndexes, trust copy) triple with a datalake.SnapshotRegistry,
// and VerifyAsOfCtx runs the full retrieve→rerank→verify flow against it,
// so a verdict computed at version v recomputes identically long after the
// lake (and the operator's trust overrides) have moved on.

// PinnedSnapshot is the payload the pipeline hangs on a datalake.Snapshot:
// the frozen index shards, the trust overrides in force at pin time, and —
// lazily, on first pinned read — searchable shard structures thawed from
// the frozen capture (or opened from disk for a pin recovered at restart)
// plus a knowledge graph rebuilt from the view's triples.
type PinnedSnapshot struct {
	cfg   IndexerConfig
	view  *datalake.View
	trust map[string]float64 // pipeline trust overrides at pin time

	frozen *FrozenIndexes // in-memory capture (pin path); nil when disk-backed
	dir    string         // persisted shard directory (recovery path)

	once   sync.Once
	matErr error
	bm25   map[datalake.Kind][]*invindex.Index
	vec    map[datalake.Kind][]vectorIndex
	graph  *kg.Graph
	priors map[string]float64 // view source trust priors
}

// LoadPinnedSnapshot builds the payload for a pin recovered from disk:
// dir holds a FrozenIndexes.Save layout whose meta must match cfg and the
// view's version exactly (a config change makes the persisted shards
// unusable — the caller drops the pin rather than serving wrong results).
// Shards open lazily on first pinned read.
func LoadPinnedSnapshot(cfg IndexerConfig, view *datalake.View, dir string, trust map[string]float64) (*PinnedSnapshot, error) {
	norm := cfg
	if norm.EmbedDim <= 0 {
		norm.EmbedDim = 64
	}
	if norm.Shards <= 0 {
		norm.Shards = 1
	}
	meta, err := checkSnapshotMeta(norm, dir)
	if err != nil {
		return nil, err
	}
	if meta.LakeVersion != view.Version() {
		return nil, fmt.Errorf("%w (pinned shards at lake version %d, view at %d)", ErrSnapshotMismatch, meta.LakeVersion, view.Version())
	}
	if trust == nil {
		trust = make(map[string]float64)
	}
	return &PinnedSnapshot{cfg: norm, view: view, trust: trust, dir: dir}, nil
}

// Trust returns the trust overrides captured at pin time (shared map;
// callers must not mutate) — the durable layer persists it alongside the
// shards so a recovered pin re-verifies identically.
func (ps *PinnedSnapshot) Trust() map[string]float64 { return ps.trust }

// materialize thaws the snapshot into searchable form exactly once: BM25
// and vector shards round-trip through their serialized encodings (memory
// buffers for a live capture, files for a recovered one) and the view's
// triple list is rebuilt into a graph for entity resolution. The frozen
// capture is released afterwards so a retained snapshot does not hold
// both representations.
func (ps *PinnedSnapshot) materialize() error {
	ps.once.Do(func() { ps.matErr = ps.doMaterialize() })
	return ps.matErr
}

func (ps *PinnedSnapshot) doMaterialize() error {
	ps.graph = kg.NewGraph()
	for _, t := range ps.view.Triples() {
		ps.graph.Add(t)
	}
	ps.priors = make(map[string]float64, len(ps.view.Sources()))
	for _, s := range ps.view.Sources() {
		ps.priors[s.ID] = s.TrustPrior
	}
	ps.bm25 = make(map[datalake.Kind][]*invindex.Index)
	ps.vec = make(map[datalake.Kind][]vectorIndex)
	if ps.frozen != nil {
		for kind, shards := range ps.frozen.bm25 {
			out := make([]*invindex.Index, len(shards))
			for si, sh := range shards {
				var buf bytes.Buffer
				if err := sh.Save(&buf); err != nil {
					return fmt.Errorf("core: thaw bm25 shard %s/%d: %w", kind, si, err)
				}
				loaded, err := invindex.Load(&buf)
				if err != nil {
					return fmt.Errorf("core: thaw bm25 shard %s/%d: %w", kind, si, err)
				}
				out[si] = loaded
			}
			ps.bm25[kind] = out
		}
		for kind, shards := range ps.frozen.vec {
			out := make([]vectorIndex, len(shards))
			for si, sh := range shards {
				var buf bytes.Buffer
				if err := sh.Save(&buf); err != nil {
					return fmt.Errorf("core: thaw vector shard %s/%d: %w", kind, si, err)
				}
				loaded, err := loadVectorShard(ps.cfg, &buf)
				if err != nil {
					return fmt.Errorf("core: thaw vector shard %s/%d: %w", kind, si, err)
				}
				out[si] = loaded
			}
			ps.vec[kind] = out
		}
		ps.frozen = nil
		return nil
	}
	for _, kind := range ps.cfg.Kinds {
		if ps.cfg.EnableBM25 {
			out := make([]*invindex.Index, ps.cfg.Shards)
			for si := range out {
				loaded, err := openBM25Shard(shardFile(ps.dir, familyBM25, kind, si))
				if err != nil {
					return err
				}
				out[si] = loaded
			}
			ps.bm25[kind] = out
		}
		if ps.cfg.EnableVector {
			out := make([]vectorIndex, ps.cfg.Shards)
			for si := range out {
				loaded, err := openVectorShard(ps.cfg, shardFile(ps.dir, familyVector, kind, si))
				if err != nil {
					return err
				}
				out[si] = loaded
			}
			ps.vec[kind] = out
		}
	}
	return nil
}

// sourceTrust is the pinned counterpart of Pipeline.SourceTrust: the trust
// overrides captured at pin time, then the view's source priors, then 0.5.
// Later SetSourceTrust calls cannot reach a pinned verdict — that is the
// reproducibility contract.
func (ps *PinnedSnapshot) sourceTrust(sourceID string) float64 {
	if t, ok := ps.trust[sourceID]; ok {
		return t
	}
	if prior, ok := ps.priors[sourceID]; ok {
		return prior
	}
	return 0.5
}

// source adapts the snapshot into the pipeline's evidence-source seam:
// retrieval fans out over the thawed shards through the indexer's shared
// worker pool, resolution reads the immutable view, trust reads the
// pinned copy. materialize must have succeeded first.
func (ps *PinnedSnapshot) source(ix *Indexer) evidenceSource {
	return evidenceSource{
		retrieve: func(ctx context.Context, query string, k int, kinds []datalake.Kind) []provenance.RetrievalHit {
			return ix.searchShards(ctx, query, k, kinds, true, ps.cfg.EnableVector, ps.bm25, ps.vec)
		},
		resolve: func(id string) (datalake.Instance, error) { return ps.view.Resolve(id, ps.graph) },
		trust:   ps.sourceTrust,
	}
}

// Snapshots returns the pipeline's snapshot registry (never nil).
func (p *Pipeline) Snapshots() *datalake.SnapshotRegistry { return p.snapshots }

// trustSnapshot copies the live trust overrides for a pin.
func (p *Pipeline) trustSnapshot() map[string]float64 {
	p.trustMu.RLock()
	defer p.trustMu.RUnlock()
	out := make(map[string]float64, len(p.trust))
	for k, v := range p.trust {
		out[k] = v
	}
	return out
}

// TakeSnapshot quiesces the lake just long enough to fork a View and
// freeze every index shard at the current version, then registers the
// pair as a retained snapshot (explicitly pinned when pinned is true —
// excluded from retention GC until unpinned). Registering an
// already-retained version promotes it instead of re-freezing.
func (p *Pipeline) TakeSnapshot(pinned bool) (*datalake.Snapshot, error) {
	if s, err := p.snapshots.Acquire(p.lake.Version()); err == nil {
		// Already retained at head: promote, don't re-freeze.
		if s.Version() == p.lake.Version() {
			defer s.Release()
			if pinned {
				if err := p.snapshots.Pin(s.Version()); err != nil {
					return nil, err
				}
			}
			return s, nil
		}
		s.Release()
	}
	var fz *FrozenIndexes
	view, err := p.lake.Fork(func(*datalake.View) error {
		fz = p.indexer.Freeze()
		return nil
	})
	if err != nil {
		return nil, err
	}
	return p.RegisterSnapshot(view, fz, pinned), nil
}

// PinSnapshot forks and freezes at the current version and retains the
// pair as an explicitly pinned snapshot, excluded from retention GC until
// unpinned. persist, when non-nil, is called after the in-memory pin is
// registered, with everything durability needs: the forked view, a
// writeIndexes that serializes the frozen shards into a directory (under
// dir/indexes, the checkpoint layout), and the pin-time trust overrides. A
// persist failure demotes the pin back to the retention window and is
// returned — an operator asking for a durable pin must not silently get a
// memory-only one.
func (p *Pipeline) PinSnapshot(persist func(view *datalake.View, writeIndexes func(dir string) error, trust map[string]float64) error) (*datalake.Snapshot, error) {
	var fz *FrozenIndexes
	view, err := p.lake.Fork(func(*datalake.View) error {
		fz = p.indexer.Freeze()
		return nil
	})
	if err != nil {
		return nil, err
	}
	trust := p.trustSnapshot()
	ps := &PinnedSnapshot{cfg: p.indexer.cfg, view: view, trust: trust, frozen: fz}
	snap := p.snapshots.Add(view, ps, true)
	if persist != nil {
		writeIndexes := func(dir string) error {
			return fz.Save(filepath.Join(dir, "indexes"), view.Version())
		}
		if err := persist(view, writeIndexes, trust); err != nil {
			_ = p.snapshots.Unpin(view.Version())
			return nil, err
		}
	}
	return snap, nil
}

// RegisterSnapshot retains an already-forked View + frozen capture — the
// checkpoint path: durable checkpoints fork once, and the freeze callback
// hands the same pair here, so every checkpoint doubles as a time-travel
// snapshot at zero extra quiescence.
func (p *Pipeline) RegisterSnapshot(view *datalake.View, fz *FrozenIndexes, pinned bool) *datalake.Snapshot {
	ps := &PinnedSnapshot{cfg: p.indexer.cfg, view: view, trust: p.trustSnapshot(), frozen: fz}
	return p.snapshots.Add(view, ps, pinned)
}

// RegisterRecoveredSnapshot re-retains a persisted pin at restart: view
// was reloaded from the pin's serialized catalog, dir holds its index
// shards, trust its pin-time overrides. The shards must match the current
// indexer configuration (ErrSnapshotMismatch otherwise — the caller drops
// the pin loudly rather than serving wrong pinned verdicts).
func (p *Pipeline) RegisterRecoveredSnapshot(view *datalake.View, dir string, trust map[string]float64) (*datalake.Snapshot, error) {
	ps, err := LoadPinnedSnapshot(p.indexer.cfg, view, dir, trust)
	if err != nil {
		return nil, err
	}
	return p.snapshots.Add(view, ps, true), nil
}

// VerifyAsOf is VerifyAsOfCtx with a background context.
func (p *Pipeline) VerifyAsOf(g verify.Generated, asOf uint64, kinds ...datalake.Kind) (Report, error) {
	return p.VerifyAsOfCtx(context.Background(), g, asOf, kinds...)
}

// VerifyAsOfCtx verifies g against the retained snapshot at version asOf
// instead of the live lake: retrieval runs over the snapshot's frozen
// shards, evidence resolves from its immutable View, and trust reads the
// pin-time copy, so the Report — stamped with AsOfVersion — is
// reproducible no matter how many writes or trust overrides landed since.
// asOf 0 means head (plain VerifyCtx). A version below the retention
// floor returns datalake.BelowFloorError; one never retained returns
// datalake.ErrSnapshotNotFound. Pinned results cache under a pin-scoped
// key, so they never collide with head entries and survive head
// invalidation for as long as the snapshot is retained.
func (p *Pipeline) VerifyAsOfCtx(ctx context.Context, g verify.Generated, asOf uint64, kinds ...datalake.Kind) (Report, error) {
	if asOf == 0 {
		return p.VerifyCtx(ctx, g, kinds...)
	}
	snap, err := p.snapshots.Acquire(asOf)
	if err != nil {
		return Report{}, err
	}
	defer snap.Release()
	p.pinnedReads.Inc()
	ps, ok := snap.Payload().(*PinnedSnapshot)
	if !ok {
		return Report{}, fmt.Errorf("core: snapshot at version %d carries no pinned indexes", asOf)
	}
	kk := p.normalizeKinds(kinds)
	var key string
	if p.rcache != nil {
		key = pinnedCacheKey(g, kk, snap)
		if rep, ok := p.rcache.getPinned(key); ok {
			return rep, nil
		}
	}
	if err := ps.materialize(); err != nil {
		return Report{}, err
	}
	rep, err := p.verifyAgainst(ctx, g, p.cfg.VerifyWorkers, kk, ps.source(p.indexer), asOf)
	if err != nil {
		return rep, err
	}
	if p.rcache != nil {
		p.rcache.putPinned(key, rep)
	}
	return rep, nil
}

// pinnedCacheKey scopes a result-cache key to one snapshot identity. The
// suffix cannot collide with head keys (their tail is a comma-separated
// kind list) and the registry-unique snapshot ID keeps entries from one
// pin generation from leaking into a later re-pin of the same version.
func pinnedCacheKey(g verify.Generated, kinds []datalake.Kind, snap *datalake.Snapshot) string {
	return cacheKey(g, kinds) + "|pin:" + strconv.FormatUint(snap.Version(), 10) + "." + strconv.FormatUint(snap.ID(), 10)
}
