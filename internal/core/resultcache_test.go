package core

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"repro/internal/claims"
	"repro/internal/datalake"
	"repro/internal/doc"
	"repro/internal/kg"
	"repro/internal/provenance"
	"repro/internal/rerank"
	"repro/internal/table"
	"repro/internal/verify"
)

// tokenVerifier is a deterministic stub: evidence containing the token is
// Verified, everything else NotRelated. It makes verdict flips observable
// the instant a token-bearing instance becomes retrievable — exactly the
// signal a stale cache entry would suppress.
type tokenVerifier struct{ token string }

func (v *tokenVerifier) Name() string                                  { return "token-stub" }
func (v *tokenVerifier) Supports(verify.Generated, datalake.Kind) bool { return true }
func (v *tokenVerifier) Verify(g verify.Generated, ev datalake.Instance) (verify.Result, error) {
	verdict := verify.NotRelated
	if strings.Contains(ev.Serialize(), v.token) {
		verdict = verify.Verified
	}
	return verify.Result{Verdict: verdict, Verifier: v.Name(), EvidenceID: ev.ID}, nil
}

// tokenPipeline builds a cached pipeline over a fresh lake whose verifier
// flips on the token.
func tokenPipeline(t *testing.T, token string) (*Pipeline, *datalake.Lake) {
	t.Helper()
	lake := datalake.New()
	if err := lake.AddSource(datalake.Source{ID: "s", Name: "src", TrustPrior: 0.9}); err != nil {
		t.Fatal(err)
	}
	indexer, err := BuildIndexer(lake, DefaultIndexerConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	registry := rerank.NewRegistry(rerank.NewColBERT(indexer.Embedder(), 128))
	agent := verify.NewAgent(&tokenVerifier{token: token})
	p, err := NewPipeline(lake, indexer, registry, agent, provenance.NewStore(), nil, DefaultPipelineConfig())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		p.Close()
		indexer.Close()
		lake.Close()
	})
	return p, lake
}

// claimAbout wraps a raw query text as a claim object (bypassing the
// template parser: retrieval and the stub verifier only see the text).
func claimAbout(id, text string) verify.Generated {
	return verify.NewClaimObject(id, claims.Claim{Text: text})
}

// TestResultCacheHitAndExactInvalidation exercises the cache's core
// contract: repeats hit, writes to untouched kinds leave entries hot, and
// writes touching a depended-on kind invalidate exactly.
func TestResultCacheHitAndExactInvalidation(t *testing.T) {
	p := buildPipeline(t, smallLake(t), true)
	defer p.Close()
	g := golfClaimObject()

	r1, err := p.Verify(g, datalake.KindTable)
	if err != nil {
		t.Fatal(err)
	}
	st := p.Stats()
	if st.ResultCacheHits != 0 || st.ResultCacheMisses != 1 {
		t.Fatalf("after cold verify: %+v", st)
	}

	r2, err := p.Verify(g, datalake.KindTable)
	if err != nil {
		t.Fatal(err)
	}
	st = p.Stats()
	if st.ResultCacheHits != 1 {
		t.Fatalf("repeat did not hit: %+v", st)
	}
	if r2.Verdict != r1.Verdict || r2.ProvenanceSeq != r1.ProvenanceSeq {
		t.Fatalf("cached report diverged: %+v vs %+v", r2, r1)
	}

	// A document ingest touches only texts: the table-kind entry stays hot.
	if err := p.Lake().AddDocument(&doc.Document{ID: "other", Text: "unrelated prose", SourceID: "s2"}); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Verify(g, datalake.KindTable); err != nil {
		t.Fatal(err)
	}
	st = p.Stats()
	if st.ResultCacheHits != 2 || st.ResultCacheInvalidations != 0 {
		t.Fatalf("text ingest disturbed a table-only entry: %+v", st)
	}
	// But it does invalidate an entry that spanned texts.
	if _, err := p.Verify(g, datalake.KindTable, datalake.KindText); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Lake().AddDocumentVersioned(&doc.Document{ID: "other2", Text: "more prose", SourceID: "s2"}); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Verify(g, datalake.KindTable, datalake.KindText); err != nil {
		t.Fatal(err)
	}
	st = p.Stats()
	if st.ResultCacheInvalidations != 1 {
		t.Fatalf("text ingest did not invalidate the text-spanning entry: %+v", st)
	}

	// A table ingest kills the table-kind entry.
	extra := table.New("cache-extra", "irrelevant table", []string{"a"})
	extra.SourceID = "s1"
	extra.MustAppendRow("x")
	if err := p.Lake().AddTable(extra); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Verify(g, datalake.KindTable); err != nil {
		t.Fatal(err)
	}
	st = p.Stats()
	if st.ResultCacheInvalidations != 2 {
		t.Fatalf("table ingest did not invalidate: %+v", st)
	}

	// A trust override invalidates everything.
	if _, err := p.Verify(g, datalake.KindTable); err != nil { // re-warm
		t.Fatal(err)
	}
	p.SetSourceTrust("s1", 0.3)
	if _, err := p.Verify(g, datalake.KindTable); err != nil {
		t.Fatal(err)
	}
	st = p.Stats()
	if st.ResultCacheInvalidations != 3 {
		t.Fatalf("trust override did not invalidate: %+v", st)
	}

	// Re-registering a source (AddSource overwrite) changes the TrustPrior
	// fallback that verdict resolution reads, so it must invalidate too.
	if _, err := p.Verify(g, datalake.KindTable); err != nil { // re-warm
		t.Fatal(err)
	}
	if err := p.Lake().AddSource(datalake.Source{ID: "s1", Name: "tables", TrustPrior: 0.2}); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Verify(g, datalake.KindTable); err != nil {
		t.Fatal(err)
	}
	st = p.Stats()
	if st.ResultCacheInvalidations != 4 {
		t.Fatalf("source overwrite did not invalidate: %+v", st)
	}
}

// TestCacheKeyStructuredFields guards the fingerprint against aliasing:
// objects differing only in structured fields (a claim's Value/Op with
// identical Text, a tuple's cell values) must not share a key, and the
// same request must produce a stable key.
func TestCacheKeyStructuredFields(t *testing.T) {
	kinds := []datalake.Kind{datalake.KindTable}
	base := claims.Claim{Text: "same text", Context: "ctx", Entities: []string{"e"}, Attribute: "a", Value: "57"}
	k1 := cacheKey(verify.NewClaimObject("id", base), kinds)
	if k2 := cacheKey(verify.NewClaimObject("id", base), kinds); k2 != k1 {
		t.Fatal("identical requests produced different keys")
	}
	altered := []claims.Claim{base, base, base, base}
	altered[0].Value = "58"
	altered[1].Op = claims.OpSum
	altered[2].Attribute = "b"
	altered[3].Entities = []string{"e", "f"}
	for i, c := range altered {
		if cacheKey(verify.NewClaimObject("id", c), kinds) == k1 {
			t.Errorf("claim variant %d aliased the base key", i)
		}
	}

	tp := table.Tuple{Caption: "cap", Columns: []string{"x", "y"}, Values: []string{"1", "2"}}
	tk1 := cacheKey(verify.NewTupleObject("id", tp, "x"), kinds)
	tp2 := tp
	tp2.Values = []string{"1", "3"}
	if tk2 := cacheKey(verify.NewTupleObject("id", tp2, "x"), kinds); tk2 == tk1 {
		t.Error("tuple with different cell value aliased the key")
	}
	if tk3 := cacheKey(verify.NewTupleObject("id", tp, "y"), kinds); tk3 == tk1 {
		t.Error("tuple with different attr aliased the key")
	}
	if tk4 := cacheKey(verify.NewTupleObject("id", tp, "x"), []datalake.Kind{datalake.KindTuple}); tk4 == tk1 {
		t.Error("different kind set aliased the key")
	}
}

// TestCacheInvalidationOrdering is the coherence table: for every modality,
// a verify issued after an acknowledged ingest must see the new instance —
// never a stale cached verdict from before the write. The stub verifier
// flips NotRelated→Verified the moment the token-bearing instance is
// retrievable, so serving a stale entry fails loudly.
func TestCacheInvalidationOrdering(t *testing.T) {
	cases := []struct {
		name   string
		kinds  []datalake.Kind
		ingest func(t *testing.T, lake *datalake.Lake, token string)
	}{
		{
			name:  "table",
			kinds: []datalake.Kind{datalake.KindTable},
			ingest: func(t *testing.T, lake *datalake.Lake, token string) {
				tbl := table.New("flip-table", "table about "+token, []string{"k", "v"})
				tbl.SourceID = "s"
				tbl.MustAppendRow("fact", token)
				if err := lake.AddTable(tbl); err != nil {
					t.Fatal(err)
				}
			},
		},
		{
			name:  "tuple",
			kinds: []datalake.Kind{datalake.KindTuple},
			ingest: func(t *testing.T, lake *datalake.Lake, token string) {
				tbl := table.New("flip-tuple", "rows about "+token, []string{"k", "v"})
				tbl.SourceID = "s"
				tbl.MustAppendRow("fact", token)
				if err := lake.AddTable(tbl); err != nil {
					t.Fatal(err)
				}
			},
		},
		{
			name:  "text",
			kinds: []datalake.Kind{datalake.KindText},
			ingest: func(t *testing.T, lake *datalake.Lake, token string) {
				d := &doc.Document{ID: "flip-doc", Title: "note", Text: "a document mentioning " + token, SourceID: "s"}
				if err := lake.AddDocument(d); err != nil {
					t.Fatal(err)
				}
			},
		},
		{
			name:  "entity",
			kinds: []datalake.Kind{datalake.KindEntity},
			ingest: func(t *testing.T, lake *datalake.Lake, token string) {
				if err := lake.AddTriple(kg.Triple{Subject: token, Predicate: "is", Object: "present", SourceID: "s"}); err != nil {
					t.Fatal(err)
				}
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			token := "zq" + tc.name + "flag"
			p, lake := tokenPipeline(t, token)
			g := claimAbout("coherence-"+tc.name, "claim mentioning "+token)

			// Before the ingest: nothing decisive, and warm the cache so a
			// stale entry exists to be (wrongly) served.
			for i := 0; i < 2; i++ {
				rep, err := p.Verify(g, tc.kinds...)
				if err != nil {
					t.Fatal(err)
				}
				if rep.Verdict != verify.NotRelated {
					t.Fatalf("pre-ingest verdict = %v", rep.Verdict)
				}
			}
			if hits := p.Stats().ResultCacheHits; hits != 1 {
				t.Fatalf("cache not warmed: hits = %d", hits)
			}

			// Acknowledged ingest, then verify: the verdict must flip.
			tc.ingest(t, lake, token)
			rep, err := p.Verify(g, tc.kinds...)
			if err != nil {
				t.Fatal(err)
			}
			if rep.Verdict != verify.Verified {
				t.Fatalf("post-ingest verdict = %v (stale cached verdict served)", rep.Verdict)
			}
			if inv := p.Stats().ResultCacheInvalidations; inv != 1 {
				t.Fatalf("invalidations = %d, want 1", inv)
			}
		})
	}
}

// TestResultCacheConcurrent hammers get/put/observe/epoch-bump from many
// goroutines (meaningful under -race) and then checks the counters add up.
func TestResultCacheConcurrent(t *testing.T) {
	c := newResultCache(64)
	kindsets := [][]datalake.Kind{
		{datalake.KindTable},
		{datalake.KindText},
		{datalake.KindTable, datalake.KindText},
	}
	var wg sync.WaitGroup
	const workers, rounds = 8, 300
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				ks := kindsets[i%len(kindsets)]
				key := fmt.Sprintf("k%d", i%40)
				if _, ok := c.get(key, ks); !ok {
					c.put(key, ks, uint64(i), c.epoch.Load(), Report{})
				}
				// Hammer one hot key unconditionally so concurrent
				// refresh-in-place puts race against hits.
				c.put("hot", ks, uint64(i), c.epoch.Load(), Report{Confidence: float64(i)})
				c.get("hot", ks)
				switch i % 50 {
				case 17:
					c.observe(datalake.Event{Version: uint64(w*rounds + i), Kind: datalake.KindTable})
				case 33:
					c.bumpEpoch()
				}
			}
		}(w)
	}
	wg.Wait()
	hits, misses, invalidations, size := c.stats()
	if hits+misses != 2*workers*rounds {
		t.Fatalf("hits(%d)+misses(%d) != lookups(%d)", hits, misses, 2*workers*rounds)
	}
	if invalidations > misses {
		t.Fatalf("invalidations(%d) > misses(%d)", invalidations, misses)
	}
	if size > 64 {
		t.Fatalf("size %d exceeds capacity", size)
	}
}

// TestResultCacheConcurrentPipeline races live verifies against ingests on
// a real pipeline: every post-ack verify must reflect the ack'd write.
func TestResultCacheConcurrentPipeline(t *testing.T) {
	token := "zqliveflag"
	p, lake := tokenPipeline(t, token)

	var wg sync.WaitGroup
	stop := make(chan struct{})
	// Background churn: unrelated reads on a second claim.
	wg.Add(1)
	go func() {
		defer wg.Done()
		g := claimAbout("noise", "claim about something else entirely")
		for {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := p.Verify(g, datalake.KindText); err != nil {
				t.Error(err)
				return
			}
		}
	}()

	// Foreground: sequential ingest→verify rounds, each with a unique
	// token-bearing document; every post-ack verify must be Verified.
	for i := 0; i < 10; i++ {
		g := claimAbout(fmt.Sprintf("round-%d", i), fmt.Sprintf("claim %d mentioning %s", i, token))
		rep, err := p.Verify(g, datalake.KindText)
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 && rep.Verdict == verify.Verified {
			t.Fatal("verified before any token document existed")
		}
		d := &doc.Document{ID: fmt.Sprintf("live-%d", i), Text: fmt.Sprintf("doc %d mentioning %s", i, token), SourceID: "s"}
		if err := lake.AddDocument(d); err != nil {
			t.Fatal(err)
		}
		rep, err = p.Verify(g, datalake.KindText)
		if err != nil {
			t.Fatal(err)
		}
		if rep.Verdict != verify.Verified {
			t.Fatalf("round %d: post-ack verify = %v (stale)", i, rep.Verdict)
		}
	}
	close(stop)
	wg.Wait()
}
