package core

import (
	"fmt"
	"sync"

	"repro/internal/datalake"
	"repro/internal/provenance"
	"repro/internal/rerank"
	"repro/internal/trust"
	"repro/internal/verify"
)

// PipelineConfig controls the end-to-end verification flow.
type PipelineConfig struct {
	// TopK is the task-agnostic retrieval depth per index family (the paper
	// notes k is typically large, 100–1000, because the Indexer is
	// task-agnostic; the reranker shrinks it).
	TopK int
	// TopKPrime is the task-aware depth after reranking (paper: k′ = 5).
	TopKPrime int
	// UseReranker toggles the Reranker module; when off, the combined
	// candidates are truncated to TopKPrime in combiner order (the
	// ablation's baseline).
	UseReranker bool
	// VerifyWorkers bounds concurrent verification of the top-k′ evidence
	// within one Verify call (order-preserving, like VerifyBatch); <= 1
	// means sequential. The verifiers are deterministic functions of
	// (object, evidence), so the report is identical either way.
	VerifyWorkers int
}

// DefaultPipelineConfig returns the paper's settings, with the top-k′
// evidence verified concurrently.
func DefaultPipelineConfig() PipelineConfig {
	return PipelineConfig{TopK: 100, TopKPrime: 5, UseReranker: true, VerifyWorkers: 4}
}

// Pipeline is the assembled VerifAI system. It is safe for concurrent use:
// verification, retrieval, trust updates, and lake ingestion may all run at
// the same time.
type Pipeline struct {
	lake      *datalake.Lake
	indexer   *Indexer
	rerankers *rerank.Registry
	agent     *verify.Agent
	prov      *provenance.Store
	trustMu   sync.RWMutex
	trust     map[string]float64
	cfg       PipelineConfig
}

// NewPipeline assembles a pipeline. sourceTrust maps source IDs to trust in
// [0,1]; missing sources default to their lake prior (or 0.5). A nil
// provenance store disables lineage recording.
func NewPipeline(lake *datalake.Lake, indexer *Indexer, rr *rerank.Registry, agent *verify.Agent,
	prov *provenance.Store, sourceTrust map[string]float64, cfg PipelineConfig) (*Pipeline, error) {
	if lake == nil || indexer == nil || rr == nil || agent == nil {
		return nil, fmt.Errorf("core: pipeline needs lake, indexer, rerankers, and agent")
	}
	if cfg.TopK <= 0 || cfg.TopKPrime <= 0 {
		return nil, fmt.Errorf("core: non-positive retrieval depths (TopK=%d, TopKPrime=%d)", cfg.TopK, cfg.TopKPrime)
	}
	if sourceTrust == nil {
		sourceTrust = make(map[string]float64)
	}
	return &Pipeline{
		lake: lake, indexer: indexer, rerankers: rr, agent: agent,
		prov: prov, trust: sourceTrust, cfg: cfg,
	}, nil
}

// Provenance returns the pipeline's lineage store (nil when disabled).
func (p *Pipeline) Provenance() *provenance.Store { return p.prov }

// Lake returns the underlying data lake.
func (p *Pipeline) Lake() *datalake.Lake { return p.lake }

// Indexer returns the pipeline's indexer.
func (p *Pipeline) Indexer() *Indexer { return p.indexer }

// SourceTrust returns the trust assigned to a source (its lake prior, then
// 0.5, when not explicitly set).
func (p *Pipeline) SourceTrust(sourceID string) float64 {
	p.trustMu.RLock()
	t, ok := p.trust[sourceID]
	p.trustMu.RUnlock()
	if ok {
		return t
	}
	if s, ok := p.lake.Source(sourceID); ok {
		return s.TrustPrior
	}
	return 0.5
}

// SetSourceTrust overrides a source's trust (e.g. from trust.Estimate).
func (p *Pipeline) SetSourceTrust(sourceID string, t float64) {
	p.trustMu.Lock()
	defer p.trustMu.Unlock()
	p.trust[sourceID] = t
}

// Evidence is one verified evidence instance in a report.
type Evidence struct {
	// Instance is the lake instance used as evidence.
	Instance datalake.Instance
	// RerankScore is the task-aware relevance score.
	RerankScore float64
	// Result is the verifier's decision.
	Result verify.Result
	// SourceTrust is the trust of the evidence's source at decision time.
	SourceTrust float64
}

// Report is the outcome of verifying one generated object.
type Report struct {
	// Object is the generated data under verification.
	Object verify.Generated
	// Evidence lists the verified instances in rerank order.
	Evidence []Evidence
	// Verdict is the trust-weighted resolution over the evidence verdicts.
	Verdict verify.Verdict
	// Confidence is the winning verdict's share of trust-weighted votes
	// among decisive (non-NotRelated) evidence; 0 when nothing was decisive.
	Confidence float64
	// ProvenanceSeq is the lineage record's sequence number (-1 when
	// provenance is disabled).
	ProvenanceSeq int
}

// Retrieve runs only the Indexer+Combiner stage, for retrieval experiments.
func (p *Pipeline) Retrieve(g verify.Generated, k int, kinds ...datalake.Kind) ([]provenance.RetrievalHit, []string) {
	return p.indexer.Retrieve(g.Query(), k, kinds...)
}

// Verify runs the full pipeline for a generated object: retrieve → combine
// → rerank → verify each evidence instance → resolve a final verdict by
// trust-weighted vote → record provenance.
//
// kinds restricts the evidence modalities (e.g. only tables for textual
// claims, as in the paper's Section 4 setting); empty means all indexed
// modalities.
func (p *Pipeline) Verify(g verify.Generated, kinds ...datalake.Kind) (Report, error) {
	return p.verifyWith(g, p.cfg.VerifyWorkers, kinds...)
}

// verifyWith is Verify with an explicit evidence-worker bound, so an outer
// fan-out (VerifyBatch) can keep total concurrency at its own bound instead
// of multiplying by cfg.VerifyWorkers.
func (p *Pipeline) verifyWith(g verify.Generated, evidenceWorkers int, kinds ...datalake.Kind) (Report, error) {
	query := g.Query()
	hits, combined := p.indexer.Retrieve(query, p.cfg.TopK, kinds...)

	// Resolve candidates. Resolution failures indicate index/lake drift and
	// are surfaced, not skipped.
	instances := make([]datalake.Instance, 0, len(combined))
	for _, id := range combined {
		inst, err := p.lake.Resolve(id)
		if err != nil {
			return Report{}, fmt.Errorf("core: resolve candidate: %w", err)
		}
		instances = append(instances, inst)
	}

	// Task-aware reranking to top-k′.
	var ordered []datalake.Instance
	var rerankEntries []provenance.RerankEntry
	if p.cfg.UseReranker {
		q := toRerankQuery(g)
		scored := p.rerankers.Rerank(q, instances, p.cfg.TopKPrime)
		byID := make(map[string]datalake.Instance, len(instances))
		for _, in := range instances {
			byID[in.ID] = in
		}
		for rank, s := range scored {
			ordered = append(ordered, byID[s.ID])
			rerankEntries = append(rerankEntries, provenance.RerankEntry{InstanceID: s.ID, Score: s.Score, Rank: rank})
		}
	} else {
		n := p.cfg.TopKPrime
		if n > len(instances) {
			n = len(instances)
		}
		ordered = instances[:n]
		for rank, in := range ordered {
			rerankEntries = append(rerankEntries, provenance.RerankEntry{InstanceID: in.ID, Rank: rank})
		}
	}

	// Verify each evidence instance via the Agent — concurrently when
	// configured — then aggregate sequentially in rank order so the report
	// (votes, provenance, float accumulation) is bit-identical to the
	// sequential path.
	results, err := p.verifyEvidence(g, ordered, evidenceWorkers)
	if err != nil {
		return Report{}, err
	}
	report := Report{Object: g, ProvenanceSeq: -1}
	votes := make(map[string][]float64)
	var decisions []provenance.VerifierDecision
	for i, in := range ordered {
		res := results[i]
		st := p.SourceTrust(in.SourceID)
		ev := Evidence{Instance: in, Result: res, SourceTrust: st}
		if p.cfg.UseReranker {
			ev.RerankScore = rerankEntries[i].Score
		}
		report.Evidence = append(report.Evidence, ev)
		decisions = append(decisions, provenance.VerifierDecision{
			InstanceID:  in.ID,
			SourceID:    in.SourceID,
			Verifier:    res.Verifier,
			Verdict:     res.Verdict.String(),
			Explanation: res.Explanation,
			SourceTrust: st,
		})
		if res.Verdict != verify.NotRelated {
			votes[res.Verdict.String()] = append(votes[res.Verdict.String()], st)
		}
	}

	// Resolve: trust-weighted majority over decisive verdicts.
	resolution := "no decisive evidence"
	report.Verdict = verify.NotRelated
	if len(votes) > 0 {
		label, share := trust.WeightedVerdict(votes)
		report.Confidence = share
		resolution = "trust-weighted majority"
		switch label {
		case verify.Verified.String():
			report.Verdict = verify.Verified
		case verify.Refuted.String():
			report.Verdict = verify.Refuted
		}
	}

	if p.prov != nil {
		report.ProvenanceSeq = p.prov.Append(provenance.Record{
			ObjectID:     g.ID,
			Query:        query,
			Hits:         hits,
			Combined:     combined,
			Reranked:     rerankEntries,
			Decisions:    decisions,
			FinalVerdict: report.Verdict.String(),
			Resolution:   resolution,
		})
	}
	return report, nil
}

// verifyEvidence runs the Agent over each evidence instance on a bounded
// worker pool (workers <= 1 runs inline). Results preserve input order; the
// first error wins.
func (p *Pipeline) verifyEvidence(g verify.Generated, ordered []datalake.Instance, workers int) ([]verify.Result, error) {
	results := make([]verify.Result, len(ordered))
	var (
		errMu    sync.Mutex
		firstErr error
	)
	tasks := make([]func(), len(ordered))
	for i := range ordered {
		i := i
		tasks[i] = func() {
			res, err := p.agent.Verify(g, ordered[i])
			if err != nil {
				errMu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				errMu.Unlock()
				return
			}
			results[i] = res
		}
	}
	runParallel(tasks, workers)
	if firstErr != nil {
		return nil, firstErr
	}
	return results, nil
}

// toRerankQuery converts a generated object into the reranker's query view.
func toRerankQuery(g verify.Generated) rerank.Query {
	q := rerank.Query{Text: g.Query()}
	switch g.Kind {
	case verify.KindTuple:
		tp := g.Tuple
		q.Tuple = &tp
	case verify.KindClaim:
		c := g.Claim
		q.Claim = &c
	}
	return q
}
