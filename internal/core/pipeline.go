package core

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/datalake"
	"repro/internal/obs"
	"repro/internal/provenance"
	"repro/internal/rerank"
	"repro/internal/trust"
	"repro/internal/verify"
)

// PipelineConfig controls the end-to-end verification flow.
type PipelineConfig struct {
	// TopK is the task-agnostic retrieval depth per index family (the paper
	// notes k is typically large, 100–1000, because the Indexer is
	// task-agnostic; the reranker shrinks it).
	TopK int
	// TopKPrime is the task-aware depth after reranking (paper: k′ = 5).
	TopKPrime int
	// UseReranker toggles the Reranker module; when off, the combined
	// candidates are truncated to TopKPrime in combiner order (the
	// ablation's baseline).
	UseReranker bool
	// VerifyWorkers bounds concurrent verification of the top-k′ evidence
	// within one Verify call (order-preserving, like VerifyBatch); <= 1
	// means sequential. The verifiers are deterministic functions of
	// (object, evidence), so the report is identical either way.
	VerifyWorkers int
	// ResultCache is the capacity (entries) of the verify-result cache:
	// completed Reports keyed by (task, object fingerprint, kind set) and
	// invalidated exactly when a lake write touches a kind they depend on
	// (see resultcache.go). <= 0 disables caching — every Verify recomputes.
	// A cache hit returns the original Report, including its ProvenanceSeq:
	// identical requests against an unchanged lake share one lineage record.
	ResultCache int
	// SnapshotRetain bounds the unpinned time-travel snapshot population
	// (keep-last-N; explicit pins are retained regardless). <= 0 selects
	// datalake.DefaultSnapshotRetain.
	SnapshotRetain int
	// Metrics, when non-nil, registers the pipeline's serving-path metrics
	// (per-stage spans, verifier call counters, result- and query-cache
	// mirrors, per-family shard search latency) with the registry. Nil
	// disables instrumentation at zero cost on the hot path.
	Metrics *obs.Registry
}

// DefaultPipelineConfig returns the paper's settings, with the top-k′
// evidence verified concurrently and the verify-result cache enabled (the
// verifiers are deterministic, so cached Reports are bit-identical to
// recomputed ones).
func DefaultPipelineConfig() PipelineConfig {
	return PipelineConfig{TopK: 100, TopKPrime: 5, UseReranker: true, VerifyWorkers: 4, ResultCache: 4096}
}

// Pipeline is the assembled VerifAI system. It is safe for concurrent use:
// verification, retrieval, trust updates, and lake ingestion may all run at
// the same time.
type Pipeline struct {
	lake      *datalake.Lake
	indexer   *Indexer
	rerankers *rerank.Registry
	agent     *verify.Agent
	prov      *provenance.Store
	trustMu   sync.RWMutex
	trust     map[string]float64
	cfg       PipelineConfig
	// rcache is the versioned verify-result cache (nil when disabled).
	rcache *resultCache
	// snapshots retains time-travel snapshots (never nil; see snapshot.go).
	snapshots   *datalake.SnapshotRegistry
	pinnedReads *obs.Counter
	// obs is the metrics registry (nil disables spans and counters; every
	// handle below is nil-safe, so the hot path never branches on it).
	obs           *obs.Registry
	verifierCalls *obs.Counter
	verifierSec   *obs.Histogram
}

// NewPipeline assembles a pipeline. sourceTrust maps source IDs to trust in
// [0,1]; missing sources default to their lake prior (or 0.5). A nil
// provenance store disables lineage recording.
func NewPipeline(lake *datalake.Lake, indexer *Indexer, rr *rerank.Registry, agent *verify.Agent,
	prov *provenance.Store, sourceTrust map[string]float64, cfg PipelineConfig) (*Pipeline, error) {
	if lake == nil || indexer == nil || rr == nil || agent == nil {
		return nil, fmt.Errorf("core: pipeline needs lake, indexer, rerankers, and agent")
	}
	if cfg.TopK <= 0 || cfg.TopKPrime <= 0 {
		return nil, fmt.Errorf("core: non-positive retrieval depths (TopK=%d, TopKPrime=%d)", cfg.TopK, cfg.TopKPrime)
	}
	if sourceTrust == nil {
		sourceTrust = make(map[string]float64)
	}
	p := &Pipeline{
		lake: lake, indexer: indexer, rerankers: rr, agent: agent,
		prov: prov, trust: sourceTrust, cfg: cfg,
		snapshots: datalake.NewSnapshotRegistry(cfg.SnapshotRetain),
	}
	if cfg.ResultCache > 0 {
		p.rcache = newResultCache(cfg.ResultCache)
		if err := p.rcache.attach(lake); err != nil {
			return nil, fmt.Errorf("core: attach result cache: %w", err)
		}
	}
	if cfg.Metrics != nil {
		p.installMetrics(cfg.Metrics)
	}
	return p, nil
}

// installMetrics registers the pipeline's serving-path metrics with reg:
// verifier call volume and latency, mirrors of the result- and
// query-cache counters (the same atomics Stats() snapshots), and the
// indexer's per-family shard-search histograms.
func (p *Pipeline) installMetrics(reg *obs.Registry) {
	p.obs = reg
	// Touch the stage family eagerly so an idle system's exposition is
	// already complete (spans register their own stage labels lazily).
	reg.Stages()
	p.verifierCalls = reg.Counter("verifai_verifier_calls_total",
		"Evidence verifications executed by the verifier agent (cache hits excluded).")
	p.verifierSec = reg.Histogram("verifai_verifier_call_seconds",
		"Latency of one verifier agent call over one evidence instance.")
	p.pinnedReads = reg.Counter("verifai_pinned_reads_total",
		"Verifications served against a retained snapshot (?version= time-travel reads).")
	p.snapshots.SetMetrics(reg)
	if rc := p.rcache; rc != nil {
		reg.CounterFunc("verifai_result_cache_hits_total",
			"Verify-result cache hits.", rc.hits.Load)
		reg.CounterFunc("verifai_result_cache_misses_total",
			"Verify-result cache misses.", rc.misses.Load)
		reg.CounterFunc("verifai_result_cache_invalidations_total",
			"Verify-result cache entries evicted because a lake write or trust override staled them.", rc.invalidations.Load)
		reg.GaugeFunc("verifai_result_cache_entries",
			"Verify-result cache resident entries.", func() float64 { return float64(rc.len()) })
	}
	reg.CounterFunc("verifai_query_cache_hits_total",
		"Query-embedding cache hits.", func() uint64 { h, _, _ := p.indexer.QueryCacheStats(); return h })
	reg.CounterFunc("verifai_query_cache_misses_total",
		"Query-embedding cache misses.", func() uint64 { _, m, _ := p.indexer.QueryCacheStats(); return m })
	p.indexer.SetMetrics(reg)
}

// Close detaches the pipeline's result cache from the lake's change feed.
// A discarded pipeline with caching enabled should be closed (like its
// Indexer), or the dead subscription keeps observing every future ingest.
// The pipeline remains usable for verification after Close — cache entries
// just stop invalidating, so only call it when retiring the pipeline.
// Idempotent.
func (p *Pipeline) Close() {
	if p.rcache != nil {
		p.rcache.close()
	}
}

// Provenance returns the pipeline's lineage store (nil when disabled).
func (p *Pipeline) Provenance() *provenance.Store { return p.prov }

// Lake returns the underlying data lake.
func (p *Pipeline) Lake() *datalake.Lake { return p.lake }

// WaitFresh blocks until the lake has applied every mutation through
// version v, honoring ctx — the freshness barrier behind the HTTP layer's
// ?min_version= read-your-writes token. On a follower, "applied" means
// "replicated and applied", so the same barrier covers both roles. The
// result cache needs no separate wait: its per-kind watermarks advance
// inside the same application step that this waits on.
func (p *Pipeline) WaitFresh(ctx context.Context, v uint64) error {
	return p.lake.WaitApplied(ctx, v)
}

// Indexer returns the pipeline's indexer.
func (p *Pipeline) Indexer() *Indexer { return p.indexer }

// SourceTrust returns the trust assigned to a source (its lake prior, then
// 0.5, when not explicitly set).
func (p *Pipeline) SourceTrust(sourceID string) float64 {
	p.trustMu.RLock()
	t, ok := p.trust[sourceID]
	p.trustMu.RUnlock()
	if ok {
		return t
	}
	if s, ok := p.lake.Source(sourceID); ok {
		return s.TrustPrior
	}
	return 0.5
}

// SetSourceTrust overrides a source's trust (e.g. from trust.Estimate).
// Trust re-weights verdict resolution, so the override invalidates every
// cached verification result.
func (p *Pipeline) SetSourceTrust(sourceID string, t float64) {
	p.trustMu.Lock()
	p.trust[sourceID] = t
	p.trustMu.Unlock()
	if p.rcache != nil {
		p.rcache.bumpEpoch()
	}
}

// Stats reports the pipeline's serving-path counters: verify-result cache
// hits/misses/invalidations and the indexer's query-embedding cache, for
// ops dashboards (/v1/stats) and tests. All cache fields are zero when the
// respective cache is disabled.
type Stats struct {
	// ResultCache* describe the verify-result cache. Invalidations counts
	// entries evicted because a lake write touched a kind they depended on
	// (or a trust override bumped the epoch) — counted lazily, at the
	// lookup that finds the entry stale.
	ResultCacheHits          uint64 `json:"result_cache_hits"`
	ResultCacheMisses        uint64 `json:"result_cache_misses"`
	ResultCacheInvalidations uint64 `json:"result_cache_invalidations"`
	ResultCacheSize          int    `json:"result_cache_size"`
	// QueryCache* describe the indexer's query-embedding LRU.
	QueryCacheHits   uint64 `json:"query_cache_hits"`
	QueryCacheMisses uint64 `json:"query_cache_misses"`
	QueryCacheSize   int    `json:"query_cache_size"`
}

// Stats snapshots the pipeline's serving-path counters.
func (p *Pipeline) Stats() Stats {
	var s Stats
	if p.rcache != nil {
		s.ResultCacheHits, s.ResultCacheMisses, s.ResultCacheInvalidations, s.ResultCacheSize = p.rcache.stats()
	}
	s.QueryCacheHits, s.QueryCacheMisses, s.QueryCacheSize = p.indexer.QueryCacheStats()
	return s
}

// Evidence is one verified evidence instance in a report.
type Evidence struct {
	// Instance is the lake instance used as evidence.
	Instance datalake.Instance
	// RerankScore is the task-aware relevance score.
	RerankScore float64
	// Result is the verifier's decision.
	Result verify.Result
	// SourceTrust is the trust of the evidence's source at decision time.
	SourceTrust float64
}

// Report is the outcome of verifying one generated object.
type Report struct {
	// Object is the generated data under verification.
	Object verify.Generated
	// Evidence lists the verified instances in rerank order.
	Evidence []Evidence
	// Verdict is the trust-weighted resolution over the evidence verdicts.
	Verdict verify.Verdict
	// Confidence is the winning verdict's share of trust-weighted votes
	// among decisive (non-NotRelated) evidence; 0 when nothing was decisive.
	Confidence float64
	// ProvenanceSeq is the lineage record's sequence number (-1 when
	// provenance is disabled).
	ProvenanceSeq int
	// AsOfVersion is the retained snapshot version the report was computed
	// against (0 for a head read): the reproducibility stamp — re-verifying
	// at the same pin yields an identical report no matter what has been
	// ingested since.
	AsOfVersion uint64 `json:",omitempty"`
}

// Retrieve runs only the Indexer+Combiner stage, for retrieval experiments.
func (p *Pipeline) Retrieve(g verify.Generated, k int, kinds ...datalake.Kind) ([]provenance.RetrievalHit, []string) {
	return p.indexer.Retrieve(g.Query(), k, kinds...)
}

// normalizeKinds resolves the effective evidence-kind set for one request:
// the indexer's configured kinds when empty, sorted and deduplicated
// otherwise. Retrieval searches each kind once and the combiner is
// order-independent, so the normalized set retrieves identically to the
// caller's — and it gives cache keys a canonical form.
func (p *Pipeline) normalizeKinds(kinds []datalake.Kind) []datalake.Kind {
	if len(kinds) == 0 {
		return p.indexer.cfg.Kinds
	}
	out := append([]datalake.Kind(nil), kinds...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	n := 0
	for i, k := range out {
		if i == 0 || k != out[n-1] {
			out[n] = k
			n++
		}
	}
	return out[:n]
}

// Verify runs the full pipeline for a generated object: retrieve → combine
// → rerank → verify each evidence instance → resolve a final verdict by
// trust-weighted vote → record provenance.
//
// kinds restricts the evidence modalities (e.g. only tables for textual
// claims, as in the paper's Section 4 setting); empty means all indexed
// modalities.
func (p *Pipeline) Verify(g verify.Generated, kinds ...datalake.Kind) (Report, error) {
	return p.VerifyCtx(context.Background(), g, kinds...)
}

// VerifyCtx is Verify honoring a request context: cancellation or deadline
// expiry aborts the remaining retrieval fan-out, reranking, and evidence
// verification and returns the context's error, so an abandoned HTTP
// request stops burning CPU mid-flight.
//
// When the result cache is enabled, a Report computed for the same
// (object, kinds) fingerprint against an unchanged lake (no write touching
// the requested kinds, no trust override) is returned without recomputing;
// cancelled or failed verifications are never cached.
func (p *Pipeline) VerifyCtx(ctx context.Context, g verify.Generated, kinds ...datalake.Kind) (Report, error) {
	return p.verifyCached(ctx, g, p.cfg.VerifyWorkers, p.normalizeKinds(kinds))
}

// verifyCached wraps verifyWith with the result-cache lookup/fill — the
// single serving path behind VerifyCtx and VerifyBatchCtx. kinds must be
// normalized.
func (p *Pipeline) verifyCached(ctx context.Context, g verify.Generated, evidenceWorkers int, kinds []datalake.Kind) (Report, error) {
	var key string
	if p.rcache != nil {
		key = cacheKey(g, kinds)
		if rep, ok := p.rcache.get(key, kinds); ok {
			return rep, nil
		}
	}
	// Stamp validity before touching the indexes: every index read below
	// reflects at least this published version, and a write landing
	// mid-verification makes the stamp conservatively stale.
	var version, epoch uint64
	if p.rcache != nil {
		version = p.lake.Version()
		epoch = p.rcache.epoch.Load()
	}
	rep, err := p.verifyWith(ctx, g, evidenceWorkers, kinds)
	if err != nil {
		return rep, err
	}
	if p.rcache != nil {
		p.rcache.put(key, kinds, version, epoch, rep)
	}
	return rep, nil
}

// evidenceSource is the seam between the verification flow and the data it
// reads: retrieval over some set of index shards, instance resolution
// against some catalog, and a trust function. Head reads bind it to the
// live indexer/lake/trust map; time-travel reads bind it to a pinned
// snapshot's frozen shards, immutable View, and pin-time trust copy — the
// rest of the flow (rerank, verify, verdict, provenance) is shared.
type evidenceSource struct {
	retrieve func(ctx context.Context, query string, k int, kinds []datalake.Kind) []provenance.RetrievalHit
	resolve  func(instanceID string) (datalake.Instance, error)
	trust    func(sourceID string) float64
}

// headSource binds the evidence seam to the live lake and indexes.
func (p *Pipeline) headSource() evidenceSource {
	return evidenceSource{
		retrieve: func(ctx context.Context, query string, k int, kinds []datalake.Kind) []provenance.RetrievalHit {
			return p.indexer.search(ctx, query, k, kinds, true, p.indexer.cfg.EnableVector)
		},
		resolve: p.lake.Resolve,
		trust:   p.SourceTrust,
	}
}

// verifyWith is VerifyCtx's implementation with an explicit evidence-worker
// bound, so an outer fan-out (VerifyBatch) can keep total concurrency at
// its own bound instead of multiplying by cfg.VerifyWorkers. kinds must be
// normalized (non-empty).
func (p *Pipeline) verifyWith(ctx context.Context, g verify.Generated, evidenceWorkers int, kinds []datalake.Kind) (Report, error) {
	return p.verifyAgainst(ctx, g, evidenceWorkers, kinds, p.headSource(), 0)
}

// verifyAgainst runs the full retrieve → combine → rerank → verify →
// resolve → provenance flow against an explicit evidence source, stamping
// the report with asOf (0 for head reads). This is the single verification
// body behind head and pinned reads.
func (p *Pipeline) verifyAgainst(ctx context.Context, g verify.Generated, evidenceWorkers int, kinds []datalake.Kind, src evidenceSource, asOf uint64) (Report, error) {
	if err := ctx.Err(); err != nil {
		return Report{}, err
	}
	query := g.Query()
	endRetrieve := p.obs.Span(ctx, "retrieve")
	hits := src.retrieve(ctx, query, p.cfg.TopK, kinds)
	combined := combine(hits)
	endRetrieve()
	if err := ctx.Err(); err != nil {
		return Report{}, err
	}

	// Resolve candidates. Resolution failures indicate index/lake drift and
	// are surfaced, not skipped.
	endResolve := p.obs.Span(ctx, "resolve")
	instances := make([]datalake.Instance, 0, len(combined))
	for _, id := range combined {
		inst, err := src.resolve(id)
		if err != nil {
			endResolve()
			return Report{}, fmt.Errorf("core: resolve candidate: %w", err)
		}
		instances = append(instances, inst)
	}
	endResolve()

	// Task-aware reranking to top-k′.
	endRerank := p.obs.Span(ctx, "rerank")
	var ordered []datalake.Instance
	var rerankEntries []provenance.RerankEntry
	if p.cfg.UseReranker {
		q := toRerankQuery(g)
		scored := p.rerankers.Rerank(q, instances, p.cfg.TopKPrime)
		byID := make(map[string]datalake.Instance, len(instances))
		for _, in := range instances {
			byID[in.ID] = in
		}
		for rank, s := range scored {
			ordered = append(ordered, byID[s.ID])
			rerankEntries = append(rerankEntries, provenance.RerankEntry{InstanceID: s.ID, Score: s.Score, Rank: rank})
		}
	} else {
		n := p.cfg.TopKPrime
		if n > len(instances) {
			n = len(instances)
		}
		ordered = instances[:n]
		for rank, in := range ordered {
			rerankEntries = append(rerankEntries, provenance.RerankEntry{InstanceID: in.ID, Rank: rank})
		}
	}
	endRerank()
	if err := ctx.Err(); err != nil {
		return Report{}, err
	}

	// Verify each evidence instance via the Agent — concurrently when
	// configured — then aggregate sequentially in rank order so the report
	// (votes, provenance, float accumulation) is bit-identical to the
	// sequential path.
	endVerify := p.obs.Span(ctx, "verify")
	results, err := p.verifyEvidence(ctx, g, ordered, evidenceWorkers)
	endVerify()
	if err != nil {
		return Report{}, err
	}
	report := Report{Object: g, ProvenanceSeq: -1, AsOfVersion: asOf}
	votes := make(map[string][]float64)
	var decisions []provenance.VerifierDecision
	for i, in := range ordered {
		res := results[i]
		st := src.trust(in.SourceID)
		ev := Evidence{Instance: in, Result: res, SourceTrust: st}
		if p.cfg.UseReranker {
			ev.RerankScore = rerankEntries[i].Score
		}
		report.Evidence = append(report.Evidence, ev)
		decisions = append(decisions, provenance.VerifierDecision{
			InstanceID:  in.ID,
			SourceID:    in.SourceID,
			Verifier:    res.Verifier,
			Verdict:     res.Verdict.String(),
			Explanation: res.Explanation,
			SourceTrust: st,
		})
		if res.Verdict != verify.NotRelated {
			votes[res.Verdict.String()] = append(votes[res.Verdict.String()], st)
		}
	}

	// Resolve: trust-weighted majority over decisive verdicts.
	resolution := "no decisive evidence"
	report.Verdict = verify.NotRelated
	if len(votes) > 0 {
		label, share := trust.WeightedVerdict(votes)
		report.Confidence = share
		resolution = "trust-weighted majority"
		switch label {
		case verify.Verified.String():
			report.Verdict = verify.Verified
		case verify.Refuted.String():
			report.Verdict = verify.Refuted
		}
	}

	if p.prov != nil {
		endProv := p.obs.Span(ctx, "provenance")
		defer endProv()
		report.ProvenanceSeq = p.prov.Append(provenance.Record{
			ObjectID:     g.ID,
			Query:        query,
			Hits:         hits,
			Combined:     combined,
			Reranked:     rerankEntries,
			Decisions:    decisions,
			FinalVerdict: report.Verdict.String(),
			Resolution:   resolution,
		})
	}
	return report, nil
}

// verifyEvidence runs the Agent over each evidence instance on a bounded
// worker pool (workers <= 1 runs inline). Results preserve input order; the
// first error wins. A cancelled context stops unstarted verifications; the
// context error is returned once in-flight ones drain.
func (p *Pipeline) verifyEvidence(ctx context.Context, g verify.Generated, ordered []datalake.Instance, workers int) ([]verify.Result, error) {
	results := make([]verify.Result, len(ordered))
	var (
		errMu    sync.Mutex
		firstErr error
	)
	setErr := func(err error) {
		errMu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		errMu.Unlock()
	}
	tasks := make([]func(), len(ordered))
	for i := range ordered {
		i := i
		tasks[i] = func() {
			if err := ctx.Err(); err != nil {
				setErr(err)
				return
			}
			start := time.Now()
			res, err := p.agent.Verify(g, ordered[i])
			p.verifierCalls.Inc()
			p.verifierSec.Since(start)
			if err != nil {
				setErr(err)
				return
			}
			results[i] = res
		}
	}
	runParallel(tasks, workers)
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if firstErr != nil {
		return nil, firstErr
	}
	return results, nil
}

// toRerankQuery converts a generated object into the reranker's query view.
func toRerankQuery(g verify.Generated) rerank.Query {
	q := rerank.Query{Text: g.Query()}
	switch g.Kind {
	case verify.KindTuple:
		tp := g.Tuple
		q.Tuple = &tp
	case verify.KindClaim:
		c := g.Claim
		q.Claim = &c
	}
	return q
}
