package core

import (
	"container/list"
	"sync"

	"repro/internal/embed"
)

// queryCache is a bounded LRU of query text → embedding. Retrieval embeds
// every query into the (seeded, deterministic) embedding space before
// searching the vector shards; under heavy traffic the same queries recur,
// so caching the embedding removes the tokenize+accumulate work from the
// hot path. Vectors are shared between the cache and callers and must be
// treated as immutable.
type queryCache struct {
	mu    sync.Mutex
	cap   int
	ll    *list.List
	items map[string]*list.Element

	hits   uint64
	misses uint64
}

// qcEntry is one cache slot.
type qcEntry struct {
	key string
	vec embed.Vector
}

// newQueryCache returns an LRU of the given capacity, or nil (disabled)
// for capacity <= 0.
func newQueryCache(capacity int) *queryCache {
	if capacity <= 0 {
		return nil
	}
	return &queryCache{
		cap:   capacity,
		ll:    list.New(),
		items: make(map[string]*list.Element, capacity),
	}
}

// get returns the cached embedding for key, marking it most-recently used.
func (c *queryCache) get(key string) (embed.Vector, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		c.hits++
		return el.Value.(*qcEntry).vec, true
	}
	c.misses++
	return nil, false
}

// put inserts (or refreshes) key's embedding, evicting the least-recently
// used entry past capacity.
func (c *queryCache) put(key string, v embed.Vector) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*qcEntry).vec = v
		c.ll.MoveToFront(el)
		return
	}
	c.items[key] = c.ll.PushFront(&qcEntry{key: key, vec: v})
	if c.ll.Len() > c.cap {
		last := c.ll.Back()
		c.ll.Remove(last)
		delete(c.items, last.Value.(*qcEntry).key)
	}
}

// stats returns the hit/miss counters and current size.
func (c *queryCache) stats() (hits, misses uint64, size int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, c.ll.Len()
}
