package core

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"repro/internal/datalake"
	"repro/internal/doc"
	"repro/internal/kg"
	"repro/internal/provenance"
	"repro/internal/rerank"
	"repro/internal/table"
	"repro/internal/verify"
)

// liveIndexer builds an indexer over a small lake with the given shard
// count, returning both.
func liveIndexer(t *testing.T, shards int) (*datalake.Lake, *Indexer) {
	t.Helper()
	lake := smallLake(t)
	cfg := DefaultIndexerConfig(1)
	cfg.Shards = shards
	ix, err := BuildIndexer(lake, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return lake, ix
}

func containsID(ids []string, want string) bool {
	for _, id := range ids {
		if id == want {
			return true
		}
	}
	return false
}

// TestLiveIngestIndexed checks the tentpole contract: instances ingested
// after BuildIndexer are retrievable without a rebuild, across all three
// modalities, via the lake's change feed.
func TestLiveIngestIndexed(t *testing.T) {
	for _, shards := range []int{1, 3} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			lake, ix := liveIndexer(t, shards)

			late := table.New("late1", "1965 masters tournament", []string{"player", "strokes"})
			late.SourceID = "s1"
			late.MustAppendRow("jack nicklaus", "271")
			if err := lake.AddTable(late); err != nil {
				t.Fatal(err)
			}
			_, combined := ix.Retrieve("1965 masters tournament jack nicklaus", 10, datalake.KindTable)
			if !containsID(combined, "table:late1") {
				t.Fatalf("late table not retrieved: %v", combined)
			}
			_, combined = ix.Retrieve("jack nicklaus strokes 271", 10, datalake.KindTuple)
			if !containsID(combined, "tuple:late1#0") {
				t.Fatalf("late tuple not retrieved: %v", combined)
			}

			if err := lake.AddDocument(&doc.Document{
				ID: "late-doc", Title: "Arnold Palmer", SourceID: "s2",
				Text: "Arnold Palmer won the 1964 masters tournament by six strokes.",
			}); err != nil {
				t.Fatal(err)
			}
			_, combined = ix.Retrieve("arnold palmer 1964 masters", 10, datalake.KindText)
			if !containsID(combined, "text:late-doc") {
				t.Fatalf("late document not retrieved: %v", combined)
			}

			if err := lake.AddTriple(kg.Triple{
				Subject: "gary player", Predicate: "winner of 1961 masters", Object: "280", SourceID: "s1",
			}); err != nil {
				t.Fatal(err)
			}
			_, combined = ix.Retrieve("gary player winner 1961 masters", 10, datalake.KindEntity)
			if !containsID(combined, "entity:gary player") {
				t.Fatalf("late entity not retrieved: %v", combined)
			}

			// A second triple about the same subject — here with variant
			// casing — refreshes the canonical neighborhood instance rather
			// than duplicating or erroring.
			if err := lake.AddTriple(kg.Triple{
				Subject: "GARY PLAYER", Predicate: "country", Object: "south africa", SourceID: "s1",
			}); err != nil {
				t.Fatal(err)
			}
			_, combined = ix.Retrieve("gary player country south africa", 10, datalake.KindEntity)
			if !containsID(combined, "entity:gary player") {
				t.Fatalf("refreshed entity not retrieved: %v", combined)
			}
			if containsID(combined, "entity:GARY PLAYER") {
				t.Fatalf("variant-cased triple forked a duplicate entity instance: %v", combined)
			}
			// The refreshed instance carries the new fact.
			inst, err := lake.Resolve("entity:gary player")
			if err != nil {
				t.Fatal(err)
			}
			if s := inst.Serialize(); !strings.Contains(s, "south africa") {
				t.Fatalf("refreshed neighborhood missing new triple: %q", s)
			}
		})
	}
}

// TestClosedIndexerStopsUpdating checks that Close detaches the indexer
// from the lake's change feed: a replaced indexer must stop consuming
// ingests while a live one on the same lake keeps indexing.
func TestClosedIndexerStopsUpdating(t *testing.T) {
	lake, old := liveIndexer(t, 1)
	cfg := DefaultIndexerConfig(1)
	replacement, err := BuildIndexer(lake, cfg)
	if err != nil {
		t.Fatal(err)
	}
	old.Close()
	old.Close() // idempotent

	tbl := table.New("after-close", "post close table", []string{"k", "v"})
	tbl.SourceID = "s1"
	tbl.MustAppendRow("x", "y")
	if err := lake.AddTable(tbl); err != nil {
		t.Fatal(err)
	}
	if _, combined := old.Retrieve("post close table", 10, datalake.KindTable); containsID(combined, "table:after-close") {
		t.Fatal("closed indexer still received the ingest")
	}
	if _, combined := replacement.Retrieve("post close table", 10, datalake.KindTable); !containsID(combined, "table:after-close") {
		t.Fatal("live indexer on the same lake missed the ingest")
	}
}

// TestRetrieveKindFiltered checks that Retrieve and RetrieveFamily honor
// kind restrictions: every returned instance is of a requested kind.
func TestRetrieveKindFiltered(t *testing.T) {
	_, ix := liveIndexer(t, 2)
	query := "tommy bolt 1954 u.s. open (golf) money 570"

	for _, kinds := range [][]datalake.Kind{
		{datalake.KindTable},
		{datalake.KindTuple},
		{datalake.KindText},
		{datalake.KindTable, datalake.KindText},
	} {
		allowed := make(map[datalake.Kind]bool)
		for _, k := range kinds {
			allowed[k] = true
		}
		_, combined := ix.Retrieve(query, 10, kinds...)
		if len(combined) == 0 {
			t.Fatalf("kinds %v: no results", kinds)
		}
		for _, id := range combined {
			k, ok := datalake.KindOf(id)
			if !ok || !allowed[k] {
				t.Errorf("kinds %v: result %q outside requested kinds", kinds, id)
			}
		}
		for _, family := range []string{"bm25", "vector"} {
			for _, id := range ix.RetrieveFamily(query, family, 10, kinds...) {
				k, ok := datalake.KindOf(id)
				if !ok || !allowed[k] {
					t.Errorf("family %s kinds %v: result %q outside requested kinds", family, kinds, id)
				}
			}
		}
	}
	if got := ix.RetrieveFamily(query, "no-such-family", 10); got != nil {
		t.Fatalf("unknown family returned %v, want nil", got)
	}
}

// TestShardedRetrievalAgreesOnTop checks that sharding the indexes does not
// lose the relevant instance: the known-best hit for an exact-content query
// is retrieved first under both layouts.
func TestShardedRetrievalAgreesOnTop(t *testing.T) {
	_, unsharded := liveIndexer(t, 1)
	_, sharded := liveIndexer(t, 4)
	queries := []string{
		"tommy bolt money 570 1954 u.s. open (golf)",
		"ben hogan total 287 1959 u.s. open (golf)",
		"climate of dover kansas record high july",
	}
	for _, q := range queries {
		_, a := unsharded.Retrieve(q, 5)
		_, b := sharded.Retrieve(q, 5)
		if len(a) == 0 || len(b) == 0 {
			t.Fatalf("query %q: empty results (%d vs %d)", q, len(a), len(b))
		}
		if a[0] != b[0] {
			t.Errorf("query %q: top hit differs: unsharded %q vs sharded %q", q, a[0], b[0])
		}
	}
}

// TestQueryEmbeddingSkippedAndCached checks two retrieval-path
// optimizations: the query embedding is not computed when the requested
// kinds have no vector index, and repeated queries hit the LRU cache.
func TestQueryEmbeddingSkippedAndCached(t *testing.T) {
	lake := smallLake(t)
	cfg := DefaultIndexerConfig(1)
	// Vector family only for tables: text retrievals must skip embedding.
	cfg.Kinds = []datalake.Kind{datalake.KindTable, datalake.KindText}
	ix, err := BuildIndexer(lake, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Remove the text-kind vector shards by requesting an unindexed kind:
	// KindTuple is not configured, so it has no vector (or BM25) index.
	ix.Retrieve("tommy bolt", 5, datalake.KindTuple)
	if hits, misses, _ := ix.QueryCacheStats(); hits != 0 || misses != 0 {
		t.Fatalf("embedding computed for kind with no vector index (hits=%d misses=%d)", hits, misses)
	}

	ix.Retrieve("tommy bolt", 5, datalake.KindTable)
	if _, misses, size := ix.QueryCacheStats(); misses != 1 || size != 1 {
		t.Fatalf("first vector retrieval: misses=%d size=%d, want 1 and 1", misses, size)
	}
	ix.Retrieve("tommy bolt", 5, datalake.KindTable)
	if hits, misses, _ := ix.QueryCacheStats(); hits != 1 || misses != 1 {
		t.Fatalf("repeated query: hits=%d misses=%d, want 1 and 1", hits, misses)
	}

	// BM25-only family retrieval never touches the cache.
	ix.RetrieveFamily("fresh query", "bm25", 5, datalake.KindTable)
	if hits, misses, _ := ix.QueryCacheStats(); hits != 1 || misses != 1 {
		t.Fatalf("bm25-only retrieval embedded the query (hits=%d misses=%d)", hits, misses)
	}
}

// TestConcurrentIngestAndQuery runs live ingestion against concurrent
// retrieval and full verification; run under -race it proves the pipeline
// serves reads during writes.
func TestConcurrentIngestAndQuery(t *testing.T) {
	lake := smallLake(t)
	cfg := DefaultIndexerConfig(1)
	cfg.Shards = 3
	ix, err := BuildIndexer(lake, cfg)
	if err != nil {
		t.Fatal(err)
	}
	p := pipelineOver(t, lake, ix)

	const ingested = 40
	base := lake.Version()
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for q := 0; q < 3; q++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			g := golfClaimObject()
			for {
				select {
				case <-stop:
					return
				default:
					ix.Retrieve("tommy bolt money", 10)
					if _, err := p.Verify(g, datalake.KindTable); err != nil {
						t.Errorf("verify during ingest: %v", err)
						return
					}
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < ingested; i++ {
			tbl := table.New(fmt.Sprintf("live%d", i), fmt.Sprintf("live table %d", i), []string{"k", "v"})
			tbl.SourceID = "s1"
			tbl.MustAppendRow(fmt.Sprintf("key%d", i), fmt.Sprintf("value%d", i))
			if err := lake.AddTable(tbl); err != nil {
				t.Errorf("ingest: %v", err)
				return
			}
		}
		close(stop)
	}()
	wg.Wait()

	if v := lake.Version(); v != base+ingested {
		t.Fatalf("lake version = %d, want %d", v, base+ingested)
	}
	_, combined := ix.Retrieve("live table 39 key39 value39", 10, datalake.KindTable)
	if !containsID(combined, "table:live39") {
		t.Fatalf("last concurrently ingested table not retrieved: %v", combined)
	}
}

// TestBatchIngestIndexed checks the pipelined batch path end to end: a
// mixed AddBatch returns only after every item is applied by the per-shard
// appliers, so each one is immediately retrievable, and per-item failures
// do not disturb the indexed survivors.
func TestBatchIngestIndexed(t *testing.T) {
	lake, ix := liveIndexer(t, 3)

	tbl := table.New("batch-t1", "1971 open championship", []string{"player", "prize"})
	tbl.SourceID = "s1"
	tbl.MustAppendRow("lee trevino", "5500")
	dup := table.New("batch-t1", "dup", []string{"a"})
	results, err := lake.AddBatch([]datalake.BatchItem{
		{Table: tbl},
		{Doc: &doc.Document{ID: "batch-d1", Title: "Lee Trevino", Text: "Lee Trevino won the 1971 open championship.", SourceID: "s2"}},
		{Triple: &kg.Triple{Subject: "lee trevino", Predicate: "nickname", Object: "supermex", SourceID: "s1"}},
		{Table: dup},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, res := range results[:3] {
		if res.Err != nil {
			t.Fatalf("item %d rejected: %v", i, res.Err)
		}
	}
	if results[3].Err == nil {
		t.Fatal("duplicate batch item accepted")
	}

	for _, tc := range []struct {
		query string
		kind  datalake.Kind
		want  string
	}{
		{"1971 open championship lee trevino", datalake.KindTable, "table:batch-t1"},
		{"lee trevino prize 5500", datalake.KindTuple, "tuple:batch-t1#0"},
		{"lee trevino won the 1971 open championship", datalake.KindText, "text:batch-d1"},
		{"lee trevino nickname supermex", datalake.KindEntity, "entity:lee trevino"},
	} {
		if _, combined := ix.Retrieve(tc.query, 10, tc.kind); !containsID(combined, tc.want) {
			t.Fatalf("batch-ingested %s not retrieved: %v", tc.want, combined)
		}
	}
}

// TestEmptySubjectTripleDoesNotPanic is a regression test: a triple with an
// empty subject must flow through the per-shard appliers like any other
// entity event (the graph accepts every triple), not crash the applier.
func TestEmptySubjectTripleDoesNotPanic(t *testing.T) {
	lake, ix := liveIndexer(t, 2)
	defer ix.Close()
	if err := lake.AddTriple(kg.Triple{Subject: "", Predicate: "p", Object: "o"}); err != nil {
		t.Fatalf("empty-subject AddTriple: %v", err)
	}
	// The lake (and its appliers) must still be functional afterwards.
	if err := lake.AddTriple(kg.Triple{Subject: "after", Predicate: "p", Object: "o"}); err != nil {
		t.Fatal(err)
	}
	if _, combined := ix.Retrieve("after p o", 10, datalake.KindEntity); !containsID(combined, "entity:after") {
		t.Fatalf("appliers dead after empty-subject triple: %v", combined)
	}
}

// pipelineOver assembles a pipeline over a pre-built indexer (buildPipeline
// builds its own).
func pipelineOver(t *testing.T, lake *datalake.Lake, ix *Indexer) *Pipeline {
	t.Helper()
	registry := rerank.NewRegistry(rerank.NewColBERT(ix.Embedder(), 128))
	agent := verify.NewAgent(verify.NewExactVerifier())
	p, err := NewPipeline(lake, ix, registry, agent, provenance.NewStore(), nil, DefaultPipelineConfig())
	if err != nil {
		t.Fatal(err)
	}
	return p
}
