package core

import (
	"fmt"
	"testing"

	"repro/internal/claims"
	"repro/internal/datalake"
	"repro/internal/verify"
)

func TestVerifyBatchMatchesSequential(t *testing.T) {
	lake := smallLake(t)
	p := buildPipeline(t, lake, true)
	e1, _ := lake.Table("e1")

	var objects []verify.Generated
	for row := 0; row < e1.NumRows(); row++ {
		tp, _ := e1.TupleAt(row)
		objects = append(objects, verify.NewTupleObject(fmt.Sprintf("b%d", row), tp, "money"))
	}
	objects = append(objects, golfClaimObject())

	seq := make([]Report, len(objects))
	for i, g := range objects {
		rep, err := p.Verify(g, datalake.KindTuple, datalake.KindTable)
		if err != nil {
			t.Fatal(err)
		}
		seq[i] = rep
	}

	par, err := p.VerifyBatch(objects, 4, datalake.KindTuple, datalake.KindTable)
	if err != nil {
		t.Fatal(err)
	}
	if len(par) != len(seq) {
		t.Fatalf("batch returned %d reports", len(par))
	}
	for i := range seq {
		if par[i].Verdict != seq[i].Verdict {
			t.Errorf("object %d: batch %v vs sequential %v", i, par[i].Verdict, seq[i].Verdict)
		}
		if len(par[i].Evidence) != len(seq[i].Evidence) {
			t.Errorf("object %d: evidence counts differ", i)
		}
	}
}

func TestVerifyBatchEdgeCases(t *testing.T) {
	lake := smallLake(t)
	p := buildPipeline(t, lake, true)

	// Empty input.
	if reps, err := p.VerifyBatch(nil, 4); reps != nil || err != nil {
		t.Errorf("empty batch = %v, %v", reps, err)
	}
	// parallelism < 1 degrades to sequential.
	reps, err := p.VerifyBatch([]verify.Generated{golfClaimObject()}, 0, datalake.KindTable)
	if err != nil || len(reps) != 1 || reps[0].Verdict != verify.Refuted {
		t.Errorf("sequential fallback = %v, %v", reps, err)
	}
}

func TestVerifyBatchPropagatesErrors(t *testing.T) {
	lake := smallLake(t)
	// An agent whose local verifier rejects its pairs surfaces an error.
	indexer, err := BuildIndexer(lake, DefaultIndexerConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	p := buildPipeline(t, lake, true)

	// Build a claim object that causes pipeline failure indirectly is hard;
	// instead verify that an unresolvable evidence path cannot happen here
	// and use a broken verifier via a fresh pipeline.
	_ = indexer
	badAgent := verify.NewAgent(failingVerifier{})
	bp, err := NewPipeline(lake, p.Indexer(), p.rerankers, badAgent, nil, nil, DefaultPipelineConfig())
	if err != nil {
		t.Fatal(err)
	}
	_, err = bp.VerifyBatch([]verify.Generated{golfClaimObject(), golfClaimObject()}, 2, datalake.KindTable)
	if err == nil {
		t.Error("batch swallowed verifier error")
	}
}

// failingVerifier always errors, for error-path tests.
type failingVerifier struct{}

func (failingVerifier) Name() string                                  { return "failing" }
func (failingVerifier) Supports(verify.Generated, datalake.Kind) bool { return true }
func (failingVerifier) Verify(verify.Generated, datalake.Instance) (verify.Result, error) {
	return verify.Result{}, fmt.Errorf("synthetic failure")
}

func TestVerifyBatchLargeParallel(t *testing.T) {
	lake := smallLake(t)
	p := buildPipeline(t, lake, true)
	var objects []verify.Generated
	for i := 0; i < 40; i++ {
		c := claims.Claim{
			Context:   "1954 u.s. open (golf)",
			Entities:  []string{"tommy bolt"},
			Attribute: "money",
			Op:        claims.OpLookup,
			Value:     fmt.Sprintf("%d", 500+i),
		}
		c.Render()
		objects = append(objects, verify.NewClaimObject(fmt.Sprintf("c%d", i), c))
	}
	reps, err := p.VerifyBatch(objects, 8, datalake.KindTable)
	if err != nil {
		t.Fatal(err)
	}
	for i, rep := range reps {
		want := verify.Refuted
		if 500+i == 570 {
			want = verify.Verified
		}
		if rep.Verdict != want {
			t.Errorf("claim %d verdict = %v, want %v", i, rep.Verdict, want)
		}
	}
	// Provenance recorded every run exactly once.
	if got := p.Provenance().Len(); got != len(objects) {
		t.Errorf("provenance records = %d, want %d", got, len(objects))
	}
}
