package core

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/datalake"
	"repro/internal/verify"
)

// VerifyBatch verifies many generated objects concurrently, preserving input
// order in the returned reports. parallelism bounds the number of in-flight
// verifications (values < 1 mean sequential). The first error stops new work
// from being dispatched and is returned.
//
// The pipeline is safe for concurrent verification: the lake and every index
// structure are internally synchronized (ingestion may even proceed while a
// batch runs), the embedder cache and the provenance store are concurrent,
// and verdict resolution is per-object.
func (p *Pipeline) VerifyBatch(objects []verify.Generated, parallelism int, kinds ...datalake.Kind) ([]Report, error) {
	return p.VerifyBatchCtx(context.Background(), objects, parallelism, kinds...)
}

// VerifyBatchCtx is VerifyBatch honoring a request context: cancellation
// stops new objects from being dispatched and aborts each in-flight
// verification at its next stage boundary, returning the context's error.
// Individual objects hit the verify-result cache exactly as VerifyCtx does.
func (p *Pipeline) VerifyBatchCtx(ctx context.Context, objects []verify.Generated, parallelism int, kinds ...datalake.Kind) ([]Report, error) {
	if len(objects) == 0 {
		return nil, nil
	}
	if parallelism < 1 {
		parallelism = 1
	}
	if parallelism > len(objects) {
		parallelism = len(objects)
	}

	reports := make([]Report, len(objects))
	jobs := make(chan int)

	var (
		mu       sync.Mutex
		firstErr error
		wg       sync.WaitGroup
	)
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
	}
	failed := func() bool {
		mu.Lock()
		defer mu.Unlock()
		return firstErr != nil
	}

	// Each in-flight verification runs its evidence sequentially when the
	// batch itself is parallel, so verifier concurrency stays at the
	// requested bound instead of multiplying by cfg.VerifyWorkers. (The
	// retrieval stage inside each verification still uses its own
	// short-lived fan-out; those goroutines are multiplexed onto GOMAXPROCS
	// by the scheduler, so actual CPU parallelism stays machine-bounded.)
	evidenceWorkers := p.cfg.VerifyWorkers
	if parallelism > 1 {
		evidenceWorkers = 1
	}
	eff := p.normalizeKinds(kinds)
	for w := 0; w < parallelism; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				if failed() {
					continue // drain without working
				}
				rep, err := p.verifyCached(ctx, objects[i], evidenceWorkers, eff)
				if err != nil {
					fail(fmt.Errorf("core: verify object %d (%s): %w", i, objects[i].ID, err))
					continue
				}
				reports[i] = rep
			}
		}()
	}
	for i := range objects {
		if failed() || ctx.Err() != nil {
			break
		}
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	// A cancellation that stopped dispatch without any worker observing it
	// leaves undispatched zero-value reports; surface the context error
	// rather than returning a silently partial batch.
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return reports, nil
}
