package core

import (
	"strings"
	"testing"

	"repro/internal/claims"
	"repro/internal/datalake"
	"repro/internal/doc"
	"repro/internal/kg"
	"repro/internal/provenance"
	"repro/internal/rerank"
	"repro/internal/table"
	"repro/internal/verify"
)

// smallLake builds a lake with the Figure 4 tables, a couple of distractor
// tables, an entity page, and KG triples.
func smallLake(t *testing.T) *datalake.Lake {
	t.Helper()
	l := datalake.New()
	l.AddSource(datalake.Source{ID: "s1", Name: "tables", TrustPrior: 0.8})
	l.AddSource(datalake.Source{ID: "s2", Name: "texts", TrustPrior: 0.7})

	e1 := table.New("e1", "1954 u.s. open (golf)", []string{"place", "player", "country", "money"})
	e1.SourceID = "s1"
	e1.MustAppendRow("t1", "ed furgol", "united states", "6000")
	e1.MustAppendRow("t6", "tommy bolt", "united states", "570")
	e1.MustAppendRow("t6", "fred haas", "united states", "570")
	e1.MustAppendRow("t6", "ben hogan", "united states", "570")

	e2 := table.New("e2", "1959 u.s. open (golf)", []string{"player", "country", "total"})
	e2.SourceID = "s1"
	e2.MustAppendRow("ben hogan", "united states", "287")
	e2.MustAppendRow("tommy bolt", "united states", "301")

	d1 := table.New("d1", "climate of dover kansas", []string{"month", "record high"})
	d1.SourceID = "s1"
	d1.MustAppendRow("january", "55")
	d1.MustAppendRow("july", "101")

	for _, tbl := range []*table.Table{e1, e2, d1} {
		if err := l.AddTable(tbl); err != nil {
			t.Fatal(err)
		}
	}

	page := &doc.Document{
		ID: "doc1", Title: "Tommy Bolt", SourceID: "s2",
		Text: "Tommy Bolt is a united states golfer. In the 1954 u.s. open (golf), Tommy Bolt recorded a money of 570.",
	}
	if err := l.AddDocument(page); err != nil {
		t.Fatal(err)
	}
	l.AddTriple(kg.Triple{Subject: "tommy bolt", Predicate: "money of 1954 u.s. open (golf)", Object: "570", SourceID: "s1"})
	return l
}

func buildPipeline(t *testing.T, lake *datalake.Lake, useReranker bool) *Pipeline {
	t.Helper()
	indexer, err := BuildIndexer(lake, DefaultIndexerConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	registry := rerank.NewRegistry(rerank.NewColBERT(indexer.Embedder(), 128))
	agent := verify.NewAgent(verify.NewExactVerifier())
	cfg := DefaultPipelineConfig()
	cfg.UseReranker = useReranker
	p, err := NewPipeline(lake, indexer, registry, agent, provenance.NewStore(), nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func golfClaimObject() verify.Generated {
	c := claims.Claim{
		Context:   "1954 u.s. open (golf)",
		Entities:  []string{"tommy bolt", "fred haas", "ben hogan"},
		Attribute: "cash prize",
		Op:        claims.OpSum,
		Value:     "960",
	}
	c.Render()
	return verify.NewClaimObject("golf", c)
}

func TestBuildIndexerValidation(t *testing.T) {
	lake := smallLake(t)
	if _, err := BuildIndexer(lake, IndexerConfig{EmbedDim: 8}); err == nil {
		t.Error("indexer with no families accepted")
	}
	cfg := DefaultIndexerConfig(1)
	cfg.Vector = VectorIndexKind(42)
	if _, err := BuildIndexer(lake, cfg); err == nil {
		t.Error("unknown vector kind accepted")
	}
}

func TestIndexerRetrieveKinds(t *testing.T) {
	lake := smallLake(t)
	ix, err := BuildIndexer(lake, DefaultIndexerConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	// Kind filter: table-only retrieval returns only table instances.
	_, ids := ix.Retrieve("1954 golf tommy bolt money", 5, datalake.KindTable)
	if len(ids) == 0 {
		t.Fatal("no table hits")
	}
	for _, id := range ids {
		if k, _ := datalake.KindOf(id); k != datalake.KindTable {
			t.Errorf("non-table instance %q in table retrieval", id)
		}
	}
	if ids[0] != "table:e1" {
		t.Errorf("top table = %s, want table:e1", ids[0])
	}
	// All-kind retrieval mixes modalities.
	_, all := ix.Retrieve("tommy bolt 1954 money", 10)
	kinds := map[datalake.Kind]bool{}
	for _, id := range all {
		k, _ := datalake.KindOf(id)
		kinds[k] = true
	}
	if len(kinds) < 3 {
		t.Errorf("all-kind retrieval returned kinds %v", kinds)
	}
}

func TestIndexerRetrieveFamily(t *testing.T) {
	lake := smallLake(t)
	ix, err := BuildIndexer(lake, DefaultIndexerConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	bm25 := ix.RetrieveFamily("tommy bolt 1954", "bm25", 3, datalake.KindTable)
	vec := ix.RetrieveFamily("tommy bolt 1954", "vector", 3, datalake.KindTable)
	if len(bm25) == 0 || len(vec) == 0 {
		t.Fatalf("family retrieval empty: bm25=%v vec=%v", bm25, vec)
	}
	if got := ix.RetrieveFamily("q", "unknown-family", 3); got != nil {
		t.Errorf("unknown family returned %v", got)
	}
}

func TestIndexerBM25OnlyAndVectorOnly(t *testing.T) {
	lake := smallLake(t)
	cfg := DefaultIndexerConfig(1)
	cfg.EnableVector = false
	ix, err := BuildIndexer(lake, cfg)
	if err != nil {
		t.Fatal(err)
	}
	_, ids := ix.Retrieve("tommy bolt", 3, datalake.KindTuple)
	if len(ids) == 0 {
		t.Error("bm25-only retrieval empty")
	}

	cfg2 := DefaultIndexerConfig(1)
	cfg2.EnableBM25 = false
	ix2, err := BuildIndexer(lake, cfg2)
	if err != nil {
		t.Fatal(err)
	}
	_, ids2 := ix2.Retrieve("tommy bolt united states golfer", 3, datalake.KindText)
	if len(ids2) == 0 {
		t.Error("vector-only retrieval empty")
	}
}

func TestIndexerIVFAndLSHVariants(t *testing.T) {
	lake := smallLake(t)
	for _, kind := range []VectorIndexKind{VectorIVF, VectorLSH} {
		cfg := DefaultIndexerConfig(1)
		cfg.Vector = kind
		cfg.IVFLists = 2
		cfg.IVFProbes = 2
		ix, err := BuildIndexer(lake, cfg)
		if err != nil {
			t.Fatalf("%d: %v", int(kind), err)
		}
		_, ids := ix.Retrieve("1954 golf money tommy bolt", 3, datalake.KindTable)
		if len(ids) == 0 {
			t.Errorf("vector kind %d: no hits", int(kind))
		}
	}
}

func TestIndexerChunking(t *testing.T) {
	lake := smallLake(t)
	cfg := DefaultIndexerConfig(1)
	cfg.ChunkTokens = 8
	ix, err := BuildIndexer(lake, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Chunk hits must be mapped back to their parent document instance.
	_, ids := ix.Retrieve("tommy bolt golfer", 5, datalake.KindText)
	for _, id := range ids {
		if strings.Contains(id, "@") {
			t.Errorf("chunk id leaked: %q", id)
		}
	}
	if len(ids) == 0 {
		t.Error("chunked retrieval empty")
	}
}

func TestChunkParent(t *testing.T) {
	tests := []struct{ in, want string }{
		{"text:doc-1@2", "text:doc-1"},
		{"text:doc-1@12", "text:doc-1"},
		{"text:doc-1", "text:doc-1"},
		{"table:t@x", "table:t@x"}, // non-numeric suffix untouched
	}
	for _, tc := range tests {
		if got := chunkParent(tc.in); got != tc.want {
			t.Errorf("chunkParent(%q) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

func TestPipelineVerifyFigure4(t *testing.T) {
	lake := smallLake(t)
	p := buildPipeline(t, lake, true)
	rep, err := p.Verify(golfClaimObject(), datalake.KindTable)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Verdict != verify.Refuted {
		t.Fatalf("final verdict = %v", rep.Verdict)
	}
	if rep.Confidence <= 0 {
		t.Errorf("confidence = %v", rep.Confidence)
	}
	// E1 refutes, E2 not related.
	verdicts := map[string]verify.Verdict{}
	for _, ev := range rep.Evidence {
		verdicts[ev.Instance.ID] = ev.Result.Verdict
	}
	if verdicts["table:e1"] != verify.Refuted {
		t.Errorf("E1 verdict = %v", verdicts["table:e1"])
	}
	if v, ok := verdicts["table:e2"]; ok && v != verify.NotRelated {
		t.Errorf("E2 verdict = %v", v)
	}
	// Provenance recorded the run.
	if rep.ProvenanceSeq < 0 {
		t.Fatal("no provenance seq")
	}
	rec, ok := p.Provenance().Get(rep.ProvenanceSeq)
	if !ok || rec.FinalVerdict != "Refuted" || len(rec.Decisions) == 0 {
		t.Errorf("provenance record = %+v", rec)
	}
	if rec.Resolution != "trust-weighted majority" {
		t.Errorf("resolution = %q", rec.Resolution)
	}
}

func TestPipelineVerifyTupleObject(t *testing.T) {
	lake := smallLake(t)
	p := buildPipeline(t, lake, true)
	e1, _ := lake.Table("e1")
	tp, _ := e1.TupleAt(1)

	// Correct value: Verified via counterpart tuple + entity page.
	g := verify.NewTupleObject("g-ok", tp, "money")
	rep, err := p.Verify(g, datalake.KindTuple, datalake.KindText)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Verdict != verify.Verified {
		t.Errorf("correct tuple verdict = %v", rep.Verdict)
	}

	// Wrong value: Refuted.
	bad := tp.WithValue("money", "999")
	g2 := verify.NewTupleObject("g-bad", bad, "money")
	rep2, err := p.Verify(g2, datalake.KindTuple, datalake.KindText)
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Verdict != verify.Refuted {
		t.Errorf("wrong tuple verdict = %v", rep2.Verdict)
	}
}

func TestPipelineVerifyEntityEvidence(t *testing.T) {
	lake := smallLake(t)
	p := buildPipeline(t, lake, true)
	e1, _ := lake.Table("e1")
	tp, _ := e1.TupleAt(1)
	g := verify.NewTupleObject("g-kg", tp, "money")
	rep, err := p.Verify(g, datalake.KindEntity)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Verdict != verify.Verified {
		t.Errorf("KG evidence verdict = %v", rep.Verdict)
	}
}

func TestPipelineNoRerankerStillWorks(t *testing.T) {
	lake := smallLake(t)
	p := buildPipeline(t, lake, false)
	rep, err := p.Verify(golfClaimObject(), datalake.KindTable)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Verdict != verify.Refuted {
		t.Errorf("no-reranker verdict = %v", rep.Verdict)
	}
}

func TestPipelineNoEvidenceIsNotRelated(t *testing.T) {
	lake := smallLake(t)
	p := buildPipeline(t, lake, true)
	c := claims.Claim{
		Context:   "a relation that does not exist anywhere",
		Entities:  []string{"nobody at all"},
		Attribute: "height",
		Op:        claims.OpLookup,
		Value:     "12",
	}
	c.Render()
	rep, err := p.Verify(verify.NewClaimObject("g-none", c), datalake.KindTable)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Verdict != verify.NotRelated {
		t.Errorf("no-evidence verdict = %v", rep.Verdict)
	}
	if rep.Confidence != 0 {
		t.Errorf("no-evidence confidence = %v", rep.Confidence)
	}
}

func TestPipelineSourceTrust(t *testing.T) {
	lake := smallLake(t)
	p := buildPipeline(t, lake, true)
	if got := p.SourceTrust("s1"); got != 0.8 {
		t.Errorf("lake prior trust = %v", got)
	}
	if got := p.SourceTrust("unknown"); got != 0.5 {
		t.Errorf("default trust = %v", got)
	}
	p.SetSourceTrust("s1", 0.3)
	if got := p.SourceTrust("s1"); got != 0.3 {
		t.Errorf("override trust = %v", got)
	}
}

func TestNewPipelineValidation(t *testing.T) {
	lake := smallLake(t)
	ix, _ := BuildIndexer(lake, DefaultIndexerConfig(1))
	reg := rerank.NewRegistry(rerank.NewColBERT(ix.Embedder(), 64))
	agent := verify.NewAgent(verify.NewExactVerifier())
	if _, err := NewPipeline(nil, ix, reg, agent, nil, nil, DefaultPipelineConfig()); err == nil {
		t.Error("nil lake accepted")
	}
	bad := DefaultPipelineConfig()
	bad.TopK = 0
	if _, err := NewPipeline(lake, ix, reg, agent, nil, nil, bad); err == nil {
		t.Error("TopK=0 accepted")
	}
}

func TestPipelineNilProvenance(t *testing.T) {
	lake := smallLake(t)
	ix, _ := BuildIndexer(lake, DefaultIndexerConfig(1))
	reg := rerank.NewRegistry(rerank.NewColBERT(ix.Embedder(), 64))
	agent := verify.NewAgent(verify.NewExactVerifier())
	p, err := NewPipeline(lake, ix, reg, agent, nil, nil, DefaultPipelineConfig())
	if err != nil {
		t.Fatal(err)
	}
	rep, err := p.Verify(golfClaimObject(), datalake.KindTable)
	if err != nil {
		t.Fatal(err)
	}
	if rep.ProvenanceSeq != -1 {
		t.Errorf("provenance seq with nil store = %d", rep.ProvenanceSeq)
	}
}

func TestCombineRRF(t *testing.T) {
	hits := []provenance.RetrievalHit{
		{Index: "bm25", InstanceID: "a", Rank: 0},
		{Index: "bm25", InstanceID: "b", Rank: 1},
		{Index: "vector", InstanceID: "b", Rank: 0},
		{Index: "vector", InstanceID: "c", Rank: 1},
	}
	got := combine(hits)
	// b appears in both lists (1/61 + 1/60) and must beat a (1/60) and c (1/61).
	if len(got) != 3 || got[0] != "b" || got[1] != "a" || got[2] != "c" {
		t.Errorf("combine = %v", got)
	}
	if combine(nil) != nil {
		t.Error("combine(nil) != nil")
	}
}

// TestPipelineSurfacesLakeDrift: if an instance the index returns can no
// longer be resolved against the lake (index/lake drift), Verify fails
// loudly instead of silently skipping evidence.
func TestPipelineSurfacesLakeDrift(t *testing.T) {
	lake := smallLake(t)
	indexer, err := BuildIndexer(lake, DefaultIndexerConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	// Build a second, smaller lake missing table e1 but reuse the big
	// lake's indexer: hits for e1 will not resolve.
	drifted := datalake.New()
	drifted.AddSource(datalake.Source{ID: "s1", Name: "tables"})
	e2, _ := lake.Table("e2")
	if err := drifted.AddTable(e2); err != nil {
		t.Fatal(err)
	}
	registry := rerank.NewRegistry(rerank.NewColBERT(indexer.Embedder(), 64))
	agent := verify.NewAgent(verify.NewExactVerifier())
	p, err := NewPipeline(drifted, indexer, registry, agent, nil, nil, DefaultPipelineConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Verify(golfClaimObject(), datalake.KindTable); err == nil {
		t.Error("lake drift went unnoticed")
	}
}
