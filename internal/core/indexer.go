// Package core assembles VerifAI's pipeline — Indexer, Combiner, Reranker,
// and Verifier Agent (Figures 2 and 3 of the paper) — into an end-to-end
// verification service over a live multi-modal data lake, with provenance
// recording and trust-weighted verdict resolution.
package core

import (
	"context"
	"fmt"
	"io"
	"runtime"
	"sort"
	"sync"
	"time"

	"repro/internal/datalake"
	"repro/internal/doc"
	"repro/internal/embed"
	"repro/internal/invindex"
	"repro/internal/obs"
	"repro/internal/provenance"
	"repro/internal/table"
	"repro/internal/vecindex"
)

// VectorIndexKind selects the semantic index implementation.
type VectorIndexKind int

const (
	// VectorFlat is exact brute-force search (Faiss IndexFlat).
	VectorFlat VectorIndexKind = iota
	// VectorIVF is inverted-file search over k-means cells (Faiss IVF-Flat).
	VectorIVF
	// VectorLSH is random-hyperplane hashing (Faiss IndexLSH).
	VectorLSH
)

// vectorIndex is the write+search+persist interface all vecindex types
// satisfy. Freeze captures the index cheaply under its read lock for the
// checkpoint fork phase; Save is Freeze+serialize in one call.
type vectorIndex interface {
	vecindex.Searcher
	Add(id string, v embed.Vector) error
	Remove(id string) bool
	Save(w io.Writer) error
	Freeze() vecindex.Frozen
}

// IndexerConfig controls index construction.
type IndexerConfig struct {
	// Seed drives the embedding space and IVF/LSH randomness.
	Seed uint64
	// EmbedDim is the embedding dimension (default 64).
	EmbedDim int
	// EnableBM25 turns on the content-based index (default on via
	// DefaultIndexerConfig).
	EnableBM25 bool
	// EnableVector turns on the semantic index.
	EnableVector bool
	// Vector selects the semantic index implementation.
	Vector VectorIndexKind
	// IVFLists / IVFProbes parameterize VectorIVF.
	IVFLists  int
	IVFProbes int
	// LSHBits / LSHTables parameterize VectorLSH.
	LSHBits   int
	LSHTables int
	// Quantize stores VectorFlat shards as int8 scalar-quantized codes
	// scanned approximately and re-ranked exactly (vecindex.SQFlat) —
	// a memory-bandwidth optimization for large flat shards. Only valid
	// with VectorFlat.
	Quantize bool
	// RerankMultiple is the quantized scan's candidate multiple: the
	// approximate pass keeps RerankMultiple×k candidates for exact
	// re-ranking. <= 0 means vecindex.DefaultRerank. A runtime accuracy
	// knob: it does not change the snapshot layout.
	RerankMultiple int
	// Kinds lists the instance granularities to index. Tables are indexed
	// whole AND per-tuple when both kinds are present, matching the paper's
	// lake of tuples, tables, and text.
	Kinds []datalake.Kind
	// ChunkTokens bounds text chunks for the semantic index (the paper's
	// "chunked text files"); <= 0 indexes whole documents.
	ChunkTokens int
	// Shards is the number of hash shards per (kind, index family) pair.
	// Instance IDs hash to a shard; retrieval fans out across shards in
	// parallel and merges shard results by score, so shards bound
	// per-worker search cost and keep searches on other shards unblocked
	// while one shard takes an ingest write lock. (Ingest itself is
	// serialized by the lake's write lock for event ordering, so shards
	// raise read concurrency, not write throughput.) <= 0 means 1 (the
	// unsharded seed layout). Note that BM25 collection statistics (IDF,
	// average document length) are shard-local, as in a distributed
	// Elasticsearch deployment.
	Shards int
	// RetrieveWorkers bounds the worker pool that fans retrieval out across
	// shards × kinds × index families; <= 0 means GOMAXPROCS.
	RetrieveWorkers int
	// QueryCacheSize is the capacity of the query-embedding LRU cache shared
	// by all retrievals; <= 0 disables the cache. Repeated queries (the
	// heavy-traffic case) skip the embedding computation entirely.
	QueryCacheSize int
}

// DefaultIndexerConfig indexes every modality with both index families.
// Shards defaults to 1 so single-shard results are bit-identical to the
// original unsharded layout; services expecting ingest-heavy or very large
// lakes should raise it.
func DefaultIndexerConfig(seed uint64) IndexerConfig {
	return IndexerConfig{
		Seed:         seed,
		EmbedDim:     128,
		EnableBM25:   true,
		EnableVector: true,
		Vector:       VectorFlat,
		IVFLists:     64,
		IVFProbes:    8,
		LSHBits:      16,
		LSHTables:    8,
		Kinds: []datalake.Kind{
			datalake.KindTable, datalake.KindTuple, datalake.KindText, datalake.KindEntity,
		},
		ChunkTokens:    0,
		Shards:         1,
		QueryCacheSize: 256,
	}
}

// Indexer is VerifAI's Indexer module: task-agnostic content-based (BM25)
// and semantic-based (vector) indexes over lake instances, partitioned by
// modality so retrieval can target the data types a task needs, and sharded
// by instance-ID hash so searches fan out in parallel and concurrent ingest
// spreads lock contention.
//
// The indexer is live: BuildIndexer subscribes it to the lake's change feed,
// so instances ingested after construction become retrievable immediately,
// with no rebuild. All methods are safe for concurrent use.
type Indexer struct {
	lake *datalake.Lake
	emb  *embed.Embedder
	cfg  IndexerConfig

	bm25 map[datalake.Kind][]*invindex.Index
	vec  map[datalake.Kind][]vectorIndex

	qcache      *queryCache
	workers     int
	unsubscribe func()

	// appliers are the per-shard applier goroutines' task queues; shard
	// ordinal s (across every kind and index family) is applied only by
	// appliers[s], fed in lake-version order by the lake's dispatcher.
	appliers  []chan applyTask
	applierWG sync.WaitGroup
	closeOnce sync.Once

	// m holds the per-family shard-search latency handles; the zero value
	// records nothing. Deliberately NOT part of IndexerConfig: the config
	// participates in snapshot fingerprinting, metrics must not.
	m indexerMetrics
}

// indexerMetrics pre-resolves the per-family children of the shard-search
// histogram vec so the search fan-out's hot closures never render labels.
type indexerMetrics struct {
	searchBM25   *obs.Histogram
	searchVector *obs.Histogram
}

// SetMetrics registers the indexer's retrieval metrics with reg. Call it
// once at assembly, before traffic.
func (ix *Indexer) SetMetrics(reg *obs.Registry) {
	vec := reg.HistogramVec("verifai_shard_search_seconds",
		"Latency of one shard search, labeled by index family.", "family")
	ix.m.searchBM25 = vec.With(familyBM25)
	ix.m.searchVector = vec.With(familyVector)
}

// newIndexer normalizes cfg and builds the indexer's empty structures —
// the construction shared by BuildIndexer (which then bulk-indexes the
// lake) and BuildIndexerFromSnapshot (which loads persisted shards). The
// normalized config is written back through cfg so both paths fingerprint
// identically.
func newIndexer(lake *datalake.Lake, cfg *IndexerConfig) (*Indexer, error) {
	if cfg.EmbedDim <= 0 {
		cfg.EmbedDim = 64
	}
	if cfg.Shards <= 0 {
		cfg.Shards = 1
	}
	if !cfg.EnableBM25 && !cfg.EnableVector {
		return nil, fmt.Errorf("core: indexer needs at least one index family enabled")
	}
	if cfg.Quantize && cfg.Vector != VectorFlat {
		return nil, fmt.Errorf("core: Quantize requires VectorFlat (got kind %d)", int(cfg.Vector))
	}
	workers := cfg.RetrieveWorkers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	ix := &Indexer{
		lake:    lake,
		emb:     embed.NewEmbedder(cfg.EmbedDim, cfg.Seed),
		cfg:     *cfg,
		bm25:    make(map[datalake.Kind][]*invindex.Index),
		vec:     make(map[datalake.Kind][]vectorIndex),
		qcache:  newQueryCache(cfg.QueryCacheSize),
		workers: workers,
	}
	for _, kind := range cfg.Kinds {
		if cfg.EnableBM25 {
			shards := make([]*invindex.Index, cfg.Shards)
			for i := range shards {
				shards[i] = invindex.New()
			}
			ix.bm25[kind] = shards
		}
		if cfg.EnableVector {
			shards := make([]vectorIndex, cfg.Shards)
			for i := range shards {
				v, err := ix.newVectorIndex()
				if err != nil {
					return nil, err
				}
				shards[i] = v
			}
			ix.vec[kind] = shards
		}
	}
	return ix, nil
}

// BuildIndexer indexes the lake's current instances per cfg and subscribes
// to the lake's change feed for incremental maintenance: tables, documents,
// and triples added to the lake afterwards are indexed as they arrive.
func BuildIndexer(lake *datalake.Lake, cfg IndexerConfig) (*Indexer, error) {
	ix, err := newIndexer(lake, &cfg)
	if err != nil {
		return nil, err
	}
	ix.startAppliers()
	// Bulk-index the current lake contents and subscribe to the change feed
	// atomically: SubscribeSync quiesces the lake (write lock held, event
	// queue drained) across both, so a concurrent ingest can never land
	// between the snapshot walk and the subscription (it would be neither
	// bulk-indexed nor delivered). Live events then flow through the
	// pipelined prepare/apply stages (see applier.go).
	unsubscribe, err := lake.SubscribeSync(func() error {
		if err := ix.ingest(); err != nil {
			return err
		}
		// Train IVF cells after bulk load. Vectors added afterwards are
		// assigned to their nearest trained cell by vecindex.IVF.Add.
		if cfg.EnableVector && cfg.Vector == VectorIVF {
			for _, shards := range ix.vec {
				for _, v := range shards {
					if ivf, ok := v.(*vecindex.IVF); ok {
						ivf.Train()
					}
				}
			}
		}
		return nil
	}, datalake.Subscriber{Prepare: ix.prepareHook, Apply: ix.apply})
	if err != nil {
		ix.stopAppliers()
		return nil, err
	}
	ix.unsubscribe = unsubscribe
	return ix, nil
}

// Close detaches the indexer from the lake's change feed and shuts its
// per-shard appliers down after draining their queues. A replaced or
// abandoned indexer must be closed, or every future ingest keeps feeding
// (and growing) its dead index structures. The indexes remain searchable
// after Close; they just stop updating. Idempotent.
func (ix *Indexer) Close() {
	ix.closeOnce.Do(func() {
		if ix.unsubscribe != nil {
			// Blocks until any in-flight delivery has returned, so no task
			// can be enqueued after the applier queues close.
			ix.unsubscribe()
		}
		ix.stopAppliers()
	})
}

// stopAppliers closes the applier queues and waits for queued tasks to
// drain (their completions still reach the lake's version watermark).
func (ix *Indexer) stopAppliers() {
	for _, ch := range ix.appliers {
		close(ch)
	}
	ix.applierWG.Wait()
}

// Embedder exposes the shared embedding space (the reranker uses the same
// space for late interaction).
func (ix *Indexer) Embedder() *embed.Embedder { return ix.emb }

func (ix *Indexer) newVectorIndex() (vectorIndex, error) {
	switch ix.cfg.Vector {
	case VectorFlat:
		if ix.cfg.Quantize {
			return vecindex.NewSQFlat(ix.cfg.EmbedDim, vecindex.Cosine, ix.cfg.RerankMultiple), nil
		}
		return vecindex.NewFlat(ix.cfg.EmbedDim, vecindex.Cosine), nil
	case VectorIVF:
		return vecindex.NewIVF(ix.cfg.EmbedDim, vecindex.Cosine, ix.cfg.IVFLists, ix.cfg.IVFProbes, ix.cfg.Seed), nil
	case VectorLSH:
		return vecindex.NewLSH(ix.cfg.EmbedDim, ix.cfg.LSHBits, ix.cfg.LSHTables, ix.cfg.Seed), nil
	default:
		return nil, fmt.Errorf("core: unknown vector index kind %d", int(ix.cfg.Vector))
	}
}

// wantKind reports whether the config indexes this granularity.
func (ix *Indexer) wantKind(kind datalake.Kind) bool {
	for _, k := range ix.cfg.Kinds {
		if k == kind {
			return true
		}
	}
	return false
}

// shard maps an instance ID to its shard ordinal (inline FNV-1a: the
// hasher sits on the per-instance ingest hot path, and hash/fnv's
// interface-based API would allocate on every call).
func (ix *Indexer) shard(id string) int {
	if ix.cfg.Shards <= 1 {
		return 0
	}
	h := uint32(2166136261)
	for i := 0; i < len(id); i++ {
		h ^= uint32(id[i])
		h *= 16777619
	}
	return int(h % uint32(ix.cfg.Shards))
}

// ingest walks the lake and feeds both index families.
func (ix *Indexer) ingest() error {
	if ix.wantKind(datalake.KindTable) || ix.wantKind(datalake.KindTuple) {
		for _, tid := range ix.lake.TableIDs() {
			t, ok := ix.lake.Table(tid)
			if !ok {
				return fmt.Errorf("core: lake table %q vanished during ingest", tid)
			}
			if err := ix.indexTable(t); err != nil {
				return err
			}
		}
	}
	if ix.wantKind(datalake.KindText) {
		for _, did := range ix.lake.DocIDs() {
			d, ok := ix.lake.Document(did)
			if !ok {
				return fmt.Errorf("core: lake document %q vanished during ingest", did)
			}
			if err := ix.indexDocument(d); err != nil {
				return err
			}
		}
	}
	if ix.wantKind(datalake.KindEntity) {
		g := ix.lake.Graph()
		for _, e := range g.Entities() {
			id := datalake.EntityInstanceID(e)
			if err := ix.add(datalake.KindEntity, id, g.SerializeEntity(e)); err != nil {
				return err
			}
		}
	}
	return nil
}

// indexTable indexes a table whole and/or per tuple, per the configured
// kinds (bulk-load path). It runs the same prepare/apply implementation as
// the live pipeline, just synchronously on the calling goroutine.
func (ix *Indexer) indexTable(t *table.Table) error {
	pe := ix.prepareEvent(datalake.Event{Kind: datalake.KindTable, Table: t})
	return ix.applyOps(pe.bm25, pe.vec)
}

// indexDocument indexes a text document (whole for BM25, chunked for the
// vector family when configured), sharing the live path's implementation.
func (ix *Indexer) indexDocument(d *doc.Document) error {
	pe := ix.prepareEvent(datalake.Event{Kind: datalake.KindText, Doc: d})
	return ix.applyOps(pe.bm25, pe.vec)
}

// add indexes one instance in both families, on the instance's shard.
func (ix *Indexer) add(kind datalake.Kind, id, text string) error {
	if shards, ok := ix.bm25[kind]; ok {
		if err := shards[ix.shard(id)].Add(id, text); err != nil {
			return fmt.Errorf("core: bm25 add %s: %w", id, err)
		}
	}
	if shards, ok := ix.vec[kind]; ok {
		if err := shards[ix.shard(id)].Add(id, ix.emb.EmbedText(text)); err != nil {
			return fmt.Errorf("core: vector add %s: %w", id, err)
		}
	}
	return nil
}

// remove drops one instance from both families (no-op for unindexed IDs).
// For chunked text instances the vector family stores per-chunk sub-IDs
// ("id@seq"), which are enumerated and removed individually.
func (ix *Indexer) remove(kind datalake.Kind, id string) {
	if shards, ok := ix.bm25[kind]; ok {
		shards[ix.shard(id)].Delete(id)
	}
	shards, ok := ix.vec[kind]
	if !ok {
		return
	}
	shards[ix.shard(id)].Remove(id)
	if kind == datalake.KindText && ix.cfg.ChunkTokens > 0 {
		// Chunk sequence numbers are contiguous from 0, so stop at the
		// first miss.
		for seq := 0; ; seq++ {
			chunkID := fmt.Sprintf("%s@%d", id, seq)
			if !shards[ix.shard(chunkID)].Remove(chunkID) {
				break
			}
		}
	}
}

// reindexEntity refreshes an entity's serialized neighborhood after a new
// triple about it arrived: the stale instance (if any) is tombstoned and the
// re-serialized neighborhood indexed in its place. The instance is keyed by
// the graph's canonical (first-seen) subject casing — the same key bulk
// ingest derives from Graph.Entities() — so a triple whose subject varies
// only in case updates the existing instance instead of forking a new one.
func (ix *Indexer) reindexEntity(entity string) error {
	if !ix.wantKind(datalake.KindEntity) {
		return nil
	}
	g := ix.lake.Graph()
	if canon, ok := g.Canonical(entity); ok {
		entity = canon
	}
	id := datalake.EntityInstanceID(entity)
	ix.remove(datalake.KindEntity, id)
	return ix.add(datalake.KindEntity, id, g.SerializeEntity(entity))
}

// queryVec embeds a query, consulting the LRU cache first.
func (ix *Indexer) queryVec(query string) embed.Vector {
	if ix.qcache != nil {
		if v, ok := ix.qcache.get(query); ok {
			return v
		}
	}
	v := ix.emb.EmbedText(query)
	if ix.qcache != nil {
		ix.qcache.put(query, v)
	}
	return v
}

// QueryCacheStats reports the query-embedding cache's hit/miss counters and
// current size (all zero when the cache is disabled), for tests and ops
// dashboards.
func (ix *Indexer) QueryCacheStats() (hits, misses uint64, size int) {
	if ix.qcache == nil {
		return 0, 0, 0
	}
	return ix.qcache.stats()
}

// scoredHit is one shard-local search result.
type scoredHit struct {
	id    string
	score float64
}

// retrGroup collects the shard results for one (kind, family) pair; shard
// lists merge by score into the group's final ranking.
type retrGroup struct {
	family    string
	shardHits [][]scoredHit
}

// merged flattens the group's shard lists into a single best-first list of
// at most k hits (score descending, ties by ascending ID — the same order
// each shard already emits).
func (g *retrGroup) merged(k int) []scoredHit {
	if len(g.shardHits) == 1 {
		return g.shardHits[0]
	}
	var all []scoredHit
	for _, hs := range g.shardHits {
		all = append(all, hs...)
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].score != all[j].score {
			return all[i].score > all[j].score
		}
		return all[i].id < all[j].id
	})
	if len(all) > k {
		all = all[:k]
	}
	return all
}

// runParallel executes tasks on a bounded worker pool (inline when the pool
// would be pointless).
func runParallel(tasks []func(), workers int) {
	if workers > len(tasks) {
		workers = len(tasks)
	}
	if workers <= 1 || len(tasks) <= 1 {
		for _, t := range tasks {
			t()
		}
		return
	}
	var wg sync.WaitGroup
	jobs := make(chan func())
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for t := range jobs {
				t()
			}
		}()
	}
	for _, t := range tasks {
		jobs <- t
	}
	close(jobs)
	wg.Wait()
}

// families selects which index families to search: both for Retrieve, one
// for RetrieveFamily.
const (
	familyBM25   = "bm25"
	familyVector = "vector"
)

// search fans retrieval out across shards × kinds × the requested families
// on the bounded worker pool, merges each (kind, family) group's shard
// results by score, and returns the ranked hits in deterministic group
// order (kinds as requested, BM25 before vector). A cancelled context
// makes unstarted shard searches no-ops, so an abandoned request drains
// the pool quickly; the (partial) hits of a cancelled search must be
// discarded by the caller, which owns surfacing ctx.Err().
func (ix *Indexer) search(ctx context.Context, query string, k int, kinds []datalake.Kind, wantBM25, wantVector bool) []provenance.RetrievalHit {
	return ix.searchShards(ctx, query, k, kinds, wantBM25, wantVector, ix.bm25, ix.vec)
}

// searchShards is search over explicit shard maps: the live indexes for
// head reads, or a pinned snapshot's materialized shards for time-travel
// reads. Everything else — the worker pool, the query-embedding cache,
// the per-family latency metrics, the merge order — is shared, so a
// pinned retrieval ranks exactly as a head retrieval over the same data.
func (ix *Indexer) searchShards(ctx context.Context, query string, k int, kinds []datalake.Kind, wantBM25, wantVector bool, bm25 map[datalake.Kind][]*invindex.Index, vec map[datalake.Kind][]vectorIndex) []provenance.RetrievalHit {
	if len(kinds) == 0 {
		kinds = ix.cfg.Kinds
	}
	// Embed the query only when some requested kind actually has a vector
	// index; BM25-only retrievals (and kinds outside the configured set)
	// skip the embedding computation entirely. The embedding depends only
	// on (query, seed), never on index contents, so head and pinned
	// retrievals share the same cache entry.
	var qvec embed.Vector
	if wantVector {
		needVec := false
		for _, kind := range kinds {
			if len(vec[kind]) > 0 {
				needVec = true
				break
			}
		}
		if needVec {
			qvec = ix.queryVec(query)
		}
	}

	// Analyze the query once; every BM25 shard shares the same chain, so
	// fan-out does not re-tokenize per shard.
	var qterms []string
	var groups []*retrGroup
	var tasks []func()
	for _, kind := range kinds {
		if wantBM25 {
			if shards := bm25[kind]; len(shards) > 0 {
				if qterms == nil {
					qterms = shards[0].Analyze(query)
				}
				g := &retrGroup{family: familyBM25, shardHits: make([][]scoredHit, len(shards))}
				groups = append(groups, g)
				for si, sh := range shards {
					si, sh := si, sh
					tasks = append(tasks, func() {
						if ctx.Err() != nil {
							return
						}
						start := time.Now()
						for _, h := range sh.SearchTerms(qterms, k) {
							g.shardHits[si] = append(g.shardHits[si], scoredHit{id: h.ID, score: h.Score})
						}
						ix.m.searchBM25.Since(start)
					})
				}
			}
		}
		if wantVector {
			if shards := vec[kind]; len(shards) > 0 {
				g := &retrGroup{family: familyVector, shardHits: make([][]scoredHit, len(shards))}
				groups = append(groups, g)
				for si, sh := range shards {
					si, sh := si, sh
					tasks = append(tasks, func() {
						if ctx.Err() != nil {
							return
						}
						start := time.Now()
						for _, h := range sh.Search(qvec, k) {
							g.shardHits[si] = append(g.shardHits[si], scoredHit{id: h.ID, score: h.Score})
						}
						ix.m.searchVector.Since(start)
					})
				}
			}
		}
	}
	runParallel(tasks, ix.workers)

	var hits []provenance.RetrievalHit
	for _, g := range groups {
		for rank, h := range g.merged(k) {
			id := h.id
			if g.family == familyVector {
				id = chunkParent(id)
			}
			hits = append(hits, provenance.RetrievalHit{Index: g.family, InstanceID: id, Score: h.score, Rank: rank})
		}
	}
	return hits
}

// Retrieve runs the task-agnostic retrieval for the query against the given
// kinds (all configured kinds when none given): top-k per index family per
// kind, fanned out in parallel across index shards. It returns the raw hits
// (for provenance) and the combined, deduplicated candidate IDs in
// best-first order — the Combiner of Section 3.1.
func (ix *Indexer) Retrieve(query string, k int, kinds ...datalake.Kind) ([]provenance.RetrievalHit, []string) {
	return ix.RetrieveCtx(context.Background(), query, k, kinds...)
}

// RetrieveCtx is Retrieve honoring a request context: once ctx is
// cancelled, shard searches that have not started are skipped, so an
// abandoned request stops occupying the retrieval worker pool. The
// possibly partial results of a cancelled retrieval are returned as-is;
// callers must check ctx.Err() and discard them.
func (ix *Indexer) RetrieveCtx(ctx context.Context, query string, k int, kinds ...datalake.Kind) ([]provenance.RetrievalHit, []string) {
	hits := ix.search(ctx, query, k, kinds, true, ix.cfg.EnableVector)
	return hits, combine(hits)
}

// RetrieveFamily retrieves from a single index family ("bm25" or "vector"),
// for the Combiner ablation. Unknown family names return nothing.
func (ix *Indexer) RetrieveFamily(query, family string, k int, kinds ...datalake.Kind) []string {
	switch family {
	case familyBM25:
		return combine(ix.search(context.Background(), query, k, kinds, true, false))
	case familyVector:
		if !ix.cfg.EnableVector {
			return nil
		}
		return combine(ix.search(context.Background(), query, k, kinds, false, true))
	default:
		return nil
	}
}

// chunkParent strips a chunk suffix ("text:doc-1@2" → "text:doc-1").
func chunkParent(id string) string {
	for i := len(id) - 1; i >= 0; i-- {
		if id[i] == '@' {
			return id[:i]
		}
		if id[i] < '0' || id[i] > '9' {
			break
		}
	}
	return id
}

// combine merges hits from all indexes, deduplicating by instance ID — the
// Combiner of Section 3.1. Ordering uses reciprocal-rank fusion
// (score = Σ 1/(60+rank) over the index lists containing the instance), the
// standard way to merge rankings from incomparable scoring functions:
// instances both families agree on rise, and one family's noise cannot bury
// the other's best hits.
func combine(hits []provenance.RetrievalHit) []string {
	if len(hits) == 0 {
		return nil
	}
	const rrfK = 60
	scores := make(map[string]float64, len(hits))
	order := make([]string, 0, len(hits))
	for _, h := range hits {
		if _, seen := scores[h.InstanceID]; !seen {
			order = append(order, h.InstanceID)
		}
		scores[h.InstanceID] += 1 / float64(rrfK+h.Rank)
	}
	sort.SliceStable(order, func(i, j int) bool {
		si, sj := scores[order[i]], scores[order[j]]
		if si != sj {
			return si > sj
		}
		return order[i] < order[j]
	})
	return order
}
