// Package core assembles VerifAI's pipeline — Indexer, Combiner, Reranker,
// and Verifier Agent (Figures 2 and 3 of the paper) — into an end-to-end
// verification service over a multi-modal data lake, with provenance
// recording and trust-weighted verdict resolution.
package core

import (
	"fmt"
	"sort"

	"repro/internal/datalake"
	"repro/internal/doc"
	"repro/internal/embed"
	"repro/internal/invindex"
	"repro/internal/provenance"
	"repro/internal/vecindex"
)

// VectorIndexKind selects the semantic index implementation.
type VectorIndexKind int

const (
	// VectorFlat is exact brute-force search (Faiss IndexFlat).
	VectorFlat VectorIndexKind = iota
	// VectorIVF is inverted-file search over k-means cells (Faiss IVF-Flat).
	VectorIVF
	// VectorLSH is random-hyperplane hashing (Faiss IndexLSH).
	VectorLSH
)

// vectorIndex is the write+search interface all vecindex types satisfy.
type vectorIndex interface {
	vecindex.Searcher
	Add(id string, v embed.Vector) error
}

// IndexerConfig controls index construction.
type IndexerConfig struct {
	// Seed drives the embedding space and IVF/LSH randomness.
	Seed uint64
	// EmbedDim is the embedding dimension (default 64).
	EmbedDim int
	// EnableBM25 turns on the content-based index (default on via
	// DefaultIndexerConfig).
	EnableBM25 bool
	// EnableVector turns on the semantic index.
	EnableVector bool
	// Vector selects the semantic index implementation.
	Vector VectorIndexKind
	// IVFLists / IVFProbes parameterize VectorIVF.
	IVFLists  int
	IVFProbes int
	// LSHBits / LSHTables parameterize VectorLSH.
	LSHBits   int
	LSHTables int
	// Kinds lists the instance granularities to index. Tables are indexed
	// whole AND per-tuple when both kinds are present, matching the paper's
	// lake of tuples, tables, and text.
	Kinds []datalake.Kind
	// ChunkTokens bounds text chunks for the semantic index (the paper's
	// "chunked text files"); <= 0 indexes whole documents.
	ChunkTokens int
}

// DefaultIndexerConfig indexes every modality with both index families.
func DefaultIndexerConfig(seed uint64) IndexerConfig {
	return IndexerConfig{
		Seed:         seed,
		EmbedDim:     128,
		EnableBM25:   true,
		EnableVector: true,
		Vector:       VectorFlat,
		IVFLists:     64,
		IVFProbes:    8,
		LSHBits:      16,
		LSHTables:    8,
		Kinds: []datalake.Kind{
			datalake.KindTable, datalake.KindTuple, datalake.KindText, datalake.KindEntity,
		},
		ChunkTokens: 0,
	}
}

// Indexer is VerifAI's Indexer module: task-agnostic content-based (BM25)
// and semantic-based (vector) indexes over lake instances, partitioned by
// modality so retrieval can target the data types a task needs.
type Indexer struct {
	lake *datalake.Lake
	emb  *embed.Embedder
	cfg  IndexerConfig

	bm25 map[datalake.Kind]*invindex.Index
	vec  map[datalake.Kind]vectorIndex
}

// BuildIndexer indexes the lake's instances per cfg. The lake must be fully
// ingested first; instances added to the lake afterwards are not visible to
// the indexer.
func BuildIndexer(lake *datalake.Lake, cfg IndexerConfig) (*Indexer, error) {
	if cfg.EmbedDim <= 0 {
		cfg.EmbedDim = 64
	}
	if !cfg.EnableBM25 && !cfg.EnableVector {
		return nil, fmt.Errorf("core: indexer needs at least one index family enabled")
	}
	ix := &Indexer{
		lake: lake,
		emb:  embed.NewEmbedder(cfg.EmbedDim, cfg.Seed),
		cfg:  cfg,
		bm25: make(map[datalake.Kind]*invindex.Index),
		vec:  make(map[datalake.Kind]vectorIndex),
	}
	for _, kind := range cfg.Kinds {
		if cfg.EnableBM25 {
			ix.bm25[kind] = invindex.New()
		}
		if cfg.EnableVector {
			v, err := ix.newVectorIndex()
			if err != nil {
				return nil, err
			}
			ix.vec[kind] = v
		}
	}
	if err := ix.ingest(); err != nil {
		return nil, err
	}
	// Train IVF cells after bulk load.
	if cfg.EnableVector && cfg.Vector == VectorIVF {
		for _, v := range ix.vec {
			if ivf, ok := v.(*vecindex.IVF); ok {
				ivf.Train()
			}
		}
	}
	return ix, nil
}

// Embedder exposes the shared embedding space (the reranker uses the same
// space for late interaction).
func (ix *Indexer) Embedder() *embed.Embedder { return ix.emb }

func (ix *Indexer) newVectorIndex() (vectorIndex, error) {
	switch ix.cfg.Vector {
	case VectorFlat:
		return vecindex.NewFlat(ix.cfg.EmbedDim, vecindex.Cosine), nil
	case VectorIVF:
		return vecindex.NewIVF(ix.cfg.EmbedDim, vecindex.Cosine, ix.cfg.IVFLists, ix.cfg.IVFProbes, ix.cfg.Seed), nil
	case VectorLSH:
		return vecindex.NewLSH(ix.cfg.EmbedDim, ix.cfg.LSHBits, ix.cfg.LSHTables, ix.cfg.Seed), nil
	default:
		return nil, fmt.Errorf("core: unknown vector index kind %d", int(ix.cfg.Vector))
	}
}

// wantKind reports whether the config indexes this granularity.
func (ix *Indexer) wantKind(kind datalake.Kind) bool {
	for _, k := range ix.cfg.Kinds {
		if k == kind {
			return true
		}
	}
	return false
}

// ingest walks the lake and feeds both index families.
func (ix *Indexer) ingest() error {
	if ix.wantKind(datalake.KindTable) || ix.wantKind(datalake.KindTuple) {
		for _, tid := range ix.lake.TableIDs() {
			t, ok := ix.lake.Table(tid)
			if !ok {
				return fmt.Errorf("core: lake table %q vanished during ingest", tid)
			}
			if ix.wantKind(datalake.KindTable) {
				id := datalake.TableInstanceID(tid)
				if err := ix.add(datalake.KindTable, id, t.SerializeForIndex()); err != nil {
					return err
				}
			}
			if ix.wantKind(datalake.KindTuple) {
				for row := range t.Rows {
					tp, _ := t.TupleAt(row)
					id := datalake.TupleInstanceID(tid, row)
					if err := ix.add(datalake.KindTuple, id, tp.SerializeForIndex()); err != nil {
						return err
					}
				}
			}
		}
	}
	if ix.wantKind(datalake.KindText) {
		for _, did := range ix.lake.DocIDs() {
			d, ok := ix.lake.Document(did)
			if !ok {
				return fmt.Errorf("core: lake document %q vanished during ingest", did)
			}
			id := datalake.TextInstanceID(did)
			if err := ix.addText(id, d); err != nil {
				return err
			}
		}
	}
	if ix.wantKind(datalake.KindEntity) {
		g := ix.lake.Graph()
		for _, e := range g.Entities() {
			id := datalake.EntityInstanceID(e)
			if err := ix.add(datalake.KindEntity, id, g.SerializeEntity(e)); err != nil {
				return err
			}
		}
	}
	return nil
}

// add indexes one instance in both families.
func (ix *Indexer) add(kind datalake.Kind, id, text string) error {
	if b, ok := ix.bm25[kind]; ok {
		if err := b.Add(id, text); err != nil {
			return fmt.Errorf("core: bm25 add %s: %w", id, err)
		}
	}
	if v, ok := ix.vec[kind]; ok {
		if err := v.Add(id, ix.emb.EmbedText(text)); err != nil {
			return fmt.Errorf("core: vector add %s: %w", id, err)
		}
	}
	return nil
}

// addText indexes a document: BM25 over the whole text, vectors per chunk
// (the paper's "chunked text files ... indexed by Faiss"). Chunk vectors
// share the document's instance ID suffixless for BM25; for vectors each
// chunk gets a sub-ID that maps back to the document at combine time.
func (ix *Indexer) addText(id string, d *doc.Document) error {
	if b, ok := ix.bm25[datalake.KindText]; ok {
		if err := b.Add(id, d.SerializeForIndex()); err != nil {
			return fmt.Errorf("core: bm25 add %s: %w", id, err)
		}
	}
	v, ok := ix.vec[datalake.KindText]
	if !ok {
		return nil
	}
	if ix.cfg.ChunkTokens <= 0 {
		if err := v.Add(id, ix.emb.EmbedText(d.SerializeForIndex())); err != nil {
			return fmt.Errorf("core: vector add %s: %w", id, err)
		}
		return nil
	}
	for _, ch := range doc.ChunkDocument(d, ix.cfg.ChunkTokens) {
		chunkID := fmt.Sprintf("%s@%d", id, ch.Seq)
		if err := v.Add(chunkID, ix.emb.EmbedText(d.Title+" "+ch.Text)); err != nil {
			return fmt.Errorf("core: vector add %s: %w", chunkID, err)
		}
	}
	return nil
}

// Retrieve runs the task-agnostic retrieval for the query against the given
// kinds (all configured kinds when none given): top-k per index family per
// kind. It returns the raw hits (for provenance) and the combined,
// deduplicated candidate IDs in best-first order — the Combiner of
// Section 3.1.
func (ix *Indexer) Retrieve(query string, k int, kinds ...datalake.Kind) ([]provenance.RetrievalHit, []string) {
	if len(kinds) == 0 {
		kinds = ix.cfg.Kinds
	}
	var hits []provenance.RetrievalHit
	var qvec embed.Vector
	if ix.cfg.EnableVector {
		qvec = ix.emb.EmbedText(query)
	}
	for _, kind := range kinds {
		if b, ok := ix.bm25[kind]; ok {
			for rank, h := range b.Search(query, k) {
				hits = append(hits, provenance.RetrievalHit{Index: "bm25", InstanceID: h.ID, Score: h.Score, Rank: rank})
			}
		}
		if v, ok := ix.vec[kind]; ok {
			for rank, h := range v.Search(qvec, k) {
				hits = append(hits, provenance.RetrievalHit{Index: "vector", InstanceID: chunkParent(h.ID), Score: h.Score, Rank: rank})
			}
		}
	}
	return hits, combine(hits)
}

// RetrieveFamily retrieves from a single index family ("bm25" or "vector"),
// for the Combiner ablation. Unknown family names return nothing.
func (ix *Indexer) RetrieveFamily(query, family string, k int, kinds ...datalake.Kind) []string {
	if len(kinds) == 0 {
		kinds = ix.cfg.Kinds
	}
	var hits []provenance.RetrievalHit
	switch family {
	case "bm25":
		for _, kind := range kinds {
			if b, ok := ix.bm25[kind]; ok {
				for rank, h := range b.Search(query, k) {
					hits = append(hits, provenance.RetrievalHit{Index: family, InstanceID: h.ID, Score: h.Score, Rank: rank})
				}
			}
		}
	case "vector":
		if !ix.cfg.EnableVector {
			return nil
		}
		qvec := ix.emb.EmbedText(query)
		for _, kind := range kinds {
			if v, ok := ix.vec[kind]; ok {
				for rank, h := range v.Search(qvec, k) {
					hits = append(hits, provenance.RetrievalHit{Index: family, InstanceID: chunkParent(h.ID), Score: h.Score, Rank: rank})
				}
			}
		}
	}
	return combine(hits)
}

// chunkParent strips a chunk suffix ("text:doc-1@2" → "text:doc-1").
func chunkParent(id string) string {
	for i := len(id) - 1; i >= 0; i-- {
		if id[i] == '@' {
			return id[:i]
		}
		if id[i] < '0' || id[i] > '9' {
			break
		}
	}
	return id
}

// combine merges hits from all indexes, deduplicating by instance ID — the
// Combiner of Section 3.1. Ordering uses reciprocal-rank fusion
// (score = Σ 1/(60+rank) over the index lists containing the instance), the
// standard way to merge rankings from incomparable scoring functions:
// instances both families agree on rise, and one family's noise cannot bury
// the other's best hits.
func combine(hits []provenance.RetrievalHit) []string {
	if len(hits) == 0 {
		return nil
	}
	const rrfK = 60
	scores := make(map[string]float64, len(hits))
	order := make([]string, 0, len(hits))
	for _, h := range hits {
		if _, seen := scores[h.InstanceID]; !seen {
			order = append(order, h.InstanceID)
		}
		scores[h.InstanceID] += 1 / float64(rrfK+h.Rank)
	}
	sort.SliceStable(order, func(i, j int) bool {
		si, sj := scores[order[i]], scores[order[j]]
		if si != sj {
			return si > sj
		}
		return order[i] < order[j]
	})
	return order
}
