package core

import (
	"container/list"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/datalake"
	"repro/internal/verify"
)

// resultCache is a sharded LRU of completed verification Reports, the
// read-path counterpart of the write path's pipelining: VerifAI's verifiers
// are deterministic functions of (object, evidence), and the lake's
// monotonic version orders every mutation, so a Report stays exactly valid
// until a write touches one of the evidence kinds it was computed over.
//
// Invalidation is version-based and per-kind, not wholesale. The cache
// subscribes to the lake's change feed and tracks, per instance kind, the
// highest committed version that touched it (Event.Touches). An entry
// remembers the lake version its verification snapshot reflected; a lookup
// is a hit only while that version is at or past the last write touching
// every kind the entry's retrieval spanned. A document ingest therefore
// leaves table-only claim entries hot, while a table ingest kills them
// precisely.
//
// The subscription participates in the lake's application protocol: the
// per-kind watermark advances before the write's version is published,
// so a verify issued after an ingest acknowledgment can never be served a
// pre-ingest entry — the coherence guarantee the hammer test asserts.
//
// Trust is the one verdict input outside (object, evidence): SetSourceTrust
// re-weights resolution, so the cache carries an epoch that bumps on every
// trust override, invalidating all prior entries (trust changes are rare
// administrative events; per-source precision is not worth the bookkeeping).
type resultCache struct {
	shards []*rcShard

	// kindVer[k] is the highest committed lake version that touched kind k,
	// maintained by the change-feed subscription. Kinds are small contiguous
	// ints, so a fixed array keeps the read path lock-free.
	kindVer [4]atomic.Uint64
	// epoch invalidates everything on trust overrides.
	epoch atomic.Uint64

	hits          atomic.Uint64
	misses        atomic.Uint64
	invalidations atomic.Uint64

	unsubscribe func()
	closeOnce   sync.Once
}

// rcShardCount spreads entries (and their LRU locks) so concurrent verify
// traffic on different objects does not serialize on one mutex.
const rcShardCount = 16

// rcShard is one LRU partition.
type rcShard struct {
	mu    sync.Mutex
	cap   int
	ll    *list.List
	items map[string]*list.Element
}

// rcEntry is one cached Report with its validity stamps.
type rcEntry struct {
	key string
	// version is the lake's published version when the verification's
	// retrieval began: every index read the Report depends on reflects at
	// least this version, and nothing later is assumed.
	version uint64
	epoch   uint64
	report  Report
}

// newResultCache returns a cache holding at most capacity entries across
// rcShardCount LRU shards (per-shard capacity rounds up, so tiny capacities
// still admit one entry per shard).
func newResultCache(capacity int) *resultCache {
	perShard := (capacity + rcShardCount - 1) / rcShardCount
	if perShard < 1 {
		perShard = 1
	}
	c := &resultCache{shards: make([]*rcShard, rcShardCount)}
	for i := range c.shards {
		c.shards[i] = &rcShard{
			cap:   perShard,
			ll:    list.New(),
			items: make(map[string]*list.Element),
		}
	}
	return c
}

// attach subscribes the cache to the lake's change feed and to source
// registrations. The feed subscription is quiesced (SubscribeSync): a
// write committed but still dispatching during pipeline construction
// cannot slip past the watermark unobserved. The subscriber's Apply
// completes synchronously on the dispatcher goroutine, so the per-kind
// watermark is advanced before the lake publishes the write's version —
// i.e. before the ingest caller's acknowledgment returns. Source
// registrations bump the epoch: an AddSource overwrite changes the
// TrustPrior that verdict resolution falls back to, which is invisible to
// the versioned feed.
func (c *resultCache) attach(lake *datalake.Lake) error {
	unsubFeed, err := lake.SubscribeSync(nil, datalake.Subscriber{
		Apply: func(ev datalake.Event, done func(error)) {
			c.observe(ev)
			done(nil)
		},
	})
	if err != nil {
		return err
	}
	unsubSources := lake.OnSourceChange(func(datalake.Source) { c.bumpEpoch() })
	c.unsubscribe = func() {
		unsubFeed()
		unsubSources()
	}
	return nil
}

// close detaches the cache from the change feed. Idempotent.
func (c *resultCache) close() {
	c.closeOnce.Do(func() {
		if c.unsubscribe != nil {
			c.unsubscribe()
		}
	})
}

// observe advances the per-kind invalidation watermark for one committed
// mutation. Events arrive in version order, but the CAS-max loop keeps the
// watermark monotonic even if that ever changes.
func (c *resultCache) observe(ev datalake.Event) {
	for _, k := range ev.Touches() {
		if int(k) < 0 || int(k) >= len(c.kindVer) {
			continue
		}
		kv := &c.kindVer[k]
		for {
			cur := kv.Load()
			if ev.Version <= cur || kv.CompareAndSwap(cur, ev.Version) {
				break
			}
		}
	}
}

// bumpEpoch invalidates every entry (trust override).
func (c *resultCache) bumpEpoch() { c.epoch.Add(1) }

// minValid returns the lowest snapshot version still valid for a retrieval
// spanning kinds: the max per-kind write watermark.
func (c *resultCache) minValid(kinds []datalake.Kind) uint64 {
	var v uint64
	for _, k := range kinds {
		if int(k) < 0 || int(k) >= len(c.kindVer) {
			continue
		}
		if kv := c.kindVer[k].Load(); kv > v {
			v = kv
		}
	}
	return v
}

// rcShardFor hashes a key onto its LRU shard (FNV-1a, as the indexer's
// instance-ID sharding).
func (c *resultCache) shardFor(key string) *rcShard {
	h := uint32(2166136261)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= 16777619
	}
	return c.shards[h%uint32(len(c.shards))]
}

// get returns the cached Report for key if one exists and is still valid
// for a retrieval spanning kinds. Stale entries are evicted on sight and
// counted as invalidations (invalidation is lazy: the write only advances
// a watermark, and the entry dies at its next lookup or by LRU pressure).
func (c *resultCache) get(key string, kinds []datalake.Kind) (Report, bool) {
	minValid := c.minValid(kinds)
	epoch := c.epoch.Load()
	sh := c.shardFor(key)
	sh.mu.Lock()
	el, ok := sh.items[key]
	if !ok {
		sh.mu.Unlock()
		c.misses.Add(1)
		return Report{}, false
	}
	e := el.Value.(*rcEntry)
	if e.version < minValid || e.epoch != epoch {
		sh.ll.Remove(el)
		delete(sh.items, key)
		sh.mu.Unlock()
		c.invalidations.Add(1)
		c.misses.Add(1)
		return Report{}, false
	}
	// Copy the report out while the lock is held: a concurrent put for the
	// same key refreshes the entry's fields in place.
	rep := e.report
	sh.ll.MoveToFront(el)
	sh.mu.Unlock()
	c.hits.Add(1)
	return rep, true
}

// put caches a completed Report. version and epoch are the stamps read
// before the verification's retrieval began; an entry already stale against
// the current watermarks (a write landed mid-verification) is not inserted.
func (c *resultCache) put(key string, kinds []datalake.Kind, version, epoch uint64, rep Report) {
	if version < c.minValid(kinds) || epoch != c.epoch.Load() {
		return
	}
	sh := c.shardFor(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if el, ok := sh.items[key]; ok {
		e := el.Value.(*rcEntry)
		e.version, e.epoch, e.report = version, epoch, rep
		sh.ll.MoveToFront(el)
		return
	}
	sh.items[key] = sh.ll.PushFront(&rcEntry{key: key, version: version, epoch: epoch, report: rep})
	if sh.ll.Len() > sh.cap {
		last := sh.ll.Back()
		sh.ll.Remove(last)
		delete(sh.items, last.Value.(*rcEntry).key)
	}
}

// getPinned returns the cached Report for a pin-scoped key. Pinned entries
// read immutable snapshot state, so neither the per-kind watermarks nor the
// trust epoch can stale them — the key itself (which embeds the snapshot's
// registry-unique identity, see pinnedCacheKey) is the whole validity
// story, and entries retire only by LRU pressure.
func (c *resultCache) getPinned(key string) (Report, bool) {
	sh := c.shardFor(key)
	sh.mu.Lock()
	el, ok := sh.items[key]
	if !ok {
		sh.mu.Unlock()
		c.misses.Add(1)
		return Report{}, false
	}
	rep := el.Value.(*rcEntry).report
	sh.ll.MoveToFront(el)
	sh.mu.Unlock()
	c.hits.Add(1)
	return rep, true
}

// putPinned caches a Report computed against a retained snapshot. No
// version/epoch stamps: the snapshot is immutable, so the entry can never
// go stale (its key dies with the pin generation instead).
func (c *resultCache) putPinned(key string, rep Report) {
	sh := c.shardFor(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if el, ok := sh.items[key]; ok {
		el.Value.(*rcEntry).report = rep
		sh.ll.MoveToFront(el)
		return
	}
	sh.items[key] = sh.ll.PushFront(&rcEntry{key: key, report: rep})
	if sh.ll.Len() > sh.cap {
		last := sh.ll.Back()
		sh.ll.Remove(last)
		delete(sh.items, last.Value.(*rcEntry).key)
	}
}

// len returns the current entry count across shards.
func (c *resultCache) len() int {
	n := 0
	for _, sh := range c.shards {
		sh.mu.Lock()
		n += sh.ll.Len()
		sh.mu.Unlock()
	}
	return n
}

// stats snapshots the counters.
func (c *resultCache) stats() (hits, misses, invalidations uint64, size int) {
	return c.hits.Load(), c.misses.Load(), c.invalidations.Load(), c.len()
}

// cacheKey fingerprints one verification request: the task kind, the
// object's identity and full structured content (verifiers decide from the
// structured fields, not just the retrieval text — a claim's Op/Value and
// a tuple's cells must all participate — and the calibrated error profiles
// additionally key off the object ID), and the evidence-kind set, which
// must already be normalized (sorted, deduplicated: every caller passes
// through Pipeline.normalizeKinds). Fields are length-prefixed so no
// concatenation of distinct requests collides.
func cacheKey(g verify.Generated, kinds []datalake.Kind) string {
	var b strings.Builder
	writePart := func(s string) {
		b.WriteString(strconv.Itoa(len(s)))
		b.WriteByte(':')
		b.WriteString(s)
	}
	writePart(g.Kind.String())
	writePart(g.ID)
	switch g.Kind {
	case verify.KindClaim:
		c := g.Claim
		writePart(c.Text)
		writePart(c.Context)
		for _, e := range c.Entities {
			writePart(e)
		}
		writePart(c.Attribute)
		writePart(strconv.Itoa(int(c.Op)))
		writePart(c.Value)
	case verify.KindTuple:
		tp := g.Tuple
		writePart(tp.Caption)
		for i, col := range tp.Columns {
			writePart(col)
			writePart(tp.Values[i])
		}
		writePart(g.Attr)
	default:
		writePart(g.Query())
		writePart(g.Attr)
	}
	for _, k := range kinds {
		b.WriteByte(',')
		b.WriteString(strconv.Itoa(int(k)))
	}
	return b.String()
}
