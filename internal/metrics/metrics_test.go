package metrics

import (
	"strings"
	"testing"
)

func TestRecallTally(t *testing.T) {
	var r RecallTally
	rel := map[string]struct{}{"a": {}, "b": {}}
	r.Observe([]string{"x", "a"}, rel) // hit
	r.Observe([]string{"x", "y"}, rel) // miss
	r.Add(true)
	r.Add(false)
	if r.Total() != 4 {
		t.Errorf("Total = %d", r.Total())
	}
	if r.Recall() != 0.5 {
		t.Errorf("Recall = %v", r.Recall())
	}
	var empty RecallTally
	if empty.Recall() != 0 {
		t.Error("empty Recall != 0")
	}
}

func TestAccuracyTally(t *testing.T) {
	var a AccuracyTally
	a.Observe(true)
	a.Observe(true)
	a.Observe(false)
	if a.Accuracy() < 0.66 || a.Accuracy() > 0.67 {
		t.Errorf("Accuracy = %v", a.Accuracy())
	}
	if a.Correct() != 2 || a.Total() != 3 {
		t.Errorf("Correct/Total = %d/%d", a.Correct(), a.Total())
	}
	var empty AccuracyTally
	if empty.Accuracy() != 0 {
		t.Error("empty Accuracy != 0")
	}
}

func TestConfusion(t *testing.T) {
	c := NewConfusion("Verified", "Refuted", "Not Related")
	c.Observe("Verified", "Verified")
	c.Observe("Verified", "Refuted")
	c.Observe("Refuted", "Refuted")
	c.Observe("Not Related", "Not Related")
	if !c.Observe("Verified", "Verified") {
		t.Error("valid labels rejected")
	}
	if c.Observe("Unknown", "Verified") {
		t.Error("unknown label accepted")
	}
	if got := c.Count("Verified", "Verified"); got != 2 {
		t.Errorf("Count = %d", got)
	}
	if got := c.Count("ghost", "Verified"); got != 0 {
		t.Errorf("Count unknown = %d", got)
	}
	if acc := c.Accuracy(); acc != 0.8 {
		t.Errorf("Accuracy = %v", acc)
	}
	p, r := c.PrecisionRecall("Refuted")
	if p != 0.5 { // 1 TP of 2 predicted Refuted
		t.Errorf("precision = %v", p)
	}
	if r != 1 { // 1 TP of 1 actual Refuted
		t.Errorf("recall = %v", r)
	}
	if p, r := c.PrecisionRecall("ghost"); p != 0 || r != 0 {
		t.Error("unknown class precision/recall != 0")
	}
	s := c.String()
	if !strings.Contains(s, "Verified") || !strings.Contains(s, "truth\\pred") {
		t.Errorf("String output:\n%s", s)
	}
}

func TestConfusionEmptyAccuracy(t *testing.T) {
	c := NewConfusion("A", "B")
	if c.Accuracy() != 0 {
		t.Error("empty confusion accuracy != 0")
	}
}

func TestGroupedAccuracy(t *testing.T) {
	g := NewGroupedAccuracy()
	g.Observe("lookup", true)
	g.Observe("lookup", false)
	g.Observe("sum", true)
	groups := g.Groups()
	if len(groups) != 2 || groups[0] != "lookup" || groups[1] != "sum" {
		t.Errorf("Groups = %v", groups)
	}
	if got := g.Get("lookup").Accuracy(); got != 0.5 {
		t.Errorf("lookup accuracy = %v", got)
	}
	if got := g.Get("missing").Total(); got != 0 {
		t.Errorf("missing group total = %d", got)
	}
}
