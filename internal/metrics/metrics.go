// Package metrics provides the evaluation measures the paper reports:
// recall for retrieval (Table 1), accuracy for verification (Table 2),
// plus confusion matrices and simple latency summaries for the extended
// harness.
package metrics

import (
	"fmt"
	"sort"
	"strings"
)

// RecallTally accumulates per-task retrieval hits: a task counts as recalled
// when at least one relevant instance appears in the retrieved top-k, the
// paper's evaluation rule ("as we have a small number of relevant data, we
// evaluate the retrieval process using only the recall metric").
type RecallTally struct {
	hits  int
	total int
}

// Observe records one task: retrieved IDs vs the set of relevant IDs.
func (r *RecallTally) Observe(retrieved []string, relevant map[string]struct{}) {
	r.total++
	for _, id := range retrieved {
		if _, ok := relevant[id]; ok {
			r.hits++
			return
		}
	}
}

// Add records a pre-judged task outcome.
func (r *RecallTally) Add(hit bool) {
	r.total++
	if hit {
		r.hits++
	}
}

// Recall returns hits/total (0 when empty).
func (r RecallTally) Recall() float64 {
	if r.total == 0 {
		return 0
	}
	return float64(r.hits) / float64(r.total)
}

// Total returns the number of observed tasks.
func (r RecallTally) Total() int { return r.total }

// AccuracyTally accumulates correct/total decisions.
type AccuracyTally struct {
	correct int
	total   int
}

// Observe records one decision.
func (a *AccuracyTally) Observe(correct bool) {
	a.total++
	if correct {
		a.correct++
	}
}

// Accuracy returns correct/total (0 when empty).
func (a AccuracyTally) Accuracy() float64 {
	if a.total == 0 {
		return 0
	}
	return float64(a.correct) / float64(a.total)
}

// Total returns the number of observed decisions.
func (a AccuracyTally) Total() int { return a.total }

// Correct returns the number of correct decisions.
func (a AccuracyTally) Correct() int { return a.correct }

// Confusion is a labeled confusion matrix over string classes.
type Confusion struct {
	labels []string
	index  map[string]int
	counts [][]int
}

// NewConfusion returns a matrix over the given class labels.
func NewConfusion(labels ...string) *Confusion {
	c := &Confusion{labels: labels, index: make(map[string]int, len(labels))}
	for i, l := range labels {
		c.index[l] = i
	}
	c.counts = make([][]int, len(labels))
	for i := range c.counts {
		c.counts[i] = make([]int, len(labels))
	}
	return c
}

// Observe records a (truth, predicted) pair. Unknown labels are ignored
// with a false return.
func (c *Confusion) Observe(truth, predicted string) bool {
	ti, ok1 := c.index[truth]
	pi, ok2 := c.index[predicted]
	if !ok1 || !ok2 {
		return false
	}
	c.counts[ti][pi]++
	return true
}

// Count returns the (truth, predicted) cell.
func (c *Confusion) Count(truth, predicted string) int {
	ti, ok1 := c.index[truth]
	pi, ok2 := c.index[predicted]
	if !ok1 || !ok2 {
		return 0
	}
	return c.counts[ti][pi]
}

// Accuracy returns the diagonal mass over the total.
func (c *Confusion) Accuracy() float64 {
	diag, total := 0, 0
	for i := range c.counts {
		for j := range c.counts[i] {
			total += c.counts[i][j]
			if i == j {
				diag += c.counts[i][j]
			}
		}
	}
	if total == 0 {
		return 0
	}
	return float64(diag) / float64(total)
}

// PrecisionRecall returns precision and recall for one class.
func (c *Confusion) PrecisionRecall(label string) (precision, recall float64) {
	li, ok := c.index[label]
	if !ok {
		return 0, 0
	}
	tp := c.counts[li][li]
	var predicted, actual int
	for i := range c.labels {
		predicted += c.counts[i][li]
		actual += c.counts[li][i]
	}
	if predicted > 0 {
		precision = float64(tp) / float64(predicted)
	}
	if actual > 0 {
		recall = float64(tp) / float64(actual)
	}
	return precision, recall
}

// String renders the matrix as an aligned text table (rows = truth).
func (c *Confusion) String() string {
	var b strings.Builder
	w := 12
	b.WriteString(fmt.Sprintf("%-*s", w, "truth\\pred"))
	for _, l := range c.labels {
		b.WriteString(fmt.Sprintf("%*s", w, l))
	}
	b.WriteByte('\n')
	for i, l := range c.labels {
		b.WriteString(fmt.Sprintf("%-*s", w, l))
		for j := range c.labels {
			b.WriteString(fmt.Sprintf("%*d", w, c.counts[i][j]))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// GroupedAccuracy tallies accuracy per group key (e.g. per claim operation),
// for the ablation reports.
type GroupedAccuracy struct {
	groups map[string]*AccuracyTally
}

// NewGroupedAccuracy returns an empty grouped tally.
func NewGroupedAccuracy() *GroupedAccuracy {
	return &GroupedAccuracy{groups: make(map[string]*AccuracyTally)}
}

// Observe records a decision under a group key.
func (g *GroupedAccuracy) Observe(group string, correct bool) {
	t, ok := g.groups[group]
	if !ok {
		t = &AccuracyTally{}
		g.groups[group] = t
	}
	t.Observe(correct)
}

// Groups returns the group keys, sorted.
func (g *GroupedAccuracy) Groups() []string {
	out := make([]string, 0, len(g.groups))
	for k := range g.groups {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Get returns the tally for a group (nil-safe zero tally when absent).
func (g *GroupedAccuracy) Get(group string) AccuracyTally {
	if t, ok := g.groups[group]; ok {
		return *t
	}
	return AccuracyTally{}
}
