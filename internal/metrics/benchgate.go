package metrics

import (
	"bufio"
	"fmt"
	"io"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// This file implements the CI benchmark-regression gate: a small parser
// for `go test -bench` output plus a comparator that flags metrics
// regressing beyond a threshold against a committed baseline. It stands in
// for benchstat where installing external tooling is unwanted.

// BenchSample is one parsed benchmark result line: the benchmark name
// (GOMAXPROCS suffix stripped, so runs from machines with different core
// counts compare) and its metrics by unit (ns/op, docs/sec, p50-ns, ...).
type BenchSample struct {
	Name    string
	Metrics map[string]float64
}

// procSuffix matches the trailing "-N" GOMAXPROCS marker on benchmark names.
var procSuffix = regexp.MustCompile(`-\d+$`)

// ParseBench reads `go test -bench` output, returning one sample per
// benchmark result line. Repeated runs of the same benchmark (-count > 1)
// average per metric. Non-benchmark lines (goos/pkg headers, PASS/ok) are
// skipped.
func ParseBench(r io.Reader) ([]BenchSample, error) {
	byName := make(map[string]*benchAccum)
	var order []string
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		// Name, iteration count, then value/unit pairs.
		if len(fields) < 4 || len(fields)%2 != 0 {
			continue
		}
		name := procSuffix.ReplaceAllString(fields[0], "")
		acc, ok := byName[name]
		if !ok {
			acc = &benchAccum{sums: make(map[string]float64), counts: make(map[string]int)}
			byName[name] = acc
			order = append(order, name)
		}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("metrics: benchmark %s: bad value %q: %v", name, fields[i], err)
			}
			unit := fields[i+1]
			acc.sums[unit] += v
			acc.counts[unit]++
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	out := make([]BenchSample, 0, len(order))
	for _, name := range order {
		acc := byName[name]
		m := make(map[string]float64, len(acc.sums))
		for unit, sum := range acc.sums {
			m[unit] = sum / float64(acc.counts[unit])
		}
		out = append(out, BenchSample{Name: name, Metrics: m})
	}
	return out, nil
}

type benchAccum struct {
	sums   map[string]float64
	counts map[string]int
}

// lowerBetter classifies units where smaller is faster; higherBetter
// classifies throughput-style units. The gate deliberately covers p50
// latency and throughput only: ns/op duplicates the throughput metrics on
// the gated benchmarks, and tail latency (p99) and allocation counters
// are too noisy or incidental to gate at a fixed threshold. Units in
// neither set (quality metrics like recall or acc) are never gated, and
// units prefixed "lag-" (replication apply lag) are excluded outright —
// wall-clock lag tracks scheduler and CI-runner noise far more than the
// code under test, so it is recorded in the bench artifact but never gates.
var (
	lowerBetter = map[string]bool{
		"p50-ns": true,
	}
	higherBetterSuffix = "/sec"
)

// BenchRegression is one metric that moved past the threshold in the bad
// direction between a baseline and a current run.
type BenchRegression struct {
	Name     string
	Unit     string
	Baseline float64
	Current  float64
	// Delta is the fractional change in the bad direction (0.30 = 30%
	// slower / 30% less throughput).
	Delta float64
}

// String renders the regression for a CI log.
func (r BenchRegression) String() string {
	return fmt.Sprintf("%s %s: baseline %.6g, current %.6g (%+.1f%%)",
		r.Name, r.Unit, r.Baseline, r.Current, 100*r.Delta)
}

// RatioCheck returns numerator's metric over denominator's metric for one
// unit within a single run — the machine-independent companion to the
// absolute baseline comparison (e.g. "pipelined ingest throughput over
// serialized, same machine, same run"). ok is false when either benchmark
// or the unit is missing.
func RatioCheck(samples []BenchSample, unit, numerator, denominator string) (ratio float64, ok bool) {
	var num, den float64
	var haveNum, haveDen bool
	for _, s := range samples {
		switch s.Name {
		case numerator:
			num, haveNum = s.Metrics[unit], true
		case denominator:
			den, haveDen = s.Metrics[unit], true
		}
	}
	if !haveNum || !haveDen || den == 0 {
		return 0, false
	}
	return num / den, true
}

// CompareBench flags every metric present in both runs that regressed by
// more than threshold (0.25 = 25%): latency-style units (ns/op, p50-ns,
// ...) regress by growing, throughput-style units (anything per second) by
// shrinking. Benchmarks present in only one run are ignored, so adding or
// retiring benchmarks does not break the gate.
func CompareBench(baseline, current []BenchSample, threshold float64) []BenchRegression {
	base := make(map[string]BenchSample, len(baseline))
	for _, s := range baseline {
		base[s.Name] = s
	}
	var out []BenchRegression
	for _, cur := range current {
		b, ok := base[cur.Name]
		if !ok {
			continue
		}
		units := make([]string, 0, len(cur.Metrics))
		for unit := range cur.Metrics {
			units = append(units, unit)
		}
		sort.Strings(units)
		for _, unit := range units {
			bv, ok := b.Metrics[unit]
			if !ok || bv == 0 {
				continue
			}
			cv := cur.Metrics[unit]
			var delta float64
			switch {
			case strings.HasPrefix(unit, "lag-"):
				continue // recorded, never gated
			case lowerBetter[unit]:
				delta = cv/bv - 1
			case strings.HasSuffix(unit, higherBetterSuffix):
				delta = 1 - cv/bv
			default:
				continue
			}
			if delta > threshold {
				out = append(out, BenchRegression{
					Name: cur.Name, Unit: unit, Baseline: bv, Current: cv, Delta: delta,
				})
			}
		}
	}
	return out
}
