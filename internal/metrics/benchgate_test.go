package metrics

import (
	"strings"
	"testing"
)

const benchOutput = `goos: linux
goarch: amd64
pkg: repro
cpu: Intel(R) Xeon(R) Processor @ 2.70GHz
BenchmarkIngestThroughput/pipelined/writers=4-8         	      50	     87065 ns/op	     11487 docs/sec
BenchmarkIngestThroughput/pipelined/writers=4-8         	      50	     89000 ns/op	     11000 docs/sec
BenchmarkMixedIngestQuery-8   	      50	   1203456 ns/op	        12.5 ingests/op	   1100000 p50-ns	   2400000 p99-ns
BenchmarkAblationCombiner-8   	       1	  50000000 ns/op	         0.880 combined-recall
PASS
ok  	repro	12.345s
`

func TestParseBench(t *testing.T) {
	samples, err := ParseBench(strings.NewReader(benchOutput))
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) != 3 {
		t.Fatalf("got %d samples, want 3: %+v", len(samples), samples)
	}
	// GOMAXPROCS suffix stripped; repeated runs averaged.
	s := samples[0]
	if s.Name != "BenchmarkIngestThroughput/pipelined/writers=4" {
		t.Errorf("name = %q (want proc suffix stripped)", s.Name)
	}
	if got := s.Metrics["ns/op"]; got != (87065.0+89000.0)/2 {
		t.Errorf("averaged ns/op = %v", got)
	}
	if got := s.Metrics["docs/sec"]; got != (11487.0+11000.0)/2 {
		t.Errorf("averaged docs/sec = %v", got)
	}
	if got := samples[1].Metrics["p99-ns"]; got != 2400000 {
		t.Errorf("p99-ns = %v", got)
	}
}

func TestCompareBenchDirections(t *testing.T) {
	baseline := []BenchSample{{
		Name: "BenchmarkX",
		Metrics: map[string]float64{
			"ns/op": 1000, "docs/sec": 1000, "p50-ns": 1000, "recall": 0.9,
		},
	}}

	// Within threshold in both directions; ns/op and quality metrics are
	// not gated at all.
	ok := []BenchSample{{
		Name: "BenchmarkX",
		Metrics: map[string]float64{
			"ns/op": 2000, "docs/sec": 900, "p50-ns": 1249, "recall": 0.1,
		},
	}}
	if regs := CompareBench(baseline, ok, 0.25); len(regs) != 0 {
		t.Fatalf("unexpected regressions: %v", regs)
	}

	// p50 up 30%, throughput down 30%.
	bad := []BenchSample{{
		Name: "BenchmarkX",
		Metrics: map[string]float64{
			"ns/op": 1000, "docs/sec": 700, "p50-ns": 1300, "recall": 0.1,
		},
	}}
	regs := CompareBench(baseline, bad, 0.25)
	if len(regs) != 2 {
		t.Fatalf("got %d regressions, want 2 (p50-ns + docs/sec): %v", len(regs), regs)
	}
	if regs[0].Unit != "docs/sec" && regs[1].Unit != "docs/sec" {
		t.Errorf("throughput drop not flagged: %v", regs)
	}
	for _, r := range regs {
		if r.Delta < 0.29 || r.Delta > 0.31 {
			t.Errorf("delta = %v, want ~0.30 (%v)", r.Delta, r)
		}
		if r.String() == "" {
			t.Error("empty String()")
		}
	}

	// Benchmarks present only on one side are ignored.
	other := []BenchSample{{Name: "BenchmarkY", Metrics: map[string]float64{"ns/op": 1}}}
	if regs := CompareBench(baseline, other, 0.25); len(regs) != 0 {
		t.Fatalf("unmatched benchmark compared: %v", regs)
	}
}

// TestCompareBenchLagNeverGated checks replication-lag metrics are recorded
// but excluded from gating — even a lag unit that would otherwise match a
// gated class (a "/sec" suffix, say) stays exempt.
func TestCompareBenchLagNeverGated(t *testing.T) {
	baseline := []BenchSample{{
		Name: "BenchmarkReplicationLag/followers=1",
		Metrics: map[string]float64{
			"docs/sec": 1000, "lag-p50-ns": 1000, "lag-p99-ns": 2000, "lag-flushes/sec": 100,
		},
	}}
	// Lag metrics blow out by 10x; throughput holds. Nothing regresses.
	current := []BenchSample{{
		Name: "BenchmarkReplicationLag/followers=1",
		Metrics: map[string]float64{
			"docs/sec": 1000, "lag-p50-ns": 10000, "lag-p99-ns": 20000, "lag-flushes/sec": 1,
		},
	}}
	if regs := CompareBench(baseline, current, 0.25); len(regs) != 0 {
		t.Fatalf("lag metrics gated: %v", regs)
	}
	// The throughput unit on the same benchmark still gates.
	current[0].Metrics["docs/sec"] = 500
	regs := CompareBench(baseline, current, 0.25)
	if len(regs) != 1 || regs[0].Unit != "docs/sec" {
		t.Fatalf("regressions = %v, want exactly the docs/sec drop", regs)
	}
}

func TestRatioCheck(t *testing.T) {
	samples := []BenchSample{
		{Name: "BenchmarkIngestThroughput/pipelined/writers=4", Metrics: map[string]float64{"docs/sec": 3000}},
		{Name: "BenchmarkIngestThroughput/serialized/writers=4", Metrics: map[string]float64{"docs/sec": 1000}},
	}
	ratio, ok := RatioCheck(samples, "docs/sec",
		"BenchmarkIngestThroughput/pipelined/writers=4",
		"BenchmarkIngestThroughput/serialized/writers=4")
	if !ok || ratio != 3 {
		t.Fatalf("ratio = %v, %v; want 3, true", ratio, ok)
	}
	if _, ok := RatioCheck(samples, "docs/sec", "missing", "also-missing"); ok {
		t.Fatal("RatioCheck ok for missing benchmarks")
	}
	if _, ok := RatioCheck(samples, "ns/op",
		"BenchmarkIngestThroughput/pipelined/writers=4",
		"BenchmarkIngestThroughput/serialized/writers=4"); ok {
		t.Fatal("RatioCheck ok for missing unit")
	}
}
