// Package table implements the relational substrate of the multi-modal data
// lake: web-table style tables with a caption, named columns, and string
// cells, plus typed access helpers, serialization used in prompt templates,
// key inference, and CSV interchange.
package table

import (
	"fmt"
	"strings"

	"repro/internal/textutil"
)

// Missing is the sentinel for an absent cell value, matching the paper's
// prompt template ("Please fill the missing values, annotated by NaN").
const Missing = "NaN"

// Table is a web-table style relation: a caption (table name), named
// columns, and rows of string cells. Cells are strings because lake tables
// are scraped and untyped; numeric interpretation happens lazily via
// textutil.ParseNumber.
type Table struct {
	// ID uniquely identifies the table within its data lake.
	ID string
	// Caption is the table name (e.g. "1954 u.s. open (golf)").
	Caption string
	// Columns are the attribute names, in order.
	Columns []string
	// Rows holds the cell values; every row has len(Columns) cells.
	Rows [][]string
	// SourceID identifies the dataset/source this table came from, used by
	// the trust module.
	SourceID string
}

// New returns a table with the given caption and columns and no rows.
func New(id, caption string, columns []string) *Table {
	return &Table{ID: id, Caption: caption, Columns: columns}
}

// AppendRow adds a row. It returns an error when the arity does not match
// the schema, which would otherwise corrupt downstream cell addressing.
func (t *Table) AppendRow(cells []string) error {
	if len(cells) != len(t.Columns) {
		return fmt.Errorf("table %s: row arity %d != schema arity %d", t.ID, len(cells), len(t.Columns))
	}
	t.Rows = append(t.Rows, cells)
	return nil
}

// MustAppendRow adds a row and panics on arity mismatch. For generators and
// tests where the arity is statically correct.
func (t *Table) MustAppendRow(cells ...string) {
	if err := t.AppendRow(cells); err != nil {
		panic(err)
	}
}

// NumRows returns the number of rows.
func (t *Table) NumRows() int { return len(t.Rows) }

// NumCols returns the number of columns.
func (t *Table) NumCols() int { return len(t.Columns) }

// ColumnIndex returns the index of the column whose folded name equals name,
// or -1 when absent.
func (t *Table) ColumnIndex(name string) int {
	want := textutil.Fold(name)
	for i, c := range t.Columns {
		if textutil.Fold(c) == want {
			return i
		}
	}
	return -1
}

// Cell returns the cell at (row, col); ok is false when out of range.
func (t *Table) Cell(row, col int) (string, bool) {
	if row < 0 || row >= len(t.Rows) || col < 0 || col >= len(t.Columns) {
		return "", false
	}
	return t.Rows[row][col], true
}

// Column returns a copy of all values in column col.
func (t *Table) Column(col int) []string {
	if col < 0 || col >= len(t.Columns) {
		return nil
	}
	out := make([]string, len(t.Rows))
	for i, r := range t.Rows {
		out[i] = r[col]
	}
	return out
}

// IsNumericColumn reports whether at least 80% of the non-missing cells in
// column col parse as numbers. Web tables are noisy, so we use a threshold
// rather than requiring every cell to parse.
func (t *Table) IsNumericColumn(col int) bool {
	if col < 0 || col >= len(t.Columns) || len(t.Rows) == 0 {
		return false
	}
	num, tot := 0, 0
	for _, r := range t.Rows {
		c := r[col]
		if c == "" || c == Missing {
			continue
		}
		tot++
		if textutil.IsNumeric(c) {
			num++
		}
	}
	if tot == 0 {
		return false
	}
	return float64(num)/float64(tot) >= 0.8
}

// KeyColumn infers the key column: the leftmost non-numeric column whose
// folded values are all distinct and non-missing. Returns -1 when none
// qualifies. Used by the tuple verifier to align evidence rows with the
// generated tuple ("verify a non-key attribute given the key").
func (t *Table) KeyColumn() int {
	for col := range t.Columns {
		if t.IsNumericColumn(col) {
			continue
		}
		seen := make(map[string]struct{}, len(t.Rows))
		ok := len(t.Rows) > 0
		for _, r := range t.Rows {
			f := textutil.Fold(r[col])
			if f == "" || r[col] == Missing {
				ok = false
				break
			}
			if _, dup := seen[f]; dup {
				ok = false
				break
			}
			seen[f] = struct{}{}
		}
		if ok {
			return col
		}
	}
	return -1
}

// FindRow returns the index of the first row whose cell in column col folds
// equal to value, or -1.
func (t *Table) FindRow(col int, value string) int {
	want := textutil.Fold(value)
	for i, r := range t.Rows {
		if textutil.Fold(r[col]) == want {
			return i
		}
	}
	return -1
}

// Clone returns a deep copy of the table.
func (t *Table) Clone() *Table {
	nt := &Table{
		ID:       t.ID,
		Caption:  t.Caption,
		Columns:  append([]string(nil), t.Columns...),
		SourceID: t.SourceID,
	}
	nt.Rows = make([][]string, len(t.Rows))
	for i, r := range t.Rows {
		nt.Rows[i] = append([]string(nil), r...)
	}
	return nt
}

// String renders the table in the pipe-delimited form the paper's prompt
// templates and Figure 4 use.
func (t *Table) String() string {
	var b strings.Builder
	b.WriteString(t.Caption)
	b.WriteByte('\n')
	b.WriteString("| ")
	b.WriteString(strings.Join(t.Columns, " | "))
	b.WriteString(" |\n")
	for _, r := range t.Rows {
		b.WriteString("| ")
		b.WriteString(strings.Join(r, " | "))
		b.WriteString(" |\n")
	}
	return b.String()
}

// SerializeForIndex flattens the table (caption, columns, cells) into a
// single string for content-based indexing, mirroring the paper's
// "serialized as strings and then indexed by Elasticsearch".
func (t *Table) SerializeForIndex() string {
	var b strings.Builder
	b.WriteString(t.Caption)
	b.WriteByte(' ')
	b.WriteString(strings.Join(t.Columns, " "))
	for _, r := range t.Rows {
		b.WriteByte(' ')
		b.WriteString(strings.Join(r, " "))
	}
	return b.String()
}

// Tuple is one row of a table together with enough context (caption and
// column names) to be interpreted stand-alone. It is both a unit of lake
// data and a unit of generated data.
type Tuple struct {
	// TableID is the table the tuple belongs to (empty for generated tuples
	// not yet attributed to a table).
	TableID string
	// Caption is the owning table's caption.
	Caption string
	// Columns are the attribute names.
	Columns []string
	// Values are the cell values, len == len(Columns).
	Values []string
	// SourceID identifies the originating dataset for trust scoring.
	SourceID string
}

// TupleAt extracts row i as a stand-alone Tuple (values are copied).
func (t *Table) TupleAt(i int) (Tuple, bool) {
	if i < 0 || i >= len(t.Rows) {
		return Tuple{}, false
	}
	return Tuple{
		TableID:  t.ID,
		Caption:  t.Caption,
		Columns:  t.Columns,
		Values:   append([]string(nil), t.Rows[i]...),
		SourceID: t.SourceID,
	}, true
}

// Value returns the tuple's value for the named column; ok is false when the
// column is absent.
func (tp Tuple) Value(column string) (string, bool) {
	want := textutil.Fold(column)
	for i, c := range tp.Columns {
		if textutil.Fold(c) == want {
			return tp.Values[i], true
		}
	}
	return "", false
}

// WithValue returns a copy of the tuple with the named column set to v.
func (tp Tuple) WithValue(column, v string) Tuple {
	out := tp
	out.Values = append([]string(nil), tp.Values...)
	want := textutil.Fold(column)
	for i, c := range tp.Columns {
		if textutil.Fold(c) == want {
			out.Values[i] = v
		}
	}
	return out
}

// SerializeForIndex flattens the tuple for content-based indexing.
func (tp Tuple) SerializeForIndex() string {
	var b strings.Builder
	b.WriteString(tp.Caption)
	for i, c := range tp.Columns {
		b.WriteByte(' ')
		b.WriteString(c)
		b.WriteByte(' ')
		b.WriteString(tp.Values[i])
	}
	return b.String()
}

// String renders the tuple as "caption | col=val | ...".
func (tp Tuple) String() string {
	parts := make([]string, 0, len(tp.Columns)+1)
	if tp.Caption != "" {
		parts = append(parts, tp.Caption)
	}
	for i, c := range tp.Columns {
		parts = append(parts, c+"="+tp.Values[i])
	}
	return strings.Join(parts, " | ")
}
