package table

import (
	"encoding/csv"
	"fmt"
	"io"
)

// ReadCSV parses a table from CSV: the first record is the header. The
// caption and id are supplied by the caller since CSV has no table-level
// metadata.
func ReadCSV(r io.Reader, id, caption string) (*Table, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("read csv header: %w", err)
	}
	t := New(id, caption, header)
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("read csv row: %w", err)
		}
		// Pad/trim ragged rows to the header arity; web CSVs are messy.
		row := make([]string, len(header))
		for i := range row {
			if i < len(rec) {
				row[i] = rec[i]
			}
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// WriteCSV writes the table as CSV with a header row.
func WriteCSV(w io.Writer, t *Table) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Columns); err != nil {
		return fmt.Errorf("write csv header: %w", err)
	}
	for _, row := range t.Rows {
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("write csv row: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}
