package table

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func golfTable() *Table {
	t := New("t1", "1954 u.s. open (golf)", []string{"place", "player", "country", "money"})
	t.MustAppendRow("t1", "ed furgol", "united states", "6000")
	t.MustAppendRow("t2", "gene littler", "united states", "3600")
	t.MustAppendRow("t5", "bobby locke", "south africa", "960")
	return t
}

func TestAppendRowArity(t *testing.T) {
	tbl := New("x", "cap", []string{"a", "b"})
	if err := tbl.AppendRow([]string{"1", "2"}); err != nil {
		t.Fatalf("AppendRow: %v", err)
	}
	if err := tbl.AppendRow([]string{"1"}); err == nil {
		t.Error("AppendRow accepted wrong arity")
	}
	if tbl.NumRows() != 1 || tbl.NumCols() != 2 {
		t.Errorf("NumRows/NumCols = %d/%d", tbl.NumRows(), tbl.NumCols())
	}
}

func TestMustAppendRowPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustAppendRow did not panic on arity mismatch")
		}
	}()
	New("x", "cap", []string{"a"}).MustAppendRow("1", "2")
}

func TestColumnIndex(t *testing.T) {
	tbl := golfTable()
	if got := tbl.ColumnIndex("player"); got != 1 {
		t.Errorf("ColumnIndex(player) = %d", got)
	}
	if got := tbl.ColumnIndex("Player"); got != 1 {
		t.Errorf("ColumnIndex folded = %d", got)
	}
	if got := tbl.ColumnIndex("missing"); got != -1 {
		t.Errorf("ColumnIndex(missing) = %d", got)
	}
}

func TestCellAndColumn(t *testing.T) {
	tbl := golfTable()
	if v, ok := tbl.Cell(0, 1); !ok || v != "ed furgol" {
		t.Errorf("Cell(0,1) = %q, %v", v, ok)
	}
	if _, ok := tbl.Cell(99, 0); ok {
		t.Error("Cell out of range reported ok")
	}
	if _, ok := tbl.Cell(0, 99); ok {
		t.Error("Cell col out of range reported ok")
	}
	col := tbl.Column(3)
	if !reflect.DeepEqual(col, []string{"6000", "3600", "960"}) {
		t.Errorf("Column(3) = %v", col)
	}
	if tbl.Column(-1) != nil {
		t.Error("Column(-1) != nil")
	}
}

func TestIsNumericColumn(t *testing.T) {
	tbl := golfTable()
	if tbl.IsNumericColumn(1) {
		t.Error("player column reported numeric")
	}
	if !tbl.IsNumericColumn(3) {
		t.Error("money column reported non-numeric")
	}
	// Mostly-numeric columns pass the 80% threshold.
	noisy := New("n", "c", []string{"v"})
	for i := 0; i < 9; i++ {
		noisy.MustAppendRow("42")
	}
	noisy.MustAppendRow("n/a")
	if !noisy.IsNumericColumn(0) {
		t.Error("90% numeric column reported non-numeric")
	}
	// Missing cells don't count against the threshold.
	missing := New("m", "c", []string{"v"})
	missing.MustAppendRow(Missing)
	missing.MustAppendRow("5")
	if !missing.IsNumericColumn(0) {
		t.Error("numeric column with Missing cells reported non-numeric")
	}
	empty := New("e", "c", []string{"v"})
	if empty.IsNumericColumn(0) {
		t.Error("empty table column reported numeric")
	}
}

func TestKeyColumn(t *testing.T) {
	tbl := golfTable()
	// place has distinct values t1,t2,t5 and is non-numeric → leftmost key.
	if got := tbl.KeyColumn(); got != 0 {
		t.Errorf("KeyColumn = %d, want 0", got)
	}
	// Duplicate values disqualify a column.
	dup := New("d", "c", []string{"k", "v"})
	dup.MustAppendRow("a", "1")
	dup.MustAppendRow("a", "2")
	if got := dup.KeyColumn(); got != -1 {
		t.Errorf("KeyColumn with dup = %d, want -1", got)
	}
	// Missing key cells disqualify too.
	miss := New("m", "c", []string{"k"})
	miss.MustAppendRow(Missing)
	if got := miss.KeyColumn(); got != -1 {
		t.Errorf("KeyColumn with missing = %d, want -1", got)
	}
}

func TestFindRow(t *testing.T) {
	tbl := golfTable()
	if got := tbl.FindRow(1, "Gene_Littler"); got != 1 {
		t.Errorf("FindRow folded = %d, want 1", got)
	}
	if got := tbl.FindRow(1, "nobody"); got != -1 {
		t.Errorf("FindRow missing = %d, want -1", got)
	}
}

func TestClone(t *testing.T) {
	tbl := golfTable()
	c := tbl.Clone()
	c.Rows[0][1] = "changed"
	c.Columns[0] = "changed"
	if tbl.Rows[0][1] != "ed furgol" || tbl.Columns[0] != "place" {
		t.Error("Clone shares storage with original")
	}
}

func TestStringAndSerialize(t *testing.T) {
	tbl := golfTable()
	s := tbl.String()
	if !strings.Contains(s, "1954 u.s. open (golf)") || !strings.Contains(s, "| ed furgol |") {
		t.Errorf("String output malformed:\n%s", s)
	}
	ser := tbl.SerializeForIndex()
	for _, want := range []string{"1954", "player", "bobby locke", "960"} {
		if !strings.Contains(ser, want) {
			t.Errorf("SerializeForIndex missing %q", want)
		}
	}
}

func TestTupleAt(t *testing.T) {
	tbl := golfTable()
	tp, ok := tbl.TupleAt(2)
	if !ok {
		t.Fatal("TupleAt(2) failed")
	}
	if tp.Caption != tbl.Caption || tp.TableID != "t1" {
		t.Errorf("tuple context wrong: %+v", tp)
	}
	if v, ok := tp.Value("money"); !ok || v != "960" {
		t.Errorf("tuple Value(money) = %q, %v", v, ok)
	}
	if _, ok := tp.Value("missing"); ok {
		t.Error("tuple Value(missing) ok")
	}
	if _, ok := tbl.TupleAt(-1); ok {
		t.Error("TupleAt(-1) ok")
	}
	// Mutating the tuple must not touch the table.
	tp.Values[0] = "zzz"
	if tbl.Rows[2][0] == "zzz" {
		t.Error("TupleAt shares storage with table")
	}
}

func TestTupleWithValue(t *testing.T) {
	tbl := golfTable()
	tp, _ := tbl.TupleAt(0)
	tp2 := tp.WithValue("money", "9999")
	if v, _ := tp2.Value("money"); v != "9999" {
		t.Errorf("WithValue did not set: %q", v)
	}
	if v, _ := tp.Value("money"); v != "6000" {
		t.Errorf("WithValue mutated original: %q", v)
	}
}

func TestTupleSerializeAndString(t *testing.T) {
	tbl := golfTable()
	tp, _ := tbl.TupleAt(0)
	s := tp.SerializeForIndex()
	for _, want := range []string{"1954", "player", "ed furgol", "money", "6000"} {
		if !strings.Contains(s, want) {
			t.Errorf("tuple serialization missing %q in %q", want, s)
		}
	}
	if !strings.Contains(tp.String(), "player=ed furgol") {
		t.Errorf("tuple String = %q", tp.String())
	}
}

func TestCSVRoundtrip(t *testing.T) {
	tbl := golfTable()
	var buf bytes.Buffer
	if err := WriteCSV(&buf, tbl); err != nil {
		t.Fatalf("WriteCSV: %v", err)
	}
	got, err := ReadCSV(&buf, tbl.ID, tbl.Caption)
	if err != nil {
		t.Fatalf("ReadCSV: %v", err)
	}
	if !reflect.DeepEqual(got.Columns, tbl.Columns) || !reflect.DeepEqual(got.Rows, tbl.Rows) {
		t.Errorf("CSV roundtrip mismatch:\n%v\n%v", got, tbl)
	}
}

func TestCSVRoundtripProperty(t *testing.T) {
	// Any 2-column table of printable cells survives a roundtrip.
	f := func(cells [][2]string) bool {
		tbl := New("id", "cap", []string{"a", "b"})
		for _, c := range cells {
			tbl.MustAppendRow(c[0], c[1])
		}
		var buf bytes.Buffer
		if err := WriteCSV(&buf, tbl); err != nil {
			return false
		}
		got, err := ReadCSV(&buf, "id", "cap")
		if err != nil {
			return false
		}
		if len(got.Rows) != len(tbl.Rows) {
			return false
		}
		for i := range got.Rows {
			// encoding/csv normalizes \r\n to \n on read; normalize both
			// sides the same way for comparison.
			for j := range got.Rows[i] {
				a := strings.ReplaceAll(got.Rows[i][j], "\r\n", "\n")
				b := strings.ReplaceAll(tbl.Rows[i][j], "\r\n", "\n")
				if a != b {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestReadCSVRaggedRows(t *testing.T) {
	in := "a,b,c\n1,2\n1,2,3,4\n"
	got, err := ReadCSV(strings.NewReader(in), "id", "cap")
	if err != nil {
		t.Fatalf("ReadCSV ragged: %v", err)
	}
	if got.NumRows() != 2 {
		t.Fatalf("rows = %d", got.NumRows())
	}
	if !reflect.DeepEqual(got.Rows[0], []string{"1", "2", ""}) {
		t.Errorf("short row padded wrong: %v", got.Rows[0])
	}
	if !reflect.DeepEqual(got.Rows[1], []string{"1", "2", "3"}) {
		t.Errorf("long row trimmed wrong: %v", got.Rows[1])
	}
}
