package workload

import (
	"fmt"

	"repro/internal/datalake"
	"repro/internal/detrand"
	"repro/internal/kg"
	"repro/internal/table"
	"repro/internal/textutil"
)

// Source IDs used by the generated lake.
const (
	// SourceTables is the TabFact-like table collection.
	SourceTables = "tabfact-like"
	// SourceTexts is the WikiTable-TURL-like entity-page collection.
	SourceTexts = "wikitable-turl-like"
	// SourceKG is the derived knowledge-graph collection.
	SourceKG = "derived-kg"
)

// Config controls corpus generation. The zero value is not valid; start
// from DefaultConfig or PaperScale.
type Config struct {
	// Seed drives all randomness.
	Seed uint64
	// NumTables is the number of lake tables (paper: 19,498).
	NumTables int
	// NumTexts caps the number of entity text pages (paper: 13,796).
	NumTexts int
	// EntityReuse is the probability a new table row reuses an existing
	// person entity, creating cross-table ambiguity.
	EntityReuse float64
	// TextContextProb is the probability an entity page includes a sentence
	// tying the entity to one of its table contexts (attribute + value).
	// Pages without context sentences are hard to retrieve from a tuple
	// query, which drives the paper's low tuple→text recall.
	TextContextProb float64
	// TextMentions is how many other entities each page name-drops,
	// mimicking Wikipedia link structure and adding retrieval confusion.
	TextMentions int
	// KGTableFraction is the fraction of tables whose tuples are also
	// exported as knowledge-graph triples (the cross-modal extension).
	KGTableFraction float64
}

// DefaultConfig returns a laptop-scale corpus (fast tests, same shapes).
func DefaultConfig() Config {
	return Config{
		Seed:            1,
		NumTables:       3000,
		NumTexts:        1500,
		EntityReuse:     0.4,
		TextContextProb: 0.88,
		TextMentions:    8,
		KGTableFraction: 0.1,
	}
}

// PaperScale returns the corpus dimensions reported in Section 4 of the
// paper: 19,498 tables (269,622 tuples in the original) and 13,796 text
// files.
func PaperScale() Config {
	c := DefaultConfig()
	c.NumTables = 19498
	c.NumTexts = 13796
	return c
}

// Corpus is a generated multi-modal lake plus the ground-truth bookkeeping
// task generators need.
type Corpus struct {
	Config Config
	Lake   *datalake.Lake
	// Tables lists the generated tables in creation order.
	Tables []*table.Table
	// Domain maps table ID to its index in the domain registry.
	Domain map[string]int
	// EntityDocs maps a folded person-entity name to its document ID; only
	// entities with pages appear.
	EntityDocs map[string]string
	// DocContexts maps a document ID to the table observations whose
	// context sentences the page actually contains — the ground truth for
	// what the page can support or refute.
	DocContexts map[string][]Observation
	// entityOrder preserves page-creation order for determinism.
	entityOrder []string
}

// domainOf returns the domain generator for a table.
func (c *Corpus) domainOf(t *table.Table) domainGen {
	return domains[c.Domain[t.ID]]
}

// Observation records one table cell where a person entity appears, used
// when writing that entity's page and by the task oracles as ground truth.
type Observation struct {
	// Caption is the owning table's caption.
	Caption string
	// Attr is the attribute (column name) observed.
	Attr string
	// Value is the cell value observed.
	Value string
}

// GenerateLake builds the full multi-modal corpus from cfg. Generation is
// deterministic in cfg.Seed.
func GenerateLake(cfg Config) (*Corpus, error) {
	if cfg.NumTables <= 0 {
		return nil, fmt.Errorf("workload: NumTables must be positive, got %d", cfg.NumTables)
	}
	r := detrand.New(cfg.Seed, "corpus")
	pool := newEntityPool(r, cfg.EntityReuse)

	lake := datalake.New()
	lake.AddSource(datalake.Source{ID: SourceTables, Name: "TabFact-like web tables", TrustPrior: 0.8})
	lake.AddSource(datalake.Source{ID: SourceTexts, Name: "WikiTable-TURL-like entity pages", TrustPrior: 0.7})
	lake.AddSource(datalake.Source{ID: SourceKG, Name: "derived knowledge graph", TrustPrior: 0.6})

	corpus := &Corpus{
		Config:      cfg,
		Lake:        lake,
		Domain:      make(map[string]int),
		EntityDocs:  make(map[string]string),
		DocContexts: make(map[string][]Observation),
	}

	// Weighted domain mix: person-bearing domains (golf, election) are
	// over-represented so the tuple→text task has enough coverage.
	weights := make([]float64, len(domains))
	for i, d := range domains {
		if len(d.personCols) > 0 {
			weights[i] = 3
		} else {
			weights[i] = 1
		}
	}

	// Observations of each person entity across tables, folded name keyed.
	obs := make(map[string][]Observation)
	var obsOrder []string

	for i := 0; i < cfg.NumTables; i++ {
		di := r.Pick(weights)
		d := domains[di]
		id := fmt.Sprintf("tbl-%06d", i)
		t := d.generate(r, id, pool)
		t.SourceID = SourceTables
		if err := lake.AddTable(t); err != nil {
			return nil, fmt.Errorf("workload: add table: %w", err)
		}
		corpus.Tables = append(corpus.Tables, t)
		corpus.Domain[id] = di

		for _, pc := range d.personCols {
			for _, row := range t.Rows {
				name := row[pc]
				f := textutil.Fold(name)
				if _, ok := obs[f]; !ok {
					obsOrder = append(obsOrder, f)
				}
				// Record the attribute context the page will state. When the
				// person is not the table's key (election incumbents), state
				// the key ("recorded a district of ..."), which lets a page
				// confirm or break the person-to-row link; when the person IS
				// the key (golf players), state the first attribute column.
				col := d.keyCol
				if col == pc {
					col = d.attrCols[0]
				}
				obs[f] = append(obs[f], Observation{Caption: t.Caption, Attr: t.Columns[col], Value: row[col]})
			}
		}
	}

	// Entity pages, capped at NumTexts, in first-seen order.
	nTexts := cfg.NumTexts
	if nTexts > len(obsOrder) {
		nTexts = len(obsOrder)
	}
	for i := 0; i < nTexts; i++ {
		f := obsOrder[i]
		docID := fmt.Sprintf("doc-%06d", i)
		d, included := genEntityDoc(r, cfg, f, obs[f], pool)
		d.ID = docID
		d.SourceID = SourceTexts
		if err := lake.AddDocument(d); err != nil {
			return nil, fmt.Errorf("workload: add document: %w", err)
		}
		corpus.EntityDocs[f] = docID
		corpus.DocContexts[docID] = included
		corpus.entityOrder = append(corpus.entityOrder, f)
	}

	// Knowledge-graph triples for a fraction of tables (extension modality).
	for _, t := range corpus.Tables {
		if !r.Bool(cfg.KGTableFraction) {
			continue
		}
		d := corpus.domainOf(t)
		for row := range t.Rows {
			for _, tr := range kg.FromTuple(t.Caption, t.Columns, t.Rows[row], d.keyCol, SourceKG) {
				if err := lake.AddTriple(tr); err != nil {
					return nil, err
				}
			}
		}
	}
	return corpus, nil
}
