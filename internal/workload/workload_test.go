package workload

import (
	"strings"
	"testing"

	"repro/internal/claims"
	"repro/internal/textutil"
)

// smallConfig keeps corpus tests fast.
func smallConfig() Config {
	c := DefaultConfig()
	c.NumTables = 250
	c.NumTexts = 200
	return c
}

func buildCorpus(t *testing.T) *Corpus {
	t.Helper()
	c, err := GenerateLake(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestGenerateLakeCounts(t *testing.T) {
	c := buildCorpus(t)
	stats := c.Lake.Stats()
	if stats.Tables != 250 {
		t.Errorf("tables = %d", stats.Tables)
	}
	if stats.Docs == 0 || stats.Docs > 200 {
		t.Errorf("docs = %d", stats.Docs)
	}
	if stats.Tuples < 250*3 {
		t.Errorf("tuples = %d (suspiciously few)", stats.Tuples)
	}
	if stats.Triples == 0 {
		t.Error("no KG triples generated")
	}
	if len(c.Tables) != 250 {
		t.Errorf("corpus.Tables = %d", len(c.Tables))
	}
}

func TestGenerateLakeDeterministic(t *testing.T) {
	a, err := GenerateLake(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateLake(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Tables {
		if a.Tables[i].Caption != b.Tables[i].Caption {
			t.Fatalf("table %d captions differ: %q vs %q", i, a.Tables[i].Caption, b.Tables[i].Caption)
		}
		if a.Tables[i].NumRows() != b.Tables[i].NumRows() {
			t.Fatalf("table %d row counts differ", i)
		}
	}
	adocs, bdocs := a.Lake.DocIDs(), b.Lake.DocIDs()
	if len(adocs) != len(bdocs) {
		t.Fatal("doc counts differ")
	}
	for i := range adocs {
		da, _ := a.Lake.Document(adocs[i])
		db, _ := b.Lake.Document(bdocs[i])
		if da.Text != db.Text {
			t.Fatalf("doc %d text differs", i)
		}
	}
}

func TestGenerateLakeRejectsBadConfig(t *testing.T) {
	if _, err := GenerateLake(Config{}); err == nil {
		t.Error("zero config accepted")
	}
}

func TestTableSchemasValid(t *testing.T) {
	c := buildCorpus(t)
	for _, tbl := range c.Tables {
		d := c.domainOf(tbl)
		if d.keyCol >= tbl.NumCols() {
			t.Fatalf("table %s: keyCol %d out of range", tbl.ID, d.keyCol)
		}
		for _, ac := range d.attrCols {
			if ac >= tbl.NumCols() {
				t.Fatalf("table %s: attrCol %d out of range", tbl.ID, ac)
			}
		}
		for _, row := range tbl.Rows {
			if len(row) != tbl.NumCols() {
				t.Fatalf("table %s: ragged row", tbl.ID)
			}
		}
		if tbl.Caption == "" {
			t.Fatalf("table %s: empty caption", tbl.ID)
		}
	}
}

func TestEntityDocsLinkBack(t *testing.T) {
	c := buildCorpus(t)
	if len(c.EntityDocs) == 0 {
		t.Fatal("no entity docs")
	}
	for entity, docID := range c.EntityDocs {
		d, ok := c.Lake.Document(docID)
		if !ok {
			t.Fatalf("entity %q doc %q missing from lake", entity, docID)
		}
		if textutil.Fold(d.Title) != entity {
			t.Errorf("doc title %q does not fold to entity %q", d.Title, entity)
		}
		// DocContexts entries must literally appear in the text.
		for _, obs := range c.DocContexts[docID] {
			if !strings.Contains(textutil.Fold(d.Text), textutil.Fold(obs.Caption)) {
				t.Errorf("doc %s claims context %q but text lacks it", docID, obs.Caption)
			}
		}
	}
}

func TestTupleTasks(t *testing.T) {
	c := buildCorpus(t)
	tasks, err := c.TupleTasks(30)
	if err != nil {
		t.Fatal(err)
	}
	if len(tasks) != 30 {
		t.Fatalf("tasks = %d", len(tasks))
	}
	seen := make(map[string]bool)
	for _, task := range tasks {
		key := task.TableID + "#" + task.MaskedAttr() + "#" + string(rune(task.Row))
		if seen[key] {
			t.Error("duplicate task")
		}
		seen[key] = true
		tbl, ok := c.Lake.Table(task.TableID)
		if !ok {
			t.Fatalf("task table %q missing", task.TableID)
		}
		if got := tbl.Rows[task.Row][task.MaskedCol]; got != task.TrueValue {
			t.Errorf("TrueValue %q != cell %q", task.TrueValue, got)
		}
		if len(task.RelevantDocIDs) == 0 {
			t.Error("task without relevant docs")
		}
		masked := task.MaskedTuple()
		if v, _ := masked.Value(task.MaskedAttr()); v != "NaN" {
			t.Errorf("MaskedTuple attr = %q", v)
		}
		if task.Entity() == "" {
			t.Error("task without entity")
		}
	}
}

func TestClaimTasksEvaluateToLabel(t *testing.T) {
	c := buildCorpus(t)
	tasks, err := c.ClaimTasks(60)
	if err != nil {
		t.Fatal(err)
	}
	if len(tasks) != 60 {
		t.Fatalf("tasks = %d", len(tasks))
	}
	trueCount := 0
	opsSeen := make(map[claims.AggOp]int)
	for _, task := range tasks {
		tbl, ok := c.Lake.Table(task.TableID)
		if !ok {
			t.Fatalf("claim table %q missing", task.TableID)
		}
		out, expl := claims.Eval(task.Claim, tbl)
		if task.Label && out != claims.Supports {
			t.Errorf("true claim evaluates %v (%s): %s", out, expl, task.Claim.Text)
		}
		if !task.Label && out != claims.Refutes {
			t.Errorf("false claim evaluates %v (%s): %s", out, expl, task.Claim.Text)
		}
		if task.Label {
			trueCount++
		}
		opsSeen[task.Claim.Op]++
		// The rendered text must parse back to the same op.
		parsed, err := claims.Parse(task.Claim.Text)
		if err != nil {
			t.Errorf("claim text unparseable: %q (%v)", task.Claim.Text, err)
		} else if parsed.Op != task.Claim.Op {
			t.Errorf("claim op drifted: %v -> %v", task.Claim.Op, parsed.Op)
		}
	}
	if trueCount < 15 || trueCount > 45 {
		t.Errorf("true/false imbalance: %d/60 true", trueCount)
	}
	if opsSeen[claims.OpLookup] == 0 || opsSeen[claims.OpCount] == 0 {
		t.Errorf("op mix missing kinds: %v", opsSeen)
	}
}

func TestDropYearToken(t *testing.T) {
	got, changed := dropYearToken("ohio congressional districts 1994")
	if !changed || got != "ohio congressional districts" {
		t.Errorf("dropYearToken = %q, %v", got, changed)
	}
	if _, changed := dropYearToken("climate of dover ohio"); changed {
		t.Error("yearless caption changed")
	}
	if _, changed := dropYearToken("1954 open (golf)"); changed {
		t.Error("short caption changed")
	}
}

func TestCaseData(t *testing.T) {
	ohio := OhioDistrictsTable()
	if ohio.NumRows() != 4 || ohio.ColumnIndex("incumbent") != 1 {
		t.Error("Ohio table malformed")
	}
	film := FilmographyTable()
	if row := film.FindRow(1, "stomp the yard"); row != 2 {
		t.Errorf("filmography row = %d", row)
	}
	e1 := USOpen1954Table()
	if e1.NumRows() != 10 {
		t.Errorf("E1 rows = %d", e1.NumRows())
	}
	// The Figure 4 claim refutes against E1 with total 1710.
	out, expl := claims.Eval(GolfClaim(), e1)
	if out != claims.Refutes || !strings.Contains(expl, "1710") {
		t.Errorf("golf claim vs E1 = %v (%s)", out, expl)
	}
	// And is unrelated to E2.
	out, _ = claims.Eval(GolfClaim(), USOpen1959Table())
	if out != claims.Unrelated {
		t.Errorf("golf claim vs E2 = %v", out)
	}
	// Stomp the Yard claim supports against the filmography.
	out, _ = claims.Eval(StompTheYardClaim(), film)
	if out != claims.Supports {
		t.Errorf("stomp claim = %v", out)
	}
}

func TestAddCaseData(t *testing.T) {
	c := buildCorpus(t)
	before := c.Lake.Stats()
	if err := c.AddCaseData(); err != nil {
		t.Fatal(err)
	}
	after := c.Lake.Stats()
	if after.Tables != before.Tables+4 {
		t.Errorf("case tables not added: %d -> %d", before.Tables, after.Tables)
	}
	if after.Docs != before.Docs+1 {
		t.Errorf("case doc not added")
	}
	// Case tables are NOT in c.Tables (no domain metadata).
	for _, tbl := range c.Tables {
		if tbl.ID == "case-ohio" {
			t.Error("case table leaked into corpus.Tables")
		}
	}
	// Adding twice fails loudly (duplicate IDs).
	if err := c.AddCaseData(); err == nil {
		t.Error("double AddCaseData succeeded")
	}
}

func TestEntityPoolReuse(t *testing.T) {
	c := buildCorpus(t)
	// With EntityReuse 0.4 some person entities must appear in multiple
	// tables.
	counts := make(map[string]int)
	for _, tbl := range c.Tables {
		d := c.domainOf(tbl)
		for _, pc := range d.personCols {
			seen := make(map[string]bool)
			for _, row := range tbl.Rows {
				f := textutil.Fold(row[pc])
				if !seen[f] {
					counts[f]++
					seen[f] = true
				}
			}
		}
	}
	reused := 0
	for _, n := range counts {
		if n > 1 {
			reused++
		}
	}
	if reused == 0 {
		t.Error("no entity reuse across tables")
	}
}
