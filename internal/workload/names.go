// Package workload generates the synthetic corpora and tasks for every
// experiment in the paper: a TabFact-style collection of web tables with
// true/false textual claims, a WikiTable-TURL-style collection of
// entity-linked tables with Wikipedia-like entity pages, the tuple-completion
// task of Section 4, and the exact case data of Figures 1 and 4.
//
// Everything is generated deterministically from a seed (see
// internal/detrand), so experiments are bit-reproducible.
package workload

// Name pools for deterministic entity generation. The cross product of
// first and last names yields ~46k distinct people; surnames repeat across
// entities, which is what makes text retrieval genuinely confusable (the
// paper's tuple→text recall of 0.58 depends on entity pages not being
// trivially distinguishable).
var firstNames = []string{
	"james", "mary", "john", "patricia", "robert", "jennifer", "michael",
	"linda", "william", "elizabeth", "david", "barbara", "richard", "susan",
	"joseph", "jessica", "thomas", "sarah", "charles", "karen", "chris",
	"nancy", "daniel", "lisa", "matthew", "betty", "anthony", "margaret",
	"mark", "sandra", "donald", "ashley", "steven", "kimberly", "paul",
	"emily", "andrew", "donna", "joshua", "michelle", "kenneth", "dorothy",
	"kevin", "carol", "brian", "amanda", "george", "melissa", "edward",
	"deborah", "ronald", "stephanie", "timothy", "rebecca", "jason", "sharon",
	"jeffrey", "laura", "ryan", "cynthia", "jacob", "kathleen", "gary",
	"amy", "nicholas", "shirley", "eric", "angela", "jonathan", "helen",
	"stephen", "anna", "larry", "brenda", "justin", "pamela", "scott",
	"nicole", "brandon", "emma", "benjamin", "samantha", "samuel", "katherine",
	"gregory", "christine", "frank", "debra", "alexander", "rachel", "raymond",
	"catherine", "patrick", "carolyn", "jack", "janet", "dennis", "ruth",
	"jerry", "maria", "tyler", "heather", "aaron", "diane", "jose", "virginia",
	"adam", "julie", "henry", "joyce", "nathan", "victoria", "douglas",
	"olivia", "zachary", "kelly", "peter", "christina", "kyle", "lauren",
	"walter", "joan", "ethan", "evelyn", "jeremy", "judith", "harold",
	"megan", "keith", "cheryl", "christian", "andrea", "roger", "hannah",
	"noah", "martha", "gerald", "jacqueline", "carl", "frances", "terry",
	"gloria", "sean", "ann", "austin", "teresa", "arthur", "kathryn",
	"lawrence", "sara", "jesse", "janice", "dylan", "jean", "bryan", "alice",
	"joe", "madison", "jordan", "doris", "billy", "abigail", "bruce", "julia",
	"albert", "judy", "willie", "grace", "gabriel", "denise", "logan",
	"amber", "alan", "marilyn", "juan", "beverly", "wayne", "danielle",
	"roy", "theresa", "ralph", "sophia", "randy", "marie", "eugene", "diana",
	"vincent", "brittany", "russell", "natalie", "elijah", "isabella",
	"louis", "charlotte", "bobby", "rose", "philip", "alexis", "johnny",
	"kayla", "tommy", "fred", "ben", "ed", "gene", "lloyd", "dick", "shelley",
	"cary", "julius", "meagan", "steve", "rob", "mike",
}

var lastNames = []string{
	"smith", "johnson", "williams", "brown", "jones", "garcia", "miller",
	"davis", "rodriguez", "martinez", "hernandez", "lopez", "gonzalez",
	"wilson", "anderson", "thomas", "taylor", "moore", "jackson", "martin",
	"lee", "perez", "thompson", "white", "harris", "sanchez", "clark",
	"ramirez", "lewis", "robinson", "walker", "young", "allen", "king",
	"wright", "scott", "torres", "nguyen", "hill", "flores", "green",
	"adams", "nelson", "baker", "hall", "rivera", "campbell", "mitchell",
	"carter", "roberts", "gomez", "phillips", "evans", "turner", "diaz",
	"parker", "cruz", "edwards", "collins", "reyes", "stewart", "morris",
	"morales", "murphy", "cook", "rogers", "gutierrez", "ortiz", "morgan",
	"cooper", "peterson", "bailey", "reed", "kelly", "howard", "ramos",
	"kim", "cox", "ward", "richardson", "watson", "brooks", "chavez",
	"wood", "james", "bennett", "gray", "mendoza", "ruiz", "hughes",
	"price", "alvarez", "castillo", "sanders", "patel", "myers", "long",
	"ross", "foster", "jimenez", "powell", "jenkins", "perry", "russell",
	"sullivan", "bell", "coleman", "butler", "henderson", "barnes",
	"fisher", "vasquez", "simmons", "romero", "jordan", "patterson",
	"alexander", "hamilton", "graham", "reynolds", "griffin", "wallace",
	"moreno", "west", "cole", "hayes", "bryant", "herrera", "gibson",
	"ellis", "tran", "medina", "aguilar", "stevens", "murray", "ford",
	"castro", "marshall", "owens", "harrison", "fernandez", "mcdonald",
	"woods", "washington", "kennedy", "wells", "vargas", "henry", "chen",
	"freeman", "webb", "tucker", "guzman", "burns", "crawford", "olson",
	"simpson", "porter", "hunter", "gordon", "mendez", "silva", "shaw",
	"snyder", "mason", "dixon", "munoz", "hunt", "hicks", "holmes",
	"palmer", "wagner", "black", "robertson", "boyd", "rose", "stone",
	"salazar", "fox", "warren", "mills", "meyer", "rice", "schmidt",
	"bolt", "haas", "hogan", "furgol", "littler", "mangrum", "mayer",
	"locke", "mayfield", "patton", "middlecoff", "fleck", "boros", "chabot",
	"portman", "oxley", "good",
}

var countries = []string{
	"united states", "canada", "mexico", "brazil", "argentina", "england",
	"scotland", "france", "germany", "italy", "spain", "sweden", "norway",
	"finland", "denmark", "netherlands", "belgium", "switzerland", "austria",
	"poland", "ireland", "portugal", "greece", "japan", "china", "india",
	"australia", "new zealand", "south africa", "south korea", "colombia",
	"chile", "peru", "fiji", "zimbabwe", "thailand", "vietnam", "egypt",
}

var cities = []string{
	"springfield", "riverton", "oakdale", "maplewood", "fairview", "georgetown",
	"ashland", "clinton", "franklin", "greenville", "bristol", "salem",
	"madison", "arlington", "dover", "milton", "newport", "kingston",
	"lexington", "burlington", "clayton", "dayton", "hudson", "jackson",
	"monroe", "auburn", "florence", "manchester", "winchester", "lancaster",
	"hamilton", "richmond", "albany", "trenton", "concord", "augusta",
	"columbia", "raleigh", "denver", "phoenix", "portland", "seattle",
	"brookfield", "cedarville", "eastport", "ferndale", "glenwood",
	"harborview", "ironton", "juniper", "kentfield", "lakemont",
	"marlowe", "northgate", "oakhurst", "pinecrest", "quarry hill",
	"redwood", "stonebrook", "thornton", "umberland", "vanport",
	"westbrook", "yardley", "ashford", "bellmore", "crestline",
	"dunmore", "elkhart", "fairmont", "grantville", "hollis",
	"inverness", "jasper", "kingsford", "larkspur", "midvale",
	"newhall", "ottersberg", "palisade", "quincy", "rockledge",
}

var usStates = []string{
	"ohio", "texas", "california", "florida", "new york", "pennsylvania",
	"illinois", "georgia", "michigan", "virginia", "washington", "arizona",
	"tennessee", "indiana", "missouri", "maryland", "wisconsin", "colorado",
	"minnesota", "alabama", "kentucky", "oregon", "oklahoma", "iowa",
	"kansas", "utah", "nevada", "arkansas", "mississippi", "nebraska",
}

var parties = []string{"republican", "democratic", "independent"}

var professions = []string{
	"golfer", "actress", "actor", "politician", "singer", "basketball player",
	"football player", "swimmer", "cyclist", "novelist", "journalist",
	"economist", "engineer", "chef", "director", "producer", "physicist",
}

var filmTitles = []string{
	"miles from home", "waist deep", "stomp the yard", "one missed call",
	"the love guru", "midnight harbor", "silver canyon", "the last ledger",
	"paper lanterns", "crimson tide rising", "the glass orchard",
	"winter's arithmetic", "a quiet ferocity", "the cartographer",
	"echoes of clay", "sundown boulevard", "the seventh juror",
	"brambleton heights", "the violet hour", "northbound", "harvest of stone",
	"the gilded cage", "saltwater promises", "the long thaw", "ironwood",
	"city of sparrows", "the borrowed years", "halfway to somewhere",
	"the memory merchant", "glasshouse rules", "a field of static",
	"the paper admiral", "low tide at noon", "the unfinished bridge",
}

var filmRoles = []string{
	"natasha freeman", "coco", "april palmer", "shelley baum",
	"prudence roanoke", "detective lana cole", "dr. renee walsh",
	"captain elise moore", "sergeant dana frost", "professor iris bell",
	"nurse camille reyes", "agent sonya park", "judge marian holt",
	"reporter gail foster", "chef rosa delgado", "pilot jean harper",
}

var albumAdjectives = []string{
	"electric", "velvet", "broken", "golden", "silent", "neon", "paper",
	"hollow", "crystal", "midnight", "scarlet", "wandering", "forgotten",
}

var albumNouns = []string{
	"horizon", "garden", "mirror", "avenue", "season", "letters", "engine",
	"harbor", "lantern", "compass", "orchard", "anthem", "satellite",
}

var recordLabels = []string{
	"blue harbor records", "northline music", "gilt note", "stonebridge",
	"red letter audio", "parallel sound", "arcadia records", "sable music",
}

var teamNames = []string{
	"wildcats", "falcons", "mustangs", "pioneers", "rockets", "bulldogs",
	"hornets", "panthers", "chargers", "raiders", "mariners", "comets",
	"lumberjacks", "senators", "grizzlies", "cardinals", "stallions",
}

var industries = []string{
	"software", "logistics", "pharmaceuticals", "retail", "aerospace",
	"insurance", "telecommunications", "agriculture", "energy", "media",
	"banking", "hospitality", "construction", "mining", "textiles",
}

var months = []string{
	"january", "february", "march", "april", "may", "june", "july",
	"august", "september", "october", "november", "december",
}

var ordinals = []string{
	"1st", "2nd", "3rd", "4th", "5th", "6th", "7th", "8th", "9th", "10th",
	"11th", "12th", "13th", "14th", "15th", "16th", "17th", "18th",
}
