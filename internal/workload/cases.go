package workload

import (
	"repro/internal/claims"
	"repro/internal/datalake"
	"repro/internal/doc"
	"repro/internal/table"
)

// This file reproduces the exact case data of the paper's Figures 1 and 4,
// used by the case-study experiments and the example programs.

// CaseSource is the source ID for the hand-authored case data.
const CaseSource = "paper-cases"

// OhioDistrictsTable returns the Figure 1(a) table: Ohio congressional
// districts with incumbents and first-elected years.
func OhioDistrictsTable() *table.Table {
	t := table.New("case-ohio", "ohio congressional districts",
		[]string{"district", "incumbent", "first elected"})
	t.SourceID = CaseSource
	t.MustAppendRow("ohio's 1st congressional district", "steve chabot", "1994")
	t.MustAppendRow("ohio's 2nd congressional district", "rob portman", "1993")
	t.MustAppendRow("ohio's 3rd congressional district", "mike turner", "2002")
	t.MustAppendRow("ohio's 4th congressional district", "mike oxley", "1981")
	return t
}

// FilmographyTable returns the Figure 1(b) table: Meagan Good's filmography.
func FilmographyTable() *table.Table {
	t := table.New("case-filmography", "meagan good's filmography",
		[]string{"year", "title", "role"})
	t.SourceID = CaseSource
	t.MustAppendRow("2006", "miles from home", "natasha freeman")
	t.MustAppendRow("2006", "waist deep", "coco")
	t.MustAppendRow("2007", "stomp the yard", "april palmer")
	t.MustAppendRow("2008", "one missed call", "shelley baum")
	t.MustAppendRow("2008", "the love guru", "prudence roanoke")
	return t
}

// MeaganGoodDoc returns a Wikipedia-style page for Meagan Good that can
// verify the Figure 1(b) text-generation case: she did play April Palmer in
// Stomp the Yard (2007).
func MeaganGoodDoc() *doc.Document {
	return &doc.Document{
		ID:       "case-doc-meagan-good",
		Title:    "Meagan Good",
		EntityID: "meagan good",
		SourceID: CaseSource,
		Text: "Meagan Good is a united states actress. " +
			"Meagan Good was born in springfield in 1981. " +
			"In the meagan good's filmography, Meagan Good recorded a role of april palmer. " +
			"In 2007 she appeared in stomp the yard as april palmer. " +
			"Her credits also include waist deep and one missed call.",
	}
}

// USOpen1954Table returns Figure 4's evidence table E1: the 1954 U.S. Open
// (golf) leaderboard, transcribed from the paper.
func USOpen1954Table() *table.Table {
	t := table.New("case-usopen-1954", "1954 u.s. open (golf)",
		[]string{"place", "player", "country", "score", "to par", "money"})
	t.SourceID = CaseSource
	t.MustAppendRow("t1", "ed furgol", "united states", "71 + 70 + 71 + 72 = 284", "+ 4", "6000")
	t.MustAppendRow("t2", "gene littler", "united states", "70 + 69 + 76 + 70 = 285", "+ 5", "3600")
	t.MustAppendRow("t3", "lloyd mangrum", "united states", "72 + 71 + 72 + 71 = 286", "+ 6", "1500")
	t.MustAppendRow("t3", "dick mayer", "united states", "72 + 71 + 70 + 73 = 286", "+ 6", "1500")
	t.MustAppendRow("t5", "bobby locke", "south africa", "74 + 70 + 74 + 70 = 288", "+ 8", "960")
	t.MustAppendRow("t6", "tommy bolt", "united states", "72 + 72 + 73 + 72 = 289", "+ 9", "570")
	t.MustAppendRow("t6", "fred haas", "united states", "73 + 73 + 71 + 72 = 289", "+ 9", "570")
	t.MustAppendRow("t6", "ben hogan", "united states", "71 + 70 + 76 + 72 = 289", "+ 9", "570")
	t.MustAppendRow("t6", "shelley mayfield", "united states", "73 + 75 + 72 + 69 = 289", "+ 9", "570")
	t.MustAppendRow("t6", "billy joe patton (a)", "united states", "69 + 76 + 71 + 73 = 289", "+ 9", "0")
	return t
}

// USOpen1959Table returns Figure 4's evidence table E2: U.S. Open champions
// at the 1959 edition — related players, wrong year, hence "not related".
func USOpen1959Table() *table.Table {
	t := table.New("case-usopen-1959", "1959 u.s. open (golf)",
		[]string{"player", "country", "year (s) won", "total", "to par", "finish"})
	t.SourceID = CaseSource
	t.MustAppendRow("ben hogan", "united states", "1948, 1950, 1951, 1953", "287", "+ 7", "t8")
	t.MustAppendRow("cary middlecoff", "united states", "1949, 1956", "294", "+ 14", "t19")
	t.MustAppendRow("jack fleck", "united states", "1955", "294", "+ 14", "t19")
	t.MustAppendRow("julius boros", "united states", "1952", "297", "+ 17", "t28")
	t.MustAppendRow("tommy bolt", "united states", "1958", "301", "+ 21", "t38")
	return t
}

// GolfClaim returns Figure 4's claim: "In 1954 u.s. open (golf), the cash
// prize for tommy bolt, fred haas, and ben hogan was 960 in total." — a
// false claim (each won 570, totaling 1710) that E1 refutes via aggregation
// and E2 cannot address.
func GolfClaim() claims.Claim {
	c := claims.Claim{
		Context:   "1954 u.s. open (golf)",
		Entities:  []string{"tommy bolt", "fred haas", "ben hogan"},
		Attribute: "cash prize",
		Op:        claims.OpSum,
		Value:     "960",
	}
	c.Render()
	return c
}

// StompTheYardClaim returns Figure 1(b)'s question as a claim: Meagan Good's
// role in Stomp the Yard. The true role is april palmer.
func StompTheYardClaim() claims.Claim {
	c := claims.Claim{
		Context:   "meagan good's filmography",
		Entities:  []string{"stomp the yard"},
		Attribute: "role",
		Op:        claims.OpLookup,
		Value:     "april palmer",
	}
	c.Render()
	return c
}

// AddCaseData ingests all Figure 1 and Figure 4 case instances into the
// corpus's lake so the end-to-end pipeline can retrieve them.
func (c *Corpus) AddCaseData() error {
	c.Lake.AddSource(datalake.Source{ID: CaseSource, Name: "paper case studies", TrustPrior: 0.9})
	// Case tables are ingested into the lake only (not into c.Tables): the
	// task generators sample from the synthetic tables, which carry domain
	// metadata the case tables do not.
	for _, t := range []*table.Table{
		OhioDistrictsTable(), FilmographyTable(), USOpen1954Table(), USOpen1959Table(),
	} {
		if err := c.Lake.AddTable(t); err != nil {
			return err
		}
	}
	if err := c.Lake.AddDocument(MeaganGoodDoc()); err != nil {
		return err
	}
	return nil
}
