package workload

import (
	"strconv"
	"strings"

	"repro/internal/detrand"
	"repro/internal/doc"
)

// titleCase capitalizes the first letter of each word for page titles.
func titleCase(s string) string {
	words := strings.Fields(s)
	for i, w := range words {
		if len(w) > 0 {
			words[i] = strings.ToUpper(w[:1]) + w[1:]
		}
	}
	return strings.Join(words, " ")
}

// genEntityDoc writes a Wikipedia-style page for a person entity. The page
// always states identity facts; with probability cfg.TextContextProb per
// observation (capped at two) it also includes a sentence tying the entity
// to a table context ("In the 1954 springfield open (golf), ... recorded a
// money of 570."). Pages also name-drop other entities, mimicking link
// structure; both properties together produce the partial tuple→text
// retrievability the paper measures (recall 0.58 at top-3).
// It returns the page and the observations whose context sentences were
// actually included, which the task oracles use as ground truth for what the
// page can support or refute.
func genEntityDoc(r *detrand.Rand, cfg Config, foldedName string, obs []Observation, pool *entityPool) (*doc.Document, []Observation) {
	name := titleCase(foldedName)
	prof := professions[r.Intn(len(professions))]
	nat := countries[r.Intn(len(countries))]
	birthCity := cities[r.Intn(len(cities))]
	birthYear := r.IntRange(1900, 1995)

	var b strings.Builder
	b.WriteString(name)
	b.WriteString(" is a ")
	b.WriteString(nat)
	b.WriteString(" ")
	b.WriteString(prof)
	b.WriteString(", born in ")
	b.WriteString(birthCity)
	b.WriteString(" in ")
	b.WriteString(strconv.Itoa(birthYear))
	b.WriteString(". ")

	// Context sentences: at most two observations, each independently
	// included with TextContextProb.
	nCtx := len(obs)
	if nCtx > 2 {
		nCtx = 2
	}
	var included []Observation
	for i := 0; i < nCtx; i++ {
		if !r.Bool(cfg.TextContextProb) {
			continue
		}
		o := obs[i]
		included = append(included, o)
		b.WriteString("In the ")
		b.WriteString(o.Caption)
		b.WriteString(", ")
		b.WriteString(name)
		b.WriteString(" recorded a ")
		b.WriteString(o.Attr)
		b.WriteString(" of ")
		b.WriteString(o.Value)
		b.WriteString(". ")
	}

	// Generic career filler shared across pages: common vocabulary that
	// keeps pages from being trivially separable.
	b.WriteString("Early in a long career, the ")
	b.WriteString(prof)
	b.WriteString(" trained in ")
	b.WriteString(cities[r.Intn(len(cities))])
	b.WriteString(" and competed across ")
	b.WriteString(countries[r.Intn(len(countries))])
	b.WriteString(" and ")
	b.WriteString(countries[r.Intn(len(countries))])
	b.WriteString(". ")

	// Name-drops of other entities.
	for i := 0; i < cfg.TextMentions && len(pool.issued) > 0; i++ {
		other := pool.issued[r.Intn(len(pool.issued))]
		switch i % 3 {
		case 0:
			b.WriteString("Commentators have often drawn comparisons with ")
			b.WriteString(other)
			b.WriteString(". ")
		case 1:
			b.WriteString("A notable rivalry with ")
			b.WriteString(other)
			b.WriteString(" drew wide attention. ")
		default:
			b.WriteString(titleCase(other))
			b.WriteString(" later cited this career as an influence. ")
		}
	}

	b.WriteString("Further reading covers the era, its records, and its most memorable seasons.")

	return &doc.Document{
		Title:    name,
		Text:     b.String(),
		EntityID: foldedName,
	}, included
}
