package workload

import (
	"fmt"
	"strconv"

	"repro/internal/detrand"
	"repro/internal/table"
)

// entityPool hands out person names. With probability reuse it returns a
// previously issued name instead of a fresh one, creating the cross-table
// entity overlap that makes retrieval genuinely confusable (the same golfer
// appears in several tournaments, as in the paper's Figure 4 where Tommy
// Bolt and Ben Hogan appear in both the 1954 and 1959 U.S. Open tables).
type entityPool struct {
	r      *detrand.Rand
	reuse  float64
	issued []string
	seen   map[string]struct{}
}

func newEntityPool(r *detrand.Rand, reuse float64) *entityPool {
	return &entityPool{r: r, reuse: reuse, seen: make(map[string]struct{})}
}

// next returns an entity name, possibly reused.
func (p *entityPool) next() string {
	if len(p.issued) > 0 && p.r.Bool(p.reuse) {
		return p.issued[p.r.Intn(len(p.issued))]
	}
	for tries := 0; tries < 100; tries++ {
		name := firstNames[p.r.Intn(len(firstNames))] + " " + lastNames[p.r.Intn(len(lastNames))]
		if _, dup := p.seen[name]; dup {
			continue
		}
		p.seen[name] = struct{}{}
		p.issued = append(p.issued, name)
		return name
	}
	// Name space exhausted at this size; fall back to reuse.
	return p.issued[p.r.Intn(len(p.issued))]
}

// nextFresh returns a never-before-issued name (for key columns that must be
// distinct within a table the caller still dedups locally).
func (p *entityPool) nextFresh() string {
	for tries := 0; tries < 1000; tries++ {
		name := firstNames[p.r.Intn(len(firstNames))] + " " + lastNames[p.r.Intn(len(lastNames))]
		if _, dup := p.seen[name]; dup {
			continue
		}
		p.seen[name] = struct{}{}
		p.issued = append(p.issued, name)
		return name
	}
	return fmt.Sprintf("person %d", p.r.Intn(1_000_000))
}

// domainGen generates one table of its domain. keyCol is the column whose
// values identify rows (the entity column); attrCols are the non-key columns
// eligible for the tuple-completion and claim tasks.
type domainGen struct {
	name     string
	generate func(r *detrand.Rand, id string, pool *entityPool) *table.Table
	keyCol   int
	attrCols []int
	// personCols are the columns containing person entities that get
	// Wikipedia-style text pages in the lake (the WikiTable-TURL entity
	// links of the paper).
	personCols []int
}

// distinctEntities draws n distinct entity names from the pool.
func distinctEntities(r *detrand.Rand, pool *entityPool, n int) []string {
	seen := make(map[string]struct{}, n)
	out := make([]string, 0, n)
	for len(out) < n {
		name := pool.next()
		if _, dup := seen[name]; dup {
			name = pool.nextFresh()
			if _, dup2 := seen[name]; dup2 {
				continue
			}
		}
		seen[name] = struct{}{}
		out = append(out, name)
	}
	return out
}

// genGolf emits a "{year} {city} open (golf)" leaderboard like Figure 4.
func genGolf(r *detrand.Rand, id string, pool *entityPool) *table.Table {
	year := r.IntRange(1930, 2015)
	city := cities[r.Intn(len(cities))]
	caption := fmt.Sprintf("%d %s open (golf)", year, city)
	t := table.New(id, caption, []string{"place", "player", "country", "score", "to par", "money"})
	n := r.IntRange(6, 12)
	players := distinctEntities(r, pool, n)
	par := 280
	score := par + r.IntRange(-8, 4)
	prize := 100 * r.IntRange(40, 80)
	for i := 0; i < n; i++ {
		t.MustAppendRow(
			"t"+strconv.Itoa(i+1),
			players[i],
			countries[r.Intn(len(countries))],
			strconv.Itoa(score),
			fmt.Sprintf("%+d", score-par),
			strconv.Itoa(prize),
		)
		score += r.IntRange(0, 2)
		prize = prize * r.IntRange(55, 85) / 100
		if prize < 100 {
			prize = 100
		}
	}
	return t
}

// genElection emits a congressional-district table like Figure 1(a).
func genElection(r *detrand.Rand, id string, pool *entityPool) *table.Table {
	state := usStates[r.Intn(len(usStates))]
	year := 1900 + 2*r.Intn(60)
	caption := fmt.Sprintf("%s congressional districts %d", state, year)
	t := table.New(id, caption, []string{"district", "incumbent", "party", "first elected"})
	n := r.IntRange(4, 10)
	incumbents := distinctEntities(r, pool, n)
	for i := 0; i < n; i++ {
		t.MustAppendRow(
			state+"'s "+ordinals[i]+" congressional district",
			incumbents[i],
			parties[r.Intn(len(parties))],
			strconv.Itoa(r.IntRange(1978, 2012)),
		)
	}
	return t
}

// genFilmography emits a "{person}'s filmography" like Figure 1(b).
func genFilmography(r *detrand.Rand, id string, pool *entityPool) *table.Table {
	person := pool.next()
	caption := person + "'s filmography"
	t := table.New(id, caption, []string{"year", "title", "role"})
	n := r.IntRange(4, 9)
	year := r.IntRange(1985, 2012)
	used := make(map[int]struct{})
	for i := 0; i < n; i++ {
		ti := r.Intn(len(filmTitles))
		for {
			if _, dup := used[ti]; !dup {
				break
			}
			ti = (ti + 1) % len(filmTitles)
		}
		used[ti] = struct{}{}
		t.MustAppendRow(
			strconv.Itoa(year),
			filmTitles[ti],
			filmRoles[r.Intn(len(filmRoles))],
		)
		year += r.IntRange(0, 2)
	}
	return t
}

// genSeason emits a team season schedule table.
func genSeason(r *detrand.Rand, id string, pool *entityPool) *table.Table {
	year := r.IntRange(1960, 2015)
	team := cities[r.Intn(len(cities))] + " " + teamNames[r.Intn(len(teamNames))]
	caption := fmt.Sprintf("%d %s season", year, team)
	t := table.New(id, caption, []string{"week", "opponent", "result", "attendance"})
	n := r.IntRange(6, 12)
	for i := 0; i < n; i++ {
		opp := cities[r.Intn(len(cities))] + " " + teamNames[r.Intn(len(teamNames))]
		res := fmt.Sprintf("w %d - %d", r.IntRange(14, 45), r.IntRange(0, 13))
		if r.Bool(0.45) {
			res = fmt.Sprintf("l %d - %d", r.IntRange(0, 13), r.IntRange(14, 45))
		}
		t.MustAppendRow(
			strconv.Itoa(i+1),
			opp,
			res,
			strconv.Itoa(100*r.IntRange(80, 700)),
		)
	}
	return t
}

// genMedals emits an olympics-style medal table.
func genMedals(r *detrand.Rand, id string, pool *entityPool) *table.Table {
	year := r.IntRange(1948, 2012)
	city := cities[r.Intn(len(cities))]
	caption := fmt.Sprintf("%d %s games medal table", year, city)
	t := table.New(id, caption, []string{"rank", "nation", "gold", "silver", "bronze", "total"})
	n := r.IntRange(5, 10)
	perm := r.Perm(len(countries))
	gold := r.IntRange(10, 30)
	for i := 0; i < n; i++ {
		g := gold
		s := r.IntRange(0, g+3)
		b := r.IntRange(0, g+4)
		t.MustAppendRow(
			strconv.Itoa(i+1),
			countries[perm[i%len(perm)]],
			strconv.Itoa(g),
			strconv.Itoa(s),
			strconv.Itoa(b),
			strconv.Itoa(g+s+b),
		)
		gold -= r.IntRange(1, 4)
		if gold < 0 {
			gold = 0
		}
	}
	return t
}

// genDiscography emits a "{person} discography" table.
func genDiscography(r *detrand.Rand, id string, pool *entityPool) *table.Table {
	person := pool.next()
	caption := person + " discography"
	t := table.New(id, caption, []string{"year", "album", "label", "peak position"})
	n := r.IntRange(3, 8)
	year := r.IntRange(1970, 2010)
	for i := 0; i < n; i++ {
		album := albumAdjectives[r.Intn(len(albumAdjectives))] + " " + albumNouns[r.Intn(len(albumNouns))]
		t.MustAppendRow(
			strconv.Itoa(year),
			album,
			recordLabels[r.Intn(len(recordLabels))],
			strconv.Itoa(r.IntRange(1, 100)),
		)
		year += r.IntRange(1, 3)
	}
	return t
}

// genCompanies emits a largest-companies table.
func genCompanies(r *detrand.Rand, id string, pool *entityPool) *table.Table {
	state := usStates[r.Intn(len(usStates))]
	year := r.IntRange(1995, 2020)
	caption := fmt.Sprintf("largest companies of %s %d", state, year)
	t := table.New(id, caption, []string{"company", "industry", "revenue", "employees"})
	n := r.IntRange(4, 9)
	seen := make(map[string]struct{})
	for i := 0; i < n; i++ {
		name := cities[r.Intn(len(cities))] + " " + industries[r.Intn(len(industries))] + " group"
		if _, dup := seen[name]; dup {
			name = lastNames[r.Intn(len(lastNames))] + " " + industries[r.Intn(len(industries))] + " corporation"
		}
		seen[name] = struct{}{}
		t.MustAppendRow(
			name,
			industries[r.Intn(len(industries))],
			strconv.Itoa(10*r.IntRange(20, 900)),
			strconv.Itoa(100*r.IntRange(5, 400)),
		)
	}
	return t
}

// genWeather emits a monthly climate table.
func genWeather(r *detrand.Rand, id string, pool *entityPool) *table.Table {
	city := cities[r.Intn(len(cities))]
	state := usStates[r.Intn(len(usStates))]
	caption := "climate of " + city + " " + state
	t := table.New(id, caption, []string{"month", "record high", "record low", "precipitation"})
	for i := 0; i < 12; i++ {
		base := 40 + 30*absInt(6-i)/6
		t.MustAppendRow(
			months[i],
			strconv.Itoa(110-base+r.IntRange(-5, 5)),
			strconv.Itoa(base-45+r.IntRange(-5, 5)),
			strconv.Itoa(r.IntRange(10, 120)),
		)
	}
	return t
}

func absInt(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// domains is the registry of table generators. keyCol / attrCols drive task
// generation; peopleKey marks domains whose keys get entity text pages.
var domains = []domainGen{
	{name: "golf", generate: genGolf, keyCol: 1, attrCols: []int{2, 3, 5}, personCols: []int{1}},
	{name: "election", generate: genElection, keyCol: 0, attrCols: []int{1, 2, 3}, personCols: []int{1}},
	{name: "filmography", generate: genFilmography, keyCol: 1, attrCols: []int{0, 2}},
	{name: "season", generate: genSeason, keyCol: 0, attrCols: []int{1, 3}},
	{name: "medals", generate: genMedals, keyCol: 1, attrCols: []int{2, 3, 4, 5}},
	{name: "discography", generate: genDiscography, keyCol: 1, attrCols: []int{0, 2, 3}},
	{name: "companies", generate: genCompanies, keyCol: 0, attrCols: []int{1, 2, 3}},
	{name: "weather", generate: genWeather, keyCol: 0, attrCols: []int{1, 2, 3}},
}
