package workload

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/claims"
	"repro/internal/datalake"
	"repro/internal/detrand"
	"repro/internal/table"
	"repro/internal/textutil"
)

// TupleTask is one tuple-completion query from Section 4: a lake tuple with
// one non-key attribute masked, to be imputed by the generator and then
// verified against the lake.
type TupleTask struct {
	// TableID and Row address the original tuple in the lake.
	TableID string
	Row     int
	// MaskedCol is the column whose value was removed.
	MaskedCol int
	// TrueValue is the removed (ground-truth) cell value.
	TrueValue string
	// Tuple is the original complete tuple.
	Tuple table.Tuple
	// KeyCol is the table's entity column.
	KeyCol int
	// RelevantTupleID is the instance ID of the original counterpart tuple
	// (the paper's definition of relevant tuple evidence).
	RelevantTupleID string
	// RelevantDocIDs are the instance IDs of entity pages about entities in
	// the tuple (the paper's definition of relevant text evidence).
	RelevantDocIDs []string
}

// MaskedAttr returns the masked column's name.
func (t TupleTask) MaskedAttr() string { return t.Tuple.Columns[t.MaskedCol] }

// Entity returns the tuple's key (entity) value.
func (t TupleTask) Entity() string { return t.Tuple.Values[t.KeyCol] }

// MaskedTuple returns the tuple with the masked cell replaced by the Missing
// sentinel, the exact input handed to the generator.
func (t TupleTask) MaskedTuple() table.Tuple {
	return t.Tuple.WithValue(t.MaskedAttr(), table.Missing)
}

// TupleTasks samples n tuple-completion tasks. Tasks are drawn from tables
// whose rows contain person entities with text pages, so that both the
// (tuple→tuple) and (tuple→text) retrieval experiments are well defined, as
// in the paper where the 100 tuples come from entity-linked web tables.
func (c *Corpus) TupleTasks(n int) ([]TupleTask, error) {
	r := detrand.New(c.Config.Seed, "tuple-tasks")
	// Candidate tables: person-bearing domains with at least 2 rows.
	var candidates []*table.Table
	for _, t := range c.Tables {
		d := c.domainOf(t)
		if len(d.personCols) > 0 && t.NumRows() >= 2 {
			candidates = append(candidates, t)
		}
	}
	if len(candidates) == 0 {
		return nil, fmt.Errorf("workload: no person-bearing tables to sample tuple tasks from")
	}
	tasks := make([]TupleTask, 0, n)
	seen := make(map[string]struct{})
	for tries := 0; len(tasks) < n && tries < 50*n; tries++ {
		t := candidates[r.Intn(len(candidates))]
		d := c.domainOf(t)
		row := r.Intn(t.NumRows())
		key := t.ID + "#" + strconv.Itoa(row)
		if _, dup := seen[key]; dup {
			continue
		}
		// The masked column is a non-key attribute, per the paper's setup
		// ("randomly removed a non-key attribute cell value").
		col := d.attrCols[r.Intn(len(d.attrCols))]
		if col == d.keyCol {
			continue
		}
		tp, ok := t.TupleAt(row)
		if !ok {
			continue
		}
		// Relevant text evidence: pages about person entities in this row.
		var docs []string
		for _, pc := range d.personCols {
			if docID, ok := c.EntityDocs[textutil.Fold(t.Rows[row][pc])]; ok {
				docs = append(docs, datalake.TextInstanceID(docID))
			}
		}
		if len(docs) == 0 {
			// Keep tasks answerable by both modalities.
			continue
		}
		seen[key] = struct{}{}
		tasks = append(tasks, TupleTask{
			TableID:         t.ID,
			Row:             row,
			MaskedCol:       col,
			TrueValue:       t.Rows[row][col],
			Tuple:           tp,
			KeyCol:          d.keyCol,
			RelevantTupleID: datalake.TupleInstanceID(t.ID, row),
			RelevantDocIDs:  docs,
		})
	}
	if len(tasks) < n {
		return nil, fmt.Errorf("workload: could only sample %d of %d tuple tasks", len(tasks), n)
	}
	return tasks, nil
}

// ClaimTask is one TabFact-style textual claim with a truth label and its
// relevant table.
type ClaimTask struct {
	// Claim is the structured claim; Claim.Text is the natural-language form.
	Claim claims.Claim
	// Label is the ground truth: true when the claim holds in its table.
	Label bool
	// TableID identifies the relevant table (instance table:<TableID>).
	TableID string
}

// RelevantTableID returns the lake instance ID of the claim's table.
func (ct ClaimTask) RelevantTableID() string {
	return datalake.TableInstanceID(ct.TableID)
}

// ClaimTasks samples n labeled claims, half true and half false in
// expectation. Claim operations mix lookups with the aggregation claims the
// paper's Figure 4 illustrates (sum/avg/min/max over 2–3 entities) and
// count claims.
func (c *Corpus) ClaimTasks(n int) ([]ClaimTask, error) {
	r := detrand.New(c.Config.Seed, "claim-tasks")
	if len(c.Tables) == 0 {
		return nil, fmt.Errorf("workload: empty corpus")
	}
	tasks := make([]ClaimTask, 0, n)
	for tries := 0; len(tasks) < n && tries < 100*n; tries++ {
		t := c.Tables[r.Intn(len(c.Tables))]
		d := c.domainOf(t)
		if t.NumRows() < 3 {
			continue
		}
		truth := r.Bool(0.5)
		var cl claims.Claim
		var ok bool
		switch r.Intn(10) {
		case 0, 1, 2, 3, 4: // 50% lookup
			cl, ok = c.genLookupClaim(r, t, d, truth)
		case 5, 6, 7: // 30% numeric aggregate
			cl, ok = c.genAggClaim(r, t, d, truth)
		default: // 20% count
			cl, ok = c.genCountClaim(r, t, d, truth)
		}
		if !ok {
			continue
		}
		// Human claim writers paraphrase: a fifth of the claims refer to
		// the table without its year ("ohio congressional districts" for
		// "ohio congressional districts 1994"), which is what keeps
		// claim→table retrieval from being trivial.
		if r.Bool(0.2) {
			if ctx, changed := dropYearToken(t.Caption); changed {
				cl.Context = ctx
			}
		}
		cl.Render()
		// Sanity: the claim must evaluate on its own table to the intended
		// label; otherwise (e.g. ambiguous entity) skip it.
		out, _ := claims.Eval(cl, t)
		if truth && out != claims.Supports {
			continue
		}
		if !truth && out != claims.Refutes {
			continue
		}
		tasks = append(tasks, ClaimTask{Claim: cl, Label: truth, TableID: t.ID})
	}
	if len(tasks) < n {
		return nil, fmt.Errorf("workload: could only sample %d of %d claim tasks", len(tasks), n)
	}
	return tasks, nil
}

// genLookupClaim builds a single-entity attribute claim.
func (c *Corpus) genLookupClaim(r *detrand.Rand, t *table.Table, d domainGen, truth bool) (claims.Claim, bool) {
	col := d.attrCols[r.Intn(len(d.attrCols))]
	row := r.Intn(t.NumRows())
	entity := t.Rows[row][d.keyCol]
	value := t.Rows[row][col]
	if value == "" || entity == "" {
		return claims.Claim{}, false
	}
	if !truth {
		var ok bool
		value, ok = perturbValue(r, t, col, value)
		if !ok {
			return claims.Claim{}, false
		}
	}
	return claims.Claim{
		Context:   t.Caption,
		Entities:  []string{entity},
		Attribute: t.Columns[col],
		Op:        claims.OpLookup,
		Value:     value,
	}, true
}

// genAggClaim builds a sum/avg/min/max claim over 2–3 entities of a numeric
// column, the Figure 4 pattern.
func (c *Corpus) genAggClaim(r *detrand.Rand, t *table.Table, d domainGen, truth bool) (claims.Claim, bool) {
	// Pick a numeric attribute column.
	var numCols []int
	for _, col := range d.attrCols {
		if t.IsNumericColumn(col) {
			numCols = append(numCols, col)
		}
	}
	if len(numCols) == 0 {
		return claims.Claim{}, false
	}
	col := numCols[r.Intn(len(numCols))]
	k := r.IntRange(2, 3)
	if k > t.NumRows() {
		return claims.Claim{}, false
	}
	perm := r.Perm(t.NumRows())
	entities := make([]string, 0, k)
	vals := make([]float64, 0, k)
	seen := make(map[string]struct{})
	for _, row := range perm {
		e := t.Rows[row][d.keyCol]
		f := textutil.Fold(e)
		if _, dup := seen[f]; dup || e == "" {
			continue
		}
		v, ok := textutil.ParseNumber(t.Rows[row][col])
		if !ok {
			continue
		}
		seen[f] = struct{}{}
		entities = append(entities, e)
		vals = append(vals, v)
		if len(entities) == k {
			break
		}
	}
	if len(entities) < k {
		return claims.Claim{}, false
	}
	ops := []claims.AggOp{claims.OpSum, claims.OpAvg, claims.OpMin, claims.OpMax}
	op := ops[r.Intn(len(ops))]
	var actual float64
	switch op {
	case claims.OpSum:
		for _, v := range vals {
			actual += v
		}
	case claims.OpAvg:
		for _, v := range vals {
			actual += v
		}
		actual /= float64(len(vals))
	case claims.OpMin:
		actual = vals[0]
		for _, v := range vals[1:] {
			if v < actual {
				actual = v
			}
		}
	case claims.OpMax:
		actual = vals[0]
		for _, v := range vals[1:] {
			if v > actual {
				actual = v
			}
		}
	}
	value := formatFloat(actual)
	if !truth {
		delta := float64(r.IntRange(1, 9)) * pickScale(actual)
		if r.Bool(0.2) {
			delta = -delta
		}
		wrong := actual + delta
		if textutil.NearlyEqual(wrong, actual) {
			wrong = actual + 1
		}
		value = formatFloat(wrong)
	}
	return claims.Claim{
		Context:   t.Caption,
		Entities:  entities,
		Attribute: t.Columns[col],
		Op:        op,
		Value:     value,
	}, true
}

// genCountClaim builds a "k rows had a <attr> of <v>" claim.
func (c *Corpus) genCountClaim(r *detrand.Rand, t *table.Table, d domainGen, truth bool) (claims.Claim, bool) {
	col := d.attrCols[r.Intn(len(d.attrCols))]
	row := r.Intn(t.NumRows())
	target := t.Rows[row][col]
	if target == "" {
		return claims.Claim{}, false
	}
	n := 0
	for _, rr := range t.Rows {
		if textutil.Fold(rr[col]) == textutil.Fold(target) {
			n++
		}
	}
	count := n
	if !truth {
		count = n + r.IntRange(1, 3)
		if r.Bool(0.5) && n > 1 {
			count = n - 1
		}
	}
	return claims.Claim{
		Context:   t.Caption,
		Entities:  []string{target},
		Attribute: t.Columns[col],
		Op:        claims.OpCount,
		Value:     strconv.Itoa(count),
	}, true
}

// dropYearToken removes the first 4-digit year token from a caption,
// returning the paraphrased caption and whether anything changed. Captions
// with fewer than four tokens are left alone so the paraphrase stays
// recognizable (token Jaccard >= 0.7 against the original).
func dropYearToken(caption string) (string, bool) {
	fields := strings.Fields(caption)
	if len(fields) < 4 {
		return caption, false
	}
	for i, f := range fields {
		if len(f) == 4 && f >= "1000" && f <= "2999" && textutil.IsNumeric(f) {
			out := append(append([]string(nil), fields[:i]...), fields[i+1:]...)
			return strings.Join(out, " "), true
		}
	}
	return caption, false
}

// perturbValue produces a wrong-but-plausible replacement for a cell value:
// numeric cells get shifted; categorical cells get another value from the
// same column domain.
func perturbValue(r *detrand.Rand, t *table.Table, col int, value string) (string, bool) {
	if v, ok := textutil.ParseNumber(value); ok && t.IsNumericColumn(col) {
		delta := float64(r.IntRange(1, 9)) * pickScale(v)
		if r.Bool(0.2) {
			delta = -delta
		}
		wrong := v + delta
		if textutil.NearlyEqual(wrong, v) {
			wrong = v + 1
		}
		return formatFloat(wrong), true
	}
	// Categorical: sample another distinct value from the column.
	want := textutil.Fold(value)
	var alts []string
	for _, row := range t.Rows {
		if textutil.Fold(row[col]) != want && row[col] != "" {
			alts = append(alts, row[col])
		}
	}
	if len(alts) == 0 {
		// Fall back to a global vocabulary swap.
		return value + " jr", true
	}
	return alts[r.Intn(len(alts))], true
}

// pickScale chooses a perturbation granularity proportional to the value's
// magnitude so wrong values stay plausible.
func pickScale(v float64) float64 {
	av := v
	if av < 0 {
		av = -av
	}
	switch {
	case av >= 10000:
		return 100
	case av >= 1000:
		return 50
	case av >= 100:
		return 10
	default:
		return 1
	}
}

// formatFloat renders a float without a spurious fraction.
func formatFloat(v float64) string {
	if v == float64(int64(v)) {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', 6, 64)
}
