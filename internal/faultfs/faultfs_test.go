package faultfs

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

// TestPassthrough checks the OS implementation and an unarmed Faulty both
// behave like the os package.
func TestPassthrough(t *testing.T) {
	for _, fs := range []FS{OS, New(OS)} {
		dir := t.TempDir()
		if err := fs.MkdirAll(filepath.Join(dir, "a", "b"), 0o755); err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(dir, "a", "b", "f.txt")
		f, err := fs.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.Write([]byte("hello")); err != nil {
			t.Fatal(err)
		}
		if err := f.Sync(); err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
		data, err := fs.ReadFile(path)
		if err != nil || string(data) != "hello" {
			t.Fatalf("ReadFile = %q, %v", data, err)
		}
		if err := fs.Truncate(path, 2); err != nil {
			t.Fatal(err)
		}
		moved := filepath.Join(dir, "a", "moved.txt")
		if err := fs.Rename(path, moved); err != nil {
			t.Fatal(err)
		}
		entries, err := fs.ReadDir(filepath.Join(dir, "a"))
		if err != nil || len(entries) != 2 {
			t.Fatalf("ReadDir = %v, %v", entries, err)
		}
		if _, err := fs.Stat(moved); err != nil {
			t.Fatal(err)
		}
		if err := fs.Remove(moved); err != nil {
			t.Fatal(err)
		}
		if err := fs.RemoveAll(filepath.Join(dir, "a")); err != nil {
			t.Fatal(err)
		}
	}
}

// TestCrashAt checks the kill point fires on the exact mutating op, that
// everything after it fails, and that reads keep working.
func TestCrashAt(t *testing.T) {
	dir := t.TempDir()
	ffs := New(OS)
	path := filepath.Join(dir, "f.txt")
	if err := ffs.WriteFile(path, []byte("one"), 0o644); err != nil {
		t.Fatal(err)
	}

	ffs.CrashAt(2, false) // resets the op counter; next op is #1
	if err := ffs.WriteFile(path+"2", []byte("two"), 0o644); err != nil {
		t.Fatalf("op before the kill point failed: %v", err)
	}
	if err := ffs.WriteFile(path+"3", []byte("three"), 0o644); !errors.Is(err, ErrCrashed) {
		t.Fatalf("kill-point op error = %v, want ErrCrashed", err)
	}
	if !ffs.Crashed() {
		t.Fatal("Crashed() = false after the kill point")
	}
	if err := ffs.Rename(path, path+".r"); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash rename error = %v, want ErrCrashed", err)
	}
	if _, err := os.Stat(path + "3"); !os.IsNotExist(err) {
		t.Fatal("kill-point WriteFile persisted data in non-torn mode")
	}
	// Reads survive the crash (the test harness inspects state through them).
	if data, err := ffs.ReadFile(path); err != nil || string(data) != "one" {
		t.Fatalf("post-crash read = %q, %v", data, err)
	}
}

// TestTornWrite checks torn mode persists a strict prefix at the kill
// point.
func TestTornWrite(t *testing.T) {
	dir := t.TempDir()
	ffs := New(OS)
	path := filepath.Join(dir, "f.log")
	f, err := ffs.OpenFile(path, os.O_WRONLY|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	ffs.CrashAt(1, true)
	if _, err := f.Write([]byte("0123456789")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("torn write error = %v, want ErrCrashed", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) == 0 || len(data) >= 10 {
		t.Fatalf("torn write persisted %d bytes, want a strict non-empty prefix of 10", len(data))
	}
}

// TestFailOn checks the targeted error hook fires without a kill point.
func TestFailOn(t *testing.T) {
	dir := t.TempDir()
	ffs := New(OS)
	boom := errors.New("boom")
	ffs.SetFailOn(func(op Op, path string) error {
		if op == OpSync {
			return boom
		}
		return nil
	})
	f, err := ffs.OpenFile(filepath.Join(dir, "f"), os.O_WRONLY|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := f.Write([]byte("x")); err != nil {
		t.Fatalf("write with sync-only hook failed: %v", err)
	}
	if err := f.Sync(); !errors.Is(err, boom) {
		t.Fatalf("sync error = %v, want boom", err)
	}
}
