// Package faultfs is the injectable filesystem the durability layer writes
// through. Production code uses the passthrough OS implementation; the
// crash-consistency suite swaps in a Faulty wrapper that counts every
// mutating operation and simulates a machine dying at an exact one —
// optionally tearing the write in progress — so recovery can be asserted
// correct at every write/rename/fsync site the protocol has.
//
// The simulated failure model is a process/machine crash, not media loss:
// operations completed before the kill point remain on disk exactly as
// written (the page cache survives a process death, and the WAL's sync
// policy governs power loss separately); the operation at the kill point
// either does nothing or — in torn mode, for writes — persists only a
// prefix; every operation after it fails with ErrCrashed.
package faultfs

import (
	"errors"
	"io"
	"os"
	"sync"
)

// Op classifies one filesystem operation for fault injection.
type Op string

// The mutating operations a Faulty filesystem counts as kill points.
// Read-only operations (Open for read, ReadFile, ReadDir, Stat) are never
// kill points: a crash cannot corrupt state through a read.
const (
	OpCreate    Op = "create"    // OpenFile with O_CREATE
	OpWrite     Op = "write"     // File.Write
	OpSync      Op = "sync"      // File.Sync (file or directory fsync)
	OpTruncate  Op = "truncate"  // File.Truncate or FS.Truncate
	OpRename    Op = "rename"    // FS.Rename
	OpRemove    Op = "remove"    // FS.Remove
	OpRemoveAll Op = "removeall" // FS.RemoveAll
	OpMkdir     Op = "mkdir"     // FS.MkdirAll
	OpWriteFile Op = "writefile" // FS.WriteFile
)

// ErrCrashed marks every operation attempted at or after the simulated
// kill point.
var ErrCrashed = errors.New("faultfs: simulated crash")

// File is the open-file surface the WAL and checkpoint writers need.
type File interface {
	io.Writer
	io.Closer
	Sync() error
	Truncate(size int64) error
}

// FS is the filesystem surface internal/wal and internal/durable go
// through. It deliberately mirrors the os package's signatures so the
// passthrough implementation is trivial and call sites stay idiomatic.
type FS interface {
	MkdirAll(path string, perm os.FileMode) error
	OpenFile(name string, flag int, perm os.FileMode) (File, error)
	// Open opens for reading (also used to fsync directories by path).
	Open(name string) (File, error)
	ReadFile(name string) ([]byte, error)
	WriteFile(name string, data []byte, perm os.FileMode) error
	ReadDir(name string) ([]os.DirEntry, error)
	Stat(name string) (os.FileInfo, error)
	Rename(oldpath, newpath string) error
	Remove(name string) error
	RemoveAll(path string) error
	Truncate(name string, size int64) error
}

// OS is the passthrough implementation backed by the real os package.
var OS FS = osFS{}

type osFS struct{}

func (osFS) MkdirAll(path string, perm os.FileMode) error { return os.MkdirAll(path, perm) }
func (osFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	return os.OpenFile(name, flag, perm)
}
func (osFS) Open(name string) (File, error)             { return os.Open(name) }
func (osFS) ReadFile(name string) ([]byte, error)       { return os.ReadFile(name) }
func (osFS) ReadDir(name string) ([]os.DirEntry, error) { return os.ReadDir(name) }
func (osFS) Stat(name string) (os.FileInfo, error)      { return os.Stat(name) }
func (osFS) Rename(oldpath, newpath string) error       { return os.Rename(oldpath, newpath) }
func (osFS) Remove(name string) error                   { return os.Remove(name) }
func (osFS) RemoveAll(path string) error                { return os.RemoveAll(path) }
func (osFS) Truncate(name string, size int64) error     { return os.Truncate(name, size) }
func (osFS) WriteFile(name string, data []byte, perm os.FileMode) error {
	return os.WriteFile(name, data, perm)
}

// Faulty wraps an inner FS with fault injection. Safe for concurrent use.
type Faulty struct {
	inner FS

	mu      sync.Mutex
	ops     int64
	crashAt int64
	torn    bool
	crashed bool
	// failOn, when set, is consulted before every mutating operation (even
	// without a kill point armed); a non-nil return fails that operation.
	failOn func(op Op, path string) error
}

// New returns a Faulty filesystem over inner (typically OS) with no faults
// armed: until CrashAt or SetFailOn is called it behaves as a counting
// passthrough.
func New(inner FS) *Faulty {
	if inner == nil {
		inner = OS
	}
	return &Faulty{inner: inner}
}

// CrashAt arms the kill point: the n-th mutating operation (1-based)
// fails with ErrCrashed — after persisting a prefix of its buffer when
// torn is set and the operation is a write — and every operation after it
// fails too. n <= 0 disarms.
func (f *Faulty) CrashAt(n int64, torn bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.crashAt, f.torn = n, torn
	f.crashed = false
	f.ops = 0
}

// SetFailOn installs a per-operation error hook for targeted fault tests
// (e.g. "every fsync on this path fails"). nil removes it.
func (f *Faulty) SetFailOn(fn func(op Op, path string) error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.failOn = fn
}

// Crashed reports whether the armed kill point was reached.
func (f *Faulty) Crashed() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.crashed
}

// Ops returns the number of mutating operations attempted so far.
func (f *Faulty) Ops() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.ops
}

// before accounts one mutating operation and decides its fate: a nil
// error (run it), ErrCrashed (kill point reached or already crashed), or
// an injected error. tearNow reports that this exact operation is the
// kill point in torn mode — the caller should persist a prefix before
// failing.
func (f *Faulty) before(op Op, path string) (tearNow bool, err error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed {
		return false, ErrCrashed
	}
	f.ops++
	if f.crashAt > 0 && f.ops >= f.crashAt {
		f.crashed = true
		return f.torn && (op == OpWrite || op == OpWriteFile), ErrCrashed
	}
	if f.failOn != nil {
		if ferr := f.failOn(op, path); ferr != nil {
			return false, ferr
		}
	}
	return false, nil
}

func (f *Faulty) MkdirAll(path string, perm os.FileMode) error {
	if _, err := f.before(OpMkdir, path); err != nil {
		return err
	}
	return f.inner.MkdirAll(path, perm)
}

func (f *Faulty) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	if flag&os.O_CREATE != 0 {
		if _, err := f.before(OpCreate, name); err != nil {
			return nil, err
		}
	}
	file, err := f.inner.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &faultyFile{fs: f, name: name, inner: file}, nil
}

func (f *Faulty) Open(name string) (File, error) {
	file, err := f.inner.Open(name)
	if err != nil {
		return nil, err
	}
	return &faultyFile{fs: f, name: name, inner: file}, nil
}

func (f *Faulty) ReadFile(name string) ([]byte, error)       { return f.inner.ReadFile(name) }
func (f *Faulty) ReadDir(name string) ([]os.DirEntry, error) { return f.inner.ReadDir(name) }
func (f *Faulty) Stat(name string) (os.FileInfo, error)      { return f.inner.Stat(name) }

func (f *Faulty) Rename(oldpath, newpath string) error {
	if _, err := f.before(OpRename, oldpath); err != nil {
		return err
	}
	return f.inner.Rename(oldpath, newpath)
}

func (f *Faulty) Remove(name string) error {
	if _, err := f.before(OpRemove, name); err != nil {
		return err
	}
	return f.inner.Remove(name)
}

func (f *Faulty) RemoveAll(path string) error {
	if _, err := f.before(OpRemoveAll, path); err != nil {
		return err
	}
	return f.inner.RemoveAll(path)
}

func (f *Faulty) Truncate(name string, size int64) error {
	if _, err := f.before(OpTruncate, name); err != nil {
		return err
	}
	return f.inner.Truncate(name, size)
}

func (f *Faulty) WriteFile(name string, data []byte, perm os.FileMode) error {
	tear, err := f.before(OpWriteFile, name)
	if err != nil {
		if tear {
			_ = f.inner.WriteFile(name, data[:len(data)/2], perm)
		}
		return err
	}
	return f.inner.WriteFile(name, data, perm)
}

// faultyFile routes a file's mutating calls through its filesystem's
// fault state. Close is never a kill point: closing a descriptor writes
// no data, and a crashed process's descriptors close anyway.
type faultyFile struct {
	fs    *Faulty
	name  string
	inner File
}

func (ff *faultyFile) Write(p []byte) (int, error) {
	tear, err := ff.fs.before(OpWrite, ff.name)
	if err != nil {
		if tear && len(p) > 1 {
			// The kill point tears this write: persist a prefix, then die.
			_, _ = ff.inner.Write(p[:len(p)/2])
		}
		return 0, err
	}
	return ff.inner.Write(p)
}

func (ff *faultyFile) Sync() error {
	if _, err := ff.fs.before(OpSync, ff.name); err != nil {
		return err
	}
	return ff.inner.Sync()
}

func (ff *faultyFile) Truncate(size int64) error {
	if _, err := ff.fs.before(OpTruncate, ff.name); err != nil {
		return err
	}
	return ff.inner.Truncate(size)
}

func (ff *faultyFile) Close() error { return ff.inner.Close() }
