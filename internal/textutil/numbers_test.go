package textutil

import (
	"reflect"
	"testing"
)

func TestParseNumber(t *testing.T) {
	tests := []struct {
		in   string
		want float64
		ok   bool
	}{
		{"", 0, false},
		{"abc", 0, false},
		{"42", 42, true},
		{"-3.5", -3.5, true},
		{"$6,000", 6000, true},
		{"960 in total", 960, true},
		{"+ 4", 4, true},
		{"- 4", -4, true},
		{"71.5%", 71.5, true},
		{"1,234,567", 1234567, true},
		{"71 + 70 + 71 + 72 = 284", 71, true}, // first number wins
		{"t6", 6, true},
		{"3.14 and 2.71", 3.14, true},
	}
	for _, tc := range tests {
		got, ok := ParseNumber(tc.in)
		if ok != tc.ok || (ok && got != tc.want) {
			t.Errorf("ParseNumber(%q) = (%v, %v), want (%v, %v)", tc.in, got, ok, tc.want, tc.ok)
		}
	}
}

func TestParseAllNumbers(t *testing.T) {
	got := ParseAllNumbers("71 + 70 + 71 + 72 = 284")
	want := []float64{71, 70, 71, 72, 284}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("ParseAllNumbers = %v, want %v", got, want)
	}
	if got := ParseAllNumbers("no digits"); got != nil {
		t.Errorf("ParseAllNumbers(no digits) = %v, want nil", got)
	}
	got = ParseAllNumbers("1,500 then 2.5")
	want = []float64{1500, 2.5}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("ParseAllNumbers separators = %v, want %v", got, want)
	}
}

func TestIsNumeric(t *testing.T) {
	for _, s := range []string{"42", "-3.5", "$100", "99%", "1,000", " 7 "} {
		if !IsNumeric(s) {
			t.Errorf("IsNumeric(%q) = false, want true", s)
		}
	}
	for _, s := range []string{"", "abc", "t6", "12 dollars", "71 + 70"} {
		if IsNumeric(s) {
			t.Errorf("IsNumeric(%q) = true, want false", s)
		}
	}
}

func TestNearlyEqual(t *testing.T) {
	tests := []struct {
		a, b float64
		want bool
	}{
		{0, 0, true},
		{960, 960.0, true},
		{1, 1 + 1e-12, true},
		{1, 1.1, false},
		{1e12, 1e12 + 1, true}, // relative tolerance
		{-5, -5, true},
		{-5, 5, false},
	}
	for _, tc := range tests {
		if got := NearlyEqual(tc.a, tc.b); got != tc.want {
			t.Errorf("NearlyEqual(%v, %v) = %v, want %v", tc.a, tc.b, got, tc.want)
		}
	}
}
