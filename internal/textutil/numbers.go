package textutil

import (
	"strconv"
	"strings"
	"unicode"
)

// ParseNumber extracts a numeric value from a data-lake cell string. It
// tolerates currency symbols, thousands separators, surrounding words, and
// percent signs: "$6,000" -> 6000, "960 in total" -> 960, "+ 4" -> 4,
// "71.5%" -> 71.5. The second return is false when s contains no number.
func ParseNumber(s string) (float64, bool) {
	s = strings.TrimSpace(s)
	if s == "" {
		return 0, false
	}
	// Fast path: plain number.
	if v, err := strconv.ParseFloat(s, 64); err == nil {
		return v, true
	}
	// Scan for the first number-like run.
	runes := []rune(s)
	for i := 0; i < len(runes); i++ {
		if !unicode.IsDigit(runes[i]) {
			continue
		}
		// Walk back over a sign immediately preceding (possibly spaced).
		start := i
		j := i - 1
		for j >= 0 && runes[j] == ' ' {
			j--
		}
		neg := j >= 0 && runes[j] == '-'
		// Walk forward over digits, separators, decimal point.
		end := i
		for end < len(runes) {
			r := runes[end]
			if unicode.IsDigit(r) {
				end++
				continue
			}
			if r == ',' && end+1 < len(runes) && unicode.IsDigit(runes[end+1]) {
				end++
				continue
			}
			if r == '.' && end+1 < len(runes) && unicode.IsDigit(runes[end+1]) {
				end++
				continue
			}
			break
		}
		numStr := strings.ReplaceAll(string(runes[start:end]), ",", "")
		v, err := strconv.ParseFloat(numStr, 64)
		if err != nil {
			continue
		}
		if neg {
			v = -v
		}
		return v, true
	}
	return 0, false
}

// ParseAllNumbers returns every number appearing in s, in order.
func ParseAllNumbers(s string) []float64 {
	var out []float64
	runes := []rune(s)
	for i := 0; i < len(runes); {
		if !unicode.IsDigit(runes[i]) {
			i++
			continue
		}
		end := i
		for end < len(runes) {
			r := runes[end]
			if unicode.IsDigit(r) {
				end++
				continue
			}
			if (r == ',' || r == '.') && end+1 < len(runes) && unicode.IsDigit(runes[end+1]) {
				end++
				continue
			}
			break
		}
		numStr := strings.ReplaceAll(string(runes[i:end]), ",", "")
		if v, err := strconv.ParseFloat(numStr, 64); err == nil {
			out = append(out, v)
		}
		i = end
	}
	return out
}

// IsNumeric reports whether the whole (trimmed) string parses as a number,
// ignoring currency symbols and separators.
func IsNumeric(s string) bool {
	s = strings.TrimSpace(s)
	s = strings.TrimPrefix(s, "$")
	s = strings.TrimSuffix(s, "%")
	s = strings.ReplaceAll(s, ",", "")
	if s == "" {
		return false
	}
	_, err := strconv.ParseFloat(s, 64)
	return err == nil
}

// NearlyEqual reports whether two floats agree within a relative tolerance
// of 1e-9 (or absolute 1e-9 near zero). Cell-level numeric comparison in the
// verifiers goes through this so that 960.0 and 960 compare equal.
func NearlyEqual(a, b float64) bool {
	diff := a - b
	if diff < 0 {
		diff = -diff
	}
	if diff < 1e-9 {
		return true
	}
	aa, ab := a, b
	if aa < 0 {
		aa = -aa
	}
	if ab < 0 {
		ab = -ab
	}
	m := aa
	if ab > m {
		m = ab
	}
	return diff <= 1e-9*m
}
