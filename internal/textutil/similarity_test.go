package textutil

import (
	"testing"
	"testing/quick"
)

func TestLevenshtein(t *testing.T) {
	tests := []struct {
		a, b string
		want int
	}{
		{"", "", 0},
		{"abc", "", 3},
		{"", "abc", 3},
		{"kitten", "sitting", 3},
		{"flaw", "lawn", 2},
		{"same", "same", 0},
		{"a", "b", 1},
	}
	for _, tc := range tests {
		if got := Levenshtein(tc.a, tc.b); got != tc.want {
			t.Errorf("Levenshtein(%q, %q) = %d, want %d", tc.a, tc.b, got, tc.want)
		}
	}
}

func TestLevenshteinProperties(t *testing.T) {
	symmetric := func(a, b string) bool { return Levenshtein(a, b) == Levenshtein(b, a) }
	if err := quick.Check(symmetric, nil); err != nil {
		t.Errorf("symmetry: %v", err)
	}
	identity := func(a string) bool { return Levenshtein(a, a) == 0 }
	if err := quick.Check(identity, nil); err != nil {
		t.Errorf("identity: %v", err)
	}
	bounded := func(a, b string) bool {
		d := Levenshtein(a, b)
		la, lb := len([]rune(a)), len([]rune(b))
		max := la
		if lb > max {
			max = lb
		}
		min := la - lb
		if min < 0 {
			min = -min
		}
		return d >= min && d <= max
	}
	if err := quick.Check(bounded, nil); err != nil {
		t.Errorf("bounds: %v", err)
	}
}

func TestEditSimilarity(t *testing.T) {
	if got := EditSimilarity("", ""); got != 1 {
		t.Errorf("EditSimilarity empty = %v, want 1", got)
	}
	if got := EditSimilarity("abc", "abc"); got != 1 {
		t.Errorf("EditSimilarity equal = %v, want 1", got)
	}
	if got := EditSimilarity("abc", "xyz"); got != 0 {
		t.Errorf("EditSimilarity disjoint = %v, want 0", got)
	}
}

func TestJaccard(t *testing.T) {
	a := []string{"x", "y", "z"}
	b := []string{"y", "z", "w"}
	if got := Jaccard(a, b); got != 0.5 {
		t.Errorf("Jaccard = %v, want 0.5", got)
	}
	if got := Jaccard(nil, nil); got != 1 {
		t.Errorf("Jaccard(nil, nil) = %v, want 1", got)
	}
	if got := Jaccard(a, nil); got != 0 {
		t.Errorf("Jaccard(a, nil) = %v, want 0", got)
	}
	// Duplicates are set-collapsed.
	if got := Jaccard([]string{"x", "x"}, []string{"x"}); got != 1 {
		t.Errorf("Jaccard multiset = %v, want 1", got)
	}
}

func TestJaccardProperties(t *testing.T) {
	inRange := func(a, b []string) bool {
		j := Jaccard(a, b)
		return j >= 0 && j <= 1
	}
	if err := quick.Check(inRange, nil); err != nil {
		t.Errorf("range: %v", err)
	}
	symmetric := func(a, b []string) bool { return Jaccard(a, b) == Jaccard(b, a) }
	if err := quick.Check(symmetric, nil); err != nil {
		t.Errorf("symmetry: %v", err)
	}
}

func TestDice(t *testing.T) {
	a := []string{"x", "y"}
	b := []string{"y", "z"}
	if got := Dice(a, b); got != 0.5 {
		t.Errorf("Dice = %v, want 0.5", got)
	}
	if got := Dice(nil, nil); got != 1 {
		t.Errorf("Dice empty = %v, want 1", got)
	}
	if got := Dice(a, nil); got != 0 {
		t.Errorf("Dice half-empty = %v, want 0", got)
	}
}

func TestCosineTokens(t *testing.T) {
	if got := CosineTokens([]string{"a", "b"}, []string{"a", "b"}); got < 0.999 {
		t.Errorf("CosineTokens identical = %v, want ~1", got)
	}
	if got := CosineTokens([]string{"a"}, []string{"b"}); got != 0 {
		t.Errorf("CosineTokens disjoint = %v, want 0", got)
	}
	if got := CosineTokens(nil, []string{"a"}); got != 0 {
		t.Errorf("CosineTokens empty = %v, want 0", got)
	}
}

func TestContainmentSimilarity(t *testing.T) {
	a := []string{"x", "y"}
	b := []string{"x", "y", "z", "w"}
	if got := ContainmentSimilarity(a, b); got != 1 {
		t.Errorf("Containment full = %v, want 1", got)
	}
	if got := ContainmentSimilarity(b, a); got != 0.5 {
		t.Errorf("Containment half = %v, want 0.5", got)
	}
	if got := ContainmentSimilarity(nil, b); got != 0 {
		t.Errorf("Containment empty query = %v, want 0", got)
	}
	// Duplicate query tokens count once.
	if got := ContainmentSimilarity([]string{"x", "x", "q"}, []string{"x"}); got != 0.5 {
		t.Errorf("Containment dup = %v, want 0.5", got)
	}
}
