// Package textutil provides the text-processing substrate shared by the
// indexing, reranking, and verification layers: tokenization, normalization,
// Porter stemming, stopword filtering, n-grams, string similarity, and
// numeric parsing. All functions are deterministic and allocation-conscious,
// since they sit on the hot path of both index construction and query
// evaluation.
package textutil

import (
	"strings"
	"unicode"
)

// Tokenize splits s into lowercase word tokens. A token is a maximal run of
// letters/digits; punctuation and whitespace are separators. Apostrophes
// inside a word ("ohio's") are dropped so that "ohio's" and "ohio" share a
// prefix token. Underscores are treated as separators because data-lake
// identifiers such as "Ohio's_1st_congressional_district" should decompose
// into searchable words.
func Tokenize(s string) []string {
	if s == "" {
		return nil
	}
	tokens := make([]string, 0, len(s)/5+1)
	var b strings.Builder
	flush := func() {
		if b.Len() > 0 {
			tokens = append(tokens, b.String())
			b.Reset()
		}
	}
	for _, r := range s {
		switch {
		case unicode.IsLetter(r) || unicode.IsDigit(r):
			b.WriteRune(unicode.ToLower(r))
		case r == '\'' || r == '’':
			// Drop apostrophes without splitting: "o'brien" -> "obrien".
		default:
			flush()
		}
	}
	flush()
	return tokens
}

// TokenizeFiltered tokenizes s, removes stopwords, and stems each remaining
// token. This is the canonical analysis chain used by the inverted index.
func TokenizeFiltered(s string) []string {
	raw := Tokenize(s)
	out := raw[:0]
	for _, t := range raw {
		if IsStopword(t) {
			continue
		}
		out = append(out, Stem(t))
	}
	return out
}

// Normalize lowercases s, collapses runs of whitespace to single spaces, and
// strips leading/trailing space. It is the cheap canonical form used for
// cell-value equality tests.
func Normalize(s string) string {
	var b strings.Builder
	b.Grow(len(s))
	space := false
	started := false
	for _, r := range s {
		if unicode.IsSpace(r) || r == '_' {
			space = started
			continue
		}
		if space {
			b.WriteByte(' ')
			space = false
		}
		b.WriteRune(unicode.ToLower(r))
		started = true
	}
	return b.String()
}

// Fold returns a fully folded comparison key: normalized, with all
// punctuation removed. "Steve_Chabot" and "steve chabot." fold equal.
func Fold(s string) string {
	var b strings.Builder
	b.Grow(len(s))
	space := false
	started := false
	for _, r := range s {
		switch {
		case unicode.IsLetter(r) || unicode.IsDigit(r):
			if space {
				b.WriteByte(' ')
				space = false
			}
			b.WriteRune(unicode.ToLower(r))
			started = true
		default:
			space = started
		}
	}
	return b.String()
}

// NGrams returns the character n-grams of s (after folding). Used by the
// fuzzy matching path of the tuple reranker. Returns nil when len(s) < n.
func NGrams(s string, n int) []string {
	f := Fold(s)
	runes := []rune(f)
	if len(runes) < n || n <= 0 {
		return nil
	}
	grams := make([]string, 0, len(runes)-n+1)
	for i := 0; i+n <= len(runes); i++ {
		grams = append(grams, string(runes[i:i+n]))
	}
	return grams
}

// WordNGrams returns token n-grams joined by a single space.
func WordNGrams(tokens []string, n int) []string {
	if len(tokens) < n || n <= 0 {
		return nil
	}
	grams := make([]string, 0, len(tokens)-n+1)
	for i := 0; i+n <= len(tokens); i++ {
		grams = append(grams, strings.Join(tokens[i:i+n], " "))
	}
	return grams
}

// SplitSentences splits text into sentences on ./!/? boundaries followed by
// whitespace. It is intentionally simple: the synthetic corpus generator
// produces well-punctuated text, and chunking only needs rough boundaries.
func SplitSentences(text string) []string {
	var out []string
	start := 0
	runes := []rune(text)
	for i := 0; i < len(runes); i++ {
		r := runes[i]
		if r == '.' || r == '!' || r == '?' {
			// Consume trailing closing quotes/brackets.
			end := i + 1
			for end < len(runes) && (runes[end] == '"' || runes[end] == ')' || runes[end] == '\'') {
				end++
			}
			if end >= len(runes) || unicode.IsSpace(runes[end]) {
				s := strings.TrimSpace(string(runes[start:end]))
				if s != "" {
					out = append(out, s)
				}
				start = end
				i = end - 1
			}
		}
	}
	if tail := strings.TrimSpace(string(runes[start:])); tail != "" {
		out = append(out, tail)
	}
	return out
}
