package textutil

// Stem applies the Porter stemming algorithm (M.F. Porter, 1980) to a single
// lowercase token. The implementation follows the original five-step
// definition. Tokens of length <= 2 are returned unchanged.
func Stem(word string) string {
	if len(word) <= 2 {
		return word
	}
	w := []byte(word)
	w = step1a(w)
	w = step1b(w)
	w = step1c(w)
	w = step2(w)
	w = step3(w)
	w = step4(w)
	w = step5a(w)
	w = step5b(w)
	return string(w)
}

// isCons reports whether w[i] is a consonant per Porter's definition:
// vowels are a,e,i,o,u, and y is a vowel when preceded by a consonant.
func isCons(w []byte, i int) bool {
	switch w[i] {
	case 'a', 'e', 'i', 'o', 'u':
		return false
	case 'y':
		if i == 0 {
			return true
		}
		return !isCons(w, i-1)
	}
	return true
}

// measure computes Porter's m: the number of VC sequences in w[:len(w)].
func measure(w []byte) int {
	n := 0
	i := 0
	// Skip initial consonants.
	for i < len(w) && isCons(w, i) {
		i++
	}
	for {
		// Skip vowels.
		for i < len(w) && !isCons(w, i) {
			i++
		}
		if i >= len(w) {
			return n
		}
		// Skip consonants.
		for i < len(w) && isCons(w, i) {
			i++
		}
		n++
		if i >= len(w) {
			return n
		}
	}
}

func hasVowel(w []byte) bool {
	for i := range w {
		if !isCons(w, i) {
			return true
		}
	}
	return false
}

// endsDoubleCons reports whether w ends with a double consonant (e.g. -tt).
func endsDoubleCons(w []byte) bool {
	n := len(w)
	return n >= 2 && w[n-1] == w[n-2] && isCons(w, n-1)
}

// endsCVC reports whether w ends consonant-vowel-consonant where the final
// consonant is not w, x, or y.
func endsCVC(w []byte) bool {
	n := len(w)
	if n < 3 {
		return false
	}
	if !isCons(w, n-3) || isCons(w, n-2) || !isCons(w, n-1) {
		return false
	}
	switch w[n-1] {
	case 'w', 'x', 'y':
		return false
	}
	return true
}

func hasSuffix(w []byte, s string) bool {
	if len(w) < len(s) {
		return false
	}
	return string(w[len(w)-len(s):]) == s
}

// replaceSuffix replaces suffix s with r if the stem before s has measure > m.
// It returns the new word and whether a rule fired (even if the measure
// condition failed, a matching suffix stops further rules in the same step).
func replaceSuffix(w []byte, s, r string, m int) ([]byte, bool) {
	if !hasSuffix(w, s) {
		return w, false
	}
	stem := w[:len(w)-len(s)]
	if measure(stem) > m {
		return append(stem[:len(stem):len(stem)], r...), true
	}
	return w, true
}

func step1a(w []byte) []byte {
	switch {
	case hasSuffix(w, "sses"):
		return w[:len(w)-2]
	case hasSuffix(w, "ies"):
		return w[:len(w)-2]
	case hasSuffix(w, "ss"):
		return w
	case hasSuffix(w, "s"):
		return w[:len(w)-1]
	}
	return w
}

func step1b(w []byte) []byte {
	if hasSuffix(w, "eed") {
		stem := w[:len(w)-3]
		if measure(stem) > 0 {
			return w[:len(w)-1]
		}
		return w
	}
	fired := false
	if hasSuffix(w, "ed") && hasVowel(w[:len(w)-2]) {
		w = w[:len(w)-2]
		fired = true
	} else if hasSuffix(w, "ing") && hasVowel(w[:len(w)-3]) {
		w = w[:len(w)-3]
		fired = true
	}
	if !fired {
		return w
	}
	switch {
	case hasSuffix(w, "at"), hasSuffix(w, "bl"), hasSuffix(w, "iz"):
		return append(w, 'e')
	case endsDoubleCons(w) && !hasSuffix(w, "l") && !hasSuffix(w, "s") && !hasSuffix(w, "z"):
		return w[:len(w)-1]
	case measure(w) == 1 && endsCVC(w):
		return append(w, 'e')
	}
	return w
}

func step1c(w []byte) []byte {
	if hasSuffix(w, "y") && hasVowel(w[:len(w)-1]) {
		w[len(w)-1] = 'i'
	}
	return w
}

var step2Rules = []struct{ from, to string }{
	{"ational", "ate"}, {"tional", "tion"}, {"enci", "ence"}, {"anci", "ance"},
	{"izer", "ize"}, {"abli", "able"}, {"alli", "al"}, {"entli", "ent"},
	{"eli", "e"}, {"ousli", "ous"}, {"ization", "ize"}, {"ation", "ate"},
	{"ator", "ate"}, {"alism", "al"}, {"iveness", "ive"}, {"fulness", "ful"},
	{"ousness", "ous"}, {"aliti", "al"}, {"iviti", "ive"}, {"biliti", "ble"},
}

func step2(w []byte) []byte {
	for _, r := range step2Rules {
		if w2, ok := replaceSuffix(w, r.from, r.to, 0); ok {
			return w2
		}
	}
	return w
}

var step3Rules = []struct{ from, to string }{
	{"icate", "ic"}, {"ative", ""}, {"alize", "al"}, {"iciti", "ic"},
	{"ical", "ic"}, {"ful", ""}, {"ness", ""},
}

func step3(w []byte) []byte {
	for _, r := range step3Rules {
		if w2, ok := replaceSuffix(w, r.from, r.to, 0); ok {
			return w2
		}
	}
	return w
}

var step4Suffixes = []string{
	"al", "ance", "ence", "er", "ic", "able", "ible", "ant", "ement",
	"ment", "ent", "ou", "ism", "ate", "iti", "ous", "ive", "ize",
}

func step4(w []byte) []byte {
	for _, s := range step4Suffixes {
		if !hasSuffix(w, s) {
			continue
		}
		stem := w[:len(w)-len(s)]
		if measure(stem) > 1 {
			return stem
		}
		return w
	}
	// (m>1 and (*S or *T)) ION ->
	if hasSuffix(w, "ion") {
		stem := w[:len(w)-3]
		if measure(stem) > 1 && len(stem) > 0 && (stem[len(stem)-1] == 's' || stem[len(stem)-1] == 't') {
			return stem
		}
	}
	return w
}

func step5a(w []byte) []byte {
	if !hasSuffix(w, "e") {
		return w
	}
	stem := w[:len(w)-1]
	m := measure(stem)
	if m > 1 || (m == 1 && !endsCVC(stem)) {
		return stem
	}
	return w
}

func step5b(w []byte) []byte {
	if measure(w) > 1 && endsDoubleCons(w) && hasSuffix(w, "l") {
		return w[:len(w)-1]
	}
	return w
}
