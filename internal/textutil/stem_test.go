package textutil

import (
	"testing"
	"testing/quick"
)

// TestStemKnownVectors checks representative Porter-stemmer outputs drawn
// from the algorithm's published examples.
func TestStemKnownVectors(t *testing.T) {
	tests := []struct{ in, want string }{
		// Step 1a.
		{"caresses", "caress"},
		{"ponies", "poni"},
		{"caress", "caress"},
		{"cats", "cat"},
		// Step 1b.
		{"feed", "feed"},
		{"agreed", "agre"},
		{"plastered", "plaster"},
		{"bled", "bled"},
		{"motoring", "motor"},
		{"sing", "sing"},
		// Step 1b cleanup.
		{"conflated", "conflat"},
		{"troubled", "troubl"},
		{"sized", "size"},
		{"hopping", "hop"},
		{"tanned", "tan"},
		{"falling", "fall"},
		{"hissing", "hiss"},
		{"fizzed", "fizz"},
		{"failing", "fail"},
		{"filing", "file"},
		// Step 1c.
		{"happy", "happi"},
		{"sky", "sky"},
		// Step 2.
		{"relational", "relat"},
		{"conditional", "condit"},
		{"valenci", "valenc"},
		{"hesitanci", "hesit"},
		{"digitizer", "digit"},
		{"operator", "oper"},
		// Step 3.
		{"triplicate", "triplic"},
		{"formative", "form"},
		{"formalize", "formal"},
		{"electrical", "electr"},
		{"hopeful", "hope"},
		{"goodness", "good"},
		// Step 4.
		{"revival", "reviv"},
		{"allowance", "allow"},
		{"inference", "infer"},
		{"adjustment", "adjust"},
		{"dependent", "depend"},
		{"adoption", "adopt"},
		// Step 5.
		{"probate", "probat"},
		{"rate", "rate"},
		{"cease", "ceas"},
		{"controll", "control"},
		{"roll", "roll"},
		// Short words unchanged.
		{"a", "a"},
		{"as", "as"},
		{"the", "the"},
	}
	for _, tc := range tests {
		if got := Stem(tc.in); got != tc.want {
			t.Errorf("Stem(%q) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

// TestStemSharedStems checks that inflections collapse to a common stem,
// which is the property the index actually relies on.
func TestStemSharedStems(t *testing.T) {
	groups := [][]string{
		{"run", "running", "runs"},
		{"connect", "connected", "connecting", "connection", "connections"},
		{"verify", "verified", "verifies"},
		{"retrieve", "retrieved", "retrieves", "retrieving"},
	}
	for _, g := range groups {
		stem := Stem(g[0])
		for _, w := range g[1:] {
			if got := Stem(w); got != stem {
				t.Errorf("Stem(%q) = %q, want %q (same as %q)", w, got, stem, g[0])
			}
		}
	}
}

// TestStemNeverGrows: the Porter stemmer never lengthens a word (it only
// removes or shortens suffixes; the +e rules fire after longer removals).
func TestStemNeverGrows(t *testing.T) {
	f := func(s string) bool {
		// Restrict to plausible lowercase word inputs.
		word := Fold(s)
		if len(word) == 0 || len(word) > 50 {
			return true
		}
		for _, r := range word {
			if r < 'a' || r > 'z' {
				return true
			}
		}
		return len(Stem(word)) <= len(word)+1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestStemDeterministic: the stemmer is a pure function — identical inputs
// produce identical outputs (the property single-pass indexing relies on;
// note Porter is NOT idempotent: "congressional" → "congression" →
// "congress" on a second pass, faithfully to the original algorithm).
func TestStemDeterministic(t *testing.T) {
	words := []string{
		"congressional", "district", "incumbent", "elected", "player",
		"country", "money", "tournament", "filmography", "attendance",
		"championship", "climate", "precipitation", "companies",
	}
	for _, w := range words {
		if Stem(w) != Stem(w) {
			t.Errorf("Stem(%q) is not deterministic", w)
		}
	}
	if got := Stem("congressional"); got != "congression" {
		t.Errorf("Stem(congressional) = %q, want congression", got)
	}
}

func TestIsStopword(t *testing.T) {
	for _, w := range []string{"the", "and", "of", "is", "they"} {
		if !IsStopword(w) {
			t.Errorf("IsStopword(%q) = false, want true", w)
		}
	}
	for _, w := range []string{"golf", "district", "money", ""} {
		if IsStopword(w) {
			t.Errorf("IsStopword(%q) = true, want false", w)
		}
	}
}

func TestFilterStopwords(t *testing.T) {
	in := []string{"the", "golf", "of", "champions"}
	got := FilterStopwords(in)
	if len(got) != 2 || got[0] != "golf" || got[1] != "champions" {
		t.Errorf("FilterStopwords = %v", got)
	}
}
