package textutil

import (
	"reflect"
	"strings"
	"testing"
	"testing/quick"
	"unicode"
)

func TestTokenize(t *testing.T) {
	tests := []struct {
		in   string
		want []string
	}{
		{"", nil},
		{"hello world", []string{"hello", "world"}},
		{"Hello, World!", []string{"hello", "world"}},
		{"Ohio's_1st_congressional_district", []string{"ohios", "1st", "congressional", "district"}},
		{"1954 u.s. open (golf)", []string{"1954", "u", "s", "open", "golf"}},
		{"o'brien", []string{"obrien"}},
		{"a-b-c", []string{"a", "b", "c"}},
		{"  spaced   out  ", []string{"spaced", "out"}},
		{"$6,000", []string{"6", "000"}},
		{"é—ü", []string{"é", "ü"}},
	}
	for _, tc := range tests {
		got := Tokenize(tc.in)
		if !reflect.DeepEqual(got, tc.want) {
			t.Errorf("Tokenize(%q) = %v, want %v", tc.in, got, tc.want)
		}
	}
}

func TestTokenizeLowercasesEverything(t *testing.T) {
	// ASCII letters must come out lowercase (some exotic Unicode uppercase
	// letters like 𝕏 have no lowercase mapping; those pass through, which
	// matches unicode.ToLower).
	f := func(s string) bool {
		for _, tok := range Tokenize(s) {
			for _, r := range tok {
				if r >= 'A' && r <= 'Z' {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	// And any rune with a lowercase mapping is mapped.
	for _, tok := range Tokenize("ÀÉÎÕÜ") {
		for _, r := range tok {
			if unicode.ToLower(r) != r {
				t.Errorf("rune %q not lowercased", r)
			}
		}
	}
}

func TestTokenizeFiltered(t *testing.T) {
	got := TokenizeFiltered("The running dogs are in the houses")
	// "the", "are", "in" are stopwords; remaining tokens are stemmed.
	want := []string{"run", "dog", "hous"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("TokenizeFiltered = %v, want %v", got, want)
	}
}

func TestNormalize(t *testing.T) {
	tests := []struct{ in, want string }{
		{"", ""},
		{"  Hello   World  ", "hello world"},
		{"Steve_Chabot", "steve chabot"},
		{"A\tB\nC", "a b c"},
		{"already normal", "already normal"},
	}
	for _, tc := range tests {
		if got := Normalize(tc.in); got != tc.want {
			t.Errorf("Normalize(%q) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

func TestFold(t *testing.T) {
	tests := []struct{ in, want string }{
		{"Steve_Chabot", "steve chabot"},
		{"steve chabot.", "steve chabot"},
		{"  Mixed-Case, Text!  ", "mixed case text"},
		{"", ""},
		{"$6,000", "6 000"},
	}
	for _, tc := range tests {
		if got := Fold(tc.in); got != tc.want {
			t.Errorf("Fold(%q) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

func TestFoldIdempotent(t *testing.T) {
	f := func(s string) bool { return Fold(Fold(s)) == Fold(s) }
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNormalizeIdempotent(t *testing.T) {
	f := func(s string) bool { return Normalize(Normalize(s)) == Normalize(s) }
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNGrams(t *testing.T) {
	if got := NGrams("abcd", 2); !reflect.DeepEqual(got, []string{"ab", "bc", "cd"}) {
		t.Errorf("NGrams = %v", got)
	}
	if got := NGrams("ab", 3); got != nil {
		t.Errorf("NGrams on short input = %v, want nil", got)
	}
	if got := NGrams("abc", 0); got != nil {
		t.Errorf("NGrams with n=0 = %v, want nil", got)
	}
}

func TestWordNGrams(t *testing.T) {
	toks := []string{"a", "b", "c"}
	if got := WordNGrams(toks, 2); !reflect.DeepEqual(got, []string{"a b", "b c"}) {
		t.Errorf("WordNGrams = %v", got)
	}
	if got := WordNGrams(toks, 4); got != nil {
		t.Errorf("WordNGrams too long = %v, want nil", got)
	}
}

func TestSplitSentences(t *testing.T) {
	tests := []struct {
		in   string
		want []string
	}{
		{"One. Two! Three?", []string{"One.", "Two!", "Three?"}},
		{"No terminator", []string{"No terminator"}},
		{"", nil},
		{"Dr. Smith went home. (Quietly.)", []string{"Dr.", "Smith went home.", "(Quietly.)"}},
		{"Trailing space. ", []string{"Trailing space."}},
	}
	for _, tc := range tests {
		got := SplitSentences(tc.in)
		if !reflect.DeepEqual(got, tc.want) {
			t.Errorf("SplitSentences(%q) = %v, want %v", tc.in, got, tc.want)
		}
	}
}

func TestSplitSentencesCoversInput(t *testing.T) {
	// Every non-space character of a simple sentence list must survive.
	in := "The first sentence is here. The second follows it. And a third."
	var total int
	for _, s := range SplitSentences(in) {
		total += len(strings.ReplaceAll(s, " ", ""))
	}
	want := len(strings.ReplaceAll(in, " ", ""))
	if total != want {
		t.Errorf("sentences cover %d non-space chars, want %d", total, want)
	}
}
