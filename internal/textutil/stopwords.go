package textutil

// stopwords is the standard English stopword list used by the analysis
// chain. It matches (a superset of) the Lucene/Elasticsearch default English
// list, since the paper's content-based index is Elasticsearch.
var stopwords = map[string]struct{}{
	"a": {}, "an": {}, "and": {}, "are": {}, "as": {}, "at": {}, "be": {},
	"but": {}, "by": {}, "for": {}, "if": {}, "in": {}, "into": {}, "is": {},
	"it": {}, "no": {}, "not": {}, "of": {}, "on": {}, "or": {}, "such": {},
	"that": {}, "the": {}, "their": {}, "then": {}, "there": {}, "these": {},
	"they": {}, "this": {}, "to": {}, "was": {}, "will": {}, "with": {},
	"he": {}, "she": {}, "his": {}, "her": {}, "its": {}, "from": {},
	"has": {}, "have": {}, "had": {}, "were": {}, "been": {}, "which": {},
	"who": {}, "whom": {}, "what": {}, "when": {}, "where": {}, "also": {},
}

// IsStopword reports whether the lowercase token t is an English stopword.
func IsStopword(t string) bool {
	_, ok := stopwords[t]
	return ok
}

// FilterStopwords returns tokens with stopwords removed, reusing the input
// slice's backing array.
func FilterStopwords(tokens []string) []string {
	out := tokens[:0]
	for _, t := range tokens {
		if !IsStopword(t) {
			out = append(out, t)
		}
	}
	return out
}
