package textutil

import "math"

// Levenshtein returns the edit distance between a and b using the standard
// two-row dynamic program. Cost is O(len(a)*len(b)) time, O(min) space.
func Levenshtein(a, b string) int {
	ra, rb := []rune(a), []rune(b)
	if len(ra) > len(rb) {
		ra, rb = rb, ra
	}
	if len(ra) == 0 {
		return len(rb)
	}
	prev := make([]int, len(ra)+1)
	cur := make([]int, len(ra)+1)
	for i := range prev {
		prev[i] = i
	}
	for j := 1; j <= len(rb); j++ {
		cur[0] = j
		for i := 1; i <= len(ra); i++ {
			cost := 1
			if ra[i-1] == rb[j-1] {
				cost = 0
			}
			cur[i] = min3(cur[i-1]+1, prev[i]+1, prev[i-1]+cost)
		}
		prev, cur = cur, prev
	}
	return prev[len(ra)]
}

func min3(a, b, c int) int {
	if b < a {
		a = b
	}
	if c < a {
		a = c
	}
	return a
}

// EditSimilarity returns 1 - Levenshtein(a,b)/max(len(a),len(b)), a value in
// [0,1] where 1 means equal strings. Empty-vs-empty is 1.
func EditSimilarity(a, b string) float64 {
	la, lb := len([]rune(a)), len([]rune(b))
	if la == 0 && lb == 0 {
		return 1
	}
	m := la
	if lb > m {
		m = lb
	}
	return 1 - float64(Levenshtein(a, b))/float64(m)
}

// Jaccard returns |A∩B| / |A∪B| over the two token multisets treated as
// sets. Both-empty yields 1.
func Jaccard(a, b []string) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 1
	}
	set := make(map[string]uint8, len(a)+len(b))
	for _, t := range a {
		set[t] |= 1
	}
	for _, t := range b {
		set[t] |= 2
	}
	inter := 0
	for _, m := range set {
		if m == 3 {
			inter++
		}
	}
	return float64(inter) / float64(len(set))
}

// Dice returns the Sørensen–Dice coefficient 2|A∩B| / (|A|+|B|) over token
// sets. Both-empty yields 1.
func Dice(a, b []string) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 1
	}
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	sa := make(map[string]struct{}, len(a))
	for _, t := range a {
		sa[t] = struct{}{}
	}
	sb := make(map[string]struct{}, len(b))
	for _, t := range b {
		sb[t] = struct{}{}
	}
	inter := 0
	for t := range sa {
		if _, ok := sb[t]; ok {
			inter++
		}
	}
	return 2 * float64(inter) / float64(len(sa)+len(sb))
}

// CosineTokens returns the cosine similarity of the term-frequency vectors
// of the two token lists.
func CosineTokens(a, b []string) float64 {
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	fa := make(map[string]float64, len(a))
	for _, t := range a {
		fa[t]++
	}
	fb := make(map[string]float64, len(b))
	for _, t := range b {
		fb[t]++
	}
	var dot, na, nb float64
	for t, c := range fa {
		na += c * c
		if cb, ok := fb[t]; ok {
			dot += c * cb
		}
	}
	for _, c := range fb {
		nb += c * c
	}
	if dot == 0 {
		return 0
	}
	return dot / (math.Sqrt(na) * math.Sqrt(nb))
}

// ContainmentSimilarity returns |A∩B| / |A|: how much of a is covered by b.
// Used to score whether an evidence text covers a query tuple's tokens.
func ContainmentSimilarity(a, b []string) float64 {
	if len(a) == 0 {
		return 0
	}
	sb := make(map[string]struct{}, len(b))
	for _, t := range b {
		sb[t] = struct{}{}
	}
	hit := 0
	seen := make(map[string]struct{}, len(a))
	for _, t := range a {
		if _, dup := seen[t]; dup {
			continue
		}
		seen[t] = struct{}{}
		if _, ok := sb[t]; ok {
			hit++
		}
	}
	return float64(hit) / float64(len(seen))
}
