// Package lakeio persists a multi-modal data lake to a directory and loads
// it back — the interchange format between cmd/lakegen (which generates
// synthetic lakes) and cmd/verifai (which verifies against them).
//
// Layout:
//
//	<dir>/manifest.json    catalog: sources, table entries, doc entries
//	<dir>/tables/<id>.csv  one CSV per table (header row + data rows)
//	<dir>/texts/<id>.txt   one text file per document
package lakeio

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/datalake"
	"repro/internal/doc"
	"repro/internal/kg"
	"repro/internal/table"
)

// manifest is the on-disk catalog.
type manifest struct {
	Sources []datalake.Source `json:"sources"`
	Tables  []tableEntry      `json:"tables"`
	Docs    []docEntry        `json:"docs"`
	Triples []kg.Triple       `json:"triples,omitempty"`
}

type tableEntry struct {
	ID       string `json:"id"`
	Caption  string `json:"caption"`
	SourceID string `json:"source_id"`
	File     string `json:"file"`
}

type docEntry struct {
	ID       string `json:"id"`
	Title    string `json:"title"`
	EntityID string `json:"entity_id,omitempty"`
	SourceID string `json:"source_id"`
	File     string `json:"file"`
}

// Catalog is the read surface Save serializes: both the live
// *datalake.Lake and a pinned *datalake.View satisfy it, so a checkpoint
// can serialize a forked view with no lake locks held while ingestion
// continues, through exactly the code that writes a live lake.
type Catalog interface {
	Sources() []datalake.Source
	TableIDs() []string
	Table(id string) (*table.Table, bool)
	DocIDs() []string
	Document(id string) (*doc.Document, bool)
	Triples() []kg.Triple
}

// Save writes the lake to dir, creating it if needed. Existing files are
// overwritten; unrelated files in dir are left alone. For a consistent
// snapshot under concurrent ingestion, pass a pinned view (datalake.Fork)
// instead of the live lake.
func Save(lake Catalog, dir string) error {
	for _, sub := range []string{"", "tables", "texts"} {
		if err := os.MkdirAll(filepath.Join(dir, sub), 0o755); err != nil {
			return fmt.Errorf("lakeio: mkdir: %w", err)
		}
	}
	var m manifest
	m.Sources = lake.Sources()

	for _, tid := range lake.TableIDs() {
		t, ok := lake.Table(tid)
		if !ok {
			return fmt.Errorf("lakeio: table %q vanished", tid)
		}
		rel := filepath.Join("tables", tid+".csv")
		f, err := os.Create(filepath.Join(dir, rel))
		if err != nil {
			return fmt.Errorf("lakeio: create table file: %w", err)
		}
		err = table.WriteCSV(f, t)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return fmt.Errorf("lakeio: write table %q: %w", tid, err)
		}
		m.Tables = append(m.Tables, tableEntry{ID: tid, Caption: t.Caption, SourceID: t.SourceID, File: rel})
	}

	for _, did := range lake.DocIDs() {
		d, ok := lake.Document(did)
		if !ok {
			return fmt.Errorf("lakeio: document %q vanished", did)
		}
		rel := filepath.Join("texts", did+".txt")
		if err := os.WriteFile(filepath.Join(dir, rel), []byte(d.Text), 0o644); err != nil {
			return fmt.Errorf("lakeio: write doc %q: %w", did, err)
		}
		m.Docs = append(m.Docs, docEntry{ID: did, Title: d.Title, EntityID: d.EntityID, SourceID: d.SourceID, File: rel})
	}

	m.Triples = lake.Triples()

	data, err := json.MarshalIndent(&m, "", "  ")
	if err != nil {
		return fmt.Errorf("lakeio: marshal manifest: %w", err)
	}
	if err := os.WriteFile(filepath.Join(dir, "manifest.json"), data, 0o644); err != nil {
		return fmt.Errorf("lakeio: write manifest: %w", err)
	}
	return nil
}

// Load reads a lake directory written by Save. opts configure the returned
// lake (e.g. datalake.WithQueueSize for the ingest queue bound). The lake
// runs a dispatcher goroutine; processes that discard loaded lakes before
// exiting should Close them.
func Load(dir string, opts ...datalake.Option) (_ *datalake.Lake, err error) {
	data, err := os.ReadFile(filepath.Join(dir, "manifest.json"))
	if err != nil {
		return nil, fmt.Errorf("lakeio: read manifest: %w", err)
	}
	var m manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("lakeio: parse manifest: %w", err)
	}
	lake := datalake.New(opts...)
	// The lake owns a dispatcher goroutine; shut it down if the load is
	// abandoned on any error path below.
	defer func() {
		if err != nil {
			_ = lake.Close()
		}
	}()
	for _, s := range m.Sources {
		lake.AddSource(s)
	}
	// Batch the whole manifest through one pipelined ingest: a single
	// write-lock acquisition commits every item, instead of one
	// commit+wait round trip per instance.
	var items []datalake.BatchItem
	for _, te := range m.Tables {
		f, err := os.Open(filepath.Join(dir, te.File))
		if err != nil {
			return nil, fmt.Errorf("lakeio: open table file: %w", err)
		}
		t, err := table.ReadCSV(f, te.ID, te.Caption)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return nil, fmt.Errorf("lakeio: read table %q: %w", te.ID, err)
		}
		t.SourceID = te.SourceID
		items = append(items, datalake.BatchItem{Table: t})
	}
	for _, de := range m.Docs {
		text, err := os.ReadFile(filepath.Join(dir, de.File))
		if err != nil {
			return nil, fmt.Errorf("lakeio: read doc %q: %w", de.ID, err)
		}
		d := &doc.Document{ID: de.ID, Title: de.Title, EntityID: de.EntityID, SourceID: de.SourceID, Text: string(text)}
		items = append(items, datalake.BatchItem{Doc: d})
	}
	for _, tr := range m.Triples {
		tr := tr
		items = append(items, datalake.BatchItem{Triple: &tr})
	}
	results, err := lake.AddBatch(items)
	if err != nil {
		return nil, fmt.Errorf("lakeio: load batch: %w", err)
	}
	for _, res := range results {
		if res.Err != nil {
			return nil, fmt.Errorf("lakeio: load: %w", res.Err)
		}
	}
	return lake, nil
}
