package lakeio

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/datalake"
	"repro/internal/doc"
	"repro/internal/kg"
	"repro/internal/workload"
)

func TestSaveLoadRoundtrip(t *testing.T) {
	lake := datalake.New()
	lake.AddSource(datalake.Source{ID: "s1", Name: "tables", TrustPrior: 0.8})
	tbl := workload.USOpen1954Table()
	tbl.SourceID = "s1"
	if err := lake.AddTable(tbl); err != nil {
		t.Fatal(err)
	}
	d := &doc.Document{ID: "d1", Title: "Tommy Bolt", EntityID: "tommy bolt", SourceID: "s1", Text: "A golfer."}
	if err := lake.AddDocument(d); err != nil {
		t.Fatal(err)
	}
	lake.AddTriple(kg.Triple{Subject: "tommy bolt", Predicate: "sport", Object: "golf", SourceID: "s1"})

	dir := t.TempDir()
	if err := Save(lake, dir); err != nil {
		t.Fatalf("Save: %v", err)
	}
	loaded, err := Load(dir)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}

	a, b := lake.Stats(), loaded.Stats()
	if a != b {
		t.Errorf("stats mismatch: %+v vs %+v", a, b)
	}
	lt, ok := loaded.Table(tbl.ID)
	if !ok {
		t.Fatal("table missing after load")
	}
	if lt.Caption != tbl.Caption || lt.SourceID != "s1" || !reflect.DeepEqual(lt.Rows, tbl.Rows) {
		t.Error("table content drifted")
	}
	ld, ok := loaded.Document("d1")
	if !ok || ld.Title != "Tommy Bolt" || ld.Text != "A golfer." || ld.EntityID != "tommy bolt" {
		t.Errorf("doc drifted: %+v", ld)
	}
	if got := loaded.Graph().Lookup("tommy bolt", "sport"); len(got) != 1 || got[0] != "golf" {
		t.Errorf("triples drifted: %v", got)
	}
	src, ok := loaded.Source("s1")
	if !ok || src.TrustPrior != 0.8 {
		t.Errorf("source drifted: %+v", src)
	}
}

func TestLoadErrors(t *testing.T) {
	if _, err := Load(t.TempDir()); err == nil {
		t.Error("Load on empty dir succeeded")
	}
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "manifest.json"), []byte("{bad"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(dir); err == nil {
		t.Error("malformed manifest accepted")
	}
}

func TestSaveGeneratedCorpus(t *testing.T) {
	cfg := workload.DefaultConfig()
	cfg.NumTables = 60
	cfg.NumTexts = 40
	corpus, err := workload.GenerateLake(cfg)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := Save(corpus.Lake, dir); err != nil {
		t.Fatalf("Save corpus: %v", err)
	}
	loaded, err := Load(dir)
	if err != nil {
		t.Fatalf("Load corpus: %v", err)
	}
	if loaded.Stats() != corpus.Lake.Stats() {
		t.Errorf("corpus stats drifted: %+v vs %+v", loaded.Stats(), corpus.Lake.Stats())
	}
}
