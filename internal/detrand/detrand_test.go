package detrand

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestHashDeterministic(t *testing.T) {
	if Hash(1, "a", "b") != Hash(1, "a", "b") {
		t.Fatal("Hash is not deterministic")
	}
	if Hash(1, "a") == Hash(2, "a") {
		t.Error("Hash ignores seed")
	}
	if Hash(1, "a") == Hash(1, "b") {
		t.Error("Hash ignores keys")
	}
	// Key order matters.
	if Hash(1, "a", "b") == Hash(1, "b", "a") {
		t.Error("Hash ignores key order")
	}
}

func TestUniformRange(t *testing.T) {
	f := func(seed uint64, key string) bool {
		u := Uniform(seed, key)
		return u >= 0 && u < 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestUniformMean(t *testing.T) {
	var sum float64
	const n = 20000
	for i := 0; i < n; i++ {
		sum += Uniform(42, "mean", string(rune(i)), string(rune(i/500)))
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.02 {
		t.Errorf("Uniform mean = %v, want ~0.5", mean)
	}
}

func TestBernoulliRate(t *testing.T) {
	const n = 20000
	hits := 0
	for i := 0; i < n; i++ {
		if Bernoulli(0.3, 7, "bern", string(rune(i))) {
			hits++
		}
	}
	rate := float64(hits) / n
	if math.Abs(rate-0.3) > 0.02 {
		t.Errorf("Bernoulli rate = %v, want ~0.3", rate)
	}
}

func TestRandStreamDeterministic(t *testing.T) {
	a := New(9, "stream")
	b := New(9, "stream")
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("streams with same seed diverge")
		}
	}
	c := New(10, "stream")
	same := true
	a2 := New(9, "stream")
	for i := 0; i < 10; i++ {
		if a2.Uint64() != c.Uint64() {
			same = false
		}
	}
	if same {
		t.Error("streams with different seeds coincide")
	}
}

func TestIntn(t *testing.T) {
	r := New(1)
	for i := 0; i < 1000; i++ {
		v := r.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn(7) = %d out of range", v)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) did not panic")
		}
	}()
	r.Intn(0)
}

func TestIntRange(t *testing.T) {
	r := New(2)
	seen := map[int]bool{}
	for i := 0; i < 1000; i++ {
		v := r.IntRange(3, 5)
		if v < 3 || v > 5 {
			t.Fatalf("IntRange(3,5) = %d out of range", v)
		}
		seen[v] = true
	}
	if len(seen) != 3 {
		t.Errorf("IntRange(3,5) hit %d values, want 3", len(seen))
	}
}

func TestPerm(t *testing.T) {
	r := New(3)
	p := r.Perm(20)
	if len(p) != 20 {
		t.Fatalf("Perm length %d", len(p))
	}
	sorted := append([]int(nil), p...)
	sort.Ints(sorted)
	for i, v := range sorted {
		if v != i {
			t.Fatalf("Perm is not a permutation: %v", p)
		}
	}
}

func TestShuffleIsPermutation(t *testing.T) {
	r := New(4)
	vals := []int{0, 1, 2, 3, 4, 5, 6, 7}
	r.Shuffle(len(vals), func(i, j int) { vals[i], vals[j] = vals[j], vals[i] })
	sorted := append([]int(nil), vals...)
	sort.Ints(sorted)
	for i, v := range sorted {
		if v != i {
			t.Fatalf("Shuffle lost elements: %v", vals)
		}
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(5)
	const n = 20000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.05 {
		t.Errorf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.05 {
		t.Errorf("normal variance = %v, want ~1", variance)
	}
}

func TestPick(t *testing.T) {
	r := New(6)
	counts := make([]int, 3)
	weights := []float64{1, 2, 7}
	const n = 30000
	for i := 0; i < n; i++ {
		counts[r.Pick(weights)]++
	}
	for i, w := range weights {
		want := w / 10
		got := float64(counts[i]) / n
		if math.Abs(got-want) > 0.02 {
			t.Errorf("Pick weight %d: rate %v, want ~%v", i, got, want)
		}
	}
}

func TestPickPanics(t *testing.T) {
	r := New(7)
	for _, weights := range [][]float64{nil, {0, 0}, {-1, 2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Pick(%v) did not panic", weights)
				}
			}()
			r.Pick(weights)
		}()
	}
}

func TestBool(t *testing.T) {
	r := New(8)
	hits := 0
	const n = 20000
	for i := 0; i < n; i++ {
		if r.Bool(0.8) {
			hits++
		}
	}
	rate := float64(hits) / n
	if math.Abs(rate-0.8) > 0.02 {
		t.Errorf("Bool(0.8) rate = %v", rate)
	}
}
