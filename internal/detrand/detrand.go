// Package detrand supplies deterministic pseudo-randomness for the whole
// reproduction. Every stochastic decision (corpus sampling, simulated model
// knowledge, calibrated error injection) is derived by hashing a (seed,
// stable-key) pair through SplitMix64, so results are bit-reproducible
// across runs, machines, and iteration orders. No global state, no
// math/rand, no time-based seeding.
package detrand

import "math"

// splitmix64 advances the SplitMix64 state and returns the next output.
// Reference: Steele, Lea, Flood — "Fast Splittable Pseudorandom Number
// Generators" (OOPSLA 2014).
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	z := x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// fnv1a64 hashes s with FNV-1a, used to fold string keys into the stream.
func fnv1a64(s string) uint64 {
	const (
		offset = 0xcbf29ce484222325
		prime  = 0x100000001b3
	)
	h := uint64(offset)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime
	}
	return h
}

// Hash combines a numeric seed and any number of string keys into a single
// well-mixed 64-bit value.
func Hash(seed uint64, keys ...string) uint64 {
	h := splitmix64(seed)
	for _, k := range keys {
		h = splitmix64(h ^ fnv1a64(k))
	}
	return h
}

// Uniform returns a deterministic value in [0,1) keyed by (seed, keys).
func Uniform(seed uint64, keys ...string) float64 {
	// Use the top 53 bits for a uniformly distributed double.
	return float64(Hash(seed, keys...)>>11) / float64(1<<53)
}

// Bernoulli returns true with probability p, keyed by (seed, keys).
func Bernoulli(p float64, seed uint64, keys ...string) bool {
	return Uniform(seed, keys...) < p
}

// Rand is a sequential deterministic generator for code that needs a stream
// of values (corpus generation). The zero value is NOT valid; use New.
type Rand struct {
	state uint64
}

// New returns a generator seeded by seed and optional string keys.
func New(seed uint64, keys ...string) *Rand {
	return &Rand{state: Hash(seed, keys...)}
}

// Uint64 returns the next 64-bit value in the stream.
func (r *Rand) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns the next value in [0,1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / float64(1<<53)
}

// Intn returns a value in [0,n). It panics when n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("detrand: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// IntRange returns a value in [lo, hi]. It panics when hi < lo.
func (r *Rand) IntRange(lo, hi int) int {
	if hi < lo {
		panic("detrand: IntRange with hi < lo")
	}
	return lo + r.Intn(hi-lo+1)
}

// Bool returns true with probability p.
func (r *Rand) Bool(p float64) bool {
	return r.Float64() < p
}

// NormFloat64 returns a standard normal variate via Box–Muller.
func (r *Rand) NormFloat64() float64 {
	u1 := r.Float64()
	for u1 == 0 {
		u1 = r.Float64()
	}
	u2 := r.Float64()
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// Perm returns a deterministic pseudo-random permutation of [0,n).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle permutes the first n elements using swap, Fisher–Yates style.
func (r *Rand) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Pick returns a deterministic element index weighted by weights (all >= 0).
// It panics when weights is empty or sums to zero.
func (r *Rand) Pick(weights []float64) int {
	var sum float64
	for _, w := range weights {
		if w < 0 {
			panic("detrand: negative weight")
		}
		sum += w
	}
	if len(weights) == 0 || sum == 0 {
		panic("detrand: Pick with no mass")
	}
	x := r.Float64() * sum
	for i, w := range weights {
		x -= w
		if x < 0 {
			return i
		}
	}
	return len(weights) - 1
}
