package binfmt

import (
	"fmt"
	"io"
	"os"
	"unsafe"
)

// NoMmapEnv disables the mmap fast path when set to a non-empty value,
// forcing OpenFile onto the portable read-everything fallback. Exposed so
// benchmarks can measure both paths on the same machine.
const NoMmapEnv = "REPRO_BINFMT_NOMMAP"

// OpenFile opens and fully verifies a container file. On supported
// platforms the file is memory-mapped read-only, so opening costs one
// verification pass over the page cache and no heap materialization; the
// mapping is released by a finalizer when the Reader (and every structure
// pinning it) becomes unreachable. Elsewhere — or when NoMmapEnv is set —
// the file is read into an aligned buffer instead.
func OpenFile(path string) (*Reader, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, fmt.Errorf("binfmt: stat %s: %w", path, err)
	}
	size := st.Size()
	if size > int64(int(^uint(0)>>1)) {
		return nil, fmt.Errorf("binfmt: %s too large to map (%d bytes)", path, size)
	}
	if mmapSupported && os.Getenv(NoMmapEnv) == "" {
		data, err := mmapFile(f, int(size))
		if err == nil {
			r, rerr := NewReader(data)
			if rerr != nil {
				munmap(data)
				return nil, fmt.Errorf("binfmt: %s: %w", path, rerr)
			}
			r.mapped = true
			setUnmapFinalizer(r)
			return r, nil
		}
		// Fall through to the portable path on any mmap failure.
	}
	buf := alignedBuf(int(size))
	if _, err := io.ReadFull(f, buf); err != nil {
		return nil, fmt.Errorf("binfmt: read %s: %w", path, err)
	}
	r, err := NewReader(buf)
	if err != nil {
		return nil, fmt.Errorf("binfmt: %s: %w", path, err)
	}
	return r, nil
}

// alignedBuf returns a zeroed byte slice of length n whose backing array
// is 8-byte aligned (it is carved out of a []uint64), so typed section
// views cast cleanly on the fallback path.
func alignedBuf(n int) []byte {
	if n == 0 {
		return nil
	}
	words := make([]uint64, (n+7)/8)
	return unsafe.Slice((*byte)(unsafe.Pointer(&words[0])), n)
}
