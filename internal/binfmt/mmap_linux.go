//go:build linux

package binfmt

import (
	"os"
	"runtime"
	"syscall"
)

const mmapSupported = true

func mmapFile(f *os.File, size int) ([]byte, error) {
	if size == 0 {
		// Zero-length mappings are invalid; an empty file cannot be a
		// container anyway, so surface that through NewReader.
		return nil, nil
	}
	return syscall.Mmap(int(f.Fd()), 0, size, syscall.PROT_READ, syscall.MAP_PRIVATE)
}

func munmap(data []byte) {
	if data != nil {
		_ = syscall.Munmap(data)
	}
}

// setUnmapFinalizer releases the mapping once the Reader is unreachable.
// Every structure that retains a section view also retains the Reader
// (see Reader docs), so the mapping cannot be released while a view is
// still reachable. Close is deliberately absent: core's Indexer contract
// keeps indexes searchable after Close, so an eager unmap would turn a
// late search into a fault.
func setUnmapFinalizer(r *Reader) {
	data := r.data
	runtime.SetFinalizer(r, func(*Reader) { munmap(data) })
}
