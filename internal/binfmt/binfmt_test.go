package binfmt

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// buildTestContainer writes one section of every supported column type.
func buildTestContainer(t testing.TB) []byte {
	t.Helper()
	w := NewWriter()
	if err := w.JSON("meta", map[string]any{"kind": "test", "n": 3}); err != nil {
		t.Fatalf("JSON: %v", err)
	}
	w.Int32s("i32", []int32{-1, 0, math.MaxInt32})
	w.Uint32s("u32", []uint32{1, 2, 3, 4, 5})
	w.Float32s("f32", []float32{0.5, -2.25, 1e20})
	w.Int8s("i8", []int8{-128, 0, 127, 7})
	w.Strings("strs", []string{"alpha", "", "βγ", "zz"})
	w.Section("raw", []byte("payload"))
	var buf bytes.Buffer
	if _, err := w.WriteTo(&buf); err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	return buf.Bytes()
}

func checkTestContainer(t *testing.T, r *Reader) {
	t.Helper()
	var meta struct {
		Kind string `json:"kind"`
		N    int    `json:"n"`
	}
	if err := r.JSON("meta", &meta); err != nil {
		t.Fatalf("JSON: %v", err)
	}
	if meta.Kind != "test" || meta.N != 3 {
		t.Fatalf("meta = %+v", meta)
	}
	i32, err := r.Int32s("i32")
	if err != nil || !reflect.DeepEqual(i32, []int32{-1, 0, math.MaxInt32}) {
		t.Fatalf("Int32s = %v, %v", i32, err)
	}
	u32, err := r.Uint32s("u32")
	if err != nil || !reflect.DeepEqual(u32, []uint32{1, 2, 3, 4, 5}) {
		t.Fatalf("Uint32s = %v, %v", u32, err)
	}
	f32, err := r.Float32s("f32")
	if err != nil || !reflect.DeepEqual(f32, []float32{0.5, -2.25, 1e20}) {
		t.Fatalf("Float32s = %v, %v", f32, err)
	}
	i8, err := r.Int8s("i8")
	if err != nil || !reflect.DeepEqual(i8, []int8{-128, 0, 127, 7}) {
		t.Fatalf("Int8s = %v, %v", i8, err)
	}
	strs, err := r.Strings("strs")
	if err != nil {
		t.Fatalf("Strings: %v", err)
	}
	want := []string{"alpha", "", "βγ", "zz"}
	if strs.Len() != len(want) {
		t.Fatalf("Strings.Len = %d, want %d", strs.Len(), len(want))
	}
	for i, s := range want {
		if strs.At(i) != s {
			t.Fatalf("strs[%d] = %q, want %q", i, strs.At(i), s)
		}
		if string(strs.Bytes(i)) != s {
			t.Fatalf("strs.Bytes(%d) = %q, want %q", i, strs.Bytes(i), s)
		}
	}
	raw, err := r.Bytes("raw")
	if err != nil || string(raw) != "payload" {
		t.Fatalf("Bytes(raw) = %q, %v", raw, err)
	}
	if _, err := r.Bytes("nope"); err == nil {
		t.Fatal("missing section did not error")
	}
}

func TestRoundTrip(t *testing.T) {
	data := buildTestContainer(t)
	r, err := NewReader(data)
	if err != nil {
		t.Fatalf("NewReader: %v", err)
	}
	checkTestContainer(t, r)
}

func TestOpenFileMmapAndFallback(t *testing.T) {
	data := buildTestContainer(t)
	path := filepath.Join(t.TempDir(), "c.idx")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	r, err := OpenFile(path)
	if err != nil {
		t.Fatalf("OpenFile: %v", err)
	}
	if mmapSupported && !r.Mapped() {
		t.Fatal("expected mmap-backed reader on this platform")
	}
	checkTestContainer(t, r)

	t.Setenv(NoMmapEnv, "1")
	r2, err := OpenFile(path)
	if err != nil {
		t.Fatalf("OpenFile (no mmap): %v", err)
	}
	if r2.Mapped() {
		t.Fatal("reader mapped despite NoMmapEnv")
	}
	checkTestContainer(t, r2)
}

// TestCorruption flips a byte at every offset region of the container —
// header, TOC, and the payload of every section — and asserts the reader
// refuses the file with an error rather than serving garbage or panicking.
func TestCorruption(t *testing.T) {
	data := buildTestContainer(t)
	// Flipping any single byte must be detected: magic/version/probe are
	// compared, the TOC is CRC'd, and every payload is CRC'd. Padding
	// bytes are the only undetected flips, so skip offsets that hold no
	// recorded content.
	covered := make([]bool, len(data))
	for i := 0; i < headerLen; i++ {
		covered[i] = true
	}
	r, err := NewReader(data)
	if err != nil {
		t.Fatalf("NewReader: %v", err)
	}
	tocLen := int(uint32(data[16]) | uint32(data[17])<<8 | uint32(data[18])<<16 | uint32(data[19])<<24)
	for i := headerLen; i < headerLen+tocLen; i++ {
		covered[i] = true
	}
	for name, s := range r.secs {
		if s.n == 0 {
			continue
		}
		for i := s.off; i < s.off+s.n; i++ {
			covered[i] = true
		}
		_ = name
	}
	flipped := 0
	for off, c := range covered {
		if !c {
			continue
		}
		mut := append([]byte(nil), data...)
		mut[off] ^= 0xff
		if _, err := NewReader(mut); err == nil {
			t.Fatalf("corruption at offset %d went undetected", off)
		}
		flipped++
	}
	if flipped < headerLen {
		t.Fatalf("corruption sweep covered only %d offsets", flipped)
	}
}

func TestTruncation(t *testing.T) {
	data := buildTestContainer(t)
	for _, n := range []int{0, 3, headerLen - 1, headerLen, headerLen + 5, len(data) / 2, len(data) - 1} {
		if _, err := NewReader(data[:n]); err == nil {
			t.Fatalf("truncation to %d bytes went undetected", n)
		}
	}
}

func TestWriterRejectsBadSections(t *testing.T) {
	w := NewWriter()
	w.Section("dup", []byte("a"))
	w.Section("dup", []byte("b"))
	if _, err := w.WriteTo(&bytes.Buffer{}); err == nil {
		t.Fatal("duplicate section accepted")
	}
	w = NewWriter()
	w.Section("", []byte("a"))
	if _, err := w.WriteTo(&bytes.Buffer{}); err == nil {
		t.Fatal("empty section name accepted")
	}
}

func TestMisalignedInputIsCopied(t *testing.T) {
	data := buildTestContainer(t)
	// Force a misaligned backing array by offsetting into a larger buffer.
	buf := make([]byte, len(data)+1)
	copy(buf[1:], data)
	r, err := NewReader(buf[1:])
	if err != nil {
		t.Fatalf("NewReader (misaligned): %v", err)
	}
	checkTestContainer(t, r)
}

// FuzzDecodeSnapshot mirrors internal/wal's fuzzing posture: arbitrary
// bytes must never panic the reader; they either parse (and then every
// accessor must stay in bounds) or fail with an error.
func FuzzDecodeSnapshot(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte(Magic))
	f.Add(buildTestContainer(f))
	data := buildTestContainer(f)
	mut := append([]byte(nil), data...)
	mut[len(mut)/2] ^= 0x40
	f.Add(mut)
	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := NewReader(data)
		if err != nil {
			return
		}
		for _, name := range []string{"meta", "i32", "u32", "f32", "i8", "strs", "raw"} {
			if b, err := r.Bytes(name); err == nil {
				_ = len(b)
			}
			if col, err := r.Strings(name); err == nil {
				for i := 0; i < col.Len(); i++ {
					_ = col.At(i)
				}
			}
			_, _ = r.Int32s(name)
			_, _ = r.Float32s(name)
			var v any
			_ = r.JSON(name, &v)
		}
	})
}
