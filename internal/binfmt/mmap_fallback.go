//go:build !linux

package binfmt

import "os"

const mmapSupported = false

func mmapFile(*os.File, int) ([]byte, error) { return nil, nil }

func munmap([]byte) {}

func setUnmapFinalizer(*Reader) {}
