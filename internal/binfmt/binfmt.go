// Package binfmt is the binary columnar container behind VerifAI's index
// snapshots: a length-prefixed, CRC'd, versioned collection of named
// sections, designed so a reader can map the file and hand out typed views
// of each column without decoding anything into heap objects.
//
// Layout:
//
//	[0:4]   magic "VAIB"
//	[4:8]   format version (uint32, little-endian)
//	[8:12]  byte-order probe 0x01020304 written in *native* order
//	[12:16] section count (uint32, little-endian)
//	[16:20] TOC length in bytes (uint32, little-endian)
//	[20:24] CRC-32C of the TOC bytes (uint32, little-endian)
//	[24:…]  TOC: per section, u16 name length, name bytes,
//	        u64 payload offset, u64 payload length, u32 payload CRC-32C
//	[…]     payloads, each starting at an 8-byte-aligned file offset
//
// The header and TOC are little-endian so any reader can parse them;
// section payloads are written in native byte order (they are produced and
// consumed by unsafe slice casts on the same machine) and the probe field
// rejects a snapshot moved across machines of different endianness.
//
// NewReader verifies the TOC and every section CRC up front, so a
// corrupted file fails loudly at open rather than serving garbage later;
// with an mmap'd file this is one streaming pass that warms the page cache
// without building any heap representation of the contents.
package binfmt

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"unsafe"
)

// Magic identifies a binfmt container; files not starting with it are
// assumed to be in the legacy gob encoding by sniffing callers.
const Magic = "VAIB"

// Version is the container format version written by this package.
const Version = 1

// orderProbe is written in native byte order; a reader whose native order
// decodes a different value is on a machine of opposite endianness.
const orderProbe uint32 = 0x01020304

const headerLen = 24

// castagnoli is the CRC-32C table (hardware-accelerated on amd64/arm64).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

func align8(n int) int { return (n + 7) &^ 7 }

// Writer accumulates named sections and serializes them as one container.
// Section payloads are referenced, not copied: callers must not mutate a
// payload between adding it and WriteTo.
type Writer struct {
	names    []string
	payloads [][]byte
}

// NewWriter returns an empty container writer.
func NewWriter() *Writer { return &Writer{} }

// Section adds a raw byte payload under name. Names must be unique and
// non-empty; violations surface as errors from WriteTo.
func (w *Writer) Section(name string, payload []byte) {
	w.names = append(w.names, name)
	w.payloads = append(w.payloads, payload)
}

// Int8s adds v's bytes as a section (native byte order, zero copy).
func (w *Writer) Int8s(name string, v []int8) {
	w.Section(name, castToBytes(unsafe.Pointer(unsafe.SliceData(v)), len(v)))
}

// Int32s adds v's bytes as a section (native byte order, zero copy).
func (w *Writer) Int32s(name string, v []int32) {
	w.Section(name, castToBytes(unsafe.Pointer(unsafe.SliceData(v)), len(v)*4))
}

// Uint32s adds v's bytes as a section (native byte order, zero copy).
func (w *Writer) Uint32s(name string, v []uint32) {
	w.Section(name, castToBytes(unsafe.Pointer(unsafe.SliceData(v)), len(v)*4))
}

// Float32s adds v's bytes as a section (native byte order, zero copy).
func (w *Writer) Float32s(name string, v []float32) {
	w.Section(name, castToBytes(unsafe.Pointer(unsafe.SliceData(v)), len(v)*4))
}

// JSON marshals v and adds it as a section — meant for small metadata
// records, not bulk columns.
func (w *Writer) JSON(name string, v any) error {
	b, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("binfmt: marshal section %q: %w", name, err)
	}
	w.Section(name, b)
	return nil
}

// Strings adds a string column as a single section: u32 count, then
// count+1 u32 end-offsets into the blob that follows. Like all payloads,
// the integers are native byte order.
func (w *Writer) Strings(name string, vals []string) {
	var blobLen int
	for _, s := range vals {
		blobLen += len(s)
	}
	buf := make([]byte, 4+4*(len(vals)+1)+blobLen)
	ne := binary.NativeEndian
	ne.PutUint32(buf, uint32(len(vals)))
	ne.PutUint32(buf[4:], 0)
	off := uint32(0)
	pos := 4 + 4*(len(vals)+1)
	for i, s := range vals {
		off += uint32(len(s))
		ne.PutUint32(buf[4+4*(i+1):], off)
		copy(buf[pos:], s)
		pos += len(s)
	}
	w.Section(name, buf)
}

// WriteTo serializes the container to out.
func (w *Writer) WriteTo(out io.Writer) (int64, error) {
	seen := make(map[string]struct{}, len(w.names))
	toc := make([]byte, 0, 64*len(w.names))
	var scratch [8]byte
	le := binary.LittleEndian
	off := uint64(0) // patched below once the TOC size is known
	offs := make([]uint64, len(w.names))
	for i, name := range w.names {
		if name == "" || len(name) > math.MaxUint16 {
			return 0, fmt.Errorf("binfmt: invalid section name %q", name)
		}
		if _, dup := seen[name]; dup {
			return 0, fmt.Errorf("binfmt: duplicate section %q", name)
		}
		seen[name] = struct{}{}
		le.PutUint16(scratch[:2], uint16(len(name)))
		toc = append(toc, scratch[:2]...)
		toc = append(toc, name...)
		offs[i] = off // relative for now
		le.PutUint64(scratch[:8], 0)
		toc = append(toc, scratch[:8]...) // offset placeholder, patched below
		le.PutUint64(scratch[:8], uint64(len(w.payloads[i])))
		toc = append(toc, scratch[:8]...)
		le.PutUint32(scratch[:4], crc32.Checksum(w.payloads[i], castagnoli))
		toc = append(toc, scratch[:4]...)
	}
	// Assign aligned absolute offsets now that the TOC length is known,
	// and patch them into the TOC.
	pos := align8(headerLen + len(toc))
	patch := 0
	for i, name := range w.names {
		patch += 2 + len(name)
		le.PutUint64(toc[patch:], uint64(pos))
		offs[i] = uint64(pos)
		patch += 8 + 8 + 4
		pos = align8(pos + len(w.payloads[i]))
	}

	var hdr [headerLen]byte
	copy(hdr[0:4], Magic)
	le.PutUint32(hdr[4:8], Version)
	binary.NativeEndian.PutUint32(hdr[8:12], orderProbe)
	le.PutUint32(hdr[12:16], uint32(len(w.names)))
	le.PutUint32(hdr[16:20], uint32(len(toc)))
	le.PutUint32(hdr[20:24], crc32.Checksum(toc, castagnoli))

	var written int64
	emit := func(b []byte) error {
		n, err := out.Write(b)
		written += int64(n)
		return err
	}
	if err := emit(hdr[:]); err != nil {
		return written, fmt.Errorf("binfmt: write header: %w", err)
	}
	if err := emit(toc); err != nil {
		return written, fmt.Errorf("binfmt: write TOC: %w", err)
	}
	var pad [8]byte
	if p := align8(headerLen+len(toc)) - (headerLen + len(toc)); p > 0 {
		if err := emit(pad[:p]); err != nil {
			return written, fmt.Errorf("binfmt: write padding: %w", err)
		}
	}
	for i, payload := range w.payloads {
		if err := emit(payload); err != nil {
			return written, fmt.Errorf("binfmt: write section %q: %w", w.names[i], err)
		}
		// Pad to align the next section; the final section needs none, so
		// truncating the file always removes recorded content.
		if p := align8(len(payload)) - len(payload); p > 0 && i < len(w.payloads)-1 {
			if err := emit(pad[:p]); err != nil {
				return written, fmt.Errorf("binfmt: write padding: %w", err)
			}
		}
	}
	return written, nil
}

// Reader is an opened container. The section views it hands out alias the
// underlying mapping (or the file's in-memory copy on the fallback path);
// any structure that retains a view must also retain the Reader, which
// keeps the mapping alive — the mapping is released by a finalizer once
// the Reader is unreachable.
type Reader struct {
	data   []byte
	secs   map[string]section
	mapped bool
}

type section struct {
	off, n uint64
}

// NewReader parses and fully verifies a container held in memory: header,
// TOC CRC, section bounds, and every section's CRC-32C. data is retained
// and aliased by the returned views.
func NewReader(data []byte) (*Reader, error) {
	if len(data) < headerLen {
		return nil, fmt.Errorf("binfmt: file too short (%d bytes)", len(data))
	}
	// Typed views are produced by pointer casts, so the backing array must
	// be 8-byte aligned (mmap pages and alignedBuf always are; arbitrary
	// caller slices may not be — copy those once).
	if uintptr(unsafe.Pointer(unsafe.SliceData(data)))%8 != 0 {
		buf := alignedBuf(len(data))
		copy(buf, data)
		data = buf
	}
	if string(data[0:4]) != Magic {
		return nil, fmt.Errorf("binfmt: bad magic %q", data[0:4])
	}
	le := binary.LittleEndian
	if v := le.Uint32(data[4:8]); v != Version {
		return nil, fmt.Errorf("binfmt: unsupported format version %d (want %d)", v, Version)
	}
	if p := binary.NativeEndian.Uint32(data[8:12]); p != orderProbe {
		return nil, fmt.Errorf("binfmt: snapshot byte order does not match this machine")
	}
	nsec := int(le.Uint32(data[12:16]))
	tocLen := int(le.Uint32(data[16:20]))
	if tocLen < 0 || headerLen+tocLen > len(data) {
		return nil, fmt.Errorf("binfmt: truncated TOC (%d bytes declared, %d in file)", tocLen, len(data)-headerLen)
	}
	toc := data[headerLen : headerLen+tocLen]
	if got, want := crc32.Checksum(toc, castagnoli), le.Uint32(data[20:24]); got != want {
		return nil, fmt.Errorf("binfmt: TOC checksum mismatch (got %08x, want %08x)", got, want)
	}
	// Each TOC entry is at least 22 bytes (u16 name length + u64 offset +
	// u64 length + u32 CRC); bound the declared count by that before
	// sizing anything, so a corrupted count can't drive a huge allocation.
	if nsec > tocLen/22 {
		return nil, fmt.Errorf("binfmt: TOC too small for %d sections (%d bytes)", nsec, tocLen)
	}
	r := &Reader{data: data, secs: make(map[string]section, nsec)}
	pos := 0
	for i := 0; i < nsec; i++ {
		if pos+2 > len(toc) {
			return nil, fmt.Errorf("binfmt: TOC truncated at section %d", i)
		}
		nameLen := int(le.Uint16(toc[pos:]))
		pos += 2
		if pos+nameLen+20 > len(toc) {
			return nil, fmt.Errorf("binfmt: TOC truncated at section %d", i)
		}
		name := string(toc[pos : pos+nameLen])
		pos += nameLen
		off := le.Uint64(toc[pos:])
		n := le.Uint64(toc[pos+8:])
		crc := le.Uint32(toc[pos+16:])
		pos += 20
		if off%8 != 0 {
			return nil, fmt.Errorf("binfmt: section %q is misaligned (offset %d)", name, off)
		}
		if off > uint64(len(data)) || n > uint64(len(data))-off {
			return nil, fmt.Errorf("binfmt: section %q out of bounds (offset %d, length %d, file %d)", name, off, n, len(data))
		}
		if _, dup := r.secs[name]; dup {
			return nil, fmt.Errorf("binfmt: duplicate section %q", name)
		}
		if got := crc32.Checksum(data[off:off+n], castagnoli); got != crc {
			return nil, fmt.Errorf("binfmt: section %q checksum mismatch (got %08x, want %08x)", name, got, crc)
		}
		r.secs[name] = section{off: off, n: n}
	}
	return r, nil
}

// Mapped reports whether the reader is backed by an mmap'd file (as
// opposed to an in-memory copy).
func (r *Reader) Mapped() bool { return r.mapped }

// Bytes returns the raw payload of a section.
func (r *Reader) Bytes(name string) ([]byte, error) {
	s, ok := r.secs[name]
	if !ok {
		return nil, fmt.Errorf("binfmt: missing section %q", name)
	}
	return r.data[s.off : s.off+s.n : s.off+s.n], nil
}

// JSON unmarshals a section written by Writer.JSON into v.
func (r *Reader) JSON(name string, v any) error {
	b, err := r.Bytes(name)
	if err != nil {
		return err
	}
	if err := json.Unmarshal(b, v); err != nil {
		return fmt.Errorf("binfmt: unmarshal section %q: %w", name, err)
	}
	return nil
}

// Int8s returns a typed view of a section.
func (r *Reader) Int8s(name string) ([]int8, error) {
	b, err := r.Bytes(name)
	if err != nil || len(b) == 0 {
		return nil, err
	}
	return unsafe.Slice((*int8)(unsafe.Pointer(&b[0])), len(b)), nil
}

// Int32s returns a typed view of a section.
func (r *Reader) Int32s(name string) ([]int32, error) {
	b, err := r.sized(name, 4)
	if err != nil || len(b) == 0 {
		return nil, err
	}
	return unsafe.Slice((*int32)(unsafe.Pointer(&b[0])), len(b)/4), nil
}

// Uint32s returns a typed view of a section.
func (r *Reader) Uint32s(name string) ([]uint32, error) {
	b, err := r.sized(name, 4)
	if err != nil || len(b) == 0 {
		return nil, err
	}
	return unsafe.Slice((*uint32)(unsafe.Pointer(&b[0])), len(b)/4), nil
}

// Float32s returns a typed view of a section.
func (r *Reader) Float32s(name string) ([]float32, error) {
	b, err := r.sized(name, 4)
	if err != nil || len(b) == 0 {
		return nil, err
	}
	return unsafe.Slice((*float32)(unsafe.Pointer(&b[0])), len(b)/4), nil
}

func (r *Reader) sized(name string, elem int) ([]byte, error) {
	b, err := r.Bytes(name)
	if err != nil {
		return nil, err
	}
	if len(b)%elem != 0 {
		return nil, fmt.Errorf("binfmt: section %q length %d is not a multiple of %d", name, len(b), elem)
	}
	return b, nil
}

// StringCol is a zero-copy view of a string column: At materializes a
// string (allocates), Bytes returns the raw slice without copying.
type StringCol struct {
	offs []uint32 // len+1 end-offsets, offs[0] == 0
	blob []byte
}

// Strings returns a validated view of a string column section.
func (r *Reader) Strings(name string) (StringCol, error) {
	b, err := r.Bytes(name)
	if err != nil {
		return StringCol{}, err
	}
	if len(b) < 8 {
		return StringCol{}, fmt.Errorf("binfmt: string column %q too short", name)
	}
	count := int(binary.NativeEndian.Uint32(b))
	if count < 0 || 4+4*(count+1) > len(b) {
		return StringCol{}, fmt.Errorf("binfmt: string column %q truncated (count %d, %d bytes)", name, count, len(b))
	}
	offBytes := b[4 : 4+4*(count+1)]
	offs := unsafe.Slice((*uint32)(unsafe.Pointer(&offBytes[0])), count+1)
	blob := b[4+4*(count+1):]
	// The offsets section is little-endian by construction; on the (only
	// supported) little-endian targets the cast view reads them directly.
	if offs[0] != 0 {
		return StringCol{}, fmt.Errorf("binfmt: string column %q has non-zero base offset", name)
	}
	for i := 0; i < count; i++ {
		if offs[i+1] < offs[i] {
			return StringCol{}, fmt.Errorf("binfmt: string column %q offsets not monotonic at %d", name, i)
		}
	}
	if int(offs[count]) != len(blob) {
		return StringCol{}, fmt.Errorf("binfmt: string column %q blob length mismatch (%d offsets vs %d bytes)", name, offs[count], len(blob))
	}
	return StringCol{offs: offs, blob: blob}, nil
}

// Len returns the number of strings in the column.
func (c StringCol) Len() int {
	if c.offs == nil {
		return 0
	}
	return len(c.offs) - 1
}

// At materializes string i (allocates a copy).
func (c StringCol) At(i int) string { return string(c.Bytes(i)) }

// Bytes returns string i as a zero-copy view into the column blob.
func (c StringCol) Bytes(i int) []byte {
	return c.blob[c.offs[i]:c.offs[i+1]:c.offs[i+1]]
}

// castToBytes views n bytes at p as a byte slice (nil-safe for n == 0).
func castToBytes(p unsafe.Pointer, n int) []byte {
	if n == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(p), n)
}
