// Package provenance records the lineage of the end-to-end verification
// process — challenge C4 of the paper: which indexes retrieved which
// instances with what scores, how the reranker reordered them, what each
// verifier decided, and how the final verdict was resolved. Records support
// later human checks and debugging when retrieved data is flawed or the
// verification itself errs.
package provenance

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
)

// RetrievalHit is one index hit.
type RetrievalHit struct {
	// Index names the index that produced the hit ("bm25", "vector").
	Index string `json:"index"`
	// InstanceID is the retrieved lake instance.
	InstanceID string `json:"instance_id"`
	// Score is the index's native score.
	Score float64 `json:"score"`
	// Rank is the hit's position in that index's result list (0-based).
	Rank int `json:"rank"`
}

// RerankEntry is one reranked candidate.
type RerankEntry struct {
	InstanceID string  `json:"instance_id"`
	Score      float64 `json:"score"`
	Rank       int     `json:"rank"`
}

// VerifierDecision is one verifier verdict over one evidence instance.
type VerifierDecision struct {
	InstanceID  string  `json:"instance_id"`
	SourceID    string  `json:"source_id"`
	Verifier    string  `json:"verifier"`
	Verdict     string  `json:"verdict"`
	Explanation string  `json:"explanation"`
	SourceTrust float64 `json:"source_trust"`
}

// Record is the full lineage of one verification run.
type Record struct {
	// Seq is the record's sequence number within the store.
	Seq int `json:"seq"`
	// ObjectID identifies the generated data object.
	ObjectID string `json:"object_id"`
	// Query is the serialized retrieval query.
	Query string `json:"query"`
	// Hits are the raw index hits (all indexes).
	Hits []RetrievalHit `json:"hits"`
	// Combined is the deduplicated candidate list after the Combiner.
	Combined []string `json:"combined"`
	// Reranked is the task-aware top-k′ ordering.
	Reranked []RerankEntry `json:"reranked"`
	// Decisions are the per-evidence verdicts.
	Decisions []VerifierDecision `json:"decisions"`
	// FinalVerdict is the resolved overall verdict.
	FinalVerdict string `json:"final_verdict"`
	// Resolution describes how the final verdict was derived
	// ("trust-weighted majority", "unanimous", ...).
	Resolution string `json:"resolution"`
}

// Store accumulates verification records. It is safe for concurrent use.
type Store struct {
	mu      sync.RWMutex
	records []Record
	byObj   map[string][]int
}

// NewStore returns an empty store.
func NewStore() *Store {
	return &Store{byObj: make(map[string][]int)}
}

// Append adds a record, assigning its sequence number. The record is copied.
func (s *Store) Append(r Record) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	r.Seq = len(s.records)
	s.records = append(s.records, r)
	s.byObj[r.ObjectID] = append(s.byObj[r.ObjectID], r.Seq)
	return r.Seq
}

// Len returns the number of records.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.records)
}

// Get returns the record with the given sequence number.
func (s *Store) Get(seq int) (Record, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if seq < 0 || seq >= len(s.records) {
		return Record{}, false
	}
	return s.records[seq], true
}

// ByObject returns all records for a generated object, oldest first.
func (s *Store) ByObject(objectID string) []Record {
	s.mu.RLock()
	defer s.mu.RUnlock()
	seqs := s.byObj[objectID]
	out := make([]Record, len(seqs))
	for i, seq := range seqs {
		out[i] = s.records[seq]
	}
	return out
}

// EvidenceUsage returns, per lake instance, how many final verdicts each
// instance participated in — the reverse lineage needed to answer "which
// conclusions are tainted?" when an instance is found to be flawed.
func (s *Store) EvidenceUsage() map[string]int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make(map[string]int)
	for _, r := range s.records {
		for _, d := range r.Decisions {
			out[d.InstanceID]++
		}
	}
	return out
}

// TaintedBy returns the object IDs whose verification used the given
// instance as evidence, sorted.
func (s *Store) TaintedBy(instanceID string) []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	seen := make(map[string]struct{})
	for _, r := range s.records {
		for _, d := range r.Decisions {
			if d.InstanceID == instanceID {
				seen[r.ObjectID] = struct{}{}
				break
			}
		}
	}
	out := make([]string, 0, len(seen))
	for id := range seen {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// WriteJSON streams all records as a JSON array.
func (s *Store) WriteJSON(w io.Writer) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(s.records); err != nil {
		return fmt.Errorf("provenance: encode records: %w", err)
	}
	return nil
}

// ReadJSON loads records previously written by WriteJSON into a new store.
func ReadJSON(r io.Reader) (*Store, error) {
	var records []Record
	if err := json.NewDecoder(r).Decode(&records); err != nil {
		return nil, fmt.Errorf("provenance: decode records: %w", err)
	}
	s := NewStore()
	for _, rec := range records {
		s.Append(rec)
	}
	return s, nil
}
