package provenance

import (
	"bytes"
	"reflect"
	"sync"
	"testing"
)

func sampleRecord(obj string) Record {
	return Record{
		ObjectID: obj,
		Query:    "some query",
		Hits: []RetrievalHit{
			{Index: "bm25", InstanceID: "tuple:t1#0", Score: 3.2, Rank: 0},
			{Index: "vector", InstanceID: "text:d1", Score: 0.8, Rank: 0},
		},
		Combined: []string{"tuple:t1#0", "text:d1"},
		Reranked: []RerankEntry{{InstanceID: "tuple:t1#0", Score: 0.9, Rank: 0}},
		Decisions: []VerifierDecision{
			{InstanceID: "tuple:t1#0", SourceID: "s1", Verifier: "chatgpt-sim", Verdict: "Verified", SourceTrust: 0.8},
		},
		FinalVerdict: "Verified",
		Resolution:   "trust-weighted majority",
	}
}

func TestAppendAndGet(t *testing.T) {
	s := NewStore()
	seq := s.Append(sampleRecord("g1"))
	if seq != 0 {
		t.Errorf("first seq = %d", seq)
	}
	if s.Len() != 1 {
		t.Errorf("Len = %d", s.Len())
	}
	r, ok := s.Get(0)
	if !ok || r.ObjectID != "g1" || r.Seq != 0 {
		t.Errorf("Get(0) = %+v, %v", r, ok)
	}
	if _, ok := s.Get(5); ok {
		t.Error("Get out of range ok")
	}
	if _, ok := s.Get(-1); ok {
		t.Error("Get(-1) ok")
	}
}

func TestByObject(t *testing.T) {
	s := NewStore()
	s.Append(sampleRecord("g1"))
	s.Append(sampleRecord("g2"))
	s.Append(sampleRecord("g1"))
	recs := s.ByObject("g1")
	if len(recs) != 2 || recs[0].Seq != 0 || recs[1].Seq != 2 {
		t.Errorf("ByObject = %+v", recs)
	}
	if got := s.ByObject("ghost"); len(got) != 0 {
		t.Errorf("ByObject(ghost) = %v", got)
	}
}

func TestEvidenceUsageAndTaint(t *testing.T) {
	s := NewStore()
	s.Append(sampleRecord("g1"))
	s.Append(sampleRecord("g2"))
	usage := s.EvidenceUsage()
	if usage["tuple:t1#0"] != 2 {
		t.Errorf("usage = %v", usage)
	}
	tainted := s.TaintedBy("tuple:t1#0")
	if !reflect.DeepEqual(tainted, []string{"g1", "g2"}) {
		t.Errorf("TaintedBy = %v", tainted)
	}
	if got := s.TaintedBy("text:unused"); len(got) != 0 {
		t.Errorf("TaintedBy(unused) = %v", got)
	}
}

func TestJSONRoundtrip(t *testing.T) {
	s := NewStore()
	s.Append(sampleRecord("g1"))
	s.Append(sampleRecord("g2"))
	var buf bytes.Buffer
	if err := s.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	loaded, err := ReadJSON(&buf)
	if err != nil {
		t.Fatalf("ReadJSON: %v", err)
	}
	if loaded.Len() != 2 {
		t.Fatalf("loaded Len = %d", loaded.Len())
	}
	a, _ := s.Get(1)
	b, _ := loaded.Get(1)
	if !reflect.DeepEqual(a, b) {
		t.Errorf("roundtrip mismatch:\n%+v\n%+v", a, b)
	}
}

func TestReadJSONMalformed(t *testing.T) {
	if _, err := ReadJSON(bytes.NewBufferString("{not json")); err == nil {
		t.Error("malformed JSON accepted")
	}
}

func TestConcurrentAppend(t *testing.T) {
	s := NewStore()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				s.Append(sampleRecord("g"))
				s.ByObject("g")
				s.EvidenceUsage()
			}
		}(w)
	}
	wg.Wait()
	if s.Len() != 800 {
		t.Errorf("Len after concurrent appends = %d", s.Len())
	}
	// Sequence numbers are unique and dense.
	seen := make(map[int]bool)
	for i := 0; i < s.Len(); i++ {
		r, ok := s.Get(i)
		if !ok || r.Seq != i || seen[r.Seq] {
			t.Fatalf("bad seq at %d: %+v", i, r)
		}
		seen[r.Seq] = true
	}
}
