// Package kg implements the knowledge-graph modality the paper lists as a
// lake data type and discusses under "Cross-Modal Verification" (Section 5):
// a triple store with subject/predicate/object indexes and entity
// neighborhood extraction for (text, knowledge-graph entity) verification.
package kg

import (
	"sort"
	"strings"
	"sync"

	"repro/internal/textutil"
)

// Triple is a (subject, predicate, object) statement.
type Triple struct {
	Subject   string
	Predicate string
	Object    string
	// SourceID identifies the originating dataset for trust scoring.
	SourceID string
}

// Graph is an in-memory triple store with exact-match indexes on folded
// subject, predicate, and object. It is safe for concurrent use: writes
// take an exclusive lock and queries a shared lock, so triples can keep
// arriving while the graph serves lookups (the live-lake ingestion path).
type Graph struct {
	mu      sync.RWMutex
	triples []Triple
	bySubj  map[string][]int
	byPred  map[string][]int
	byObj   map[string][]int
}

// NewGraph returns an empty graph.
func NewGraph() *Graph {
	return &Graph{
		bySubj: make(map[string][]int),
		byPred: make(map[string][]int),
		byObj:  make(map[string][]int),
	}
}

// Add inserts a triple.
func (g *Graph) Add(t Triple) {
	g.mu.Lock()
	defer g.mu.Unlock()
	i := len(g.triples)
	g.triples = append(g.triples, t)
	g.bySubj[textutil.Fold(t.Subject)] = append(g.bySubj[textutil.Fold(t.Subject)], i)
	g.byPred[textutil.Fold(t.Predicate)] = append(g.byPred[textutil.Fold(t.Predicate)], i)
	g.byObj[textutil.Fold(t.Object)] = append(g.byObj[textutil.Fold(t.Object)], i)
}

// Len returns the number of triples.
func (g *Graph) Len() int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return len(g.triples)
}

// Triples returns a copy of all triples.
func (g *Graph) Triples() []Triple {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return append([]Triple(nil), g.triples...)
}

// About returns every triple whose subject folds equal to entity.
func (g *Graph) About(entity string) []Triple {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.aboutLocked(entity)
}

// aboutLocked is About under a lock already held by the caller.
func (g *Graph) aboutLocked(entity string) []Triple {
	idx := g.bySubj[textutil.Fold(entity)]
	out := make([]Triple, len(idx))
	for i, j := range idx {
		out[i] = g.triples[j]
	}
	return out
}

// Canonical returns the stored first-seen subject casing for entity
// (matched under folding), ok=false when the graph has no triples about it.
// Consumers keying per-entity state (e.g. the indexer's entity instances)
// use this so later triples with variant casing update the same entity.
func (g *Graph) Canonical(entity string) (string, bool) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	idx := g.bySubj[textutil.Fold(entity)]
	if len(idx) == 0 {
		return "", false
	}
	return g.triples[idx[0]].Subject, true
}

// Mentioning returns every triple where entity appears as subject or object.
func (g *Graph) Mentioning(entity string) []Triple {
	g.mu.RLock()
	defer g.mu.RUnlock()
	f := textutil.Fold(entity)
	seen := make(map[int]struct{})
	var idx []int
	for _, j := range g.bySubj[f] {
		if _, ok := seen[j]; !ok {
			seen[j] = struct{}{}
			idx = append(idx, j)
		}
	}
	for _, j := range g.byObj[f] {
		if _, ok := seen[j]; !ok {
			seen[j] = struct{}{}
			idx = append(idx, j)
		}
	}
	sort.Ints(idx)
	out := make([]Triple, len(idx))
	for i, j := range idx {
		out[i] = g.triples[j]
	}
	return out
}

// Lookup returns the objects of triples matching (subject, predicate).
func (g *Graph) Lookup(subject, predicate string) []string {
	g.mu.RLock()
	defer g.mu.RUnlock()
	fs, fp := textutil.Fold(subject), textutil.Fold(predicate)
	var out []string
	for _, j := range g.bySubj[fs] {
		if textutil.Fold(g.triples[j].Predicate) == fp {
			out = append(out, g.triples[j].Object)
		}
	}
	return out
}

// Entities returns the sorted set of all subjects.
func (g *Graph) Entities() []string {
	g.mu.RLock()
	defer g.mu.RUnlock()
	seen := make(map[string]string, len(g.bySubj))
	for _, t := range g.triples {
		f := textutil.Fold(t.Subject)
		if _, ok := seen[f]; !ok {
			seen[f] = t.Subject
		}
	}
	out := make([]string, 0, len(seen))
	for _, orig := range seen {
		out = append(out, orig)
	}
	sort.Strings(out)
	return out
}

// SerializeEntity flattens an entity's neighborhood into a single string for
// content-based indexing ("subject predicate object. ..."), the KG analogue
// of table serialization.
func (g *Graph) SerializeEntity(entity string) string {
	g.mu.RLock()
	defer g.mu.RUnlock()
	ts := g.aboutLocked(entity)
	if len(ts) == 0 {
		return ""
	}
	var b strings.Builder
	for i, t := range ts {
		if i > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(t.Subject)
		b.WriteByte(' ')
		b.WriteString(t.Predicate)
		b.WriteByte(' ')
		b.WriteString(t.Object)
		b.WriteByte('.')
	}
	return b.String()
}

// FromTuple derives triples from a table tuple: one triple per non-key
// attribute, with the key value as subject and the column name as predicate.
// This implements the cross-modal bridge the paper sketches for integrating
// relational data with knowledge graphs.
func FromTuple(caption string, columns, values []string, keyCol int, sourceID string) []Triple {
	if keyCol < 0 || keyCol >= len(columns) || len(columns) != len(values) {
		return nil
	}
	subject := values[keyCol]
	out := make([]Triple, 0, len(columns)-1)
	for i, c := range columns {
		if i == keyCol || values[i] == "" {
			continue
		}
		pred := c
		if caption != "" {
			pred = c + " of " + caption
		}
		out = append(out, Triple{Subject: subject, Predicate: pred, Object: values[i], SourceID: sourceID})
	}
	return out
}
