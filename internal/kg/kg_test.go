package kg

import (
	"reflect"
	"strings"
	"testing"
)

func sampleGraph() *Graph {
	g := NewGraph()
	g.Add(Triple{Subject: "tommy bolt", Predicate: "money of 1954 open", Object: "570", SourceID: "s1"})
	g.Add(Triple{Subject: "tommy bolt", Predicate: "country", Object: "united states", SourceID: "s1"})
	g.Add(Triple{Subject: "ben hogan", Predicate: "money of 1954 open", Object: "570", SourceID: "s2"})
	g.Add(Triple{Subject: "ed furgol", Predicate: "beat", Object: "tommy bolt", SourceID: "s1"})
	return g
}

func TestAddAndLen(t *testing.T) {
	g := sampleGraph()
	if g.Len() != 4 {
		t.Errorf("Len = %d", g.Len())
	}
}

func TestAbout(t *testing.T) {
	g := sampleGraph()
	ts := g.About("Tommy_Bolt") // folded lookup
	if len(ts) != 2 {
		t.Fatalf("About = %d triples", len(ts))
	}
	if ts[0].Predicate != "money of 1954 open" {
		t.Errorf("About order wrong: %+v", ts)
	}
	if got := g.About("nobody"); got != nil && len(got) != 0 {
		t.Errorf("About(nobody) = %v", got)
	}
}

func TestMentioning(t *testing.T) {
	g := sampleGraph()
	ts := g.Mentioning("tommy bolt")
	if len(ts) != 3 { // 2 as subject, 1 as object
		t.Errorf("Mentioning = %d triples, want 3", len(ts))
	}
}

func TestLookup(t *testing.T) {
	g := sampleGraph()
	got := g.Lookup("tommy bolt", "Country")
	if !reflect.DeepEqual(got, []string{"united states"}) {
		t.Errorf("Lookup = %v", got)
	}
	if got := g.Lookup("tommy bolt", "height"); got != nil {
		t.Errorf("Lookup absent = %v", got)
	}
}

func TestEntities(t *testing.T) {
	g := sampleGraph()
	ents := g.Entities()
	want := []string{"ben hogan", "ed furgol", "tommy bolt"}
	if !reflect.DeepEqual(ents, want) {
		t.Errorf("Entities = %v, want %v", ents, want)
	}
}

func TestSerializeEntity(t *testing.T) {
	g := sampleGraph()
	s := g.SerializeEntity("tommy bolt")
	for _, want := range []string{"tommy bolt", "money of 1954 open", "570", "country", "united states"} {
		if !strings.Contains(s, want) {
			t.Errorf("SerializeEntity missing %q in %q", want, s)
		}
	}
	if got := g.SerializeEntity("nobody"); got != "" {
		t.Errorf("SerializeEntity(nobody) = %q", got)
	}
}

func TestFromTuple(t *testing.T) {
	cols := []string{"place", "player", "money"}
	vals := []string{"t6", "tommy bolt", "570"}
	ts := FromTuple("1954 open", cols, vals, 1, "src")
	if len(ts) != 2 {
		t.Fatalf("FromTuple = %d triples, want 2", len(ts))
	}
	if ts[0].Subject != "tommy bolt" || ts[0].Predicate != "place of 1954 open" || ts[0].Object != "t6" {
		t.Errorf("triple 0 = %+v", ts[0])
	}
	if ts[1].Predicate != "money of 1954 open" || ts[1].Object != "570" {
		t.Errorf("triple 1 = %+v", ts[1])
	}
	if ts[0].SourceID != "src" {
		t.Errorf("source = %q", ts[0].SourceID)
	}
}

func TestFromTupleEdgeCases(t *testing.T) {
	if got := FromTuple("c", []string{"a"}, []string{"v"}, -1, "s"); got != nil {
		t.Errorf("bad keyCol = %v", got)
	}
	if got := FromTuple("c", []string{"a", "b"}, []string{"v"}, 0, "s"); got != nil {
		t.Errorf("arity mismatch = %v", got)
	}
	// Empty values are skipped.
	ts := FromTuple("", []string{"k", "x"}, []string{"key", ""}, 0, "s")
	if len(ts) != 0 {
		t.Errorf("empty value produced triples: %v", ts)
	}
	// Without a caption the predicate is the bare column name.
	ts = FromTuple("", []string{"k", "x"}, []string{"key", "val"}, 0, "s")
	if len(ts) != 1 || ts[0].Predicate != "x" {
		t.Errorf("bare predicate = %+v", ts)
	}
}
