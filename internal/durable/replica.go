package durable

import (
	"archive/tar"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/datalake"
	"repro/internal/faultfs"
	"repro/internal/wal"
)

// This file is the durable layer's replication surface: the leader side
// (serving its WAL and shipping its checkpoint for bootstrap) and the
// follower side (applying a replicated change stream through the same
// code path crash recovery uses).

// ErrNoCheckpoint reports a store that has never checkpointed — a
// bootstrapping follower should stream the leader's WAL from version 0
// instead.
var ErrNoCheckpoint = errors.New("durable: no checkpoint")

// ErrReplicaGap reports a replicated stream whose next record skips past
// the version the follower expects — applying it would silently lose the
// gap, so the applier must stop (and resume from its cursor).
var ErrReplicaGap = errors.New("durable: replicated stream has a version gap")

// WAL exposes the store's log for change-feed serving. Consumers use it
// read-only (wal.Log.Tail); appends stay the exclusive business of the
// lake's durability hooks.
func (s *Store) WAL() *wal.Log { return s.log }

// replicateEvents pushes a contiguous run of event records through the
// lake's replication write path and asserts each recommits as its logged
// version — the single apply path shared by crash recovery (context
// "replay") and follower streaming (context "replicate"), so the two can
// never drift in semantics.
func (s *Store) replicateEvents(pending []wal.Record, context string) error {
	items := make([]datalake.BatchItem, len(pending))
	for i, rec := range pending {
		items[i] = datalake.BatchItem{Table: rec.Table, Doc: rec.Doc, Triple: rec.Triple}
	}
	results, err := s.lake.ReplicateBatch(items)
	if err != nil {
		return fmt.Errorf("durable: %s batch: %w", context, err)
	}
	for i, res := range results {
		if res.Err != nil {
			return fmt.Errorf("durable: %s record (version %d): %w", context, pending[i].Version, res.Err)
		}
		if res.Version != pending[i].Version {
			return fmt.Errorf("durable: %s drift: record logged as version %d recommitted as %d", context, pending[i].Version, res.Version)
		}
	}
	return nil
}

// ApplyReplicated applies one ordered batch of change-stream records to a
// follower store. Source records re-register unconditionally (idempotent
// overwrite); event records commit through the lake's replication write
// path with their leader-assigned versions asserted. Event versions at or
// below the lake's committed version are skipped silently — a resumed
// stream may overlap the cursor — and a version beyond committed+1 is
// ErrReplicaGap. With the store Armed, every applied record also lands in
// the follower's own WAL, so a restarted follower recovers its cursor from
// local disk. Returns the number of records applied (skips excluded).
func (s *Store) ApplyReplicated(recs []wal.Record) (int, error) {
	applied := 0
	var pending []wal.Record
	flush := func() error {
		if len(pending) == 0 {
			return nil
		}
		if err := s.replicateEvents(pending, "replicate"); err != nil {
			return err
		}
		applied += len(pending)
		pending = pending[:0]
		return nil
	}
	next := s.lake.CommittedVersion() + 1
	for _, rec := range recs {
		if rec.Kind == wal.KindSource {
			if err := flush(); err != nil {
				return applied, err
			}
			if rec.Source == nil {
				return applied, fmt.Errorf("durable: replicated source record without payload")
			}
			if err := s.lake.ReplicateSource(*rec.Source); err != nil {
				return applied, fmt.Errorf("durable: replicate source %q: %w", rec.Source.ID, err)
			}
			applied++
			continue
		}
		switch {
		case rec.Version < next:
			continue // stream overlap: already committed locally
		case rec.Version > next:
			return applied, fmt.Errorf("%w: have %d, stream jumped to %d", ErrReplicaGap, next-1, rec.Version)
		}
		pending = append(pending, rec)
		next++
		if len(pending) >= replayBatchSize {
			if err := flush(); err != nil {
				return applied, err
			}
		}
	}
	return applied, flush()
}

// WriteCheckpointTar streams the current checkpoint directory as a tar
// archive (paths relative to the checkpoint root) for follower bootstrap.
// Catalog, index shards, and META all ship, so the receiver can
// RestoreCheckpointTar and Open. The walk holds the swap guard shared: a
// checkpoint finishing mid-stream waits to promote rather than renaming
// the directory out from under the stream. Checkpoint contents are
// immutable once promoted, so the files themselves never change under us.
func (s *Store) WriteCheckpointTar(w io.Writer) error {
	s.swapMu.RLock()
	defer s.swapMu.RUnlock()
	dir := s.checkpointDir()
	meta, err := readCheckpointMeta(s.fs, dir)
	if err != nil {
		return err
	}
	if meta == nil {
		return ErrNoCheckpoint
	}
	tw := tar.NewWriter(w)
	if err := s.tarDir(tw, dir, ""); err != nil {
		return err
	}
	return tw.Close()
}

// tarDir recursively writes dir's entries under the archive prefix rel.
func (s *Store) tarDir(tw *tar.Writer, dir, rel string) error {
	entries, err := s.fs.ReadDir(dir)
	if err != nil {
		return fmt.Errorf("durable: tar checkpoint: %w", err)
	}
	for _, e := range entries {
		name := e.Name()
		path := filepath.Join(dir, name)
		arch := name
		if rel != "" {
			arch = rel + "/" + name
		}
		if e.IsDir() {
			if err := tw.WriteHeader(&tar.Header{Name: arch + "/", Typeflag: tar.TypeDir, Mode: 0o755}); err != nil {
				return err
			}
			if err := s.tarDir(tw, path, arch); err != nil {
				return err
			}
			continue
		}
		data, err := s.fs.ReadFile(path)
		if err != nil {
			return fmt.Errorf("durable: tar checkpoint read %s: %w", arch, err)
		}
		if err := tw.WriteHeader(&tar.Header{Name: arch, Typeflag: tar.TypeReg, Mode: 0o644, Size: int64(len(data))}); err != nil {
			return err
		}
		if _, err := tw.Write(data); err != nil {
			return err
		}
	}
	return nil
}

// HasCheckpoint reports whether dir holds a recoverable checkpoint
// (current, or a .old left by an interrupted swap) without opening the
// store. OpenFollower uses it to decide between bootstrapping from the
// leader and resuming from local state.
func HasCheckpoint(dir string) (bool, error) {
	cur := filepath.Join(dir, "checkpoint")
	for _, d := range []string{cur, cur + ".old"} {
		meta, err := readCheckpointMeta(faultfs.OS, d)
		if err != nil {
			return false, err
		}
		if meta != nil {
			return true, nil
		}
	}
	return false, nil
}

// RestoreCheckpointTar bootstraps a data directory from a leader's
// checkpoint tar: the archive unpacks into checkpoint.boot, the tree is
// fsynced, and a rename promotes it — a crash mid-restore leaves no
// half-valid checkpoint, just a stale .boot the next restore clears. It
// refuses a directory that already has a checkpoint: bootstrap is for
// empty followers, and silently overwriting local durable state would be
// data loss.
func RestoreCheckpointTar(dir string, r io.Reader) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("durable: mkdir: %w", err)
	}
	if has, err := HasCheckpoint(dir); err != nil {
		return err
	} else if has {
		return fmt.Errorf("durable: %s already holds a checkpoint; refusing to overwrite it with a bootstrap", dir)
	}
	cur := filepath.Join(dir, "checkpoint")
	boot := cur + ".boot"
	if err := os.RemoveAll(boot); err != nil {
		return fmt.Errorf("durable: clear checkpoint.boot: %w", err)
	}
	tr := tar.NewReader(r)
	for {
		hdr, err := tr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return fmt.Errorf("durable: read checkpoint tar: %w", err)
		}
		name := filepath.Clean(filepath.FromSlash(hdr.Name))
		if name == "." {
			continue
		}
		if filepath.IsAbs(name) || name == ".." || strings.HasPrefix(name, ".."+string(filepath.Separator)) {
			return fmt.Errorf("durable: checkpoint tar entry escapes root: %q", hdr.Name)
		}
		dst := filepath.Join(boot, name)
		switch hdr.Typeflag {
		case tar.TypeDir:
			if err := os.MkdirAll(dst, 0o755); err != nil {
				return fmt.Errorf("durable: restore mkdir %s: %w", name, err)
			}
		case tar.TypeReg:
			if err := os.MkdirAll(filepath.Dir(dst), 0o755); err != nil {
				return fmt.Errorf("durable: restore mkdir for %s: %w", name, err)
			}
			f, err := os.OpenFile(dst, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
			if err != nil {
				return fmt.Errorf("durable: restore create %s: %w", name, err)
			}
			_, cerr := io.Copy(f, tr) // tar.Reader bounds the copy to hdr.Size
			if err := f.Close(); cerr == nil {
				cerr = err
			}
			if cerr != nil {
				return fmt.Errorf("durable: restore write %s: %w", name, cerr)
			}
		default:
			return fmt.Errorf("durable: checkpoint tar entry %q has unsupported type %d", hdr.Name, hdr.Typeflag)
		}
	}
	if meta, err := readCheckpointMeta(faultfs.OS, boot); err != nil {
		return err
	} else if meta == nil {
		return fmt.Errorf("durable: checkpoint tar carries no %s", metaFile)
	}
	if err := syncTree(faultfs.OS, boot); err != nil {
		return fmt.Errorf("durable: sync restored checkpoint: %w", err)
	}
	if err := os.Rename(boot, cur); err != nil {
		return fmt.Errorf("durable: promote restored checkpoint: %w", err)
	}
	if err := syncDir(faultfs.OS, dir); err != nil {
		return fmt.Errorf("durable: sync data dir: %w", err)
	}
	return nil
}
