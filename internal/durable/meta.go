package durable

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
)

// readCheckpointMeta returns the checkpoint metadata under dir, nil when
// the directory (or its meta file) is absent or unreadable — an absent or
// half-written checkpoint is "no checkpoint", not an error; only an
// unreadable filesystem is.
func readCheckpointMeta(dir string) (*checkpointMeta, error) {
	data, err := os.ReadFile(filepath.Join(dir, metaFile))
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("durable: read checkpoint meta: %w", err)
	}
	var meta checkpointMeta
	if err := json.Unmarshal(data, &meta); err != nil {
		// A torn meta write means the checkpoint never completed; the WAL
		// still has everything since the previous one.
		return nil, nil
	}
	return &meta, nil
}

// writeCheckpointMeta writes the validity marker last: a checkpoint
// directory is only real once its meta file parses.
func writeCheckpointMeta(dir string, meta checkpointMeta) error {
	data, err := json.MarshalIndent(&meta, "", "  ")
	if err != nil {
		return fmt.Errorf("durable: marshal checkpoint meta: %w", err)
	}
	if err := os.WriteFile(filepath.Join(dir, metaFile), data, 0o644); err != nil {
		return fmt.Errorf("durable: write checkpoint meta: %w", err)
	}
	return nil
}

// syncTree fsyncs every file and directory under root (root included), so
// a completed checkpoint survives power loss, not just process death.
func syncTree(root string) error {
	return filepath.Walk(root, func(path string, _ os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		return syncDir(path)
	})
}

// syncDir fsyncs one file or directory by path. Directory fsync persists
// the entries (renames, creates) inside it.
func syncDir(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	serr := f.Sync()
	if cerr := f.Close(); serr == nil {
		serr = cerr
	}
	return serr
}
