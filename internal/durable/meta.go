package durable

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/faultfs"
)

// readCheckpointMeta returns the checkpoint metadata under dir, nil when
// the directory (or its meta file) is absent or unreadable — an absent or
// half-written checkpoint is "no checkpoint", not an error; only an
// unreadable filesystem is.
func readCheckpointMeta(fs faultfs.FS, dir string) (*checkpointMeta, error) {
	data, err := fs.ReadFile(filepath.Join(dir, metaFile))
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("durable: read checkpoint meta: %w", err)
	}
	var meta checkpointMeta
	if err := json.Unmarshal(data, &meta); err != nil {
		// A torn meta write means the checkpoint never completed; the WAL
		// still has everything since the previous one.
		return nil, nil
	}
	return &meta, nil
}

// writeCheckpointMeta writes the validity marker last: a checkpoint
// directory is only real once its meta file parses.
func writeCheckpointMeta(fs faultfs.FS, dir string, meta checkpointMeta) error {
	data, err := json.MarshalIndent(&meta, "", "  ")
	if err != nil {
		return fmt.Errorf("durable: marshal checkpoint meta: %w", err)
	}
	if err := fs.WriteFile(filepath.Join(dir, metaFile), data, 0o644); err != nil {
		return fmt.Errorf("durable: write checkpoint meta: %w", err)
	}
	return nil
}

// syncTree fsyncs every file and directory under root (root included), so
// a completed checkpoint survives power loss, not just process death.
func syncTree(fs faultfs.FS, root string) error {
	if err := syncDir(fs, root); err != nil {
		return err
	}
	entries, err := fs.ReadDir(root)
	if err != nil {
		return err
	}
	for _, e := range entries {
		path := filepath.Join(root, e.Name())
		if e.IsDir() {
			if err := syncTree(fs, path); err != nil {
				return err
			}
			continue
		}
		if err := syncDir(fs, path); err != nil {
			return err
		}
	}
	return nil
}

// syncDir fsyncs one file or directory by path. Directory fsync persists
// the entries (renames, creates) inside it.
func syncDir(fs faultfs.FS, path string) error {
	f, err := fs.Open(path)
	if err != nil {
		return err
	}
	serr := f.Sync()
	if cerr := f.Close(); serr == nil {
		serr = cerr
	}
	return serr
}
