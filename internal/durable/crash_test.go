package durable

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"testing"

	"repro/internal/datalake"
	"repro/internal/doc"
	"repro/internal/faultfs"
	"repro/internal/kg"
	"repro/internal/lakeio"
	"repro/internal/table"
	"repro/internal/wal"
)

// The crash-consistency suite: run a deterministic ingest → checkpoint →
// ingest workload over a fault-injecting filesystem that kills the
// process at an exact write/rename/fsync operation, then recover the
// directory with a clean filesystem and assert the two invariants the
// durability protocol promises at EVERY kill point:
//
//  1. no lost acknowledged write — every mutation whose ingest call
//     returned nil before the crash is present after recovery;
//  2. prefix consistency — the recovered lake is exactly the first K
//     mutations of the workload for some K >= the acknowledged count
//     (a crash may persist a write it never acknowledged, but can never
//     skip one or reorder them), with Version() == K.
//
// The exhaustive sweep kills at operation 1, 2, 3, ... until the workload
// completes without reaching the kill point, so every fault site the
// protocol has — WAL appends and fsyncs, segment creates and rotations,
// checkpoint META writes, tree syncs, the two swap renames, segment
// truncations — is exercised, with every third point tearing the write at
// the kill instead of dropping it. The randomized variant throws random
// kill points (and torn-ness) at a longer mixed-modality workload with
// two checkpoints.

// crashMutation is one workload step plus its recovery predicate.
type crashMutation struct {
	ingest func(l *datalake.Lake) error
	check  func(l *datalake.Lake) bool
}

// docMutation builds a document ingest step.
func docMutation(seq int) crashMutation {
	id := fmt.Sprintf("doc-%04d", seq)
	return crashMutation{
		ingest: func(l *datalake.Lake) error {
			return l.AddDocument(&doc.Document{ID: id, Title: "t", Text: fmt.Sprintf("body of %s", id)})
		},
		check: func(l *datalake.Lake) bool { _, ok := l.Document(id); return ok },
	}
}

// tableMutation builds a table ingest step.
func tableMutation(seq int) crashMutation {
	id := fmt.Sprintf("tbl-%04d", seq)
	return crashMutation{
		ingest: func(l *datalake.Lake) error {
			tb := table.New(id, "caption "+id, []string{"a", "b"})
			tb.MustAppendRow(fmt.Sprintf("%d", seq), "x")
			return l.AddTable(tb)
		},
		check: func(l *datalake.Lake) bool { _, ok := l.Table(id); return ok },
	}
}

// tripleMutation builds a knowledge-graph ingest step.
func tripleMutation(seq int) crashMutation {
	subj := fmt.Sprintf("ent-%04d", seq)
	obj := fmt.Sprintf("obj-%04d", seq)
	return crashMutation{
		ingest: func(l *datalake.Lake) error {
			return l.AddTriple(kg.Triple{Subject: subj, Predicate: "linked to", Object: obj})
		},
		check: func(l *datalake.Lake) bool {
			got := l.Graph().Lookup(subj, "linked to")
			return len(got) == 1 && got[0] == obj
		},
	}
}

// docWorkload is the exhaustive sweep's workload: documents only, so the
// operation sequence is fully deterministic run to run.
func docWorkload(n int) []crashMutation {
	muts := make([]crashMutation, n)
	for i := range muts {
		muts[i] = docMutation(i)
	}
	return muts
}

// mixedWorkload interleaves all three modalities deterministically.
func mixedWorkload(n int) []crashMutation {
	muts := make([]crashMutation, n)
	for i := range muts {
		switch i % 3 {
		case 0:
			muts[i] = docMutation(i)
		case 1:
			muts[i] = tableMutation(i)
		default:
			muts[i] = tripleMutation(i)
		}
	}
	return muts
}

// runCrashAttempt executes the workload against dir through ffs,
// checkpointing (with nil index freeze) after each index in ckptAfter,
// and returns how many mutations were acknowledged and whether the source
// registration was. Any failure after the kill point is expected; a
// failure with the filesystem healthy is a real bug and fails the test.
func runCrashAttempt(t *testing.T, dir string, ffs *faultfs.Faulty, muts []crashMutation, ckptAfter map[int]bool) (acked int, srcAcked bool) {
	t.Helper()
	bail := func(stage string, err error) {
		if !ffs.Crashed() {
			t.Fatalf("%s failed without a crash: %v", stage, err)
		}
	}
	st, err := Open(dir, Options{Sync: wal.SyncAlways, SegmentBytes: 2048, FS: ffs})
	if err != nil {
		bail("Open", err)
		return 0, false
	}
	defer func() {
		st.Lake().Close()
		st.Close()
	}()
	if err := st.ReplayTail(); err != nil {
		bail("ReplayTail", err)
		return 0, false
	}
	st.Arm()
	if err := st.Lake().AddSource(datalake.Source{ID: "src", Name: "crash suite", TrustPrior: 0.7}); err != nil {
		bail("AddSource", err)
		return 0, false
	}
	srcAcked = true
	for i, m := range muts {
		if ckptAfter[i] {
			if _, err := st.Checkpoint(nil); err != nil {
				bail("Checkpoint", err)
				// A failed checkpoint loses nothing; keep ingesting (the
				// attempts fail fast once the log is poisoned).
			}
		}
		if err := m.ingest(st.Lake()); err != nil {
			bail("ingest", err)
			return acked, srcAcked
		}
		acked = i + 1
	}
	return acked, srcAcked
}

// verifyCrashRecovery recovers dir with a healthy filesystem and asserts
// the two invariants.
func verifyCrashRecovery(t *testing.T, dir string, kill int64, muts []crashMutation, acked int, srcAcked bool) {
	t.Helper()
	st, err := Open(dir, Options{Sync: wal.SyncNone})
	if err != nil {
		t.Fatalf("kill %d: recovery Open failed: %v", kill, err)
	}
	defer func() {
		st.Lake().Close()
		st.Close()
	}()
	if err := st.ReplayTail(); err != nil {
		t.Fatalf("kill %d: recovery ReplayTail failed: %v", kill, err)
	}
	lake := st.Lake()
	k := lake.Version()
	if k < uint64(acked) {
		t.Fatalf("kill %d: recovered version %d < %d acknowledged writes (lost acks)", kill, k, acked)
	}
	if k > uint64(len(muts)) {
		t.Fatalf("kill %d: recovered version %d > %d attempted writes", kill, k, len(muts))
	}
	for i, m := range muts {
		present := m.check(lake)
		if uint64(i) < k && !present {
			t.Fatalf("kill %d: recovered at version %d but mutation %d is missing (hole in the prefix)", kill, k, i)
		}
		if uint64(i) >= k && present {
			t.Fatalf("kill %d: recovered at version %d but mutation %d is present (version understates state)", kill, k, i)
		}
	}
	if srcAcked {
		if _, ok := lake.Source("src"); !ok {
			t.Fatalf("kill %d: acknowledged source registration lost", kill)
		}
	}
	// The recovered store must accept writes at the right next version.
	st.Arm()
	v, err := lake.AddDocumentVersioned(&doc.Document{ID: "post-recovery", Text: "x"})
	if err != nil {
		t.Fatalf("kill %d: post-recovery ingest failed: %v", kill, err)
	}
	if v != k+1 {
		t.Fatalf("kill %d: post-recovery version %d, want %d", kill, v, k+1)
	}
}

// TestCrashConsistencyKillPoints sweeps the kill point across every
// mutating filesystem operation of an ingest → checkpoint → ingest
// workload (torn writes every third point), asserting recovery at each.
func TestCrashConsistencyKillPoints(t *testing.T) {
	muts := docWorkload(60)
	ckptAfter := map[int]bool{30: true}
	points := 0
	for kill := int64(1); ; kill++ {
		dir := t.TempDir()
		ffs := faultfs.New(nil)
		ffs.CrashAt(kill, kill%3 == 0)
		acked, srcAcked := runCrashAttempt(t, dir, ffs, muts, ckptAfter)
		if !ffs.Crashed() {
			// The workload ran out of operations before the kill point:
			// every fault site has been exercised.
			if acked != len(muts) {
				t.Fatalf("healthy run acknowledged %d/%d writes", acked, len(muts))
			}
			break
		}
		points++
		verifyCrashRecovery(t, dir, kill, muts, acked, srcAcked)
	}
	if points < 100 {
		t.Errorf("exercised %d crash points, want >= 100 (workload too small to cover the protocol)", points)
	}
	t.Logf("verified recovery at %d distinct crash points", points)
}

// pinSchedule is the deterministic pin workload for the snapshot-manifest
// crash sweep: ingest docs one at a time, persist a pin every pinEvery
// docs, and drop the oldest acked pin at each index in dropAt.
const pinWorkloadDocs = 24

// runPinCrashAttempt drives the pin workload over ffs: it returns the doc
// count acked, the pins whose PersistPin returned nil and were not
// acked-dropped, and the pins whose DropPin returned nil. Failures are
// tolerated only after the injected crash.
func runPinCrashAttempt(t *testing.T, dir string, ffs *faultfs.Faulty) (ackedDocs int, ackedPins, droppedPins []uint64) {
	t.Helper()
	bail := func(stage string, err error) {
		if !ffs.Crashed() {
			t.Fatalf("%s failed without a crash: %v", stage, err)
		}
	}
	st, err := Open(dir, Options{Sync: wal.SyncAlways, SegmentBytes: 2048, FS: ffs})
	if err != nil {
		bail("Open", err)
		return
	}
	defer func() {
		st.Lake().Close()
		st.Close()
	}()
	if err := st.ReplayTail(); err != nil {
		bail("ReplayTail", err)
		return
	}
	st.Arm()
	for i := 0; i < pinWorkloadDocs; i++ {
		m := docMutation(i)
		if err := m.ingest(st.Lake()); err != nil {
			bail("ingest", err)
			return
		}
		ackedDocs = i + 1
		if ackedDocs%4 == 0 {
			view, err := st.Lake().Fork(nil)
			if err != nil {
				bail("Fork", err)
				return
			}
			trust := map[string]float64{"src": 0.25}
			if err := st.PersistPin(view, nil, trust); err != nil {
				bail("PersistPin", err)
				return
			}
			ackedPins = append(ackedPins, view.Version())
		}
		if (i == 9 || i == 19) && len(ackedPins) > 0 {
			v := ackedPins[0]
			// Once DropPin is in flight the pin's fate is indeterminate (the
			// manifest rewrite may land before the crash), so it leaves the
			// acked set either way; only an acknowledged drop must stick.
			ackedPins = ackedPins[1:]
			if err := st.DropPin(v); err != nil {
				bail("DropPin", err)
				return
			}
			droppedPins = append(droppedPins, v)
		}
	}
	return
}

// verifyPinCrashRecovery recovers dir with a healthy filesystem and
// asserts the snapshot-manifest invariants at this kill point: the
// manifest is old-or-new, never torn (RecoverPins decodes it), every
// acknowledged still-held pin survives with a loadable catalog carrying
// exactly its version's doc prefix and its trust map, every acknowledged
// drop stays dropped, and unmanifested pin directories are swept.
func verifyPinCrashRecovery(t *testing.T, dir string, kill int64, ackedPins, droppedPins []uint64) {
	t.Helper()
	st, err := Open(dir, Options{Sync: wal.SyncNone})
	if err != nil {
		t.Fatalf("kill %d: recovery Open failed: %v", kill, err)
	}
	defer func() {
		st.Lake().Close()
		st.Close()
	}()
	recovered, err := st.RecoverPins()
	if err != nil {
		t.Fatalf("kill %d: RecoverPins failed (torn manifest?): %v", kill, err)
	}
	byVersion := make(map[uint64]RecoveredPin, len(recovered))
	for _, p := range recovered {
		byVersion[p.Version] = p
	}
	for _, v := range ackedPins {
		if _, ok := byVersion[v]; !ok {
			t.Fatalf("kill %d: acknowledged pin %d lost from the manifest", kill, v)
		}
	}
	for _, v := range droppedPins {
		if _, ok := byVersion[v]; ok {
			t.Fatalf("kill %d: acknowledged drop of pin %d resurrected", kill, v)
		}
	}
	// Every manifested pin — acknowledged or landed-but-unacked — must be
	// one the workload actually attempted (a multiple of 4) and must
	// resolve completely: trust map intact, catalog loadable, carrying
	// exactly the doc prefix of its version.
	for v, p := range byVersion {
		if v == 0 || v%4 != 0 || v > pinWorkloadDocs {
			t.Fatalf("kill %d: recovered pin at never-attempted version %d", kill, v)
		}
		if p.Trust["src"] != 0.25 {
			t.Fatalf("kill %d: pin %d recovered trust %v, want src=0.25", kill, v, p.Trust)
		}
		pinLake, err := lakeio.Load(p.Dir)
		if err != nil {
			t.Fatalf("kill %d: pin %d catalog unloadable: %v", kill, v, err)
		}
		for i := 0; i < pinWorkloadDocs; i++ {
			_, present := pinLake.Document(fmt.Sprintf("doc-%04d", i))
			if want := uint64(i) < v; present != want {
				t.Fatalf("kill %d: pin %d catalog doc %d present=%v, want %v", kill, v, i, present, want)
			}
		}
		pinLake.Close()
	}
	// RecoverPins swept everything the manifest does not list: only
	// manifested pin directories remain on disk.
	entries, err := os.ReadDir(st.SnapshotsDir())
	if err != nil && !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("kill %d: read snapshots dir: %v", kill, err)
	}
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		v, err := strconv.ParseUint(e.Name(), 10, 64)
		if err != nil {
			t.Fatalf("kill %d: unswept non-pin directory %q", kill, e.Name())
		}
		if _, ok := byVersion[v]; !ok {
			t.Fatalf("kill %d: unswept orphan pin directory %q", kill, e.Name())
		}
	}
}

// TestCrashConsistencyPinKillPoints sweeps the kill point across every
// mutating filesystem operation of the ingest → pin → drop workload
// (torn writes every third point): at each, recovery must see the old or
// the new manifest — never a torn one — with every acknowledged pin
// resolvable and every orphan directory swept.
func TestCrashConsistencyPinKillPoints(t *testing.T) {
	points := 0
	for kill := int64(1); ; kill++ {
		dir := t.TempDir()
		ffs := faultfs.New(nil)
		ffs.CrashAt(kill, kill%3 == 0)
		ackedDocs, ackedPins, droppedPins := runPinCrashAttempt(t, dir, ffs)
		if !ffs.Crashed() {
			if ackedDocs != pinWorkloadDocs {
				t.Fatalf("healthy run acknowledged %d/%d writes", ackedDocs, pinWorkloadDocs)
			}
			break
		}
		points++
		verifyPinCrashRecovery(t, dir, kill, ackedPins, droppedPins)
	}
	if points < 100 {
		t.Errorf("exercised %d crash points, want >= 100 (workload too small to cover the pin protocol)", points)
	}
	t.Logf("verified pin recovery at %d distinct crash points", points)
}

// TestCrashConsistencyRandomized throws random kill points (random
// torn-ness) at a longer mixed-modality workload with two checkpoints.
func TestCrashConsistencyRandomized(t *testing.T) {
	muts := mixedWorkload(90)
	ckptAfter := map[int]bool{25: true, 70: true}

	// Dry run to learn the healthy operation count.
	probe := faultfs.New(nil)
	if acked, _ := runCrashAttempt(t, t.TempDir(), probe, muts, ckptAfter); acked != len(muts) {
		t.Fatalf("dry run acknowledged %d/%d writes", acked, len(muts))
	}
	total := probe.Ops()
	if total < 100 {
		t.Fatalf("workload produced only %d mutating ops", total)
	}

	rng := rand.New(rand.NewSource(7))
	attempts := 30
	if testing.Short() {
		attempts = 8
	}
	for i := 0; i < attempts; i++ {
		kill := 1 + rng.Int63n(total)
		torn := rng.Intn(2) == 0
		dir := t.TempDir()
		ffs := faultfs.New(nil)
		ffs.CrashAt(kill, torn)
		acked, srcAcked := runCrashAttempt(t, dir, ffs, muts, ckptAfter)
		if !ffs.Crashed() {
			t.Fatalf("kill %d <= %d ops never hit", kill, total)
		}
		verifyCrashRecovery(t, dir, kill, muts, acked, srcAcked)
	}
}
