package durable

import (
	"encoding/json"
	"reflect"
	"testing"
)

// FuzzSnapshotManifestDecode fuzzes the snapshot-manifest validator with
// arbitrary bytes — exactly what recovery reads after a crash, a partial
// disk restore, or operator meddling under <dir>/snapshots. Invariants:
// no panic on any input; acceptance implies the validated shape (format
// 1, strictly ascending non-zero versions, trust in [0,1]); and an
// accepted manifest round-trips losslessly through the same marshaling
// writeSnapshotManifest uses, so persist → recover is a fixed point.
func FuzzSnapshotManifestDecode(f *testing.F) {
	f.Add([]byte(`{"format":1,"pins":[]}`))
	f.Add([]byte(`{"format":1,"pins":[{"version":4,"created_unix":1700000000,"trust":{"src":0.25}}]}`))
	f.Add([]byte(`{"format":1,"pins":[{"version":4},{"version":8},{"version":12}]}`))
	f.Add([]byte(`{"format":2,"pins":[]}`))                                 // future format
	f.Add([]byte(`{"format":1,"pins":[{"version":0}]}`))                    // zero version
	f.Add([]byte(`{"format":1,"pins":[{"version":8},{"version":4}]}`))      // descending
	f.Add([]byte(`{"format":1,"pins":[{"version":4},{"version":4}]}`))      // duplicate
	f.Add([]byte(`{"format":1,"pins":[{"version":4,"trust":{"s":1.5}}]}`))  // trust out of range
	f.Add([]byte(`{"format":1,"pins":[{"version":4,"trust":{"s":-0.1}}]}`)) // negative trust
	f.Add([]byte(`{"format":1,"pins":[{"version":4,"created_unix":-1}]}`))  // odd but legal time
	f.Add([]byte(`{"format":1,"pins":[{"version":18446744073709551615}]}`)) // max uint64
	f.Add([]byte(`{"format":1`))                                            // torn mid-object
	f.Add([]byte(`[]`))                                                     // wrong top-level shape
	f.Add([]byte(``))                                                       // empty file
	f.Add([]byte(`{"format":1,"pins":null}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := decodeSnapshotManifest(data)
		if err != nil {
			return
		}
		if m.Format != 1 {
			t.Fatalf("accepted manifest with format %d", m.Format)
		}
		var prev uint64
		for _, p := range m.Pins {
			if p.Version == 0 || p.Version <= prev {
				t.Fatalf("accepted manifest with non-ascending versions: %v", m.Pins)
			}
			prev = p.Version
			for src, tr := range p.Trust {
				if !(tr >= 0 && tr <= 1) { // also rejects NaN
					t.Fatalf("accepted trust %g for %q", tr, src)
				}
			}
		}
		// Round trip through the writer's encoding: what PersistPin writes,
		// recovery must read back identically. Empty trust maps normalize to
		// nil first — omitempty drops them on the write side.
		for i := range m.Pins {
			if len(m.Pins[i].Trust) == 0 {
				m.Pins[i].Trust = nil
			}
		}
		out, err := json.MarshalIndent(m, "", "  ")
		if err != nil {
			t.Fatalf("re-encode accepted manifest: %v", err)
		}
		m2, err := decodeSnapshotManifest(out)
		if err != nil {
			t.Fatalf("re-decode of accepted manifest rejected: %v", err)
		}
		if !reflect.DeepEqual(m, m2) {
			t.Fatalf("manifest round trip drifted:\n  in  %+v\n  out %+v", m, m2)
		}
	})
}
