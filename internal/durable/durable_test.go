package durable

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/datalake"
	"repro/internal/doc"
	"repro/internal/kg"
	"repro/internal/table"
	"repro/internal/wal"
)

// openStore opens dir and runs the full recovery sequence (no indexer in
// these tests; the datalake alone is under test).
func openStore(t *testing.T, dir string, opts Options) *Store {
	t.Helper()
	st, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.ReplayTail(); err != nil {
		t.Fatal(err)
	}
	st.Arm()
	return st
}

func mustIngest(t *testing.T, lake *datalake.Lake, n int, prefix string) {
	t.Helper()
	for i := 0; i < n; i++ {
		if err := lake.AddDocument(&doc.Document{ID: fmt.Sprintf("%s%03d", prefix, i), Title: "t", Text: "body " + prefix}); err != nil {
			t.Fatal(err)
		}
	}
}

// TestRecoverWithoutCheckpoint kills (abandons) a store before any
// checkpoint and recovers everything from the WAL alone.
func TestRecoverWithoutCheckpoint(t *testing.T) {
	dir := t.TempDir()
	st := openStore(t, dir, Options{Sync: wal.SyncNone})
	lake := st.Lake()
	if err := lake.AddSource(datalake.Source{ID: "src", Name: "a source", TrustPrior: 0.8}); err != nil {
		t.Fatal(err)
	}
	tbl := table.New("t1", "caption", []string{"a", "b"})
	tbl.MustAppendRow("1", "2")
	tbl.SourceID = "src"
	if err := lake.AddTable(tbl); err != nil {
		t.Fatal(err)
	}
	mustIngest(t, lake, 10, "d")
	if err := lake.AddTriple(kg.Triple{Subject: "s", Predicate: "p", Object: "o", SourceID: "src"}); err != nil {
		t.Fatal(err)
	}
	wantVersion := lake.Version()
	// Simulate a kill: flush the page-cache writes but never checkpoint or
	// close cleanly.
	if err := st.Sync(); err != nil {
		t.Fatal(err)
	}

	copyDir(t, dir, dir+"-crash")
	st2 := openStore(t, dir+"-crash", Options{Sync: wal.SyncNone})
	defer func() { st2.Lake().Close(); st2.Close() }()
	lake2 := st2.Lake()
	if v := lake2.Version(); v != wantVersion {
		t.Fatalf("recovered version = %d, want %d", v, wantVersion)
	}
	if _, ok := lake2.Table("t1"); !ok {
		t.Error("recovered lake lost table t1")
	}
	if _, ok := lake2.Document("d007"); !ok {
		t.Error("recovered lake lost doc d007")
	}
	if got := lake2.Graph().Lookup("s", "p"); len(got) != 1 || got[0] != "o" {
		t.Errorf("recovered graph lookup = %v", got)
	}
	if src, ok := lake2.Source("src"); !ok || src.TrustPrior != 0.8 {
		t.Errorf("recovered source = %+v, %v", src, ok)
	}
	if st2.Stats().ReplayedRecords != 13 {
		t.Errorf("replayed %d records, want 13", st2.Stats().ReplayedRecords)
	}

	// The recovered store keeps accepting and logging writes at the right
	// versions.
	v, err := lake2.AddDocumentVersioned(&doc.Document{ID: "post", Text: "x"})
	if err != nil {
		t.Fatal(err)
	}
	if v != wantVersion+1 {
		t.Fatalf("post-recovery version = %d, want %d", v, wantVersion+1)
	}
}

// TestCheckpointTruncatesAndRecovers checkpoints mid-stream and checks the
// WAL shrinks while recovery still sees everything (checkpoint + tail).
func TestCheckpointTruncatesAndRecovers(t *testing.T) {
	dir := t.TempDir()
	// Tiny segments so pre-checkpoint records live in sealed segments.
	st := openStore(t, dir, Options{Sync: wal.SyncNone, SegmentBytes: 256})
	lake := st.Lake()
	if err := lake.AddSource(datalake.Source{ID: "src", Name: "s"}); err != nil {
		t.Fatal(err)
	}
	mustIngest(t, lake, 8, "pre")

	ckptV, err := st.Checkpoint(nil)
	if err != nil {
		t.Fatal(err)
	}
	if ckptV != 8 {
		t.Fatalf("checkpoint version = %d, want 8", ckptV)
	}
	if recs := st.Stats().WALRecords; recs != 0 {
		t.Fatalf("WAL still holds %d records after checkpoint", recs)
	}

	mustIngest(t, lake, 5, "post")
	if err := st.Sync(); err != nil {
		t.Fatal(err)
	}

	copyDir(t, dir, dir+"-crash")
	st2 := openStore(t, dir+"-crash", Options{Sync: wal.SyncNone})
	defer func() { st2.Lake().Close(); st2.Close() }()
	lake2 := st2.Lake()
	if v := lake2.Version(); v != 13 {
		t.Fatalf("recovered version = %d, want 13", v)
	}
	for _, id := range []string{"pre003", "post004"} {
		if _, ok := lake2.Document(id); !ok {
			t.Errorf("recovered lake lost %s", id)
		}
	}
	if st2.Stats().CheckpointVersion != 8 {
		t.Errorf("recovered checkpoint version = %d, want 8", st2.Stats().CheckpointVersion)
	}
	if st2.Stats().ReplayedRecords != 5 {
		t.Errorf("replayed %d records, want 5 (the tail)", st2.Stats().ReplayedRecords)
	}
}

// TestTornTailDropped cuts the last WAL record short (a crash mid-append)
// and checks recovery drops exactly that unacknowledged record.
func TestTornTailDropped(t *testing.T) {
	dir := t.TempDir()
	st := openStore(t, dir, Options{Sync: wal.SyncNone})
	mustIngest(t, st.Lake(), 5, "d")
	if err := st.Sync(); err != nil {
		t.Fatal(err)
	}

	crash := dir + "-crash"
	copyDir(t, dir, crash)
	// Chop bytes off the single WAL segment.
	segs, err := filepath.Glob(filepath.Join(crash, "wal", "wal-*.log"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no wal segments: %v", err)
	}
	seg := segs[len(segs)-1]
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(seg, data[:len(data)-7], 0o644); err != nil {
		t.Fatal(err)
	}

	st2 := openStore(t, crash, Options{Sync: wal.SyncNone})
	defer func() { st2.Lake().Close(); st2.Close() }()
	if v := st2.Lake().Version(); v != 4 {
		t.Fatalf("recovered version = %d, want 4 (torn record dropped)", v)
	}
	if _, ok := st2.Lake().Document("d004"); ok {
		t.Error("torn record's document resurfaced")
	}
	if st2.Stats().WALTornBytes == 0 {
		t.Error("WALTornBytes = 0, want > 0")
	}
}

// TestCorruptMiddleFailsRecovery flips a byte mid-log: recovery must fail
// loudly rather than silently skip an acknowledged write.
func TestCorruptMiddleFailsRecovery(t *testing.T) {
	dir := t.TempDir()
	st := openStore(t, dir, Options{Sync: wal.SyncNone})
	mustIngest(t, st.Lake(), 5, "d")
	if err := st.Sync(); err != nil {
		t.Fatal(err)
	}
	st.Lake().Close()
	st.Close()

	segs, _ := filepath.Glob(filepath.Join(dir, "wal", "wal-*.log"))
	data, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/3] ^= 0xff
	if err := os.WriteFile(segs[0], data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{Sync: wal.SyncNone}); err == nil {
		t.Fatal("Open succeeded over mid-log corruption")
	} else if !strings.Contains(err.Error(), "CRC") {
		t.Fatalf("error does not mention CRC: %v", err)
	}
}

// TestInterruptedCheckpointSwap simulates the crash windows of the
// checkpoint swap and checks resolveCheckpoint repairs both.
func TestInterruptedCheckpointSwap(t *testing.T) {
	dir := t.TempDir()
	st := openStore(t, dir, Options{Sync: wal.SyncNone})
	mustIngest(t, st.Lake(), 3, "d")
	if _, err := st.Checkpoint(nil); err != nil {
		t.Fatal(err)
	}
	mustIngest(t, st.Lake(), 2, "post")
	if err := st.Sync(); err != nil {
		t.Fatal(err)
	}

	// Crash window 1: old checkpoint moved away, new one not yet in place.
	crash1 := dir + "-w1"
	copyDir(t, dir, crash1)
	if err := os.Rename(filepath.Join(crash1, "checkpoint"), filepath.Join(crash1, "checkpoint.old")); err != nil {
		t.Fatal(err)
	}
	st1 := openStore(t, crash1, Options{Sync: wal.SyncNone})
	if v := st1.Lake().Version(); v != 5 {
		t.Fatalf("window-1 recovery version = %d, want 5", v)
	}
	st1.Lake().Close()
	st1.Close()

	// Crash window 2: new checkpoint promoted, old one not yet removed.
	crash2 := dir + "-w2"
	copyDir(t, dir, crash2)
	copyDir(t, filepath.Join(crash2, "checkpoint"), filepath.Join(crash2, "checkpoint.old"))
	st2 := openStore(t, crash2, Options{Sync: wal.SyncNone})
	if v := st2.Lake().Version(); v != 5 {
		t.Fatalf("window-2 recovery version = %d, want 5", v)
	}
	if _, err := os.Stat(filepath.Join(crash2, "checkpoint.old")); !os.IsNotExist(err) {
		t.Error("stale checkpoint.old not cleaned up")
	}
	st2.Lake().Close()
	st2.Close()
}

// copyDir recursively copies a directory tree (the crash-image helper:
// recovery always runs on a copy, so the original store's goroutines and
// file handles cannot help it).
func copyDir(t *testing.T, src, dst string) {
	t.Helper()
	err := filepath.Walk(src, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(src, path)
		if err != nil {
			return err
		}
		target := filepath.Join(dst, rel)
		if info.IsDir() {
			return os.MkdirAll(target, info.Mode())
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		return os.WriteFile(target, data, info.Mode())
	})
	if err != nil {
		t.Fatal(err)
	}
}
