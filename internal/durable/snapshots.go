package durable

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strconv"
	"time"

	"repro/internal/datalake"
	"repro/internal/lakeio"
)

// Pinned time-travel snapshots survive restarts. Unpinned snapshots are a
// memory-only retention window (re-seeded by checkpoints), but an explicit
// pin is an operator promise — "this version stays readable" — so it gets
// the same durability treatment as the checkpoint:
//
//	<dir>/snapshots/MANIFEST.json   the validity marker: which pins exist
//	<dir>/snapshots/<version>/      one pin: lakeio catalog + indexes/
//
// The ordering makes the manifest the single source of truth. PersistPin
// writes the pin directory first (via a .tmp rename), fsyncs it, and only
// then rewrites the manifest atomically (.tmp → rename → dir fsync), so a
// crash at any filesystem operation leaves the old or the new manifest,
// never a torn one — and every version the surviving manifest lists has a
// complete directory. DropPin inverts the order: manifest first, then
// directory removal, so a crash leaves at worst an orphan directory, which
// RecoverPins sweeps. All manifest-path operations go through the store's
// (possibly fault-injected) filesystem; the crash-consistency suite
// drives every kill point.

// snapshotManifestFile is the pin set's validity marker, relative to the
// snapshots directory.
const snapshotManifestFile = "MANIFEST.json"

// snapshotManifest is the persisted pin set.
type snapshotManifest struct {
	Format int       `json:"format"`
	Pins   []PinMeta `json:"pins"`
}

// PinMeta describes one persisted pin.
type PinMeta struct {
	// Version is the lake version the pin retains.
	Version uint64 `json:"version"`
	// CreatedUnix is the pin wall-clock time (informational).
	CreatedUnix int64 `json:"created_unix"`
	// Trust is the pipeline's source-trust overrides at pin time, persisted
	// so a recovered pin re-verifies identically.
	Trust map[string]float64 `json:"trust,omitempty"`
}

// RecoveredPin is one pin resolved from disk at recovery: the caller
// reloads Dir's catalog, fast-forwards it to Version, and re-registers the
// fork with the pipeline's snapshot registry.
type RecoveredPin struct {
	Version uint64
	Dir     string // pin directory (catalog at root, indexes/ beneath)
	Trust   map[string]float64
}

// SnapshotsDir is where the store keeps persisted pins.
func (s *Store) SnapshotsDir() string { return filepath.Join(s.dir, "snapshots") }

func (s *Store) pinDir(version uint64) string {
	return filepath.Join(s.SnapshotsDir(), strconv.FormatUint(version, 10))
}

// decodeSnapshotManifest parses and validates manifest bytes: format 1,
// strictly ascending non-zero versions (no duplicates), finite trust
// values in [0,1]. Reject-loudly beats tolerate-quietly here — a manifest
// that fails validation means the atomic-rewrite invariant broke, and
// serving a half-trusted pin set would quietly break reproducibility.
func decodeSnapshotManifest(data []byte) (*snapshotManifest, error) {
	var m snapshotManifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("durable: parse snapshot manifest: %w", err)
	}
	if m.Format != 1 {
		return nil, fmt.Errorf("durable: snapshot manifest format %d not supported", m.Format)
	}
	var prev uint64
	for i, p := range m.Pins {
		if p.Version == 0 {
			return nil, fmt.Errorf("durable: snapshot manifest pin %d has version 0", i)
		}
		if p.Version <= prev {
			return nil, fmt.Errorf("durable: snapshot manifest versions not strictly ascending at %d", p.Version)
		}
		prev = p.Version
		for src, t := range p.Trust {
			if math.IsNaN(t) || t < 0 || t > 1 {
				return nil, fmt.Errorf("durable: snapshot manifest pin %d: trust %g for %q outside [0,1]", p.Version, t, src)
			}
		}
	}
	return &m, nil
}

// readSnapshotManifest loads the current manifest; an absent file is an
// empty pin set, an unparsable one is an error (unlike checkpoint META,
// the manifest is never mid-write on disk — it is replaced by rename).
func (s *Store) readSnapshotManifest() (*snapshotManifest, error) {
	data, err := s.fs.ReadFile(filepath.Join(s.SnapshotsDir(), snapshotManifestFile))
	if errors.Is(err, os.ErrNotExist) {
		return &snapshotManifest{Format: 1}, nil
	}
	if err != nil {
		return nil, fmt.Errorf("durable: read snapshot manifest: %w", err)
	}
	return decodeSnapshotManifest(data)
}

// writeSnapshotManifest atomically replaces the manifest: write to a .tmp
// sibling, fsync it, rename over the real name, fsync the directory. A
// crash at any step leaves the previous manifest readable.
func (s *Store) writeSnapshotManifest(m *snapshotManifest) error {
	dir := s.SnapshotsDir()
	if err := s.fs.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("durable: mkdir snapshots: %w", err)
	}
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return fmt.Errorf("durable: marshal snapshot manifest: %w", err)
	}
	tmp := filepath.Join(dir, snapshotManifestFile+".tmp")
	if err := s.fs.WriteFile(tmp, data, 0o644); err != nil {
		return fmt.Errorf("durable: write snapshot manifest: %w", err)
	}
	if err := syncDir(s.fs, tmp); err != nil {
		return fmt.Errorf("durable: sync snapshot manifest: %w", err)
	}
	if err := s.fs.Rename(tmp, filepath.Join(dir, snapshotManifestFile)); err != nil {
		return fmt.Errorf("durable: promote snapshot manifest: %w", err)
	}
	if err := syncDir(s.fs, dir); err != nil {
		return fmt.Errorf("durable: sync snapshots dir: %w", err)
	}
	return nil
}

// PersistPin makes the pin at view's version durable: serialize the
// catalog (and, via writeIndexes, the frozen index shards) into the pin
// directory, fsync the tree, then admit the version into the manifest
// atomically. Persisting an already-manifested version only refreshes its
// trust map. The pin directory only becomes meaningful once the manifest
// lists it, so a crash mid-serialization costs nothing but an orphan
// directory swept at recovery.
func (s *Store) PersistPin(view *datalake.View, writeIndexes WriteFunc, trust map[string]float64) error {
	s.pinMu.Lock()
	defer s.pinMu.Unlock()
	m, err := s.readSnapshotManifest()
	if err != nil {
		return err
	}
	version := view.Version()
	exists := false
	for i := range m.Pins {
		if m.Pins[i].Version == version {
			m.Pins[i].Trust = trust
			exists = true
			break
		}
	}
	if !exists {
		dir := s.pinDir(version)
		tmp := dir + ".tmp"
		if err := s.fs.RemoveAll(tmp); err != nil {
			return fmt.Errorf("durable: clear pin tmp: %w", err)
		}
		if err := lakeio.Save(view, tmp); err != nil {
			return fmt.Errorf("durable: save pin catalog: %w", err)
		}
		if writeIndexes != nil {
			if err := writeIndexes(tmp); err != nil {
				return fmt.Errorf("durable: save pin indexes: %w", err)
			}
		}
		if err := syncTree(s.fs, tmp); err != nil {
			return fmt.Errorf("durable: sync pin tree: %w", err)
		}
		if err := s.fs.RemoveAll(dir); err != nil {
			return fmt.Errorf("durable: clear stale pin dir: %w", err)
		}
		if err := s.fs.Rename(tmp, dir); err != nil {
			return fmt.Errorf("durable: promote pin dir: %w", err)
		}
		idx := len(m.Pins)
		for i, p := range m.Pins {
			if p.Version > version {
				idx = i
				break
			}
		}
		m.Pins = append(m.Pins, PinMeta{})
		copy(m.Pins[idx+1:], m.Pins[idx:])
		m.Pins[idx] = PinMeta{Version: version, CreatedUnix: time.Now().Unix(), Trust: trust}
	}
	return s.writeSnapshotManifest(m)
}

// DropPin removes a version from the durable pin set: manifest rewrite
// first (the pin stops being real the moment the rename lands), directory
// removal second. Dropping an unmanifested version is a no-op.
func (s *Store) DropPin(version uint64) error {
	s.pinMu.Lock()
	defer s.pinMu.Unlock()
	m, err := s.readSnapshotManifest()
	if err != nil {
		return err
	}
	kept := m.Pins[:0]
	found := false
	for _, p := range m.Pins {
		if p.Version == version {
			found = true
			continue
		}
		kept = append(kept, p)
	}
	if !found {
		return nil
	}
	m.Pins = kept
	if err := s.writeSnapshotManifest(m); err != nil {
		return err
	}
	if err := s.fs.RemoveAll(s.pinDir(version)); err != nil {
		return fmt.Errorf("durable: remove pin dir: %w", err)
	}
	return nil
}

// PersistedPins lists the manifest's pin set (oldest first).
func (s *Store) PersistedPins() ([]PinMeta, error) {
	s.pinMu.Lock()
	defer s.pinMu.Unlock()
	m, err := s.readSnapshotManifest()
	if err != nil {
		return nil, err
	}
	return append([]PinMeta(nil), m.Pins...), nil
}

// RecoverPins resolves the durable pin set at startup: every manifested
// version with its directory and trust map, ready for re-registration.
// Directories the manifest does not list — pin serializations that crashed
// before their manifest admit, or removals that crashed after their
// manifest drop — are swept. A manifested version whose directory is
// missing is dropped from the manifest (it cannot be served); the write
// ordering makes that state unreachable short of external interference,
// but recovery repairs rather than wedges.
func (s *Store) RecoverPins() ([]RecoveredPin, error) {
	s.pinMu.Lock()
	defer s.pinMu.Unlock()
	m, err := s.readSnapshotManifest()
	if err != nil {
		return nil, err
	}
	root := s.SnapshotsDir()
	entries, err := s.fs.ReadDir(root)
	if err != nil && !errors.Is(err, os.ErrNotExist) {
		return nil, fmt.Errorf("durable: read snapshots dir: %w", err)
	}
	manifested := make(map[string]bool, len(m.Pins))
	for _, p := range m.Pins {
		manifested[strconv.FormatUint(p.Version, 10)] = true
	}
	for _, e := range entries {
		if !e.IsDir() || manifested[e.Name()] {
			continue
		}
		if err := s.fs.RemoveAll(filepath.Join(root, e.Name())); err != nil {
			return nil, fmt.Errorf("durable: sweep orphan pin dir %q: %w", e.Name(), err)
		}
	}
	out := make([]RecoveredPin, 0, len(m.Pins))
	kept := m.Pins[:0]
	dropped := false
	for _, p := range m.Pins {
		dir := s.pinDir(p.Version)
		if _, err := s.fs.Stat(dir); err != nil {
			if errors.Is(err, os.ErrNotExist) {
				dropped = true
				continue
			}
			return nil, fmt.Errorf("durable: stat pin dir: %w", err)
		}
		kept = append(kept, p)
		out = append(out, RecoveredPin{Version: p.Version, Dir: dir, Trust: p.Trust})
	}
	if dropped {
		m.Pins = kept
		if err := s.writeSnapshotManifest(m); err != nil {
			return nil, err
		}
	}
	return out, nil
}
