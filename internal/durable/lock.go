package durable

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"syscall"
)

// ErrLocked reports a data directory already owned by another process (or
// another open Store in this one). Detect it with errors.Is.
var ErrLocked = errors.New("durable: data directory locked by another process")

// lockFile is the advisory-lock marker inside the data directory. Only
// the flock on the open descriptor matters — the file's presence or
// content (a best-effort PID, for operators) proves nothing, so a crashed
// process never leaves the directory stuck: the kernel drops its lock
// with its descriptors.
const lockFile = "LOCK"

// dirLock is a held cross-process lock on a data directory.
type dirLock struct {
	f *os.File
}

// acquireDirLock takes the exclusive flock on dir's lockfile without
// blocking; a second opener — any process, including this one through a
// separate Open — gets ErrLocked immediately. The lock lives on the real
// filesystem regardless of any injected FS: a simulated crash must not
// release a real lock early, and a real crash releases it via the kernel.
func acquireDirLock(dir string) (*dirLock, error) {
	f, err := os.OpenFile(filepath.Join(dir, lockFile), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("durable: open lockfile: %w", err)
	}
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
		f.Close()
		if errors.Is(err, syscall.EWOULDBLOCK) || errors.Is(err, syscall.EAGAIN) {
			return nil, fmt.Errorf("%w (dir %s)", ErrLocked, dir)
		}
		return nil, fmt.Errorf("durable: flock lockfile: %w", err)
	}
	// Best-effort PID stamp so an operator can see who holds the directory.
	_ = f.Truncate(0)
	_, _ = f.WriteAt([]byte(strconv.Itoa(os.Getpid())+"\n"), 0)
	return &dirLock{f: f}, nil
}

// release drops the lock and closes the descriptor. Idempotent.
func (dl *dirLock) release() {
	if dl == nil || dl.f == nil {
		return
	}
	_ = syscall.Flock(int(dl.f.Fd()), syscall.LOCK_UN)
	_ = dl.f.Close()
	dl.f = nil
}
