// Package durable makes a data lake survive process restarts. It ties
// three pieces together around one data directory:
//
//	<dir>/wal/             write-ahead log segments (internal/wal)
//	<dir>/checkpoint/      latest checkpoint: lakeio catalog layout
//	                       (manifest.json, tables/, texts/), META.json
//	                       (checkpoint version), and indexes/ (the
//	                       indexer's persisted shards)
//	<dir>/checkpoint.old/  previous checkpoint, kept only mid-swap
//
// The commit protocol: every lake mutation is appended to the WAL by the
// lake's commit hook — under the write lock, after version assignment,
// before the catalog mutates or the event publishes — so an acknowledged
// write is always reconstructible. A checkpoint quiesces the lake, saves
// the catalog (lakeio.Save) and index state, atomically swaps it in, then
// rotates the WAL and deletes sealed segments the checkpoint covers.
//
// Recovery (Open) is the reverse: load the latest valid checkpoint, fast-
// forward the lake's version counter to the checkpoint version, and hand
// the WAL tail (records past the checkpoint) to the caller, who replays it
// through the normal AddBatch path once the indexer is subscribed — so
// indexes rebuild through exactly the code live ingestion uses. A torn
// final WAL record (a crash mid-append, necessarily unacknowledged) is
// dropped; corruption anywhere else fails recovery loudly.
//
// The directory must be owned by one process at a time; nothing here
// implements cross-process locking.
package durable

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/datalake"
	"repro/internal/lakeio"
	"repro/internal/wal"
)

// Options configure a durable store.
type Options struct {
	// Sync is the WAL sync policy (default wal.SyncInterval).
	Sync wal.SyncPolicy
	// SyncInterval is the fsync period under wal.SyncInterval; <= 0 means
	// the wal package default (100ms).
	SyncInterval time.Duration
	// SegmentBytes is the WAL segment rotation threshold; <= 0 means the
	// wal package default (16 MiB).
	SegmentBytes int64
	// LakeOptions configure the recovered lake (e.g. the ingest queue).
	LakeOptions []datalake.Option
}

// metaFile is the checkpoint's validity marker; a checkpoint directory
// without a readable one is ignored (e.g. a crash mid-write).
const metaFile = "META.json"

// checkpointMeta is the checkpoint's pinning metadata.
type checkpointMeta struct {
	// Format versions the layout.
	Format int `json:"format"`
	// Version is the lake version the checkpoint captured.
	Version uint64 `json:"version"`
	// CreatedUnix is the checkpoint wall-clock time (informational).
	CreatedUnix int64 `json:"created_unix"`
}

// Stats describes the store for operational surfaces.
type Stats struct {
	Dir               string `json:"data_dir"`
	SyncPolicy        string `json:"sync_policy"`
	CheckpointVersion uint64 `json:"checkpoint_version"`
	// LastCheckpointUnix is 0 until a checkpoint happens in this process.
	LastCheckpointUnix int64 `json:"last_checkpoint_unix,omitempty"`
	WALSegments        int   `json:"wal_segments"`
	WALBytes           int64 `json:"wal_bytes"`
	WALRecords         int   `json:"wal_records"`
	// WALTornBytes counts torn-tail bytes dropped at recovery.
	WALTornBytes int64 `json:"wal_torn_bytes,omitempty"`
	// ReplayedRecords counts WAL records replayed at recovery.
	ReplayedRecords int `json:"replayed_records"`
}

// Store is an open durable lake: the recovered lake plus its WAL. Create
// one with Open; the sequence is Open → (build indexer over Lake()) →
// ReplayTail → Arm → serve. Checkpoint and Close are safe to call
// concurrently with lake traffic.
type Store struct {
	dir  string
	opts Options
	lake *datalake.Lake
	log  *wal.Log

	mu             sync.Mutex
	ckptVersion    uint64
	lastCheckpoint time.Time
	tail           []wal.Record
	replayed       int
	armed          bool
	closed         bool
}

func (s *Store) walDir() string        { return filepath.Join(s.dir, "wal") }
func (s *Store) checkpointDir() string { return filepath.Join(s.dir, "checkpoint") }

// IndexSnapshotDir is where the current checkpoint keeps the indexer's
// persisted shards (it may not exist — e.g. before the first checkpoint).
func (s *Store) IndexSnapshotDir() string { return filepath.Join(s.checkpointDir(), "indexes") }

// Lake returns the recovered lake.
func (s *Store) Lake() *datalake.Lake { return s.lake }

// CheckpointVersion returns the lake version of the checkpoint the store
// recovered from (or last wrote); 0 before any checkpoint.
func (s *Store) CheckpointVersion() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ckptVersion
}

// Open recovers a durable lake from dir, creating the layout on first use.
// The returned store holds the WAL tail in memory; call ReplayTail after
// subscribing the indexer, then Arm to begin logging new writes.
func Open(dir string, opts Options) (_ *Store, err error) {
	s := &Store{dir: dir, opts: opts}
	for _, sub := range []string{"", "wal"} {
		if err := os.MkdirAll(filepath.Join(dir, sub), 0o755); err != nil {
			return nil, fmt.Errorf("durable: mkdir: %w", err)
		}
	}
	meta, err := s.resolveCheckpoint()
	if err != nil {
		return nil, err
	}
	if meta != nil {
		lake, err := lakeio.Load(s.checkpointDir(), opts.LakeOptions...)
		if err != nil {
			return nil, fmt.Errorf("durable: load checkpoint: %w", err)
		}
		s.lake = lake
		s.ckptVersion = meta.Version
		if err := lake.FastForwardVersion(meta.Version); err != nil {
			lake.Close()
			return nil, fmt.Errorf("durable: checkpoint at version %d behind its own catalog: %w", meta.Version, err)
		}
	} else {
		s.lake = datalake.New(opts.LakeOptions...)
	}
	defer func() {
		if err != nil {
			_ = s.lake.Close()
		}
	}()

	// Scan the WAL, keeping records the checkpoint does not cover. Source
	// records are kept unconditionally: re-registering a source is an
	// idempotent overwrite, and the WAL's order preserves the last write.
	log, err := wal.Open(s.walDir(), wal.Options{
		Sync: opts.Sync, Interval: opts.SyncInterval, SegmentBytes: opts.SegmentBytes,
	}, func(rec wal.Record) error {
		if rec.Kind == wal.KindSource || rec.Version > s.ckptVersion {
			s.tail = append(s.tail, rec)
		}
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("durable: open wal: %w", err)
	}
	s.log = log
	return s, nil
}

// resolveCheckpoint picks the newest valid checkpoint, finishing an
// interrupted swap: a valid checkpoint/ wins; otherwise a valid
// checkpoint.old/ is moved back into place; otherwise there is none.
func (s *Store) resolveCheckpoint() (*checkpointMeta, error) {
	cur := s.checkpointDir()
	old := cur + ".old"
	if meta, err := readCheckpointMeta(cur); err != nil {
		return nil, err
	} else if meta != nil {
		// Leftover .old from a swap that crashed before cleanup.
		if err := os.RemoveAll(old); err != nil {
			return nil, fmt.Errorf("durable: remove stale checkpoint.old: %w", err)
		}
		return meta, nil
	}
	meta, err := readCheckpointMeta(old)
	if err != nil {
		return nil, err
	}
	if meta == nil {
		return nil, nil
	}
	// The swap crashed between moving the old checkpoint away and moving
	// the new one in: restore the old one.
	if err := os.RemoveAll(cur); err != nil {
		return nil, fmt.Errorf("durable: remove invalid checkpoint: %w", err)
	}
	if err := os.Rename(old, cur); err != nil {
		return nil, fmt.Errorf("durable: restore checkpoint.old: %w", err)
	}
	return meta, nil
}

// ReplayTail applies the WAL tail through the lake's normal write path —
// AddBatch for event records (so any subscribed indexer maintains itself
// through the same code as live ingestion), AddSource for source records —
// and verifies every replayed mutation recommits as its original version.
func (s *Store) ReplayTail() error {
	s.mu.Lock()
	tail := s.tail
	s.tail = nil
	s.mu.Unlock()

	// Group contiguous event records into batches, applying source
	// records at their position to preserve WAL order.
	var pending []wal.Record
	flush := func() error {
		if len(pending) == 0 {
			return nil
		}
		items := make([]datalake.BatchItem, len(pending))
		for i, rec := range pending {
			items[i] = datalake.BatchItem{Table: rec.Table, Doc: rec.Doc, Triple: rec.Triple}
		}
		results, err := s.lake.AddBatch(items)
		if err != nil {
			return fmt.Errorf("durable: replay batch: %w", err)
		}
		for i, res := range results {
			if res.Err != nil {
				return fmt.Errorf("durable: replay record (version %d): %w", pending[i].Version, res.Err)
			}
			if res.Version != pending[i].Version {
				return fmt.Errorf("durable: replay drift: record logged as version %d recommitted as %d", pending[i].Version, res.Version)
			}
		}
		pending = pending[:0]
		return nil
	}
	for _, rec := range tail {
		if rec.Kind == wal.KindSource {
			if err := flush(); err != nil {
				return err
			}
			if rec.Source == nil {
				return fmt.Errorf("durable: source record without source payload")
			}
			if err := s.lake.AddSource(*rec.Source); err != nil {
				return fmt.Errorf("durable: replay source %q: %w", rec.Source.ID, err)
			}
			continue
		}
		pending = append(pending, rec)
	}
	if err := flush(); err != nil {
		return err
	}
	s.mu.Lock()
	s.replayed = len(tail)
	s.mu.Unlock()
	return nil
}

// Arm installs the durability hooks on the lake: from here on, every
// mutation (and source registration) is WAL-appended before it commits.
// Call it after ReplayTail, or replayed records would be logged twice.
func (s *Store) Arm() {
	s.lake.SetCommitHook(func(evs []datalake.Event) error {
		recs := make([]wal.Record, len(evs))
		for i, ev := range evs {
			rec, err := wal.FromEvent(ev)
			if err != nil {
				return err
			}
			recs[i] = rec
		}
		return s.log.Append(recs...)
	})
	s.lake.SetSourceHook(func(src datalake.Source) error {
		// Stamp the source with the current published version so segment
		// truncation accounting stays uniform; replay applies source
		// records regardless of the stamp.
		return s.log.Append(wal.Record{Version: s.lake.Version(), Kind: wal.KindSource, Source: &src})
	})
	s.mu.Lock()
	s.armed = true
	s.mu.Unlock()
}

// Checkpoint captures a consistent snapshot: with the lake quiesced it
// saves the catalog (and, via saveIndexes, the index state) into a
// temporary directory, atomically swaps it in as the current checkpoint,
// then rotates the WAL and deletes the sealed segments the checkpoint
// covers. saveIndexes receives the checkpoint directory being built and
// the checkpoint version; nil skips index snapshotting. Returns the
// checkpoint's lake version.
//
// Ingestion blocks for the duration (reads keep being served); callers
// pick a cadence accordingly.
func (s *Store) Checkpoint(saveIndexes func(dir string, version uint64) error) (uint64, error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return 0, fmt.Errorf("durable: store closed")
	}
	s.mu.Unlock()

	var version uint64
	err := s.lake.Quiesce(func(v uint64) error {
		version = v
		tmp := s.checkpointDir() + ".tmp"
		if err := os.RemoveAll(tmp); err != nil {
			return fmt.Errorf("durable: clear checkpoint.tmp: %w", err)
		}
		if err := lakeio.Save(s.lake, tmp); err != nil {
			return fmt.Errorf("durable: save catalog: %w", err)
		}
		if saveIndexes != nil {
			if err := saveIndexes(tmp, v); err != nil {
				return fmt.Errorf("durable: save indexes: %w", err)
			}
		}
		if err := writeCheckpointMeta(tmp, checkpointMeta{Format: 1, Version: v, CreatedUnix: time.Now().Unix()}); err != nil {
			return err
		}
		// Durability ordering: the WAL segments this checkpoint covers are
		// deleted below, so the checkpoint itself must be on stable
		// storage first — every file and directory of the tree, then the
		// renames that promote it (fsync of the parent directory). Skip
		// any of these and a power loss after truncation loses
		// acknowledged writes that only the (now deleted) WAL held.
		if err := syncTree(tmp); err != nil {
			return fmt.Errorf("durable: sync checkpoint tree: %w", err)
		}
		if err := s.swapCheckpoint(tmp); err != nil {
			return err
		}
		if err := syncDir(s.dir); err != nil {
			return fmt.Errorf("durable: sync data dir: %w", err)
		}
		if err := s.log.Rotate(); err != nil {
			return err
		}
		if err := s.log.TruncateThrough(v); err != nil {
			return err
		}
		return nil
	})
	if err != nil {
		return 0, err
	}
	s.mu.Lock()
	s.ckptVersion = version
	s.lastCheckpoint = time.Now()
	s.mu.Unlock()
	return version, nil
}

// swapCheckpoint promotes tmp to the current checkpoint. The window where
// neither directory holds a valid checkpoint is the instant between the
// two renames; resolveCheckpoint repairs either crash point.
func (s *Store) swapCheckpoint(tmp string) error {
	cur := s.checkpointDir()
	old := cur + ".old"
	if err := os.RemoveAll(old); err != nil {
		return fmt.Errorf("durable: clear checkpoint.old: %w", err)
	}
	if _, err := os.Stat(cur); err == nil {
		if err := os.Rename(cur, old); err != nil {
			return fmt.Errorf("durable: retire checkpoint: %w", err)
		}
	} else if !errors.Is(err, os.ErrNotExist) {
		return fmt.Errorf("durable: stat checkpoint: %w", err)
	}
	if err := os.Rename(tmp, cur); err != nil {
		return fmt.Errorf("durable: promote checkpoint: %w", err)
	}
	if err := os.RemoveAll(old); err != nil {
		return fmt.Errorf("durable: remove retired checkpoint: %w", err)
	}
	return nil
}

// Sync forces an fsync of the WAL (useful before handing the directory to
// another process in tests; normal operation relies on the sync policy).
func (s *Store) Sync() error { return s.log.Sync() }

// Stats reports the store's durability posture.
func (s *Store) Stats() Stats {
	ls := s.log.Stats()
	s.mu.Lock()
	defer s.mu.Unlock()
	st := Stats{
		Dir:               s.dir,
		SyncPolicy:        s.opts.Sync.String(),
		CheckpointVersion: s.ckptVersion,
		WALSegments:       ls.Segments,
		WALBytes:          ls.Bytes,
		WALRecords:        ls.Records,
		WALTornBytes:      ls.TornBytes,
		ReplayedRecords:   s.replayed,
	}
	if !s.lastCheckpoint.IsZero() {
		st.LastCheckpointUnix = s.lastCheckpoint.Unix()
	}
	return st
}

// Close detaches the durability hooks and closes the WAL (final fsync
// included). It does not close the lake — the caller owns that — but must
// be called after the lake stops accepting writes, or late writes would
// commit without being logged. Idempotent.
func (s *Store) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	armed := s.armed
	s.mu.Unlock()
	if armed {
		s.lake.SetCommitHook(nil)
		s.lake.SetSourceHook(nil)
	}
	return s.log.Close()
}
