// Package durable makes a data lake survive process restarts. It ties
// three pieces together around one data directory:
//
//	<dir>/LOCK             cross-process flock: one Store per directory
//	<dir>/wal/             write-ahead log segments (internal/wal)
//	<dir>/checkpoint/      latest checkpoint: lakeio catalog layout
//	                       (manifest.json, tables/, texts/), META.json
//	                       (checkpoint version), and indexes/ (the
//	                       indexer's persisted shards)
//	<dir>/checkpoint.old/  previous checkpoint, kept only mid-swap
//
// The commit protocol: every lake mutation is appended to the WAL by the
// lake's commit hook — under the write lock, after version assignment,
// before the catalog mutates or the event publishes — so an acknowledged
// write is always reconstructible.
//
// Checkpoints are two-phase so they do not block ingestion. The fork
// phase quiesces the lake just long enough to pin an immutable catalog
// view (datalake.Fork), freeze the index shards in memory, and rotate the
// WAL so post-fork writes land in a fresh segment. The write phase — the
// long part, proportional to snapshot size — then serializes the pinned
// state to checkpoint.tmp, fsyncs the tree, atomically swaps it in, and
// deletes the sealed WAL segments the checkpoint covers, all while
// ingestion continues. Ingest stall is bounded by the fork phase alone.
// At most one checkpoint runs at a time (ErrCheckpointInFlight).
//
// Recovery (Open) is the reverse: load the latest valid checkpoint, fast-
// forward the lake's version counter to the checkpoint version, and
// stream the WAL tail (records past the checkpoint) through the normal
// AddBatch path in bounded batches once the indexer is subscribed — so
// indexes rebuild through exactly the code live ingestion uses, and
// replay memory is bounded by the batch size plus one WAL segment, not
// the tail length. A torn final WAL record (a crash mid-append,
// necessarily unacknowledged) is dropped; corruption anywhere else fails
// recovery loudly.
//
// The directory is owned by one process at a time: Open takes an
// exclusive flock on <dir>/LOCK (released by Close, or by the kernel on
// process death) and a second opener fails fast with ErrLocked.
package durable

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/datalake"
	"repro/internal/faultfs"
	"repro/internal/lakeio"
	"repro/internal/obs"
	"repro/internal/wal"
)

// Options configure a durable store.
type Options struct {
	// Sync is the WAL sync policy (default wal.SyncInterval).
	Sync wal.SyncPolicy
	// SyncInterval is the fsync period under wal.SyncInterval; <= 0 means
	// the wal package default (100ms).
	SyncInterval time.Duration
	// WALFormat is the payload encoding for newly appended WAL records
	// (default wal.FormatBinary). Existing records decode regardless of
	// this setting — the payload is self-describing.
	WALFormat wal.Format
	// SegmentBytes is the WAL segment rotation threshold; <= 0 means the
	// wal package default (16 MiB).
	SegmentBytes int64
	// LakeOptions configure the recovered lake (e.g. the ingest queue).
	LakeOptions []datalake.Option
	// FS is the filesystem the store (and its WAL) writes through; nil
	// means the real OS. The crash-consistency suite injects a
	// faultfs.Faulty here. The catalog serializer (lakeio) writes through
	// the real OS either way: its files only become reachable once the
	// fs-tracked META write and renames promote them, so a fault there is
	// indistinguishable from a crash before the META write.
	FS faultfs.FS
}

// ErrCheckpointInFlight reports a Checkpoint call that overlapped another:
// checkpoints snapshot and truncate shared directory state, so only one
// runs at a time. Detect it with errors.Is; the first checkpoint's outcome
// covers the second's intent, so callers usually just skip.
var ErrCheckpointInFlight = errors.New("durable: checkpoint already in flight")

// metaFile is the checkpoint's validity marker; a checkpoint directory
// without a readable one is ignored (e.g. a crash mid-write).
const metaFile = "META.json"

// replayBatchSize bounds one recovery batch through AddBatch: replay
// memory is this many decoded records (plus one WAL segment buffer), not
// the whole tail.
const replayBatchSize = 256

// checkpointMeta is the checkpoint's pinning metadata.
type checkpointMeta struct {
	// Format versions the layout.
	Format int `json:"format"`
	// Version is the lake version the checkpoint captured.
	Version uint64 `json:"version"`
	// CreatedUnix is the checkpoint wall-clock time (informational).
	CreatedUnix int64 `json:"created_unix"`
}

// Stats describes the store for operational surfaces.
type Stats struct {
	Dir               string `json:"data_dir"`
	SyncPolicy        string `json:"sync_policy"`
	CheckpointVersion uint64 `json:"checkpoint_version"`
	// LastCheckpointUnix is 0 until a checkpoint happens in this process.
	LastCheckpointUnix int64 `json:"last_checkpoint_unix,omitempty"`
	// LastForkNanos / LastWriteNanos are the last checkpoint's phase
	// durations: fork is the quiesced window (the only part ingestion
	// waits on), write is the unquiesced serialization+swap.
	LastForkNanos  int64 `json:"last_checkpoint_fork_ns,omitempty"`
	LastWriteNanos int64 `json:"last_checkpoint_write_ns,omitempty"`
	WALSegments    int   `json:"wal_segments"`
	WALBytes       int64 `json:"wal_bytes"`
	WALRecords     int   `json:"wal_records"`
	// WALTornBytes counts torn-tail bytes dropped at recovery.
	WALTornBytes int64 `json:"wal_torn_bytes,omitempty"`
	// ReplayedRecords counts WAL records replayed at recovery.
	ReplayedRecords int `json:"replayed_records"`
}

// Store is an open durable lake: the recovered lake plus its WAL. Create
// one with Open; the sequence is Open → (build indexer over Lake()) →
// ReplayTail → Arm → serve. Checkpoint and Close are safe to call
// concurrently with lake traffic.
type Store struct {
	dir  string
	opts Options
	fs   faultfs.FS
	lake *datalake.Lake
	log  *wal.Log
	lock *dirLock

	// swapMu orders checkpoint promotion (swapCheckpoint, exclusive)
	// against checkpoint-tar streaming for follower bootstrap (shared): a
	// swap completing mid-stream must not rename the directory out from
	// under the tar walk.
	swapMu sync.RWMutex

	// pinMu serializes durable pin-set mutations (PersistPin / DropPin /
	// RecoverPins): each is a read-modify-write of MANIFEST.json.
	pinMu sync.Mutex

	mu             sync.Mutex
	ckptVersion    uint64
	lastCheckpoint time.Time
	forkDur        time.Duration
	writeDur       time.Duration
	checkpointing  bool
	// ckptIdle broadcasts on mu when checkpointing flips false; Close
	// waits on it so an in-flight checkpoint's write phase finishes
	// before the WAL closes and the directory lock is released.
	ckptIdle *sync.Cond
	replayed int
	armed    bool
	closed   bool

	m storeMetrics
}

// storeMetrics holds the store's observability handles; the zero value
// (every handle nil) records nothing, so metrics are strictly opt-in via
// SetMetrics.
type storeMetrics struct {
	forkSec     *obs.Histogram
	writeSec    *obs.Histogram
	checkpoints *obs.Counter
}

// SetMetrics registers the store's checkpoint and recovery metrics (and
// the WAL's) with reg. Call it once after Open, before traffic.
func (s *Store) SetMetrics(reg *obs.Registry) {
	s.log.SetMetrics(reg)
	s.m.forkSec = reg.HistogramBuckets("verifai_checkpoint_fork_seconds",
		"Checkpoint fork-phase duration (the quiesced window ingestion waits on).", obs.CheckpointBuckets)
	s.m.writeSec = reg.HistogramBuckets("verifai_checkpoint_write_seconds",
		"Checkpoint write-phase duration (serialization and swap, ingestion running).", obs.CheckpointBuckets)
	s.m.checkpoints = reg.Counter("verifai_checkpoints_total",
		"Checkpoints completed by this process.")
	reg.CounterFunc("verifai_recovery_replayed_records_total",
		"WAL records replayed at the last recovery.", func() uint64 {
			s.mu.Lock()
			defer s.mu.Unlock()
			return uint64(s.replayed)
		})
	reg.GaugeFunc("verifai_checkpoint_version",
		"Lake version of the current checkpoint.", func() float64 {
			return float64(s.CheckpointVersion())
		})
}

func (s *Store) walDir() string        { return filepath.Join(s.dir, "wal") }
func (s *Store) checkpointDir() string { return filepath.Join(s.dir, "checkpoint") }

// IndexSnapshotDir is where the current checkpoint keeps the indexer's
// persisted shards (it may not exist — e.g. before the first checkpoint).
func (s *Store) IndexSnapshotDir() string { return filepath.Join(s.checkpointDir(), "indexes") }

// Lake returns the recovered lake.
func (s *Store) Lake() *datalake.Lake { return s.lake }

// CheckpointVersion returns the lake version of the checkpoint the store
// recovered from (or last wrote); 0 before any checkpoint.
func (s *Store) CheckpointVersion() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ckptVersion
}

// Open recovers a durable lake from dir, creating the layout on first use.
// It fails fast with ErrLocked when another process owns the directory.
// Call ReplayTail after subscribing the indexer, then Arm to begin logging
// new writes.
func Open(dir string, opts Options) (_ *Store, err error) {
	if opts.FS == nil {
		opts.FS = faultfs.OS
	}
	s := &Store{dir: dir, opts: opts, fs: opts.FS}
	s.ckptIdle = sync.NewCond(&s.mu)
	for _, sub := range []string{"", "wal"} {
		if err := s.fs.MkdirAll(filepath.Join(dir, sub), 0o755); err != nil {
			return nil, fmt.Errorf("durable: mkdir: %w", err)
		}
	}
	lock, err := acquireDirLock(dir)
	if err != nil {
		return nil, err
	}
	s.lock = lock
	defer func() {
		if err != nil {
			s.lock.release()
		}
	}()
	meta, err := s.resolveCheckpoint()
	if err != nil {
		return nil, err
	}
	if meta != nil {
		lake, err := lakeio.Load(s.checkpointDir(), opts.LakeOptions...)
		if err != nil {
			return nil, fmt.Errorf("durable: load checkpoint: %w", err)
		}
		s.lake = lake
		s.ckptVersion = meta.Version
		if err := lake.FastForwardVersion(meta.Version); err != nil {
			lake.Close()
			return nil, fmt.Errorf("durable: checkpoint at version %d behind its own catalog: %w", meta.Version, err)
		}
	} else {
		s.lake = datalake.New(opts.LakeOptions...)
	}
	defer func() {
		if err != nil {
			_ = s.lake.Close()
		}
	}()

	// Open the WAL (replaying for torn-tail repair and segment
	// bookkeeping only; the tail is streamed from disk again by
	// ReplayTail, so it is never buffered whole in memory here).
	log, err := wal.Open(s.walDir(), wal.Options{
		Sync: opts.Sync, Interval: opts.SyncInterval, SegmentBytes: opts.SegmentBytes,
		Format: opts.WALFormat, FS: opts.FS,
	}, nil)
	if err != nil {
		return nil, fmt.Errorf("durable: open wal: %w", err)
	}
	s.log = log
	return s, nil
}

// resolveCheckpoint picks the newest valid checkpoint, finishing an
// interrupted swap: a valid checkpoint/ wins; otherwise a valid
// checkpoint.old/ is moved back into place; otherwise there is none.
func (s *Store) resolveCheckpoint() (*checkpointMeta, error) {
	cur := s.checkpointDir()
	old := cur + ".old"
	if meta, err := readCheckpointMeta(s.fs, cur); err != nil {
		return nil, err
	} else if meta != nil {
		// Leftover .old from a swap that crashed before cleanup.
		if err := s.fs.RemoveAll(old); err != nil {
			return nil, fmt.Errorf("durable: remove stale checkpoint.old: %w", err)
		}
		return meta, nil
	}
	meta, err := readCheckpointMeta(s.fs, old)
	if err != nil {
		return nil, err
	}
	if meta == nil {
		return nil, nil
	}
	// The swap crashed between moving the old checkpoint away and moving
	// the new one in: restore the old one.
	if err := s.fs.RemoveAll(cur); err != nil {
		return nil, fmt.Errorf("durable: remove invalid checkpoint: %w", err)
	}
	if err := s.fs.Rename(old, cur); err != nil {
		return nil, fmt.Errorf("durable: restore checkpoint.old: %w", err)
	}
	return meta, nil
}

// ReplayTail streams the WAL tail — every record past the checkpoint,
// plus source registrations, which replay unconditionally because
// re-registering is an idempotent overwrite — through the lake's
// replication write path (the normal pipeline, minus the follower
// read-only gate): ReplicateBatch for event records in bounded batches (so
// any subscribed indexer maintains itself through the same code as live
// ingestion, and replay memory stays bounded no matter how long the tail
// is), ReplicateSource for source records at their position in WAL order.
// Every replayed mutation is verified to recommit as its original version.
func (s *Store) ReplayTail() error {
	s.mu.Lock()
	ckptVersion := s.ckptVersion
	s.mu.Unlock()

	var pending []wal.Record
	replayed := 0
	flush := func() error {
		if len(pending) == 0 {
			return nil
		}
		if err := s.replicateEvents(pending, "replay"); err != nil {
			return err
		}
		pending = pending[:0]
		return nil
	}
	err := s.log.Replay(func(rec wal.Record) error {
		if rec.Kind != wal.KindSource && rec.Version <= ckptVersion {
			return nil // covered by the checkpoint
		}
		replayed++
		if rec.Kind == wal.KindSource {
			if err := flush(); err != nil {
				return err
			}
			if rec.Source == nil {
				return fmt.Errorf("durable: source record without source payload")
			}
			if err := s.lake.ReplicateSource(*rec.Source); err != nil {
				return fmt.Errorf("durable: replay source %q: %w", rec.Source.ID, err)
			}
			return nil
		}
		pending = append(pending, rec)
		if len(pending) >= replayBatchSize {
			return flush()
		}
		return nil
	})
	if err != nil {
		return err
	}
	if err := flush(); err != nil {
		return err
	}
	s.mu.Lock()
	s.replayed = replayed
	s.mu.Unlock()
	return nil
}

// Arm installs the durability hooks on the lake: from here on, every
// mutation (and source registration) is WAL-appended before it commits.
// Call it after ReplayTail, or replayed records would be logged twice.
func (s *Store) Arm() {
	s.lake.SetCommitHook(func(evs []datalake.Event) error {
		now := time.Now().UnixNano()
		recs := make([]wal.Record, len(evs))
		for i, ev := range evs {
			rec, err := wal.FromEvent(ev)
			if err != nil {
				return err
			}
			rec.TS = now
			recs[i] = rec
		}
		return s.log.Append(recs...)
	})
	s.lake.SetSourceHook(func(src datalake.Source) error {
		// Stamp the source with the current published version so segment
		// truncation accounting stays uniform; replay applies source
		// records regardless of the stamp.
		return s.log.Append(wal.Record{Version: s.lake.Version(), Kind: wal.KindSource, Source: &src})
	})
	s.mu.Lock()
	s.armed = true
	s.mu.Unlock()
}

// FreezeFunc is the fork-phase half of an index snapshot: it runs with
// the lake quiesced, receiving the immutable View pinned by the fork, and
// must capture index state cheaply in memory (e.g. core.Indexer.Freeze),
// returning the WriteFunc that will serialize the capture later. Handing
// the View itself (not just its version) lets the callback also retain the
// fork as a time-travel snapshot — every checkpoint doubles as one at no
// extra quiescence. An error aborts the checkpoint before anything is
// written.
type FreezeFunc func(view *datalake.View) (WriteFunc, error)

// WriteFunc is the write-phase half: it serializes the frozen capture
// into the checkpoint directory being built, with no lake locks held and
// ingestion running.
type WriteFunc func(dir string) error

// Checkpoint captures a durable snapshot without blocking ingestion, in
// two phases.
//
// Fork (quiesced, short — the only window writers wait on): pin an
// immutable view of the catalog at the current version, run freeze (nil
// skips index snapshotting) to capture index state in memory, and rotate
// the WAL so every post-fork write lands in a fresh segment.
//
// Write (unquiesced, long): serialize the pinned view and frozen indexes
// to checkpoint.tmp, fsync the tree, atomically swap it in as the current
// checkpoint, then delete the sealed WAL segments the checkpoint covers —
// all while new writes commit into the live lake and the rotated WAL.
//
// Returns the checkpoint's lake version. Concurrent calls do not queue:
// the second fails fast with ErrCheckpointInFlight.
func (s *Store) Checkpoint(freeze FreezeFunc) (uint64, error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return 0, fmt.Errorf("durable: store closed")
	}
	if s.checkpointing {
		s.mu.Unlock()
		return 0, ErrCheckpointInFlight
	}
	s.checkpointing = true
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		s.checkpointing = false
		s.mu.Unlock()
		s.ckptIdle.Broadcast()
	}()

	// --- fork phase (lake quiesced) ---
	forkStart := time.Now()
	var write WriteFunc
	var sealedSeq int
	view, err := s.lake.Fork(func(v *datalake.View) error {
		if freeze != nil {
			w, ferr := freeze(v)
			if ferr != nil {
				return fmt.Errorf("durable: freeze indexes: %w", ferr)
			}
			write = w
		}
		seq, rerr := s.log.Rotate()
		if rerr != nil {
			return rerr
		}
		sealedSeq = seq
		return nil
	})
	if err != nil {
		return 0, err
	}
	forkDur := time.Since(forkStart)
	version := view.Version()

	// --- write phase (ingestion running) ---
	writeStart := time.Now()
	tmp := s.checkpointDir() + ".tmp"
	if err := s.fs.RemoveAll(tmp); err != nil {
		return 0, fmt.Errorf("durable: clear checkpoint.tmp: %w", err)
	}
	if err := lakeio.Save(view, tmp); err != nil {
		return 0, fmt.Errorf("durable: save catalog: %w", err)
	}
	if write != nil {
		if err := write(tmp); err != nil {
			return 0, fmt.Errorf("durable: save indexes: %w", err)
		}
	}
	if err := writeCheckpointMeta(s.fs, tmp, checkpointMeta{Format: 1, Version: version, CreatedUnix: time.Now().Unix()}); err != nil {
		return 0, err
	}
	// Durability ordering: the WAL segments this checkpoint covers are
	// deleted below, so the checkpoint itself must be on stable storage
	// first — every file and directory of the tree, then the renames that
	// promote it (fsync of the parent directory). Skip any of these and a
	// power loss after truncation loses acknowledged writes that only the
	// (now deleted) WAL held.
	if err := syncTree(s.fs, tmp); err != nil {
		return 0, fmt.Errorf("durable: sync checkpoint tree: %w", err)
	}
	s.swapMu.Lock()
	err = s.swapCheckpoint(tmp)
	s.swapMu.Unlock()
	if err != nil {
		return 0, err
	}
	if err := syncDir(s.fs, s.dir); err != nil {
		return 0, fmt.Errorf("durable: sync data dir: %w", err)
	}
	// Only segments sealed at the fork's rotation point are eligible: a
	// segment sealed later may hold a source registration the forked view
	// predates.
	if err := s.log.TruncateThrough(version, sealedSeq); err != nil {
		return 0, err
	}
	writeDur := time.Since(writeStart)
	s.mu.Lock()
	s.ckptVersion = version
	s.lastCheckpoint = time.Now()
	s.forkDur = forkDur
	s.writeDur = writeDur
	s.mu.Unlock()
	s.m.forkSec.Observe(forkDur.Seconds())
	s.m.writeSec.Observe(writeDur.Seconds())
	s.m.checkpoints.Inc()
	return version, nil
}

// swapCheckpoint promotes tmp to the current checkpoint. The window where
// neither directory holds a valid checkpoint is the instant between the
// two renames; resolveCheckpoint repairs either crash point.
func (s *Store) swapCheckpoint(tmp string) error {
	cur := s.checkpointDir()
	old := cur + ".old"
	if err := s.fs.RemoveAll(old); err != nil {
		return fmt.Errorf("durable: clear checkpoint.old: %w", err)
	}
	if _, err := s.fs.Stat(cur); err == nil {
		if err := s.fs.Rename(cur, old); err != nil {
			return fmt.Errorf("durable: retire checkpoint: %w", err)
		}
	} else if !errors.Is(err, os.ErrNotExist) {
		return fmt.Errorf("durable: stat checkpoint: %w", err)
	}
	if err := s.fs.Rename(tmp, cur); err != nil {
		return fmt.Errorf("durable: promote checkpoint: %w", err)
	}
	if err := s.fs.RemoveAll(old); err != nil {
		return fmt.Errorf("durable: remove retired checkpoint: %w", err)
	}
	return nil
}

// Sync forces an fsync of the WAL (useful before handing the directory to
// another process in tests; normal operation relies on the sync policy).
func (s *Store) Sync() error { return s.log.Sync() }

// Stats reports the store's durability posture.
func (s *Store) Stats() Stats {
	ls := s.log.Stats()
	s.mu.Lock()
	defer s.mu.Unlock()
	st := Stats{
		Dir:               s.dir,
		SyncPolicy:        s.opts.Sync.String(),
		CheckpointVersion: s.ckptVersion,
		LastForkNanos:     s.forkDur.Nanoseconds(),
		LastWriteNanos:    s.writeDur.Nanoseconds(),
		WALSegments:       ls.Segments,
		WALBytes:          ls.Bytes,
		WALRecords:        ls.Records,
		WALTornBytes:      ls.TornBytes,
		ReplayedRecords:   s.replayed,
	}
	if !s.lastCheckpoint.IsZero() {
		st.LastCheckpointUnix = s.lastCheckpoint.Unix()
	}
	return st
}

// Close detaches the durability hooks, closes the WAL (final fsync
// included), and releases the directory lock — always, even when the WAL
// close fails, so a failed shutdown never wedges the directory. An
// in-flight checkpoint is waited out first (new ones are refused): its
// write phase renames checkpoint directories and deletes WAL segments,
// and releasing the cross-process lock mid-phase would let a second
// process open a directory still being mutated. Close does not close the
// lake — the caller owns that — but must be called after the lake stops
// accepting writes, or late writes would commit without being logged.
// Idempotent; concurrent calls wait for the first to pass the checkpoint
// barrier.
func (s *Store) Close() error {
	s.mu.Lock()
	if s.closed {
		// A concurrent first closer may still be waiting out a
		// checkpoint; hold the same barrier so no caller returns while
		// the directory is mid-mutation.
		for s.checkpointing {
			s.ckptIdle.Wait()
		}
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	for s.checkpointing {
		s.ckptIdle.Wait()
	}
	armed := s.armed
	s.mu.Unlock()
	if armed {
		s.lake.SetCommitHook(nil)
		s.lake.SetSourceHook(nil)
	}
	err := s.log.Close()
	s.lock.release()
	return err
}
