package durable

import (
	"archive/tar"
	"bytes"
	"errors"
	"path/filepath"
	"testing"

	"repro/internal/datalake"
	"repro/internal/doc"
	"repro/internal/wal"
)

func replDoc(v uint64, id string) wal.Record {
	return wal.Record{Version: v, Kind: wal.KindDocument, Doc: &doc.Document{ID: id, Title: id, Text: "body " + id}}
}

func TestApplyReplicatedOrderSkipGap(t *testing.T) {
	st := openStore(t, t.TempDir(), Options{Sync: wal.SyncNone})
	defer st.Close()
	defer st.Lake().Close()
	st.Lake().SetReadOnly(true)

	// Fresh follower applies a contiguous stream with an interleaved source.
	n, err := st.ApplyReplicated([]wal.Record{
		replDoc(1, "d1"),
		{Version: 1, Kind: wal.KindSource, Source: &datalake.Source{ID: "src", Name: "s", TrustPrior: 0.9}},
		replDoc(2, "d2"),
	})
	if err != nil || n != 3 {
		t.Fatalf("ApplyReplicated = %d, %v", n, err)
	}
	if v := st.Lake().CommittedVersion(); v != 2 {
		t.Fatalf("CommittedVersion = %d, want 2", v)
	}
	if _, ok := st.Lake().Source("src"); !ok {
		t.Error("replicated source missing")
	}

	// Resumed stream overlapping the cursor: overlap skipped, tail applied,
	// nothing applied twice (duplicate IDs would error loudly if it were).
	n, err = st.ApplyReplicated([]wal.Record{replDoc(1, "d1"), replDoc(2, "d2"), replDoc(3, "d3")})
	if err != nil || n != 1 {
		t.Fatalf("overlapping ApplyReplicated = %d, %v", n, err)
	}
	if v := st.Lake().CommittedVersion(); v != 3 {
		t.Fatalf("CommittedVersion = %d, want 3", v)
	}

	// A gap must stop the applier.
	if _, err := st.ApplyReplicated([]wal.Record{replDoc(5, "d5")}); !errors.Is(err, ErrReplicaGap) {
		t.Fatalf("gapped ApplyReplicated = %v, want ErrReplicaGap", err)
	}
	if v := st.Lake().CommittedVersion(); v != 3 {
		t.Fatalf("CommittedVersion after gap = %d, want 3 (nothing applied)", v)
	}
}

// TestApplyReplicatedSurvivesRestart checks the follower's own durability:
// applied records land in its WAL (the store is Armed), so a killed and
// reopened follower recovers its exact cursor from local disk.
func TestApplyReplicatedSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	st := openStore(t, dir, Options{Sync: wal.SyncNone})
	st.Lake().SetReadOnly(true)
	if _, err := st.ApplyReplicated([]wal.Record{replDoc(1, "d1"), replDoc(2, "d2")}); err != nil {
		t.Fatal(err)
	}
	if err := st.Sync(); err != nil {
		t.Fatal(err)
	}
	// Abandon without Close: simulates a kill mid-stream.
	st.lock.release()

	st2 := openStore(t, dir, Options{Sync: wal.SyncNone})
	defer st2.Close()
	defer st2.Lake().Close()
	st2.Lake().SetReadOnly(true)
	if v := st2.Lake().CommittedVersion(); v != 2 {
		t.Fatalf("recovered cursor = %d, want 2", v)
	}
	// Resume applies only past the recovered cursor.
	n, err := st2.ApplyReplicated([]wal.Record{replDoc(1, "d1"), replDoc(2, "d2"), replDoc(3, "d3")})
	if err != nil || n != 1 {
		t.Fatalf("resume ApplyReplicated = %d, %v", n, err)
	}
}

func TestCheckpointTarRoundTrip(t *testing.T) {
	leaderDir := t.TempDir()
	leader := openStore(t, leaderDir, Options{Sync: wal.SyncNone})
	defer leader.Close()
	defer leader.Lake().Close()

	var buf bytes.Buffer
	if err := leader.WriteCheckpointTar(&buf); !errors.Is(err, ErrNoCheckpoint) {
		t.Fatalf("tar before checkpoint = %v, want ErrNoCheckpoint", err)
	}

	if err := leader.Lake().AddSource(datalake.Source{ID: "src", Name: "s", TrustPrior: 0.8}); err != nil {
		t.Fatal(err)
	}
	mustIngest(t, leader.Lake(), 20, "d")
	ckptVersion, err := leader.Checkpoint(nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := leader.WriteCheckpointTar(&buf); err != nil {
		t.Fatal(err)
	}

	followerDir := filepath.Join(t.TempDir(), "follower")
	if has, err := HasCheckpoint(followerDir); err != nil || has {
		t.Fatalf("fresh dir HasCheckpoint = %v, %v", has, err)
	}
	if err := RestoreCheckpointTar(followerDir, bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	if has, err := HasCheckpoint(followerDir); err != nil || !has {
		t.Fatalf("restored dir HasCheckpoint = %v, %v", has, err)
	}

	// A second restore must refuse rather than clobber local state.
	if err := RestoreCheckpointTar(followerDir, bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("second restore succeeded; want refusal")
	}

	f := openStore(t, followerDir, Options{Sync: wal.SyncNone})
	defer f.Close()
	defer f.Lake().Close()
	if v := f.CheckpointVersion(); v != ckptVersion {
		t.Fatalf("restored checkpoint version = %d, want %d", v, ckptVersion)
	}
	if v := f.Lake().CommittedVersion(); v != ckptVersion {
		t.Fatalf("restored lake version = %d, want %d", v, ckptVersion)
	}
	if got := f.Lake().Stats().Docs; got != 20 {
		t.Fatalf("restored docs = %d, want 20", got)
	}
	if _, ok := f.Lake().Source("src"); !ok {
		t.Error("restored checkpoint lost the source")
	}
}

func TestRestoreCheckpointTarRejectsEscapes(t *testing.T) {
	var buf bytes.Buffer
	tarWithEntry(t, &buf, "../escape", []byte("x"))
	if err := RestoreCheckpointTar(filepath.Join(t.TempDir(), "d"), &buf); err == nil {
		t.Fatal("path-escaping tar restored; want error")
	}
}

func TestRestoreCheckpointTarRejectsMissingMeta(t *testing.T) {
	var buf bytes.Buffer
	tarWithEntry(t, &buf, "catalog.json", []byte("{}"))
	if err := RestoreCheckpointTar(filepath.Join(t.TempDir(), "d"), &buf); err == nil {
		t.Fatal("META-less tar restored; want error")
	}
}

func tarWithEntry(t *testing.T, buf *bytes.Buffer, name string, data []byte) {
	t.Helper()
	tw := tar.NewWriter(buf)
	if err := tw.WriteHeader(&tar.Header{Name: name, Typeflag: tar.TypeReg, Mode: 0o644, Size: int64(len(data))}); err != nil {
		t.Fatal(err)
	}
	if _, err := tw.Write(data); err != nil {
		t.Fatal(err)
	}
	if err := tw.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestChangeStreamRoundTripWAL exercises the leader-serving path most
// directly: Armed ingests land in the WAL, a TailReader streams them, and
// ApplyReplicated on a second store reproduces the exact catalog.
func TestChangeStreamRoundTripWAL(t *testing.T) {
	leader := openStore(t, t.TempDir(), Options{Sync: wal.SyncNone})
	defer leader.Close()
	defer leader.Lake().Close()
	if err := leader.Lake().AddSource(datalake.Source{ID: "s1", Name: "s"}); err != nil {
		t.Fatal(err)
	}
	mustIngest(t, leader.Lake(), 10, "w")

	follower := openStore(t, t.TempDir(), Options{Sync: wal.SyncNone})
	defer follower.Close()
	defer follower.Lake().Close()
	follower.Lake().SetReadOnly(true)

	r := leader.WAL().Tail(0)
	var recs []wal.Record
	for {
		rec, ok, err := r.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		recs = append(recs, rec)
	}
	if _, err := follower.ApplyReplicated(recs); err != nil {
		t.Fatal(err)
	}
	if lv, fv := leader.Lake().CommittedVersion(), follower.Lake().CommittedVersion(); lv != fv {
		t.Fatalf("follower at %d, leader at %d", fv, lv)
	}
	if ld, fd := leader.Lake().Stats().Docs, follower.Lake().Stats().Docs; ld != fd {
		t.Fatalf("follower has %d docs, leader %d", fd, ld)
	}
}
