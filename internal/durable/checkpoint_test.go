package durable

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/datalake"
	"repro/internal/doc"
	"repro/internal/wal"
)

// TestCheckpointDoesNotBlockIngest is the deterministic gate on the
// two-phase protocol: it parks a checkpoint inside its write phase and
// proves ingestion completes meanwhile — under the old single-phase
// protocol (snapshot inside Quiesce) the ingest below would deadlock
// against the held write lock until the test timed out.
func TestCheckpointDoesNotBlockIngest(t *testing.T) {
	dir := t.TempDir()
	st := openStore(t, dir, Options{Sync: wal.SyncNone})
	defer func() { st.Lake().Close(); st.Close() }()
	mustIngest(t, st.Lake(), 10, "pre")

	writing := make(chan struct{})
	release := make(chan struct{})
	done := make(chan error, 1)
	var forkVersion uint64
	go func() {
		_, err := st.Checkpoint(func(v *datalake.View) (WriteFunc, error) {
			forkVersion = v.Version()
			return func(dir string) error {
				close(writing) // quiescence released; write phase running
				<-release
				return nil
			}, nil
		})
		done <- err
	}()
	<-writing

	// Ingestion proceeds during the write phase (this blocks forever if
	// the checkpoint still holds the lake's write lock).
	mustIngest(t, st.Lake(), 5, "during")
	if v := st.Lake().Version(); v != 15 {
		t.Fatalf("mid-checkpoint lake version = %d, want 15", v)
	}

	// A second checkpoint does not queue behind the first.
	if _, err := st.Checkpoint(nil); !errors.Is(err, ErrCheckpointInFlight) {
		t.Fatalf("overlapping Checkpoint error = %v, want ErrCheckpointInFlight", err)
	}

	close(release)
	if err := <-done; err != nil {
		t.Fatalf("checkpoint failed: %v", err)
	}
	if forkVersion != 10 {
		t.Fatalf("fork pinned version %d, want 10 (the pre-fork state)", forkVersion)
	}
	if got := st.CheckpointVersion(); got != 10 {
		t.Fatalf("checkpoint version = %d, want 10", got)
	}
	stats := st.Stats()
	if stats.LastForkNanos <= 0 || stats.LastWriteNanos <= 0 {
		t.Errorf("phase durations not recorded: fork=%d write=%d", stats.LastForkNanos, stats.LastWriteNanos)
	}

	// The during-checkpoint writes live in the post-fork WAL segment:
	// recovery must see checkpoint@10 plus the 5-record tail.
	if err := st.Sync(); err != nil {
		t.Fatal(err)
	}
	copyDir(t, dir, dir+"-crash")
	st2 := openStore(t, dir+"-crash", Options{Sync: wal.SyncNone})
	defer func() { st2.Lake().Close(); st2.Close() }()
	if v := st2.Lake().Version(); v != 15 {
		t.Fatalf("recovered version = %d, want 15", v)
	}
	if st2.Stats().CheckpointVersion != 10 {
		t.Fatalf("recovered checkpoint version = %d, want 10", st2.Stats().CheckpointVersion)
	}
	if st2.Stats().ReplayedRecords != 5 {
		t.Fatalf("replayed %d records, want 5", st2.Stats().ReplayedRecords)
	}
	for _, id := range []string{"pre007", "during004"} {
		if _, ok := st2.Lake().Document(id); !ok {
			t.Errorf("recovered lake lost %s", id)
		}
	}
}

// TestCheckpointFreezeErrorAborts checks a freeze failure aborts the
// checkpoint cleanly before anything is written, and the store stays
// usable.
func TestCheckpointFreezeErrorAborts(t *testing.T) {
	st := openStore(t, t.TempDir(), Options{Sync: wal.SyncNone})
	defer func() { st.Lake().Close(); st.Close() }()
	mustIngest(t, st.Lake(), 3, "d")
	boom := errors.New("boom")
	if _, err := st.Checkpoint(func(*datalake.View) (WriteFunc, error) { return nil, boom }); !errors.Is(err, boom) {
		t.Fatalf("Checkpoint error = %v, want boom", err)
	}
	if st.CheckpointVersion() != 0 {
		t.Fatalf("aborted checkpoint advanced version to %d", st.CheckpointVersion())
	}
	mustIngest(t, st.Lake(), 2, "after")
	if _, err := st.Checkpoint(nil); err != nil {
		t.Fatalf("checkpoint after aborted freeze: %v", err)
	}
	if st.CheckpointVersion() != 5 {
		t.Fatalf("checkpoint version = %d, want 5", st.CheckpointVersion())
	}
}

// TestCloseWaitsForCheckpoint parks a checkpoint in its write phase and
// calls Close: Close must not return (closing the WAL, releasing the
// directory lock) until the checkpoint finishes, or a second process
// could open a directory whose checkpoint dirs and WAL segments the old
// process is still renaming and deleting.
func TestCloseWaitsForCheckpoint(t *testing.T) {
	dir := t.TempDir()
	st := openStore(t, dir, Options{Sync: wal.SyncNone})
	mustIngest(t, st.Lake(), 5, "d")

	writing := make(chan struct{})
	release := make(chan struct{})
	ckptDone := make(chan error, 1)
	go func() {
		_, err := st.Checkpoint(func(*datalake.View) (WriteFunc, error) {
			return func(string) error {
				close(writing)
				<-release
				return nil
			}, nil
		})
		ckptDone <- err
	}()
	<-writing

	st.Lake().Close()
	closed := make(chan error, 1)
	go func() { closed <- st.Close() }()
	select {
	case err := <-closed:
		t.Fatalf("Close returned (%v) while the checkpoint write phase was still running", err)
	case <-time.After(50 * time.Millisecond):
	}
	close(release)
	if err := <-ckptDone; err != nil {
		t.Fatalf("checkpoint: %v", err)
	}
	if err := <-closed; err != nil {
		t.Fatalf("Close: %v", err)
	}
	// The lock was held throughout; a fresh Open now succeeds and sees the
	// completed checkpoint.
	st2 := openStore(t, dir, Options{Sync: wal.SyncNone})
	defer func() { st2.Lake().Close(); st2.Close() }()
	if got := st2.Stats().CheckpointVersion; got != 5 {
		t.Fatalf("recovered checkpoint version = %d, want 5", got)
	}
}

// TestDataDirLock checks the cross-process lock: a second Open fails fast
// with ErrLocked while the first store is open, and succeeds after Close.
func TestDataDirLock(t *testing.T) {
	dir := t.TempDir()
	st := openStore(t, dir, Options{Sync: wal.SyncNone})
	if _, err := Open(dir, Options{Sync: wal.SyncNone}); !errors.Is(err, ErrLocked) {
		t.Fatalf("second Open error = %v, want ErrLocked", err)
	}
	st.Lake().Close()
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	st2 := openStore(t, dir, Options{Sync: wal.SyncNone})
	st2.Lake().Close()
	if err := st2.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestReplayTailStreamsInBatches replays a tail far longer than the
// replay batch size (with source records interleaved to pin WAL-order
// application) and checks everything lands once, in order.
func TestReplayTailStreamsInBatches(t *testing.T) {
	dir := t.TempDir()
	// Small segments so the tail spans many segment files too.
	st := openStore(t, dir, Options{Sync: wal.SyncNone, SegmentBytes: 4096})
	lake := st.Lake()
	n := 3*replayBatchSize + 17
	for i := 0; i < n; i++ {
		if i%100 == 0 {
			if err := lake.AddSource(datalake.Source{ID: fmt.Sprintf("src-%03d", i), Name: "s"}); err != nil {
				t.Fatal(err)
			}
		}
		if err := lake.AddDocument(&doc.Document{ID: fmt.Sprintf("d-%05d", i), Text: "x"}); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Sync(); err != nil {
		t.Fatal(err)
	}

	copyDir(t, dir, dir+"-crash")
	st2 := openStore(t, dir+"-crash", Options{Sync: wal.SyncNone})
	defer func() { st2.Lake().Close(); st2.Close() }()
	if v := st2.Lake().Version(); v != uint64(n) {
		t.Fatalf("recovered version = %d, want %d", v, n)
	}
	for _, i := range []int{0, replayBatchSize, 2*replayBatchSize + 1, n - 1} {
		if _, ok := st2.Lake().Document(fmt.Sprintf("d-%05d", i)); !ok {
			t.Errorf("recovered lake lost d-%05d", i)
		}
	}
	if _, ok := st2.Lake().Source("src-700"); !ok {
		t.Error("recovered lake lost interleaved source src-700")
	}
	srcCount := (n + 99) / 100
	if got := len(st2.Lake().Sources()); got != srcCount {
		t.Errorf("recovered %d sources, want %d", got, srcCount)
	}
	if got := st2.Stats().ReplayedRecords; got != n+srcCount {
		t.Errorf("ReplayedRecords = %d, want %d", got, n+srcCount)
	}
}

// TestConcurrentCheckpointsSerialize hammers Checkpoint from several
// goroutines against live ingestion: exactly in-flight rejections, no
// deadlocks, and the checkpoint version never regresses.
func TestConcurrentCheckpointsSerialize(t *testing.T) {
	st := openStore(t, t.TempDir(), Options{Sync: wal.SyncNone})
	defer func() { st.Lake().Close(); st.Close() }()
	stop := make(chan struct{})
	var ingestErr error
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if err := st.Lake().AddDocument(&doc.Document{ID: fmt.Sprintf("cc-%06d", i), Text: "x"}); err != nil {
				ingestErr = err
				return
			}
		}
	}()
	var (
		mu        sync.Mutex
		succeeded int
		rejected  int
	)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				_, err := st.Checkpoint(nil)
				mu.Lock()
				switch {
				case err == nil:
					succeeded++
				case errors.Is(err, ErrCheckpointInFlight):
					rejected++
				default:
					t.Errorf("checkpoint error: %v", err)
				}
				mu.Unlock()
				time.Sleep(time.Millisecond)
			}
		}()
	}
	// Let the checkpointers finish, then stop the writer.
	waitCheckpoints := make(chan struct{})
	go func() { wg.Wait(); close(waitCheckpoints) }()
	<-time.After(50 * time.Millisecond)
	close(stop)
	<-waitCheckpoints
	if ingestErr != nil {
		t.Fatalf("ingest under concurrent checkpoints failed: %v", ingestErr)
	}
	if succeeded == 0 {
		t.Fatal("no checkpoint succeeded")
	}
	t.Logf("checkpoints: %d succeeded, %d rejected in flight", succeeded, rejected)
}
