package genstore

import (
	"bytes"
	"fmt"
	"reflect"
	"sync"
	"testing"
)

func sampleGen(id, template string) Generation {
	return Generation{ID: id, Template: template, Prompt: "p-" + id, Output: "o-" + id}
}

func TestRecordAndGet(t *testing.T) {
	s := NewStore()
	if err := s.Record(sampleGen("g1", "tuple-completion")); err != nil {
		t.Fatal(err)
	}
	if err := s.Record(sampleGen("g1", "x")); err == nil {
		t.Error("duplicate accepted")
	}
	if err := s.Record(Generation{}); err == nil {
		t.Error("empty ID accepted")
	}
	g, ok := s.Get("g1")
	if !ok || g.Prompt != "p-g1" || g.LatestVerdict() != "" {
		t.Errorf("Get = %+v, %v", g, ok)
	}
	if _, ok := s.Get("ghost"); ok {
		t.Error("ghost found")
	}
	if s.Len() != 1 {
		t.Errorf("Len = %d", s.Len())
	}
}

func TestVerdictHistory(t *testing.T) {
	s := NewStore()
	if err := s.Record(sampleGen("g1", "t")); err != nil {
		t.Fatal(err)
	}
	if err := s.AddVerdict("g1", VerdictEntry{Verdict: "Refuted", Confidence: 0.9, LakeStamp: "v1"}); err != nil {
		t.Fatal(err)
	}
	if err := s.AddVerdict("g1", VerdictEntry{Verdict: "Verified", Confidence: 0.8, LakeStamp: "v2"}); err != nil {
		t.Fatal(err)
	}
	if err := s.AddVerdict("ghost", VerdictEntry{}); err == nil {
		t.Error("verdict on ghost accepted")
	}
	g, _ := s.Get("g1")
	if len(g.History) != 2 || g.LatestVerdict() != "Verified" {
		t.Errorf("history = %+v", g.History)
	}
	// Returned copies are detached from the store.
	g.History[0].Verdict = "mutated"
	g2, _ := s.Get("g1")
	if g2.History[0].Verdict != "Refuted" {
		t.Error("Get shares history storage")
	}
}

func TestByVerdict(t *testing.T) {
	s := NewStore()
	for i := 0; i < 4; i++ {
		if err := s.Record(sampleGen(fmt.Sprintf("g%d", i), "t")); err != nil {
			t.Fatal(err)
		}
	}
	s.AddVerdict("g0", VerdictEntry{Verdict: "Verified"})
	s.AddVerdict("g1", VerdictEntry{Verdict: "Refuted"})
	s.AddVerdict("g2", VerdictEntry{Verdict: "Refuted"})
	if got := s.ByVerdict("Refuted"); !reflect.DeepEqual(got, []string{"g1", "g2"}) {
		t.Errorf("ByVerdict(Refuted) = %v", got)
	}
	if got := s.ByVerdict(""); !reflect.DeepEqual(got, []string{"g3"}) {
		t.Errorf("ByVerdict(unverified) = %v", got)
	}
}

func TestTemplateAccuracy(t *testing.T) {
	s := NewStore()
	s.Record(sampleGen("a", "tuple-completion"))
	s.Record(sampleGen("b", "tuple-completion"))
	s.Record(sampleGen("c", "claim-answer"))
	s.AddVerdict("a", VerdictEntry{Verdict: "Verified"})
	s.AddVerdict("b", VerdictEntry{Verdict: "Refuted"})
	acc := s.TemplateAccuracy()
	if acc["tuple-completion"]["Verified"] != 1 || acc["tuple-completion"]["Refuted"] != 1 {
		t.Errorf("tuple template = %v", acc["tuple-completion"])
	}
	if acc["claim-answer"]["unverified"] != 1 {
		t.Errorf("claim template = %v", acc["claim-answer"])
	}
	if got := s.Templates(); !reflect.DeepEqual(got, []string{"claim-answer", "tuple-completion"}) {
		t.Errorf("Templates = %v", got)
	}
}

func TestStaleAndReverify(t *testing.T) {
	s := NewStore()
	s.Record(sampleGen("g1", "t"))
	s.Record(sampleGen("g2", "t"))
	s.AddVerdict("g1", VerdictEntry{Verdict: "Verified", LakeStamp: "v1"})

	// Against lake v1: g2 (never verified) is stale.
	if got := s.StaleSince("v1"); !reflect.DeepEqual(got, []string{"g2"}) {
		t.Errorf("StaleSince(v1) = %v", got)
	}
	// Against lake v2: both are stale.
	if got := s.StaleSince("v2"); len(got) != 2 {
		t.Errorf("StaleSince(v2) = %v", got)
	}

	n, err := s.Reverify("v2", func(g Generation) (VerdictEntry, error) {
		return VerdictEntry{Verdict: "Refuted", Confidence: 1}, nil
	})
	if err != nil || n != 2 {
		t.Fatalf("Reverify = %d, %v", n, err)
	}
	if got := s.StaleSince("v2"); got != nil {
		t.Errorf("still stale after reverify: %v", got)
	}
	g, _ := s.Get("g1")
	if g.LatestVerdict() != "Refuted" || g.History[len(g.History)-1].LakeStamp != "v2" {
		t.Errorf("g1 history after reverify = %+v", g.History)
	}
	// Errors propagate.
	s.Record(sampleGen("g3", "t"))
	if _, err := s.Reverify("v3", func(Generation) (VerdictEntry, error) {
		return VerdictEntry{}, fmt.Errorf("verifier down")
	}); err == nil {
		t.Error("Reverify swallowed fn error")
	}
}

func TestJSONRoundtrip(t *testing.T) {
	s := NewStore()
	s.Record(sampleGen("g1", "t"))
	s.AddVerdict("g1", VerdictEntry{Verdict: "Verified", Confidence: 0.7, ProvenanceSeq: 3, LakeStamp: "v1"})
	var buf bytes.Buffer
	if err := s.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := s.Get("g1")
	b, _ := loaded.Get("g1")
	if !reflect.DeepEqual(a, b) {
		t.Errorf("roundtrip mismatch:\n%+v\n%+v", a, b)
	}
	if _, err := ReadJSON(bytes.NewBufferString("{bad")); err == nil {
		t.Error("malformed JSON accepted")
	}
}

func TestConcurrentUse(t *testing.T) {
	s := NewStore()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				id := fmt.Sprintf("w%d-%d", w, i)
				if err := s.Record(sampleGen(id, "t")); err != nil {
					t.Error(err)
					return
				}
				if err := s.AddVerdict(id, VerdictEntry{Verdict: "Verified"}); err != nil {
					t.Error(err)
					return
				}
				s.ByVerdict("Verified")
				s.TemplateAccuracy()
			}
		}(w)
	}
	wg.Wait()
	if s.Len() != 400 {
		t.Errorf("Len = %d", s.Len())
	}
}
