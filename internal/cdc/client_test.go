package cdc

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync"
	"testing"
	"time"

	"repro/internal/wal"
)

// fakeLeader serves a change feed from an in-memory record slice,
// honoring ?from= with the applier-facing cursor contract.
type fakeLeader struct {
	mu    sync.Mutex
	recs  []wal.Record
	floor uint64
	conns int
}

func (fl *fakeLeader) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc(ChangesPath, func(w http.ResponseWriter, r *http.Request) {
		from, _ := strconv.ParseUint(r.URL.Query().Get("from"), 10, 64)
		fl.mu.Lock()
		fl.conns++
		recs := append([]wal.Record(nil), fl.recs...)
		floor := fl.floor
		fl.mu.Unlock()
		if from < floor {
			http.Error(w, fmt.Sprintf("cursor %d below floor %d", from, floor), http.StatusGone)
			return
		}
		w.Header().Set("Content-Type", ContentTypeFrames)
		enc := NewEncoder(w)
		for _, rec := range recs {
			if rec.Kind == wal.KindSource || rec.Kind == KindHeartbeat || rec.Version > from {
				if err := enc.Encode(rec); err != nil {
					return
				}
			}
		}
		// Connection closes cleanly; the client reconnects with its cursor.
	})
	return mux
}

func TestFollowAppliesAndResumes(t *testing.T) {
	fl := &fakeLeader{recs: []wal.Record{
		docRecord(1, "d1"),
		docRecord(2, "d2"),
		{Version: 2, Kind: KindHeartbeat},
	}}
	srv := httptest.NewServer(fl.handler())
	defer srv.Close()

	var mu sync.Mutex
	var applied []uint64
	var hb uint64
	cursor := uint64(0)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		done <- Follow(ctx, FollowOptions{
			Leader:  srv.URL,
			From:    func() uint64 { mu.Lock(); defer mu.Unlock(); return cursor },
			Backoff: 5 * time.Millisecond,
			Apply: func(recs []wal.Record) error {
				mu.Lock()
				defer mu.Unlock()
				for _, rec := range recs {
					if rec.Version != cursor+1 {
						return fmt.Errorf("gap: got %d at cursor %d", rec.Version, cursor)
					}
					applied = append(applied, rec.Version)
					cursor = rec.Version
				}
				return nil
			},
			OnHeartbeat: func(v uint64) { mu.Lock(); hb = v; mu.Unlock() },
		})
	}()

	waitFor(t, func() bool { mu.Lock(); defer mu.Unlock(); return cursor == 2 && hb == 2 })

	// New records appear; a reconnect must resume from the cursor without
	// re-applying 1 and 2 (the Apply callback gap-checks this).
	fl.mu.Lock()
	fl.recs = append(fl.recs, docRecord(3, "d3"))
	fl.mu.Unlock()
	waitFor(t, func() bool { mu.Lock(); defer mu.Unlock(); return cursor == 3 })

	mu.Lock()
	if len(applied) != 3 {
		t.Errorf("applied %v, want exactly [1 2 3]", applied)
	}
	mu.Unlock()

	cancel()
	if err := <-done; err != nil {
		t.Fatalf("Follow after cancel = %v, want nil", err)
	}
}

func TestFollowSnapshotRequired(t *testing.T) {
	fl := &fakeLeader{floor: 10}
	srv := httptest.NewServer(fl.handler())
	defer srv.Close()

	err := Follow(context.Background(), FollowOptions{
		Leader: srv.URL,
		From:   func() uint64 { return 3 },
		Apply:  func([]wal.Record) error { return nil },
	})
	if !errors.Is(err, ErrSnapshotRequired) {
		t.Fatalf("Follow = %v, want ErrSnapshotRequired", err)
	}
}

func TestFollowApplyErrorIsFatal(t *testing.T) {
	fl := &fakeLeader{recs: []wal.Record{docRecord(1, "d1")}}
	srv := httptest.NewServer(fl.handler())
	defer srv.Close()

	boom := errors.New("diverged")
	err := Follow(context.Background(), FollowOptions{
		Leader: srv.URL,
		From:   func() uint64 { return 0 },
		Apply:  func([]wal.Record) error { return boom },
	})
	if !errors.Is(err, boom) {
		t.Fatalf("Follow = %v, want the Apply error", err)
	}
}

func TestFollowReconnectsThroughLeaderErrors(t *testing.T) {
	var fail int32 = 2
	fl := &fakeLeader{recs: []wal.Record{docRecord(1, "d1")}}
	inner := fl.handler()
	mux := http.NewServeMux()
	var mu sync.Mutex
	mux.HandleFunc(ChangesPath, func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		failing := fail > 0
		if failing {
			fail--
		}
		mu.Unlock()
		if failing {
			http.Error(w, "leader hiccup", http.StatusInternalServerError)
			return
		}
		inner.ServeHTTP(w, r)
	})
	srv := httptest.NewServer(mux)
	defer srv.Close()

	applied := make(chan uint64, 1)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	go Follow(ctx, FollowOptions{
		Leader:  srv.URL,
		From:    func() uint64 { return 0 },
		Backoff: time.Millisecond,
		Apply: func(recs []wal.Record) error {
			select {
			case applied <- recs[len(recs)-1].Version:
			default:
			}
			return nil
		},
	})
	select {
	case v := <-applied:
		if v != 1 {
			t.Fatalf("applied through version %d, want 1", v)
		}
	case <-ctx.Done():
		t.Fatal("Follow never recovered from transient leader errors")
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached in time")
		}
		time.Sleep(2 * time.Millisecond)
	}
}
