package cdc

import (
	"bytes"
	"io"
	"testing"

	"repro/internal/wal"
)

// FuzzDecodeChangeStream fuzzes both renderings of the change stream — the
// binary frame decoder and the SSE decoder — plus the applier-side cursor
// arithmetic, with arbitrary bytes and an arbitrary resume cursor. This is
// exactly what a follower (or any external CDC subscriber) feeds itself
// after a reconnect: possibly torn, possibly corrupted, possibly
// overlapping its cursor, possibly a stale stream from the wrong epoch.
// Invariants: no decoder panics; every stream terminates with a classified
// outcome (clean EOF / torn / loud corruption); and the cursor skip+gap
// logic never applies a version twice and never applies past a gap.
func FuzzDecodeChangeStream(f *testing.F) {
	valid := fuzzSeedStream(3)
	f.Add(valid, uint64(0))
	f.Add(valid, uint64(2))                                   // overlapping cursor: 1,2 skipped, 3 applied
	f.Add(valid, uint64(9))                                   // fully stale stream: everything skipped
	f.Add(valid[:len(valid)-4], uint64(0))                    // torn final frame
	f.Add(valid[:wal.FrameHeaderSize-2], uint64(0))           // torn header
	f.Add([]byte{}, uint64(0))                                // empty stream
	f.Add([]byte("id: 1\nevent: x\ndata: }{\n\n"), uint64(0)) // garbage SSE data

	// CRC flip on an otherwise intact stream.
	crcFlip := append([]byte(nil), valid...)
	crcFlip[5] ^= 0xff
	f.Add(crcFlip, uint64(0))

	// Gapped stream: versions jump 1 -> 3; the applier must stop, not
	// silently apply out of order.
	var gapped bytes.Buffer
	genc := NewEncoder(&gapped)
	for _, v := range []uint64{1, 3} {
		if err := genc.Encode(docRecord(v, "g")); err != nil {
			f.Fatal(err)
		}
	}
	f.Add(gapped.Bytes(), uint64(0))

	// Duplicated version mid-stream (leader re-serving a resumed segment).
	var dup bytes.Buffer
	denc := NewEncoder(&dup)
	for _, v := range []uint64{1, 2, 2, 3} {
		if err := denc.Encode(docRecord(v, "d")); err != nil {
			f.Fatal(err)
		}
	}
	f.Add(dup.Bytes(), uint64(0))

	// A heartbeat and a source record interleaved with events.
	var mixed bytes.Buffer
	menc := NewEncoder(&mixed)
	for _, rec := range []wal.Record{
		docRecord(1, "m1"),
		{Version: 1, Kind: KindHeartbeat},
		{Version: 1, Kind: wal.KindSource},
		docRecord(2, "m2"),
	} {
		if err := menc.Encode(rec); err != nil {
			f.Fatal(err)
		}
	}
	f.Add(mixed.Bytes(), uint64(0))

	// Valid SSE rendering of the same records.
	var sse bytes.Buffer
	for v := uint64(1); v <= 3; v++ {
		if err := EncodeSSE(&sse, docRecord(v, "s")); err != nil {
			f.Fatal(err)
		}
	}
	f.Add(sse.Bytes(), uint64(1))

	f.Fuzz(func(t *testing.T, data []byte, cursor uint64) {
		applyStream(t, data, cursor, func(r io.Reader) streamNext { return NewDecoder(r).Next })
		applyStream(t, data, cursor, func(r io.Reader) streamNext { return NewSSEDecoder(r).Next })
	})
}

type streamNext func() (wal.Record, error)

// applyStream drives one decoder over the input and mimics the follower's
// apply loop: heartbeats and sources pass through, event versions at or
// below the cursor are skipped, the next expected version is applied, and
// anything else is a gap that stops the stream.
func applyStream(t *testing.T, data []byte, cursor uint64, mk func(io.Reader) streamNext) {
	t.Helper()
	next := mk(bytes.NewReader(data))
	applied := make(map[uint64]bool)
	expect := cursor + 1
	for i := 0; i < 10000; i++ {
		rec, err := next()
		if err != nil {
			// io.EOF clean, io.ErrUnexpectedEOF torn, anything else loud
			// corruption — all terminal, none skippable.
			return
		}
		switch rec.Kind {
		case KindHeartbeat, wal.KindSource:
			continue
		}
		if rec.Version < expect {
			continue // overlap with the cursor: already applied
		}
		if rec.Version > expect {
			return // gap: the applier must refuse to continue
		}
		if applied[rec.Version] {
			t.Fatalf("version %d applied twice", rec.Version)
		}
		applied[rec.Version] = true
		expect++
	}
}
