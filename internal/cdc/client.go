package cdc

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"repro/internal/wal"
)

// FollowOptions configure a Follow loop.
type FollowOptions struct {
	// Leader is the leader's base URL, e.g. "http://10.0.0.1:8080".
	Leader string
	// Client is the HTTP client. nil uses a zero-timeout default — the
	// stream is long-lived, so an overall client timeout would sever it.
	Client *http.Client
	// From returns the cursor to resume from: the highest event version the
	// consumer has committed. Called before every (re)connection, so a
	// restart after partial progress resumes precisely.
	From func() uint64
	// Apply consumes an ordered batch of decoded records (events and
	// sources; heartbeats are filtered out). An Apply error is fatal to the
	// loop — it signals local state divergence, not a transport problem.
	Apply func(recs []wal.Record) error
	// OnHeartbeat, if set, observes the leader's published version from
	// heartbeat frames (for lag reporting).
	OnHeartbeat func(leaderVersion uint64)
	// BatchSize caps one Apply batch (default 256, matching the recovery
	// replay batch size).
	BatchSize int
	// Backoff is the reconnect backoff floor (default 250ms, doubling to a
	// 4s ceiling; reset by any successful read).
	Backoff time.Duration
}

// applyError wraps an Apply failure so the retry loop can tell "local
// apply diverged" (fatal) apart from transport errors (reconnect).
type applyError struct{ err error }

func (e applyError) Error() string { return e.err.Error() }
func (e applyError) Unwrap() error { return e.err }

// Follow tails the leader's change feed and applies it until ctx is
// cancelled (returns nil), the leader reports the cursor unservable
// (ErrSnapshotRequired — re-bootstrap from checkpoint), or Apply fails
// (its error). Transport failures reconnect with backoff, resuming from
// From()'s cursor.
func Follow(ctx context.Context, opts FollowOptions) error {
	client := opts.Client
	if client == nil {
		client = &http.Client{}
	}
	if opts.BatchSize <= 0 {
		opts.BatchSize = 256
	}
	backoff := opts.Backoff
	if backoff <= 0 {
		backoff = 250 * time.Millisecond
	}
	const maxBackoff = 4 * time.Second
	delay := backoff
	for {
		madeProgress, err := streamOnce(ctx, client, opts)
		if ctx.Err() != nil {
			return nil
		}
		switch e := err.(type) {
		case nil:
			// Stream ended cleanly (leader closed it, e.g. segment
			// truncation under the reader); reconnect immediately.
			delay = backoff
			continue
		case applyError:
			return e.err
		}
		if err == ErrSnapshotRequired {
			return err
		}
		if madeProgress {
			delay = backoff
		}
		select {
		case <-ctx.Done():
			return nil
		case <-time.After(delay):
		}
		if delay *= 2; delay > maxBackoff {
			delay = maxBackoff
		}
	}
}

// streamOnce runs one connection: request, decode, apply. madeProgress
// reports whether any record was applied (resets backoff).
func streamOnce(ctx context.Context, client *http.Client, opts FollowOptions) (madeProgress bool, err error) {
	from := uint64(0)
	if opts.From != nil {
		from = opts.From()
	}
	u := strings.TrimSuffix(opts.Leader, "/") + ChangesPath + "?from=" + strconv.FormatUint(from, 10)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return false, err
	}
	req.Header.Set("Accept", ContentTypeFrames)
	resp, err := client.Do(req)
	if err != nil {
		return false, err
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
	case http.StatusGone:
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		return false, ErrSnapshotRequired
	default:
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return false, fmt.Errorf("cdc: leader answered %s: %s", resp.Status, strings.TrimSpace(string(body)))
	}

	dec := NewDecoder(resp.Body)
	batch := make([]wal.Record, 0, opts.BatchSize)
	flush := func() error {
		if len(batch) == 0 {
			return nil
		}
		if err := opts.Apply(batch); err != nil {
			return applyError{err}
		}
		madeProgress = true
		batch = batch[:0]
		return nil
	}
	for {
		rec, derr := dec.Next()
		if derr != nil {
			if ferr := flush(); ferr != nil {
				return madeProgress, ferr
			}
			if derr == io.EOF {
				return madeProgress, nil
			}
			return madeProgress, derr
		}
		if rec.Kind == KindHeartbeat {
			if ferr := flush(); ferr != nil {
				return madeProgress, ferr
			}
			if opts.OnHeartbeat != nil {
				opts.OnHeartbeat(rec.Version)
			}
			continue
		}
		batch = append(batch, rec)
		// Apply when the batch is full or the stream would block: batching
		// amortizes commits during catch-up without adding latency when the
		// stream is drip-feeding live writes.
		if len(batch) >= opts.BatchSize || !dec.Buffered() {
			if ferr := flush(); ferr != nil {
				return madeProgress, ferr
			}
		}
	}
}

// FetchCheckpoint requests the leader's latest checkpoint as a tar stream
// for follower bootstrap. The caller owns the ReadCloser. ErrNoCheckpoint
// reports a leader that has not checkpointed yet.
func FetchCheckpoint(ctx context.Context, client *http.Client, leader string) (io.ReadCloser, error) {
	if client == nil {
		client = &http.Client{}
	}
	u := strings.TrimSuffix(leader, "/") + CheckpointPath
	if _, err := url.Parse(u); err != nil {
		return nil, fmt.Errorf("cdc: bad leader url %q: %w", leader, err)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return nil, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return nil, err
	}
	switch resp.StatusCode {
	case http.StatusOK:
		return resp.Body, nil
	case http.StatusNotFound:
		resp.Body.Close()
		return nil, ErrNoCheckpoint
	default:
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		resp.Body.Close()
		return nil, fmt.Errorf("cdc: checkpoint fetch: %s: %s", resp.Status, strings.TrimSpace(string(body)))
	}
}
