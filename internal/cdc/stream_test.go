package cdc

import (
	"bytes"
	"fmt"
	"io"
	"strings"
	"testing"

	"repro/internal/doc"
	"repro/internal/wal"
)

func docRecord(v uint64, id string) wal.Record {
	return wal.Record{Version: v, Kind: wal.KindDocument, Doc: &doc.Document{ID: id, Title: id, Text: "text of " + id}}
}

func encodeAll(t *testing.T, recs ...wal.Record) []byte {
	t.Helper()
	var buf bytes.Buffer
	enc := NewEncoder(&buf)
	for _, rec := range recs {
		if err := enc.Encode(rec); err != nil {
			t.Fatal(err)
		}
	}
	return buf.Bytes()
}

func TestBinaryStreamRoundTrip(t *testing.T) {
	want := []wal.Record{
		docRecord(1, "d1"),
		docRecord(2, "d2"),
		{Version: 2, Kind: KindHeartbeat},
	}
	dec := NewDecoder(bytes.NewReader(encodeAll(t, want...)))
	for i, w := range want {
		got, err := dec.Next()
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if got.Version != w.Version || got.Kind != w.Kind {
			t.Fatalf("record %d = %+v, want %+v", i, got, w)
		}
	}
	if _, err := dec.Next(); err != io.EOF {
		t.Fatalf("end of stream = %v, want io.EOF", err)
	}
}

func TestBinaryStreamErrorClassification(t *testing.T) {
	valid := encodeAll(t, docRecord(1, "d1"))

	// Torn mid-frame: connection drop, not corruption.
	dec := NewDecoder(bytes.NewReader(valid[:len(valid)-3]))
	if _, err := dec.Next(); err != io.ErrUnexpectedEOF {
		t.Fatalf("torn frame = %v, want io.ErrUnexpectedEOF", err)
	}

	// Torn header.
	dec = NewDecoder(bytes.NewReader(valid[:3]))
	if _, err := dec.Next(); err != io.ErrUnexpectedEOF {
		t.Fatalf("torn header = %v, want io.ErrUnexpectedEOF", err)
	}

	// CRC flip: loud corruption.
	crcFlip := append([]byte(nil), valid...)
	crcFlip[5] ^= 0xff
	dec = NewDecoder(bytes.NewReader(crcFlip))
	if _, err := dec.Next(); err == nil || err == io.EOF || err == io.ErrUnexpectedEOF {
		t.Fatalf("CRC flip = %v, want loud corruption error", err)
	}

	// Absurd length: rejected before allocation.
	huge := make([]byte, wal.FrameHeaderSize)
	huge[3] = 0xff // length = 0xff000000 > MaxRecordSize
	dec = NewDecoder(bytes.NewReader(huge))
	if _, err := dec.Next(); err == nil || !strings.Contains(err.Error(), "corrupt length") {
		t.Fatalf("huge length = %v, want corrupt-length error", err)
	}
}

func TestSSERoundTrip(t *testing.T) {
	var buf bytes.Buffer
	want := []wal.Record{docRecord(7, "d7"), {Version: 7, Kind: KindHeartbeat}}
	for _, rec := range want {
		if err := EncodeSSE(&buf, rec); err != nil {
			t.Fatal(err)
		}
	}
	dec := NewSSEDecoder(&buf)
	for i, w := range want {
		got, err := dec.Next()
		if err != nil {
			t.Fatalf("event %d: %v", i, err)
		}
		if got.Version != w.Version || got.Kind != w.Kind {
			t.Fatalf("event %d = %+v, want %+v", i, got, w)
		}
		if w.Kind == wal.KindDocument && got.Doc.Text != w.Doc.Text {
			t.Fatalf("event %d payload = %+v", i, got.Doc)
		}
	}
	if _, err := dec.Next(); err != io.EOF {
		t.Fatalf("end of stream = %v, want io.EOF", err)
	}
}

func TestSSEDecoderTolerance(t *testing.T) {
	// Comments, unknown fields, blank padding, and data-less events are
	// ignored per the SSE spec; the record in data is authoritative.
	in := ": stream preamble\n\n" +
		"id: 3\nevent: document\nweird: field\ndata: {\"v\":3,\"kind\":\"document\",\"doc\":{\"id\":\"x\",\"title\":\"x\",\"text\":\"tx\"}}\n\n" +
		"id: 9\nevent: nothing\n\n" +
		": trailing comment\n\n"
	dec := NewSSEDecoder(strings.NewReader(in))
	rec, err := dec.Next()
	if err != nil {
		t.Fatal(err)
	}
	if rec.Version != 3 || rec.Doc == nil || rec.Doc.ID != "x" {
		t.Fatalf("decoded %+v", rec)
	}
	if _, err := dec.Next(); err != io.EOF {
		t.Fatalf("end = %v, want io.EOF", err)
	}

	// Garbage data payload is loud corruption.
	dec = NewSSEDecoder(strings.NewReader("data: {not json\n\n"))
	if _, err := dec.Next(); err == nil || err == io.EOF || err == io.ErrUnexpectedEOF {
		t.Fatalf("garbage data = %v, want corruption error", err)
	}

	// Stream ending mid-event is torn.
	dec = NewSSEDecoder(strings.NewReader("id: 4\ndata: {\"v\":4}"))
	if _, err := dec.Next(); err != io.ErrUnexpectedEOF {
		t.Fatalf("mid-event end = %v, want io.ErrUnexpectedEOF", err)
	}
}

func TestEncoderMatchesWALFraming(t *testing.T) {
	// The CDC wire format must be byte-identical to the WAL's on-disk
	// format: a follower's stream decode and a crash recovery's replay
	// decode are the same code path.
	rec := docRecord(42, "same-bytes")
	var wire bytes.Buffer
	if err := NewEncoder(&wire).Encode(rec); err != nil {
		t.Fatal(err)
	}
	var disk bytes.Buffer
	if err := wal.EncodeFrame(&disk, rec); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(wire.Bytes(), disk.Bytes()) {
		t.Fatalf("wire framing (%d bytes) != WAL framing (%d bytes)", wire.Len(), disk.Len())
	}
}

func TestDecoderBatchingHint(t *testing.T) {
	data := encodeAll(t, docRecord(1, "a"), docRecord(2, "b"))
	dec := NewDecoder(bytes.NewReader(data))
	if _, err := dec.Next(); err != nil {
		t.Fatal(err)
	}
	if !dec.Buffered() {
		t.Error("Buffered() = false with a full frame still in hand")
	}
	if _, err := dec.Next(); err != nil {
		t.Fatal(err)
	}
	if dec.Buffered() {
		t.Error("Buffered() = true at stream end")
	}
}

func fuzzSeedStream(n int) []byte {
	var buf bytes.Buffer
	enc := NewEncoder(&buf)
	for v := 1; v <= n; v++ {
		if err := enc.Encode(docRecord(uint64(v), fmt.Sprintf("d%d", v))); err != nil {
			panic(err)
		}
	}
	return buf.Bytes()
}
