package cdc

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"repro/internal/wal"
)

// maxSSELineBytes bounds one SSE line; the payload inside is a WAL record,
// so the WAL's own payload bound is the natural limit.
const maxSSELineBytes = wal.MaxRecordSize + 16

// EncodeSSE writes rec as one Server-Sent Event: `id` carries the version
// (so EventSource reconnection semantics line up with the cursor), `event`
// the record kind, and `data` the record's JSON. The JSON payload is the
// authoritative content; id/event are conveniences for generic SSE tooling.
func EncodeSSE(w io.Writer, rec wal.Record) error {
	payload, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("cdc: encode sse record: %w", err)
	}
	_, err = fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", rec.Version, rec.Kind, payload)
	return err
}

// SSEDecoder incrementally parses an SSE stream back into records. Per the
// SSE spec, comment lines (leading ':') and unknown fields are ignored and
// multi-line data fields are joined with newlines. A data payload that is
// not a valid record JSON is corruption (fatal); a stream ending mid-event
// is torn (io.ErrUnexpectedEOF); a stream ending between events is a clean
// io.EOF.
type SSEDecoder struct {
	sc *bufio.Scanner
}

// NewSSEDecoder returns a decoder reading events from r.
func NewSSEDecoder(r io.Reader) *SSEDecoder {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), maxSSELineBytes)
	return &SSEDecoder{sc: sc}
}

// Next returns the next record in the stream.
func (d *SSEDecoder) Next() (wal.Record, error) {
	var data []byte
	inEvent := false
	for d.sc.Scan() {
		line := d.sc.Text()
		if line == "" {
			if !inEvent {
				continue // stray blank line between events
			}
			if data == nil {
				// An event with only id/event/comment lines carries nothing
				// to apply; skip it and keep scanning.
				inEvent = false
				continue
			}
			var rec wal.Record
			if err := json.Unmarshal(data, &rec); err != nil {
				return wal.Record{}, fmt.Errorf("cdc: sse data is not a record: %w", err)
			}
			return rec, nil
		}
		inEvent = true
		if strings.HasPrefix(line, ":") {
			continue // comment (heartbeat padding etc.)
		}
		field, value, _ := strings.Cut(line, ":")
		value = strings.TrimPrefix(value, " ")
		switch field {
		case "data":
			if data != nil {
				data = append(data, '\n')
			}
			data = append(data, value...)
		default:
			// id/event/retry and unknown fields: informational only — the
			// record JSON in data is authoritative.
		}
	}
	if err := d.sc.Err(); err != nil {
		return wal.Record{}, err
	}
	if inEvent {
		return wal.Record{}, io.ErrUnexpectedEOF
	}
	return wal.Record{}, io.EOF
}
