// Package cdc implements the change-data-capture stream shared by
// follower replication and external subscribers: the wire protocol (the
// WAL's CRC'd frame format, or Server-Sent Events for browser-class
// consumers), an incremental stream decoder, and the follower client that
// tails a leader and applies the stream.
//
// Cursor contract: a consumer's cursor is the highest event version it has
// applied after consuming the stream in order (0 for a fresh consumer, or
// the checkpoint version it bootstrapped from). The leader serves
// `GET /v1/changes?from=<cursor>`; a cursor below the leader's floor (its
// checkpoint version — older WAL segments are truncated) is answered with
// 410 Gone, which the client surfaces as ErrSnapshotRequired: re-bootstrap
// from `GET /v1/replica/checkpoint` and resume from the new checkpoint's
// version. Streams may overlap on resume (the leader re-serves from the
// cursor's segment); appliers must treat versions at or below their cursor
// as already applied.
package cdc

import "errors"

const (
	// ChangesPath is the leader's change-feed endpoint.
	ChangesPath = "/v1/changes"
	// CheckpointPath is the leader's checkpoint-shipping endpoint (tar of
	// the latest checkpoint directory), for follower bootstrap.
	CheckpointPath = "/v1/replica/checkpoint"

	// KindHeartbeat marks a liveness frame in the change stream: Version
	// carries the leader's published version and there is no payload. It is
	// a stream-level record, not a lake mutation — appliers must skip it
	// (the Follow client filters it out before Apply).
	KindHeartbeat = "heartbeat"

	// ContentTypeFrames identifies the binary stream: consecutive WAL
	// frames (4B LE length + 4B LE CRC-32C + JSON payload).
	ContentTypeFrames = "application/x-verifai-frames"
	// ContentTypeSSE identifies the Server-Sent Events rendering.
	ContentTypeSSE = "text/event-stream"
)

// ErrSnapshotRequired reports a cursor below the leader's floor: the WAL
// no longer holds those records. Re-bootstrap from the leader's checkpoint.
var ErrSnapshotRequired = errors.New("cdc: cursor below leader floor; bootstrap from checkpoint required")

// ErrNoCheckpoint reports that the leader has not checkpointed yet; a
// bootstrapping follower should stream from version 0 instead.
var ErrNoCheckpoint = errors.New("cdc: leader has no checkpoint yet")
