package cdc

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"io"

	"repro/internal/wal"
)

// Encoder writes change-stream records in the binary frame format. It is a
// thin wrapper over the WAL's own codec, so the wire format and the
// on-disk format can never drift apart. Payloads are self-describing, so
// the Decoder side needs no format negotiation: a follower consumes a
// leader streaming either encoding (or a mix, when the leader's log was
// written under more than one -wal-format).
type Encoder struct {
	w      io.Writer
	buf    bytes.Buffer
	format wal.Format
}

// NewEncoder returns an Encoder writing frames to w with the default
// (binary) payload encoding.
func NewEncoder(w io.Writer) *Encoder {
	return NewEncoderFormat(w, wal.FormatBinary)
}

// NewEncoderFormat returns an Encoder with an explicit payload format, so
// a leader serving -wal-format=json keeps its wire encoding aligned with
// its log encoding.
func NewEncoderFormat(w io.Writer, f wal.Format) *Encoder {
	return &Encoder{w: w, format: f}
}

// Encode writes one record as a frame.
func (e *Encoder) Encode(rec wal.Record) error {
	e.buf.Reset()
	if err := wal.EncodeFrameFormat(&e.buf, rec, e.format); err != nil {
		return err
	}
	_, err := e.w.Write(e.buf.Bytes())
	return err
}

// Decoder incrementally decodes a binary change stream. Errors classify
// three ways, mirroring the WAL's replay semantics:
//
//   - io.EOF: the stream ended cleanly on a frame boundary.
//   - io.ErrUnexpectedEOF: the stream ended mid-frame (torn) — for a
//     network stream this just means the connection dropped; reconnect and
//     resume from the cursor.
//   - anything else: corruption (bad length, CRC mismatch, undecodable
//     payload) and must be treated as fatal for the connection.
type Decoder struct {
	r     *bufio.Reader
	frame []byte
}

// NewDecoder returns a Decoder reading frames from r.
func NewDecoder(r io.Reader) *Decoder {
	return &Decoder{r: bufio.NewReaderSize(r, 64*1024)}
}

// Next decodes and returns the next record.
func (d *Decoder) Next() (wal.Record, error) {
	var hdr [wal.FrameHeaderSize]byte
	if _, err := io.ReadFull(d.r, hdr[:]); err != nil {
		return wal.Record{}, err // io.EOF clean, io.ErrUnexpectedEOF torn
	}
	n := binary.LittleEndian.Uint32(hdr[0:4])
	if n > wal.MaxRecordSize {
		return wal.Record{}, fmt.Errorf("cdc: frame declares %d payload bytes (corrupt length)", n)
	}
	need := wal.FrameHeaderSize + int(n)
	if cap(d.frame) < need {
		d.frame = make([]byte, need)
	}
	d.frame = d.frame[:need]
	copy(d.frame, hdr[:])
	if _, err := io.ReadFull(d.r, d.frame[wal.FrameHeaderSize:]); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return wal.Record{}, err
	}
	rec, _, torn, err := wal.DecodeFrame(d.frame, 0)
	if err != nil {
		return wal.Record{}, err
	}
	if torn {
		// Unreachable: the frame was assembled to its declared length.
		return wal.Record{}, io.ErrUnexpectedEOF
	}
	return rec, nil
}

// Buffered reports whether already-received bytes remain undecoded, so an
// applier can batch: keep accumulating while data is in hand, apply when
// the stream would block.
func (d *Decoder) Buffered() bool { return d.r.Buffered() > 0 }
