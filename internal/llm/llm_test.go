package llm

import (
	"fmt"
	"math"
	"strings"
	"testing"

	"repro/internal/table"
)

func TestCompleteTupleAccuracyConverges(t *testing.T) {
	g := NewGenerator(1)
	const n = 5000
	correct := 0
	for i := 0; i < n; i++ {
		key := fmt.Sprintf("fact-%d", i)
		got := g.CompleteTuple(key, "truth", []string{"alt1", "alt2", "truth"})
		if got == "truth" {
			correct++
		}
	}
	acc := float64(correct) / n
	if math.Abs(acc-DefaultTupleAccuracy) > 0.02 {
		t.Errorf("tuple accuracy = %v, want ~%v", acc, DefaultTupleAccuracy)
	}
}

func TestCompleteTupleDeterministic(t *testing.T) {
	g1 := NewGenerator(7)
	g2 := NewGenerator(7)
	for i := 0; i < 100; i++ {
		key := fmt.Sprintf("k%d", i)
		if g1.CompleteTuple(key, "v", []string{"a", "b"}) != g2.CompleteTuple(key, "v", []string{"a", "b"}) {
			t.Fatal("generator not deterministic")
		}
	}
}

func TestCompleteTupleWrongValuesAreInDomain(t *testing.T) {
	g := NewGenerator(2, WithTupleAccuracy(0)) // always hallucinate
	alts := []string{"x", "y", "truth", ""}
	for i := 0; i < 200; i++ {
		got := g.CompleteTuple(fmt.Sprintf("k%d", i), "truth", alts)
		if got == "truth" || got == "" {
			t.Fatalf("hallucination produced %q", got)
		}
		if got != "x" && got != "y" {
			t.Fatalf("hallucination out of domain: %q", got)
		}
	}
}

func TestCompleteTupleFabricatesWithoutAlternatives(t *testing.T) {
	g := NewGenerator(3, WithTupleAccuracy(0))
	got := g.CompleteTuple("k", "1994", nil)
	if got == "1994" {
		t.Error("fabricated value equals truth")
	}
	if _, err := fmt.Sscanf(got, "%d", new(int)); err != nil {
		t.Errorf("numeric truth fabricated non-numeric %q", got)
	}
	// String truth gets a marker suffix.
	got = g.CompleteTuple("k2", "some name", nil)
	if got == "some name" {
		t.Error("string fabrication equals truth")
	}
	// Empty truth.
	if got := g.CompleteTuple("k3", "", nil); got != "unknown" {
		t.Errorf("empty truth fabricated %q", got)
	}
}

func TestJudgeClaimAccuracyConverges(t *testing.T) {
	g := NewGenerator(4)
	const n = 5000
	correct := 0
	for i := 0; i < n; i++ {
		label := i%2 == 0
		if g.JudgeClaim(fmt.Sprintf("c%d", i), label) == label {
			correct++
		}
	}
	acc := float64(correct) / n
	if math.Abs(acc-DefaultClaimAccuracy) > 0.02 {
		t.Errorf("claim accuracy = %v, want ~%v", acc, DefaultClaimAccuracy)
	}
}

func TestAccuracyOverrides(t *testing.T) {
	g := NewGenerator(5, WithTupleAccuracy(1), WithClaimAccuracy(1))
	for i := 0; i < 50; i++ {
		if got := g.CompleteTuple(fmt.Sprintf("k%d", i), "v", []string{"a"}); got != "v" {
			t.Fatal("accuracy=1 generator errs")
		}
		if !g.JudgeClaim(fmt.Sprintf("c%d", i), true) {
			t.Fatal("accuracy=1 judge errs")
		}
	}
}

func TestShiftDigits(t *testing.T) {
	if got := shiftDigits("1994", 3); got != "1997" {
		t.Errorf("shiftDigits = %q", got)
	}
	if got := shiftDigits("week 7 result", 2); got != "week 9 result" {
		t.Errorf("shiftDigits embedded = %q", got)
	}
	if got := shiftDigits("no digits", 2); got != "no digits ii" {
		t.Errorf("shiftDigits fallback = %q", got)
	}
}

func TestPromptTemplates(t *testing.T) {
	tbl := table.New("t", "my table", []string{"a", "b"})
	tbl.MustAppendRow("1", table.Missing)
	p := TupleCompletionPrompt(tbl)
	for _, want := range []string{"Question:", "my table", "NaN", "Please fill the missing values"} {
		if !strings.Contains(p, want) {
			t.Errorf("tuple prompt missing %q:\n%s", want, p)
		}
	}
	v := VerificationPrompt("the evidence", "the data")
	for _, want := range []string{
		"Please use the evidence below to validate the generative data.",
		"Evidence: the evidence",
		"Generative Data: the data",
		"Verified/Refuted/Not Related",
	} {
		if !strings.Contains(v, want) {
			t.Errorf("verification prompt missing %q:\n%s", want, v)
		}
	}
}
