// Package llm simulates the generative AI whose outputs VerifAI verifies.
//
// The paper measures exactly one property of the generator: its accuracy
// without evidence — 0.52 when imputing missing tuple values and 0.54 when
// judging textual claims ("The accuracy of ChatGPT in imputing missing
// values for tuples and determining the correctness of claims is only 0.52
// and 0.54, respectively, in the absence of additional data"). This package
// reproduces those statistics deterministically: the simulated model "knows"
// each fact with the configured probability, keyed by a stable hash of the
// fact's identity, and produces a plausible wrong answer otherwise.
//
// It also carries the paper's prompt templates, so the examples and the CLI
// show the same interaction shape as the original system.
package llm

import (
	"strings"

	"repro/internal/detrand"
	"repro/internal/table"
)

// Defaults are the no-evidence accuracies the paper reports for ChatGPT.
const (
	// DefaultTupleAccuracy is the probability an imputed cell is correct.
	DefaultTupleAccuracy = 0.52
	// DefaultClaimAccuracy is the probability a claim judgment is correct.
	DefaultClaimAccuracy = 0.54
)

// Generator simulates a large language model completing tuples and judging
// claims from parametric "world knowledge" alone.
type Generator struct {
	seed          uint64
	tupleAccuracy float64
	claimAccuracy float64
}

// Option configures a Generator.
type Option func(*Generator)

// WithTupleAccuracy overrides the tuple-imputation accuracy.
func WithTupleAccuracy(p float64) Option {
	return func(g *Generator) { g.tupleAccuracy = p }
}

// WithClaimAccuracy overrides the claim-judgment accuracy.
func WithClaimAccuracy(p float64) Option {
	return func(g *Generator) { g.claimAccuracy = p }
}

// NewGenerator returns a simulated generator seeded by seed.
func NewGenerator(seed uint64, opts ...Option) *Generator {
	g := &Generator{
		seed:          seed,
		tupleAccuracy: DefaultTupleAccuracy,
		claimAccuracy: DefaultClaimAccuracy,
	}
	for _, o := range opts {
		o(g)
	}
	return g
}

// CompleteTuple imputes the value of the masked attribute of a tuple.
// factKey stably identifies the fact (e.g. "tableID#row#attr"); truth is the
// ground-truth value; alternatives are plausible wrong values of the same
// attribute domain (values from other rows). The model returns truth with
// the configured accuracy and otherwise a deterministic wrong alternative.
func (g *Generator) CompleteTuple(factKey, truth string, alternatives []string) string {
	if detrand.Bernoulli(g.tupleAccuracy, g.seed, "tuple", factKey) {
		return truth
	}
	// Hallucinate: pick an alternative different from the truth.
	var alts []string
	for _, a := range alternatives {
		if a != truth && a != "" {
			alts = append(alts, a)
		}
	}
	if len(alts) == 0 {
		// No in-domain alternative; fabricate a near-miss.
		return fabricate(truth, g.seed, factKey)
	}
	i := int(detrand.Hash(g.seed, "alt", factKey) % uint64(len(alts)))
	return alts[i]
}

// JudgeClaim returns the model's no-evidence true/false judgment of a claim.
// factKey stably identifies the claim; label is its ground truth. The
// judgment is correct with the configured claim accuracy.
func (g *Generator) JudgeClaim(factKey string, label bool) bool {
	if detrand.Bernoulli(g.claimAccuracy, g.seed, "claim", factKey) {
		return label
	}
	return !label
}

// fabricate produces a deterministic plausible-but-wrong value: numeric
// truths get shifted, strings get a generic substitute.
func fabricate(truth string, seed uint64, key string) string {
	if truth == "" {
		return "unknown"
	}
	// Numeric-looking truth: shift the last digit run.
	digits := strings.IndexFunc(truth, func(r rune) bool { return r >= '0' && r <= '9' })
	if digits >= 0 {
		shift := 1 + int(detrand.Hash(seed, "shift", key)%9)
		return shiftDigits(truth, shift)
	}
	return truth + " ii"
}

// shiftDigits adds shift to the first digit run in s, preserving the rest.
func shiftDigits(s string, shift int) string {
	start := -1
	end := -1
	for i, r := range s {
		if r >= '0' && r <= '9' {
			if start < 0 {
				start = i
			}
			end = i + 1
		} else if start >= 0 {
			break
		}
	}
	if start < 0 {
		return s + " ii"
	}
	n := 0
	for _, r := range s[start:end] {
		n = n*10 + int(r-'0')
	}
	n += shift
	var b strings.Builder
	b.WriteString(s[:start])
	b.WriteString(itoa(n))
	b.WriteString(s[end:])
	return b.String()
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// TupleCompletionPrompt renders the paper's tuple-completion prompt template
// for a table containing Missing cells.
func TupleCompletionPrompt(t *table.Table) string {
	var b strings.Builder
	b.WriteString("Question:\n")
	b.WriteString(t.String())
	b.WriteString("Please fill the missing values, annotated by ")
	b.WriteString(table.Missing)
	b.WriteString("\n")
	return b.String()
}

// VerificationPrompt renders the paper's verification prompt template for a
// (generated data, evidence) pair.
func VerificationPrompt(evidence, generated string) string {
	var b strings.Builder
	b.WriteString("Please use the evidence below to validate the generative data.\n")
	b.WriteString("Evidence: ")
	b.WriteString(evidence)
	b.WriteString("\nGenerative Data: ")
	b.WriteString(generated)
	b.WriteString("\nResult: Verified/Refuted/Not Related + Further explanation\n")
	return b.String()
}
