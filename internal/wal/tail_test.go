package wal

import (
	"sync"
	"testing"
	"time"

	"repro/internal/datalake"
)

func srcRecord(v uint64, id string) Record {
	return Record{Version: v, Kind: KindSource, Source: &datalake.Source{ID: id, Name: id, TrustPrior: 0.5}}
}

// drain reads until the reader reports caught-up, failing on error.
func drain(t *testing.T, r *TailReader) []Record {
	t.Helper()
	var out []Record
	for {
		rec, ok, err := r.Next()
		if err != nil {
			t.Fatalf("tail: %v", err)
		}
		if !ok {
			return out
		}
		out = append(out, rec)
	}
}

func TestTailReaderStreamsExistingAndLive(t *testing.T) {
	l, _ := openReplay(t, t.TempDir(), Options{Sync: SyncNone})
	defer l.Close()

	if err := l.Append(docRecord(1, "d1"), docRecord(2, "d2"), srcRecord(2, "s1")); err != nil {
		t.Fatal(err)
	}

	r := l.Tail(0)
	got := drain(t, r)
	if len(got) != 3 || got[0].Version != 1 || got[1].Version != 2 || got[2].Kind != KindSource {
		t.Fatalf("initial drain = %+v", got)
	}

	// Caught up: repeated Next stays ok=false without error.
	if _, ok, err := r.Next(); ok || err != nil {
		t.Fatalf("caught-up Next = ok=%v err=%v", ok, err)
	}

	// Live append becomes visible to the same reader.
	if err := l.Append(docRecord(3, "d3")); err != nil {
		t.Fatal(err)
	}
	got = drain(t, r)
	if len(got) != 1 || got[0].Version != 3 {
		t.Fatalf("live drain = %+v", got)
	}
}

func TestTailReaderCursorSkipsAndFilters(t *testing.T) {
	l, _ := openReplay(t, t.TempDir(), Options{Sync: SyncNone, SegmentBytes: 1})
	defer l.Close()

	// SegmentBytes=1 seals a segment per append: 1|2|s1|3|4 across segments.
	for _, rec := range []Record{docRecord(1, "d1"), docRecord(2, "d2"), srcRecord(2, "s1"), docRecord(3, "d3"), docRecord(4, "d4")} {
		if err := l.Append(rec); err != nil {
			t.Fatal(err)
		}
	}

	got := drain(t, l.Tail(2))
	// Sealed segments with maxVersion <= 2 are skipped wholesale (including
	// the source-only one — the cursor contract says it was consumed);
	// remaining events filter on version > 2.
	if len(got) != 2 || got[0].Version != 3 || got[1].Version != 4 {
		t.Fatalf("tail(2) = %+v", got)
	}

	// Cursor 0 must deliver everything, source-only segments included.
	got = drain(t, l.Tail(0))
	if len(got) != 5 {
		t.Fatalf("tail(0) delivered %d records, want 5", len(got))
	}

	// Cursor at the tip delivers nothing.
	if got = drain(t, l.Tail(4)); len(got) != 0 {
		t.Fatalf("tail(4) = %+v", got)
	}
}

func TestTailReaderSurvivesRotation(t *testing.T) {
	l, _ := openReplay(t, t.TempDir(), Options{Sync: SyncNone})
	defer l.Close()

	if err := l.Append(docRecord(1, "d1")); err != nil {
		t.Fatal(err)
	}
	r := l.Tail(0)
	if got := drain(t, r); len(got) != 1 {
		t.Fatalf("pre-rotation drain = %+v", got)
	}
	if _, err := l.Rotate(); err != nil {
		t.Fatal(err)
	}
	if err := l.Append(docRecord(2, "d2")); err != nil {
		t.Fatal(err)
	}
	got := drain(t, r)
	if len(got) != 1 || got[0].Version != 2 {
		t.Fatalf("post-rotation drain = %+v", got)
	}
}

func TestTailReaderTruncatedUnderneath(t *testing.T) {
	l, _ := openReplay(t, t.TempDir(), Options{Sync: SyncNone, SegmentBytes: 1})
	defer l.Close()

	for v := uint64(1); v <= 3; v++ {
		if err := l.Append(docRecord(v, "d")); err != nil {
			t.Fatal(err)
		}
	}
	r := l.Tail(0)
	// Read one record so the reader is pinned to the first (sealed) segment,
	// then truncate it away.
	if rec, ok, err := r.Next(); err != nil || !ok || rec.Version != 1 {
		t.Fatalf("first Next = %+v ok=%v err=%v", rec, ok, err)
	}
	if err := l.TruncateThrough(3, 1<<30); err != nil {
		t.Fatal(err)
	}
	if _, _, err := r.Next(); err != ErrTailTruncated {
		t.Fatalf("Next after truncation = %v, want ErrTailTruncated", err)
	}
}

func TestTailReaderConcurrentWithAppends(t *testing.T) {
	l, _ := openReplay(t, t.TempDir(), Options{Sync: SyncNone, SegmentBytes: 512})
	defer l.Close()

	const total = 500
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for v := uint64(1); v <= total; v++ {
			if err := l.Append(docRecord(v, "doc")); err != nil {
				t.Error(err)
				return
			}
		}
	}()

	r := l.Tail(0)
	var want uint64 = 1
	deadline := time.Now().Add(10 * time.Second)
	for want <= total {
		rec, ok, err := r.Next()
		if err != nil {
			t.Fatalf("tail at version %d: %v", want, err)
		}
		if !ok {
			if time.Now().After(deadline) {
				t.Fatalf("reader stalled at version %d", want)
			}
			time.Sleep(time.Millisecond)
			continue
		}
		if rec.Version != want {
			t.Fatalf("got version %d, want %d (gap or reorder)", rec.Version, want)
		}
		want++
	}
	wg.Wait()
}
