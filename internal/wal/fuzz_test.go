package wal

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"reflect"
	"testing"
)

// fuzzSeedFrames builds a buffer of n valid frames for the fuzz corpus,
// alternating payload encodings so the corpus exercises the format-tag
// dispatch from the first run.
func fuzzSeedFrames(n int) []byte {
	var buf bytes.Buffer
	for v := 1; v <= n; v++ {
		f := FormatBinary
		if v%2 == 0 {
			f = FormatJSON
		}
		if err := appendFrame(&buf, docRecord(uint64(v), fmt.Sprintf("d%d", v)), f); err != nil {
			panic(err)
		}
	}
	return buf.Bytes()
}

// FuzzDecodeFrames fuzzes the WAL's record decoder with arbitrary bytes —
// the exact input replay sees after a crash left a torn tail, a partial
// header, bit rot, or garbage in a segment file. The decoder must never
// panic, never allocate from a corrupt length, always make forward
// progress on valid frames, and classify every failure as either torn
// (quiet: an interrupted append) or corrupt (loud error) — silently
// skipping bytes is data loss.
func FuzzDecodeFrames(f *testing.F) {
	valid := fuzzSeedFrames(3)
	f.Add(valid)
	f.Add(valid[:len(valid)-5])                     // torn final frame
	f.Add(valid[:frameHeaderSize-2])                // torn header
	f.Add([]byte{})                                 // empty segment
	f.Add([]byte("not a frame at allated garbage")) // garbage
	// Corrupt CRC on an otherwise intact frame.
	crcFlip := append([]byte(nil), valid...)
	crcFlip[5] ^= 0xff
	f.Add(crcFlip)
	// Corrupt payload byte (CRC mismatch downstream).
	payloadFlip := append([]byte(nil), valid...)
	payloadFlip[frameHeaderSize+3] ^= 0x10
	f.Add(payloadFlip)
	// Absurd declared length (must be rejected, not allocated).
	huge := make([]byte, frameHeaderSize)
	binary.LittleEndian.PutUint32(huge[0:4], uint32(maxRecordSize+1))
	f.Add(huge)

	f.Fuzz(func(t *testing.T, data []byte) {
		off := 0
		for off < len(data) {
			rec, next, torn, err := decodeFrame(data, off)
			if torn && err != nil {
				t.Fatalf("offset %d: both torn and corrupt (%v)", off, err)
			}
			if torn || err != nil {
				// Either outcome ends replay; a torn tail is truncated,
				// corruption is surfaced. Both are terminal, never skipped.
				return
			}
			if next <= off {
				t.Fatalf("offset %d: decode made no progress (next %d)", off, next)
			}
			if next > len(data) {
				t.Fatalf("offset %d: decode overran the buffer (next %d > %d)", off, next, len(data))
			}
			// A frame that decodes must round-trip: its payload length is
			// consistent with the consumed bytes.
			if rec.Kind == "" && rec.Version == 0 && rec.Table == nil && rec.Doc == nil && rec.Triple == nil && rec.Source == nil {
				// Legal (an empty JSON object) — just must not panic.
				_ = rec
			}
			off = next
		}
	})
}

// FuzzDecodeBinaryRecord fuzzes the binary payload decoder directly. Each
// fuzzed byte string is also wrapped in a freshly computed valid frame
// (length + CRC) and fed through decodeFrame, modeling CRC-valid garbage —
// a buggy writer, not bit rot — which is exactly the input the binReader
// bounds checks exist for. Invariants: never panic, never allocate from a
// corrupt count, frame classification stays exclusive (torn XOR corrupt),
// and any payload that decodes must survive an encode/decode round trip.
func FuzzDecodeBinaryRecord(f *testing.F) {
	for v := 1; v <= 4; v++ {
		f.Add(encodeRecordBinary(nil, docRecord(uint64(v), fmt.Sprintf("d%d", v))))
	}
	f.Add(encodeRecordBinary(nil, Record{Version: 9, Kind: "heartbeat"}))
	f.Add([]byte{binTag})
	f.Add([]byte{binTag, binKindTable, 1, 0})
	// Table payload with an absurd column count (must be rejected before
	// allocating): tag, table code, version 1, ts 0, three empty strings,
	// then ncols = 0xFFFFFFF.
	f.Add([]byte{binTag, binKindTable, 1, 0, 0, 0, 0, 0xFF, 0xFF, 0xFF, 0x7F})

	f.Fuzz(func(t *testing.T, payload []byte) {
		rec, err := decodeRecordBinary(payload)
		if err == nil {
			// Whatever decoded must round-trip as a record (bytes may differ:
			// uvarints are not canonical, so compare structurally).
			again, err2 := decodeRecordBinary(encodeRecordBinary(nil, rec))
			if err2 != nil {
				t.Fatalf("re-encode of decoded record does not decode: %v (rec %+v)", err2, rec)
			}
			if !reflect.DeepEqual(again, rec) {
				t.Fatalf("round trip diverged\n got: %+v\nwant: %+v", again, rec)
			}
		}

		// The same payload behind a valid CRC frame: decodeFrame must agree
		// with the payload decoder and classify failures as corruption
		// (loud), never torn — the frame itself is complete.
		frame := buildFrame(payload)
		frec, next, torn, ferr := decodeFrame(frame, 0)
		if torn {
			t.Fatalf("complete CRC-valid frame classified as torn (payload %x)", payload)
		}
		if len(payload) > 0 && payload[0] == binTag {
			if (err == nil) != (ferr == nil) {
				t.Fatalf("frame/payload decoders disagree: payload err %v, frame err %v", err, ferr)
			}
		}
		if ferr == nil {
			if next != len(frame) {
				t.Fatalf("frame decode consumed %d of %d bytes", next, len(frame))
			}
			if len(payload) > 0 && payload[0] == binTag && !reflect.DeepEqual(frec, rec) {
				t.Fatalf("frame decode diverged from payload decode\n got: %+v\nwant: %+v", frec, rec)
			}
		}
	})
}

// TestReplayStreamsAllRecords checks Log.Replay re-reads everything from
// disk in append order across rotations — the streaming path recovery
// uses instead of buffering the tail in memory.
func TestReplayStreamsAllRecords(t *testing.T) {
	dir := t.TempDir()
	l, _ := openReplay(t, dir, Options{Sync: SyncNone, SegmentBytes: 256})
	const n = 40
	for v := uint64(1); v <= n; v++ {
		if err := l.Append(docRecord(v, fmt.Sprintf("d%03d", v))); err != nil {
			t.Fatal(err)
		}
	}
	if l.Stats().Segments < 3 {
		t.Fatalf("want >= 3 segments, got %d", l.Stats().Segments)
	}
	var got []Record
	if err := l.Replay(func(r Record) error {
		got = append(got, r)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != n {
		t.Fatalf("Replay delivered %d records, want %d", len(got), n)
	}
	for i, r := range got {
		if r.Version != uint64(i+1) {
			t.Fatalf("record %d has version %d, want %d (order lost)", i, r.Version, i+1)
		}
	}
	// Replay is repeatable (it reads from disk, consuming nothing).
	count := 0
	if err := l.Replay(func(Record) error { count++; return nil }); err != nil {
		t.Fatal(err)
	}
	if count != n {
		t.Fatalf("second Replay delivered %d records, want %d", count, n)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
}
