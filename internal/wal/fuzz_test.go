package wal

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"testing"
)

// fuzzSeedFrames builds a buffer of n valid frames for the fuzz corpus.
func fuzzSeedFrames(n int) []byte {
	var buf bytes.Buffer
	for v := 1; v <= n; v++ {
		if err := appendFrame(&buf, docRecord(uint64(v), fmt.Sprintf("d%d", v))); err != nil {
			panic(err)
		}
	}
	return buf.Bytes()
}

// FuzzDecodeFrames fuzzes the WAL's record decoder with arbitrary bytes —
// the exact input replay sees after a crash left a torn tail, a partial
// header, bit rot, or garbage in a segment file. The decoder must never
// panic, never allocate from a corrupt length, always make forward
// progress on valid frames, and classify every failure as either torn
// (quiet: an interrupted append) or corrupt (loud error) — silently
// skipping bytes is data loss.
func FuzzDecodeFrames(f *testing.F) {
	valid := fuzzSeedFrames(3)
	f.Add(valid)
	f.Add(valid[:len(valid)-5])                     // torn final frame
	f.Add(valid[:frameHeaderSize-2])                // torn header
	f.Add([]byte{})                                 // empty segment
	f.Add([]byte("not a frame at allated garbage")) // garbage
	// Corrupt CRC on an otherwise intact frame.
	crcFlip := append([]byte(nil), valid...)
	crcFlip[5] ^= 0xff
	f.Add(crcFlip)
	// Corrupt payload byte (CRC mismatch downstream).
	payloadFlip := append([]byte(nil), valid...)
	payloadFlip[frameHeaderSize+3] ^= 0x10
	f.Add(payloadFlip)
	// Absurd declared length (must be rejected, not allocated).
	huge := make([]byte, frameHeaderSize)
	binary.LittleEndian.PutUint32(huge[0:4], uint32(maxRecordSize+1))
	f.Add(huge)

	f.Fuzz(func(t *testing.T, data []byte) {
		off := 0
		for off < len(data) {
			rec, next, torn, err := decodeFrame(data, off)
			if torn && err != nil {
				t.Fatalf("offset %d: both torn and corrupt (%v)", off, err)
			}
			if torn || err != nil {
				// Either outcome ends replay; a torn tail is truncated,
				// corruption is surfaced. Both are terminal, never skipped.
				return
			}
			if next <= off {
				t.Fatalf("offset %d: decode made no progress (next %d)", off, next)
			}
			if next > len(data) {
				t.Fatalf("offset %d: decode overran the buffer (next %d > %d)", off, next, len(data))
			}
			// A frame that decodes must round-trip: its payload length is
			// consistent with the consumed bytes.
			if rec.Kind == "" && rec.Version == 0 && rec.Table == nil && rec.Doc == nil && rec.Triple == nil && rec.Source == nil {
				// Legal (an empty JSON object) — just must not panic.
				_ = rec
			}
			off = next
		}
	})
}

// TestReplayStreamsAllRecords checks Log.Replay re-reads everything from
// disk in append order across rotations — the streaming path recovery
// uses instead of buffering the tail in memory.
func TestReplayStreamsAllRecords(t *testing.T) {
	dir := t.TempDir()
	l, _ := openReplay(t, dir, Options{Sync: SyncNone, SegmentBytes: 256})
	const n = 40
	for v := uint64(1); v <= n; v++ {
		if err := l.Append(docRecord(v, fmt.Sprintf("d%03d", v))); err != nil {
			t.Fatal(err)
		}
	}
	if l.Stats().Segments < 3 {
		t.Fatalf("want >= 3 segments, got %d", l.Stats().Segments)
	}
	var got []Record
	if err := l.Replay(func(r Record) error {
		got = append(got, r)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != n {
		t.Fatalf("Replay delivered %d records, want %d", len(got), n)
	}
	for i, r := range got {
		if r.Version != uint64(i+1) {
			t.Fatalf("record %d has version %d, want %d (order lost)", i, r.Version, i+1)
		}
	}
	// Replay is repeatable (it reads from disk, consuming nothing).
	count := 0
	if err := l.Replay(func(Record) error { count++; return nil }); err != nil {
		t.Fatal(err)
	}
	if count != n {
		t.Fatalf("second Replay delivered %d records, want %d", count, n)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
}
