package wal

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"reflect"
	"strings"
	"testing"

	"repro/internal/datalake"
	"repro/internal/doc"
	"repro/internal/kg"
	"repro/internal/table"
)

// buildFrame wraps an arbitrary payload in a valid frame header (correct
// length and CRC), so tests and fuzzers can reach the payload decoder
// without dying at the CRC check.
func buildFrame(payload []byte) []byte {
	frame := make([]byte, frameHeaderSize, frameHeaderSize+len(payload))
	binary.LittleEndian.PutUint32(frame[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:8], crc32.Checksum(payload, crcTable))
	return append(frame, payload...)
}

func readFileT(t *testing.T, path string) []byte {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func writeFileT(t *testing.T, path string, data []byte) {
	t.Helper()
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestParseFormat(t *testing.T) {
	cases := []struct {
		in      string
		want    Format
		wantErr bool
	}{
		{"", FormatBinary, false},
		{"binary", FormatBinary, false},
		{"json", FormatJSON, false},
		{"JSON", 0, true},
		{"protobuf", 0, true},
	}
	for _, c := range cases {
		got, err := ParseFormat(c.in)
		if (err != nil) != c.wantErr {
			t.Errorf("ParseFormat(%q) err = %v, wantErr %v", c.in, err, c.wantErr)
			continue
		}
		if err == nil && got != c.want {
			t.Errorf("ParseFormat(%q) = %v, want %v", c.in, got, c.want)
		}
	}
	if FormatBinary.String() != "binary" || FormatJSON.String() != "json" {
		t.Errorf("Format.String: binary=%q json=%q", FormatBinary, FormatJSON)
	}
}

// codecCases covers every record kind the system constructs, including the
// heartbeat shape (a Kind with no payload struct, encoded via the named
// fallback) and awkward payloads: empty strings, unicode, ragged rows,
// negative trust deltas, a zero TS.
func codecCases() []Record {
	return []Record{
		{Version: 1, Kind: KindDocument, TS: 1712345678901234567,
			Doc: &doc.Document{ID: "d1", Title: "títle ünicode", Text: "body text\nwith newline", EntityID: "e9", SourceID: "s1"}},
		{Version: 2, Kind: KindTable, TS: 2,
			Table: &table.Table{ID: "t1", Caption: "1954 u.s. open", SourceID: "s1",
				Columns: []string{"player", "place", "cash prize"},
				Rows:    [][]string{{"tommy bolt", "3", "1500"}, {"sam snead"}, nil}}},
		{Version: 3, Kind: KindTriple,
			Triple: &kg.Triple{Subject: "meagan good", Predicate: "starred in", Object: "", SourceID: "s2"}},
		{Version: 4, Kind: KindSource,
			Source: &datalake.Source{ID: "s1", Name: "golf almanac", TrustPrior: 0.85}},
		{Version: 5, Kind: "heartbeat"},
		{Version: 6, Kind: KindTable}, // structural kind, nil payload: named fallback
		{Kind: KindDocument, Doc: &doc.Document{}},
	}
}

func TestBinaryRecordRoundTrip(t *testing.T) {
	for i, rec := range codecCases() {
		payload := encodeRecordBinary(nil, rec)
		if payload[0] != binTag {
			t.Fatalf("case %d: payload tag = 0x%02x, want 0x%02x", i, payload[0], binTag)
		}
		got, err := decodeRecordBinary(payload)
		if err != nil {
			t.Fatalf("case %d: decode: %v", i, err)
		}
		if !reflect.DeepEqual(got, rec) {
			t.Errorf("case %d: round trip mismatch\n got: %+v\nwant: %+v", i, got, rec)
		}
	}
}

// TestFrameRoundTripBothFormats drives the full frame path (header + CRC +
// payload) for each encoding and checks the decoder needs no format
// knowledge.
func TestFrameRoundTripBothFormats(t *testing.T) {
	for _, f := range []Format{FormatBinary, FormatJSON} {
		t.Run(f.String(), func(t *testing.T) {
			var buf bytes.Buffer
			recs := codecCases()
			for _, rec := range recs {
				if err := appendFrame(&buf, rec, f); err != nil {
					t.Fatal(err)
				}
			}
			data, off := buf.Bytes(), 0
			for i, want := range recs {
				rec, next, torn, err := decodeFrame(data, off)
				if err != nil || torn {
					t.Fatalf("record %d: torn=%v err=%v", i, torn, err)
				}
				if !reflect.DeepEqual(rec, want) {
					t.Errorf("record %d mismatch\n got: %+v\nwant: %+v", i, rec, want)
				}
				off = next
			}
			if off != len(data) {
				t.Fatalf("decoded through %d of %d bytes", off, len(data))
			}
		})
	}
}

// TestBinaryEncodingSmaller pins the tentpole's size claim at the codec
// level: the binary payload must be at least 30% smaller than JSON for a
// representative record mix (the benchmark gate asserts the same bound on
// whole frames, CI-measured).
func TestBinaryEncodingSmaller(t *testing.T) {
	var jsonBytes, binBytes int
	for _, rec := range codecCases() {
		j, err := json.Marshal(rec)
		if err != nil {
			t.Fatal(err)
		}
		jsonBytes += len(j)
		binBytes += len(encodeRecordBinary(nil, rec))
	}
	if float64(binBytes) > 0.7*float64(jsonBytes) {
		t.Errorf("binary payloads are %d bytes vs %d JSON (ratio %.2f, want <= 0.70)",
			binBytes, jsonBytes, float64(binBytes)/float64(jsonBytes))
	}
}

func TestBinaryDecodeCorruptionClassified(t *testing.T) {
	valid := encodeRecordBinary(nil, codecCases()[0])
	cases := []struct {
		name    string
		payload []byte
		substr  string
	}{
		{"empty payload", []byte{}, "no kind code"},
		{"tag only", []byte{binTag}, "no kind code"},
		{"unknown kind code", []byte{binTag, 0xEE, 1, 0}, "unknown binary kind code"},
		{"truncated mid-string", valid[:len(valid)-3], ""},
		{"trailing garbage", append(append([]byte{}, valid...), 0xAB), "trailing bytes"},
		{"overlong string length", append(append([]byte{}, valid[:4]...), 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x01), ""},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := decodeRecordBinary(c.payload)
			if err == nil {
				t.Fatal("corrupt payload decoded without error")
			}
			if c.substr != "" && !strings.Contains(err.Error(), c.substr) {
				t.Errorf("error %q does not mention %q", err, c.substr)
			}
		})
	}
}

// TestDecodeFrameUnknownTag: a CRC-valid frame whose payload starts with
// neither 0x7B nor 0x01 is corruption (loud), never torn (quiet).
func TestDecodeFrameUnknownTag(t *testing.T) {
	frame := buildFrame([]byte{0x42, 0x00, 0x00})
	_, _, torn, err := decodeFrame(frame, 0)
	if torn {
		t.Fatal("unknown tag classified as torn")
	}
	if err == nil || !strings.Contains(err.Error(), "unknown payload format tag") {
		t.Fatalf("err = %v, want unknown-format-tag corruption", err)
	}
	// Empty payload: same classification (loud).
	_, _, torn, err = decodeFrame(buildFrame(nil), 0)
	if torn || err == nil {
		t.Fatalf("empty payload: torn=%v err=%v, want loud error", torn, err)
	}
}

// TestMixedFormatReplayAndTail writes one log under alternating formats
// across reopens and checks that replay, a fresh Open, and a TailReader
// all see every record in order — the no-migration guarantee.
func TestMixedFormatReplayAndTail(t *testing.T) {
	cases := []struct {
		name    string
		formats []Format
	}{
		{"json-then-binary", []Format{FormatJSON, FormatBinary}},
		{"binary-then-json", []Format{FormatBinary, FormatJSON}},
		{"interleaved", []Format{FormatJSON, FormatBinary, FormatJSON, FormatBinary}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			dir := t.TempDir()
			v := uint64(0)
			// Each phase reopens the SAME log dir under the next format and
			// appends into the same active segment: mixed-format segments,
			// not just mixed-format logs.
			for _, f := range c.formats {
				l, _ := openReplay(t, dir, Options{Sync: SyncNone, Format: f})
				for i := 0; i < 3; i++ {
					v++
					if err := l.Append(docRecord(v, fmt.Sprintf("d%03d", v))); err != nil {
						t.Fatal(err)
					}
				}
				if err := l.Close(); err != nil {
					t.Fatal(err)
				}
			}
			total := int(v)
			l, replayed := openReplay(t, dir, Options{Sync: SyncNone})
			defer l.Close()
			if len(replayed) != total {
				t.Fatalf("open replayed %d records, want %d", len(replayed), total)
			}
			var streamed []Record
			if err := l.Replay(func(r Record) error { streamed = append(streamed, r); return nil }); err != nil {
				t.Fatal(err)
			}
			if len(streamed) != total {
				t.Fatalf("Replay delivered %d records, want %d", len(streamed), total)
			}
			tail := l.Tail(0)
			for i := 1; i <= total; i++ {
				rec, ok, err := tail.Next()
				if err != nil || !ok {
					t.Fatalf("tail record %d: ok=%v err=%v", i, ok, err)
				}
				if rec.Version != uint64(i) || rec.Doc == nil || rec.Doc.ID != fmt.Sprintf("d%03d", i) {
					t.Fatalf("tail record %d out of order or lossy: %+v", i, rec)
				}
			}
			if _, ok, err := tail.Next(); ok || err != nil {
				t.Fatalf("tail past end: ok=%v err=%v", ok, err)
			}
		})
	}
}

// TestDumpSegmentMixedFormats: the waldump primitive streams a mixed log
// as records (JSON-marshalable), reports a torn tail without truncating
// the file, and fails loudly on mid-segment corruption.
func TestDumpSegmentMixedFormats(t *testing.T) {
	dir := t.TempDir()
	l, _ := openReplay(t, dir, Options{Sync: SyncNone, Format: FormatJSON})
	if err := l.Append(docRecord(1, "a")); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l, _ = openReplay(t, dir, Options{Sync: SyncNone}) // binary default
	if err := l.Append(docRecord(2, "b"), docRecord(3, "c")); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	paths, err := SegmentFiles(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) == 0 {
		t.Fatal("no segment files listed")
	}
	var dumped []Record
	for _, p := range paths {
		torn, err := DumpSegment(p, func(r Record) error {
			if _, err := json.Marshal(r); err != nil {
				return err
			}
			dumped = append(dumped, r)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if torn != 0 {
			t.Fatalf("intact segment %s reports %d torn bytes", p, torn)
		}
	}
	if len(dumped) != 3 {
		t.Fatalf("dumped %d records, want 3", len(dumped))
	}
	for i, r := range dumped {
		if r.Version != uint64(i+1) {
			t.Fatalf("dump order lost: record %d has version %d", i, r.Version)
		}
	}

	// Torn tail: chop the last segment; dump must report it and leave the
	// file untouched.
	last := paths[len(paths)-1]
	data := readFileT(t, last)
	writeFileT(t, last, data[:len(data)-5])
	count := 0
	torn, err := DumpSegment(last, func(Record) error { count++; return nil })
	if err != nil {
		t.Fatal(err)
	}
	if torn == 0 {
		t.Fatal("torn tail not reported")
	}
	if after := readFileT(t, last); len(after) != len(data)-5 {
		t.Fatalf("DumpSegment modified the file: %d bytes, want %d", len(after), len(data)-5)
	}

	// Mid-segment corruption: loud error.
	bad := append([]byte{}, data...)
	bad[FrameHeaderSize+1] ^= 0xFF
	writeFileT(t, last, bad)
	if _, err := DumpSegment(last, func(Record) error { return nil }); err == nil {
		t.Fatal("mid-segment corruption dumped without error")
	}
}
