// Package wal implements the lake's write-ahead log: an append-only,
// length-prefixed, CRC-checksummed record log split into rotating segment
// files. The lake's commit section appends every mutation before it
// becomes visible, so a process restart replays the log (from the latest
// checkpoint) and loses no acknowledged write.
//
// Layout: <dir>/wal-<seq>.log, seq ascending. The highest-numbered segment
// is active (appended to); lower ones are sealed. A checkpoint rotates the
// active segment and deletes sealed segments whose records it covers.
// Record payloads are self-describing (a 1-byte format tag selects legacy
// JSON or the compact binary codec — see codec.go), so segments may mix
// encodings and a log written under either -wal-format replays unchanged.
//
// Durability is governed by the sync policy: SyncAlways fsyncs after every
// append (each acknowledged write survives power loss), SyncInterval
// fsyncs on a timer (a crash loses at most the last interval; process
// crashes alone lose nothing, the OS still has the pages), SyncNone leaves
// flushing to the OS. Replay tolerates a torn tail — a partial final
// record is dropped and the file truncated back to the last complete
// record — but fails loudly on mid-log corruption, which indicates real
// data loss rather than an interrupted append.
package wal

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/faultfs"
	"repro/internal/obs"
)

// SyncPolicy selects when appended records are fsynced to stable storage.
type SyncPolicy int

const (
	// SyncInterval fsyncs on a background timer (the default).
	SyncInterval SyncPolicy = iota
	// SyncAlways fsyncs after every append.
	SyncAlways
	// SyncNone never fsyncs explicitly (OS page cache decides).
	SyncNone
)

// String implements fmt.Stringer.
func (p SyncPolicy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncInterval:
		return "interval"
	case SyncNone:
		return "none"
	default:
		return fmt.Sprintf("SyncPolicy(%d)", int(p))
	}
}

// ParseSyncPolicy maps the flag spelling ("always", "interval", "none")
// onto a policy.
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch s {
	case "always":
		return SyncAlways, nil
	case "interval", "":
		return SyncInterval, nil
	case "none":
		return SyncNone, nil
	default:
		return 0, fmt.Errorf("wal: unknown sync policy %q (want always|interval|none)", s)
	}
}

// Options configure a log.
type Options struct {
	// Sync is the sync policy (default SyncInterval).
	Sync SyncPolicy
	// Interval is the SyncInterval fsync period; <= 0 means 100ms.
	Interval time.Duration
	// SegmentBytes rotates the active segment once it exceeds this size;
	// <= 0 means 16 MiB.
	SegmentBytes int64
	// Format is the payload encoding for newly appended records (default
	// FormatBinary). Decoding is self-describing, so reopening a log under
	// a different Format needs no migration — segments simply mix.
	Format Format
	// FS is the filesystem the log writes through (default the real OS).
	// The crash-consistency suite injects a faultfs.Faulty here.
	FS faultfs.FS
}

const (
	defaultInterval     = 100 * time.Millisecond
	defaultSegmentBytes = 16 << 20
	segmentPrefix       = "wal-"
	segmentSuffix       = ".log"
)

// segment is one log file's bookkeeping.
type segment struct {
	seq     int
	path    string
	bytes   int64
	records int
	// maxVersion is the highest event version in the segment (0 when it
	// holds no event records), used to decide checkpoint truncation.
	maxVersion uint64
}

// Stats summarizes the log for operational surfaces (/v1/stats).
type Stats struct {
	// Segments counts log files (sealed + active).
	Segments int
	// Bytes is the total size of all segments.
	Bytes int64
	// Records counts records across all segments.
	Records int
	// LastVersion is the highest event version ever appended or replayed.
	LastVersion uint64
	// TornBytes counts bytes dropped from the tail at open (a partial
	// final record from an interrupted append).
	TornBytes int64
}

// Log is an open write-ahead log. Append, Sync, Rotate, TruncateThrough,
// Replay, and Stats are safe for concurrent use.
type Log struct {
	dir  string
	opts Options
	fs   faultfs.FS

	mu     sync.Mutex
	segs   []segment
	active faultfs.File
	dirty  bool
	// sticky records an append failure that could not be rolled back
	// (truncate failed); every subsequent append refuses with it, so the
	// log never silently diverges from what replay will reconstruct.
	sticky      error
	lastVersion uint64
	tornBytes   int64
	closed      bool

	stop     chan struct{}
	syncDone chan struct{}

	// m holds the observability handles (nil-safe no-ops until SetMetrics
	// installs real ones).
	m logMetrics
}

// logMetrics are the log's instrumentation handles. All obs handles are
// nil-receiver-safe, so an uninstrumented log records into nothing at
// negligible cost.
type logMetrics struct {
	appendSec *obs.Histogram
	fsyncSec  *obs.Histogram
	records   *obs.Counter
	bytes     *obs.Counter
	rotations *obs.Counter
}

// SetMetrics registers the log's metrics in reg and installs the hot-path
// handles. Call once, before concurrent appends begin (durable.Store does
// this during assembly). Exported metric names are documented in
// README.md.
func (l *Log) SetMetrics(reg *obs.Registry) {
	l.m = logMetrics{
		appendSec: reg.HistogramBuckets("verifai_wal_append_seconds", "Latency of WAL appends, fsync included under the always policy.", obs.IOBuckets),
		fsyncSec:  reg.HistogramBuckets("verifai_wal_fsync_seconds", "Latency of WAL fsync calls (stalls show up here).", obs.IOBuckets),
		records:   reg.Counter("verifai_wal_appended_records_total", "Records appended to the WAL."),
		bytes:     reg.Counter("verifai_wal_appended_bytes_total", "Bytes appended to the WAL."),
		rotations: reg.Counter("verifai_wal_rotations_total", "Segment rotations (checkpoint forks and size rollovers)."),
	}
	reg.GaugeFunc("verifai_wal_segments", "Current WAL segment files (sealed + active).",
		func() float64 { return float64(l.Stats().Segments) })
	reg.GaugeFunc("verifai_wal_bytes", "Current total WAL size in bytes.",
		func() float64 { return float64(l.Stats().Bytes) })
}

// Open opens (or creates) the log in dir and replays every record through
// fn in append order. A torn final record is dropped and the file
// truncated; corruption anywhere else fails loudly. fn returning an error
// aborts the open. After Open returns, the log is positioned to append.
func Open(dir string, opts Options, fn func(Record) error) (*Log, error) {
	if opts.Interval <= 0 {
		opts.Interval = defaultInterval
	}
	if opts.SegmentBytes <= 0 {
		opts.SegmentBytes = defaultSegmentBytes
	}
	if opts.FS == nil {
		opts.FS = faultfs.OS
	}
	if err := opts.FS.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: mkdir: %w", err)
	}
	l := &Log{dir: dir, opts: opts, fs: opts.FS}
	seqs, err := listSegments(opts.FS, dir)
	if err != nil {
		return nil, err
	}
	for i, seq := range seqs {
		if err := l.replaySegment(seq, i == len(seqs)-1, fn); err != nil {
			return nil, err
		}
	}
	if len(l.segs) == 0 {
		if err := l.openSegment(1); err != nil {
			return nil, err
		}
	} else {
		last := &l.segs[len(l.segs)-1]
		f, err := l.fs.OpenFile(last.path, os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, fmt.Errorf("wal: open active segment: %w", err)
		}
		l.active = f
	}
	if opts.Sync == SyncInterval {
		l.stop = make(chan struct{})
		l.syncDone = make(chan struct{})
		go l.syncLoop()
	}
	return l, nil
}

// listSegments returns the segment sequence numbers in dir, ascending.
func listSegments(fs faultfs.FS, dir string) ([]int, error) {
	entries, err := fs.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("wal: read dir: %w", err)
	}
	var seqs []int
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, segmentPrefix) || !strings.HasSuffix(name, segmentSuffix) {
			continue
		}
		seq, err := strconv.Atoi(strings.TrimSuffix(strings.TrimPrefix(name, segmentPrefix), segmentSuffix))
		if err != nil {
			return nil, fmt.Errorf("wal: unparseable segment name %q", name)
		}
		seqs = append(seqs, seq)
	}
	sort.Ints(seqs)
	return seqs, nil
}

func segmentPath(dir string, seq int) string {
	return filepath.Join(dir, fmt.Sprintf("%s%08d%s", segmentPrefix, seq, segmentSuffix))
}

// replaySegment reads one segment, delivering records to fn. In the last
// (active) segment a torn tail is truncated away; anywhere else it is an
// error, as is any CRC or decode failure.
func (l *Log) replaySegment(seq int, last bool, fn func(Record) error) error {
	path := segmentPath(l.dir, seq)
	data, err := l.fs.ReadFile(path)
	if err != nil {
		return fmt.Errorf("wal: read segment: %w", err)
	}
	seg := segment{seq: seq, path: path}
	off := 0
	for off < len(data) {
		rec, next, torn, err := decodeFrame(data, off)
		if err != nil {
			return fmt.Errorf("wal: segment %s: %w", filepath.Base(path), err)
		}
		if torn {
			if !last {
				return fmt.Errorf("wal: segment %s: truncated record at offset %d in sealed segment", filepath.Base(path), off)
			}
			dropped := int64(len(data) - off)
			if err := l.fs.Truncate(path, int64(off)); err != nil {
				return fmt.Errorf("wal: truncate torn tail: %w", err)
			}
			l.tornBytes += dropped
			break
		}
		if fn != nil {
			if err := fn(rec); err != nil {
				return err
			}
		}
		seg.records++
		if rec.Version > seg.maxVersion {
			seg.maxVersion = rec.Version
		}
		if rec.Version > l.lastVersion {
			l.lastVersion = rec.Version
		}
		off = next
	}
	seg.bytes = int64(off)
	l.segs = append(l.segs, seg)
	return nil
}

// openSegment creates a fresh active segment with the given sequence and
// fsyncs the log directory so the new file's entry survives power loss
// (fsync of a file alone does not persist its directory entry). Caller
// holds mu (or is still single-goroutine during Open).
func (l *Log) openSegment(seq int) error {
	path := segmentPath(l.dir, seq)
	f, err := l.fs.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("wal: create segment: %w", err)
	}
	if l.opts.Sync != SyncNone {
		if err := syncPath(l.fs, l.dir); err != nil {
			f.Close()
			return fmt.Errorf("wal: sync log dir: %w", err)
		}
	}
	l.segs = append(l.segs, segment{seq: seq, path: path})
	l.active = f
	return nil
}

// syncPath fsyncs a file or directory by path.
func syncPath(fs faultfs.FS, path string) error {
	f, err := fs.Open(path)
	if err != nil {
		return err
	}
	serr := f.Sync()
	if cerr := f.Close(); serr == nil {
		serr = cerr
	}
	return serr
}

// Append durably stages records at the log's tail: all frames are written
// with a single write call, then fsynced per the sync policy. The error
// contract matters for the lake's commit protocol: a non-nil return means
// the records are NOT in the log (the caller's commit aborts and its
// versions are released, so the log and the lake cannot drift apart). On
// a write error the file is truncated back to the pre-append offset; if
// the rollback fails — or an fsync fails, after which the kernel's view
// of the file is unreliable — the log poisons itself and every later
// Append refuses with the same error.
func (l *Log) Append(recs ...Record) error {
	if len(recs) == 0 {
		return nil
	}
	start := time.Now()
	var buf bytes.Buffer
	for _, rec := range recs {
		if err := appendFrame(&buf, rec, l.opts.Format); err != nil {
			return err
		}
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.sticky != nil {
		return l.sticky
	}
	if l.closed {
		return fmt.Errorf("wal: log closed")
	}
	seg := &l.segs[len(l.segs)-1]
	prev := seg.bytes
	if _, err := l.active.Write(buf.Bytes()); err != nil {
		if terr := l.active.Truncate(prev); terr != nil {
			l.sticky = fmt.Errorf("wal: append failed (%v) and rollback failed (%v); log is read-only", err, terr)
			return l.sticky
		}
		return fmt.Errorf("wal: append: %w", err)
	}
	l.dirty = true
	if l.opts.Sync == SyncAlways {
		if err := l.active.Sync(); err != nil {
			// After a failed fsync the kernel may have dropped the dirty
			// pages (a retry would falsely succeed): roll the frames back
			// best-effort and refuse all further appends.
			_ = l.active.Truncate(prev)
			l.sticky = fmt.Errorf("wal: fsync failed (%v); log is read-only", err)
			return l.sticky
		}
		l.dirty = false
	}
	// Bookkeeping only after the frames are in the log for good.
	seg.bytes = prev + int64(buf.Len())
	seg.records += len(recs)
	for _, rec := range recs {
		if rec.Version > seg.maxVersion {
			seg.maxVersion = rec.Version
		}
		if rec.Version > l.lastVersion {
			l.lastVersion = rec.Version
		}
	}
	if seg.bytes >= l.opts.SegmentBytes {
		// A rotate failure poisons the log (inside rotateLocked); only
		// future appends are at risk. This append still reports success —
		// the records ARE in the log, as durable as the policy promises,
		// and an error here would abort a commit whose released version
		// would then be reused, corrupting replay.
		_, _ = l.rotateLocked()
	}
	l.m.records.Add(uint64(len(recs)))
	l.m.bytes.Add(uint64(buf.Len()))
	l.m.appendSec.Since(start)
	return nil
}

// Sync fsyncs the active segment if it has unsynced writes. An fsync
// failure poisons the log: on Linux a failed fsync drops the pages' dirty
// state, so a retry would falsely report success — the only safe move is
// to stop acknowledging writes.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.syncLocked()
}

func (l *Log) syncLocked() error {
	if l.sticky != nil {
		return l.sticky
	}
	if !l.dirty || l.active == nil {
		return nil
	}
	start := time.Now()
	if err := l.active.Sync(); err != nil {
		l.sticky = fmt.Errorf("wal: fsync failed (%v); log is read-only", err)
		return l.sticky
	}
	l.m.fsyncSec.Since(start)
	l.dirty = false
	return nil
}

// Rotate seals the active segment (fsynced and closed) and opens a fresh
// one, returning the sealed segment's sequence number so a following
// TruncateThrough can be scoped to segments sealed at or before this
// rotation point. A checkpoint rotates at its fork point and truncates
// once the snapshot is durable.
func (l *Log) Rotate() (sealed int, err error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, fmt.Errorf("wal: log closed")
	}
	return l.rotateLocked()
}

// rotateLocked seals the active segment and opens the next one. A partial
// rotation (sealed but no new segment, or a close that may have lost
// buffered writes) leaves no segment safe to append to, so it poisons the
// log rather than let a later Append dereference a nil active file or
// write after a failed close.
func (l *Log) rotateLocked() (int, error) {
	if err := l.syncLocked(); err != nil {
		return 0, err
	}
	if err := l.active.Close(); err != nil {
		l.active = nil
		l.sticky = fmt.Errorf("wal: close sealed segment (%v); log is read-only", err)
		return 0, l.sticky
	}
	l.active = nil
	sealed := l.segs[len(l.segs)-1].seq
	if err := l.openSegment(sealed + 1); err != nil {
		l.sticky = fmt.Errorf("wal: rotate failed (%v); log is read-only", err)
		return 0, l.sticky
	}
	l.m.rotations.Inc()
	return sealed, nil
}

// TruncateThrough deletes sealed segments with sequence <= throughSeq
// whose every record is covered by a checkpoint at version v (their
// highest event version is <= v). The sequence bound matters because a
// checkpoint's write phase overlaps ingestion: a segment sealed after the
// checkpoint forked may contain a source registration stamped at or below
// v that the forked snapshot does not hold, so only segments sealed at the
// fork's rotation point are eligible. The active segment is never deleted.
// A segment whose file refuses to unlink stays tracked (retried at the
// next checkpoint); one already gone counts as removed.
func (l *Log) TruncateThrough(v uint64, throughSeq int) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	kept := make([]segment, 0, len(l.segs))
	var firstErr error
	for i, seg := range l.segs {
		if i < len(l.segs)-1 && seg.seq <= throughSeq && seg.maxVersion <= v {
			err := l.fs.Remove(seg.path)
			if err == nil || errors.Is(err, os.ErrNotExist) {
				continue
			}
			if firstErr == nil {
				firstErr = fmt.Errorf("wal: remove sealed segment: %w", err)
			}
		}
		kept = append(kept, seg)
	}
	l.segs = kept
	return firstErr
}

// Replay streams every record currently in the log through fn in append
// order, re-reading the segment files from disk — memory use is bounded by
// one segment, not the log size, which is what lets recovery replay an
// arbitrarily long tail in bounded batches. The segment list and sizes are
// snapshotted up front, so records appended concurrently (or segments
// truncated away) after the call starts are not observed; recovery calls
// it before arming the durability hooks, when the log is quiet. fn
// returning an error aborts the replay.
func (l *Log) Replay(fn func(Record) error) error {
	l.mu.Lock()
	type span struct {
		path  string
		bytes int64
	}
	spans := make([]span, len(l.segs))
	for i, seg := range l.segs {
		spans[i] = span{path: seg.path, bytes: seg.bytes}
	}
	l.mu.Unlock()
	for _, sp := range spans {
		data, err := l.fs.ReadFile(sp.path)
		if err != nil {
			return fmt.Errorf("wal: replay segment: %w", err)
		}
		if int64(len(data)) > sp.bytes {
			data = data[:sp.bytes]
		}
		off := 0
		for off < len(data) {
			rec, next, torn, err := decodeFrame(data, off)
			if err != nil {
				return fmt.Errorf("wal: replay segment %s: %w", filepath.Base(sp.path), err)
			}
			if torn {
				// Open truncated any torn tail already; a torn frame here
				// means the file shrank under us, which snapshotting sizes
				// is supposed to prevent.
				return fmt.Errorf("wal: replay segment %s: unexpected torn frame at offset %d", filepath.Base(sp.path), off)
			}
			if err := fn(rec); err != nil {
				return err
			}
			off = next
		}
	}
	return nil
}

// Format reports the payload encoding new appends use. Existing records
// keep whatever encoding they were written with.
func (l *Log) Format() Format { return l.opts.Format }

// Stats reports the log's current shape.
func (l *Log) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	s := Stats{Segments: len(l.segs), LastVersion: l.lastVersion, TornBytes: l.tornBytes}
	for _, seg := range l.segs {
		s.Bytes += seg.bytes
		s.Records += seg.records
	}
	return s
}

// syncLoop is the SyncInterval background fsync.
func (l *Log) syncLoop() {
	defer close(l.syncDone)
	t := time.NewTicker(l.opts.Interval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			// An fsync failure poisons the log inside Sync, so the error
			// is not lost: every subsequent Append (and Close) reports it.
			_ = l.Sync()
		case <-l.stop:
			return
		}
	}
}

// Close fsyncs and closes the log. Idempotent.
func (l *Log) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.closed = true
	l.mu.Unlock()
	if l.stop != nil {
		close(l.stop)
		<-l.syncDone
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	err := l.syncLocked()
	if l.active != nil {
		if cerr := l.active.Close(); err == nil {
			err = cerr
		}
		l.active = nil
	}
	return err
}
