package wal

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"

	"repro/internal/datalake"
	"repro/internal/doc"
	"repro/internal/kg"
	"repro/internal/table"
)

// Record kinds. Event records (table, document, triple) carry the lake
// version their mutation committed as; source records carry the lake
// version current when the source was registered (sources are not
// versioned mutations, the stamp only places them for segment truncation).
const (
	KindTable    = "table"
	KindDocument = "document"
	KindTriple   = "triple"
	KindSource   = "source"
)

// Record is one durable lake mutation. Exactly one of Table, Doc, Triple,
// or Source is populated according to Kind. The payload carries a 1-byte
// format tag (codec.go): legacy JSON — debuggable with standard tools —
// or the compact binary encoding, the default. `verifai waldump` streams
// either encoding back out as JSON lines, so `jq`-debuggability survives
// the binary default.
type Record struct {
	Version uint64           `json:"v"`
	Kind    string           `json:"kind"`
	Table   *table.Table     `json:"table,omitempty"`
	Doc     *doc.Document    `json:"doc,omitempty"`
	Triple  *kg.Triple       `json:"triple,omitempty"`
	Source  *datalake.Source `json:"source,omitempty"`
	// TS is the leader's wall-clock append time in Unix nanoseconds,
	// stamped when the record enters the log. Optional (0 in records
	// written before the field existed); followers use it to report apply
	// lag in seconds alongside lag in versions. Clock skew between leader
	// and follower shifts the measurement — it is an operational lag
	// signal, not an ordering primitive (Version is).
	TS int64 `json:"ts,omitempty"`
}

// FromEvent converts a committed lake event into its WAL record.
func FromEvent(ev datalake.Event) (Record, error) {
	switch ev.Kind {
	case datalake.KindTable:
		return Record{Version: ev.Version, Kind: KindTable, Table: ev.Table}, nil
	case datalake.KindText:
		return Record{Version: ev.Version, Kind: KindDocument, Doc: ev.Doc}, nil
	case datalake.KindEntity:
		return Record{Version: ev.Version, Kind: KindTriple, Triple: ev.Triple}, nil
	default:
		return Record{}, fmt.Errorf("wal: unloggable event kind %v", ev.Kind)
	}
}

// frame layout: 4-byte little-endian payload length, 4-byte little-endian
// CRC-32C (Castagnoli) of the payload, then the payload (self-describing:
// first byte 0x7B = legacy JSON, 0x01 = compact binary; see codec.go). The
// CRC covers the whole payload including the tag and detects bit rot and
// mid-log corruption; a torn (partially written) final frame is detected
// by the length outrunning the remaining bytes — both classifications are
// frame-level and therefore identical for either payload encoding.
const frameHeaderSize = 8

// FrameHeaderSize is the fixed frame prefix: 4-byte little-endian payload
// length + 4-byte little-endian CRC-32C. Exported for stream consumers
// (the CDC change feed frames its wire protocol with the same codec).
const FrameHeaderSize = frameHeaderSize

// maxRecordSize bounds one record's payload. A frame header is written
// atomically ahead of its payload, so a length beyond this bound can only
// come from corruption, never from a torn append — replay fails loudly on
// it instead of attempting a giant allocation.
const maxRecordSize = 1 << 30

// MaxRecordSize is the payload bound, exported so stream decoders can
// reject corrupt lengths before allocating.
const MaxRecordSize = maxRecordSize

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// appendFrame encodes one record onto buf in the given payload format.
func appendFrame(buf *bytes.Buffer, rec Record, f Format) error {
	var payload []byte
	if f == FormatJSON {
		var err error
		payload, err = json.Marshal(rec)
		if err != nil {
			return fmt.Errorf("wal: encode record: %w", err)
		}
	} else {
		payload = encodeRecordBinary(nil, rec)
	}
	if len(payload) > maxRecordSize {
		return fmt.Errorf("wal: record payload %d bytes exceeds %d", len(payload), maxRecordSize)
	}
	var header [frameHeaderSize]byte
	binary.LittleEndian.PutUint32(header[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(header[4:8], crc32.Checksum(payload, crcTable))
	buf.Write(header[:])
	buf.Write(payload)
	return nil
}

// decodeFrame decodes the frame starting at data[off]. It returns the
// record and the offset just past the frame. torn reports that the frame
// is incomplete (the tail of a partial append); err reports corruption.
func decodeFrame(data []byte, off int) (rec Record, next int, torn bool, err error) {
	if len(data)-off < frameHeaderSize {
		return Record{}, off, true, nil
	}
	n := int(binary.LittleEndian.Uint32(data[off : off+4]))
	sum := binary.LittleEndian.Uint32(data[off+4 : off+8])
	if n > maxRecordSize {
		return Record{}, off, false, fmt.Errorf("wal: frame at offset %d declares %d payload bytes (corrupt length)", off, n)
	}
	if len(data)-off-frameHeaderSize < n {
		return Record{}, off, true, nil
	}
	payload := data[off+frameHeaderSize : off+frameHeaderSize+n]
	if got := crc32.Checksum(payload, crcTable); got != sum {
		return Record{}, off, false, fmt.Errorf("wal: frame at offset %d fails CRC (stored %08x, computed %08x)", off, sum, got)
	}
	if n == 0 {
		return Record{}, off, false, fmt.Errorf("wal: frame at offset %d has empty payload", off)
	}
	switch payload[0] {
	case binTag:
		var err error
		if rec, err = decodeRecordBinary(payload); err != nil {
			return Record{}, off, false, fmt.Errorf("wal: frame at offset %d has undecodable binary payload: %w", off, err)
		}
	case jsonTag:
		if err := json.Unmarshal(payload, &rec); err != nil {
			return Record{}, off, false, fmt.Errorf("wal: frame at offset %d has undecodable payload: %w", off, err)
		}
	default:
		return Record{}, off, false, fmt.Errorf("wal: frame at offset %d has unknown payload format tag 0x%02x", off, payload[0])
	}
	return rec, off + frameHeaderSize + n, false, nil
}
