package wal

import (
	"encoding/binary"
	"fmt"
	"math"
	"strconv"

	"repro/internal/datalake"
	"repro/internal/doc"
	"repro/internal/kg"
	"repro/internal/table"
)

// Payload format tags. The first payload byte makes every frame
// self-describing: legacy JSON payloads begin with '{' (0x7B), the compact
// binary encoding begins with 0x01. Decode dispatches on this byte, so
// segments may freely mix encodings (a log written under one -wal-format
// and reopened under another needs no migration) and the CDC wire carries
// either without negotiation.
const (
	binTag  = 0x01
	jsonTag = '{'
)

// Format selects the payload encoding for newly appended records. Decoding
// is always format-agnostic (the payload is self-describing), so Format
// governs writes only.
type Format int

const (
	// FormatBinary is the compact binary record encoding (the default):
	// a tag byte, a kind code, uvarint version and append stamp, and
	// length-prefixed fields — no JSON field-name overhead on the ingest
	// path.
	FormatBinary Format = iota
	// FormatJSON is the legacy JSON encoding, kept for logs that must stay
	// directly greppable without `verifai waldump`.
	FormatJSON
)

// String implements fmt.Stringer.
func (f Format) String() string {
	switch f {
	case FormatBinary:
		return "binary"
	case FormatJSON:
		return "json"
	default:
		return fmt.Sprintf("Format(%d)", int(f))
	}
}

// ParseFormat maps the flag spelling ("binary", "json") onto a Format.
// The empty string selects the default (binary).
func ParseFormat(s string) (Format, error) {
	switch s {
	case "binary", "":
		return FormatBinary, nil
	case "json":
		return FormatJSON, nil
	default:
		return 0, fmt.Errorf("wal: unknown record format %q (want binary|json)", s)
	}
}

// Binary payload layout (all integers little-endian, uvarint = unsigned
// LEB128 as encoded by encoding/binary):
//
//	[0]     0x01 format tag
//	[1]     kind code (binKind*)
//	uvarint Version
//	uvarint TS (Unix nanoseconds, cast through uint64)
//	...     kind-specific fields
//
// Strings use a tagged uvarint header. A string that is a canonical
// base-10 uint64 rendering ("3", "1500", "1954" — the bulk of table
// cells) is stored as uvarint(value<<1 | 1): two bytes for a typical
// four-digit cell instead of five. Any other string is uvarint(len<<1)
// followed by the raw UTF-8 bytes. Canonical means strconv would format
// the value back to the identical string, so "007", "+3", and "" keep
// their bytes.
//
// A table's row list is headed by uvarint(nrows<<1 | uniform). The
// uniform bit (set only when the table has columns and every row has
// exactly one cell per column — the common shape) drops the per-row cell
// counts; ragged tables keep them.
//
// binKindNamed carries kinds the codec has no structural layout for (e.g.
// the CDC heartbeat, or kinds added later): the kind string itself follows
// and there is no payload struct. A record whose Kind names a structural
// code but whose payload pointer is nil also encodes as binKindNamed, so
// encode is total over every Record the system constructs.
const (
	binKindNamed byte = iota
	binKindTable
	binKindDocument
	binKindTriple
	binKindSource
)

// canonicalUint reports whether s is the canonical decimal rendering of a
// uint64 below 10^18 (18 digits keeps value<<1 far from overflow). Only
// such strings may use the numeric header — anything else ("007", "+3",
// "1e5") must round-trip byte-exact through the raw form.
func canonicalUint(s string) (uint64, bool) {
	if len(s) == 0 || len(s) > 18 || (len(s) > 1 && s[0] == '0') {
		return 0, false
	}
	var n uint64
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c < '0' || c > '9' {
			return 0, false
		}
		n = n*10 + uint64(c-'0')
	}
	return n, true
}

// appendBinString appends one tagged-header string (see the layout
// comment above).
func appendBinString(dst []byte, s string) []byte {
	if n, ok := canonicalUint(s); ok {
		return binary.AppendUvarint(dst, n<<1|1)
	}
	dst = binary.AppendUvarint(dst, uint64(len(s))<<1)
	return append(dst, s...)
}

// encodeRecordBinary appends rec's binary payload to dst.
func encodeRecordBinary(dst []byte, rec Record) []byte {
	code := binKindNamed
	switch {
	case rec.Kind == KindTable && rec.Table != nil:
		code = binKindTable
	case rec.Kind == KindDocument && rec.Doc != nil:
		code = binKindDocument
	case rec.Kind == KindTriple && rec.Triple != nil:
		code = binKindTriple
	case rec.Kind == KindSource && rec.Source != nil:
		code = binKindSource
	}
	dst = append(dst, binTag, code)
	dst = binary.AppendUvarint(dst, rec.Version)
	dst = binary.AppendUvarint(dst, uint64(rec.TS))
	switch code {
	case binKindTable:
		t := rec.Table
		dst = appendBinString(dst, t.ID)
		dst = appendBinString(dst, t.Caption)
		dst = appendBinString(dst, t.SourceID)
		dst = binary.AppendUvarint(dst, uint64(len(t.Columns)))
		for _, c := range t.Columns {
			dst = appendBinString(dst, c)
		}
		uniform := len(t.Columns) > 0
		for _, row := range t.Rows {
			if len(row) != len(t.Columns) {
				uniform = false
				break
			}
		}
		head := uint64(len(t.Rows)) << 1
		if uniform {
			head |= 1
		}
		dst = binary.AppendUvarint(dst, head)
		for _, row := range t.Rows {
			if !uniform {
				dst = binary.AppendUvarint(dst, uint64(len(row)))
			}
			for _, cell := range row {
				dst = appendBinString(dst, cell)
			}
		}
	case binKindDocument:
		d := rec.Doc
		dst = appendBinString(dst, d.ID)
		dst = appendBinString(dst, d.Title)
		dst = appendBinString(dst, d.Text)
		dst = appendBinString(dst, d.EntityID)
		dst = appendBinString(dst, d.SourceID)
	case binKindTriple:
		tr := rec.Triple
		dst = appendBinString(dst, tr.Subject)
		dst = appendBinString(dst, tr.Predicate)
		dst = appendBinString(dst, tr.Object)
		dst = appendBinString(dst, tr.SourceID)
	case binKindSource:
		s := rec.Source
		dst = appendBinString(dst, s.ID)
		dst = appendBinString(dst, s.Name)
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(s.TrustPrior))
	default:
		dst = appendBinString(dst, rec.Kind)
	}
	return dst
}

// binReader is a bounds-checked cursor over a binary payload. Every read
// validates against the remaining bytes before allocating, so a corrupt
// length can never trigger an allocation bomb (the frame CRC has already
// passed by the time the payload decoder runs — these checks defend
// against CRC-valid garbage, e.g. from a buggy writer or a fuzzer).
type binReader struct {
	data []byte
	off  int
}

func (r *binReader) uvarint() (uint64, error) {
	v, n := binary.Uvarint(r.data[r.off:])
	if n <= 0 {
		return 0, fmt.Errorf("truncated or overlong uvarint at payload offset %d", r.off)
	}
	r.off += n
	return v, nil
}

// count reads a uvarint element count, rejecting counts that cannot fit in
// the remaining payload (every element costs at least one byte).
func (r *binReader) count() (int, error) {
	v, err := r.uvarint()
	if err != nil {
		return 0, err
	}
	if v > uint64(len(r.data)-r.off) {
		return 0, fmt.Errorf("element count %d exceeds %d remaining payload bytes", v, len(r.data)-r.off)
	}
	return int(v), nil
}

func (r *binReader) string() (string, error) {
	h, err := r.uvarint()
	if err != nil {
		return "", err
	}
	if h&1 == 1 {
		return strconv.FormatUint(h>>1, 10), nil
	}
	if h>>1 > uint64(len(r.data)-r.off) {
		return "", fmt.Errorf("string length %d exceeds %d remaining payload bytes", h>>1, len(r.data)-r.off)
	}
	n := int(h >> 1)
	s := string(r.data[r.off : r.off+n])
	r.off += n
	return s, nil
}

func (r *binReader) float64() (float64, error) {
	if len(r.data)-r.off < 8 {
		return 0, fmt.Errorf("truncated float64 at payload offset %d", r.off)
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(r.data[r.off:]))
	r.off += 8
	return v, nil
}

// decodeRecordBinary decodes one binary payload (payload[0] == binTag).
func decodeRecordBinary(payload []byte) (Record, error) {
	if len(payload) < 2 {
		return Record{}, fmt.Errorf("binary payload of %d bytes has no kind code", len(payload))
	}
	code := payload[1]
	r := &binReader{data: payload, off: 2}
	var rec Record
	var err error
	if rec.Version, err = r.uvarint(); err != nil {
		return Record{}, err
	}
	ts, err := r.uvarint()
	if err != nil {
		return Record{}, err
	}
	rec.TS = int64(ts)
	switch code {
	case binKindTable:
		t := &table.Table{}
		if t.ID, err = r.string(); err != nil {
			return Record{}, err
		}
		if t.Caption, err = r.string(); err != nil {
			return Record{}, err
		}
		if t.SourceID, err = r.string(); err != nil {
			return Record{}, err
		}
		ncols, err := r.count()
		if err != nil {
			return Record{}, err
		}
		if ncols > 0 {
			t.Columns = make([]string, ncols)
			for i := range t.Columns {
				if t.Columns[i], err = r.string(); err != nil {
					return Record{}, err
				}
			}
		}
		head, err := r.uvarint()
		if err != nil {
			return Record{}, err
		}
		uniform := head&1 == 1
		if uniform && ncols == 0 {
			return Record{}, fmt.Errorf("uniform table rows with zero columns")
		}
		if head>>1 > uint64(len(r.data)-r.off) {
			return Record{}, fmt.Errorf("row count %d exceeds %d remaining payload bytes", head>>1, len(r.data)-r.off)
		}
		nrows := int(head >> 1)
		if nrows > 0 {
			t.Rows = make([][]string, nrows)
			for i := range t.Rows {
				ncells := ncols
				if !uniform {
					if ncells, err = r.count(); err != nil {
						return Record{}, err
					}
				}
				if ncells > 0 {
					t.Rows[i] = make([]string, ncells)
					for j := range t.Rows[i] {
						if t.Rows[i][j], err = r.string(); err != nil {
							return Record{}, err
						}
					}
				}
			}
		}
		rec.Kind, rec.Table = KindTable, t
	case binKindDocument:
		d := &doc.Document{}
		for _, field := range []*string{&d.ID, &d.Title, &d.Text, &d.EntityID, &d.SourceID} {
			if *field, err = r.string(); err != nil {
				return Record{}, err
			}
		}
		rec.Kind, rec.Doc = KindDocument, d
	case binKindTriple:
		tr := &kg.Triple{}
		for _, field := range []*string{&tr.Subject, &tr.Predicate, &tr.Object, &tr.SourceID} {
			if *field, err = r.string(); err != nil {
				return Record{}, err
			}
		}
		rec.Kind, rec.Triple = KindTriple, tr
	case binKindSource:
		s := &datalake.Source{}
		if s.ID, err = r.string(); err != nil {
			return Record{}, err
		}
		if s.Name, err = r.string(); err != nil {
			return Record{}, err
		}
		if s.TrustPrior, err = r.float64(); err != nil {
			return Record{}, err
		}
		rec.Kind, rec.Source = KindSource, s
	case binKindNamed:
		if rec.Kind, err = r.string(); err != nil {
			return Record{}, err
		}
	default:
		return Record{}, fmt.Errorf("unknown binary kind code %d", code)
	}
	if r.off != len(payload) {
		return Record{}, fmt.Errorf("%d trailing bytes after binary record", len(payload)-r.off)
	}
	return rec, nil
}
