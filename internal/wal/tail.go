package wal

import (
	"bytes"
	"errors"
	"fmt"
)

// EncodeFrame appends rec to buf in the log's frame format (length + CRC +
// self-describing payload) using the default binary encoding. It is the
// single encode path shared by the log itself and the CDC change stream,
// so every consumer speaks exactly the on-disk format.
func EncodeFrame(buf *bytes.Buffer, rec Record) error {
	return appendFrame(buf, rec, FormatBinary)
}

// EncodeFrameFormat is EncodeFrame with an explicit payload format, for
// streams that must match a configured -wal-format (the change feed keeps
// its wire encoding aligned with the leader's log encoding).
func EncodeFrameFormat(buf *bytes.Buffer, rec Record, f Format) error {
	return appendFrame(buf, rec, f)
}

// DecodeFrame decodes the frame starting at data[off]. It returns the
// record and the offset just past the frame. torn reports an incomplete
// frame (more bytes needed); err reports corruption (bad length, CRC
// mismatch, undecodable payload).
func DecodeFrame(data []byte, off int) (rec Record, next int, torn bool, err error) {
	return decodeFrame(data, off)
}

// ErrTailTruncated reports that a TailReader's position was truncated away
// underneath it (a checkpoint removed the sealed segment it was reading).
// The stream cannot continue from this cursor position; the consumer must
// restart a Tail from its last applied version — which, being at or above
// the checkpoint version that justified the truncation, is still servable.
var ErrTailTruncated = errors.New("wal: tail reader overtaken by segment truncation")

// TailReader streams a log's records in append order from a version
// cursor, tolerating concurrent appends, rotations, and truncations. It is
// the leader-side transport of the change feed.
//
// Safety: every read is bounded by a snapshot of the segment's committed
// byte count taken under the log's lock. Append advances that bookkeeping
// only after a fully successful write (and rolls the file back before
// giving up on a failed one), so the reader can never observe a torn or
// rolled-back frame — a torn frame inside the bound is real corruption and
// reported loudly.
//
// Cursor contract: the cursor is the highest event version the consumer
// has applied after consuming the stream in order (or a checkpoint version
// it bootstrapped from). Sealed segments whose maxVersion is at or below
// the cursor are skipped entirely — including source-only segments
// (maxVersion 0): segment order is version order, so an in-order consumer
// at this cursor has necessarily already seen their contents. Within the
// remaining segments, source records are delivered unconditionally (they
// are idempotent re-registrations) and event records only when their
// version exceeds the cursor.
type TailReader struct {
	l       *Log
	after   uint64
	started bool
	seq     int   // segment currently being read
	off     int64 // committed bytes of that segment already consumed
	buf     []byte
}

// Tail returns a reader positioned after event version `after`. It takes
// no resources; readers may outlive rotations and are safe to abandon.
func (l *Log) Tail(after uint64) *TailReader {
	return &TailReader{l: l, after: after}
}

// Next returns the next record selected by the cursor. ok=false with a nil
// error means the reader is caught up with the log's committed bytes; call
// Next again later (the reader stays positioned). A non-nil error is
// terminal for this reader.
func (r *TailReader) Next() (Record, bool, error) {
	for {
		for len(r.buf) > 0 {
			rec, next, torn, err := decodeFrame(r.buf, 0)
			if err != nil {
				return Record{}, false, err
			}
			if torn {
				return Record{}, false, fmt.Errorf("wal: torn frame inside committed bytes of segment %d at offset %d", r.seq, r.off)
			}
			r.buf = r.buf[next:]
			r.off += int64(next)
			if rec.Kind == KindSource || rec.Version > r.after {
				return rec, true, nil
			}
		}
		ok, err := r.fill()
		if err != nil || !ok {
			return Record{}, false, err
		}
	}
}

// Buffered reports whether the reader holds already-fetched frames, so a
// streaming server can batch flushes: flush when the buffer drains rather
// than per record.
func (r *TailReader) Buffered() bool { return len(r.buf) > 0 }

// fill loads the next span of committed bytes. ok=false with nil error
// means caught up.
func (r *TailReader) fill() (bool, error) {
	for {
		seg, last, ok := r.locate()
		if !ok {
			return false, ErrTailTruncated
		}
		if r.off < seg.bytes {
			data, err := r.l.fs.ReadFile(seg.path)
			if err != nil {
				return false, fmt.Errorf("wal: tail read segment %d: %w", seg.seq, err)
			}
			if int64(len(data)) < seg.bytes {
				return false, fmt.Errorf("wal: segment %d holds %d bytes, committed bookkeeping says %d", seg.seq, len(data), seg.bytes)
			}
			r.buf = append(r.buf[:0], data[r.off:seg.bytes]...)
			return true, nil
		}
		if last {
			return false, nil
		}
		if !r.advance(seg.seq) {
			return false, ErrTailTruncated
		}
	}
}

// locate snapshots the current segment's bookkeeping under the log's lock,
// choosing the starting segment on first use. The returned segment is a
// value copy: its bytes field is a consistent committed bound even while
// appends continue.
func (r *TailReader) locate() (seg segment, last bool, ok bool) {
	r.l.mu.Lock()
	defer r.l.mu.Unlock()
	segs := r.l.segs
	if !r.started {
		i := 0
		// after==0 means "everything": source-only segments report
		// maxVersion 0 and must not be prefix-skipped for a fresh consumer.
		for r.after > 0 && i < len(segs)-1 && segs[i].maxVersion <= r.after {
			i++
		}
		r.started = true
		r.seq = segs[i].seq
		r.off = 0
	}
	for i := range segs {
		if segs[i].seq == r.seq {
			return segs[i], i == len(segs)-1, true
		}
	}
	return segment{}, false, false
}

// advance moves to the first tracked segment past cur.
func (r *TailReader) advance(cur int) bool {
	r.l.mu.Lock()
	defer r.l.mu.Unlock()
	for _, seg := range r.l.segs {
		if seg.seq > cur {
			r.seq = seg.seq
			r.off = 0
			return true
		}
	}
	return false
}
