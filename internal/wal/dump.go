package wal

import (
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/faultfs"
)

// SegmentFiles lists the log segment file paths in dir, ascending by
// sequence — the read-only enumeration `verifai waldump` walks. It opens
// no Log and takes no locks, so it is safe to run against a live data
// directory (reads race benignly with appends: DumpSegment tolerates a
// torn tail, which is all a concurrent append can look like).
func SegmentFiles(dir string) ([]string, error) {
	seqs, err := listSegments(faultfs.OS, dir)
	if err != nil {
		return nil, err
	}
	paths := make([]string, len(seqs))
	for i, seq := range seqs {
		paths[i] = segmentPath(dir, seq)
	}
	return paths, nil
}

// DumpSegment streams every complete record in one segment file through fn
// in append order, decoding either payload encoding. Unlike Open it never
// writes: a trailing torn frame is reported via the returned byte count
// and left in place. Corruption (bad length, CRC, payload) aborts with an
// error naming the offset. fn returning an error aborts the dump.
func DumpSegment(path string, fn func(Record) error) (torn int64, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, fmt.Errorf("wal: dump segment: %w", err)
	}
	off := 0
	for off < len(data) {
		rec, next, isTorn, err := decodeFrame(data, off)
		if err != nil {
			return 0, fmt.Errorf("wal: segment %s: %w", filepath.Base(path), err)
		}
		if isTorn {
			return int64(len(data) - off), nil
		}
		if err := fn(rec); err != nil {
			return 0, err
		}
		off = next
	}
	return 0, nil
}
