package wal

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/datalake"
	"repro/internal/doc"
	"repro/internal/kg"
	"repro/internal/table"
)

func docRecord(v uint64, id string) Record {
	return Record{Version: v, Kind: KindDocument, Doc: &doc.Document{ID: id, Title: id, Text: "text of " + id}}
}

// openReplay opens dir collecting every replayed record.
func openReplay(t *testing.T, dir string, opts Options) (*Log, []Record) {
	t.Helper()
	var recs []Record
	l, err := Open(dir, opts, func(r Record) error {
		recs = append(recs, r)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return l, recs
}

func TestAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, recs := openReplay(t, dir, Options{Sync: SyncNone})
	if len(recs) != 0 {
		t.Fatalf("fresh log replayed %d records", len(recs))
	}

	tbl := table.New("t1", "caption", []string{"a", "b"})
	tbl.MustAppendRow("1", "2")
	tbl.SourceID = "src"
	want := []Record{
		{Version: 1, Kind: KindTable, Table: tbl},
		docRecord(2, "d1"),
		{Version: 3, Kind: KindTriple, Triple: &kg.Triple{Subject: "s", Predicate: "p", Object: "o", SourceID: "src"}},
		{Version: 3, Kind: KindSource, Source: &datalake.Source{ID: "src", Name: "a source", TrustPrior: 0.7}},
	}
	if err := l.Append(want...); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, got := openReplay(t, dir, Options{Sync: SyncNone})
	defer l2.Close()
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	if got[0].Table.Caption != "caption" || len(got[0].Table.Rows) != 1 {
		t.Errorf("table record did not round-trip: %+v", got[0].Table)
	}
	if got[1].Doc.Text != "text of d1" {
		t.Errorf("doc record did not round-trip: %+v", got[1].Doc)
	}
	if got[2].Triple.Object != "o" {
		t.Errorf("triple record did not round-trip: %+v", got[2].Triple)
	}
	if got[3].Source.TrustPrior != 0.7 {
		t.Errorf("source record did not round-trip: %+v", got[3].Source)
	}
	if v := l2.Stats().LastVersion; v != 3 {
		t.Errorf("LastVersion = %d, want 3", v)
	}

	// Appending after replay continues the same log.
	if err := l2.Append(docRecord(4, "d2")); err != nil {
		t.Fatal(err)
	}
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}
	_, got = openReplay(t, dir, Options{Sync: SyncNone})
	if len(got) != 5 || got[4].Version != 4 {
		t.Fatalf("after reopen+append, replayed %d records (last %+v)", len(got), got[len(got)-1])
	}
}

func TestSegmentRotationAndTruncate(t *testing.T) {
	dir := t.TempDir()
	// Tiny segments force a rotation roughly every record (binary doc
	// frames here are ~28 bytes).
	opts := Options{Sync: SyncNone, SegmentBytes: 24}
	l, _ := openReplay(t, dir, opts)
	for v := uint64(1); v <= 6; v++ {
		if err := l.Append(docRecord(v, "d")); err != nil {
			t.Fatal(err)
		}
	}
	st := l.Stats()
	if st.Segments < 3 {
		t.Fatalf("expected rotation to produce >= 3 segments, got %d", st.Segments)
	}
	if st.Records != 6 {
		t.Fatalf("Records = %d, want 6", st.Records)
	}

	// A checkpoint at version 4 drops every sealed segment at or below it.
	sealed, err := l.Rotate()
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append(docRecord(7, "d")); err != nil {
		t.Fatal(err)
	}
	if err := l.TruncateThrough(4, sealed); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	_, got := openReplay(t, dir, opts)
	for _, r := range got {
		if r.Version <= 4 {
			t.Errorf("replayed version %d, which the checkpoint should have truncated", r.Version)
		}
	}
	// Versions 5..7 live in segments not wholly covered by the checkpoint.
	if len(got) != 3 {
		t.Fatalf("replayed %d records, want 3 (versions 5..7)", len(got))
	}
}

// lastSegment returns the path of the highest-numbered segment file.
func lastSegment(t *testing.T, dir string) string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var last string
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), segmentPrefix) {
			last = filepath.Join(dir, e.Name())
		}
	}
	if last == "" {
		t.Fatal("no segment files")
	}
	return last
}

func TestTornTailDroppedAndTruncated(t *testing.T) {
	dir := t.TempDir()
	l, _ := openReplay(t, dir, Options{Sync: SyncNone})
	for v := uint64(1); v <= 3; v++ {
		if err := l.Append(docRecord(v, "d")); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Chop bytes off the final record, emulating a crash mid-append.
	path := lastSegment(t, dir)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)-5], 0o644); err != nil {
		t.Fatal(err)
	}

	l2, got := openReplay(t, dir, Options{Sync: SyncNone})
	if len(got) != 2 {
		t.Fatalf("replayed %d records after torn tail, want 2", len(got))
	}
	if st := l2.Stats(); st.TornBytes == 0 {
		t.Error("TornBytes = 0, want > 0")
	}
	// The torn bytes are physically gone: appends continue cleanly.
	if err := l2.Append(docRecord(3, "d-replacement")); err != nil {
		t.Fatal(err)
	}
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}
	_, got = openReplay(t, dir, Options{Sync: SyncNone})
	if len(got) != 3 || got[2].Doc.ID != "d-replacement" {
		t.Fatalf("after torn-tail recovery + append, got %d records (last %+v)", len(got), got[len(got)-1])
	}
}

func TestCorruptMiddleFailsLoudly(t *testing.T) {
	dir := t.TempDir()
	l, _ := openReplay(t, dir, Options{Sync: SyncNone})
	for v := uint64(1); v <= 3; v++ {
		if err := l.Append(docRecord(v, "d")); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Flip a payload byte in the middle of the segment.
	path := lastSegment(t, dir)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	if _, err := Open(dir, Options{Sync: SyncNone}, nil); err == nil {
		t.Fatal("Open succeeded over a corrupt middle record")
	} else if !strings.Contains(err.Error(), "CRC") {
		t.Fatalf("error does not mention CRC: %v", err)
	}
}

func TestTornTailInSealedSegmentFailsLoudly(t *testing.T) {
	dir := t.TempDir()
	l, _ := openReplay(t, dir, Options{Sync: SyncNone})
	if err := l.Append(docRecord(1, "d")); err != nil {
		t.Fatal(err)
	}
	sealed := lastSegment(t, dir)
	if _, err := l.Rotate(); err != nil {
		t.Fatal(err)
	}
	if err := l.Append(docRecord(2, "d")); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(sealed)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(sealed, data[:len(data)-3], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{Sync: SyncNone}, nil); err == nil {
		t.Fatal("Open succeeded over a truncated sealed segment")
	}
}

func TestSyncPolicies(t *testing.T) {
	for _, policy := range []SyncPolicy{SyncAlways, SyncInterval, SyncNone} {
		t.Run(policy.String(), func(t *testing.T) {
			dir := t.TempDir()
			l, _ := openReplay(t, dir, Options{Sync: policy, Interval: time.Millisecond})
			for v := uint64(1); v <= 5; v++ {
				if err := l.Append(docRecord(v, "d")); err != nil {
					t.Fatal(err)
				}
			}
			if err := l.Sync(); err != nil {
				t.Fatal(err)
			}
			if err := l.Close(); err != nil {
				t.Fatal(err)
			}
			_, got := openReplay(t, dir, Options{Sync: policy})
			if len(got) != 5 {
				t.Fatalf("replayed %d records, want 5", len(got))
			}
		})
	}
}

// TestTruncateThroughMissingSegment checks a sealed segment whose file is
// already gone counts as truncated (and never leaves the segment table
// inconsistent).
func TestTruncateThroughMissingSegment(t *testing.T) {
	dir := t.TempDir()
	l, _ := openReplay(t, dir, Options{Sync: SyncNone, SegmentBytes: 24})
	for v := uint64(1); v <= 4; v++ {
		if err := l.Append(docRecord(v, "d")); err != nil {
			t.Fatal(err)
		}
	}
	if l.Stats().Segments < 3 {
		t.Fatalf("want >= 3 segments, got %d", l.Stats().Segments)
	}
	// Delete the first sealed segment out-of-band.
	if err := os.Remove(segmentPath(dir, l.segs[0].seq)); err != nil {
		t.Fatal(err)
	}
	if err := l.TruncateThrough(4, l.segs[len(l.segs)-1].seq); err != nil {
		t.Fatalf("TruncateThrough over a missing segment: %v", err)
	}
	if got := l.Stats().Segments; got != 1 {
		t.Fatalf("segments after truncate = %d, want 1 (the active one)", got)
	}
	if err := l.Append(docRecord(5, "d")); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestParseSyncPolicy(t *testing.T) {
	for in, want := range map[string]SyncPolicy{"always": SyncAlways, "interval": SyncInterval, "": SyncInterval, "none": SyncNone} {
		got, err := ParseSyncPolicy(in)
		if err != nil || got != want {
			t.Errorf("ParseSyncPolicy(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseSyncPolicy("bogus"); err == nil {
		t.Error("ParseSyncPolicy(bogus) succeeded")
	}
}

func TestReplayCallbackErrorAborts(t *testing.T) {
	dir := t.TempDir()
	l, _ := openReplay(t, dir, Options{Sync: SyncNone})
	if err := l.Append(docRecord(1, "d")); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	wantErr := os.ErrInvalid
	if _, err := Open(dir, Options{Sync: SyncNone}, func(Record) error { return wantErr }); err != wantErr {
		t.Fatalf("Open error = %v, want the callback's error", err)
	}
}
