// Package experiments regenerates every experimental result of the paper —
// the no-evidence baseline, Table 1 (retrieval recall), Table 2 (verifier
// accuracy), and the Figure 1 / Figure 4 case studies — plus the ablations
// DESIGN.md calls out (combiner, reranker, top-k sweep, trust weighting,
// index scale). The same harness backs cmd/experiments and the root
// bench_test.go.
package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/datalake"
	"repro/internal/llm"
	"repro/internal/provenance"
	"repro/internal/rerank"
	"repro/internal/table"
	"repro/internal/verify"
	"repro/internal/workload"
)

// Config sizes the experiments. The paper's Section 4 settings are 100
// tuple tasks, 1,300 claims, top-3 tuples, top-3 texts, top-5 tables.
type Config struct {
	// Corpus configures the synthetic multi-modal lake.
	Corpus workload.Config
	// NumTupleTasks is the number of tuple-completion queries (paper: 100).
	NumTupleTasks int
	// NumClaimTasks is the number of textual claims (paper: 1,300).
	NumClaimTasks int
	// TopKTuples / TopKTexts / TopKTables are the retrieval depths of the
	// paper's evaluation (3 / 3 / 5).
	TopKTuples int
	TopKTexts  int
	TopKTables int
}

// DefaultConfig returns a laptop-scale configuration preserving the paper's
// task structure and retrieval depths.
func DefaultConfig() Config {
	return Config{
		Corpus:        workload.DefaultConfig(),
		NumTupleTasks: 100,
		NumClaimTasks: 300,
		TopKTuples:    3,
		TopKTexts:     3,
		TopKTables:    5,
	}
}

// PaperScaleConfig returns the paper's full dimensions (slower).
func PaperScaleConfig() Config {
	c := DefaultConfig()
	c.Corpus = workload.PaperScale()
	c.NumClaimTasks = 1300
	return c
}

// Env is a built experimental environment: corpus, tasks, generator, and
// the assembled pipeline.
type Env struct {
	Config     Config
	Corpus     *workload.Corpus
	Pipeline   *core.Pipeline
	Generator  *llm.Generator
	TupleTasks []workload.TupleTask
	ClaimTasks []workload.ClaimTask

	// Verifiers under test (Table 2 compares them head to head).
	ChatGPT *verify.LLMVerifier
	Pasta   *verify.PastaVerifier

	// Indexer and Registry are shared by ablation pipelines.
	Indexer  *core.Indexer
	Registry *rerank.Registry
}

// Build generates the corpus and tasks, ingests the Figure 1/4 case data,
// indexes the lake, and assembles the pipeline.
func Build(cfg Config) (*Env, error) {
	corpus, err := workload.GenerateLake(cfg.Corpus)
	if err != nil {
		return nil, fmt.Errorf("experiments: generate lake: %w", err)
	}
	if err := corpus.AddCaseData(); err != nil {
		return nil, fmt.Errorf("experiments: add case data: %w", err)
	}
	tupleTasks, err := corpus.TupleTasks(cfg.NumTupleTasks)
	if err != nil {
		return nil, fmt.Errorf("experiments: tuple tasks: %w", err)
	}
	claimTasks, err := corpus.ClaimTasks(cfg.NumClaimTasks)
	if err != nil {
		return nil, fmt.Errorf("experiments: claim tasks: %w", err)
	}

	seed := cfg.Corpus.Seed
	indexer, err := core.BuildIndexer(corpus.Lake, core.DefaultIndexerConfig(seed))
	if err != nil {
		return nil, fmt.Errorf("experiments: build indexer: %w", err)
	}
	registry := rerank.NewRegistry(rerank.NewColBERT(indexer.Embedder(), 256))

	chatgpt := verify.NewLLMVerifier(verify.DefaultLLMConfig(seed))
	pasta := verify.NewPastaVerifier(verify.DefaultPastaConfig(seed))
	agent := verify.NewAgent(chatgpt) // ChatGPT default, per the paper

	pipeline, err := core.NewPipeline(corpus.Lake, indexer, registry, agent,
		provenance.NewStore(), nil, experimentPipelineConfig())
	if err != nil {
		return nil, fmt.Errorf("experiments: assemble pipeline: %w", err)
	}

	return &Env{
		Config:     cfg,
		Corpus:     corpus,
		Pipeline:   pipeline,
		Generator:  llm.NewGenerator(seed),
		TupleTasks: tupleTasks,
		ClaimTasks: claimTasks,
		ChatGPT:    chatgpt,
		Pasta:      pasta,
		Indexer:    indexer,
		Registry:   registry,
	}, nil
}

// experimentPipelineConfig is the paper's pipeline configuration with the
// verify-result cache disabled: the harness measures the pipeline itself
// (repeated runs must recompute, not replay a cached Report), and
// experiment pipelines are built ad hoc over shared lakes without a Close
// call — a cache would leave its change-feed subscription behind.
func experimentPipelineConfig() core.PipelineConfig {
	cfg := core.DefaultPipelineConfig()
	cfg.ResultCache = 0
	return cfg
}

// ExactPipeline assembles a pipeline over the same lake and indexes but
// with the noise-free verifier — used by the case-study experiments, which
// demonstrate the mechanism rather than aggregate accuracy.
func (e *Env) ExactPipeline() (*core.Pipeline, error) {
	agent := verify.NewAgent(verify.NewExactVerifier())
	return core.NewPipeline(e.Corpus.Lake, e.Indexer, e.Registry, agent,
		provenance.NewStore(), nil, experimentPipelineConfig())
}

// factKey stably identifies a tuple-completion fact for the simulated
// generator.
func factKey(t workload.TupleTask) string {
	return fmt.Sprintf("%s#%d#%s", t.TableID, t.Row, t.MaskedAttr())
}

// Impute runs the simulated generator on a tuple task and returns the
// imputed value and the imputed tuple (complete, with the model's value in
// the masked slot).
func (e *Env) Impute(t workload.TupleTask) (string, table.Tuple) {
	tbl, ok := e.Corpus.Lake.Table(t.TableID)
	var alternatives []string
	if ok {
		alternatives = tbl.Column(t.MaskedCol)
	}
	imputed := e.Generator.CompleteTuple(factKey(t), t.TrueValue, alternatives)
	return imputed, t.Tuple.WithValue(t.MaskedAttr(), imputed)
}

// TupleObject wraps an imputed tuple task as a generated object.
func (e *Env) TupleObject(t workload.TupleTask, imputedTuple table.Tuple) verify.Generated {
	return verify.NewTupleObject("task:"+factKey(t), imputedTuple, t.MaskedAttr())
}

// ClaimObject wraps a claim task as a generated object.
func (e *Env) ClaimObject(i int, ct workload.ClaimTask) verify.Generated {
	return verify.NewClaimObject(fmt.Sprintf("claim:%04d", i), ct.Claim)
}

// ResolveAll resolves instance IDs against the lake, failing loudly on
// drift.
func (e *Env) ResolveAll(ids []string) ([]datalake.Instance, error) {
	out := make([]datalake.Instance, 0, len(ids))
	for _, id := range ids {
		in, err := e.Corpus.Lake.Resolve(id)
		if err != nil {
			return nil, err
		}
		out = append(out, in)
	}
	return out, nil
}
