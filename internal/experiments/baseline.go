package experiments

import (
	"fmt"

	"repro/internal/metrics"
	"repro/internal/textutil"
)

// BaselineResult is the no-evidence accuracy of the generator, matching the
// paper's prose result: "The accuracy of ChatGPT in imputing missing values
// for tuples and determining the correctness of claims is only 0.52 and
// 0.54, respectively, in the absence of additional data."
type BaselineResult struct {
	// TupleAccuracy is the fraction of imputed values matching ground truth.
	TupleAccuracy float64
	// ClaimAccuracy is the fraction of claims the model judges correctly.
	ClaimAccuracy float64
	// TupleN / ClaimN are the task counts.
	TupleN int
	ClaimN int
}

// Baseline measures the generator without any lake evidence.
func (e *Env) Baseline() BaselineResult {
	var tuples, claims metrics.AccuracyTally
	for _, t := range e.TupleTasks {
		imputed, _ := e.Impute(t)
		tuples.Observe(textutil.Fold(imputed) == textutil.Fold(t.TrueValue))
	}
	for i, ct := range e.ClaimTasks {
		answer := e.Generator.JudgeClaim(fmt.Sprintf("claim:%04d", i), ct.Label)
		claims.Observe(answer == ct.Label)
	}
	return BaselineResult{
		TupleAccuracy: tuples.Accuracy(),
		ClaimAccuracy: claims.Accuracy(),
		TupleN:        tuples.Total(),
		ClaimN:        claims.Total(),
	}
}
