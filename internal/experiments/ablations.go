package experiments

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/datalake"
	"repro/internal/detrand"
	"repro/internal/metrics"
	"repro/internal/provenance"
	"repro/internal/rerank"
	"repro/internal/textutil"
	"repro/internal/trust"
	"repro/internal/verify"
	"repro/internal/workload"
)

// AblationsResult collects the design-choice ablations DESIGN.md lists.
type AblationsResult struct {
	// Combiner: recall of BM25-only vs vector-only vs combined retrieval,
	// justifying the two-index design of Section 3.1.
	CombinerClaimTable map[string]float64 // family -> recall@5
	CombinerTupleTuple map[string]float64 // family -> recall@3

	// Reranker: claim→table recall at small k′ with and without the
	// task-aware reranker (Section 3.2's motivation).
	RerankerAt map[int]RerankerPoint // k' -> recalls

	// TopK: claim→table recall as the task-agnostic k grows (the paper's
	// remark that task-agnostic retrieval needs large k).
	TopK map[int]float64

	// Trust: final-verdict accuracy with and without source-trust weighting
	// in the presence of a corrupted source (challenge C3).
	TrustUniform   float64
	TrustPriors    float64
	TrustEstimated float64
	TrustTasks     int
	// EstimatedTrusts are the learned source trusts.
	EstimatedTrusts map[string]float64
}

// RerankerPoint compares recall with/without reranking at one k′.
type RerankerPoint struct {
	With    float64
	Without float64
}

// Ablations runs every ablation on the built environment.
func (e *Env) Ablations() (AblationsResult, error) {
	res := AblationsResult{
		CombinerClaimTable: make(map[string]float64),
		CombinerTupleTuple: make(map[string]float64),
		RerankerAt:         make(map[int]RerankerPoint),
		TopK:               make(map[int]float64),
	}
	if err := e.AblateCombiner(&res); err != nil {
		return res, err
	}
	if err := e.AblateReranker(&res); err != nil {
		return res, err
	}
	if err := e.AblateTopK(&res); err != nil {
		return res, err
	}
	if err := e.AblateTrust(&res); err != nil {
		return res, err
	}
	return res, nil
}

// AblateCombiner measures each index family alone against the combination.
func (e *Env) AblateCombiner(res *AblationsResult) error {
	for _, family := range []string{"bm25", "vector", "combined"} {
		var ct, tt metrics.RecallTally
		for i, task := range e.ClaimTasks {
			g := e.ClaimObject(i, task)
			var ids []string
			if family == "combined" {
				_, ids = e.Pipeline.Retrieve(g, e.Config.TopKTables, datalake.KindTable)
			} else {
				ids = e.Pipeline.Indexer().RetrieveFamily(g.Query(), family, e.Config.TopKTables, datalake.KindTable)
			}
			ct.Observe(trim(ids, e.Config.TopKTables), set(task.RelevantTableID()))
		}
		for _, task := range e.TupleTasks {
			_, tuple := e.Impute(task)
			g := e.TupleObject(task, tuple)
			var ids []string
			if family == "combined" {
				_, ids = e.Pipeline.Retrieve(g, e.Config.TopKTuples, datalake.KindTuple)
			} else {
				ids = e.Pipeline.Indexer().RetrieveFamily(g.Query(), family, e.Config.TopKTuples, datalake.KindTuple)
			}
			tt.Observe(trim(ids, e.Config.TopKTuples), set(task.RelevantTupleID))
		}
		res.CombinerClaimTable[family] = ct.Recall()
		res.CombinerTupleTuple[family] = tt.Recall()
	}
	return nil
}

// AblateReranker compares recall@k′ of the task-aware reranker against
// plain combiner-order truncation, over a task-agnostic top-50 pool.
func (e *Env) AblateReranker(res *AblationsResult) error {
	const pool = 50
	for _, kPrime := range []int{1, 3, 5} {
		var with, without metrics.RecallTally
		for i, task := range e.ClaimTasks {
			g := e.ClaimObject(i, task)
			_, ids := e.Pipeline.Retrieve(g, pool, datalake.KindTable)
			relevant := set(task.RelevantTableID())

			without.Observe(trim(ids, kPrime), relevant)

			instances, err := e.ResolveAll(ids)
			if err != nil {
				return err
			}
			q := rerank.Query{Text: g.Query()}
			c := g.Claim
			q.Claim = &c
			scored := e.Registry.Rerank(q, instances, kPrime)
			top := make([]string, len(scored))
			for j, s := range scored {
				top[j] = s.ID
			}
			with.Observe(top, relevant)
		}
		res.RerankerAt[kPrime] = RerankerPoint{With: with.Recall(), Without: without.Recall()}
	}
	return nil
}

// AblateTopK sweeps the task-agnostic retrieval depth.
func (e *Env) AblateTopK(res *AblationsResult) error {
	for _, k := range []int{1, 3, 5, 10, 20, 50, 100} {
		var ct metrics.RecallTally
		for i, task := range e.ClaimTasks {
			g := e.ClaimObject(i, task)
			_, ids := e.Pipeline.Retrieve(g, k, datalake.KindTable)
			ct.Observe(trim(ids, k), set(task.RelevantTableID()))
		}
		res.TopK[k] = ct.Recall()
	}
	return nil
}

// AblateTrust builds a small lake containing a corrupted mirror source and
// measures final-verdict accuracy under three trust regimes: uniform,
// lake priors, and trust learned from cross-source agreement.
func (e *Env) AblateTrust(res *AblationsResult) error {
	cfg := e.Config.Corpus
	cfg.NumTables = 150
	cfg.NumTexts = 150
	corpus, err := workload.GenerateLake(cfg)
	if err != nil {
		return err
	}
	// Two corrupted mirror sources outvote the clean source under naive
	// majority — the scenario where trust weighting earns its keep.
	noisySources := []string{"noisy-mirror-a", "noisy-mirror-b"}
	for _, ns := range noisySources {
		corpus.Lake.AddSource(datalake.Source{ID: ns, Name: "corrupted mirror " + ns, TrustPrior: 0.2})
	}

	tasks, err := corpus.TupleTasks(40)
	if err != nil {
		return err
	}

	// Mirror each task's table into both noisy sources, corrupting the
	// masked attribute of every row (so the mirrors refute true values).
	r := detrand.New(cfg.Seed, "trust-ablation")
	byTable := make(map[string][]workload.TupleTask)
	for _, t := range tasks {
		byTable[t.TableID] = append(byTable[t.TableID], t)
	}
	for tid := range byTable {
		orig, ok := corpus.Lake.Table(tid)
		if !ok {
			return fmt.Errorf("experiments: trust ablation: missing table %q", tid)
		}
		for _, ns := range noisySources {
			mirror := orig.Clone()
			mirror.ID = ns + "-" + orig.ID
			mirror.SourceID = ns
			for _, task := range byTable[tid] {
				for row := range mirror.Rows {
					mirror.Rows[row][task.MaskedCol] = corruptCell(r, mirror.Rows[row][task.MaskedCol])
				}
			}
			if err := corpus.Lake.AddTable(mirror); err != nil {
				return err
			}
		}
	}

	indexer, err := core.BuildIndexer(corpus.Lake, core.DefaultIndexerConfig(cfg.Seed))
	if err != nil {
		return err
	}
	// This lake is private to the ablation: shut its dispatcher and the
	// indexer's appliers down so repeated ablation runs don't accumulate
	// goroutines and pinned corpora.
	defer func() {
		_ = corpus.Lake.Close()
		indexer.Close()
	}()
	registry := rerank.NewRegistry(rerank.NewColBERT(indexer.Embedder(), 256))
	agent := verify.NewAgent(verify.NewExactVerifier())

	run := func(trusts map[string]float64) (float64, []trust.Vote, error) {
		p, err := core.NewPipeline(corpus.Lake, indexer, registry, agent,
			provenance.NewStore(), trusts, experimentPipelineConfig())
		if err != nil {
			return 0, nil, err
		}
		var acc metrics.AccuracyTally
		var votes []trust.Vote
		for _, task := range tasks {
			// Impute the TRUE value: ground truth final verdict is Verified.
			g := verify.NewTupleObject("trust:"+task.TableID, task.Tuple, task.MaskedAttr())
			rep, err := p.Verify(g, datalake.KindTuple)
			if err != nil {
				return 0, nil, err
			}
			acc.Observe(rep.Verdict == verify.Verified)
			for _, ev := range rep.Evidence {
				if ev.Result.Verdict == verify.NotRelated {
					continue
				}
				votes = append(votes, trust.Vote{
					SourceID: ev.Instance.SourceID,
					ItemID:   g.ID,
					Value:    ev.Result.Verdict.String(),
				})
			}
		}
		return acc.Accuracy(), votes, nil
	}

	// Uniform trust: every source weighs 0.5 — two corrupted mirrors
	// outvote the clean original.
	uniform := map[string]float64{
		workload.SourceTables: 0.5, noisySources[0]: 0.5, noisySources[1]: 0.5,
	}
	accU, votes, err := run(uniform)
	if err != nil {
		return err
	}
	// Lake priors (0.8 clean vs 0.2 per mirror).
	priors := map[string]float64{
		workload.SourceTables: 0.8, noisySources[0]: 0.2, noisySources[1]: 0.2,
	}
	accP, _, err := run(priors)
	if err != nil {
		return err
	}
	// Trust learned from cross-source agreement, seeded with the lake
	// priors (knowledge-based trust needs a prior or external signal to
	// avoid locking onto the corrupted majority).
	learned := trust.Estimate(votes, trust.Config{Priors: priors})
	accE, _, err := run(learned)
	if err != nil {
		return err
	}

	res.TrustUniform = accU
	res.TrustPriors = accP
	res.TrustEstimated = accE
	res.TrustTasks = len(tasks)
	res.EstimatedTrusts = learned
	return nil
}

// corruptCell perturbs a cell value so the mirror disagrees with the truth:
// numeric cells get shifted, strings get a marker suffix.
func corruptCell(r *detrand.Rand, v string) string {
	if v == "" {
		return "unknown"
	}
	if n, ok := textutil.ParseNumber(v); ok && textutil.IsNumeric(v) {
		return strconv.FormatInt(int64(n)+int64(r.IntRange(1, 9)), 10)
	}
	return v + " x"
}

// Format renders the ablation results as an aligned report.
func (r AblationsResult) Format() string {
	var b strings.Builder
	b.WriteString("== Ablation: Combiner (index families) ==\n")
	b.WriteString("family     claim->table@5   tuple->tuple@3\n")
	for _, f := range []string{"bm25", "vector", "combined"} {
		fmt.Fprintf(&b, "%-10s %.2f             %.2f\n", f, r.CombinerClaimTable[f], r.CombinerTupleTuple[f])
	}
	b.WriteString("\n== Ablation: Reranker (claim->table recall@k') ==\n")
	b.WriteString("k'   with-reranker   without\n")
	for _, k := range []int{1, 3, 5} {
		p := r.RerankerAt[k]
		fmt.Fprintf(&b, "%-4d %.2f            %.2f\n", k, p.With, p.Without)
	}
	b.WriteString("\n== Ablation: task-agnostic top-k sweep (claim->table) ==\n")
	b.WriteString("k      recall\n")
	for _, k := range []int{1, 3, 5, 10, 20, 50, 100} {
		fmt.Fprintf(&b, "%-6d %.2f\n", k, r.TopK[k])
	}
	b.WriteString("\n== Ablation: trust-weighted resolution under a corrupted source ==\n")
	fmt.Fprintf(&b, "uniform trust:   %.2f   (n=%d)\n", r.TrustUniform, r.TrustTasks)
	fmt.Fprintf(&b, "lake priors:     %.2f\n", r.TrustPriors)
	fmt.Fprintf(&b, "learned (KBT):   %.2f\n", r.TrustEstimated)
	b.WriteString("learned source trusts:\n")
	for src, t := range r.EstimatedTrusts {
		fmt.Fprintf(&b, "  %-22s %.2f\n", src, t)
	}
	b.WriteString("\n")
	return b.String()
}
