package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/datalake"
	"repro/internal/verify"
	"repro/internal/workload"
)

// CaseOutcome is the result of one case-study verification.
type CaseOutcome struct {
	// Description says what was generated and what should happen.
	Description string
	// Generated is the serialized generated data.
	Generated string
	// Verdict is the pipeline's final verdict.
	Verdict verify.Verdict
	// Expected is the verdict the paper's figure shows.
	Expected verify.Verdict
	// Explanation is the leading decisive evidence's explanation.
	Explanation string
	// EvidenceIDs are the instance IDs used as evidence, in rank order.
	EvidenceIDs []string
}

// Match reports whether the pipeline reproduced the figure's verdict.
func (c CaseOutcome) Match() bool { return c.Verdict == c.Expected }

// Figure1Result reproduces the Figure 1 case studies.
type Figure1Result struct {
	// TupleCorrect: the first Ohio tuple imputed correctly — VerifAI finds
	// the counterpart tuple and verifies it.
	TupleCorrect CaseOutcome
	// TupleWrong: the third tuple imputed incorrectly — VerifAI refutes it.
	TupleWrong CaseOutcome
	// TextClaim: the Meagan Good / Stomp the Yard answer with the wrong
	// role — refuted by both a tuple and a text file.
	TextClaim CaseOutcome
}

// Figure1 runs the Figure 1 cases through the full pipeline (noise-free
// verifier: the figures demonstrate the mechanism, not aggregate accuracy).
func (e *Env) Figure1() (Figure1Result, error) {
	p, err := e.ExactPipeline()
	if err != nil {
		return Figure1Result{}, err
	}
	ohio := workload.OhioDistrictsTable()
	var res Figure1Result

	// Case 1: incumbent of the 1st district imputed correctly.
	t0, _ := ohio.TupleAt(0)
	g0 := verify.NewTupleObject("fig1:ohio-1", t0, "incumbent")
	rep0, err := p.Verify(g0, datalake.KindTuple, datalake.KindText)
	if err != nil {
		return res, fmt.Errorf("experiments: figure1 case1: %w", err)
	}
	res.TupleCorrect = outcomeFrom("Ohio 1st district incumbent imputed as steve chabot (correct)",
		g0.Describe(), rep0, verify.Verified)

	// Case 2: incumbent of the 3rd district imputed incorrectly.
	t2, _ := ohio.TupleAt(2)
	wrong := t2.WithValue("incumbent", "dave hobson")
	g2 := verify.NewTupleObject("fig1:ohio-3", wrong, "incumbent")
	rep2, err := p.Verify(g2, datalake.KindTuple, datalake.KindText)
	if err != nil {
		return res, fmt.Errorf("experiments: figure1 case2: %w", err)
	}
	res.TupleWrong = outcomeFrom("Ohio 3rd district incumbent imputed as dave hobson (incorrect)",
		g2.Describe(), rep2, verify.Refuted)

	// Case 3: generated text answers the Stomp the Yard question with the
	// wrong role; the filmography table and the entity page both refute it.
	claim := workload.StompTheYardClaim()
	claim.Value = "coco" // the generator's wrong answer
	claim.Render()
	g3 := verify.NewClaimObject("fig1:stomp-the-yard", claim)
	rep3, err := p.Verify(g3, datalake.KindTable, datalake.KindText)
	if err != nil {
		return res, fmt.Errorf("experiments: figure1 case3: %w", err)
	}
	res.TextClaim = outcomeFrom("Meagan Good's role in Stomp the Yard generated as coco (incorrect)",
		g3.Describe(), rep3, verify.Refuted)
	return res, nil
}

// Figure4Result reproduces the Figure 4 case study: the golf prize-total
// claim is refuted by the 1954 table (via aggregation) while the 1959 table
// is recognized as not related.
type Figure4Result struct {
	ClaimText string
	// Final is the end-to-end outcome (expected: Refuted).
	Final CaseOutcome
	// E1Verdict is the verdict on the 1954 table (expected: Refuted).
	E1Verdict verify.Verdict
	// E1Explanation mirrors the figure's explanation (the per-player prizes
	// and the true total).
	E1Explanation string
	// E2Verdict is the verdict on the 1959 table (expected: NotRelated).
	E2Verdict verify.Verdict
	// E1Retrieved / E2Retrieved report whether the pipeline's evidence set
	// contained the two tables.
	E1Retrieved bool
	E2Retrieved bool
}

// Figure4 runs the golf claim end to end.
func (e *Env) Figure4() (Figure4Result, error) {
	p, err := e.ExactPipeline()
	if err != nil {
		return Figure4Result{}, err
	}
	claim := workload.GolfClaim()
	g := verify.NewClaimObject("fig4:golf", claim)
	rep, err := p.Verify(g, datalake.KindTable)
	if err != nil {
		return Figure4Result{}, fmt.Errorf("experiments: figure4: %w", err)
	}
	res := Figure4Result{
		ClaimText: claim.Text,
		Final:     outcomeFrom("1954 U.S. Open prize-total claim (false)", g.Describe(), rep, verify.Refuted),
	}
	e1 := datalake.TableInstanceID(workload.USOpen1954Table().ID)
	e2 := datalake.TableInstanceID(workload.USOpen1959Table().ID)
	for _, ev := range rep.Evidence {
		switch ev.Instance.ID {
		case e1:
			res.E1Retrieved = true
			res.E1Verdict = ev.Result.Verdict
			res.E1Explanation = ev.Result.Explanation
		case e2:
			res.E2Retrieved = true
			res.E2Verdict = ev.Result.Verdict
		}
	}
	return res, nil
}

// outcomeFrom flattens a pipeline report into a CaseOutcome. The
// explanation is taken from the first evidence whose verdict matches the
// final one (the decisive evidence).
func outcomeFrom(desc, generated string, rep core.Report, expected verify.Verdict) CaseOutcome {
	out := CaseOutcome{
		Description: desc,
		Generated:   generated,
		Verdict:     rep.Verdict,
		Expected:    expected,
	}
	for _, ev := range rep.Evidence {
		out.EvidenceIDs = append(out.EvidenceIDs, ev.Instance.ID)
		if out.Explanation == "" && ev.Result.Verdict == rep.Verdict {
			out.Explanation = ev.Result.Explanation
		}
	}
	return out
}
