package experiments

import (
	"sync"
	"testing"

	"repro/internal/verify"
	"repro/internal/workload"
)

// testConfig keeps the harness tests fast while preserving task structure.
func testConfig() Config {
	cfg := DefaultConfig()
	cfg.Corpus.NumTables = 400
	cfg.Corpus.NumTexts = 300
	cfg.NumTupleTasks = 40
	cfg.NumClaimTasks = 60
	return cfg
}

// sharedEnv builds one environment for the whole test package; Build is the
// expensive step and the experiments only read from it.
var (
	envOnce sync.Once
	envVal  *Env
	envErr  error
)

func sharedEnv(t *testing.T) *Env {
	t.Helper()
	envOnce.Do(func() { envVal, envErr = Build(testConfig()) })
	if envErr != nil {
		t.Fatal(envErr)
	}
	return envVal
}

func TestBuildEnv(t *testing.T) {
	env := sharedEnv(t)
	if len(env.TupleTasks) != 40 || len(env.ClaimTasks) != 60 {
		t.Fatalf("tasks = %d/%d", len(env.TupleTasks), len(env.ClaimTasks))
	}
	stats := env.Corpus.Lake.Stats()
	if stats.Tables != 400+4 { // +4 case tables
		t.Errorf("tables = %d", stats.Tables)
	}
}

func TestBaselineInRange(t *testing.T) {
	env := sharedEnv(t)
	r := env.Baseline()
	// Small-sample tolerance around the paper's 0.52 / 0.54.
	if r.TupleAccuracy < 0.3 || r.TupleAccuracy > 0.75 {
		t.Errorf("tuple baseline = %v", r.TupleAccuracy)
	}
	if r.ClaimAccuracy < 0.35 || r.ClaimAccuracy > 0.75 {
		t.Errorf("claim baseline = %v", r.ClaimAccuracy)
	}
	if r.TupleN != 40 || r.ClaimN != 60 {
		t.Errorf("ns = %d/%d", r.TupleN, r.ClaimN)
	}
}

func TestTable1Shapes(t *testing.T) {
	env := sharedEnv(t)
	r, err := env.Table1()
	if err != nil {
		t.Fatal(err)
	}
	// The paper's ordering: tuple→tuple ≫ claim→table > tuple→text.
	if r.TupleTupleRecall < 0.9 {
		t.Errorf("tuple→tuple recall = %v", r.TupleTupleRecall)
	}
	if r.ClaimTableRecall < 0.6 {
		t.Errorf("claim→table recall = %v", r.ClaimTableRecall)
	}
	if !(r.TupleTupleRecall >= r.ClaimTableRecall && r.ClaimTableRecall >= r.TupleTextRecall) {
		t.Errorf("shape violated: %v >= %v >= %v", r.TupleTupleRecall, r.ClaimTableRecall, r.TupleTextRecall)
	}
}

func TestTable2Shapes(t *testing.T) {
	env := sharedEnv(t)
	r, err := env.Table2()
	if err != nil {
		t.Fatal(err)
	}
	// The paper's crossover: PASTA beats ChatGPT on relevant tables,
	// ChatGPT beats PASTA on retrieved tables.
	if r.RelevantTablePasta <= r.RelevantTableChatGPT {
		t.Errorf("relevant-table crossover missing: pasta %v vs gpt %v",
			r.RelevantTablePasta, r.RelevantTableChatGPT)
	}
	if r.RetrievedTableChatGPT <= r.RetrievedTablePasta {
		t.Errorf("retrieved-table crossover missing: gpt %v vs pasta %v",
			r.RetrievedTableChatGPT, r.RetrievedTablePasta)
	}
	// ChatGPT improves from relevant-only to the retrieved mix (easy
	// "not related" credit), the paper's 0.75 → 0.91 shape.
	if r.RetrievedTableChatGPT <= r.RelevantTableChatGPT {
		t.Errorf("ChatGPT retrieved %v <= relevant %v", r.RetrievedTableChatGPT, r.RelevantTableChatGPT)
	}
	if r.TupleChatGPT < 0.75 || r.TupleChatGPT > 0.99 {
		t.Errorf("tuple verifier accuracy = %v", r.TupleChatGPT)
	}
	if r.TuplePairs == 0 || r.RelevantPairs != 60 || r.RetrievedPairs == 0 {
		t.Errorf("pair counts: %d/%d/%d", r.TuplePairs, r.RelevantPairs, r.RetrievedPairs)
	}
}

func TestFigure1Cases(t *testing.T) {
	env := sharedEnv(t)
	r, err := env.Figure1()
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range []CaseOutcome{r.TupleCorrect, r.TupleWrong, r.TextClaim} {
		if !c.Match() {
			t.Errorf("case %q: verdict %v, expected %v", c.Description, c.Verdict, c.Expected)
		}
		if c.Explanation == "" {
			t.Errorf("case %q: no explanation", c.Description)
		}
	}
}

func TestFigure4Case(t *testing.T) {
	env := sharedEnv(t)
	r, err := env.Figure4()
	if err != nil {
		t.Fatal(err)
	}
	if !r.E1Retrieved {
		t.Fatal("E1 (1954 table) not retrieved")
	}
	if r.E1Verdict != verify.Refuted {
		t.Errorf("E1 verdict = %v", r.E1Verdict)
	}
	if r.E2Retrieved && r.E2Verdict != verify.NotRelated {
		t.Errorf("E2 verdict = %v", r.E2Verdict)
	}
	if !r.Final.Match() {
		t.Errorf("final verdict = %v", r.Final.Verdict)
	}
	if r.E1Explanation == "" {
		t.Error("E1 has no explanation")
	}
}

func TestImputeUsesColumnDomain(t *testing.T) {
	env := sharedEnv(t)
	task := env.TupleTasks[0]
	imputed, tuple := env.Impute(task)
	if v, _ := tuple.Value(task.MaskedAttr()); v != imputed {
		t.Errorf("imputed tuple value %q != imputed %q", v, imputed)
	}
	// Determinism.
	again, _ := env.Impute(task)
	if again != imputed {
		t.Error("Impute not deterministic")
	}
}

func TestAblationsSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("ablations are slow")
	}
	env := sharedEnv(t)
	r, err := env.Ablations()
	if err != nil {
		t.Fatal(err)
	}
	// Combiner: combined must be at least as good as the weaker family.
	weaker := r.CombinerClaimTable["vector"]
	if r.CombinerClaimTable["bm25"] < weaker {
		weaker = r.CombinerClaimTable["bm25"]
	}
	if r.CombinerClaimTable["combined"] < weaker {
		t.Errorf("combined %v below weaker family %v", r.CombinerClaimTable["combined"], weaker)
	}
	// Reranker: with-reranker recall@1 must not be worse than without.
	if p := r.RerankerAt[1]; p.With < p.Without {
		t.Errorf("reranker hurts recall@1: %v < %v", p.With, p.Without)
	}
	// TopK: recall is monotone in k.
	prev := -1.0
	for _, k := range []int{1, 3, 5, 10, 20, 50, 100} {
		if r.TopK[k] < prev {
			t.Errorf("recall not monotone at k=%d: %v < %v", k, r.TopK[k], prev)
		}
		prev = r.TopK[k]
	}
	// Trust: weighting must beat uniform under the corrupted majority.
	if r.TrustPriors <= r.TrustUniform {
		t.Errorf("trust priors %v <= uniform %v", r.TrustPriors, r.TrustUniform)
	}
	if r.TrustEstimated <= r.TrustUniform {
		t.Errorf("learned trust %v <= uniform %v", r.TrustEstimated, r.TrustUniform)
	}
	// Learned trusts separate clean from corrupted sources.
	if r.EstimatedTrusts[workload.SourceTables] <= r.EstimatedTrusts["noisy-mirror-a"] {
		t.Errorf("learned trusts not separated: %v", r.EstimatedTrusts)
	}
	if out := r.Format(); len(out) == 0 {
		t.Error("Format returned nothing")
	}
}

func TestAblateVectorIndex(t *testing.T) {
	if testing.Short() {
		t.Skip("vector ablation builds three indexers")
	}
	env := sharedEnv(t)
	points, err := env.AblateVectorIndex()
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"flat", "ivf", "lsh"} {
		p, ok := points[name]
		if !ok {
			t.Fatalf("missing family %s", name)
		}
		if p.Recall <= 0 || p.Recall > 1 {
			t.Errorf("%s recall = %v", name, p.Recall)
		}
		if p.QueryMicros <= 0 {
			t.Errorf("%s latency = %v", name, p.QueryMicros)
		}
	}
	// Exact search is the quality ceiling for the approximate families.
	if points["ivf"].Recall > points["flat"].Recall+1e-9 {
		t.Errorf("IVF recall %v exceeds exact %v", points["ivf"].Recall, points["flat"].Recall)
	}
	if points["lsh"].Recall > points["flat"].Recall+1e-9 {
		t.Errorf("LSH recall %v exceeds exact %v", points["lsh"].Recall, points["flat"].Recall)
	}
}

func TestAblateQuantizationRecall(t *testing.T) {
	if testing.Short() {
		t.Skip("ablations are slow")
	}
	env := sharedEnv(t)
	pt, err := env.AblateQuantization(10, 4)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("quantized recall@%d vs exact = %.3f (quant %.0fµs, exact %.0fµs)",
		pt.K, pt.RecallAtK, pt.QueryMicros, pt.ExactQueryMicros)
	if pt.RecallAtK < 0.95 {
		t.Errorf("quantized recall@%d = %.3f, want >= 0.95", pt.K, pt.RecallAtK)
	}
}
