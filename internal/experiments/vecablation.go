package experiments

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/datalake"
	"repro/internal/metrics"
)

// VectorIndexPoint is one ANN index family's quality/latency measurement.
type VectorIndexPoint struct {
	// Recall is claim→table recall@5 using ONLY the semantic index.
	Recall float64
	// QueryMicros is the mean per-query latency in microseconds.
	QueryMicros float64
}

// AblateVectorIndex compares the Faiss-substitute index families (Flat exact,
// IVF over k-means cells, LSH) on semantic-only claim→table retrieval — the
// quality/latency trade-off behind the paper's choice of ANN indexing for
// large lakes. BM25 is disabled so only the vector path is measured.
func (e *Env) AblateVectorIndex() (map[string]VectorIndexPoint, error) {
	out := make(map[string]VectorIndexPoint)
	kinds := []struct {
		name string
		kind core.VectorIndexKind
	}{
		{"flat", core.VectorFlat},
		{"ivf", core.VectorIVF},
		{"lsh", core.VectorLSH},
	}
	for _, k := range kinds {
		cfg := core.DefaultIndexerConfig(e.Config.Corpus.Seed)
		cfg.EnableBM25 = false
		cfg.Vector = k.kind
		cfg.Kinds = []datalake.Kind{datalake.KindTable}
		indexer, err := core.BuildIndexer(e.Corpus.Lake, cfg)
		if err != nil {
			return nil, fmt.Errorf("experiments: build %s indexer: %w", k.name, err)
		}
		// Detach from the shared live lake once measured, or every later
		// ingest would keep feeding this throwaway index.
		defer indexer.Close()
		var tally metrics.RecallTally
		start := time.Now()
		for i, task := range e.ClaimTasks {
			g := e.ClaimObject(i, task)
			_, ids := indexer.Retrieve(g.Query(), e.Config.TopKTables, datalake.KindTable)
			tally.Observe(trim(ids, e.Config.TopKTables), set(task.RelevantTableID()))
		}
		elapsed := time.Since(start)
		out[k.name] = VectorIndexPoint{
			Recall:      tally.Recall(),
			QueryMicros: float64(elapsed.Microseconds()) / float64(len(e.ClaimTasks)),
		}
	}
	return out, nil
}
