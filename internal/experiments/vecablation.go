package experiments

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/datalake"
	"repro/internal/metrics"
)

// VectorIndexPoint is one ANN index family's quality/latency measurement.
type VectorIndexPoint struct {
	// Recall is claim→table recall@5 using ONLY the semantic index.
	Recall float64
	// QueryMicros is the mean per-query latency in microseconds.
	QueryMicros float64
}

// AblateVectorIndex compares the Faiss-substitute index families (Flat exact,
// IVF over k-means cells, LSH) on semantic-only claim→table retrieval — the
// quality/latency trade-off behind the paper's choice of ANN indexing for
// large lakes. BM25 is disabled so only the vector path is measured.
func (e *Env) AblateVectorIndex() (map[string]VectorIndexPoint, error) {
	out := make(map[string]VectorIndexPoint)
	kinds := []struct {
		name string
		kind core.VectorIndexKind
	}{
		{"flat", core.VectorFlat},
		{"ivf", core.VectorIVF},
		{"lsh", core.VectorLSH},
	}
	for _, k := range kinds {
		cfg := core.DefaultIndexerConfig(e.Config.Corpus.Seed)
		cfg.EnableBM25 = false
		cfg.Vector = k.kind
		cfg.Kinds = []datalake.Kind{datalake.KindTable}
		indexer, err := core.BuildIndexer(e.Corpus.Lake, cfg)
		if err != nil {
			return nil, fmt.Errorf("experiments: build %s indexer: %w", k.name, err)
		}
		// Detach from the shared live lake once measured, or every later
		// ingest would keep feeding this throwaway index.
		defer indexer.Close()
		var tally metrics.RecallTally
		start := time.Now()
		for i, task := range e.ClaimTasks {
			g := e.ClaimObject(i, task)
			_, ids := indexer.Retrieve(g.Query(), e.Config.TopKTables, datalake.KindTable)
			tally.Observe(trim(ids, e.Config.TopKTables), set(task.RelevantTableID()))
		}
		elapsed := time.Since(start)
		out[k.name] = VectorIndexPoint{
			Recall:      tally.Recall(),
			QueryMicros: float64(elapsed.Microseconds()) / float64(len(e.ClaimTasks)),
		}
	}
	return out, nil
}

// QuantizationPoint measures int8 scalar quantization with exact re-rank
// against the exact flat index on identical queries.
type QuantizationPoint struct {
	// RecallAtK is the mean overlap@k between the quantized index's top-k
	// and the exact flat index's top-k — recall against the exact results,
	// not against task ground truth, isolating the quantization error.
	RecallAtK float64
	// K is the cutoff measured.
	K int
	// QueryMicros / ExactQueryMicros are mean per-query latencies.
	QueryMicros      float64
	ExactQueryMicros float64
}

// AblateQuantization runs claim→table retrieval through an exact flat
// indexer and an int8-quantized one (rerankMultiple×k candidates re-ranked
// exactly), reporting how often the quantized top-k agrees with the exact
// top-k. The acceptance bar for the serving default (rerank multiple 4) is
// recall@10 >= 0.95.
func (e *Env) AblateQuantization(k, rerankMultiple int) (QuantizationPoint, error) {
	base := core.DefaultIndexerConfig(e.Config.Corpus.Seed)
	base.EnableBM25 = false
	base.Vector = core.VectorFlat
	base.Kinds = []datalake.Kind{datalake.KindTable}

	exactCfg := base
	exact, err := core.BuildIndexer(e.Corpus.Lake, exactCfg)
	if err != nil {
		return QuantizationPoint{}, fmt.Errorf("experiments: build exact indexer: %w", err)
	}
	defer exact.Close()

	quantCfg := base
	quantCfg.Quantize = true
	quantCfg.RerankMultiple = rerankMultiple
	quant, err := core.BuildIndexer(e.Corpus.Lake, quantCfg)
	if err != nil {
		return QuantizationPoint{}, fmt.Errorf("experiments: build quantized indexer: %w", err)
	}
	defer quant.Close()

	var overlap, total int
	var exactElapsed, quantElapsed time.Duration
	for i, task := range e.ClaimTasks {
		g := e.ClaimObject(i, task)
		q := g.Query()

		start := time.Now()
		_, exactIDs := exact.Retrieve(q, k, datalake.KindTable)
		exactElapsed += time.Since(start)

		start = time.Now()
		_, quantIDs := quant.Retrieve(q, k, datalake.KindTable)
		quantElapsed += time.Since(start)

		want := set(trim(exactIDs, k)...)
		for _, id := range trim(quantIDs, k) {
			if _, ok := want[id]; ok {
				overlap++
			}
		}
		total += len(want)
	}
	pt := QuantizationPoint{K: k}
	if total > 0 {
		pt.RecallAtK = float64(overlap) / float64(total)
	}
	if n := len(e.ClaimTasks); n > 0 {
		pt.QueryMicros = float64(quantElapsed.Microseconds()) / float64(n)
		pt.ExactQueryMicros = float64(exactElapsed.Microseconds()) / float64(n)
	}
	return pt, nil
}
