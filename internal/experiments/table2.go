package experiments

import (
	"fmt"

	"repro/internal/datalake"
	"repro/internal/metrics"
	"repro/internal/verify"
)

// Table2Result reproduces Table 2: verifier accuracy.
//
//	paper:                    ChatGPT  PASTA
//	(tuple, tuple+text)        0.88     n/a
//	(text, relevant table)     0.75     0.89
//	(text, retrieved table)    0.91     0.72
type Table2Result struct {
	TupleChatGPT          float64
	RelevantTableChatGPT  float64
	RelevantTablePasta    float64
	RetrievedTableChatGPT float64
	RetrievedTablePasta   float64

	// Pair counts per row, for the report.
	TuplePairs     int
	RelevantPairs  int
	RetrievedPairs int
}

// Table2 scores the verifiers against the noise-free oracle with the
// paper's evaluation rules:
//
//  1. supporting evidence → the verifier must say Verified;
//  2. refuting evidence → Refuted;
//  3. unrelated evidence → NotRelated, except that PASTA (binary output) is
//     also counted correct when it answers Refuted on unrelated evidence.
func (e *Env) Table2() (Table2Result, error) {
	oracle := verify.NewExactVerifier()
	var res Table2Result

	// Row 1: (tuple, tuple+text) with ChatGPT over the retrieved evidence.
	var rowTuple metrics.AccuracyTally
	for _, task := range e.TupleTasks {
		_, tuple := e.Impute(task)
		g := e.TupleObject(task, tuple)
		evidence, err := e.RetrievedEvidence(g)
		if err != nil {
			return res, fmt.Errorf("experiments: table2 row1: %w", err)
		}
		for _, ev := range evidence {
			truth, err := oracle.Verify(g, ev)
			if err != nil {
				return res, err
			}
			got, err := e.ChatGPT.Verify(g, ev)
			if err != nil {
				return res, err
			}
			rowTuple.Observe(got.Verdict == truth.Verdict)
		}
	}
	res.TupleChatGPT = rowTuple.Accuracy()
	res.TuplePairs = rowTuple.Total()

	// Rows 2 and 3: (text, relevant table) and (text, retrieved table).
	var relGPT, relPasta, retGPT, retPasta metrics.AccuracyTally
	for i, task := range e.ClaimTasks {
		g := e.ClaimObject(i, task)

		// Relevant table: the claim's source table, paired directly.
		relevant, err := e.Corpus.Lake.Resolve(task.RelevantTableID())
		if err != nil {
			return res, fmt.Errorf("experiments: table2 row2: %w", err)
		}
		if err := scorePair(oracle, e.ChatGPT, e.Pasta, g, relevant, &relGPT, &relPasta); err != nil {
			return res, err
		}

		// Retrieved tables: the top-5 from the lake.
		retrieved, err := e.RetrievedTables(g)
		if err != nil {
			return res, fmt.Errorf("experiments: table2 row3: %w", err)
		}
		for _, ev := range retrieved {
			if err := scorePair(oracle, e.ChatGPT, e.Pasta, g, ev, &retGPT, &retPasta); err != nil {
				return res, err
			}
		}
	}
	res.RelevantTableChatGPT = relGPT.Accuracy()
	res.RelevantTablePasta = relPasta.Accuracy()
	res.RelevantPairs = relGPT.Total()
	res.RetrievedTableChatGPT = retGPT.Accuracy()
	res.RetrievedTablePasta = retPasta.Accuracy()
	res.RetrievedPairs = retGPT.Total()
	return res, nil
}

// scorePair scores both verifiers on one (claim, table) pair against the
// oracle, applying the PASTA binary-output allowance.
func scorePair(oracle *verify.ExactVerifier, gpt *verify.LLMVerifier, pasta *verify.PastaVerifier,
	g verify.Generated, ev datalake.Instance, gptTally, pastaTally *metrics.AccuracyTally) error {
	truth, err := oracle.Verify(g, ev)
	if err != nil {
		return err
	}
	got, err := gpt.Verify(g, ev)
	if err != nil {
		return err
	}
	gptTally.Observe(got.Verdict == truth.Verdict)

	p, err := pasta.Verify(g, ev)
	if err != nil {
		return err
	}
	correct := p.Verdict == truth.Verdict ||
		(truth.Verdict == verify.NotRelated && p.Verdict == verify.Refuted)
	pastaTally.Observe(correct)
	return nil
}
