package experiments

import (
	"repro/internal/datalake"
	"repro/internal/metrics"
	"repro/internal/verify"
)

// Table1Result reproduces Table 1: recall of the task-agnostic retrieval
// stage, per (generated data type, retrieved data type) pair.
//
//	paper: (tuple, tuple) 0.99 @ top-3
//	       (tuple, text)  0.58 @ top-3
//	       (claim, table) 0.88 @ top-5
type Table1Result struct {
	TupleTupleRecall float64
	TupleTextRecall  float64
	ClaimTableRecall float64
	TupleN           int
	ClaimN           int
}

// Table1 measures retrieval recall with the paper's evaluation rule: a task
// is recalled when any relevant instance appears in the retrieved top-k.
// Relevance follows the paper's definition — the original counterpart tuple,
// the entity pages of entities in the tuple, and the claim's source table.
func (e *Env) Table1() (Table1Result, error) {
	var tt, tx, ct metrics.RecallTally

	for _, task := range e.TupleTasks {
		imputed, tuple := e.Impute(task)
		_ = imputed
		g := e.TupleObject(task, tuple)

		_, tupleIDs := e.Pipeline.Retrieve(g, e.Config.TopKTuples, datalake.KindTuple)
		tt.Observe(trim(tupleIDs, e.Config.TopKTuples), set(task.RelevantTupleID))

		_, textIDs := e.Pipeline.Retrieve(g, e.Config.TopKTexts, datalake.KindText)
		tx.Observe(trim(textIDs, e.Config.TopKTexts), set(task.RelevantDocIDs...))
	}

	for i, task := range e.ClaimTasks {
		g := e.ClaimObject(i, task)
		_, tableIDs := e.Pipeline.Retrieve(g, e.Config.TopKTables, datalake.KindTable)
		ct.Observe(trim(tableIDs, e.Config.TopKTables), set(task.RelevantTableID()))
	}

	return Table1Result{
		TupleTupleRecall: tt.Recall(),
		TupleTextRecall:  tx.Recall(),
		ClaimTableRecall: ct.Recall(),
		TupleN:           tt.Total(),
		ClaimN:           ct.Total(),
	}, nil
}

// RetrievedEvidence returns the evaluation evidence set for one tuple task:
// the top-k tuples and top-k texts (paper: 3 + 3), resolved.
func (e *Env) RetrievedEvidence(g verify.Generated) ([]datalake.Instance, error) {
	_, tupleIDs := e.Pipeline.Retrieve(g, e.Config.TopKTuples, datalake.KindTuple)
	_, textIDs := e.Pipeline.Retrieve(g, e.Config.TopKTexts, datalake.KindText)
	ids := append(trim(tupleIDs, e.Config.TopKTuples), trim(textIDs, e.Config.TopKTexts)...)
	return e.ResolveAll(ids)
}

// RetrievedTables returns the top-k tables for a claim object, resolved.
func (e *Env) RetrievedTables(g verify.Generated) ([]datalake.Instance, error) {
	_, ids := e.Pipeline.Retrieve(g, e.Config.TopKTables, datalake.KindTable)
	return e.ResolveAll(trim(ids, e.Config.TopKTables))
}

// trim bounds a candidate list to k entries.
func trim(ids []string, k int) []string {
	if len(ids) > k {
		return ids[:k]
	}
	return ids
}

// set builds a membership set from IDs.
func set(ids ...string) map[string]struct{} {
	m := make(map[string]struct{}, len(ids))
	for _, id := range ids {
		m[id] = struct{}{}
	}
	return m
}
