package doc

import (
	"strings"
	"testing"

	"repro/internal/textutil"
)

func TestSerializeForIndex(t *testing.T) {
	d := &Document{Title: "Meagan Good", Text: "An actress."}
	if got := d.SerializeForIndex(); got != "Meagan Good An actress." {
		t.Errorf("SerializeForIndex = %q", got)
	}
	d2 := &Document{Text: "No title."}
	if got := d2.SerializeForIndex(); got != "No title." {
		t.Errorf("SerializeForIndex untitled = %q", got)
	}
}

func TestChunkDocumentWhole(t *testing.T) {
	d := &Document{ID: "d1", Text: "One. Two. Three."}
	chunks := ChunkDocument(d, 0)
	if len(chunks) != 1 || chunks[0].Text != d.Text || chunks[0].DocID != "d1" {
		t.Errorf("whole-doc chunking = %+v", chunks)
	}
}

func TestChunkDocumentBounds(t *testing.T) {
	var sentences []string
	for i := 0; i < 20; i++ {
		sentences = append(sentences, "alpha beta gamma delta epsilon.")
	}
	d := &Document{ID: "d2", Text: strings.Join(sentences, " ")}
	const maxTokens = 12
	chunks := ChunkDocument(d, maxTokens)
	if len(chunks) < 5 {
		t.Fatalf("expected several chunks, got %d", len(chunks))
	}
	for i, ch := range chunks {
		if ch.Seq != i {
			t.Errorf("chunk %d has Seq %d", i, ch.Seq)
		}
		n := len(textutil.Tokenize(ch.Text))
		// Each sentence has 5 tokens; chunks pack 2 sentences (10 tokens)
		// under the 12-token cap.
		if n > maxTokens {
			t.Errorf("chunk %d has %d tokens > cap %d", i, n, maxTokens)
		}
		// No sentence may be split: chunks end on sentence boundaries.
		if !strings.HasSuffix(strings.TrimSpace(ch.Text), ".") {
			t.Errorf("chunk %d does not end on a sentence boundary: %q", i, ch.Text)
		}
	}
}

func TestChunkDocumentCoversAllSentences(t *testing.T) {
	d := &Document{ID: "d3", Text: "First point. Second point. Third point. Fourth point."}
	chunks := ChunkDocument(d, 4)
	joined := ""
	for _, ch := range chunks {
		joined += " " + ch.Text
	}
	for _, want := range []string{"First point.", "Second point.", "Third point.", "Fourth point."} {
		if !strings.Contains(joined, want) {
			t.Errorf("chunks lost sentence %q", want)
		}
	}
}

func TestChunkOversizedSentence(t *testing.T) {
	long := strings.Repeat("word ", 50) + "end."
	d := &Document{ID: "d4", Text: "Short. " + long}
	chunks := ChunkDocument(d, 10)
	if len(chunks) < 2 {
		t.Fatalf("expected >= 2 chunks, got %d", len(chunks))
	}
	// The oversized sentence forms its own chunk rather than being dropped.
	found := false
	for _, ch := range chunks {
		if strings.Contains(ch.Text, "end.") {
			found = true
		}
	}
	if !found {
		t.Error("oversized sentence was dropped")
	}
}

func TestChunkEmptyDocument(t *testing.T) {
	d := &Document{ID: "d5", Text: ""}
	if chunks := ChunkDocument(d, 10); chunks != nil {
		t.Errorf("empty doc chunks = %v", chunks)
	}
}
