// Package doc models the unstructured-text modality of the multi-modal data
// lake: documents (e.g. Wikipedia-style entity pages) and the chunking used
// before embedding, mirroring the paper's "chunked text files" that feed the
// Faiss index.
package doc

import (
	"strings"

	"repro/internal/textutil"
)

// Document is a text file in the lake.
type Document struct {
	// ID uniquely identifies the document within its data lake.
	ID string
	// Title is the document title (for entity pages, the entity name).
	Title string
	// Text is the full body text.
	Text string
	// EntityID links the document to a knowledge-graph entity when it is an
	// entity page; empty otherwise.
	EntityID string
	// SourceID identifies the dataset/source for trust scoring.
	SourceID string
}

// SerializeForIndex flattens title and body for content-based indexing.
func (d *Document) SerializeForIndex() string {
	if d.Title == "" {
		return d.Text
	}
	return d.Title + " " + d.Text
}

// Chunk is a contiguous span of a document, the unit of semantic indexing.
type Chunk struct {
	// DocID is the owning document.
	DocID string
	// Seq is the chunk's position within the document, starting at 0.
	Seq int
	// Text is the chunk body.
	Text string
}

// ChunkDocument splits a document into chunks of at most maxTokens tokens,
// breaking on sentence boundaries so no sentence is split across chunks
// (unless a single sentence alone exceeds maxTokens, in which case it forms
// its own oversized chunk). maxTokens <= 0 yields one chunk per document.
func ChunkDocument(d *Document, maxTokens int) []Chunk {
	if maxTokens <= 0 {
		return []Chunk{{DocID: d.ID, Seq: 0, Text: d.Text}}
	}
	sentences := textutil.SplitSentences(d.Text)
	if len(sentences) == 0 {
		return nil
	}
	var chunks []Chunk
	var cur []string
	curTokens := 0
	flush := func() {
		if len(cur) == 0 {
			return
		}
		chunks = append(chunks, Chunk{DocID: d.ID, Seq: len(chunks), Text: strings.Join(cur, " ")})
		cur = cur[:0]
		curTokens = 0
	}
	for _, s := range sentences {
		n := len(textutil.Tokenize(s))
		if curTokens > 0 && curTokens+n > maxTokens {
			flush()
		}
		cur = append(cur, s)
		curTokens += n
		if curTokens >= maxTokens {
			flush()
		}
	}
	flush()
	return chunks
}
