package trust

import (
	"fmt"
	"testing"
)

// makeVotes builds votes where good sources assert the true value "T" on
// every item and bad sources assert "F" on a fraction of items.
func makeVotes(goodSources, badSources, items int) []Vote {
	var votes []Vote
	for i := 0; i < items; i++ {
		item := fmt.Sprintf("item-%d", i)
		for g := 0; g < goodSources; g++ {
			votes = append(votes, Vote{SourceID: fmt.Sprintf("good-%d", g), ItemID: item, Value: "T"})
		}
		for b := 0; b < badSources; b++ {
			votes = append(votes, Vote{SourceID: fmt.Sprintf("bad-%d", b), ItemID: item, Value: "F"})
		}
	}
	return votes
}

func TestEstimateSeparatesSources(t *testing.T) {
	// 3 good sources vs 1 bad: consensus finds the truth, good sources get
	// high trust, the bad one low.
	votes := makeVotes(3, 1, 50)
	trusts := Estimate(votes, Config{})
	for g := 0; g < 3; g++ {
		if trusts[fmt.Sprintf("good-%d", g)] < 0.9 {
			t.Errorf("good-%d trust = %v", g, trusts[fmt.Sprintf("good-%d", g)])
		}
	}
	if trusts["bad-0"] > 0.1 {
		t.Errorf("bad-0 trust = %v", trusts["bad-0"])
	}
}

func TestEstimatePriorsBreakSymmetry(t *testing.T) {
	// 1 good vs 1 bad is symmetric; priors must break the tie toward the
	// trusted source.
	votes := makeVotes(1, 1, 50)
	trusts := Estimate(votes, Config{Priors: map[string]float64{"good-0": 0.8, "bad-0": 0.2}})
	if trusts["good-0"] <= trusts["bad-0"] {
		t.Errorf("priors ignored: good=%v bad=%v", trusts["good-0"], trusts["bad-0"])
	}
}

func TestEstimateClamping(t *testing.T) {
	votes := makeVotes(3, 1, 20)
	trusts := Estimate(votes, Config{Damping: 0.2})
	for src, tr := range trusts {
		if tr < 0.1-1e-9 || tr > 0.9+1e-9 {
			t.Errorf("trust %s = %v outside clamp", src, tr)
		}
	}
}

func TestEstimateUnvotedSourceKeepsPrior(t *testing.T) {
	votes := makeVotes(2, 0, 10)
	trusts := Estimate(votes, Config{Priors: map[string]float64{"silent": 0.7}})
	if got := trusts["silent"]; got != 0.7 {
		t.Errorf("silent source trust = %v, want 0.7", got)
	}
}

func TestEstimateEmptyVotes(t *testing.T) {
	trusts := Estimate(nil, Config{})
	if len(trusts) != 0 {
		t.Errorf("empty votes produced %v", trusts)
	}
}

func TestWeightedVerdict(t *testing.T) {
	label, share := WeightedVerdict(map[string][]float64{
		"Verified": {0.9},
		"Refuted":  {0.2, 0.2},
	})
	if label != "Verified" {
		t.Errorf("label = %q", label)
	}
	if share <= 0.5 || share > 1 {
		t.Errorf("share = %v", share)
	}
}

func TestWeightedVerdictMajorityWithEqualTrust(t *testing.T) {
	label, _ := WeightedVerdict(map[string][]float64{
		"Verified": {0.5},
		"Refuted":  {0.5, 0.5},
	})
	if label != "Refuted" {
		t.Errorf("equal-trust majority = %q", label)
	}
}

func TestWeightedVerdictZeroTrustDefaults(t *testing.T) {
	// Zero trust values count as 0.5, not as zero weight.
	label, share := WeightedVerdict(map[string][]float64{"Verified": {0}})
	if label != "Verified" || share != 1 {
		t.Errorf("zero-trust vote = %q, %v", label, share)
	}
}

func TestWeightedVerdictDeterministicTie(t *testing.T) {
	// Exact tie: lexicographically smaller label wins, consistently.
	for i := 0; i < 10; i++ {
		label, _ := WeightedVerdict(map[string][]float64{
			"Verified": {0.5},
			"Refuted":  {0.5},
		})
		if label != "Refuted" {
			t.Fatalf("tie-break = %q", label)
		}
	}
}

func TestWeightedVerdictEmpty(t *testing.T) {
	label, share := WeightedVerdict(nil)
	if label != "" || share != 0 {
		t.Errorf("empty votes = %q, %v", label, share)
	}
}

func TestEstimateConvergence(t *testing.T) {
	// With a single dominant source group the estimate must stabilize well
	// before MaxIter; re-running yields identical values (fixed point).
	votes := makeVotes(4, 2, 100)
	a := Estimate(votes, Config{MaxIter: 50})
	b := Estimate(votes, Config{MaxIter: 5})
	for src := range a {
		if diff := a[src] - b[src]; diff > 1e-6 || diff < -1e-6 {
			t.Errorf("estimate unstable for %s: %v vs %v", src, a[src], b[src])
		}
	}
}
