// Package trust estimates the trustworthiness of data-lake sources —
// challenge C3 of the paper — in the style of Knowledge-Based Trust (Dong
// et al., VLDB 2015): sources that tend to agree with the consensus on many
// data items earn higher trust, and the consensus itself is computed with
// trust-weighted votes, iterated to a fixed point.
//
// The same machinery powers trust-weighted verdict resolution: when several
// retrieved instances disagree about a generated object, their votes are
// weighted by their sources' estimated trust.
package trust

import (
	"math"
	"sort"
)

// Vote is one source's assertion about a data item: the source claims the
// item has the given value (for verification, the value is the verdict).
type Vote struct {
	// SourceID is the asserting source.
	SourceID string
	// ItemID identifies the data item the assertion is about.
	ItemID string
	// Value is the asserted value.
	Value string
}

// Config controls the iterative estimation.
type Config struct {
	// MaxIter bounds the number of estimation rounds (default 20).
	MaxIter int
	// Epsilon is the convergence threshold on the max trust delta
	// (default 1e-6).
	Epsilon float64
	// Damping keeps trust away from the degenerate 0/1 extremes, playing
	// the role of the Beta prior in KBT (default 0.1).
	Damping float64
	// Priors seeds per-source trust; missing sources start at 0.5.
	Priors map[string]float64
}

// normalized returns cfg with defaults applied.
func (c Config) normalized() Config {
	if c.MaxIter <= 0 {
		c.MaxIter = 20
	}
	if c.Epsilon <= 0 {
		c.Epsilon = 1e-6
	}
	if c.Damping <= 0 {
		c.Damping = 0.1
	}
	return c
}

// Estimate runs the iterative trust estimation over the votes and returns
// per-source trust in [Damping/2, 1-Damping/2]. Sources with no votes keep
// their prior (or 0.5).
func Estimate(votes []Vote, cfg Config) map[string]float64 {
	cfg = cfg.normalized()

	trust := make(map[string]float64)
	bySource := make(map[string][]int)
	byItem := make(map[string][]int)
	for i, v := range votes {
		bySource[v.SourceID] = append(bySource[v.SourceID], i)
		byItem[v.ItemID] = append(byItem[v.ItemID], i)
		if _, ok := trust[v.SourceID]; !ok {
			if p, has := cfg.Priors[v.SourceID]; has {
				trust[v.SourceID] = clamp(p, cfg.Damping)
			} else {
				trust[v.SourceID] = 0.5
			}
		}
	}

	for iter := 0; iter < cfg.MaxIter; iter++ {
		// E-step: per item, the trust-weighted consensus value.
		consensus := make(map[string]string, len(byItem))
		for item, idxs := range byItem {
			weights := make(map[string]float64)
			for _, i := range idxs {
				weights[votes[i].Value] += trust[votes[i].SourceID]
			}
			best, bestW := "", math.Inf(-1)
			// Deterministic tie-break by value string.
			keys := make([]string, 0, len(weights))
			for v := range weights {
				keys = append(keys, v)
			}
			sort.Strings(keys)
			for _, v := range keys {
				if weights[v] > bestW {
					best, bestW = v, weights[v]
				}
			}
			consensus[item] = best
		}
		// M-step: per source, the fraction of votes matching consensus.
		maxDelta := 0.0
		for src, idxs := range bySource {
			agree := 0
			for _, i := range idxs {
				if consensus[votes[i].ItemID] == votes[i].Value {
					agree++
				}
			}
			raw := float64(agree) / float64(len(idxs))
			next := clamp(raw, cfg.Damping)
			if d := math.Abs(next - trust[src]); d > maxDelta {
				maxDelta = d
			}
			trust[src] = next
		}
		if maxDelta < cfg.Epsilon {
			break
		}
	}
	// Sources from priors that cast no votes keep their prior.
	for src, p := range cfg.Priors {
		if _, voted := bySource[src]; !voted {
			trust[src] = clamp(p, cfg.Damping)
		}
	}
	return trust
}

// clamp squeezes t into [d/2, 1-d/2].
func clamp(t, damping float64) float64 {
	lo, hi := damping/2, 1-damping/2
	if t < lo {
		return lo
	}
	if t > hi {
		return hi
	}
	return t
}

// WeightedVerdict resolves disagreeing verdict votes by trust-weighted
// majority. votes maps verdict label → slice of source trusts that voted
// for it; the result is the label with the largest summed weight, with
// deterministic tie-break by label. Unknown (zero) trusts count as 0.5.
// The second return is the winning label's share of total weight in (0,1].
func WeightedVerdict(votes map[string][]float64) (string, float64) {
	if len(votes) == 0 {
		return "", 0
	}
	labels := make([]string, 0, len(votes))
	for l := range votes {
		labels = append(labels, l)
	}
	sort.Strings(labels)
	total := 0.0
	sums := make(map[string]float64, len(votes))
	for _, l := range labels {
		for _, t := range votes[l] {
			if t == 0 {
				t = 0.5
			}
			w := t
			sums[l] += w
			total += w
		}
	}
	best, bestW := "", -1.0
	for _, l := range labels {
		if sums[l] > bestW {
			best, bestW = l, sums[l]
		}
	}
	if total == 0 {
		return best, 0
	}
	return best, bestW / total
}
