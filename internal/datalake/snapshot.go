package datalake

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/obs"
)

// DefaultSnapshotRetain is the keep-last-N retention window for unpinned
// snapshots when the registry is built with retain <= 0.
const DefaultSnapshotRetain = 8

// ErrSnapshotNotFound marks a version with no retained snapshot: the
// version may be real (the lake passed through it) but nothing pinned it,
// so there is no View to read at it.
var ErrSnapshotNotFound = errors.New("datalake: no snapshot retained at version")

// BelowFloorError marks a version older than the oldest retained
// snapshot: the data existed once but retention has let it go, so the
// caller cannot get it back by pinning. Floor names the oldest version
// still readable (mirrors the CDC change-feed floor semantics).
type BelowFloorError struct {
	Version uint64 // the requested version
	Floor   uint64 // the oldest retained snapshot version
}

func (e *BelowFloorError) Error() string {
	return fmt.Sprintf("datalake: version %d is below the snapshot retention floor %d", e.Version, e.Floor)
}

// Snapshot is one retained, refcounted pin of the lake at a version: the
// immutable catalog View plus an opaque payload attached by the layer
// that took the snapshot (the pipeline hangs frozen index shards and a
// trust-map copy here). Handles are acquired from the registry and must
// be Released; the payload of a snapshot evicted by retention is dropped
// only once the last in-flight reader releases it, so a reader can never
// observe a freed snapshot.
type Snapshot struct {
	reg     *SnapshotRegistry
	id      uint64 // registry-unique, distinguishes re-pins of one version
	version uint64
	view    *View
	created time.Time

	// Guarded by reg.mu.
	payload any
	pinned  bool
	refs    int
	retired bool // evicted from the registry; payload drops at refs==0
}

// Version returns the lake version the snapshot is pinned at.
func (s *Snapshot) Version() uint64 { return s.version }

// ID returns the registry-unique snapshot identity. Two snapshots at the
// same version (a pin evicted and later re-registered) get distinct IDs,
// so derived state (e.g. cached pinned verdicts) keyed by ID can never
// leak across pin generations.
func (s *Snapshot) ID() uint64 { return s.id }

// View returns the immutable catalog view pinned at the snapshot version.
func (s *Snapshot) View() *View { return s.view }

// Created returns when the snapshot was registered.
func (s *Snapshot) Created() time.Time { return s.created }

// Payload returns the opaque attachment supplied at Add time. Valid for
// the lifetime of an acquired handle (the registry never drops the
// payload while any reader holds a reference).
func (s *Snapshot) Payload() any {
	s.reg.mu.Lock()
	defer s.reg.mu.Unlock()
	return s.payload
}

// Release returns an acquired handle. The handle must not be used after
// Release; releasing the last reference to an evicted snapshot frees its
// payload.
func (s *Snapshot) Release() {
	s.reg.mu.Lock()
	defer s.reg.mu.Unlock()
	if s.refs <= 0 {
		panic("datalake: Snapshot.Release without a matching Acquire")
	}
	s.refs--
	if s.retired && s.refs == 0 {
		s.payload = nil
	}
}

// SnapshotInfo is the registry's externally visible record of one
// retained snapshot.
type SnapshotInfo struct {
	Version uint64    `json:"version"`
	Pinned  bool      `json:"pinned"`
	Readers int       `json:"readers"` // in-flight acquired handles
	Created time.Time `json:"created"`
}

// SnapshotRegistry retains queryable snapshots of the lake: every
// checkpoint (or explicit pin) registers one, a keep-last-N policy bounds
// the unpinned population, and explicit pins are retained until unpinned.
// Eviction never invalidates an in-flight reader — an acquired handle
// stays readable until released, after which the payload is freed.
type SnapshotRegistry struct {
	mu     sync.Mutex
	snaps  map[uint64]*Snapshot
	order  []uint64 // retained versions, ascending
	retain int      // keep-last-N unpinned snapshots
	nextID uint64   // snapshot identity counter
}

// NewSnapshotRegistry builds a registry retaining the last retain
// unpinned snapshots (retain <= 0 selects DefaultSnapshotRetain).
func NewSnapshotRegistry(retain int) *SnapshotRegistry {
	if retain <= 0 {
		retain = DefaultSnapshotRetain
	}
	return &SnapshotRegistry{snaps: make(map[uint64]*Snapshot), retain: retain}
}

// SetMetrics registers snapshot gauges on reg: retained/pinned counts and
// the age of the oldest retained snapshot.
func (r *SnapshotRegistry) SetMetrics(reg *obs.Registry) {
	if reg == nil {
		return
	}
	reg.GaugeFunc("verifai_snapshots_retained", "Snapshots currently retained (pinned + retention window).", func() float64 {
		r.mu.Lock()
		defer r.mu.Unlock()
		return float64(len(r.order))
	})
	reg.GaugeFunc("verifai_snapshots_pinned", "Snapshots retained by an explicit pin.", func() float64 {
		r.mu.Lock()
		defer r.mu.Unlock()
		n := 0
		for _, v := range r.order {
			if r.snaps[v].pinned {
				n++
			}
		}
		return float64(n)
	})
	reg.GaugeFunc("verifai_snapshot_oldest_age_seconds", "Age of the oldest retained snapshot.", func() float64 {
		r.mu.Lock()
		defer r.mu.Unlock()
		if len(r.order) == 0 {
			return 0
		}
		return time.Since(r.snaps[r.order[0]].created).Seconds()
	})
}

// Add registers a snapshot of view with an opaque payload, returning the
// retained record. Registering an already-retained version keeps the
// existing snapshot (its readers stay valid) and only promotes it to
// pinned when asked; the new payload is discarded. Retention runs
// immediately: unpinned snapshots beyond the keep-last-N window are
// evicted oldest-first.
func (r *SnapshotRegistry) Add(view *View, payload any, pinned bool) *Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	if s, ok := r.snaps[view.Version()]; ok {
		if pinned {
			s.pinned = true
		}
		return s
	}
	r.nextID++
	s := &Snapshot{reg: r, id: r.nextID, version: view.Version(), view: view, payload: payload, pinned: pinned, created: time.Now()}
	r.snaps[s.version] = s
	r.order = append(r.order, s.version)
	sort.Slice(r.order, func(i, j int) bool { return r.order[i] < r.order[j] })
	r.gcLocked()
	return s
}

// gcLocked evicts unpinned snapshots beyond the retention window, oldest
// first. Evicted snapshots with in-flight readers keep their payload
// until the last Release.
func (r *SnapshotRegistry) gcLocked() {
	unpinned := 0
	for _, v := range r.order {
		if !r.snaps[v].pinned {
			unpinned++
		}
	}
	if unpinned <= r.retain {
		return
	}
	keep := r.order[:0]
	for _, v := range r.order {
		s := r.snaps[v]
		if !s.pinned && unpinned > r.retain {
			unpinned--
			s.retired = true
			if s.refs == 0 {
				s.payload = nil
			}
			delete(r.snaps, v)
			continue
		}
		keep = append(keep, v)
	}
	r.order = keep
}

// Acquire takes a read handle on the snapshot at version. The caller must
// Release it. A missing version distinguishes "below the retention floor"
// (BelowFloorError, carrying the floor) from "never retained"
// (ErrSnapshotNotFound).
func (r *SnapshotRegistry) Acquire(version uint64) (*Snapshot, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	s, ok := r.snaps[version]
	if !ok {
		if len(r.order) > 0 && version < r.order[0] {
			return nil, &BelowFloorError{Version: version, Floor: r.order[0]}
		}
		return nil, fmt.Errorf("%w %d", ErrSnapshotNotFound, version)
	}
	s.refs++
	return s, nil
}

// Pin marks the retained snapshot at version as explicitly pinned,
// excluding it from retention GC until Unpin.
func (r *SnapshotRegistry) Pin(version uint64) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	s, ok := r.snaps[version]
	if !ok {
		if len(r.order) > 0 && version < r.order[0] {
			return &BelowFloorError{Version: version, Floor: r.order[0]}
		}
		return fmt.Errorf("%w %d", ErrSnapshotNotFound, version)
	}
	s.pinned = true
	return nil
}

// Unpin clears the explicit pin at version; the snapshot rejoins the
// keep-last-N window and is evicted immediately when already beyond it.
// In-flight readers stay valid.
func (r *SnapshotRegistry) Unpin(version uint64) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	s, ok := r.snaps[version]
	if !ok {
		return fmt.Errorf("%w %d", ErrSnapshotNotFound, version)
	}
	s.pinned = false
	r.gcLocked()
	return nil
}

// List returns the retained snapshots, oldest first.
func (r *SnapshotRegistry) List() []SnapshotInfo {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]SnapshotInfo, 0, len(r.order))
	for _, v := range r.order {
		s := r.snaps[v]
		out = append(out, SnapshotInfo{Version: v, Pinned: s.pinned, Readers: s.refs, Created: s.created})
	}
	return out
}

// Floor returns the oldest retained snapshot version (0 when none is
// retained): the time-travel read floor, mirroring the CDC feed's WAL
// floor.
func (r *SnapshotRegistry) Floor() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.order) == 0 {
		return 0
	}
	return r.order[0]
}

// Latest returns the newest retained snapshot version (0 when none).
func (r *SnapshotRegistry) Latest() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.order) == 0 {
		return 0
	}
	return r.order[len(r.order)-1]
}
