package datalake

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/doc"
	"repro/internal/kg"
	"repro/internal/table"
)

// TestFlushUnderLoad ingests from concurrent writers against a slow
// asynchronous subscriber, then checks the Flush contract: the returned
// watermark covers every accepted write, every one is resolvable, and
// Version() equals the watermark (all applications completed).
func TestFlushUnderLoad(t *testing.T) {
	l := New(WithQueueSize(8)) // small queue: exercise backpressure too
	var applied atomic.Int64
	l.Subscribe(Subscriber{Apply: func(ev Event, done func(error)) {
		go func() { // complete off the dispatcher, out of order
			time.Sleep(time.Duration(ev.Version%3) * time.Millisecond)
			applied.Add(1)
			done(nil)
		}()
	}})

	const writers, perWriter = 4, 20
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				if err := l.AddDocument(&doc.Document{ID: fmt.Sprintf("d%d-%d", w, i), Text: "body"}); err != nil {
					t.Errorf("AddDocument: %v", err)
				}
			}
		}(w)
	}
	wg.Wait()

	v, err := l.Flush()
	if err != nil {
		t.Fatalf("Flush error: %v", err)
	}
	if want := uint64(writers * perWriter); v != want {
		t.Fatalf("Flush watermark = %d, want %d", v, want)
	}
	if got := l.Version(); got != v {
		t.Fatalf("Version() = %d after Flush, want %d", got, v)
	}
	if got := applied.Load(); got != int64(writers*perWriter) {
		t.Fatalf("applied %d events, want %d", got, writers*perWriter)
	}
	for w := 0; w < writers; w++ {
		for i := 0; i < perWriter; i++ {
			if _, err := l.Resolve(fmt.Sprintf("text:d%d-%d", w, i)); err != nil {
				t.Fatalf("accepted write not resolvable: %v", err)
			}
		}
	}
}

// TestCloseRejectsNewKeepsQueued closes the lake while a batch's events are
// still queued behind a gated subscriber: Close must reject subsequent
// writes with ErrClosed while every already-accepted write is applied (none
// lost), and must be idempotent.
func TestCloseRejectsNewKeepsQueued(t *testing.T) {
	l := New()
	gate := make(chan struct{})
	var applied atomic.Int64
	l.Subscribe(Subscriber{Apply: func(ev Event, done func(error)) {
		go func() {
			<-gate
			applied.Add(1)
			done(nil)
		}()
	}})

	const n = 10
	items := make([]BatchItem, n)
	for i := range items {
		items[i] = BatchItem{Doc: &doc.Document{ID: fmt.Sprintf("queued%d", i), Text: "body"}}
	}
	batchDone := make(chan error, 1)
	go func() {
		results, err := l.AddBatch(items)
		for _, res := range results {
			if err == nil {
				err = res.Err
			}
		}
		batchDone <- err
	}()

	// Wait until the whole batch has committed (catalog-visible) though its
	// application is gated.
	for l.Stats().Docs < n {
		time.Sleep(time.Millisecond)
	}

	closeDone := make(chan error, 1)
	go func() { closeDone <- l.Close() }()

	// Wait (white-box) for Close to flip the closed flag, then prove new
	// writes are rejected even though the queued batch is still unapplied.
	for {
		l.writeMu.Lock()
		c := l.closed
		l.writeMu.Unlock()
		if c {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if err := l.AddDocument(&doc.Document{ID: "rejected", Text: "body"}); !errors.Is(err, ErrClosed) {
		t.Fatalf("AddDocument during close = %v, want ErrClosed", err)
	}

	close(gate) // let the appliers drain
	if err := <-closeDone; err != nil {
		t.Fatalf("Close error: %v", err)
	}
	if err := <-batchDone; err != nil {
		t.Fatalf("queued batch write lost: %v", err)
	}
	if got := applied.Load(); got != int64(n) {
		t.Fatalf("applied %d events, want %d (none lost)", got, n)
	}
	if got := l.Version(); got != uint64(n) {
		t.Fatalf("Version() = %d after Close, want %d", got, n)
	}
	// Still closed, still readable, still idempotent.
	if err := l.AddTriple(kg.Triple{Subject: "s", Predicate: "p", Object: "o"}); !errors.Is(err, ErrClosed) {
		t.Fatalf("post-close AddTriple error = %v, want ErrClosed", err)
	}
	if _, err := l.Resolve("text:queued0"); err != nil {
		t.Fatalf("closed lake not readable: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("second Close error: %v", err)
	}
	// Waiting for a version that can no longer commit returns ErrClosed
	// instead of blocking forever.
	if err := l.WaitVersion(l.Version() + 1); !errors.Is(err, ErrClosed) {
		t.Fatalf("WaitVersion(future) after Close = %v, want ErrClosed", err)
	}
}

// TestAddBatchMixed checks the batch API: contiguous versions in slice
// order across modalities, per-item duplicate/malformed errors that leave
// the rest of the batch intact, and version-ordered event delivery.
func TestAddBatchMixed(t *testing.T) {
	l := New()
	var mu sync.Mutex
	var versions []uint64
	l.OnChange(func(ev Event) error {
		mu.Lock()
		versions = append(versions, ev.Version)
		mu.Unlock()
		return nil
	})

	tbl := table.New("t1", "caption", []string{"a"})
	tbl.MustAppendRow("x")
	if err := l.AddTable(tbl); err != nil { // pre-existing: batch dup target
		t.Fatal(err)
	}

	dup := table.New("t1", "dup", []string{"a"})
	fresh := table.New("t2", "fresh", []string{"a"})
	fresh.MustAppendRow("y")
	results, err := l.AddBatch([]BatchItem{
		{Table: fresh},
		{Doc: &doc.Document{ID: "d1", Text: "body"}},
		{Table: dup},
		{Triple: &kg.Triple{Subject: "s", Predicate: "p", Object: "o"}},
		{},                              // malformed: nothing set
		{Doc: &doc.Document{Text: "x"}}, // malformed: empty ID
	})
	if err != nil {
		t.Fatalf("AddBatch error: %v", err)
	}
	if results[0].Version != 2 || results[0].Err != nil {
		t.Errorf("item 0 = %+v, want version 2", results[0])
	}
	if results[1].Version != 3 || results[1].Err != nil {
		t.Errorf("item 1 = %+v, want version 3", results[1])
	}
	if !errors.Is(results[2].Err, ErrDuplicate) {
		t.Errorf("item 2 err = %v, want ErrDuplicate", results[2].Err)
	}
	if results[3].Version != 4 || results[3].Err != nil {
		t.Errorf("item 3 = %+v, want version 4", results[3])
	}
	if results[4].Err == nil || !strings.Contains(results[4].Err.Error(), "exactly one") {
		t.Errorf("item 4 err = %v, want malformed-item error", results[4].Err)
	}
	if results[5].Err == nil || !strings.Contains(results[5].Err.Error(), "empty ID") {
		t.Errorf("item 5 err = %v, want empty-ID error", results[5].Err)
	}
	if v := l.Version(); v != 4 {
		t.Fatalf("Version() = %d, want 4 (three committed batch items)", v)
	}
	mu.Lock()
	defer mu.Unlock()
	for i := 1; i < len(versions); i++ {
		if versions[i] != versions[i-1]+1 {
			t.Fatalf("events out of order: %v", versions)
		}
	}
	if len(versions) != 4 {
		t.Fatalf("got %d events, want 4", len(versions))
	}
}

// TestSubscriberPreparePayload checks the two-stage subscriber contract:
// Prepare runs pre-commit (no version assigned yet) and its payload arrives
// on the committed event; entity events flow through the same path.
func TestSubscriberPreparePayload(t *testing.T) {
	l := New()
	type payload struct{ derived string }
	var prepared, appliedOK atomic.Int64
	l.Subscribe(Subscriber{
		Prepare: func(ev Event) (any, error) {
			if ev.Version != 0 {
				t.Errorf("Prepare saw version %d, want 0 (pre-commit)", ev.Version)
			}
			prepared.Add(1)
			if ev.Kind == KindText {
				return &payload{derived: "derived:" + ev.Doc.ID}, nil
			}
			return nil, nil
		},
		Apply: func(ev Event, done func(error)) {
			if ev.Kind == KindText {
				p, ok := ev.Payload.(*payload)
				if !ok || p.derived != "derived:"+ev.Doc.ID {
					t.Errorf("payload = %#v, want prepared derivation", ev.Payload)
				} else {
					appliedOK.Add(1)
				}
			}
			done(nil)
		},
	})
	if err := l.AddDocument(&doc.Document{ID: "d1", Text: "body"}); err != nil {
		t.Fatal(err)
	}
	if err := l.AddTriple(kg.Triple{Subject: "s", Predicate: "p", Object: "o"}); err != nil {
		t.Fatal(err)
	}
	if prepared.Load() != 2 || appliedOK.Load() != 1 {
		t.Fatalf("prepared=%d appliedOK=%d, want 2 and 1", prepared.Load(), appliedOK.Load())
	}
}

// TestPrepareErrorAbortsIngest checks that a Prepare failure rejects the
// ingest before anything commits: no catalog change, no version bump, no
// event.
func TestPrepareErrorAbortsIngest(t *testing.T) {
	l := New()
	sentinel := errors.New("prepare exploded")
	events := 0
	l.Subscribe(Subscriber{
		Prepare: func(Event) (any, error) { return nil, sentinel },
		Apply:   func(ev Event, done func(error)) { events++; done(nil) },
	})
	err := l.AddDocument(&doc.Document{ID: "d1", Text: "body"})
	if !errors.Is(err, sentinel) {
		t.Fatalf("AddDocument error = %v, want prepare error", err)
	}
	if _, ok := l.Document("d1"); ok {
		t.Fatal("document committed despite prepare failure")
	}
	if v := l.Version(); v != 0 {
		t.Fatalf("Version() = %d, want 0", v)
	}
	if _, err := l.Flush(); err != nil {
		t.Fatalf("Flush error: %v", err)
	}
	if events != 0 {
		t.Fatalf("%d events delivered for an aborted ingest", events)
	}
}

// TestAsyncApplyErrorReported checks that an error delivered through an
// asynchronous done callback reaches the ingest caller and leaves the
// version unpublished, exactly like a synchronous hook error.
func TestAsyncApplyErrorReported(t *testing.T) {
	l := New()
	sentinel := errors.New("shard applier failed")
	var fail atomic.Bool
	l.Subscribe(Subscriber{Apply: func(ev Event, done func(error)) {
		go func() {
			if fail.Load() {
				done(sentinel)
				return
			}
			done(nil)
		}()
	}})
	fail.Store(true)
	if err := l.AddDocument(&doc.Document{ID: "d1", Text: "body"}); !errors.Is(err, sentinel) {
		t.Fatalf("AddDocument error = %v, want applier error", err)
	}
	if v := l.Version(); v != 0 {
		t.Fatalf("Version() = %d after failed apply, want 0 (unpublished)", v)
	}
	fail.Store(false)
	if err := l.AddDocument(&doc.Document{ID: "d2", Text: "body"}); err != nil {
		t.Fatal(err)
	}
	if v := l.Version(); v != 2 {
		t.Fatalf("Version() = %d after recovery, want 2", v)
	}
}
