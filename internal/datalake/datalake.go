// Package datalake implements the multi-modal data lake: a single catalog
// over tables, text documents, and knowledge-graph entities, with per-source
// metadata for trust scoring. Data instances — the unit of retrieval and
// verification in the paper — are addressed by stable string IDs:
//
//	table:<tableID>          a whole table
//	tuple:<tableID>#<row>    one row of a table
//	text:<docID>             a text document
//	entity:<name>            a knowledge-graph entity neighborhood
package datalake

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"

	"repro/internal/doc"
	"repro/internal/kg"
	"repro/internal/table"
)

// Kind classifies a data instance.
type Kind int

const (
	// KindTable is a whole relational table.
	KindTable Kind = iota
	// KindTuple is a single row of a table.
	KindTuple
	// KindText is a text document.
	KindText
	// KindEntity is a knowledge-graph entity neighborhood.
	KindEntity
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindTable:
		return "table"
	case KindTuple:
		return "tuple"
	case KindText:
		return "text"
	case KindEntity:
		return "entity"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Source describes a dataset contributing instances to the lake.
type Source struct {
	// ID is the stable source identifier.
	ID string
	// Name is a human-readable label ("TabFact", "WikiTable-TURL", ...).
	Name string
	// TrustPrior is the initial trustworthiness in [0,1] before the trust
	// module refines it. Defaults to 0.5 (unknown).
	TrustPrior float64
}

// Instance is a resolved data instance: exactly one of Table, Tuple, Doc, or
// Entity is populated according to Kind.
type Instance struct {
	ID       string
	Kind     Kind
	SourceID string

	Table  *table.Table
	Tuple  *table.Tuple
	Doc    *doc.Document
	Entity string
	// Graph is set for entity instances so callers can expand the
	// neighborhood.
	Graph *kg.Graph
}

// Serialize flattens the instance's content into a single string, the form
// both indexes consume.
func (in Instance) Serialize() string {
	switch in.Kind {
	case KindTable:
		return in.Table.SerializeForIndex()
	case KindTuple:
		return in.Tuple.SerializeForIndex()
	case KindText:
		return in.Doc.SerializeForIndex()
	case KindEntity:
		return in.Graph.SerializeEntity(in.Entity)
	default:
		return ""
	}
}

// Lake is the multi-modal data lake catalog. Ingestion methods take an
// exclusive lock; lookups take a shared lock, so a built lake can be queried
// concurrently.
type Lake struct {
	mu      sync.RWMutex
	tables  map[string]*table.Table
	docs    map[string]*doc.Document
	graph   *kg.Graph
	sources map[string]Source

	tableIDs []string
	docIDs   []string
}

// New returns an empty lake.
func New() *Lake {
	return &Lake{
		tables:  make(map[string]*table.Table),
		docs:    make(map[string]*doc.Document),
		graph:   kg.NewGraph(),
		sources: make(map[string]Source),
	}
}

// AddSource registers (or overwrites) a source description. A zero
// TrustPrior is normalized to 0.5.
func (l *Lake) AddSource(s Source) {
	if s.TrustPrior == 0 {
		s.TrustPrior = 0.5
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.sources[s.ID] = s
}

// Source returns the source metadata for id; ok is false when unknown.
func (l *Lake) Source(id string) (Source, bool) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	s, ok := l.sources[id]
	return s, ok
}

// Sources returns all registered sources sorted by ID.
func (l *Lake) Sources() []Source {
	l.mu.RLock()
	defer l.mu.RUnlock()
	out := make([]Source, 0, len(l.sources))
	for _, s := range l.sources {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// AddTable ingests a table. The table's ID must be unique.
func (l *Lake) AddTable(t *table.Table) error {
	if t.ID == "" {
		return fmt.Errorf("datalake: table with empty ID")
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if _, dup := l.tables[t.ID]; dup {
		return fmt.Errorf("datalake: duplicate table id %q", t.ID)
	}
	l.tables[t.ID] = t
	l.tableIDs = append(l.tableIDs, t.ID)
	return nil
}

// AddDocument ingests a text document. The document's ID must be unique.
func (l *Lake) AddDocument(d *doc.Document) error {
	if d.ID == "" {
		return fmt.Errorf("datalake: document with empty ID")
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if _, dup := l.docs[d.ID]; dup {
		return fmt.Errorf("datalake: duplicate document id %q", d.ID)
	}
	l.docs[d.ID] = d
	l.docIDs = append(l.docIDs, d.ID)
	return nil
}

// AddTriple ingests a knowledge-graph triple.
func (l *Lake) AddTriple(t kg.Triple) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.graph.Add(t)
}

// Graph returns the lake's knowledge graph (shared; query-only after build).
func (l *Lake) Graph() *kg.Graph {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.graph
}

// Table returns the table with the given ID.
func (l *Lake) Table(id string) (*table.Table, bool) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	t, ok := l.tables[id]
	return t, ok
}

// Document returns the document with the given ID.
func (l *Lake) Document(id string) (*doc.Document, bool) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	d, ok := l.docs[id]
	return d, ok
}

// TableIDs returns all table IDs in insertion order (copy).
func (l *Lake) TableIDs() []string {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return append([]string(nil), l.tableIDs...)
}

// DocIDs returns all document IDs in insertion order (copy).
func (l *Lake) DocIDs() []string {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return append([]string(nil), l.docIDs...)
}

// Stats summarizes lake contents, matching the corpus statistics the paper
// reports (tables, tuples, text files).
type Stats struct {
	Tables   int
	Tuples   int
	Docs     int
	Triples  int
	Sources  int
	Entities int
}

// Stats computes the current lake statistics.
func (l *Lake) Stats() Stats {
	l.mu.RLock()
	defer l.mu.RUnlock()
	s := Stats{
		Tables:  len(l.tables),
		Docs:    len(l.docs),
		Triples: l.graph.Len(),
		Sources: len(l.sources),
	}
	for _, t := range l.tables {
		s.Tuples += t.NumRows()
	}
	s.Entities = len(l.graph.Entities())
	return s
}

// --- instance addressing ---

// TableInstanceID returns the instance ID of a whole table.
func TableInstanceID(tableID string) string { return "table:" + tableID }

// TupleInstanceID returns the instance ID of row `row` of a table.
func TupleInstanceID(tableID string, row int) string {
	return "tuple:" + tableID + "#" + strconv.Itoa(row)
}

// TextInstanceID returns the instance ID of a document.
func TextInstanceID(docID string) string { return "text:" + docID }

// EntityInstanceID returns the instance ID of a KG entity neighborhood.
func EntityInstanceID(entity string) string { return "entity:" + entity }

// KindOf parses the kind prefix of an instance ID.
func KindOf(instanceID string) (Kind, bool) {
	switch {
	case strings.HasPrefix(instanceID, "table:"):
		return KindTable, true
	case strings.HasPrefix(instanceID, "tuple:"):
		return KindTuple, true
	case strings.HasPrefix(instanceID, "text:"):
		return KindText, true
	case strings.HasPrefix(instanceID, "entity:"):
		return KindEntity, true
	default:
		return 0, false
	}
}

// Resolve maps an instance ID to its content. It returns an error for
// malformed IDs or IDs referencing missing data — a resolution failure
// indicates index/lake drift, which callers surface rather than skip.
func (l *Lake) Resolve(instanceID string) (Instance, error) {
	kind, ok := KindOf(instanceID)
	if !ok {
		return Instance{}, fmt.Errorf("datalake: malformed instance id %q", instanceID)
	}
	l.mu.RLock()
	defer l.mu.RUnlock()
	switch kind {
	case KindTable:
		id := strings.TrimPrefix(instanceID, "table:")
		t, ok := l.tables[id]
		if !ok {
			return Instance{}, fmt.Errorf("datalake: unknown table %q", id)
		}
		return Instance{ID: instanceID, Kind: KindTable, SourceID: t.SourceID, Table: t}, nil
	case KindTuple:
		rest := strings.TrimPrefix(instanceID, "tuple:")
		hash := strings.LastIndexByte(rest, '#')
		if hash < 0 {
			return Instance{}, fmt.Errorf("datalake: malformed tuple id %q", instanceID)
		}
		tableID := rest[:hash]
		row, err := strconv.Atoi(rest[hash+1:])
		if err != nil {
			return Instance{}, fmt.Errorf("datalake: malformed tuple row in %q: %w", instanceID, err)
		}
		t, ok := l.tables[tableID]
		if !ok {
			return Instance{}, fmt.Errorf("datalake: unknown table %q", tableID)
		}
		tp, ok := t.TupleAt(row)
		if !ok {
			return Instance{}, fmt.Errorf("datalake: row %d out of range for table %q", row, tableID)
		}
		return Instance{ID: instanceID, Kind: KindTuple, SourceID: t.SourceID, Tuple: &tp}, nil
	case KindText:
		id := strings.TrimPrefix(instanceID, "text:")
		d, ok := l.docs[id]
		if !ok {
			return Instance{}, fmt.Errorf("datalake: unknown document %q", id)
		}
		return Instance{ID: instanceID, Kind: KindText, SourceID: d.SourceID, Doc: d}, nil
	case KindEntity:
		name := strings.TrimPrefix(instanceID, "entity:")
		ts := l.graph.About(name)
		if len(ts) == 0 {
			return Instance{}, fmt.Errorf("datalake: unknown entity %q", name)
		}
		src := ts[0].SourceID
		return Instance{ID: instanceID, Kind: KindEntity, SourceID: src, Entity: name, Graph: l.graph}, nil
	default:
		return Instance{}, fmt.Errorf("datalake: unhandled kind %v", kind)
	}
}
