// Package datalake implements the multi-modal data lake: a single catalog
// over tables, text documents, and knowledge-graph entities, with per-source
// metadata for trust scoring. Data instances — the unit of retrieval and
// verification in the paper — are addressed by stable string IDs:
//
//	table:<tableID>          a whole table
//	tuple:<tableID>#<row>    one row of a table
//	text:<docID>             a text document
//	entity:<name>            a knowledge-graph entity neighborhood
package datalake

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"

	"repro/internal/doc"
	"repro/internal/kg"
	"repro/internal/table"
)

// ErrDuplicate marks ingestion of an already-present ID; callers (e.g. the
// HTTP layer) can detect it with errors.Is to distinguish client conflicts
// from internal failures.
var ErrDuplicate = errors.New("duplicate id")

// Kind classifies a data instance.
type Kind int

const (
	// KindTable is a whole relational table.
	KindTable Kind = iota
	// KindTuple is a single row of a table.
	KindTuple
	// KindText is a text document.
	KindText
	// KindEntity is a knowledge-graph entity neighborhood.
	KindEntity
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindTable:
		return "table"
	case KindTuple:
		return "tuple"
	case KindText:
		return "text"
	case KindEntity:
		return "entity"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Source describes a dataset contributing instances to the lake.
type Source struct {
	// ID is the stable source identifier.
	ID string
	// Name is a human-readable label ("TabFact", "WikiTable-TURL", ...).
	Name string
	// TrustPrior is the initial trustworthiness in [0,1] before the trust
	// module refines it. Defaults to 0.5 (unknown).
	TrustPrior float64
}

// Instance is a resolved data instance: exactly one of Table, Tuple, Doc, or
// Entity is populated according to Kind.
type Instance struct {
	ID       string
	Kind     Kind
	SourceID string

	Table  *table.Table
	Tuple  *table.Tuple
	Doc    *doc.Document
	Entity string
	// Graph is set for entity instances so callers can expand the
	// neighborhood.
	Graph *kg.Graph
}

// Serialize flattens the instance's content into a single string, the form
// both indexes consume.
func (in Instance) Serialize() string {
	switch in.Kind {
	case KindTable:
		return in.Table.SerializeForIndex()
	case KindTuple:
		return in.Tuple.SerializeForIndex()
	case KindText:
		return in.Doc.SerializeForIndex()
	case KindEntity:
		return in.Graph.SerializeEntity(in.Entity)
	default:
		return ""
	}
}

// Event describes one committed lake mutation, delivered in version order
// to change subscribers. Exactly one of Table, Doc, or Triple is populated
// according to Kind (KindTable, KindText, or KindEntity respectively).
type Event struct {
	// Version is the lake version the mutation committed as.
	Version uint64
	// Kind classifies the mutation's modality.
	Kind   Kind
	Table  *table.Table
	Doc    *doc.Document
	Triple *kg.Triple
}

// ChangeHook observes committed mutations. Hooks run synchronously on the
// ingesting goroutine, after the catalog lock is released (so they may query
// the lake), and in version order. A hook error is returned to the ingest
// caller; the catalog mutation itself stays committed — the error signals
// that a downstream consumer (e.g. an incremental indexer) lagged, not that
// the data was lost.
type ChangeHook func(Event) error

// Lake is the multi-modal data lake catalog. The lake is live: ingestion is
// allowed at any time and is serialized by an exclusive lock, while lookups
// take a shared lock, so the lake serves reads during writes. Every
// mutation bumps a monotonic version and notifies registered change hooks.
type Lake struct {
	// writeMu serializes mutations end-to-end (catalog update + hook
	// notification) so hooks observe events in version order. It is always
	// acquired before mu.
	writeMu sync.Mutex
	hooks   []registeredHook
	hookSeq int

	mu      sync.RWMutex
	version uint64
	// published trails version: it advances only after a mutation's hooks
	// have run, so readers of Version() never observe a version whose
	// incremental indexing is still in flight.
	published uint64
	tables    map[string]*table.Table
	docs    map[string]*doc.Document
	graph   *kg.Graph
	sources map[string]Source

	tableIDs []string
	docIDs   []string
}

// New returns an empty lake.
func New() *Lake {
	return &Lake{
		tables:  make(map[string]*table.Table),
		docs:    make(map[string]*doc.Document),
		graph:   kg.NewGraph(),
		sources: make(map[string]Source),
	}
}

// AddSource registers (or overwrites) a source description. A zero
// TrustPrior is normalized to 0.5.
func (l *Lake) AddSource(s Source) {
	if s.TrustPrior == 0 {
		s.TrustPrior = 0.5
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.sources[s.ID] = s
}

// Source returns the source metadata for id; ok is false when unknown.
func (l *Lake) Source(id string) (Source, bool) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	s, ok := l.sources[id]
	return s, ok
}

// Sources returns all registered sources sorted by ID.
func (l *Lake) Sources() []Source {
	l.mu.RLock()
	defer l.mu.RUnlock()
	out := make([]Source, 0, len(l.sources))
	for _, s := range l.sources {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// registeredHook pairs a hook with its registration handle so it can be
// removed again.
type registeredHook struct {
	id int
	h  ChangeHook
}

// OnChange registers a hook observing every subsequent mutation. Typically
// called once at system assembly (before concurrent ingestion starts) to
// wire incremental index maintenance. The returned function unsubscribes
// the hook (idempotent); discard it for a process-lifetime subscription.
func (l *Lake) OnChange(h ChangeHook) (unsubscribe func()) {
	l.writeMu.Lock()
	defer l.writeMu.Unlock()
	return l.subscribeLocked(h)
}

// OnChangeSync runs init and then registers h, all while holding the lake's
// write lock: no mutation can commit between init's snapshot of the lake
// and the hook registration. An incremental indexer uses this to close the
// gap where a concurrent ingest would be neither bulk-indexed nor delivered
// as an event. init may read the lake but must not mutate it (that would
// deadlock); an init error aborts the registration.
func (l *Lake) OnChangeSync(init func() error, h ChangeHook) (unsubscribe func(), err error) {
	l.writeMu.Lock()
	defer l.writeMu.Unlock()
	if init != nil {
		if err := init(); err != nil {
			return nil, err
		}
	}
	return l.subscribeLocked(h), nil
}

// subscribeLocked appends the hook and builds its unsubscribe closure.
// Caller holds writeMu.
func (l *Lake) subscribeLocked(h ChangeHook) func() {
	l.hookSeq++
	id := l.hookSeq
	l.hooks = append(l.hooks, registeredHook{id: id, h: h})
	return func() {
		l.writeMu.Lock()
		defer l.writeMu.Unlock()
		for i, rh := range l.hooks {
			if rh.id == id {
				l.hooks = append(l.hooks[:i], l.hooks[i+1:]...)
				return
			}
		}
	}
}

// Version returns the lake's monotonic mutation version (0 for an empty,
// untouched lake). Each successful AddTable/AddDocument/AddTriple bumps it
// by one, and the bump becomes visible here only after the mutation's
// change hooks (incremental indexing) have completed — so once a reader
// observes Version() >= V, every mutation up to V whose ingest call
// returned nil is fully indexed. A mutation whose hook errored (its ingest
// call returned the error) stays committed in the catalog but may be
// absent from the indexes; its own version is never published, though
// later successful mutations publish past it.
func (l *Lake) Version() uint64 {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.published
}

// notify runs the hooks for one committed event and then publishes its
// version; a hook error leaves the version unpublished (the caller sees
// the error instead). Caller holds writeMu (but not mu).
func (l *Lake) notify(ev Event) error {
	for _, rh := range l.hooks {
		if err := rh.h(ev); err != nil {
			return err
		}
	}
	l.mu.Lock()
	l.published = ev.Version
	l.mu.Unlock()
	return nil
}

// AddTable ingests a table. The table's ID must be unique. Safe to call at
// any time, including while the lake serves queries.
func (l *Lake) AddTable(t *table.Table) error {
	_, err := l.AddTableVersioned(t)
	return err
}

// AddTableVersioned is AddTable returning the lake version the mutation
// committed as, for callers correlating ingests with the change feed.
func (l *Lake) AddTableVersioned(t *table.Table) (uint64, error) {
	if t.ID == "" {
		return 0, fmt.Errorf("datalake: table with empty ID")
	}
	l.writeMu.Lock()
	defer l.writeMu.Unlock()
	l.mu.Lock()
	if _, dup := l.tables[t.ID]; dup {
		l.mu.Unlock()
		return 0, fmt.Errorf("datalake: duplicate table id %q: %w", t.ID, ErrDuplicate)
	}
	l.tables[t.ID] = t
	l.tableIDs = append(l.tableIDs, t.ID)
	l.version++
	ev := Event{Version: l.version, Kind: KindTable, Table: t}
	l.mu.Unlock()
	return ev.Version, l.notify(ev)
}

// AddDocument ingests a text document. The document's ID must be unique.
// Safe to call at any time, including while the lake serves queries.
func (l *Lake) AddDocument(d *doc.Document) error {
	_, err := l.AddDocumentVersioned(d)
	return err
}

// AddDocumentVersioned is AddDocument returning the lake version the
// mutation committed as.
func (l *Lake) AddDocumentVersioned(d *doc.Document) (uint64, error) {
	if d.ID == "" {
		return 0, fmt.Errorf("datalake: document with empty ID")
	}
	l.writeMu.Lock()
	defer l.writeMu.Unlock()
	l.mu.Lock()
	if _, dup := l.docs[d.ID]; dup {
		l.mu.Unlock()
		return 0, fmt.Errorf("datalake: duplicate document id %q: %w", d.ID, ErrDuplicate)
	}
	l.docs[d.ID] = d
	l.docIDs = append(l.docIDs, d.ID)
	l.version++
	ev := Event{Version: l.version, Kind: KindText, Doc: d}
	l.mu.Unlock()
	return ev.Version, l.notify(ev)
}

// AddTriple ingests a knowledge-graph triple. Safe to call at any time,
// including while the lake serves queries. The returned error only ever
// comes from a change hook (the graph itself accepts every triple).
func (l *Lake) AddTriple(t kg.Triple) error {
	_, err := l.AddTripleVersioned(t)
	return err
}

// AddTripleVersioned is AddTriple returning the lake version the mutation
// committed as.
func (l *Lake) AddTripleVersioned(t kg.Triple) (uint64, error) {
	l.writeMu.Lock()
	defer l.writeMu.Unlock()
	l.mu.Lock()
	l.graph.Add(t)
	l.version++
	ev := Event{Version: l.version, Kind: KindEntity, Triple: &t}
	l.mu.Unlock()
	return ev.Version, l.notify(ev)
}

// Graph returns the lake's knowledge graph (shared; internally synchronized,
// so it can be queried while triples keep arriving).
func (l *Lake) Graph() *kg.Graph {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.graph
}

// Table returns the table with the given ID.
func (l *Lake) Table(id string) (*table.Table, bool) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	t, ok := l.tables[id]
	return t, ok
}

// Document returns the document with the given ID.
func (l *Lake) Document(id string) (*doc.Document, bool) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	d, ok := l.docs[id]
	return d, ok
}

// TableIDs returns all table IDs in insertion order (copy).
func (l *Lake) TableIDs() []string {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return append([]string(nil), l.tableIDs...)
}

// DocIDs returns all document IDs in insertion order (copy).
func (l *Lake) DocIDs() []string {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return append([]string(nil), l.docIDs...)
}

// Stats summarizes lake contents, matching the corpus statistics the paper
// reports (tables, tuples, text files).
type Stats struct {
	Tables   int
	Tuples   int
	Docs     int
	Triples  int
	Sources  int
	Entities int
}

// Stats computes the current lake statistics.
func (l *Lake) Stats() Stats {
	l.mu.RLock()
	defer l.mu.RUnlock()
	s := Stats{
		Tables:  len(l.tables),
		Docs:    len(l.docs),
		Triples: l.graph.Len(),
		Sources: len(l.sources),
	}
	for _, t := range l.tables {
		s.Tuples += t.NumRows()
	}
	s.Entities = len(l.graph.Entities())
	return s
}

// --- instance addressing ---

// TableInstanceID returns the instance ID of a whole table.
func TableInstanceID(tableID string) string { return "table:" + tableID }

// TupleInstanceID returns the instance ID of row `row` of a table.
func TupleInstanceID(tableID string, row int) string {
	return "tuple:" + tableID + "#" + strconv.Itoa(row)
}

// TextInstanceID returns the instance ID of a document.
func TextInstanceID(docID string) string { return "text:" + docID }

// EntityInstanceID returns the instance ID of a KG entity neighborhood.
func EntityInstanceID(entity string) string { return "entity:" + entity }

// KindOf parses the kind prefix of an instance ID.
func KindOf(instanceID string) (Kind, bool) {
	switch {
	case strings.HasPrefix(instanceID, "table:"):
		return KindTable, true
	case strings.HasPrefix(instanceID, "tuple:"):
		return KindTuple, true
	case strings.HasPrefix(instanceID, "text:"):
		return KindText, true
	case strings.HasPrefix(instanceID, "entity:"):
		return KindEntity, true
	default:
		return 0, false
	}
}

// Resolve maps an instance ID to its content. It returns an error for
// malformed IDs or IDs referencing missing data — a resolution failure
// indicates index/lake drift, which callers surface rather than skip.
func (l *Lake) Resolve(instanceID string) (Instance, error) {
	kind, ok := KindOf(instanceID)
	if !ok {
		return Instance{}, fmt.Errorf("datalake: malformed instance id %q", instanceID)
	}
	l.mu.RLock()
	defer l.mu.RUnlock()
	switch kind {
	case KindTable:
		id := strings.TrimPrefix(instanceID, "table:")
		t, ok := l.tables[id]
		if !ok {
			return Instance{}, fmt.Errorf("datalake: unknown table %q", id)
		}
		return Instance{ID: instanceID, Kind: KindTable, SourceID: t.SourceID, Table: t}, nil
	case KindTuple:
		rest := strings.TrimPrefix(instanceID, "tuple:")
		hash := strings.LastIndexByte(rest, '#')
		if hash < 0 {
			return Instance{}, fmt.Errorf("datalake: malformed tuple id %q", instanceID)
		}
		tableID := rest[:hash]
		row, err := strconv.Atoi(rest[hash+1:])
		if err != nil {
			return Instance{}, fmt.Errorf("datalake: malformed tuple row in %q: %w", instanceID, err)
		}
		t, ok := l.tables[tableID]
		if !ok {
			return Instance{}, fmt.Errorf("datalake: unknown table %q", tableID)
		}
		tp, ok := t.TupleAt(row)
		if !ok {
			return Instance{}, fmt.Errorf("datalake: row %d out of range for table %q", row, tableID)
		}
		return Instance{ID: instanceID, Kind: KindTuple, SourceID: t.SourceID, Tuple: &tp}, nil
	case KindText:
		id := strings.TrimPrefix(instanceID, "text:")
		d, ok := l.docs[id]
		if !ok {
			return Instance{}, fmt.Errorf("datalake: unknown document %q", id)
		}
		return Instance{ID: instanceID, Kind: KindText, SourceID: d.SourceID, Doc: d}, nil
	case KindEntity:
		name := strings.TrimPrefix(instanceID, "entity:")
		ts := l.graph.About(name)
		if len(ts) == 0 {
			return Instance{}, fmt.Errorf("datalake: unknown entity %q", name)
		}
		src := ts[0].SourceID
		return Instance{ID: instanceID, Kind: KindEntity, SourceID: src, Entity: name, Graph: l.graph}, nil
	default:
		return Instance{}, fmt.Errorf("datalake: unhandled kind %v", kind)
	}
}
