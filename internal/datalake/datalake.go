// Package datalake implements the multi-modal data lake: a single catalog
// over tables, text documents, and knowledge-graph entities, with per-source
// metadata for trust scoring. Data instances — the unit of retrieval and
// verification in the paper — are addressed by stable string IDs:
//
//	table:<tableID>          a whole table
//	tuple:<tableID>#<row>    one row of a table
//	text:<docID>             a text document
//	entity:<name>            a knowledge-graph entity neighborhood
package datalake

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/doc"
	"repro/internal/kg"
	"repro/internal/obs"
	"repro/internal/table"
)

// ErrDuplicate marks ingestion of an already-present ID; callers (e.g. the
// HTTP layer) can detect it with errors.Is to distinguish client conflicts
// from internal failures.
var ErrDuplicate = errors.New("duplicate id")

// Kind classifies a data instance.
type Kind int

const (
	// KindTable is a whole relational table.
	KindTable Kind = iota
	// KindTuple is a single row of a table.
	KindTuple
	// KindText is a text document.
	KindText
	// KindEntity is a knowledge-graph entity neighborhood.
	KindEntity
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindTable:
		return "table"
	case KindTuple:
		return "tuple"
	case KindText:
		return "text"
	case KindEntity:
		return "entity"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Source describes a dataset contributing instances to the lake.
type Source struct {
	// ID is the stable source identifier.
	ID string
	// Name is a human-readable label ("TabFact", "WikiTable-TURL", ...).
	Name string
	// TrustPrior is the initial trustworthiness in [0,1] before the trust
	// module refines it. Defaults to 0.5 (unknown).
	TrustPrior float64
}

// Instance is a resolved data instance: exactly one of Table, Tuple, Doc, or
// Entity is populated according to Kind.
type Instance struct {
	ID       string
	Kind     Kind
	SourceID string

	Table  *table.Table
	Tuple  *table.Tuple
	Doc    *doc.Document
	Entity string
	// Graph is set for entity instances so callers can expand the
	// neighborhood.
	Graph *kg.Graph
}

// Serialize flattens the instance's content into a single string, the form
// both indexes consume.
func (in Instance) Serialize() string {
	switch in.Kind {
	case KindTable:
		return in.Table.SerializeForIndex()
	case KindTuple:
		return in.Tuple.SerializeForIndex()
	case KindText:
		return in.Doc.SerializeForIndex()
	case KindEntity:
		return in.Graph.SerializeEntity(in.Entity)
	default:
		return ""
	}
}

// Event describes one committed lake mutation, delivered in version order
// to change subscribers. Exactly one of Table, Doc, or Triple is populated
// according to Kind (KindTable, KindText, or KindEntity respectively).
type Event struct {
	// Version is the lake version the mutation committed as. It is zero
	// while the event is still a pre-commit candidate (the argument to a
	// Subscriber.Prepare call).
	Version uint64
	// Kind classifies the mutation's modality.
	Kind   Kind
	Table  *table.Table
	Doc    *doc.Document
	Triple *kg.Triple
	// Payload carries the value this subscriber's Prepare returned for the
	// mutation (nil for subscribers without a Prepare stage, and for events
	// committed before the subscriber registered). It is private to the
	// subscriber: every subscriber sees its own payload.
	Payload any
}

// Touches returns the instance kinds a committed mutation affects in the
// indexes and any derived read-side state: a table event touches both the
// whole-table and per-tuple granularities, a document event touches texts,
// and a triple event touches the subject entity's neighborhood. Consumers
// that invalidate per-kind state (e.g. a verify-result cache) key off this
// instead of treating every version bump as global.
func (ev Event) Touches() []Kind {
	switch ev.Kind {
	case KindTable:
		return []Kind{KindTable, KindTuple}
	case KindText:
		return []Kind{KindText}
	case KindEntity:
		return []Kind{KindEntity}
	default:
		return nil
	}
}

// ChangeHook observes committed mutations. Hooks run on the lake's
// dispatcher goroutine in version order, with no lake locks held. A hook
// error is reported to the ingest caller whose mutation it rejected; the
// catalog mutation itself stays committed — the error signals that a
// downstream consumer (e.g. an incremental indexer) lagged, not that the
// data was lost.
//
// Hooks must not ingest into the lake (AddTable and friends): the
// dispatcher that runs them is also the consumer that drains the ingest
// queue, so a reentrant write can deadlock against queue backpressure.
// Reading the lake (Resolve, Graph, Stats, ...) is allowed.
type ChangeHook func(Event) error

// PrepareFunc is a subscriber's pre-commit stage. It runs on the ingesting
// goroutine before the lake's write lock is taken, so expensive derivations
// (tokenization, embedding) happen outside every lock and concurrent
// writers compute them in parallel. The event has no Version yet; the
// returned payload is attached to the committed event delivered to this
// subscriber. An error aborts the ingest before anything commits.
type PrepareFunc func(Event) (any, error)

// CommitHook observes each commit section's mutations durably, before they
// take effect. It runs under the write lock with the section's staged
// events — versions assigned, catalog not yet mutated, nothing enqueued —
// so a durability layer (the write-ahead log) can persist them first. An
// error aborts the whole section: no catalog change, no event delivery,
// and the staged versions are released for the next commit. The hook must
// not call back into the lake.
type CommitHook func(evs []Event) error

// SourceHook observes source registrations the same way (sources are not
// versioned mutations, but a durable lake must persist them too). An error
// aborts the registration.
type SourceHook func(Source) error

// ApplyFunc is a subscriber's asynchronous application stage. It is invoked
// on the dispatcher goroutine in version order and must call done exactly
// once — possibly from another goroutine — when the event has been fully
// applied (e.g. after per-shard index appliers finish). The lake publishes
// the event's version (Version, Flush, ingest-caller returns) only after
// every subscriber's done fires. Like ChangeHook, ApplyFunc must not
// ingest into the lake.
type ApplyFunc func(ev Event, done func(error))

// Subscriber is a two-stage change consumer: Prepare precomputes the
// expensive payload outside the lake's locks, Apply consumes the committed
// event asynchronously. Either field may be nil (a nil Apply makes the
// subscriber prepare-only, which is rarely useful).
type Subscriber struct {
	Prepare PrepareFunc
	Apply   ApplyFunc
}

// ErrClosed marks ingestion into a closed lake.
var ErrClosed = errors.New("datalake: lake closed")

// defaultQueueSize bounds the in-flight event queue between commit and the
// dispatcher. Writers block (holding the write lock) once the queue is
// full, so queued-event memory is bounded under ingest bursts.
const defaultQueueSize = 256

// Option configures a Lake.
type Option func(*Lake)

// WithQueueSize overrides the bounded ingest-event queue capacity
// (default 256). Larger values absorb bigger ingest bursts before
// backpressure blocks writers; smaller values bound memory tighter.
func WithQueueSize(n int) Option {
	return func(l *Lake) {
		if n > 0 {
			l.queueSize = n
		}
	}
}

// Lake is the multi-modal data lake catalog. The lake is live: ingestion is
// allowed at any time, while lookups take a shared lock, so the lake serves
// reads during writes. Every mutation bumps a monotonic version.
//
// The write path is pipelined. An ingest runs three stages:
//
//  1. prepare — subscriber Prepare funcs derive expensive payloads
//     (tokenize, embed) on the ingesting goroutine, outside every lake
//     lock, so concurrent writers prepare in parallel;
//  2. commit — the write lock covers only the catalog mutation, version
//     assignment, and enqueueing the event on a bounded ordered queue;
//  3. apply — a dispatcher goroutine delivers events to subscribers in
//     version order; application (index maintenance) may fan out to
//     per-shard appliers and completes asynchronously.
//
// Version() publication — not hook ordering — provides the visibility
// guarantee: a version becomes observable only once its event is fully
// applied. The ingest entry points additionally wait for their own
// mutation's application before returning, so "AddX returned nil" still
// implies "retrievable now".
type Lake struct {
	// writeMu serializes the commit stage (catalog mutation + version
	// assignment + enqueue). It is intentionally narrow: no subscriber
	// code and no derivation work runs under it. Always acquired before mu.
	writeMu  sync.Mutex
	closed   bool // guarded by writeMu
	readOnly bool // follower mode: local writes rejected, guarded by writeMu
	// commitHook / sourceHook are the durability hooks (guarded by
	// writeMu). The commit hook runs under writeMu but outside mu, so a
	// slow fsync stalls writers, never readers.
	commitHook CommitHook
	sourceHook SourceHook

	// hooksMu guards the subscriber list; it is never held while acquiring
	// writeMu or mu, and the dispatcher holds it (shared) for the duration
	// of one event's delivery so unsubscribe can exclude in-flight calls.
	hooksMu   sync.RWMutex
	hooks     []registeredHook
	sourceObs []registeredSourceObserver
	hookSeq   int

	// events is the bounded ordered queue between commit and dispatch.
	// Sends happen under writeMu, so channel order is version order.
	events    chan queuedEvent
	queueSize int
	closeOnce sync.Once
	closeErr  error
	// dispatchDone closes when the dispatcher exits (after Close drains).
	dispatchDone chan struct{}

	mu   sync.RWMutex
	cond *sync.Cond // broadcast when processed/published advance
	// version is the last assigned (committed) version.
	version uint64
	// processed is the contiguous application watermark: every event with
	// version <= processed has completed application (successfully or not).
	processed uint64
	// published trails processed: it is the last *successfully* applied
	// version, so readers of Version() never observe a version whose
	// incremental indexing failed or is still in flight.
	published uint64
	// failed records application errors by version until the ingest caller
	// (or Flush) claims them.
	failed map[uint64]error
	// waiting counts ingest callers registered (at commit time) to claim
	// their version's application error; Flush and WaitVersion leave those
	// errors for the registered claimant instead of stealing them.
	waiting map[uint64]int
	// ahead holds completion results for versions above processed+1, so
	// out-of-order async completions advance the watermark contiguously.
	ahead map[uint64]error
	// drained flips once Close has applied the final event; waiters for
	// versions that will now never commit are woken with ErrClosed.
	drained bool

	tables  map[string]*table.Table
	docs    map[string]*doc.Document
	graph   *kg.Graph
	sources map[string]Source

	tableIDs []string
	docIDs   []string

	// m holds the ingest-stage observability handles (nil-safe no-ops
	// until SetMetrics installs real ones).
	m lakeMetrics
}

// lakeMetrics are the lake's instrumentation handles for the three ingest
// pipeline stages. All obs handles are nil-receiver-safe.
type lakeMetrics struct {
	prepareSec *obs.Histogram
	commitSec  *obs.Histogram
	applySec   *obs.Histogram
}

// SetMetrics registers the lake's ingest-stage metrics in reg and installs
// the hot-path handles. Call once during assembly, before concurrent
// ingest begins. Exported metric names are documented in README.md.
func (l *Lake) SetMetrics(reg *obs.Registry) {
	l.m = lakeMetrics{
		prepareSec: reg.Histogram("verifai_ingest_prepare_seconds", "Per-event prepare stage (tokenize + embed, outside all lake locks)."),
		commitSec:  reg.Histogram("verifai_ingest_commit_seconds", "Commit section latency (stage + durable hook + materialize + enqueue, under the write lock). Batches observe once per section."),
		applySec:   reg.Histogram("verifai_ingest_apply_seconds", "Per-event apply stage (dispatcher delivery through the last subscriber completion)."),
	}
	reg.GaugeFunc("verifai_ingest_queue_depth", "Committed events waiting in the bounded apply queue.",
		func() float64 { return float64(len(l.events)) })
}

// queuedEvent pairs a committed event with the per-subscriber payloads its
// prepare stage produced (keyed by subscriber registration id).
type queuedEvent struct {
	ev       Event
	payloads map[int]any
}

// New returns an empty lake and starts its event dispatcher. The
// dispatcher goroutine keeps the lake reachable until Close, so a
// long-lived process that discards lakes (rather than keeping one for its
// lifetime) must Close them to release the memory.
func New(opts ...Option) *Lake {
	l := &Lake{
		tables:       make(map[string]*table.Table),
		docs:         make(map[string]*doc.Document),
		graph:        kg.NewGraph(),
		sources:      make(map[string]Source),
		failed:       make(map[uint64]error),
		waiting:      make(map[uint64]int),
		ahead:        make(map[uint64]error),
		queueSize:    defaultQueueSize,
		dispatchDone: make(chan struct{}),
	}
	for _, o := range opts {
		o(l)
	}
	l.cond = sync.NewCond(&l.mu)
	l.events = make(chan queuedEvent, l.queueSize)
	go l.dispatch()
	return l
}

// AddSource registers (or overwrites) a source description. A zero
// TrustPrior is normalized to 0.5. The returned error only ever comes from
// a durability (source) hook rejecting the registration; lakes without a
// hook always succeed. Registered source observers (OnSourceChange) run
// before the call returns.
func (l *Lake) AddSource(s Source) error {
	return l.addSource(s, false)
}

// addSource is the shared implementation behind AddSource (local writes,
// rejected on a read-only follower) and ReplicateSource (the replication
// apply path, which bypasses the read-only gate).
func (l *Lake) addSource(s Source, replica bool) error {
	if s.TrustPrior == 0 {
		s.TrustPrior = 0.5
	}
	l.writeMu.Lock()
	defer l.writeMu.Unlock()
	if l.readOnly && !replica {
		return ErrReadOnly
	}
	if l.sourceHook != nil {
		if err := l.sourceHook(s); err != nil {
			return err
		}
	}
	l.mu.Lock()
	l.sources[s.ID] = s
	l.mu.Unlock()
	// Notify observers under writeMu (registrations are observed in
	// serialization order) but outside mu, so observers may read the lake.
	l.hooksMu.RLock()
	obs := append([]registeredSourceObserver(nil), l.sourceObs...)
	l.hooksMu.RUnlock()
	for _, o := range obs {
		o.fn(s)
	}
	return nil
}

// registeredSourceObserver pairs a source observer with its registration
// handle.
type registeredSourceObserver struct {
	id int
	fn func(Source)
}

// OnSourceChange registers fn to observe every subsequent source
// registration (AddSource), including overwrites of an existing source —
// the one catalog mutation outside the versioned change feed. A
// trust-sensitive consumer (e.g. a verify-result cache, whose verdict
// weighting reads Source.TrustPrior) uses this to invalidate on source
// overwrites. fn runs on the registering goroutine before AddSource
// returns and must not write into the lake. The returned function
// unsubscribes (idempotent).
func (l *Lake) OnSourceChange(fn func(Source)) (unsubscribe func()) {
	l.hooksMu.Lock()
	defer l.hooksMu.Unlock()
	l.hookSeq++
	id := l.hookSeq
	l.sourceObs = append(l.sourceObs, registeredSourceObserver{id: id, fn: fn})
	return func() {
		l.hooksMu.Lock()
		defer l.hooksMu.Unlock()
		for i, o := range l.sourceObs {
			if o.id == id {
				l.sourceObs = append(l.sourceObs[:i], l.sourceObs[i+1:]...)
				return
			}
		}
	}
}

// SetCommitHook installs (or, with nil, removes) the durable commit hook.
// Install it before the writes it must cover; a recovery path replaying a
// log installs it only after replay, so replayed mutations are not
// re-logged.
func (l *Lake) SetCommitHook(h CommitHook) {
	l.writeMu.Lock()
	defer l.writeMu.Unlock()
	l.commitHook = h
}

// SetSourceHook installs (or removes) the durable source hook.
func (l *Lake) SetSourceHook(h SourceHook) {
	l.writeMu.Lock()
	defer l.writeMu.Unlock()
	l.sourceHook = h
}

// Quiesce runs fn with the lake quiesced: the write lock is held and every
// committed mutation fully applied, so no mutation can commit — and none
// can still be applying — while fn runs. version is the lake's current
// (catalog) version. fn may read the lake but must not mutate it (that
// would deadlock). Checkpoints use this to capture a consistent snapshot.
func (l *Lake) Quiesce(fn func(version uint64) error) error {
	l.writeMu.Lock()
	defer l.writeMu.Unlock()
	l.mu.Lock()
	for l.processed < l.version {
		l.cond.Wait()
	}
	v := l.version
	l.mu.Unlock()
	return fn(v)
}

// FastForwardVersion advances the lake's version counter to v without
// committing mutations. Recovery uses it after bulk-loading a checkpoint:
// the reloaded catalog re-committed as versions 1..n, but the write-ahead
// log's tail continues from the pre-crash version, so the counter must
// jump there for replayed (and future) mutations to reuse their original
// version numbers. It requires an idle lake (nothing in flight) and a
// target at or past the current version.
func (l *Lake) FastForwardVersion(v uint64) error {
	l.writeMu.Lock()
	defer l.writeMu.Unlock()
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.processed != l.version {
		return fmt.Errorf("datalake: fast-forward with mutations in flight (processed %d < version %d)", l.processed, l.version)
	}
	if v < l.version {
		return fmt.Errorf("datalake: fast-forward target %d behind current version %d", v, l.version)
	}
	l.version, l.processed, l.published = v, v, v
	return nil
}

// Source returns the source metadata for id; ok is false when unknown.
func (l *Lake) Source(id string) (Source, bool) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	s, ok := l.sources[id]
	return s, ok
}

// Sources returns all registered sources sorted by ID.
func (l *Lake) Sources() []Source {
	l.mu.RLock()
	defer l.mu.RUnlock()
	out := make([]Source, 0, len(l.sources))
	for _, s := range l.sources {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// registeredHook pairs a subscriber with its registration handle so it can
// be removed again (synchronous ChangeHooks are wrapped into ApplyFuncs at
// registration).
type registeredHook struct {
	id      int
	apply   ApplyFunc
	prepare PrepareFunc
}

// OnChange registers a hook observing every subsequent mutation. Typically
// called once at system assembly (before concurrent ingestion starts) to
// wire incremental index maintenance. The returned function unsubscribes
// the hook (idempotent); discard it for a process-lifetime subscription.
func (l *Lake) OnChange(h ChangeHook) (unsubscribe func()) {
	return l.Subscribe(Subscriber{Apply: func(ev Event, done func(error)) { done(h(ev)) }})
}

// Subscribe registers a two-stage subscriber observing every subsequent
// mutation. The returned function unsubscribes it (idempotent) and blocks
// until any in-flight delivery to the subscriber has returned, so after it
// returns the subscriber's Apply is never invoked again.
func (l *Lake) Subscribe(s Subscriber) (unsubscribe func()) {
	l.hooksMu.Lock()
	defer l.hooksMu.Unlock()
	return l.subscribeLocked(s)
}

// OnChangeSync runs init and then registers h, with the lake quiesced: the
// write lock is held and the event queue fully drained across both, so no
// mutation can commit — and no committed mutation can still be applying —
// between init's snapshot of the lake and the registration. An incremental
// indexer uses this to close the gap where a concurrent ingest would be
// neither bulk-indexed nor delivered as an event. init may read the lake
// but must not mutate it (that would deadlock); an init error aborts the
// registration.
func (l *Lake) OnChangeSync(init func() error, h ChangeHook) (unsubscribe func(), err error) {
	return l.SubscribeSync(init, Subscriber{Apply: func(ev Event, done func(error)) { done(h(ev)) }})
}

// SubscribeSync is OnChangeSync for a two-stage Subscriber.
func (l *Lake) SubscribeSync(init func() error, s Subscriber) (unsubscribe func(), err error) {
	// Quiesce: every committed event has been applied before init snapshots
	// the catalog, so nothing is both snapshotted and later delivered.
	err = l.Quiesce(func(uint64) error {
		if init != nil {
			if err := init(); err != nil {
				return err
			}
		}
		l.hooksMu.Lock()
		defer l.hooksMu.Unlock()
		unsubscribe = l.subscribeLocked(s)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return unsubscribe, nil
}

// subscribeLocked appends the subscriber and builds its unsubscribe
// closure. Caller holds hooksMu.
func (l *Lake) subscribeLocked(s Subscriber) func() {
	l.hookSeq++
	id := l.hookSeq
	l.hooks = append(l.hooks, registeredHook{id: id, apply: s.Apply, prepare: s.Prepare})
	return func() {
		l.hooksMu.Lock()
		defer l.hooksMu.Unlock()
		for i, rh := range l.hooks {
			if rh.id == id {
				l.hooks = append(l.hooks[:i], l.hooks[i+1:]...)
				return
			}
		}
	}
}

// Version returns the lake's monotonic mutation version (0 for an empty,
// untouched lake). Each successful AddTable/AddDocument/AddTriple bumps it
// by one, and the bump becomes visible here only after the mutation's
// incremental indexing (subscriber application) has completed — so once a
// reader observes Version() >= V, every mutation up to V whose ingest call
// returned nil is fully indexed. A mutation whose application errored (its
// ingest call returned the error) stays committed in the catalog but may
// be absent from the indexes; its own version is never published, though
// later successful mutations publish past it.
func (l *Lake) Version() uint64 {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.published
}

// dispatch is the lake's event-dispatcher goroutine: it pops committed
// events off the ordered queue and delivers each to every subscriber in
// version order. It exits when Close closes the (drained) queue.
func (l *Lake) dispatch() {
	defer close(l.dispatchDone)
	for qe := range l.events {
		l.deliver(qe)
	}
}

// deliver invokes every subscriber's Apply for one event, aggregating their
// asynchronous completions; the event's version is marked applied once all
// of them (and the dispatcher's own token) are done. hooksMu is held shared
// across the Apply calls so unsubscribe can exclude in-flight deliveries.
func (l *Lake) deliver(qe queuedEvent) {
	version := qe.ev.Version
	start := time.Now()
	// One token for the dispatcher itself, released after all Applies have
	// been started, so no early completion can fire while hooks remain.
	c := NewCountdown(1, func(err error) {
		l.m.applySec.Since(start)
		l.applied(version, err)
	})
	l.hooksMu.RLock()
	for _, rh := range l.hooks {
		if rh.apply == nil {
			continue
		}
		ev := qe.ev
		ev.Payload = qe.payloads[rh.id]
		c.Add(1)
		rh.apply(ev, c.Done)
	}
	l.hooksMu.RUnlock()
	c.Done(nil)
}

// Countdown aggregates several asynchronous completions into one callback:
// the final Done fires the wrapped function with the first error observed.
// Subscribers fanning one event's application across workers (e.g. the
// indexer's per-shard appliers) use it to produce the single done call an
// ApplyFunc owes the lake.
type Countdown struct {
	remaining atomic.Int32
	errMu     sync.Mutex
	err       error
	done      func(error)
}

// NewCountdown returns a countdown firing done after n Done calls (plus
// any registered via Add). n must be at least 1.
func NewCountdown(n int, done func(error)) *Countdown {
	c := &Countdown{done: done}
	c.remaining.Store(int32(n))
	return c
}

// Add registers delta additional Done calls to await. It must be called
// while the countdown is held open (before the outstanding count can
// reach zero).
func (c *Countdown) Add(delta int) { c.remaining.Add(int32(delta)) }

// Done records one completion; each participant must call it exactly once.
func (c *Countdown) Done(err error) {
	if err != nil {
		c.errMu.Lock()
		if c.err == nil {
			c.err = err
		}
		c.errMu.Unlock()
	}
	if c.remaining.Add(-1) == 0 {
		c.errMu.Lock()
		first := c.err
		c.errMu.Unlock()
		c.done(first)
	}
}

// applied advances the contiguous application watermark with one event's
// completion. Completions may arrive out of order (per-shard appliers
// finish independently); the watermark only moves through versions whose
// predecessors are all applied, and publication skips failed versions.
func (l *Lake) applied(version uint64, err error) {
	l.mu.Lock()
	if err != nil {
		l.failed[version] = err
	}
	l.ahead[version] = err
	for {
		e, ok := l.ahead[l.processed+1]
		if !ok {
			break
		}
		delete(l.ahead, l.processed+1)
		l.processed++
		if e == nil {
			l.published = l.processed
		}
	}
	l.mu.Unlock()
	l.cond.Broadcast()
}

// WaitVersion blocks until the mutation committed as version v has been
// fully applied (its indexing finished, successfully or not), then returns
// the application error recorded for v, if any. An error whose ingest
// caller is still waiting for it stays reserved for that caller (this
// function reports it without claiming it); otherwise the error is
// claimed and reported once. Waiting for a version that was never
// committed blocks until it is — or returns ErrClosed once Close
// guarantees it never will be.
func (l *Lake) WaitVersion(v uint64) error {
	return l.wait(v, false)
}

// waitClaimed is WaitVersion for the ingest caller registered at commit
// time: it always claims the version's error and releases the
// registration. Its callers wait on committed versions, which Close always
// applies before draining, so the drained guard is only a safety net.
func (l *Lake) waitClaimed(v uint64) error {
	return l.wait(v, true)
}

// wait is the single wait-loop implementation behind WaitVersion (claim
// only when unreserved) and waitClaimed (always claim and deregister).
func (l *Lake) wait(v uint64, claim bool) error {
	l.mu.Lock()
	for l.processed < v {
		if l.drained {
			l.mu.Unlock()
			return ErrClosed
		}
		l.cond.Wait()
	}
	err := l.failed[v]
	if claim {
		delete(l.failed, v)
		if n := l.waiting[v]; n > 1 {
			l.waiting[v] = n - 1
		} else {
			delete(l.waiting, v)
		}
	} else if l.waiting[v] == 0 {
		delete(l.failed, v)
	}
	l.mu.Unlock()
	return err
}

// Flush blocks until every mutation accepted before the call has been
// applied (successfully or not). It returns the publication watermark —
// the same value Version() now reports; every successfully applied write
// at or below it is visible to retrieval — and any unclaimed application
// errors, joined. A mutation whose error is reported here (or was
// reported to its ingest caller) is committed in the catalog but absent
// from the indexes, at any version. Errors reserved for a still-waiting
// ingest caller are left to that caller.
func (l *Lake) Flush() (uint64, error) {
	l.mu.Lock()
	target := l.version
	for l.processed < target {
		l.cond.Wait()
	}
	var versions []uint64
	for v := range l.failed {
		if v <= target && l.waiting[v] == 0 {
			versions = append(versions, v)
		}
	}
	sort.Slice(versions, func(i, j int) bool { return versions[i] < versions[j] })
	var errs []error
	for _, v := range versions {
		errs = append(errs, l.failed[v])
		delete(l.failed, v)
	}
	watermark := l.published
	l.mu.Unlock()
	return watermark, errors.Join(errs...)
}

// Close shuts ingestion down: subsequent writes are rejected with
// ErrClosed, every already-accepted write is applied (none are lost), and
// the dispatcher goroutine exits. Returns any unclaimed application errors
// from the final drain. Idempotent; concurrent calls wait for the first to
// finish. The lake remains readable after Close.
func (l *Lake) Close() error {
	l.closeOnce.Do(func() {
		l.writeMu.Lock()
		l.closed = true
		l.writeMu.Unlock()
		_, l.closeErr = l.Flush()
		close(l.events)
		<-l.dispatchDone
		// Wake waiters for versions that will now never commit.
		l.mu.Lock()
		l.drained = true
		l.mu.Unlock()
		l.cond.Broadcast()
	})
	// Wait for a concurrent first closer to finish draining.
	<-l.dispatchDone
	return l.closeErr
}

// prepare runs every subscriber's Prepare stage for a candidate event, on
// the calling (ingesting) goroutine, with no lake locks held. The hook
// list is snapshotted first so the expensive Prepare work never holds
// hooksMu — a pending Subscribe (write lock) must not stall other
// preparers or the dispatcher behind one slow item. A subscriber
// unsubscribed mid-prepare runs its Prepare once more harmlessly: deliver
// looks payloads up by the registration ids still subscribed.
func (l *Lake) prepare(ev Event) (map[int]any, error) {
	defer l.m.prepareSec.Since(time.Now())
	l.hooksMu.RLock()
	var preparers []registeredHook
	for _, rh := range l.hooks {
		if rh.prepare != nil {
			preparers = append(preparers, rh)
		}
	}
	l.hooksMu.RUnlock()
	var payloads map[int]any
	for _, rh := range preparers {
		p, err := rh.prepare(ev)
		if err != nil {
			return nil, fmt.Errorf("datalake: prepare: %w", err)
		}
		if payloads == nil {
			payloads = make(map[int]any, len(preparers))
		}
		payloads[rh.id] = p
	}
	return payloads, nil
}

// staging tracks IDs claimed earlier in the same commit section, so a
// batch with two items sharing an ID rejects the second even though the
// catalog maps are not mutated until the whole section is durable.
type staging struct {
	tables map[string]struct{}
	docs   map[string]struct{}
}

func newStaging() *staging {
	return &staging{tables: make(map[string]struct{}), docs: make(map[string]struct{})}
}

// stageLocked validates one candidate event against the catalog (and the
// section's earlier staged items) and assigns it the given version. The
// catalog itself is untouched: staging must be abortable, because the
// durable commit hook runs between staging and materialization and its
// error rolls the whole section back. Caller holds writeMu and mu (read).
func (l *Lake) stageLocked(ev *Event, version uint64, st *staging) error {
	switch ev.Kind {
	case KindTable:
		id := ev.Table.ID
		_, dup := l.tables[id]
		if !dup {
			_, dup = st.tables[id]
		}
		if dup {
			return fmt.Errorf("datalake: duplicate table id %q: %w", id, ErrDuplicate)
		}
		st.tables[id] = struct{}{}
	case KindText:
		id := ev.Doc.ID
		_, dup := l.docs[id]
		if !dup {
			_, dup = st.docs[id]
		}
		if dup {
			return fmt.Errorf("datalake: duplicate document id %q: %w", id, ErrDuplicate)
		}
		st.docs[id] = struct{}{}
	case KindEntity:
		// The graph accepts every triple.
	default:
		return fmt.Errorf("datalake: unhandled event kind %v", ev.Kind)
	}
	ev.Version = version
	return nil
}

// materializeLocked performs one staged event's catalog mutation, advances
// the version counter to the event's pre-assigned version, and registers
// the ingest caller as the claimant of the version's application error —
// before anything can complete it, so a concurrent Flush cannot steal the
// error the caller must return. Caller holds writeMu and mu.
func (l *Lake) materializeLocked(ev *Event) {
	switch ev.Kind {
	case KindTable:
		l.tables[ev.Table.ID] = ev.Table
		l.tableIDs = append(l.tableIDs, ev.Table.ID)
	case KindText:
		l.docs[ev.Doc.ID] = ev.Doc
		l.docIDs = append(l.docIDs, ev.Doc.ID)
	case KindEntity:
		l.graph.Add(*ev.Triple)
	}
	l.version = ev.Version
	l.waiting[ev.Version]++
}

// commit runs the commit stage for one event under the write lock: stage
// (validate + assign version), durable hook, materialize, enqueue. The
// hook runs without mu so readers stay unblocked during an fsync; writeMu
// keeps the staged version reserved meanwhile.
func (l *Lake) commit(payloads map[int]any, ev Event) (uint64, error) {
	defer l.m.commitSec.Since(time.Now())
	l.writeMu.Lock()
	if l.closed {
		l.writeMu.Unlock()
		return 0, ErrClosed
	}
	if l.readOnly {
		// Single-item ingest is always a local write: the replication apply
		// path batches through ReplicateBatch.
		l.writeMu.Unlock()
		return 0, ErrReadOnly
	}
	l.mu.RLock()
	err := l.stageLocked(&ev, l.version+1, newStaging())
	l.mu.RUnlock()
	if err != nil {
		l.writeMu.Unlock()
		return 0, err
	}
	if l.commitHook != nil {
		if err := l.commitHook([]Event{ev}); err != nil {
			l.writeMu.Unlock()
			return 0, err
		}
	}
	l.mu.Lock()
	l.materializeLocked(&ev)
	l.mu.Unlock()
	// Enqueue under writeMu so queue order is version order; a full queue
	// blocks writers here (backpressure), never readers.
	l.events <- queuedEvent{ev: ev, payloads: payloads}
	l.writeMu.Unlock()
	return ev.Version, nil
}

// AddTable ingests a table. The table's ID must be unique. Safe to call at
// any time, including while the lake serves queries.
func (l *Lake) AddTable(t *table.Table) error {
	_, err := l.AddTableVersioned(t)
	return err
}

// AddTableVersioned is AddTable returning the lake version the mutation
// committed as, for callers correlating ingests with the change feed.
func (l *Lake) AddTableVersioned(t *table.Table) (uint64, error) {
	if t.ID == "" {
		return 0, fmt.Errorf("datalake: table with empty ID")
	}
	if l.hasTable(t.ID) { // cheap pre-check: skip prepare for obvious dups
		return 0, fmt.Errorf("datalake: duplicate table id %q: %w", t.ID, ErrDuplicate)
	}
	payloads, err := l.prepare(Event{Kind: KindTable, Table: t})
	if err != nil {
		return 0, err
	}
	v, err := l.commit(payloads, Event{Kind: KindTable, Table: t})
	if err != nil {
		return 0, err
	}
	return v, l.waitClaimed(v)
}

// AddDocument ingests a text document. The document's ID must be unique.
// Safe to call at any time, including while the lake serves queries.
func (l *Lake) AddDocument(d *doc.Document) error {
	_, err := l.AddDocumentVersioned(d)
	return err
}

// AddDocumentVersioned is AddDocument returning the lake version the
// mutation committed as.
func (l *Lake) AddDocumentVersioned(d *doc.Document) (uint64, error) {
	if d.ID == "" {
		return 0, fmt.Errorf("datalake: document with empty ID")
	}
	if l.hasDoc(d.ID) {
		return 0, fmt.Errorf("datalake: duplicate document id %q: %w", d.ID, ErrDuplicate)
	}
	payloads, err := l.prepare(Event{Kind: KindText, Doc: d})
	if err != nil {
		return 0, err
	}
	v, err := l.commit(payloads, Event{Kind: KindText, Doc: d})
	if err != nil {
		return 0, err
	}
	return v, l.waitClaimed(v)
}

// AddTriple ingests a knowledge-graph triple. Safe to call at any time,
// including while the lake serves queries. The returned error only ever
// comes from event application (the graph itself accepts every triple).
func (l *Lake) AddTriple(t kg.Triple) error {
	_, err := l.AddTripleVersioned(t)
	return err
}

// AddTripleVersioned is AddTriple returning the lake version the mutation
// committed as.
func (l *Lake) AddTripleVersioned(t kg.Triple) (uint64, error) {
	payloads, err := l.prepare(Event{Kind: KindEntity, Triple: &t})
	if err != nil {
		return 0, err
	}
	v, err := l.commit(payloads, Event{Kind: KindEntity, Triple: &t})
	if err != nil {
		return 0, err
	}
	return v, l.waitClaimed(v)
}

// hasTable / hasDoc are shared-lock duplicate pre-checks.
func (l *Lake) hasTable(id string) bool {
	l.mu.RLock()
	defer l.mu.RUnlock()
	_, ok := l.tables[id]
	return ok
}

func (l *Lake) hasDoc(id string) bool {
	l.mu.RLock()
	defer l.mu.RUnlock()
	_, ok := l.docs[id]
	return ok
}

// Graph returns the lake's knowledge graph (shared; internally synchronized,
// so it can be queried while triples keep arriving).
func (l *Lake) Graph() *kg.Graph {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.graph
}

// Triples returns a copy of the knowledge graph's triples in insertion
// order — the same catalog surface a pinned View offers, so serializers
// (lakeio) can treat a live lake and a forked view uniformly.
func (l *Lake) Triples() []kg.Triple {
	return l.Graph().Triples()
}

// Table returns the table with the given ID.
func (l *Lake) Table(id string) (*table.Table, bool) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	t, ok := l.tables[id]
	return t, ok
}

// Document returns the document with the given ID.
func (l *Lake) Document(id string) (*doc.Document, bool) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	d, ok := l.docs[id]
	return d, ok
}

// TableIDs returns all table IDs in insertion order (copy).
func (l *Lake) TableIDs() []string {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return append([]string(nil), l.tableIDs...)
}

// DocIDs returns all document IDs in insertion order (copy).
func (l *Lake) DocIDs() []string {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return append([]string(nil), l.docIDs...)
}

// Stats summarizes lake contents, matching the corpus statistics the paper
// reports (tables, tuples, text files).
type Stats struct {
	Tables   int
	Tuples   int
	Docs     int
	Triples  int
	Sources  int
	Entities int
}

// Stats computes the current lake statistics.
func (l *Lake) Stats() Stats {
	l.mu.RLock()
	defer l.mu.RUnlock()
	s := Stats{
		Tables:  len(l.tables),
		Docs:    len(l.docs),
		Triples: l.graph.Len(),
		Sources: len(l.sources),
	}
	for _, t := range l.tables {
		s.Tuples += t.NumRows()
	}
	s.Entities = len(l.graph.Entities())
	return s
}

// --- instance addressing ---

// TableInstanceID returns the instance ID of a whole table.
func TableInstanceID(tableID string) string { return "table:" + tableID }

// TupleInstanceID returns the instance ID of row `row` of a table.
func TupleInstanceID(tableID string, row int) string {
	return "tuple:" + tableID + "#" + strconv.Itoa(row)
}

// TextInstanceID returns the instance ID of a document.
func TextInstanceID(docID string) string { return "text:" + docID }

// EntityInstanceID returns the instance ID of a KG entity neighborhood.
func EntityInstanceID(entity string) string { return "entity:" + entity }

// KindOf parses the kind prefix of an instance ID.
func KindOf(instanceID string) (Kind, bool) {
	switch {
	case strings.HasPrefix(instanceID, "table:"):
		return KindTable, true
	case strings.HasPrefix(instanceID, "tuple:"):
		return KindTuple, true
	case strings.HasPrefix(instanceID, "text:"):
		return KindText, true
	case strings.HasPrefix(instanceID, "entity:"):
		return KindEntity, true
	default:
		return 0, false
	}
}

// Resolve maps an instance ID to its content. It returns an error for
// malformed IDs or IDs referencing missing data — a resolution failure
// indicates index/lake drift, which callers surface rather than skip.
func (l *Lake) Resolve(instanceID string) (Instance, error) {
	kind, ok := KindOf(instanceID)
	if !ok {
		return Instance{}, fmt.Errorf("datalake: malformed instance id %q", instanceID)
	}
	l.mu.RLock()
	defer l.mu.RUnlock()
	switch kind {
	case KindTable:
		id := strings.TrimPrefix(instanceID, "table:")
		t, ok := l.tables[id]
		if !ok {
			return Instance{}, fmt.Errorf("datalake: unknown table %q", id)
		}
		return Instance{ID: instanceID, Kind: KindTable, SourceID: t.SourceID, Table: t}, nil
	case KindTuple:
		rest := strings.TrimPrefix(instanceID, "tuple:")
		hash := strings.LastIndexByte(rest, '#')
		if hash < 0 {
			return Instance{}, fmt.Errorf("datalake: malformed tuple id %q", instanceID)
		}
		tableID := rest[:hash]
		row, err := strconv.Atoi(rest[hash+1:])
		if err != nil {
			return Instance{}, fmt.Errorf("datalake: malformed tuple row in %q: %w", instanceID, err)
		}
		t, ok := l.tables[tableID]
		if !ok {
			return Instance{}, fmt.Errorf("datalake: unknown table %q", tableID)
		}
		tp, ok := t.TupleAt(row)
		if !ok {
			return Instance{}, fmt.Errorf("datalake: row %d out of range for table %q", row, tableID)
		}
		return Instance{ID: instanceID, Kind: KindTuple, SourceID: t.SourceID, Tuple: &tp}, nil
	case KindText:
		id := strings.TrimPrefix(instanceID, "text:")
		d, ok := l.docs[id]
		if !ok {
			return Instance{}, fmt.Errorf("datalake: unknown document %q", id)
		}
		return Instance{ID: instanceID, Kind: KindText, SourceID: d.SourceID, Doc: d}, nil
	case KindEntity:
		name := strings.TrimPrefix(instanceID, "entity:")
		ts := l.graph.About(name)
		if len(ts) == 0 {
			return Instance{}, fmt.Errorf("datalake: unknown entity %q", name)
		}
		src := ts[0].SourceID
		return Instance{ID: instanceID, Kind: KindEntity, SourceID: src, Entity: name, Graph: l.graph}, nil
	default:
		return Instance{}, fmt.Errorf("datalake: unhandled kind %v", kind)
	}
}
