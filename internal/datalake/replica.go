package datalake

import (
	"context"
	"errors"
)

// ErrReadOnly marks a local write rejected by a follower lake. Followers
// accept mutations only through the replication apply path
// (ReplicateBatch/ReplicateSource); everything else belongs at the leader.
var ErrReadOnly = errors.New("datalake: read-only (follower) lake")

// SetReadOnly flips follower mode: while set, AddTable/AddDocument/
// AddTriple/AddBatch/AddSource return ErrReadOnly and only the Replicate*
// entry points may mutate the lake. Reads, subscriptions, and waits are
// unaffected.
func (l *Lake) SetReadOnly(ro bool) {
	l.writeMu.Lock()
	defer l.writeMu.Unlock()
	l.readOnly = ro
}

// ReadOnly reports whether the lake is in follower mode.
func (l *Lake) ReadOnly() bool {
	l.writeMu.Lock()
	defer l.writeMu.Unlock()
	return l.readOnly
}

// ReplicateBatch applies a batch of replicated mutations through the
// normal pipelined write path, bypassing the read-only gate. The caller
// (the replication applier) is responsible for ordering: items must arrive
// in leader version order with no gaps, which the durable layer asserts by
// comparing recommitted versions against the leader-assigned ones.
func (l *Lake) ReplicateBatch(items []BatchItem) ([]BatchItemResult, error) {
	return l.addBatch(items, true)
}

// ReplicateSource applies a replicated source registration, bypassing the
// read-only gate. Source registration is an idempotent overwrite, so
// re-delivery on stream resume is harmless.
func (l *Lake) ReplicateSource(s Source) error {
	return l.addSource(s, true)
}

// CommittedVersion returns the last assigned (committed) version. Unlike
// Version() it neither waits for nor skips in-flight applications — it is
// the correct resume cursor for a replication stream: every record at or
// below it is durably committed here (even one whose local index apply
// failed), so re-requesting it would re-apply a duplicate.
func (l *Lake) CommittedVersion() uint64 {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.version
}

// WaitApplied blocks until every mutation committed as version <= v has
// completed application (successfully or not), or ctx is done, or the lake
// closes (ErrClosed). Unlike WaitVersion it never claims application
// errors — it is a pure freshness barrier, the primitive behind
// read-your-writes (?min_version=) and change-feed gating. Waiting on a
// version not yet committed blocks until it is committed and applied,
// which on a follower means "until replication catches up".
func (l *Lake) WaitApplied(ctx context.Context, v uint64) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if done := ctx.Done(); done != nil {
		stop := make(chan struct{})
		defer close(stop)
		go func() {
			select {
			case <-done:
				// Taking mu before broadcasting orders the wakeup after the
				// waiter has either parked in Wait or re-checked ctx — a bare
				// Broadcast could land in the gap between its ctx check and
				// cond.Wait and be lost.
				l.mu.Lock()
				//lint:ignore SA2001 empty critical section is the ordering barrier described above
				l.mu.Unlock()
				l.cond.Broadcast()
			case <-stop:
			}
		}()
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	for l.processed < v {
		if l.drained {
			return ErrClosed
		}
		if err := ctx.Err(); err != nil {
			return err
		}
		l.cond.Wait()
	}
	return nil
}
