package datalake

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/doc"
	"repro/internal/kg"
	"repro/internal/table"
)

func testDoc(id string) *doc.Document {
	return &doc.Document{ID: id, Title: id, Text: "text of " + id}
}

func TestReadOnlyRejectsLocalWrites(t *testing.T) {
	l := New()
	defer l.Close()
	l.SetReadOnly(true)
	if !l.ReadOnly() {
		t.Fatal("ReadOnly() = false after SetReadOnly(true)")
	}

	if err := l.AddDocument(testDoc("d1")); !errors.Is(err, ErrReadOnly) {
		t.Errorf("AddDocument = %v, want ErrReadOnly", err)
	}
	tbl := table.New("t1", "c", []string{"a"})
	if err := l.AddTable(tbl); !errors.Is(err, ErrReadOnly) {
		t.Errorf("AddTable = %v, want ErrReadOnly", err)
	}
	if err := l.AddTriple(kg.Triple{Subject: "s", Predicate: "p", Object: "o"}); !errors.Is(err, ErrReadOnly) {
		t.Errorf("AddTriple = %v, want ErrReadOnly", err)
	}
	if _, err := l.AddBatch([]BatchItem{{Doc: testDoc("d2")}}); !errors.Is(err, ErrReadOnly) {
		t.Errorf("AddBatch = %v, want ErrReadOnly", err)
	}
	if err := l.AddSource(Source{ID: "s1", Name: "s"}); !errors.Is(err, ErrReadOnly) {
		t.Errorf("AddSource = %v, want ErrReadOnly", err)
	}

	// The replication path must work and feed subscribers normally.
	var mu sync.Mutex
	var seen []uint64
	l.Subscribe(Subscriber{Apply: func(ev Event, done func(error)) {
		mu.Lock()
		seen = append(seen, ev.Version)
		mu.Unlock()
		done(nil)
	}})
	res, err := l.ReplicateBatch([]BatchItem{{Doc: testDoc("r1")}, {Doc: testDoc("r2")}})
	if err != nil {
		t.Fatalf("ReplicateBatch: %v", err)
	}
	for i, r := range res {
		if r.Err != nil || r.Version != uint64(i+1) {
			t.Fatalf("item %d: %+v", i, r)
		}
	}
	if err := l.ReplicateSource(Source{ID: "s1", Name: "s"}); err != nil {
		t.Fatalf("ReplicateSource: %v", err)
	}
	if _, ok := l.Source("s1"); !ok {
		t.Error("replicated source not registered")
	}
	mu.Lock()
	n := len(seen)
	mu.Unlock()
	if n != 2 {
		t.Errorf("subscriber saw %d events, want 2", n)
	}
	if v := l.CommittedVersion(); v != 2 {
		t.Errorf("CommittedVersion = %d, want 2", v)
	}

	// Flipping back re-enables local writes.
	l.SetReadOnly(false)
	if err := l.AddDocument(testDoc("d3")); err != nil {
		t.Errorf("AddDocument after SetReadOnly(false): %v", err)
	}
}

func TestWaitApplied(t *testing.T) {
	l := New()
	defer l.Close()

	// Already-applied versions return immediately.
	if err := l.AddDocument(testDoc("d1")); err != nil {
		t.Fatal(err)
	}
	if err := l.WaitApplied(context.Background(), 1); err != nil {
		t.Fatalf("WaitApplied(1): %v", err)
	}

	// A future version blocks until it commits and applies.
	done := make(chan error, 1)
	go func() { done <- l.WaitApplied(context.Background(), 2) }()
	select {
	case err := <-done:
		t.Fatalf("WaitApplied(2) returned early: %v", err)
	case <-time.After(20 * time.Millisecond):
	}
	if err := l.AddDocument(testDoc("d2")); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("WaitApplied(2): %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("WaitApplied(2) did not wake after commit")
	}

	// Context cancellation unblocks the wait.
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := l.WaitApplied(ctx, 99); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("WaitApplied(99) with deadline = %v, want DeadlineExceeded", err)
	}
}

func TestWaitAppliedClosedLake(t *testing.T) {
	l := New()
	done := make(chan error, 1)
	go func() { done <- l.WaitApplied(context.Background(), 5) }()
	time.Sleep(10 * time.Millisecond)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if !errors.Is(err, ErrClosed) {
			t.Fatalf("WaitApplied on closed lake = %v, want ErrClosed", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("WaitApplied did not wake on Close")
	}
}

// TestFollowerCloseDuringApply is the regression test for the follower
// shutdown path: Close racing a replication apply whose events are still
// being delivered to a (slow) change-feed subscriber must not deadlock.
// The replication applier is an external goroutine — not a lake hook — so
// the PR 2 rule "hooks must not write back into the lake" holds: the
// dispatcher can always drain, Close's Flush always terminates, and the
// in-flight ReplicateBatch either completes or reports ErrClosed.
func TestFollowerCloseDuringApply(t *testing.T) {
	l := New(WithQueueSize(1)) // tiny queue: the applier blocks mid-enqueue
	l.SetReadOnly(true)
	l.Subscribe(Subscriber{Apply: func(ev Event, done func(error)) {
		go func() {
			time.Sleep(2 * time.Millisecond) // slow change-feed consumer
			done(nil)
		}()
	}})

	applierDone := make(chan error, 1)
	go func() {
		for i := 0; ; i++ {
			items := []BatchItem{
				{Doc: testDoc(fmt.Sprintf("a-%d", i))},
				{Doc: testDoc(fmt.Sprintf("b-%d", i))},
				{Doc: testDoc(fmt.Sprintf("c-%d", i))},
			}
			if _, err := l.ReplicateBatch(items); err != nil {
				applierDone <- err
				return
			}
		}
	}()

	time.Sleep(20 * time.Millisecond) // let applies pile up mid-flight
	closeDone := make(chan error, 1)
	go func() { closeDone <- l.Close() }()

	for _, ch := range []struct {
		name string
		c    chan error
	}{{"Close", closeDone}, {"applier", applierDone}} {
		select {
		case err := <-ch.c:
			if ch.name == "applier" && !errors.Is(err, ErrClosed) {
				t.Errorf("applier exited with %v, want ErrClosed", err)
			}
			if ch.name == "Close" && err != nil {
				t.Errorf("Close: %v", err)
			}
		case <-time.After(10 * time.Second):
			t.Fatalf("%s deadlocked against the change-feed subscriber", ch.name)
		}
	}
}
