package datalake

import (
	"strings"
	"testing"

	"repro/internal/doc"
	"repro/internal/kg"
	"repro/internal/table"
)

func sampleLake(t *testing.T) *Lake {
	t.Helper()
	l := New()
	l.AddSource(Source{ID: "s1", Name: "tables", TrustPrior: 0.8})
	l.AddSource(Source{ID: "s2", Name: "texts"})

	tbl := table.New("t1", "1954 open (golf)", []string{"player", "money"})
	tbl.SourceID = "s1"
	tbl.MustAppendRow("tommy bolt", "570")
	tbl.MustAppendRow("ben hogan", "570")
	if err := l.AddTable(tbl); err != nil {
		t.Fatal(err)
	}

	d := &doc.Document{ID: "d1", Title: "Tommy Bolt", Text: "A golfer.", SourceID: "s2"}
	if err := l.AddDocument(d); err != nil {
		t.Fatal(err)
	}

	l.AddTriple(kg.Triple{Subject: "tommy bolt", Predicate: "sport", Object: "golf", SourceID: "s1"})
	return l
}

func TestSources(t *testing.T) {
	l := sampleLake(t)
	s, ok := l.Source("s1")
	if !ok || s.TrustPrior != 0.8 {
		t.Errorf("Source(s1) = %+v, %v", s, ok)
	}
	// Zero prior normalizes to 0.5.
	s2, _ := l.Source("s2")
	if s2.TrustPrior != 0.5 {
		t.Errorf("zero prior = %v, want 0.5", s2.TrustPrior)
	}
	all := l.Sources()
	if len(all) != 2 || all[0].ID != "s1" || all[1].ID != "s2" {
		t.Errorf("Sources = %v", all)
	}
	if _, ok := l.Source("ghost"); ok {
		t.Error("unknown source found")
	}
}

func TestAddErrors(t *testing.T) {
	l := sampleLake(t)
	if err := l.AddTable(table.New("t1", "dup", nil)); err == nil {
		t.Error("duplicate table accepted")
	}
	if err := l.AddTable(table.New("", "empty id", nil)); err == nil {
		t.Error("empty table id accepted")
	}
	if err := l.AddDocument(&doc.Document{ID: "d1"}); err == nil {
		t.Error("duplicate doc accepted")
	}
	if err := l.AddDocument(&doc.Document{}); err == nil {
		t.Error("empty doc id accepted")
	}
}

func TestStats(t *testing.T) {
	l := sampleLake(t)
	s := l.Stats()
	if s.Tables != 1 || s.Tuples != 2 || s.Docs != 1 || s.Triples != 1 || s.Sources != 2 || s.Entities != 1 {
		t.Errorf("Stats = %+v", s)
	}
}

func TestInstanceIDs(t *testing.T) {
	if TableInstanceID("t1") != "table:t1" {
		t.Error("TableInstanceID")
	}
	if TupleInstanceID("t1", 3) != "tuple:t1#3" {
		t.Error("TupleInstanceID")
	}
	if TextInstanceID("d1") != "text:d1" {
		t.Error("TextInstanceID")
	}
	if EntityInstanceID("x") != "entity:x" {
		t.Error("EntityInstanceID")
	}
	for id, want := range map[string]Kind{
		"table:t1":   KindTable,
		"tuple:t1#0": KindTuple,
		"text:d1":    KindText,
		"entity:x":   KindEntity,
	} {
		if got, ok := KindOf(id); !ok || got != want {
			t.Errorf("KindOf(%q) = %v, %v", id, got, ok)
		}
	}
	if _, ok := KindOf("garbage"); ok {
		t.Error("KindOf(garbage) ok")
	}
}

func TestResolveTable(t *testing.T) {
	l := sampleLake(t)
	in, err := l.Resolve("table:t1")
	if err != nil {
		t.Fatal(err)
	}
	if in.Kind != KindTable || in.Table == nil || in.SourceID != "s1" {
		t.Errorf("resolved table = %+v", in)
	}
	if !strings.Contains(in.Serialize(), "tommy bolt") {
		t.Error("table serialization missing content")
	}
}

func TestResolveTuple(t *testing.T) {
	l := sampleLake(t)
	in, err := l.Resolve("tuple:t1#1")
	if err != nil {
		t.Fatal(err)
	}
	if in.Kind != KindTuple || in.Tuple == nil {
		t.Fatalf("resolved tuple = %+v", in)
	}
	if v, _ := in.Tuple.Value("player"); v != "ben hogan" {
		t.Errorf("tuple row wrong: %v", in.Tuple)
	}
}

func TestResolveText(t *testing.T) {
	l := sampleLake(t)
	in, err := l.Resolve("text:d1")
	if err != nil {
		t.Fatal(err)
	}
	if in.Kind != KindText || in.Doc == nil || in.Doc.Title != "Tommy Bolt" {
		t.Errorf("resolved text = %+v", in)
	}
}

func TestResolveEntity(t *testing.T) {
	l := sampleLake(t)
	in, err := l.Resolve("entity:tommy bolt")
	if err != nil {
		t.Fatal(err)
	}
	if in.Kind != KindEntity || in.Graph == nil || in.Entity != "tommy bolt" {
		t.Errorf("resolved entity = %+v", in)
	}
	if !strings.Contains(in.Serialize(), "sport") {
		t.Error("entity serialization missing predicate")
	}
}

func TestResolveErrors(t *testing.T) {
	l := sampleLake(t)
	for _, id := range []string{
		"garbage",
		"table:ghost",
		"tuple:t1",      // missing row separator
		"tuple:t1#x",    // non-numeric row
		"tuple:t1#99",   // row out of range
		"tuple:ghost#0", // unknown table
		"text:ghost",
		"entity:nobody",
	} {
		if _, err := l.Resolve(id); err == nil {
			t.Errorf("Resolve(%q) succeeded", id)
		}
	}
}

func TestKindString(t *testing.T) {
	if KindTable.String() != "table" || KindTuple.String() != "tuple" ||
		KindText.String() != "text" || KindEntity.String() != "entity" {
		t.Error("Kind.String wrong")
	}
	if Kind(42).String() == "" {
		t.Error("unknown Kind String empty")
	}
}

func TestIDOrdering(t *testing.T) {
	l := New()
	for _, id := range []string{"b", "a", "c"} {
		if err := l.AddTable(table.New(id, "cap", []string{"x"})); err != nil {
			t.Fatal(err)
		}
	}
	ids := l.TableIDs()
	if ids[0] != "b" || ids[1] != "a" || ids[2] != "c" {
		t.Errorf("TableIDs not insertion-ordered: %v", ids)
	}
	// Returned slice is a copy.
	ids[0] = "mutated"
	if l.TableIDs()[0] != "b" {
		t.Error("TableIDs shares storage")
	}
}
