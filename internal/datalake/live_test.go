package datalake

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"repro/internal/doc"
	"repro/internal/kg"
	"repro/internal/table"
)

func liveTable(id string) *table.Table {
	t := table.New(id, "caption "+id, []string{"a", "b"})
	t.MustAppendRow("x", "y")
	return t
}

// TestVersionAndEvents checks that every mutation bumps the monotonic
// version by one and that hooks observe correctly-typed events in version
// order.
func TestVersionAndEvents(t *testing.T) {
	l := New()
	if v := l.Version(); v != 0 {
		t.Fatalf("fresh lake version = %d, want 0", v)
	}
	var events []Event
	l.OnChange(func(ev Event) error {
		events = append(events, ev)
		return nil
	})

	if err := l.AddTable(liveTable("t1")); err != nil {
		t.Fatal(err)
	}
	if err := l.AddDocument(&doc.Document{ID: "d1", Title: "d", Text: "body"}); err != nil {
		t.Fatal(err)
	}
	if err := l.AddTriple(kg.Triple{Subject: "s", Predicate: "p", Object: "o"}); err != nil {
		t.Fatal(err)
	}

	if v := l.Version(); v != 3 {
		t.Fatalf("version = %d after 3 mutations, want 3", v)
	}
	if len(events) != 3 {
		t.Fatalf("got %d events, want 3", len(events))
	}
	wantKinds := []Kind{KindTable, KindText, KindEntity}
	for i, ev := range events {
		if ev.Version != uint64(i+1) {
			t.Errorf("event %d version = %d, want %d", i, ev.Version, i+1)
		}
		if ev.Kind != wantKinds[i] {
			t.Errorf("event %d kind = %v, want %v", i, ev.Kind, wantKinds[i])
		}
	}
	if events[0].Table == nil || events[0].Table.ID != "t1" {
		t.Error("table event missing payload")
	}
	if events[1].Doc == nil || events[1].Doc.ID != "d1" {
		t.Error("document event missing payload")
	}
	if events[2].Triple == nil || events[2].Triple.Subject != "s" {
		t.Error("triple event missing payload")
	}

	// A duplicate is rejected with ErrDuplicate and bumps nothing.
	err := l.AddTable(liveTable("t1"))
	if !errors.Is(err, ErrDuplicate) {
		t.Fatalf("duplicate AddTable error = %v, want ErrDuplicate", err)
	}
	if v := l.Version(); v != 3 {
		t.Fatalf("version = %d after rejected duplicate, want 3", v)
	}
	if len(events) != 3 {
		t.Fatalf("rejected duplicate emitted an event")
	}
}

// TestHookErrorPropagates checks that a failing hook surfaces its error to
// the ingest caller while the catalog mutation stays committed — and that
// the failed mutation's version is never published (readers must not
// conclude it was indexed).
func TestHookErrorPropagates(t *testing.T) {
	l := New()
	sentinel := errors.New("indexer lagged")
	var fail bool
	l.OnChange(func(Event) error {
		if fail {
			return sentinel
		}
		return nil
	})
	fail = true
	if err := l.AddTable(liveTable("t1")); !errors.Is(err, sentinel) {
		t.Fatalf("AddTable error = %v, want the hook's error", err)
	}
	if _, ok := l.Table("t1"); !ok {
		t.Fatal("mutation rolled back on hook error; want committed")
	}
	if v := l.Version(); v != 0 {
		t.Fatalf("version = %d after failed hook, want 0 (unpublished)", v)
	}
	// A later successful mutation publishes past the failed one.
	fail = false
	if err := l.AddTable(liveTable("t2")); err != nil {
		t.Fatal(err)
	}
	if v := l.Version(); v != 2 {
		t.Fatalf("version = %d after recovery, want 2", v)
	}
}

// TestConcurrentIngest runs parallel writers of all three modalities against
// live readers; run under -race it proves the locking discipline, and
// version/state must account for every mutation.
func TestConcurrentIngest(t *testing.T) {
	const (
		writers = 4
		perKind = 25
	)
	l := New()
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() { // reader
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				l.Stats()
				l.Version()
				l.TableIDs()
				_, _ = l.Resolve("table:w0-0")
			}
		}
	}()
	var writerWg sync.WaitGroup
	for w := 0; w < writers; w++ {
		writerWg.Add(1)
		go func(w int) {
			defer writerWg.Done()
			for i := 0; i < perKind; i++ {
				if err := l.AddTable(liveTable(fmt.Sprintf("w%d-%d", w, i))); err != nil {
					t.Errorf("AddTable: %v", err)
				}
				if err := l.AddDocument(&doc.Document{ID: fmt.Sprintf("w%d-%d", w, i), Text: "body"}); err != nil {
					t.Errorf("AddDocument: %v", err)
				}
				if err := l.AddTriple(kg.Triple{Subject: fmt.Sprintf("e%d", w), Predicate: "p", Object: fmt.Sprint(i)}); err != nil {
					t.Errorf("AddTriple: %v", err)
				}
			}
		}(w)
	}
	writerWg.Wait()
	close(stop)
	wg.Wait()

	if v := l.Version(); v != uint64(3*writers*perKind) {
		t.Fatalf("version = %d, want %d", v, 3*writers*perKind)
	}
	st := l.Stats()
	if st.Tables != writers*perKind || st.Docs != writers*perKind || st.Triples != writers*perKind {
		t.Fatalf("stats = %+v, want %d of each modality", st, writers*perKind)
	}
}
