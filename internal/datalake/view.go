package datalake

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/doc"
	"repro/internal/kg"
	"repro/internal/table"
)

// View is an immutable snapshot of the lake's catalog pinned at one
// version: the fork primitive behind non-blocking checkpoints. A View is
// built under a brief quiescence (Fork) by copying the catalog's
// *references* — map and slice headers, plus the triple list — so the fork
// cost is proportional to the number of instances, not their content. The
// referenced tables and documents are safe to share because the lake
// treats them as immutable once ingested (updates are modeled as
// delete+re-add, and the catalog maps are replaced, never mutated through
// a view). A long-running consumer (the checkpoint write phase) serializes
// the View while ingestion continues on the live lake.
type View struct {
	version  uint64
	sources  []Source
	tableIDs []string
	docIDs   []string
	tables   map[string]*table.Table
	docs     map[string]*doc.Document
	triples  []kg.Triple
}

// Fork quiesces the lake just long enough to pin a consistent View of the
// catalog at the current version, optionally running extra fork-time work
// (e.g. rotating a write-ahead log, freezing index shards) under the same
// quiescence. When Fork returns, ingestion resumes immediately; the View
// stays frozen at its version forever. An extra error aborts the fork.
//
// This is the short phase of a two-phase checkpoint: everything
// proportional to snapshot *size* (serialization, fsync) happens later,
// against the returned View, with no lake locks held.
func (l *Lake) Fork(extra func(v *View) error) (*View, error) {
	var view *View
	err := l.Quiesce(func(version uint64) error {
		view = l.viewLocked(version)
		if extra != nil {
			return extra(view)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return view, nil
}

// viewLocked copies the catalog references into a View. The caller holds
// writeMu with the lake fully applied (Quiesce), so mu readers are the
// only concurrent accessors and a read lock suffices.
func (l *Lake) viewLocked(version uint64) *View {
	l.mu.RLock()
	defer l.mu.RUnlock()
	v := &View{
		version:  version,
		sources:  make([]Source, 0, len(l.sources)),
		tableIDs: append([]string(nil), l.tableIDs...),
		docIDs:   append([]string(nil), l.docIDs...),
		tables:   make(map[string]*table.Table, len(l.tables)),
		docs:     make(map[string]*doc.Document, len(l.docs)),
	}
	for id, t := range l.tables {
		v.tables[id] = t
	}
	for id, d := range l.docs {
		v.docs[id] = d
	}
	for _, s := range l.sources {
		v.sources = append(v.sources, s)
	}
	sort.Slice(v.sources, func(i, j int) bool { return v.sources[i].ID < v.sources[j].ID })
	v.triples = l.graph.Triples()
	return v
}

// Version returns the lake version the view is pinned at.
func (v *View) Version() uint64 { return v.version }

// Sources returns the view's registered sources sorted by ID (shared
// slice; callers must not mutate).
func (v *View) Sources() []Source { return v.sources }

// TableIDs returns the view's table IDs in insertion order (shared slice;
// callers must not mutate).
func (v *View) TableIDs() []string { return v.tableIDs }

// Table returns the table with the given ID.
func (v *View) Table(id string) (*table.Table, bool) {
	t, ok := v.tables[id]
	return t, ok
}

// DocIDs returns the view's document IDs in insertion order (shared
// slice; callers must not mutate).
func (v *View) DocIDs() []string { return v.docIDs }

// Document returns the document with the given ID.
func (v *View) Document(id string) (*doc.Document, bool) {
	d, ok := v.docs[id]
	return d, ok
}

// Triples returns the view's knowledge-graph triples in insertion order
// (shared slice; callers must not mutate).
func (v *View) Triples() []kg.Triple { return v.triples }

// Resolve maps an instance ID to its content as of the view's version —
// the pinned-read counterpart of Lake.Resolve. Entity instances resolve
// against g, a graph built from the view's triples (the view itself only
// carries the flat triple list); passing nil resolves entities as
// missing. Needs no locking: the view is immutable.
func (v *View) Resolve(instanceID string, g *kg.Graph) (Instance, error) {
	kind, ok := KindOf(instanceID)
	if !ok {
		return Instance{}, fmt.Errorf("datalake: malformed instance id %q", instanceID)
	}
	switch kind {
	case KindTable:
		id := strings.TrimPrefix(instanceID, "table:")
		t, ok := v.tables[id]
		if !ok {
			return Instance{}, fmt.Errorf("datalake: unknown table %q at version %d", id, v.version)
		}
		return Instance{ID: instanceID, Kind: KindTable, SourceID: t.SourceID, Table: t}, nil
	case KindTuple:
		rest := strings.TrimPrefix(instanceID, "tuple:")
		hash := strings.LastIndexByte(rest, '#')
		if hash < 0 {
			return Instance{}, fmt.Errorf("datalake: malformed tuple id %q", instanceID)
		}
		tableID := rest[:hash]
		row, err := strconv.Atoi(rest[hash+1:])
		if err != nil {
			return Instance{}, fmt.Errorf("datalake: malformed tuple row in %q: %w", instanceID, err)
		}
		t, ok := v.tables[tableID]
		if !ok {
			return Instance{}, fmt.Errorf("datalake: unknown table %q at version %d", tableID, v.version)
		}
		tp, ok := t.TupleAt(row)
		if !ok {
			return Instance{}, fmt.Errorf("datalake: row %d out of range for table %q", row, tableID)
		}
		return Instance{ID: instanceID, Kind: KindTuple, SourceID: t.SourceID, Tuple: &tp}, nil
	case KindText:
		id := strings.TrimPrefix(instanceID, "text:")
		d, ok := v.docs[id]
		if !ok {
			return Instance{}, fmt.Errorf("datalake: unknown document %q at version %d", id, v.version)
		}
		return Instance{ID: instanceID, Kind: KindText, SourceID: d.SourceID, Doc: d}, nil
	case KindEntity:
		name := strings.TrimPrefix(instanceID, "entity:")
		var ts []kg.Triple
		if g != nil {
			ts = g.About(name)
		}
		if len(ts) == 0 {
			return Instance{}, fmt.Errorf("datalake: unknown entity %q at version %d", name, v.version)
		}
		return Instance{ID: instanceID, Kind: KindEntity, SourceID: ts[0].SourceID, Entity: name, Graph: g}, nil
	default:
		return Instance{}, fmt.Errorf("datalake: unhandled kind %v", kind)
	}
}
