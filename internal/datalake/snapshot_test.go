package datalake

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
)

// snapPayload stands in for the pipeline's frozen-index payload; readers
// assert it stays attached (and version-consistent) for as long as they
// hold an acquired handle.
type snapPayload struct{ version uint64 }

// TestSnapshotRetention pins down the deterministic retention contract
// before the concurrent hammer: keep-last-N unpinned, pins exempt, an
// in-flight reader keeps an evicted payload alive until Release.
func TestSnapshotRetention(t *testing.T) {
	reg := NewSnapshotRegistry(2)
	for v := uint64(1); v <= 3; v++ {
		reg.Add(&View{version: v}, &snapPayload{version: v}, false)
	}
	// Hold a reader on v2, pin v3, then push the window past both.
	h2, err := reg.Acquire(2)
	if err != nil {
		t.Fatal(err)
	}
	if err := reg.Pin(3); err != nil {
		t.Fatal(err)
	}
	for v := uint64(4); v <= 6; v++ {
		reg.Add(&View{version: v}, &snapPayload{version: v}, false)
	}
	// v1 and v2 are evicted (only 5 and 6 fit the unpinned window), v3
	// survives on its pin.
	if _, err := reg.Acquire(1); err == nil {
		t.Fatal("evicted snapshot v1 still acquirable")
	}
	if _, err := reg.Acquire(2); err == nil {
		t.Fatal("evicted snapshot v2 acquirable by new readers")
	}
	if got := reg.Floor(); got != 3 {
		t.Fatalf("floor = %d, want 3 (pinned v3)", got)
	}
	var bf *BelowFloorError
	if _, err := reg.Acquire(1); !errors.As(err, &bf) || bf.Floor != 3 {
		t.Fatalf("below-floor acquire error = %v, want BelowFloorError{Floor: 3}", err)
	}
	// The in-flight reader on evicted v2 still sees its payload; the last
	// Release frees it.
	if p, ok := h2.Payload().(*snapPayload); !ok || p.version != 2 {
		t.Fatalf("evicted-but-held payload = %#v, want version 2", h2.Payload())
	}
	h2.Release()
	reg.mu.Lock()
	freed := h2.payload == nil
	reg.mu.Unlock()
	if !freed {
		t.Fatal("payload not freed after last Release of an evicted snapshot")
	}
	// Unpinning v3 collects it immediately (window already full).
	if err := reg.Unpin(3); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Acquire(3); err == nil {
		t.Fatal("unpinned v3 not collected")
	}
}

// TestSnapshotGCvsReaders hammers retention GC concurrently with pinned
// reads and new pins (run under -race): an acquired handle must never
// observe a freed payload, a successful Pin must hold until the matching
// Unpin, and once every pin is released the unpinned population must
// shrink back to the retention window.
func TestSnapshotGCvsReaders(t *testing.T) {
	const (
		retain  = 4
		writers = 3
		readers = 3
		pinners = 2
		perG    = 400
	)
	reg := NewSnapshotRegistry(retain)
	var version atomic.Uint64

	// pinned tracks versions this test successfully pinned and has not yet
	// unpinned; GC must never collect one while it is in the map.
	var (
		pinMu  sync.Mutex
		pinned = map[uint64]bool{}
	)

	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				v := version.Add(1)
				reg.Add(&View{version: v}, &snapPayload{version: v}, false)
			}
		}()
	}
	for rd := 0; rd < readers; rd++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				floor, latest := reg.Floor(), reg.Latest()
				if latest == 0 {
					continue
				}
				// A simple LCG spreads reads across the retained window (and
				// slightly past it, to exercise the miss paths).
				seed = seed*6364136223846793005 + 1442695040888963407
				v := floor + seed%(latest-floor+2)
				snap, err := reg.Acquire(v)
				if err != nil {
					var bf *BelowFloorError
					if !errors.As(err, &bf) && !errors.Is(err, ErrSnapshotNotFound) {
						t.Errorf("Acquire(%d) unexpected error: %v", v, err)
					}
					continue
				}
				// The handle pins the payload: it must stay attached and
				// version-consistent no matter how hard GC churns.
				p, ok := snap.Payload().(*snapPayload)
				if !ok || p == nil {
					t.Errorf("acquired snapshot %d lost its payload (use after free)", v)
				} else if p.version != snap.Version() {
					t.Errorf("acquired snapshot %d carries payload of %d", snap.Version(), p.version)
				}
				snap.Release()
			}
		}(uint64(rd + 1))
	}
	for pn := 0; pn < pinners; pn++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				if i%2 == 0 {
					// Pin whatever is newest; losing the race to GC is fine
					// (miss), but a successful pin must stick.
					v := reg.Latest()
					if v == 0 {
						continue
					}
					pinMu.Lock()
					if err := reg.Pin(v); err == nil {
						pinned[v] = true
					}
					pinMu.Unlock()
				} else {
					pinMu.Lock()
					for v := range pinned { // any one pin
						delete(pinned, v)
						if err := reg.Unpin(v); err != nil {
							t.Errorf("Unpin(%d) of a held pin: %v (pin was lost)", v, err)
						}
						break
					}
					pinMu.Unlock()
				}
			}
		}()
	}
	wg.Wait()

	// Every pin still held must have survived the GC storm and be readable.
	pinMu.Lock()
	held := make([]uint64, 0, len(pinned))
	for v := range pinned {
		held = append(held, v)
	}
	pinMu.Unlock()
	for _, v := range held {
		snap, err := reg.Acquire(v)
		if err != nil {
			t.Fatalf("pinned snapshot %d lost: %v", v, err)
		}
		if p, ok := snap.Payload().(*snapPayload); !ok || p.version != v {
			t.Fatalf("pinned snapshot %d payload corrupted: %#v", v, snap.Payload())
		}
		snap.Release()
		if err := reg.Unpin(v); err != nil {
			t.Fatalf("Unpin(%d): %v", v, err)
		}
	}

	// With all pins released, the unpinned population collapses to the
	// retention window.
	if got := len(reg.List()); got > retain {
		t.Fatalf("retained %d snapshots after releasing every pin, want <= %d", got, retain)
	}
	for _, info := range reg.List() {
		if info.Pinned {
			t.Fatalf("snapshot %d still pinned after the sweep", info.Version)
		}
		if info.Readers != 0 {
			t.Fatalf("snapshot %d reports %d readers after all releases", info.Version, info.Readers)
		}
	}
}
