package datalake

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/doc"
	"repro/internal/kg"
	"repro/internal/table"
)

// BatchItem is one mutation in an AddBatch call. Exactly one field must be
// set; its modality determines the event kind.
type BatchItem struct {
	Table  *table.Table
	Doc    *doc.Document
	Triple *kg.Triple
}

// BatchItemResult is the per-item outcome of an AddBatch call: the lake
// version the item committed as, or the error that rejected it (duplicate
// ID, empty ID, malformed item) or failed its application.
type BatchItemResult struct {
	Version uint64
	Err     error
}

// AddBatch ingests a mixed batch of tables, documents, and triples through
// the pipelined write path, amortizing the commit stage: subscriber
// prepare work (tokenization, embedding) fans out across a bounded worker
// pool, then a single write-lock acquisition commits every valid item and
// assigns contiguous versions. Items are committed in slice order, so the
// change feed observes them in order.
//
// Item failures are independent: a duplicate or malformed item is reported
// in its BatchItemResult without affecting the rest of the batch. The call
// returns after every committed item has been applied (indexed); the
// batch-level errors are ErrClosed and, on a follower, ErrReadOnly.
func (l *Lake) AddBatch(items []BatchItem) ([]BatchItemResult, error) {
	return l.addBatch(items, false)
}

// addBatch is the shared implementation behind AddBatch (local writes) and
// ReplicateBatch (the replication apply path, which bypasses the follower's
// read-only gate but is otherwise the identical pipeline — replicated
// events prepare, commit, and apply exactly like local ingests, so index
// maintenance and cache watermarks behave identically on both roles).
func (l *Lake) addBatch(items []BatchItem, replica bool) ([]BatchItemResult, error) {
	results := make([]BatchItemResult, len(items))
	if len(items) == 0 {
		return results, nil
	}

	// Stage 1: validate shape and build candidate events.
	evs := make([]Event, len(items))
	for i, it := range items {
		switch {
		case it.Table != nil && it.Doc == nil && it.Triple == nil:
			if it.Table.ID == "" {
				results[i].Err = fmt.Errorf("datalake: table with empty ID")
				continue
			}
			evs[i] = Event{Kind: KindTable, Table: it.Table}
		case it.Doc != nil && it.Table == nil && it.Triple == nil:
			if it.Doc.ID == "" {
				results[i].Err = fmt.Errorf("datalake: document with empty ID")
				continue
			}
			evs[i] = Event{Kind: KindText, Doc: it.Doc}
		case it.Triple != nil && it.Table == nil && it.Doc == nil:
			evs[i] = Event{Kind: KindEntity, Triple: it.Triple}
		default:
			results[i].Err = fmt.Errorf("datalake: batch item %d must set exactly one of Table, Doc, Triple", i)
		}
	}

	// Stage 2: run subscriber prepare stages in parallel across items on a
	// bounded pool — the expensive embedding/tokenization work happens here,
	// outside every lake lock.
	payloads := make([]map[int]any, len(items))
	workers := runtime.GOMAXPROCS(0)
	if workers > len(items) {
		workers = len(items)
	}
	if workers <= 1 {
		for i := range items {
			if results[i].Err != nil {
				continue
			}
			payloads[i], results[i].Err = l.prepare(evs[i])
		}
	} else {
		var wg sync.WaitGroup
		idx := make(chan int)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range idx {
					payloads[i], results[i].Err = l.prepare(evs[i])
				}
			}()
		}
		for i := range items {
			if results[i].Err == nil {
				idx <- i
			}
		}
		close(idx)
		wg.Wait()
	}

	// Stage 3: one write-lock acquisition commits every valid item and
	// enqueues its event; versions are contiguous in slice order. Staging
	// assigns versions without touching the catalog, the durable hook (if
	// any) persists the whole section with one append+sync, and only then
	// do the mutations materialize — a hook failure rolls the entire
	// section back with the staged versions released.
	commitStart := time.Now()
	l.writeMu.Lock()
	if l.closed {
		l.writeMu.Unlock()
		return results, ErrClosed
	}
	if l.readOnly && !replica {
		l.writeMu.Unlock()
		return results, ErrReadOnly
	}
	committed := make([]uint64, len(items))
	staged := make([]int, 0, len(items))
	st := newStaging()
	l.mu.RLock()
	next := l.version + 1
	for i := range items {
		if results[i].Err != nil {
			continue
		}
		if err := l.stageLocked(&evs[i], next, st); err != nil {
			results[i].Err = err
			continue
		}
		staged = append(staged, i)
		next++
	}
	l.mu.RUnlock()
	if l.commitHook != nil && len(staged) > 0 {
		hookEvs := make([]Event, len(staged))
		for n, i := range staged {
			hookEvs[n] = evs[i]
		}
		if err := l.commitHook(hookEvs); err != nil {
			for _, i := range staged {
				results[i].Err = err
			}
			l.writeMu.Unlock()
			return results, nil
		}
	}
	l.mu.Lock()
	for _, i := range staged {
		l.materializeLocked(&evs[i])
		committed[i] = evs[i].Version
		results[i].Version = evs[i].Version
	}
	l.mu.Unlock()
	// Enqueue under writeMu so queue order stays version order; a full
	// queue applies backpressure here, bounding queued-event memory.
	for i := range items {
		if committed[i] == 0 {
			continue
		}
		l.events <- queuedEvent{ev: evs[i], payloads: payloads[i]}
	}
	l.writeMu.Unlock()
	l.m.commitSec.Since(commitStart)

	// Stage 4: await application of every committed item (ascending, so
	// only the tail wait actually blocks) and claim its application error.
	for i := range items {
		if committed[i] == 0 {
			continue
		}
		if err := l.waitClaimed(committed[i]); err != nil {
			results[i].Err = err
		}
	}
	return results, nil
}
