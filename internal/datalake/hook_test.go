package datalake

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/doc"
	"repro/internal/kg"
	"repro/internal/table"
)

// TestCommitHookObservesStagedEvents checks the durable hook contract: it
// sees every mutation in version order with versions assigned, before the
// mutation is observable anywhere else.
func TestCommitHookObservesStagedEvents(t *testing.T) {
	l := New()
	defer l.Close()
	var logged []Event
	l.SetCommitHook(func(evs []Event) error {
		for _, ev := range evs {
			if ev.Version == 0 {
				t.Error("hook saw event without version")
			}
			// The mutation must not be visible yet: the hook runs before
			// materialization.
			switch ev.Kind {
			case KindTable:
				if _, ok := l.tables[ev.Table.ID]; ok {
					t.Errorf("table %q already in catalog during hook", ev.Table.ID)
				}
			case KindText:
				if _, ok := l.docs[ev.Doc.ID]; ok {
					t.Errorf("doc %q already in catalog during hook", ev.Doc.ID)
				}
			}
		}
		logged = append(logged, evs...)
		return nil
	})

	if err := l.AddTable(table.New("t1", "c", []string{"a"})); err != nil {
		t.Fatal(err)
	}
	if err := l.AddDocument(&doc.Document{ID: "d1", Text: "x"}); err != nil {
		t.Fatal(err)
	}
	if err := l.AddTriple(kg.Triple{Subject: "s", Predicate: "p", Object: "o"}); err != nil {
		t.Fatal(err)
	}
	if len(logged) != 3 {
		t.Fatalf("hook saw %d events, want 3", len(logged))
	}
	for i, ev := range logged {
		if ev.Version != uint64(i+1) {
			t.Errorf("event %d has version %d, want %d", i, ev.Version, i+1)
		}
	}
}

// TestCommitHookErrorAborts checks that a failing hook rolls the whole
// section back: no catalog change, no version consumed, no event delivery.
func TestCommitHookErrorAborts(t *testing.T) {
	l := New()
	defer l.Close()
	var delivered int
	l.OnChange(func(Event) error { delivered++; return nil })

	boom := errors.New("disk full")
	fail := true
	l.SetCommitHook(func([]Event) error {
		if fail {
			return boom
		}
		return nil
	})

	if err := l.AddTable(table.New("t1", "c", []string{"a"})); !errors.Is(err, boom) {
		t.Fatalf("AddTable error = %v, want the hook's error", err)
	}
	if _, ok := l.Table("t1"); ok {
		t.Fatal("aborted table is in the catalog")
	}
	if v := l.Version(); v != 0 {
		t.Fatalf("Version = %d after aborted commit, want 0", v)
	}

	// The staged version was released: the next successful commit is 1.
	fail = false
	v, err := l.AddTableVersioned(table.New("t1", "c", []string{"a"}))
	if err != nil {
		t.Fatal(err)
	}
	if v != 1 {
		t.Fatalf("post-abort commit got version %d, want 1", v)
	}
	if _, err := l.Flush(); err != nil {
		t.Fatal(err)
	}
	if delivered != 1 {
		t.Fatalf("delivered %d events, want 1 (aborted commit must not deliver)", delivered)
	}
}

// TestCommitHookBatchAmortized checks AddBatch invokes the hook once with
// the whole section, rolls all items back on error, and still rejects
// intra-batch duplicates during staging.
func TestCommitHookBatchAmortized(t *testing.T) {
	l := New()
	defer l.Close()
	var calls int
	var sizes []int
	l.SetCommitHook(func(evs []Event) error {
		calls++
		sizes = append(sizes, len(evs))
		return nil
	})

	items := []BatchItem{
		{Doc: &doc.Document{ID: "d1", Text: "x"}},
		{Doc: &doc.Document{ID: "d1", Text: "dup"}}, // intra-batch duplicate
		{Triple: &kg.Triple{Subject: "s", Predicate: "p", Object: "o"}},
	}
	results, err := l.AddBatch(items)
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Err != nil || results[2].Err != nil {
		t.Fatalf("valid items failed: %v / %v", results[0].Err, results[2].Err)
	}
	if !errors.Is(results[1].Err, ErrDuplicate) {
		t.Fatalf("intra-batch duplicate error = %v, want ErrDuplicate", results[1].Err)
	}
	if calls != 1 || sizes[0] != 2 {
		t.Fatalf("hook calls = %d sizes = %v, want one call with the 2 staged events", calls, sizes)
	}

	// A failing hook rejects every staged item and consumes no versions.
	boom := errors.New("wal broken")
	l.SetCommitHook(func([]Event) error { return boom })
	results, err = l.AddBatch([]BatchItem{{Doc: &doc.Document{ID: "d2", Text: "x"}}})
	if err != nil {
		t.Fatal(err)
	}
	if !errors.Is(results[0].Err, boom) || results[0].Version != 0 {
		t.Fatalf("hook failure result = %+v, want the hook's error and no version", results[0])
	}
	if _, ok := l.Document("d2"); ok {
		t.Fatal("aborted batch item is in the catalog")
	}
	if v, _ := l.Flush(); v != 2 {
		t.Fatalf("version after aborted batch = %d, want 2", v)
	}
}

// TestSourceHook checks source registrations flow through (and can be
// rejected by) the source hook.
func TestSourceHook(t *testing.T) {
	l := New()
	defer l.Close()
	var seen []Source
	l.SetSourceHook(func(s Source) error {
		if s.ID == "bad" {
			return fmt.Errorf("rejected")
		}
		seen = append(seen, s)
		return nil
	})
	if err := l.AddSource(Source{ID: "ok", Name: "fine"}); err != nil {
		t.Fatal(err)
	}
	if err := l.AddSource(Source{ID: "bad"}); err == nil {
		t.Fatal("hook rejection not propagated")
	}
	if _, ok := l.Source("bad"); ok {
		t.Fatal("rejected source registered anyway")
	}
	if len(seen) != 1 || seen[0].TrustPrior != 0.5 {
		t.Fatalf("hook saw %+v, want the normalized accepted source", seen)
	}
}

// TestQuiesce checks the quiesce contract: everything committed before is
// applied, and the reported version matches the catalog version.
func TestQuiesce(t *testing.T) {
	l := New()
	defer l.Close()
	for i := 0; i < 5; i++ {
		if err := l.AddDocument(&doc.Document{ID: fmt.Sprintf("d%d", i), Text: "x"}); err != nil {
			t.Fatal(err)
		}
	}
	var got uint64
	if err := l.Quiesce(func(v uint64) error {
		got = v
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if got != 5 {
		t.Fatalf("quiesced version = %d, want 5", got)
	}
	// Writes still work afterwards.
	if err := l.AddDocument(&doc.Document{ID: "after", Text: "x"}); err != nil {
		t.Fatal(err)
	}
}

func TestFastForwardVersion(t *testing.T) {
	l := New()
	defer l.Close()
	if err := l.AddDocument(&doc.Document{ID: "d1", Text: "x"}); err != nil {
		t.Fatal(err)
	}
	if err := l.FastForwardVersion(0); err == nil {
		t.Fatal("fast-forward behind current version succeeded")
	}
	if err := l.FastForwardVersion(10); err != nil {
		t.Fatal(err)
	}
	if v := l.Version(); v != 10 {
		t.Fatalf("Version after fast-forward = %d, want 10", v)
	}
	v, err := l.AddDocumentVersioned(&doc.Document{ID: "d2", Text: "x"})
	if err != nil {
		t.Fatal(err)
	}
	if v != 11 {
		t.Fatalf("next commit after fast-forward got version %d, want 11", v)
	}
}
