package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// This file is the metricscheck half of the package: a validator for
// Prometheus text exposition that CI points at a live /metrics endpoint
// (via cmd/metricscheck or the server's TestMetricsCheck) to fail the
// build when any exported metric is missing, malformed, or duplicated.

// ExpositionError is one problem found by Lint, with the 1-based line it
// was found on (0 for whole-document problems).
type ExpositionError struct {
	Line int
	Msg  string
}

func (e ExpositionError) Error() string {
	if e.Line > 0 {
		return fmt.Sprintf("line %d: %s", e.Line, e.Msg)
	}
	return e.Msg
}

// Lint validates a Prometheus text exposition document:
//
//   - every non-comment line parses as `name[{labels}] value`
//   - metric names are legal and every sample is preceded by its
//     family's # TYPE line; # TYPE appears once per family
//   - no duplicated series (same name + label set twice)
//   - histograms are complete and consistent: a le="+Inf" bucket per
//     series, cumulative bucket counts non-decreasing in le order, and
//     the +Inf bucket equal to the _count sample
//
// It returns every problem found (nil for a clean document).
func Lint(r io.Reader) []error {
	var errs []error
	addf := func(line int, format string, args ...any) {
		errs = append(errs, ExpositionError{Line: line, Msg: fmt.Sprintf(format, args...)})
	}

	typed := map[string]string{} // family -> type
	seen := map[string]int{}     // name+labels -> first line
	type histSeries struct {     // per histogram series (family + non-le labels)
		buckets map[float64]float64 // le -> cumulative count
		sum     *float64
		count   *float64
		line    int
	}
	hists := map[string]*histSeries{}

	histFor := func(key string, line int) *histSeries {
		h, ok := hists[key]
		if !ok {
			h = &histSeries{buckets: map[float64]float64{}, line: line}
			hists[key] = h
		}
		return h
	}

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 16*1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.Fields(line)
			if len(fields) >= 3 && fields[1] == "TYPE" {
				name, typ := fields[2], strings.Join(fields[3:], " ")
				if _, dup := typed[name]; dup {
					addf(lineNo, "duplicate # TYPE for %s", name)
				}
				if typ != "counter" && typ != "gauge" && typ != "histogram" && typ != "summary" && typ != "untyped" {
					addf(lineNo, "unknown type %q for %s", typ, name)
				}
				typed[name] = typ
			}
			continue
		}
		name, labels, value, perr := parseSample(line)
		if perr != nil {
			addf(lineNo, "malformed sample: %v", perr)
			continue
		}
		if !nameRE.MatchString(name) {
			addf(lineNo, "illegal metric name %q", name)
			continue
		}
		family := name
		suffix := ""
		for _, s := range []string{"_bucket", "_sum", "_count"} {
			base := strings.TrimSuffix(name, s)
			if base != name && typed[base] == "histogram" {
				family, suffix = base, s
				break
			}
		}
		if _, ok := typed[family]; !ok {
			addf(lineNo, "sample %s has no preceding # TYPE", name)
		}
		key := name + labels
		if first, dup := seen[key]; dup {
			addf(lineNo, "duplicate series %s%s (first at line %d)", name, labels, first)
		}
		seen[key] = lineNo

		if typed[family] == "histogram" && suffix != "" {
			le, rest := splitLE(labels)
			h := histFor(family+rest, lineNo)
			switch suffix {
			case "_bucket":
				if le == "" {
					addf(lineNo, "%s_bucket without le label", family)
					continue
				}
				bound, err := parseLE(le)
				if err != nil {
					addf(lineNo, "%s_bucket bad le %q", family, le)
					continue
				}
				h.buckets[bound] = value
			case "_sum":
				v := value
				h.sum = &v
			case "_count":
				v := value
				h.count = &v
			}
		}
	}
	if err := sc.Err(); err != nil {
		addf(0, "read: %v", err)
	}

	for key, h := range hists {
		inf, ok := h.buckets[infBound]
		if !ok {
			addf(h.line, "histogram %s missing le=\"+Inf\" bucket", key)
			continue
		}
		if h.count == nil || h.sum == nil {
			addf(h.line, "histogram %s missing _sum or _count", key)
			continue
		}
		if inf != *h.count {
			addf(h.line, "histogram %s +Inf bucket %g != count %g", key, inf, *h.count)
		}
		bounds := make([]float64, 0, len(h.buckets))
		for b := range h.buckets {
			bounds = append(bounds, b)
		}
		sort.Float64s(bounds)
		prev := -1.0
		first := true
		for _, b := range bounds {
			if c := h.buckets[b]; !first && c < prev {
				addf(h.line, "histogram %s bucket counts decrease at le=%g", key, b)
			} else {
				prev, first = c, false
			}
		}
	}

	sort.Slice(errs, func(i, j int) bool {
		return errs[i].(ExpositionError).Line < errs[j].(ExpositionError).Line
	})
	return errs
}

// infBound is the bound for le="+Inf".
var infBound = math.Inf(1)

func parseLE(le string) (float64, error) {
	if le == "+Inf" {
		return infBound, nil
	}
	return strconv.ParseFloat(le, 64)
}

// parseSample splits `name[{labels}] value` (timestamps are not emitted
// by this repo and are rejected).
func parseSample(line string) (name, labels string, value float64, err error) {
	rest := line
	if i := strings.IndexByte(rest, '{'); i >= 0 {
		name = rest[:i]
		j := strings.LastIndexByte(rest, '}')
		if j < i {
			return "", "", 0, fmt.Errorf("unbalanced label braces")
		}
		labels = rest[i : j+1]
		rest = strings.TrimSpace(rest[j+1:])
	} else {
		fields := strings.SplitN(strings.TrimSpace(rest), " ", 2)
		if len(fields) != 2 {
			return "", "", 0, fmt.Errorf("want `name value`")
		}
		name, rest = fields[0], strings.TrimSpace(fields[1])
	}
	if strings.ContainsAny(rest, " \t") {
		return "", "", 0, fmt.Errorf("trailing fields after value (timestamps unsupported)")
	}
	v, perr := strconv.ParseFloat(rest, 64)
	if perr != nil {
		return "", "", 0, fmt.Errorf("bad value %q", rest)
	}
	return name, labels, v, nil
}

// splitLE extracts the le label from a rendered label set, returning the
// le value and the label set with le removed (series identity for
// cumulative-bucket grouping).
func splitLE(labels string) (le, rest string) {
	if labels == "" {
		return "", ""
	}
	inner := strings.TrimSuffix(strings.TrimPrefix(labels, "{"), "}")
	parts := splitLabelPairs(inner)
	kept := make([]string, 0, len(parts))
	for _, p := range parts {
		if v, ok := strings.CutPrefix(p, `le="`); ok {
			le = strings.TrimSuffix(v, `"`)
			continue
		}
		kept = append(kept, p)
	}
	if len(kept) == 0 {
		return le, ""
	}
	return le, "{" + strings.Join(kept, ",") + "}"
}

// splitLabelPairs splits `k="v",k2="v2"` respecting escaped quotes.
func splitLabelPairs(s string) []string {
	var parts []string
	var b strings.Builder
	inQuotes := false
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c == '\\' && inQuotes && i+1 < len(s):
			b.WriteByte(c)
			i++
			b.WriteByte(s[i])
			continue
		case c == '"':
			inQuotes = !inQuotes
		case c == ',' && !inQuotes:
			parts = append(parts, b.String())
			b.Reset()
			continue
		}
		b.WriteByte(c)
	}
	if b.Len() > 0 {
		parts = append(parts, b.String())
	}
	return parts
}
