package obs

import (
	"context"
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestHistogramQuantileKnownDistribution(t *testing.T) {
	h := newHistogram(DefBuckets)
	// 100 observations: 50 at 0.8ms, 45 at 8ms, 5 at 80ms. Quantiles must
	// answer the exact upper bound of the containing bucket.
	for i := 0; i < 50; i++ {
		h.Observe(0.0008)
	}
	for i := 0; i < 45; i++ {
		h.Observe(0.008)
	}
	for i := 0; i < 5; i++ {
		h.Observe(0.08)
	}
	cases := []struct {
		q    float64
		want float64
	}{
		{0.50, 1e-3},  // rank 50 is the last 0.8ms observation -> le=0.001
		{0.51, 1e-2},  // rank 51 is the first 8ms observation  -> le=0.01
		{0.95, 1e-2},  // rank 95 is the last 8ms observation   -> le=0.01
		{0.96, 1e-1},  // rank 96 is in the 80ms group          -> le=0.1
		{0.99, 1e-1},  //
		{1.00, 1e-1},  //
		{0.001, 1e-3}, // rank ceil(0.1)=1 -> first bucket with data
	}
	for _, c := range cases {
		if got := h.Quantile(c.q); got != c.want {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	if h.Count() != 100 {
		t.Errorf("Count = %d, want 100", h.Count())
	}
	wantSum := 50*0.0008 + 45*0.008 + 5*0.08
	if math.Abs(h.Sum()-wantSum) > 1e-9 {
		t.Errorf("Sum = %v, want %v", h.Sum(), wantSum)
	}
}

func TestHistogramQuantileEdges(t *testing.T) {
	h := newHistogram(DefBuckets)
	if got := h.Quantile(0.5); got != 0 {
		t.Errorf("empty histogram Quantile = %v, want 0", got)
	}
	h.Observe(100) // beyond the last bound -> +Inf bucket
	if got := h.Quantile(0.99); !math.IsInf(got, 1) {
		t.Errorf("overflow-bucket Quantile = %v, want +Inf", got)
	}
}

func TestConcurrentRecording(t *testing.T) {
	r := NewRegistry()
	ctr := r.Counter("test_ops_total", "ops")
	g := r.Gauge("test_depth", "depth")
	h := r.Histogram("test_latency_seconds", "latency")
	vec := r.CounterVec("test_by_route_total", "by route", "route")
	hvec := r.HistogramVec("test_stage_seconds", "stages", "stage")

	const workers, perWorker = 8, 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				ctr.Inc()
				g.Add(1)
				g.Add(-1)
				h.Observe(0.001)
				vec.With("a").Inc()
				hvec.With("s1").Observe(0.01)
			}
		}(w)
	}
	wg.Wait()
	if want := uint64(workers * perWorker); ctr.Value() != want {
		t.Errorf("counter = %d, want %d", ctr.Value(), want)
	}
	if g.Value() != 0 {
		t.Errorf("gauge = %v, want 0", g.Value())
	}
	if want := uint64(workers * perWorker); h.Count() != want {
		t.Errorf("histogram count = %d, want %d", h.Count(), want)
	}
	if math.Abs(h.Sum()-float64(workers*perWorker)*0.001) > 1e-6 {
		t.Errorf("histogram sum = %v", h.Sum())
	}
	if want := uint64(workers * perWorker); vec.With("a").Value() != want {
		t.Errorf("vec counter = %d, want %d", vec.With("a").Value(), want)
	}
}

func TestNilSafety(t *testing.T) {
	var r *Registry
	r.Counter("x_total", "x").Inc()
	r.Gauge("g", "g").Set(3)
	r.Histogram("h_seconds", "h").Observe(1)
	r.CounterVec("v_total", "v", "l").With("a").Add(2)
	r.HistogramVec("hv_seconds", "hv", "l").With("a").Since(time.Now())
	r.CounterFunc("cf_total", "cf", func() uint64 { return 1 })
	r.GaugeFunc("gf", "gf", func() float64 { return 1 })
	done := r.Span(context.Background(), "stage")
	done()
	ctx := r.StartTrace(context.Background(), "id")
	r.FinishTrace(ctx, "route", 200)
	if err := r.WritePrometheus(nil); err != nil {
		t.Fatalf("nil registry WritePrometheus: %v", err)
	}
	if got := r.Traces().Snapshot(); got != nil {
		t.Fatalf("nil ring snapshot = %v", got)
	}
}

func TestWritePrometheusGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("verifai_test_ops_total", "Operations.").Add(7)
	r.Gauge("verifai_test_depth", "Queue depth.").Set(2.5)
	r.CounterVec("verifai_test_http_total", "Requests.", "route", "status").With("/v1/stats", "200").Add(3)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	const want = `# HELP verifai_test_ops_total Operations.
# TYPE verifai_test_ops_total counter
verifai_test_ops_total 7
# HELP verifai_test_depth Queue depth.
# TYPE verifai_test_depth gauge
verifai_test_depth 2.5
# HELP verifai_test_http_total Requests.
# TYPE verifai_test_http_total counter
verifai_test_http_total{route="/v1/stats",status="200"} 3
`
	if b.String() != want {
		t.Errorf("exposition mismatch:\n got:\n%s\nwant:\n%s", b.String(), want)
	}
}

func TestWritePrometheusHistogramExposition(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("verifai_test_latency_seconds", "Latency.")
	h.Observe(0.0008) // le=0.001
	h.Observe(0.0008)
	h.Observe(0.03) // le=0.05
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE verifai_test_latency_seconds histogram",
		`verifai_test_latency_seconds_bucket{le="0.001"} 2`,
		`verifai_test_latency_seconds_bucket{le="0.05"} 3`,
		`verifai_test_latency_seconds_bucket{le="+Inf"} 3`,
		"verifai_test_latency_seconds_count 3",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
	if errs := Lint(strings.NewReader(out)); len(errs) > 0 {
		t.Errorf("Lint of own exposition: %v", errs)
	}
}

func TestHistogramBucketLadders(t *testing.T) {
	r := NewRegistry()
	h := r.HistogramBuckets("verifai_test_io_seconds", "IO.", []float64{0.001, 0.1, 10})
	h.Observe(0.0005)
	h.Observe(0.05)
	h.Observe(3)
	h.Observe(60) // lands in +Inf only
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`verifai_test_io_seconds_bucket{le="0.001"} 1`,
		`verifai_test_io_seconds_bucket{le="0.1"} 2`,
		`verifai_test_io_seconds_bucket{le="10"} 3`,
		`verifai_test_io_seconds_bucket{le="+Inf"} 4`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
	if strings.Contains(out, `le="0.005"`) {
		t.Error("custom-ladder histogram leaked a DefBuckets bound")
	}
	if errs := Lint(strings.NewReader(out)); len(errs) > 0 {
		t.Errorf("Lint of custom-ladder exposition: %v", errs)
	}

	// Vec variant: every label child shares the family ladder.
	hv := r.HistogramVecBuckets("verifai_test_stage_seconds", "Stages.", StageBuckets, "stage")
	hv.With("retrieve").Observe(0.01)
	if q := hv.With("retrieve").Quantile(0.5); q <= 0 {
		t.Errorf("vec child quantile = %v, want > 0", q)
	}

	// Re-registration: a ladder-less lookup of a custom-ladder family
	// returns the same handle (callers that just observe don't restate the
	// ladder)...
	if r.Histogram("verifai_test_io_seconds", "IO.") != h {
		t.Error("ladder-less re-registration returned a different handle")
	}
	// ...and restating the identical ladder is fine too.
	if r.HistogramBuckets("verifai_test_io_seconds", "IO.", []float64{0.001, 0.1, 10}) != h {
		t.Error("same-ladder re-registration returned a different handle")
	}

	// A conflicting explicit ladder is a programming error: panic, don't
	// silently serve two bucket layouts under one family name.
	func() {
		defer func() {
			if recover() == nil {
				t.Error("conflicting bucket ladder did not panic")
			}
		}()
		r.HistogramBuckets("verifai_test_io_seconds", "IO.", []float64{1, 2, 3})
	}()

	// Malformed ladders are rejected at registration.
	for name, bad := range map[string][]float64{
		"descending": {1, 0.5},
		"duplicate":  {1, 1, 2},
		"empty":      {},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s ladder did not panic", name)
				}
			}()
			r.HistogramBuckets("verifai_test_bad_"+name, "x", bad)
		}()
	}

	// The canned ladders must themselves be valid (strictly ascending).
	for name, ladder := range map[string][]float64{
		"IOBuckets": IOBuckets, "StageBuckets": StageBuckets, "CheckpointBuckets": CheckpointBuckets, "DefBuckets": DefBuckets,
	} {
		for i := 1; i < len(ladder); i++ {
			if ladder[i] <= ladder[i-1] {
				t.Errorf("%s not strictly ascending at index %d: %v", name, i, ladder)
			}
		}
	}
}

func TestLintCatchesProblems(t *testing.T) {
	cases := []struct {
		name, doc, wantSub string
	}{
		{"duplicate series", "# TYPE a counter\na 1\na 2\n", "duplicate series"},
		{"no type", "a 1\n", "no preceding # TYPE"},
		{"bad value", "# TYPE a counter\na xyz\n", "malformed sample"},
		{"missing inf", "# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_sum 1\nh_count 1\n", "missing le=\"+Inf\""},
		{"count mismatch", "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 2\nh_sum 1\nh_count 3\n", "!= count"},
		{"decreasing buckets", "# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"2\"} 3\nh_bucket{le=\"+Inf\"} 5\nh_sum 1\nh_count 5\n", "decrease"},
		{"duplicate type", "# TYPE a counter\n# TYPE a counter\na 1\n", "duplicate # TYPE"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			errs := Lint(strings.NewReader(c.doc))
			found := false
			for _, e := range errs {
				if strings.Contains(e.Error(), c.wantSub) {
					found = true
				}
			}
			if !found {
				t.Errorf("Lint(%q) = %v, want an error containing %q", c.doc, errs, c.wantSub)
			}
		})
	}
	if errs := Lint(strings.NewReader("# TYPE a counter\na{l=\"x\"} 1\na{l=\"y\"} 2\n")); len(errs) > 0 {
		t.Errorf("clean doc flagged: %v", errs)
	}
}

func TestSpanAndTraceRing(t *testing.T) {
	r := NewRegistry()
	ctx := r.StartTrace(context.Background(), "req-1")
	if got := TraceID(ctx); got != "req-1" {
		t.Fatalf("TraceID = %q", got)
	}
	done := r.Span(ctx, "retrieve")
	time.Sleep(time.Millisecond)
	done()
	r.Span(ctx, "rerank")()
	r.FinishTrace(ctx, "/v1/verify/claim", 200)

	traces := r.Traces().Snapshot()
	if len(traces) != 1 {
		t.Fatalf("ring has %d traces, want 1", len(traces))
	}
	tr := traces[0]
	if tr.ID != "req-1" || tr.Route != "/v1/verify/claim" || tr.Status != 200 {
		t.Errorf("trace = %+v", tr)
	}
	if len(tr.Spans) != 2 || tr.Spans[0].Name != "retrieve" || tr.Spans[1].Name != "rerank" {
		t.Errorf("spans = %+v", tr.Spans)
	}
	if tr.Spans[0].Duration < time.Millisecond {
		t.Errorf("retrieve span duration %v too short", tr.Spans[0].Duration)
	}
	// The span also landed in the stage histogram.
	h := r.HistogramVec(stageMetric, "", "stage").With("retrieve")
	if h.Count() != 1 {
		t.Errorf("stage histogram count = %d, want 1", h.Count())
	}
}

func TestTraceRingBounded(t *testing.T) {
	tr := newTraceRing(4)
	for i := 0; i < 10; i++ {
		tr.add(Trace{ID: string(rune('a' + i))})
	}
	got := tr.Snapshot()
	if len(got) != 4 {
		t.Fatalf("ring kept %d traces, want 4", len(got))
	}
	// Newest first: j, i, h, g.
	if got[0].ID != "j" || got[3].ID != "g" {
		t.Errorf("snapshot order = %v", got)
	}
}

func TestRegistryIdempotentRegistration(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("same_total", "x")
	b := r.Counter("same_total", "x")
	if a != b {
		t.Error("re-registration returned a different handle")
	}
	defer func() {
		if recover() == nil {
			t.Error("kind mismatch did not panic")
		}
	}()
	r.Gauge("same_total", "x")
}
