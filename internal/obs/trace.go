package obs

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/pprof"
	"sort"
	"sync"
	"time"
)

// Span tracing: a request that passes through StartTrace carries an
// active trace in its context; every Registry.Span along the way both
// records the stage duration into the shared
// verifai_stage_duration_seconds{stage=...} histogram and appends a span
// to the trace. FinishTrace pushes the completed trace into the
// registry's bounded ring, served by GET /debug/traces.

// stageMetric is the histogram family every span records into.
const stageMetric = "verifai_stage_duration_seconds"

// Stages returns the per-stage duration histogram family Span records
// into, registering it if needed. Instrumented components call it once at
// wiring time so the family appears in expositions before the first span
// runs (a freshly booted, idle system still scrapes complete). Nil-safe.
func (r *Registry) Stages() *HistogramVec {
	if r == nil {
		return nil
	}
	return r.HistogramVecBuckets(stageMetric, "Duration of pipeline and storage stages by stage name.", StageBuckets, "stage")
}

// maxSpansPerTrace bounds one trace's span list; overflow is counted,
// not stored.
const maxSpansPerTrace = 128

// SpanRecord is one completed span inside a trace.
type SpanRecord struct {
	Name string `json:"name"`
	// StartOffset is the span's start relative to the trace start.
	StartOffset time.Duration `json:"start_offset_ns"`
	Duration    time.Duration `json:"duration_ns"`
}

// Trace is one finished request trace.
type Trace struct {
	ID       string        `json:"id"`
	Start    time.Time     `json:"start"`
	Duration time.Duration `json:"duration_ns"`
	// Route and Status are filled by the HTTP middleware.
	Route   string       `json:"route,omitempty"`
	Status  int          `json:"status,omitempty"`
	Spans   []SpanRecord `json:"spans"`
	Dropped int          `json:"dropped_spans,omitempty"`
}

// activeTrace is the in-flight mutable form carried in a context.
type activeTrace struct {
	id    string
	start time.Time

	mu      sync.Mutex
	spans   []SpanRecord
	dropped int
}

type traceCtxKey struct{}

// StartTrace attaches a new active trace with the given ID to ctx.
// Subsequent Registry.Span calls on the derived context record spans into
// it; FinishTrace completes it into the ring. A nil registry returns ctx
// unchanged.
func (r *Registry) StartTrace(ctx context.Context, id string) context.Context {
	if r == nil {
		return ctx
	}
	return context.WithValue(ctx, traceCtxKey{}, &activeTrace{id: id, start: time.Now()})
}

// TraceID returns the trace ID carried by ctx, or "".
func TraceID(ctx context.Context) string {
	if at, ok := ctx.Value(traceCtxKey{}).(*activeTrace); ok {
		return at.id
	}
	return ""
}

// FinishTrace completes the trace attached to ctx (if any) and pushes it
// into the registry's ring, annotated with the HTTP route and status.
func (r *Registry) FinishTrace(ctx context.Context, route string, status int) {
	if r == nil {
		return
	}
	at, ok := ctx.Value(traceCtxKey{}).(*activeTrace)
	if !ok {
		return
	}
	at.mu.Lock()
	spans := make([]SpanRecord, len(at.spans))
	copy(spans, at.spans)
	dropped := at.dropped
	at.mu.Unlock()
	r.traces.add(Trace{
		ID: at.id, Start: at.start, Duration: time.Since(at.start),
		Route: route, Status: status, Spans: spans, Dropped: dropped,
	})
}

// Span starts a named span: the returned func records the elapsed time
// into the registry's per-stage histogram
// (verifai_stage_duration_seconds{stage=name}) and, when ctx carries a
// trace, appends the span to it. Usage:
//
//	defer reg.Span(ctx, "rerank")()
//
// Safe on a nil registry (histogram write is dropped; the ctx trace, if
// any, still collects the span).
func (r *Registry) Span(ctx context.Context, name string) func() {
	start := time.Now()
	h := r.Stages().With(name)
	at, _ := ctx.Value(traceCtxKey{}).(*activeTrace)
	return func() {
		d := time.Since(start)
		h.Observe(d.Seconds())
		if at == nil {
			return
		}
		at.mu.Lock()
		if len(at.spans) < maxSpansPerTrace {
			at.spans = append(at.spans, SpanRecord{
				Name: name, StartOffset: start.Sub(at.start), Duration: d,
			})
		} else {
			at.dropped++
		}
		at.mu.Unlock()
	}
}

// TraceRing is a bounded ring of recently finished traces.
type TraceRing struct {
	mu   sync.Mutex
	buf  []Trace
	next int
	full bool
}

func newTraceRing(capacity int) *TraceRing {
	return &TraceRing{buf: make([]Trace, capacity)}
}

func (tr *TraceRing) add(t Trace) {
	if tr == nil {
		return
	}
	tr.mu.Lock()
	tr.buf[tr.next] = t
	tr.next++
	if tr.next == len(tr.buf) {
		tr.next, tr.full = 0, true
	}
	tr.mu.Unlock()
}

// Snapshot returns the retained traces, newest first.
func (tr *TraceRing) Snapshot() []Trace {
	if tr == nil {
		return nil
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	n := tr.next
	if tr.full {
		n = len(tr.buf)
	}
	out := make([]Trace, 0, n)
	for i := 1; i <= n; i++ {
		out = append(out, tr.buf[(tr.next-i+len(tr.buf))%len(tr.buf)])
	}
	return out
}

// DebugHandler serves the debug surface for a registry:
//
//	/debug/pprof/*   the stdlib profiler endpoints
//	/debug/traces    the recent-trace ring as JSON, newest first
//	/metrics         Prometheus text exposition (handy on a side listener)
//
// It is deliberately not wired into the main API mux by default — the
// server's WithDebug option (or the CLI's -debug-addr) opts in.
func DebugHandler(r *Registry) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/debug/traces", func(w http.ResponseWriter, req *http.Request) {
		traces := r.Traces().Snapshot()
		// Bound the response: newest 100 traces.
		if len(traces) > 100 {
			traces = traces[:100]
		}
		sort.SliceStable(traces, func(i, j int) bool { return traces[i].Start.After(traces[j].Start) })
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(traces)
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", ContentTypeExposition)
		_ = r.WritePrometheus(w)
	})
	return mux
}

// ContentTypeExposition is the Prometheus text exposition content type.
const ContentTypeExposition = "text/plain; version=0.0.4; charset=utf-8"
