// Package obs is the dependency-free observability core: atomic
// counters and gauges, fixed-bucket latency histograms with a lock-free
// hot path, and lightweight span tracing, all collected in a named
// Registry that renders itself as Prometheus text exposition
// (WritePrometheus) and feeds the JSON stats endpoints.
//
// Every metric handle is nil-receiver-safe: observing on a nil *Counter,
// *Gauge, or *Histogram is a no-op, and Vec lookups on a nil vec return
// nil children. Instrumented hot paths therefore carry no "is
// observability on" branching — they hold handles that may be nil and
// record unconditionally.
//
// Metric names follow Prometheus conventions (snake_case, unit-suffixed,
// *_total for counters); the full catalog this repo registers is
// documented in README.md's Observability section.
package obs

import (
	"fmt"
	"io"
	"math"
	"regexp"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// DefBuckets are the default histogram bucket upper bounds in seconds:
// 1µs to 10s in a 1-2.5-5 ladder, wide enough for both the sub-millisecond
// ingest stages and multi-second checkpoint writes. The final implicit
// bucket is +Inf.
var DefBuckets = []float64{
	1e-6, 2.5e-6, 5e-6,
	1e-5, 2.5e-5, 5e-5,
	1e-4, 2.5e-4, 5e-4,
	1e-3, 2.5e-3, 5e-3,
	1e-2, 2.5e-2, 5e-2,
	1e-1, 2.5e-1, 5e-1,
	1, 2.5, 5, 10,
}

// Per-family bucket ladders. The default ladder spans six decades so it
// fits anything, at the cost of resolution where a family actually lives:
// WAL fsyncs and pipeline stages bunch into a handful of buckets while the
// rest sit empty. Families with a known operating range register one of
// these instead (HistogramBuckets / HistogramVecBuckets).
var (
	// IOBuckets covers storage I/O — WAL appends and fsyncs: 10µs to
	// 2.5s. Anything past 2.5s is a stalled disk; the +Inf bucket is
	// signal enough there.
	IOBuckets = []float64{
		1e-5, 2.5e-5, 5e-5,
		1e-4, 2.5e-4, 5e-4,
		1e-3, 2.5e-3, 5e-3,
		1e-2, 2.5e-2, 5e-2,
		1e-1, 2.5e-1, 5e-1,
		1, 2.5,
	}
	// StageBuckets covers pipeline and storage stages (retrieve, rerank,
	// verify spans): 50µs to 30s, with room for verifier calls that run
	// seconds.
	StageBuckets = []float64{
		5e-5, 1e-4, 2.5e-4, 5e-4,
		1e-3, 2.5e-3, 5e-3,
		1e-2, 2.5e-2, 5e-2,
		1e-1, 2.5e-1, 5e-1,
		1, 2.5, 5, 10, 30,
	}
	// CheckpointBuckets covers checkpoint fork and write phases: 1ms to
	// 10min — the write phase scales with lake size and legitimately runs
	// far past the default ladder's 10s ceiling.
	CheckpointBuckets = []float64{
		1e-3, 2.5e-3, 5e-3,
		1e-2, 2.5e-2, 5e-2,
		1e-1, 2.5e-1, 5e-1,
		1, 2.5, 5, 10, 30, 60, 120, 300, 600,
	}
)

// validateBuckets panics on a malformed ladder (registration-time
// programming error, like an invalid metric name).
func validateBuckets(name string, bounds []float64) {
	if len(bounds) == 0 {
		panic(fmt.Sprintf("obs: metric %q registered with empty bucket ladder", name))
	}
	for i, b := range bounds {
		if math.IsNaN(b) || math.IsInf(b, 0) {
			panic(fmt.Sprintf("obs: metric %q bucket %d is not finite (+Inf is implicit)", name, i))
		}
		if i > 0 && b <= bounds[i-1] {
			panic(fmt.Sprintf("obs: metric %q buckets not strictly ascending at index %d", name, i))
		}
	}
}

// Counter is a monotonically increasing counter. The zero value is ready
// to use; a nil *Counter ignores all writes.
type Counter struct {
	v  atomic.Uint64
	fn func() uint64 // set for CounterFunc registrations
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	if c.fn != nil {
		return c.fn()
	}
	return c.v.Load()
}

// Gauge is a float64 value that can go up and down. The zero value is
// ready to use; a nil *Gauge ignores all writes.
type Gauge struct {
	bits atomic.Uint64
	fn   func() float64 // set for GaugeFunc registrations
}

// Set replaces the value.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add adds delta (negative to subtract).
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		nv := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, nv) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	if g.fn != nil {
		return g.fn()
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram is a fixed-bucket latency histogram. Observations are two
// atomic adds and a CAS-loop float accumulation — no locks on the hot
// path. Quantiles are exact bucket upper bounds, which is what the
// Prometheus histogram_quantile estimator converges to as well. A nil
// *Histogram ignores all observations.
type Histogram struct {
	bounds []float64       // ascending upper bounds; +Inf implicit
	counts []atomic.Uint64 // len(bounds)+1, last is the +Inf bucket
	count  atomic.Uint64
	sum    atomic.Uint64 // float64 bits, CAS-accumulated
}

func newHistogram(bounds []float64) *Histogram {
	return &Histogram{bounds: bounds, counts: make([]atomic.Uint64, len(bounds)+1)}
}

// Observe records one value (in the histogram's unit, seconds for all
// latency histograms in this repo).
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	// Binary search for the first bound >= v.
	lo, hi := 0, len(h.bounds)
	for lo < hi {
		mid := (lo + hi) / 2
		if v <= h.bounds[mid] {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	h.counts[lo].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		nv := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, nv) {
			break
		}
	}
}

// Since observes the seconds elapsed from start — the common call shape
// for stage timing (`defer h.Since(time.Now())` or explicit ends).
func (h *Histogram) Since(start time.Time) {
	if h == nil {
		return
	}
	h.Observe(time.Since(start).Seconds())
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// Quantile returns the upper bound of the bucket containing the q-th
// quantile (0 < q <= 1) of the observations so far: the exact statement
// "q of observations were <= this value". Returns +Inf when the quantile
// lands in the overflow bucket and 0 when the histogram is empty.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := uint64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	var cum uint64
	for i := range h.counts {
		cum += h.counts[i].Load()
		if cum >= rank {
			if i < len(h.bounds) {
				return h.bounds[i]
			}
			return math.Inf(1)
		}
	}
	return math.Inf(1)
}

// snapshot returns cumulative bucket counts aligned with bounds plus the
// +Inf bucket, for exposition.
func (h *Histogram) snapshot() (cum []uint64, count uint64, sum float64) {
	cum = make([]uint64, len(h.counts))
	var running uint64
	for i := range h.counts {
		running += h.counts[i].Load()
		cum[i] = running
	}
	return cum, h.count.Load(), h.Sum()
}

// metricKind discriminates family types for exposition.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// child is one labeled series inside a family.
type child struct {
	labels string // rendered {k="v",...} or "" for unlabeled
	ctr    *Counter
	gauge  *Gauge
	hist   *Histogram
}

// family is one named metric with its children (one for unlabeled
// metrics, one per label combination for vecs).
type family struct {
	name, help string
	kind       metricKind
	labelKeys  []string
	// buckets is the histogram ladder every child of this family uses
	// (nil = DefBuckets). Fixed at registration so all series of one
	// family expose identical le bounds.
	buckets []float64

	mu       sync.Mutex
	children []*child          // registration order; sorted at exposition
	byLabel  map[string]*child // rendered label string -> child

	// fast is the lock-free read path for vec lookups: rendered label
	// string -> *child.
	fast sync.Map
}

var nameRE = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)

func (f *family) getOrCreate(labels string) *child {
	if c, ok := f.fast.Load(labels); ok {
		return c.(*child)
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if c, ok := f.byLabel[labels]; ok {
		return c
	}
	c := &child{labels: labels}
	switch f.kind {
	case kindCounter:
		c.ctr = &Counter{}
	case kindGauge:
		c.gauge = &Gauge{}
	case kindHistogram:
		bounds := f.buckets
		if bounds == nil {
			bounds = DefBuckets
		}
		c.hist = newHistogram(bounds)
	}
	f.byLabel[labels] = c
	f.children = append(f.children, c)
	f.fast.Store(labels, c)
	return c
}

// CounterVec is a counter family partitioned by labels. A nil vec
// returns nil children.
type CounterVec struct{ f *family }

// With returns the counter for the given label values (in the order the
// label keys were registered).
func (v *CounterVec) With(values ...string) *Counter {
	if v == nil {
		return nil
	}
	return v.f.getOrCreate(renderLabels(v.f.labelKeys, values)).ctr
}

// HistogramVec is a histogram family partitioned by labels. A nil vec
// returns nil children.
type HistogramVec struct{ f *family }

// With returns the histogram for the given label values.
func (v *HistogramVec) With(values ...string) *Histogram {
	if v == nil {
		return nil
	}
	return v.f.getOrCreate(renderLabels(v.f.labelKeys, values)).hist
}

// renderLabels renders {k="v",...} with values escaped per the text
// exposition format.
func renderLabels(keys, values []string) string {
	if len(keys) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		v := ""
		if i < len(values) {
			v = values[i]
		}
		b.WriteString(k)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(v))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// Registry is a named collection of metric families plus the recent-trace
// ring. All registration methods are idempotent — registering an existing
// name returns the existing handle (and panic on a kind mismatch, which is
// a programming error). A nil *Registry returns nil (no-op) handles from
// every method, so optional instrumentation needs no branching.
type Registry struct {
	mu       sync.Mutex
	families []*family
	byName   map[string]*family

	traces *TraceRing
}

// NewRegistry returns an empty registry with a 256-entry trace ring.
func NewRegistry() *Registry {
	return &Registry{
		byName: make(map[string]*family),
		traces: newTraceRing(256),
	}
}

// Traces returns the registry's recent-trace ring (nil for a nil registry).
func (r *Registry) Traces() *TraceRing {
	if r == nil {
		return nil
	}
	return r.traces
}

func (r *Registry) register(name, help string, kind metricKind, labelKeys []string, buckets []float64) *family {
	if !nameRE.MatchString(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	if buckets != nil {
		validateBuckets(name, buckets)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.byName[name]; ok {
		if f.kind != kind {
			panic(fmt.Sprintf("obs: metric %q re-registered as %v (was %v)", name, kind, f.kind))
		}
		// A plain Histogram()/HistogramVec() call (nil buckets) accepts
		// whatever ladder the family registered with; naming a different
		// explicit ladder is a programming error — existing children
		// already carry the old bounds.
		if buckets != nil && !equalBuckets(f.buckets, buckets) {
			panic(fmt.Sprintf("obs: metric %q re-registered with a different bucket ladder", name))
		}
		return f
	}
	f := &family{
		name: name, help: help, kind: kind, labelKeys: labelKeys, buckets: buckets,
		byLabel: make(map[string]*child),
	}
	r.byName[name] = f
	r.families = append(r.families, f)
	return f
}

// equalBuckets compares ladders, treating nil as DefBuckets.
func equalBuckets(a, b []float64) bool {
	if a == nil {
		a = DefBuckets
	}
	if b == nil {
		b = DefBuckets
	}
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Counter registers (or returns) the named counter.
func (r *Registry) Counter(name, help string) *Counter {
	if r == nil {
		return nil
	}
	return r.register(name, help, kindCounter, nil, nil).getOrCreate("").ctr
}

// CounterFunc registers a counter whose value is read from fn at
// exposition time — for mirroring counters that already live elsewhere
// (existing atomics, struct stats) without double bookkeeping.
func (r *Registry) CounterFunc(name, help string, fn func() uint64) {
	if r == nil {
		return
	}
	r.register(name, help, kindCounter, nil, nil).getOrCreate("").ctr.fn = fn
}

// Gauge registers (or returns) the named gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	if r == nil {
		return nil
	}
	return r.register(name, help, kindGauge, nil, nil).getOrCreate("").gauge
}

// GaugeFunc registers a gauge read from fn at exposition time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	if r == nil {
		return
	}
	r.register(name, help, kindGauge, nil, nil).getOrCreate("").gauge.fn = fn
}

// Histogram registers (or returns) the named histogram with the default
// bucket ladder.
func (r *Registry) Histogram(name, help string) *Histogram {
	if r == nil {
		return nil
	}
	return r.register(name, help, kindHistogram, nil, nil).getOrCreate("").hist
}

// HistogramBuckets registers (or returns) the named histogram with an
// explicit bucket ladder (ascending finite upper bounds in the metric's
// unit; +Inf is implicit). The ladder is fixed at first registration:
// later Histogram() calls return the same handle, and later
// HistogramBuckets() calls must name the same ladder or panic.
func (r *Registry) HistogramBuckets(name, help string, buckets []float64) *Histogram {
	if r == nil {
		return nil
	}
	return r.register(name, help, kindHistogram, nil, buckets).getOrCreate("").hist
}

// CounterVec registers (or returns) a labeled counter family.
func (r *Registry) CounterVec(name, help string, labelKeys ...string) *CounterVec {
	if r == nil {
		return nil
	}
	return &CounterVec{f: r.register(name, help, kindCounter, labelKeys, nil)}
}

// HistogramVec registers (or returns) a labeled histogram family.
func (r *Registry) HistogramVec(name, help string, labelKeys ...string) *HistogramVec {
	if r == nil {
		return nil
	}
	return &HistogramVec{f: r.register(name, help, kindHistogram, labelKeys, nil)}
}

// HistogramVecBuckets registers (or returns) a labeled histogram family
// with an explicit bucket ladder shared by every labeled series.
func (r *Registry) HistogramVecBuckets(name, help string, buckets []float64, labelKeys ...string) *HistogramVec {
	if r == nil {
		return nil
	}
	return &HistogramVec{f: r.register(name, help, kindHistogram, labelKeys, buckets)}
}

// WritePrometheus renders every family in registration order as
// Prometheus text exposition format 0.0.4.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	fams := make([]*family, len(r.families))
	copy(fams, r.families)
	r.mu.Unlock()
	for _, f := range fams {
		f.mu.Lock()
		children := make([]*child, len(f.children))
		copy(children, f.children)
		f.mu.Unlock()
		sort.Slice(children, func(i, j int) bool { return children[i].labels < children[j].labels })
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", f.name, f.help, f.name, f.kind); err != nil {
			return err
		}
		for _, c := range children {
			if err := writeChild(w, f, c); err != nil {
				return err
			}
		}
	}
	return nil
}

func writeChild(w io.Writer, f *family, c *child) error {
	switch f.kind {
	case kindCounter:
		_, err := fmt.Fprintf(w, "%s%s %d\n", f.name, c.labels, c.ctr.Value())
		return err
	case kindGauge:
		_, err := fmt.Fprintf(w, "%s%s %s\n", f.name, c.labels, formatFloat(c.gauge.Value()))
		return err
	default:
		cum, count, sum := c.hist.snapshot()
		for i, bound := range c.hist.bounds {
			if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", f.name,
				mergeLabels(c.labels, fmt.Sprintf(`le="%s"`, formatFloat(bound))), cum[i]); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", f.name,
			mergeLabels(c.labels, `le="+Inf"`), cum[len(cum)-1]); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", f.name, c.labels, formatFloat(sum)); err != nil {
			return err
		}
		_, err := fmt.Fprintf(w, "%s_count%s %d\n", f.name, c.labels, count)
		return err
	}
}

// mergeLabels appends extra (already-rendered `k="v"`) into an existing
// rendered label set.
func mergeLabels(labels, extra string) string {
	if labels == "" {
		return "{" + extra + "}"
	}
	return labels[:len(labels)-1] + "," + extra + "}"
}

func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	s := fmt.Sprintf("%g", v)
	return s
}
