package server

import (
	"archive/tar"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"testing"
	"time"

	verifai "repro"
	"repro/internal/cdc"
	"repro/internal/wal"
)

// newLeaderServer opens a durable system and serves it with the change
// feed wired — the exact wiring cmd/verifai serve uses on a leader.
func newLeaderServer(t *testing.T) (*verifai.System, *httptest.Server) {
	t.Helper()
	sys, err := verifai.Open(filepath.Join(t.TempDir(), "data"), verifai.OpenOptions{
		Options: verifai.ExactOptions(1), Sync: "none",
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sys.Close() })
	log, floor, ckpt, format, ok := sys.ChangeFeed()
	if !ok {
		t.Fatal("durable system reports no change feed")
	}
	ts := httptest.NewServer(New(sys.Pipeline(), WithChangeFeed(ChangeFeedConfig{
		Log: log, Floor: floor, CheckpointTar: ckpt, Format: format,
	})))
	t.Cleanup(ts.Close)
	return sys, ts
}

// drainChanges reads one change-feed response to EOF, returning the
// non-heartbeat records.
func drainChanges(t *testing.T, resp *http.Response) []wal.Record {
	t.Helper()
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("changes status = %d body = %s", resp.StatusCode, body)
	}
	dec := cdc.NewDecoder(resp.Body)
	var recs []wal.Record
	for {
		rec, err := dec.Next()
		if err == io.EOF {
			return recs
		}
		if err != nil {
			t.Fatalf("decode change stream: %v", err)
		}
		if rec.Kind == cdc.KindHeartbeat {
			continue
		}
		recs = append(recs, rec)
	}
}

func TestChangesStreamAndCursorResume(t *testing.T) {
	sys, ts := newLeaderServer(t)
	for i := 0; i < 5; i++ {
		if err := sys.AddDocument(&verifai.Document{ID: fmt.Sprintf("d%d", i), Text: "body"}); err != nil {
			t.Fatal(err)
		}
	}

	resp, err := http.Get(ts.URL + cdc.ChangesPath + "?from=0&wait=200ms")
	if err != nil {
		t.Fatal(err)
	}
	recs := drainChanges(t, resp)
	if len(recs) != 5 {
		t.Fatalf("streamed %d records, want 5", len(recs))
	}
	for i, rec := range recs {
		if rec.Version != uint64(i+1) {
			t.Fatalf("record %d has version %d, want %d", i, rec.Version, i+1)
		}
	}

	// Resuming from a cursor re-serves only the tail past it.
	resp, err = http.Get(ts.URL + cdc.ChangesPath + "?from=3&wait=200ms")
	if err != nil {
		t.Fatal(err)
	}
	recs = drainChanges(t, resp)
	if len(recs) != 2 || recs[0].Version != 4 || recs[1].Version != 5 {
		t.Fatalf("resume from 3 streamed %+v, want versions [4 5]", recs)
	}
}

func TestChangesBelowFloorIs410(t *testing.T) {
	sys, ts := newLeaderServer(t)
	if err := sys.AddDocument(&verifai.Document{ID: "d1", Text: "body"}); err != nil {
		t.Fatal(err)
	}
	ckptVersion, err := sys.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get(ts.URL + cdc.ChangesPath + "?from=0")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusGone {
		t.Fatalf("from=0 below floor: status = %d, want 410", resp.StatusCode)
	}
	var gone struct {
		Floor uint64 `json:"floor"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&gone); err != nil {
		t.Fatal(err)
	}
	if gone.Floor != ckptVersion {
		t.Errorf("410 body floor = %d, want %d", gone.Floor, ckptVersion)
	}

	// From the floor itself the stream serves (nothing yet past it).
	resp2, err := http.Get(fmt.Sprintf("%s%s?from=%d&wait=100ms", ts.URL, cdc.ChangesPath, ckptVersion))
	if err != nil {
		t.Fatal(err)
	}
	if recs := drainChanges(t, resp2); len(recs) != 0 {
		t.Errorf("stream from floor yielded %+v, want none", recs)
	}
}

func TestChangesSSE(t *testing.T) {
	sys, ts := newLeaderServer(t)
	if err := sys.AddDocument(&verifai.Document{ID: "d1", Text: "body"}); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(ts.URL + cdc.ChangesPath + "?from=0&format=sse&wait=200ms")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != cdc.ContentTypeSSE {
		t.Fatalf("SSE content type = %q", ct)
	}
	dec := cdc.NewSSEDecoder(resp.Body)
	rec, err := dec.Next()
	if err != nil {
		t.Fatal(err)
	}
	if rec.Version != 1 || rec.Kind != wal.KindDocument || rec.Doc == nil || rec.Doc.ID != "d1" {
		t.Fatalf("SSE record = %+v", rec)
	}
}

func TestChangesHeartbeats(t *testing.T) {
	_, ts := newLeaderServer(t)
	// Idle feed: only heartbeats arrive, then the wait budget ends cleanly.
	resp, err := http.Get(ts.URL + cdc.ChangesPath + "?from=0&heartbeat=100ms&wait=350ms")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	dec := cdc.NewDecoder(resp.Body)
	beats := 0
	for {
		rec, err := dec.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if rec.Kind != cdc.KindHeartbeat {
			t.Fatalf("idle feed produced %+v", rec)
		}
		beats++
	}
	if beats < 2 {
		t.Errorf("got %d heartbeats over 350ms at 100ms pace, want >= 2", beats)
	}
}

func TestReplicaCheckpointEndpoint(t *testing.T) {
	sys, ts := newLeaderServer(t)
	resp, err := http.Get(ts.URL + cdc.CheckpointPath)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("checkpoint tar before any checkpoint: status = %d, want 404", resp.StatusCode)
	}

	if err := sys.AddDocument(&verifai.Document{ID: "d1", Text: "body"}); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	resp, err = http.Get(ts.URL + cdc.CheckpointPath)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("checkpoint tar: status = %d", resp.StatusCode)
	}
	tr := tar.NewReader(resp.Body)
	sawMeta := false
	for {
		hdr, err := tr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if hdr.Name == "META.json" {
			sawMeta = true
		}
	}
	if !sawMeta {
		t.Error("checkpoint tar carries no META.json")
	}
}

func TestFollowerRejectsIngest(t *testing.T) {
	sys, err := verifai.Open(filepath.Join(t.TempDir(), "data"), verifai.OpenOptions{
		Options: verifai.ExactOptions(1), Sync: "none",
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sys.Close() })
	fts := httptest.NewServer(New(sys.Pipeline(), WithFollower("http://leader.example")))
	t.Cleanup(fts.Close)

	for _, path := range []string{"/v1/ingest/table", "/v1/ingest/document", "/v1/ingest/triple", "/v1/ingest/batch"} {
		resp, body := postJSON(t, fts.URL+path, map[string]any{})
		if resp.StatusCode != http.StatusMisdirectedRequest {
			t.Errorf("POST %s on follower: status = %d body = %s, want 421", path, resp.StatusCode, body)
		}
		if loc := resp.Header.Get("Location"); loc != "http://leader.example" {
			t.Errorf("POST %s Location = %q", path, loc)
		}
	}
	// Reads still serve.
	var stats map[string]any
	if resp := getJSON(t, fts.URL+"/v1/stats", &stats); resp.StatusCode != http.StatusOK {
		t.Errorf("GET /v1/stats on follower: status = %d", resp.StatusCode)
	}
}

func TestMinVersionFreshness(t *testing.T) {
	sys, ts := newLeaderServer(t)
	if err := sys.Pipeline().Lake().AddSource(verifai.Source{ID: "s", Name: "s", TrustPrior: 0.9}); err != nil {
		t.Fatal(err)
	}
	if err := sys.AddDocument(&verifai.Document{ID: "d1", Text: "claim body", SourceID: "s"}); err != nil {
		t.Fatal(err)
	}
	v := sys.LakeVersion()

	// Satisfied freshness: the verify proceeds (and answers 200).
	resp, body := postJSON(t, fmt.Sprintf("%s/v1/verify/claim?min_version=%d", ts.URL, v), ClaimRequest{
		Text:  "In 1954 u.s. open (golf), the cash prize for x was 1 in total.",
		Kinds: []string{"text"},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("verify with satisfied min_version: status = %d body = %s", resp.StatusCode, body)
	}

	// Unreachable freshness: 504 once the bounded wait expires.
	fast := httptest.NewServer(New(sys.Pipeline(), WithVerifyTimeout(50*time.Millisecond)))
	t.Cleanup(fast.Close)
	resp, body = postJSON(t, fmt.Sprintf("%s/v1/verify/claim?min_version=%d", fast.URL, v+1000), ClaimRequest{
		Text:  "In 1954 u.s. open (golf), the cash prize for x was 1 in total.",
		Kinds: []string{"text"},
	})
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("verify with unreachable min_version: status = %d body = %s, want 504", resp.StatusCode, body)
	}

	// Malformed token: 400.
	resp, _ = postJSON(t, ts.URL+"/v1/verify/claim?min_version=abc", ClaimRequest{
		Text: "In 1954 u.s. open (golf), the cash prize for x was 1 in total.",
	})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed min_version: status = %d, want 400", resp.StatusCode)
	}
}

// TestChangesLiveTail checks a consumer connected before the write sees it
// arrive over the live tail (no reconnect).
func TestChangesLiveTail(t *testing.T) {
	sys, ts := newLeaderServer(t)
	resp, err := http.Get(ts.URL + cdc.ChangesPath + "?from=0&wait=5s&heartbeat=100ms")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()

	if err := sys.AddDocument(&verifai.Document{ID: "live", Text: "body"}); err != nil {
		t.Fatal(err)
	}
	dec := cdc.NewDecoder(resp.Body)
	for {
		rec, err := dec.Next()
		if err != nil {
			t.Fatalf("decode live tail: %v", err)
		}
		if rec.Kind == cdc.KindHeartbeat {
			continue
		}
		if rec.Version != 1 || rec.Doc == nil || rec.Doc.ID != "live" {
			t.Fatalf("live record = %+v", rec)
		}
		return
	}
}
