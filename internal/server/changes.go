package server

import (
	"context"
	"errors"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/internal/cdc"
	"repro/internal/durable"
	"repro/internal/wal"
)

// This file is the HTTP face of replication and CDC: the leader's
// cursor-resumable change feed (GET /v1/changes) and checkpoint shipping
// (GET /v1/replica/checkpoint), plus follower-role serving (writes answer
// 421 pointing at the leader; ?min_version= gives read-your-writes).

// ChangeFeedConfig wires a durable store's replication surfaces into the
// server. Zero-value fields disable their endpoint.
type ChangeFeedConfig struct {
	// Log is the leader's write-ahead log, tail-read to serve the feed.
	Log *wal.Log
	// Floor returns the lowest servable cursor — the store's checkpoint
	// version, below which WAL segments may already be truncated. Cursors
	// below the floor answer 410 Gone (re-bootstrap from the checkpoint).
	Floor func() uint64
	// CheckpointTar streams the latest checkpoint as a tar archive for
	// follower bootstrap; durable.ErrNoCheckpoint answers 404.
	CheckpointTar func(io.Writer) error
	// Format is the payload encoding for binary-framed feed responses
	// (zero value wal.FormatBinary). Wired from the store's -wal-format so
	// the wire matches the log; decoding is self-describing either way.
	Format wal.Format
}

// WithChangeFeed enables GET /v1/changes (and /v1/replica/checkpoint when
// cfg.CheckpointTar is set) over the given feed. Followers may re-serve
// their own feed, chaining replication.
func WithChangeFeed(cfg ChangeFeedConfig) Option {
	return func(s *Server) { s.changeFeed = &cfg }
}

// WithFollower marks this server a read-only replica of the leader at the
// given URL: ingest endpoints answer 421 Misdirected Request naming the
// leader. 421 (not 403 or 405) because the endpoint exists and the method
// is right — this node is just not the one that can take the write.
func WithFollower(leader string) Option {
	return func(s *Server) { s.leaderURL = leader }
}

// WithReplication feeds the "replication" section of GET /v1/stats
// (follower lag/cursor posture).
func WithReplication(stats func() any) Option {
	return func(s *Server) { s.replStats = stats }
}

// Change-feed serving parameters.
const (
	// defaultHeartbeat paces liveness frames on an idle stream; clients use
	// them for lag measurement and dead-connection detection.
	defaultHeartbeat = 10 * time.Second
	// minHeartbeat stops a client from turning the feed into a busy loop.
	minHeartbeat = 100 * time.Millisecond
	// maxFreshnessWait bounds a ?min_version= wait when no verify timeout
	// is configured: an unreachable version must answer 504, not hang.
	maxFreshnessWait = 10 * time.Second
)

// rejectFollowerWrite answers 421 on a follower; reports whether handled.
// The body carries the same {"error", "request_id"} shape as writeError,
// plus the leader URL clients should redirect writes to.
func (s *Server) rejectFollowerWrite(w http.ResponseWriter) bool {
	if s.leaderURL == "" {
		return false
	}
	w.Header().Set("Location", s.leaderURL)
	body := map[string]string{
		"error":  "this node is a read-only follower; send writes to the leader",
		"leader": s.leaderURL,
	}
	if id := w.Header().Get("X-Request-Id"); id != "" {
		body["request_id"] = id
	}
	writeJSON(w, http.StatusMisdirectedRequest, body)
	return true
}

// waitMinVersion implements read-your-writes freshness: a verify request
// carrying ?min_version=N (the version an earlier ingest acknowledged)
// waits until this node has applied N — on a follower, until replication
// catches up — before the verification runs. Reports false with the
// response written (504 when the node cannot catch up in time) when the
// request must not proceed.
func (s *Server) waitMinVersion(w http.ResponseWriter, r *http.Request) bool {
	raw := r.URL.Query().Get("min_version")
	if raw == "" {
		return true
	}
	v, err := strconv.ParseUint(raw, 10, 64)
	if err != nil {
		writeError(w, http.StatusBadRequest, "min_version must be an unsigned integer, got %q", raw)
		return false
	}
	wait := s.verifyTimeout
	if wait <= 0 || wait > maxFreshnessWait {
		wait = maxFreshnessWait
	}
	ctx, cancel := context.WithTimeout(r.Context(), wait)
	defer cancel()
	if err := s.pipeline.WaitFresh(ctx, v); err != nil {
		if r.Context().Err() != nil {
			writeError(w, statusClientClosedRequest, "freshness wait: client closed request")
		} else {
			writeError(w, http.StatusGatewayTimeout,
				"not caught up: need version %d, applied through %d", v, s.pipeline.Lake().Version())
		}
		return false
	}
	return true
}

// handleChanges serves the change feed: every WAL record past the cursor,
// in version order, then live records as they commit, with heartbeats
// pacing idle periods. The stream ends when the client disconnects, the
// optional ?wait= session budget elapses, or the reader is overtaken by a
// segment truncation — in every case the client just reconnects from its
// cursor. Binary frames by default; ?format=sse (or Accept:
// text/event-stream) selects Server-Sent Events.
func (s *Server) handleChanges(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	cf := s.changeFeed
	if cf == nil {
		writeError(w, http.StatusNotFound, "this deployment serves no change feed (run serve with -data-dir)")
		return
	}
	q := r.URL.Query()
	var from uint64
	if raw := q.Get("from"); raw != "" {
		v, err := strconv.ParseUint(raw, 10, 64)
		if err != nil {
			writeError(w, http.StatusBadRequest, "from must be an unsigned integer, got %q", raw)
			return
		}
		from = v
	}
	if cf.Floor != nil {
		if floor := cf.Floor(); from < floor {
			// The WAL below the floor is truncated; the JSON carries the
			// floor so generic CDC clients can decide between restarting
			// from the floor (tolerating the gap) and re-bootstrapping.
			writeJSON(w, http.StatusGone, map[string]any{
				"error": "cursor below the leader's floor; bootstrap from /v1/replica/checkpoint",
				"floor": floor,
			})
			return
		}
	}
	heartbeat := defaultHeartbeat
	if raw := q.Get("heartbeat"); raw != "" {
		d, err := time.ParseDuration(raw)
		if err != nil || d <= 0 {
			writeError(w, http.StatusBadRequest, "heartbeat must be a positive duration, got %q", raw)
			return
		}
		if d < minHeartbeat {
			d = minHeartbeat
		}
		heartbeat = d
	}
	ctx := r.Context()
	if raw := q.Get("wait"); raw != "" {
		d, err := time.ParseDuration(raw)
		if err != nil || d <= 0 {
			writeError(w, http.StatusBadRequest, "wait must be a positive duration, got %q", raw)
			return
		}
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, d)
		defer cancel()
	}

	sse := q.Get("format") == "sse" || strings.Contains(r.Header.Get("Accept"), cdc.ContentTypeSSE)
	var writeRec func(wal.Record) error
	if sse {
		w.Header().Set("Content-Type", cdc.ContentTypeSSE)
		w.Header().Set("Cache-Control", "no-store")
		writeRec = func(rec wal.Record) error { return cdc.EncodeSSE(w, rec) }
	} else {
		w.Header().Set("Content-Type", cdc.ContentTypeFrames)
		writeRec = cdc.NewEncoderFormat(w, cf.Format).Encode
	}
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	flush := func() {
		if flusher != nil {
			flusher.Flush()
		}
	}
	s.cdcActive.Add(1)
	defer s.cdcActive.Add(-1)

	lake := s.pipeline.Lake()
	reader := cf.Log.Tail(from)
	cursor := from
	for {
		rec, ok, err := reader.Next()
		if err != nil {
			// Overtaken by truncation (or the segment vanished): end the
			// stream; the client reconnects from its cursor, which is at or
			// above the checkpoint version that justified the truncation.
			flush()
			return
		}
		if ok {
			if rec.Kind != wal.KindSource {
				// Gate on the leader's own application: a WAL record whose
				// apply hasn't completed here is not yet readable here, and
				// shipping it early would let a follower answer fresher than
				// its leader.
				if lake.WaitApplied(ctx, rec.Version) != nil {
					flush()
					return
				}
			}
			if writeRec(rec) != nil {
				return
			}
			s.cdcRecords.Inc()
			if rec.Version > cursor {
				cursor = rec.Version
			}
			if !reader.Buffered() {
				flush()
			}
			continue
		}
		// Caught up: wait for the next version, a heartbeat tick, or the
		// session ending. (A source record arriving without a version bump
		// is picked up at the next tick — heartbeat-bounded latency.)
		flush()
		tick, cancel := context.WithTimeout(ctx, heartbeat)
		err = lake.WaitApplied(tick, cursor+1)
		cancel()
		switch {
		case err == nil:
		case ctx.Err() != nil:
			return // client gone or ?wait= budget spent
		case errors.Is(err, context.DeadlineExceeded):
			if writeRec(wal.Record{Version: lake.Version(), Kind: cdc.KindHeartbeat}) != nil {
				return
			}
			flush()
		default:
			return // lake closed: shutting down
		}
	}
}

// handleReplicaCheckpoint streams the latest checkpoint tar for follower
// bootstrap. A failure mid-stream can only truncate the tar — the client's
// restore validates the archive (META present, paths sane) before
// promoting anything, so a torn download never becomes a half-checkpoint.
func (s *Server) handleReplicaCheckpoint(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	cf := s.changeFeed
	if cf == nil || cf.CheckpointTar == nil {
		writeError(w, http.StatusNotFound, "this deployment ships no checkpoints (run serve with -data-dir)")
		return
	}
	w.Header().Set("Content-Type", "application/x-tar")
	if err := cf.CheckpointTar(w); err != nil {
		if errors.Is(err, durable.ErrNoCheckpoint) {
			// Nothing was written yet (the tar writer validates META before
			// its first byte), so a clean 404 is still possible.
			writeError(w, http.StatusNotFound, "no checkpoint yet; stream /v1/changes from 0 instead")
		}
		// Mid-stream errors have no channel left but the truncated body.
	}
}
