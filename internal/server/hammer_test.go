package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"

	verifai "repro"
	"repro/internal/workload"
)

// TestConcurrentIngestQueryCheckpoint hammers a durable deployment with
// simultaneous ingest writers, version/stats/verify readers, and
// POST /v1/admin/checkpoint callers (run under -race in CI). It asserts
// the invariants the two-phase checkpoint protocol promises the API:
//
//   - GET /v1/lake/version never goes backwards;
//   - every ingest succeeds while checkpoints run (non-blocking);
//   - overlapping checkpoints answer 200 or 409, never anything else,
//     and at least one succeeds;
//   - the final state recovers: a fresh Open of the same data dir sees
//     every acknowledged write.
func TestConcurrentIngestQueryCheckpoint(t *testing.T) {
	dataDir := filepath.Join(t.TempDir(), "data")
	open := func() *verifai.System {
		opts := verifai.ExactOptions(1)
		opts.Indexer.Shards = 2
		sys, err := verifai.Open(dataDir, verifai.OpenOptions{Options: opts, Sync: "none"})
		if err != nil {
			t.Fatal(err)
		}
		return sys
	}
	sys := open()
	if err := sys.AddTable(workload.USOpen1954Table()); err != nil {
		t.Fatal(err)
	}
	srv := New(sys.Pipeline(), WithDurability(
		func() verifai.DurabilityStats { st, _ := sys.Durability(); return st },
		sys.Checkpoint,
	))
	ts := httptest.NewServer(srv)
	defer ts.Close()

	// Goroutine-safe HTTP helpers: postJSON/getJSON t.Fatal on transport
	// errors, which is illegal off the test goroutine, so the hammer's
	// workers use these error-returning twins instead.
	doPost := func(url string, body any) (int, []byte, error) {
		data, err := json.Marshal(body)
		if err != nil {
			return 0, nil, err
		}
		resp, err := http.Post(url, "application/json", bytes.NewReader(data))
		if err != nil {
			return 0, nil, err
		}
		defer resp.Body.Close()
		out, err := io.ReadAll(resp.Body)
		return resp.StatusCode, out, err
	}
	doGet := func(url string, into any) (int, error) {
		resp, err := http.Get(url)
		if err != nil {
			return 0, err
		}
		defer resp.Body.Close()
		if err := json.NewDecoder(resp.Body).Decode(into); err != nil {
			return resp.StatusCode, err
		}
		return resp.StatusCode, nil
	}

	const writers, docsPerWriter = 3, 30
	var (
		wg               sync.WaitGroup
		writersLeft      atomic.Int32
		ckptOK           atomic.Int32
		ckptBusy         atomic.Int32
		coherenceIngests atomic.Int32
	)
	writersLeft.Store(writers)
	errc := make(chan error, 64)
	report := func(format string, args ...any) {
		select {
		case errc <- fmt.Errorf(format, args...):
		default:
		}
	}

	// Ingest writers: every document POST must succeed (200) no matter
	// what the checkpointers are doing.
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			defer writersLeft.Add(-1)
			for i := 0; i < docsPerWriter; i++ {
				status, body, err := doPost(ts.URL+"/v1/ingest/document", IngestDocumentRequest{
					ID:   fmt.Sprintf("w%d-d%03d", w, i),
					Text: fmt.Sprintf("writer %d document %d about golf scores", w, i),
				})
				if err != nil || status != http.StatusOK {
					report("writer %d doc %d: status %d err %v body %s", w, i, status, err, body)
					return
				}
			}
		}(w)
	}

	// Version readers: monotonic watermark while everything else churns.
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var last uint64
			for writersLeft.Load() > 0 {
				var v struct {
					Version uint64 `json:"version"`
				}
				status, err := doGet(ts.URL+"/v1/lake/version", &v)
				if err != nil || status != http.StatusOK {
					report("lake/version status %d err %v", status, err)
					return
				}
				if v.Version < last {
					report("lake version went backwards: %d after %d", v.Version, last)
					return
				}
				last = v.Version
			}
		}()
	}

	// Verification reader: retrieval keeps answering during checkpoints.
	wg.Add(1)
	go func() {
		defer wg.Done()
		claim := workload.GolfClaim()
		for i := 0; writersLeft.Load() > 0 && i < 10; i++ {
			status, body, err := doPost(ts.URL+"/v1/verify/claim", ClaimRequest{ID: "hammer", Text: claim.Text})
			if err != nil || status != http.StatusOK {
				report("verify during churn: status %d err %v body %s", status, err, body)
				return
			}
		}
	}()

	// Cache-coherence worker: a verify issued after an ingest ack must
	// never serve a pre-ingest cached verdict. Each round warms the result
	// cache with a claim about a not-yet-ingested table (NotRelated),
	// ingests the table through the API (the 200 ack implies it is indexed
	// and the cache's per-kind watermark advanced), then re-verifies the
	// identical claim — same ID, same text, same fingerprint: it must come
	// back Verified against the new table, not the cached NotRelated.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; writersLeft.Load() > 0 && i < 5; i++ {
			id := fmt.Sprintf("coherence-%d", i)
			claim := ClaimRequest{
				ID:   id,
				Text: fmt.Sprintf("In coherence round %d, the money for alice%d was 57%d.", i, i, i),
			}
			var pre VerifyResponse
			status, body, err := doPost(ts.URL+"/v1/verify/claim", claim)
			if err != nil || status != http.StatusOK {
				report("coherence %d pre-verify: status %d err %v body %s", i, status, err, body)
				return
			}
			if err := json.Unmarshal(body, &pre); err != nil {
				report("coherence %d pre-verify decode: %v", i, err)
				return
			}
			status, body, err = doPost(ts.URL+"/v1/ingest/table", IngestTableRequest{
				ID:      fmt.Sprintf("coherence-table-%d", i),
				Caption: fmt.Sprintf("coherence round %d", i),
				Columns: []string{"player", "money"},
				Rows:    [][]string{{fmt.Sprintf("alice%d", i), fmt.Sprintf("57%d", i)}},
			})
			if err != nil || status != http.StatusOK {
				report("coherence %d ingest: status %d err %v body %s", i, status, err, body)
				return
			}
			coherenceIngests.Add(1)
			status, body, err = doPost(ts.URL+"/v1/verify/claim", claim)
			if err != nil || status != http.StatusOK {
				report("coherence %d post-verify: status %d err %v body %s", i, status, err, body)
				return
			}
			var post VerifyResponse
			if err := json.Unmarshal(body, &post); err != nil {
				report("coherence %d post-verify decode: %v", i, err)
				return
			}
			if post.Verdict != "Verified" {
				report("coherence %d: post-ingest verdict %q (pre was %q) — stale cached verdict served after an acknowledged ingest",
					i, post.Verdict, pre.Verdict)
				return
			}
		}
	}()

	// Checkpoint callers: overlap is 409, success is 200, nothing else.
	for c := 0; c < 2; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for writersLeft.Load() > 0 {
				status, body, err := doPost(ts.URL+"/v1/admin/checkpoint", struct{}{})
				if err != nil {
					report("checkpoint: %v", err)
					return
				}
				switch status {
				case http.StatusOK:
					ckptOK.Add(1)
				case http.StatusConflict:
					ckptBusy.Add(1)
				default:
					report("checkpoint: status %d body %s", status, body)
					return
				}
			}
		}()
	}

	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
	if t.Failed() {
		return
	}
	if ckptOK.Load() == 0 {
		t.Fatal("no checkpoint succeeded during the hammer")
	}
	t.Logf("checkpoints under churn: %d ok, %d busy (409)", ckptOK.Load(), ckptBusy.Load())

	// One more checkpoint on the quiet system, then a clean restart must
	// recover every acknowledged write.
	wantVersion := sys.LakeVersion()
	if want := uint64(1 + writers*docsPerWriter + int(coherenceIngests.Load())); wantVersion != want {
		t.Fatalf("final version = %d, want %d", wantVersion, want)
	}
	resp, body := postJSON(t, ts.URL+"/v1/admin/checkpoint", struct{}{})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("final checkpoint: status %d body %s", resp.StatusCode, body)
	}
	var ack CheckpointResponse
	if err := json.Unmarshal(body, &ack); err != nil {
		t.Fatal(err)
	}
	if ack.Version != wantVersion {
		t.Fatalf("final checkpoint at version %d, want %d", ack.Version, wantVersion)
	}
	if err := sys.Close(); err != nil {
		t.Fatal(err)
	}

	sys2 := open()
	defer sys2.Close()
	if got := sys2.LakeVersion(); got != wantVersion {
		t.Fatalf("recovered version = %d, want %d", got, wantVersion)
	}
	for w := 0; w < writers; w++ {
		for i := 0; i < docsPerWriter; i++ {
			id := fmt.Sprintf("w%d-d%03d", w, i)
			if _, ok := sys2.Pipeline().Lake().Document(id); !ok {
				t.Fatalf("recovered lake lost %s", id)
			}
		}
	}
}
