package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"testing"

	verifai "repro"
	"repro/internal/workload"
)

// newClosedServer builds the case-lake server and then closes its system,
// emulating the shutdown window where HTTP requests still arrive.
func newClosedServer(t *testing.T) *httptest.Server {
	t.Helper()
	lake := verifai.NewLake()
	if err := lake.AddSource(verifai.Source{ID: workload.CaseSource, Name: "cases", TrustPrior: 0.9}); err != nil {
		t.Fatal(err)
	}
	if err := lake.AddTable(workload.USOpen1954Table()); err != nil {
		t.Fatal(err)
	}
	sys, err := verifai.NewSystem(lake, verifai.ExactOptions(1))
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Close(); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(New(sys.Pipeline()))
	t.Cleanup(ts.Close)
	return ts
}

// TestIngestAfterCloseReturns503 checks every single-item ingest endpoint
// maps datalake.ErrClosed to 503 Service Unavailable.
func TestIngestAfterCloseReturns503(t *testing.T) {
	ts := newClosedServer(t)
	cases := []struct {
		path string
		body interface{}
	}{
		{"/v1/ingest/table", IngestTableRequest{ID: "late", Caption: "c", Columns: []string{"a"}, Rows: [][]string{{"1"}}}},
		{"/v1/ingest/document", IngestDocumentRequest{ID: "late", Text: "x"}},
		{"/v1/ingest/triple", IngestTripleRequest{Subject: "s", Predicate: "p", Object: "o"}},
	}
	for _, tc := range cases {
		resp, body := postJSON(t, ts.URL+tc.path, tc.body)
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Errorf("POST %s after close: status = %d body = %s, want 503", tc.path, resp.StatusCode, body)
		}
	}
	// Reads keep working on the final state.
	var stats map[string]any
	if resp := getJSON(t, ts.URL+"/v1/stats", &stats); resp.StatusCode != http.StatusOK {
		t.Errorf("GET /v1/stats after close: status = %d", resp.StatusCode)
	}
}

// TestIngestBatchAfterCloseReturns503 checks the batch endpoint's
// batch-level ErrClosed also maps to 503.
func TestIngestBatchAfterCloseReturns503(t *testing.T) {
	ts := newClosedServer(t)
	resp, body := postJSON(t, ts.URL+"/v1/ingest/batch", IngestBatchRequest{
		Items: []IngestBatchItem{
			{Type: "document", ID: "late1", Text: "x"},
			{Type: "triple", Subject: "s", Predicate: "p", Object: "o"},
		},
	})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("batch after close: status = %d body = %s, want 503", resp.StatusCode, body)
	}
}

// TestCheckpointEndpointWithoutDataDir checks in-memory deployments 404
// the admin endpoint.
func TestCheckpointEndpointWithoutDataDir(t *testing.T) {
	ts := newTestServer(t)
	resp, _ := postJSON(t, ts.URL+"/v1/admin/checkpoint", struct{}{})
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("checkpoint without durability: status = %d, want 404", resp.StatusCode)
	}
}

// TestDurableServerSurfaces spins a durable system behind the server and
// checks POST /v1/admin/checkpoint and the durability section of
// GET /v1/stats — the wiring cmd/verifai serve uses.
func TestDurableServerSurfaces(t *testing.T) {
	sys, err := verifai.Open(filepath.Join(t.TempDir(), "data"), verifai.OpenOptions{
		Options: verifai.ExactOptions(1), Sync: "none",
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sys.Close() })
	srv := New(sys.Pipeline(), WithDurability(
		func() verifai.DurabilityStats { st, _ := sys.Durability(); return st },
		sys.Checkpoint,
	))
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)

	resp, _ := postJSON(t, ts.URL+"/v1/ingest/document", IngestDocumentRequest{ID: "d1", Text: "hello durable world"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest: status = %d", resp.StatusCode)
	}

	resp, body := postJSON(t, ts.URL+"/v1/admin/checkpoint", struct{}{})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("checkpoint: status = %d body = %s", resp.StatusCode, body)
	}
	var ack CheckpointResponse
	if err := json.Unmarshal(body, &ack); err != nil {
		t.Fatal(err)
	}
	if ack.Status != "checkpointed" || ack.Version != 1 {
		t.Errorf("checkpoint ack = %+v, want checkpointed at version 1", ack)
	}

	var stats struct {
		Texts      int                     `json:"texts"`
		Durability verifai.DurabilityStats `json:"durability"`
	}
	if resp := getJSON(t, ts.URL+"/v1/stats", &stats); resp.StatusCode != http.StatusOK {
		t.Fatalf("stats: status = %d", resp.StatusCode)
	}
	if stats.Texts != 1 {
		t.Errorf("stats.texts = %d, want 1", stats.Texts)
	}
	if stats.Durability.SyncPolicy != "none" || stats.Durability.CheckpointVersion != 1 {
		t.Errorf("stats.durability = %+v", stats.Durability)
	}

	if resp, _ := postJSON(t, ts.URL+"/v1/admin/checkpoint", struct{}{}); resp.StatusCode != http.StatusOK {
		t.Errorf("second checkpoint: status = %d", resp.StatusCode)
	}
	// GET is not allowed on the admin endpoint.
	httpResp, err := http.Get(ts.URL + "/v1/admin/checkpoint")
	if err != nil {
		t.Fatal(err)
	}
	httpResp.Body.Close()
	if httpResp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET checkpoint: status = %d, want 405", httpResp.StatusCode)
	}
}
