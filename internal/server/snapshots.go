package server

import (
	"errors"
	"fmt"
	"net/http"
	"strconv"

	"repro/internal/datalake"
)

// Time-travel reads over HTTP. Every verify endpoint accepts ?version=N to
// run against the retained snapshot at lake version N instead of head —
// same request body, same response shape (plus as_of_version) — and
// GET/POST /v1/snapshots manage the retained set:
//
//	GET  /v1/snapshots               list retained snapshots + floor/head
//	POST /v1/snapshots {"action":"pin"}               freeze + pin head
//	POST /v1/snapshots {"action":"unpin","version":N} release a pin
//
// The ?version= error contract mirrors the CDC feed's floor semantics:
// malformed or zero versions are 400, a version ahead of the lake is 404
// (nothing ever existed there), a plausible version nothing retained is
// 409 (pin earlier next time), and a version below the retention floor is
// 410 Gone with the floor named in the body — the caller can re-anchor to
// the floor exactly as a CDC consumer re-bootstraps.

// parseVersionParam reads the optional ?version= pin on a verify endpoint.
// Absent means head (0). Non-numeric or zero answers 400 and returns
// ok=false (version 0 is the "no pin" sentinel, never a real snapshot).
func parseVersionParam(w http.ResponseWriter, r *http.Request) (uint64, bool) {
	raw := r.URL.Query().Get("version")
	if raw == "" {
		return 0, true
	}
	v, err := strconv.ParseUint(raw, 10, 64)
	if err != nil || v == 0 {
		writeError(w, http.StatusBadRequest, "version must be a positive integer, got %q", raw)
		return 0, false
	}
	return v, true
}

// snapshotResolveError reports whether err is a snapshot-resolution
// failure (as opposed to a verification failure at a resolved snapshot).
func snapshotResolveError(err error) bool {
	var bf *datalake.BelowFloorError
	return errors.As(err, &bf) || errors.Is(err, datalake.ErrSnapshotNotFound)
}

// writeSnapshotError maps a failed ?version= resolution onto the contract
// above. The 410 body carries the floor as a field (like the CDC feed's
// cursor-below-floor response) so clients can re-anchor without parsing
// the message.
func (s *Server) writeSnapshotError(w http.ResponseWriter, asOf uint64, err error) {
	var bf *datalake.BelowFloorError
	switch {
	case errors.As(err, &bf):
		body := map[string]any{
			"error": fmt.Sprintf("version %d is below the snapshot retention floor %d; retry at the floor or later", bf.Version, bf.Floor),
			"floor": bf.Floor,
		}
		if id := w.Header().Get("X-Request-Id"); id != "" {
			body["request_id"] = id
		}
		writeJSON(w, http.StatusGone, body)
	case errors.Is(err, datalake.ErrSnapshotNotFound):
		if head := s.pipeline.Lake().Version(); asOf > head {
			writeError(w, http.StatusNotFound, "version %d is ahead of the lake (head is %d)", asOf, head)
		} else {
			writeError(w, http.StatusConflict,
				"no snapshot retained at version %d; pin one with POST /v1/snapshots or verify at a retained version (GET /v1/snapshots)", asOf)
		}
	default:
		writeError(w, http.StatusInternalServerError, "snapshot read: %v", err)
	}
}

// SnapshotsResponse is the body of GET /v1/snapshots.
type SnapshotsResponse struct {
	// Snapshots lists the retained set, oldest first.
	Snapshots []datalake.SnapshotInfo `json:"snapshots"`
	// Floor is the oldest retained version — the time-travel read floor (0
	// when nothing is retained).
	Floor uint64 `json:"floor"`
	// Head is the lake's current version.
	Head uint64 `json:"head"`
}

// SnapshotActionRequest is the body of POST /v1/snapshots.
type SnapshotActionRequest struct {
	// Action is "pin" (freeze and pin the current version; Version must be
	// omitted — pinning is always of now) or "unpin" (release the pin at
	// Version).
	Action  string `json:"action"`
	Version uint64 `json:"version,omitempty"`
}

// SnapshotActionResponse acknowledges a pin or unpin.
type SnapshotActionResponse struct {
	Status string `json:"status"` // "pinned" | "unpinned"
	// Version is the snapshot version the action applied to; pass it as
	// ?version= on the verify endpoints.
	Version uint64 `json:"version"`
}

func (s *Server) handleSnapshots(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		reg := s.pipeline.Snapshots()
		writeJSON(w, http.StatusOK, SnapshotsResponse{
			Snapshots: reg.List(),
			Floor:     reg.Floor(),
			Head:      s.pipeline.Lake().Version(),
		})
	case http.MethodPost:
		if s.rejectFollowerWrite(w) {
			return
		}
		var req SnapshotActionRequest
		if !decodeStrict(w, r, maxBodyBytes, &req) {
			return
		}
		switch req.Action {
		case "pin":
			if req.Version != 0 {
				writeError(w, http.StatusBadRequest, "pin freezes the current version; omit version (unpin takes one)")
				return
			}
			version, err := s.pinSnapshot()
			if err != nil {
				writeError(w, http.StatusInternalServerError, "pin snapshot: %v", err)
				return
			}
			writeJSON(w, http.StatusOK, SnapshotActionResponse{Status: "pinned", Version: version})
		case "unpin":
			if req.Version == 0 {
				writeError(w, http.StatusBadRequest, "unpin requires the pinned version")
				return
			}
			if err := s.unpinSnapshot(req.Version); err != nil {
				if errors.Is(err, datalake.ErrSnapshotNotFound) {
					writeError(w, http.StatusNotFound, "no snapshot retained at version %d", req.Version)
					return
				}
				writeError(w, http.StatusInternalServerError, "unpin snapshot: %v", err)
				return
			}
			writeJSON(w, http.StatusOK, SnapshotActionResponse{Status: "unpinned", Version: req.Version})
		default:
			writeError(w, http.StatusBadRequest, "unknown action %q (want pin|unpin)", req.Action)
		}
	default:
		writeError(w, http.StatusMethodNotAllowed, "GET or POST required")
	}
}
